// Ablation A2: how much of FUSE's collapse is the transport (user/kernel
// crossings + request copies) versus the userspace block-I/O durability
// path? We sweep the per-crossing cost on the create microbenchmark.
//
// Expected: nearly flat. The paper's §6.4 observation holds in the model —
// the dominant cost is the per-block whole-file fsync, not the transport.
// (Compare with bench_ablation_sync, which sweeps the fsync cost and moves
// the needle dramatically.)
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  std::printf("Ablation A2: FUSE crossing-cost sweep (create, 1 thread)\n");
  JsonReport json("crossings", "creates/s");
  std::printf("%14s %12s\n", "crossing (ns)", "creates/s");
  for (const sim::Nanos crossing : {0, 500, 1500, 3000, 6000}) {
    reset_costs();
    sim::costs().fuse_crossing = crossing;
    BenchRun run;
    run.fs = "xv6_fuse";
    run.nthreads = 1;
    run.horizon = 30 * sim::kSecond;
    run.max_ops = 2'000;
    auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
      return std::make_unique<wl::CreateFiles>(bed, 16384, 100, tid, 7);
    });
    std::printf("%14lld %12.1f\n", static_cast<long long>(crossing),
                stats.ops_per_sec());
    json.add("FUSE", std::to_string(crossing) + "ns", stats.ops_per_sec());
    std::fflush(stdout);
  }
  reset_costs();
  return 0;
}
