// Figure 3 (a-c): read throughput for 32KB / 128KB / 1024KB I/O sizes,
// seq/rnd x 1/32 threads, MBps (x1000 in the paper's axes).
//
// Expected shape: all three file systems equivalent (page-cache bound).
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  struct Config {
    const char* label;
    bool sequential;
    int threads;
  };
  const Config configs[] = {{"seq-1t", true, 1},
                            {"seq-32t", true, 32},
                            {"rnd-1t", false, 1},
                            {"rnd-32t", false, 32}};
  struct Size {
    const char* label;
    std::size_t iosize;
    std::uint64_t max_ops;
  };
  const Size sizes[] = {{"32KB", 32 << 10, 60'000},
                        {"128KB", 128 << 10, 16'000},
                        {"1024KB", 1 << 20, 3'000}};

  std::printf("Figure 3: Read Performance (32KB-1024KB), Throughput MBps\n");
  JsonReport json("fig3_read_tput", "MBps");
  for (const auto& size : sizes) {
    std::printf("\n(%s reads)\n", size.label);
    std::printf("%-10s %10s %10s %10s %10s\n", "fs", "seq-1t", "seq-32t",
                "rnd-1t", "rnd-32t");
    for (const auto& [label, fsname] : kKernelFses) {
      std::printf("%-10s", label.c_str());
      for (const auto& cfg : configs) {
        BenchRun run;
        run.fs = fsname;
        run.nthreads = cfg.threads;
        run.max_ops = size.max_ops;
        wl::SharedFile file;
        auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
          return std::make_unique<wl::ReadMicro>(bed, file, cfg.sequential,
                                                 size.iosize, tid, 42);
        });
        std::printf(" %10.0f", stats.mbytes_per_sec());
        json.add(label, std::string(cfg.label) + "/" + size.label,
                 stats.mbytes_per_sec());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
