#!/usr/bin/env python3
"""Cross-PR perf trend aggregator + regression gate.

Collects every BENCH_<name>.json emitted by the virtual-time benches (see
bench/common.h::JsonReport) into one machine-readable BENCH_TREND.json and
a human-readable TREND.md markdown table, so CI artifacts carry a single
perf snapshot per run and successive runs can be diffed.

With --baseline pointing at a previous run's BENCH_TREND.json (CI downloads
the last artifact), tracked rows are compared against the baseline and the
script FAILS (exit 2) on any regression beyond --fail-threshold (default
10%). Gating is DIRECTION-AWARE (schema v2 reports tag rows):

  - direction "up" (bandwidth, ops/s): fails when the value DROPS by more
    than the threshold.
  - direction "down" (latency): fails when the value RISES by more than
    the threshold — a p99 latency regression is caught even when the
    accompanying MBps row improved.
  - direction "" / absent on a tagged row: tracked in the trend artifacts
    but never gated.

Legacy (schema v1) rows carry no tags; those gate exactly as before: rows
of reports whose unit is MBps, excluding ratio/count series, gate "up".

Usage: trend.py [--dir DIR] [--out-json PATH] [--out-md PATH]
               [--baseline PATH] [--fail-threshold FRAC]
DIR defaults to the current directory (where the benches were run).
Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys

# One-line context per bench series family, rendered into TREND.md so the
# table is readable without the source.
NOTES = {
    "writepath": (
        "Write-path ablation (ISSUE 5): buffered sequential writes through "
        "xv6-on-Bento on 1/2/4/8-member RAID0 volumes. `Bento-seqwrite` is "
        "the full configuration (pipelined journal commits + cross-op group "
        "commit + request-queue plugging); the `-nopipeline`/`-nogroup`/"
        "`-noplug` series each disable one mechanism. `*-scaling` is the "
        "8-member/1-member ratio (gate: >=2.5x full). The C-kernel rows "
        "track the per-page ->writepage path's journal commit count with "
        "group commit on vs off (gate: >=5x fewer)."
    ),
    "striping": (
        "RAID0 scaling sweep: raw volume bandwidth and the full "
        "Bento-seqwrite stack vs member count. Write-latency p50/p99 ride "
        "along per member count (p99 gated downward)."
    ),
    "redundancy": (
        "RAID1 sweep: read scaling across replicas; writes must stay at "
        "single-device cost."
    ),
    "fsynclat": (
        "Per-op pwrite+fsync latency (the journal commit round trip) on "
        "plain, RAID0/4, and RAID5/4 volumes. p99 is gated downward: a "
        ">10% p99 increase fails CI even if throughput improved."
    ),
    "faultpath": (
        "Failure-path hardening (ISSUE 10): pwrite+fsync under a periodic "
        "device fault schedule (2ms up / 50us down) healed by the request "
        "queue's bounded retry (backoff 200us), on plain/RAID1/RAID5 "
        "volumes. `faulted` ops/s is gated upward and `faulted-lat.p99` "
        "downward — the degraded path must not rot; `healthy`/retry-count "
        "rows are tracked unguarded. The bench itself fails if no retry "
        "ever succeeds."
    ),
    "flusher": (
        "Background-writeback ablation: buffered write throughput with "
        "the per-device flusher on vs writer-context sync, plus "
        "foreground write-latency attribution (p99 gated downward)."
    ),
}


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        if os.path.basename(path) == "BENCH_TREND.json":
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"trend.py: skipping {path}: {e}", file=sys.stderr)
            continue
        if "bench" in data and "rows" in data:
            reports.append(data)
    return reports


def row_unit(rep, row):
    return row.get("unit") or rep.get("unit") or "value"


def row_direction(rep, row):
    """Gating direction for a row: "up", "down", or None (not gated)."""
    if "direction" in row or "unit" in row:
        # Schema v2 tagged row: the tag is authoritative.
        d = row.get("direction", "")
        return d if d in ("up", "down") else None
    # Legacy row: gate MBps bandwidths upward, exclude ratios/counts.
    if rep.get("unit") != "MBps":
        return None
    series = row["series"]
    if "scaling" in series or "commit" in series or "count" in series:
        return None
    return "up"


def render_markdown(reports):
    lines = ["# Perf trend", ""]
    lines.append(
        "One table per bench; values are the latest run's "
        "(series, label) points. Columns marked with a trailing `*` are "
        "regression-GATED (direction-aware: bandwidth gates on drops, "
        "latency on increases); unmarked columns are tracked only.")
    for rep in reports:
        unit = rep.get("unit") or "value"
        lines.append("")
        lines.append(f"## {rep['bench']} [{unit}]")
        lines.append("")
        note = NOTES.get(rep["bench"])
        if note:
            lines.append(note)
            lines.append("")
        # Pivot: one row per label, one column per series. A series'
        # header carries its unit (when it differs from the report's)
        # and the gated mark.
        series, labels = [], []
        cells = {}
        sunits, sgated = {}, {}
        for row in rep["rows"]:
            s = row["series"]
            if s not in series:
                series.append(s)
            if row["label"] not in labels:
                labels.append(row["label"])
            cells[(s, row["label"])] = row["value"]
            sunits[s] = row_unit(rep, row)
            if row_direction(rep, row) is not None:
                sgated[s] = True
        heads = []
        for s in series:
            head = s
            if sunits.get(s) and sunits[s] != unit:
                head += f" [{sunits[s]}]"
            if sgated.get(s):
                head += "*"
            heads.append(head)
        lines.append("| label | " + " | ".join(heads) + " |")
        lines.append("|---" * (len(series) + 1) + "|")
        for label in labels:
            vals = []
            for s in series:
                v = cells.get((s, label))
                vals.append("" if v is None else f"{v:g}")
            lines.append(f"| {label} | " + " | ".join(vals) + " |")
    lines.append("")
    return "\n".join(lines)


def tracked_rows(reports):
    """(bench, series, label) -> (value, direction, unit) for every row
    the regression gate watches."""
    out = {}
    for rep in reports:
        for row in rep["rows"]:
            d = row_direction(rep, row)
            if d is None:
                continue
            key = (rep["bench"], row["series"], row["label"])
            out[key] = (row["value"], d, row_unit(rep, row))
    return out


def check_regressions(reports, baseline_path, threshold):
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trend.py: no usable baseline ({e}); gate skipped",
              file=sys.stderr)
        return []
    base_rows = tracked_rows(base.get("reports", []))
    new_rows = tracked_rows(reports)
    regressions = []
    for key, (old, direction, unit) in base_rows.items():
        entry = new_rows.get(key)
        if entry is None or old <= 0:
            continue  # series removed/renamed: not a perf regression
        new = entry[0]
        if direction == "up" and new < old * (1.0 - threshold):
            regressions.append((key, old, new, direction, unit))
        elif direction == "down" and new > old * (1.0 + threshold):
            regressions.append((key, old, new, direction, unit))
    return regressions


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default=".")
    ap.add_argument("--out-json", default=None)
    ap.add_argument("--out-md", default=None)
    ap.add_argument("--baseline", default=None,
                    help="previous run's BENCH_TREND.json to gate against")
    ap.add_argument("--fail-threshold", type=float, default=0.10,
                    help="relative change that fails the gate (drop for "
                         "direction=up rows, rise for direction=down rows)")
    args = ap.parse_args()

    out_json = args.out_json or os.path.join(args.dir, "BENCH_TREND.json")
    out_md = args.out_md or os.path.join(args.dir, "TREND.md")

    reports = load_reports(args.dir)
    if not reports:
        print(f"trend.py: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1

    trend = {
        "benches": [r["bench"] for r in reports],
        "reports": reports,
    }
    with open(out_json, "w") as f:
        json.dump(trend, f, indent=2)
    with open(out_md, "w") as f:
        f.write(render_markdown(reports))
    print(f"trend.py: aggregated {len(reports)} benches -> "
          f"{out_json}, {out_md}")

    if args.baseline:
        regressions = check_regressions(reports, args.baseline,
                                        args.fail_threshold)
        if regressions:
            for (bench, series, label), old, new, d, unit in regressions:
                kind = "drop" if d == "up" else "increase"
                print(f"trend.py: REGRESSION {bench}/{series}/{label}: "
                      f"{old:g} -> {new:g} {unit} "
                      f"({(new / old - 1) * 100:+.1f}% {kind})",
                      file=sys.stderr)
            return 2
        print("trend.py: regression gate passed "
              f"(threshold {args.fail_threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
