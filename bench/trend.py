#!/usr/bin/env python3
"""Cross-PR perf trend aggregator.

Collects every BENCH_<name>.json emitted by the virtual-time benches (see
bench/common.h::JsonReport) into one machine-readable BENCH_TREND.json and
a human-readable TREND.md markdown table, so CI artifacts carry a single
perf snapshot per run and successive runs can be diffed.

Usage: trend.py [--dir DIR] [--out-json PATH] [--out-md PATH]
DIR defaults to the current directory (where the benches were run).
Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        if os.path.basename(path) == "BENCH_TREND.json":
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"trend.py: skipping {path}: {e}", file=sys.stderr)
            continue
        if "bench" in data and "rows" in data:
            reports.append(data)
    return reports


def render_markdown(reports):
    lines = ["# Perf trend", ""]
    lines.append(
        "One table per bench; values are the latest run's "
        "(series, label) points.")
    for rep in reports:
        unit = rep.get("unit") or "value"
        lines.append("")
        lines.append(f"## {rep['bench']} [{unit}]")
        lines.append("")
        # Pivot: one row per label, one column per series.
        series, labels = [], []
        cells = {}
        for row in rep["rows"]:
            if row["series"] not in series:
                series.append(row["series"])
            if row["label"] not in labels:
                labels.append(row["label"])
            cells[(row["series"], row["label"])] = row["value"]
        lines.append("| label | " + " | ".join(series) + " |")
        lines.append("|---" * (len(series) + 1) + "|")
        for label in labels:
            vals = []
            for s in series:
                v = cells.get((s, label))
                vals.append("" if v is None else f"{v:g}")
            lines.append(f"| {label} | " + " | ".join(vals) + " |")
    lines.append("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default=".")
    ap.add_argument("--out-json", default=None)
    ap.add_argument("--out-md", default=None)
    args = ap.parse_args()

    out_json = args.out_json or os.path.join(args.dir, "BENCH_TREND.json")
    out_md = args.out_md or os.path.join(args.dir, "TREND.md")

    reports = load_reports(args.dir)
    if not reports:
        print(f"trend.py: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1

    trend = {
        "benches": [r["bench"] for r in reports],
        "reports": reports,
    }
    with open(out_json, "w") as f:
        json.dump(trend, f, indent=2)
    with open(out_md, "w") as f:
        f.write(render_markdown(reports))
    print(f"trend.py: aggregated {len(reports)} benches -> "
          f"{out_json}, {out_md}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
