#!/usr/bin/env python3
"""Cross-PR perf trend aggregator + regression gate.

Collects every BENCH_<name>.json emitted by the virtual-time benches (see
bench/common.h::JsonReport) into one machine-readable BENCH_TREND.json and
a human-readable TREND.md markdown table, so CI artifacts carry a single
perf snapshot per run and successive runs can be diffed.

With --baseline pointing at a previous run's BENCH_TREND.json (CI downloads
the last artifact), every tracked bandwidth row is compared against the
baseline and the script FAILS (exit 2) when any series regresses by more
than --fail-threshold (default 10%) — the ROADMAP "gate on regressions"
item. Tracked rows are those in reports whose unit is MBps, excluding
ratio/count series (scaling factors and commit counts are not bandwidths;
for counts, lower is better).

Usage: trend.py [--dir DIR] [--out-json PATH] [--out-md PATH]
               [--baseline PATH] [--fail-threshold FRAC]
DIR defaults to the current directory (where the benches were run).
Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys

# One-line context per bench series family, rendered into TREND.md so the
# table is readable without the source.
NOTES = {
    "writepath": (
        "Write-path ablation (ISSUE 5): buffered sequential writes through "
        "xv6-on-Bento on 1/2/4/8-member RAID0 volumes. `Bento-seqwrite` is "
        "the full configuration (pipelined journal commits + cross-op group "
        "commit + request-queue plugging); the `-nopipeline`/`-nogroup`/"
        "`-noplug` series each disable one mechanism. `*-scaling` is the "
        "8-member/1-member ratio (gate: >=2.5x full). The C-kernel rows "
        "track the per-page ->writepage path's journal commit count with "
        "group commit on vs off (gate: >=5x fewer)."
    ),
    "striping": (
        "RAID0 scaling sweep: raw volume bandwidth and the full "
        "Bento-seqwrite stack vs member count."
    ),
    "redundancy": (
        "RAID1 sweep: read scaling across replicas; writes must stay at "
        "single-device cost."
    ),
}


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        if os.path.basename(path) == "BENCH_TREND.json":
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"trend.py: skipping {path}: {e}", file=sys.stderr)
            continue
        if "bench" in data and "rows" in data:
            reports.append(data)
    return reports


def render_markdown(reports):
    lines = ["# Perf trend", ""]
    lines.append(
        "One table per bench; values are the latest run's "
        "(series, label) points.")
    for rep in reports:
        unit = rep.get("unit") or "value"
        lines.append("")
        lines.append(f"## {rep['bench']} [{unit}]")
        lines.append("")
        note = NOTES.get(rep["bench"])
        if note:
            lines.append(note)
            lines.append("")
        # Pivot: one row per label, one column per series.
        series, labels = [], []
        cells = {}
        for row in rep["rows"]:
            if row["series"] not in series:
                series.append(row["series"])
            if row["label"] not in labels:
                labels.append(row["label"])
            cells[(row["series"], row["label"])] = row["value"]
        lines.append("| label | " + " | ".join(series) + " |")
        lines.append("|---" * (len(series) + 1) + "|")
        for label in labels:
            vals = []
            for s in series:
                v = cells.get((s, label))
                vals.append("" if v is None else f"{v:g}")
            lines.append(f"| {label} | " + " | ".join(vals) + " |")
    lines.append("")
    return "\n".join(lines)


def tracked_rows(reports):
    """(bench, series, label) -> value for the bandwidth rows the
    regression gate watches."""
    out = {}
    for rep in reports:
        if rep.get("unit") != "MBps":
            continue
        for row in rep["rows"]:
            series = row["series"]
            # Ratios and counts ride along in MBps reports but are not
            # bandwidths (and for commit counts, lower is better).
            if "scaling" in series or "commit" in series or "count" in series:
                continue
            out[(rep["bench"], series, row["label"])] = row["value"]
    return out


def check_regressions(reports, baseline_path, threshold):
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trend.py: no usable baseline ({e}); gate skipped",
              file=sys.stderr)
        return []
    base_rows = tracked_rows(base.get("reports", []))
    new_rows = tracked_rows(reports)
    regressions = []
    for key, old in base_rows.items():
        new = new_rows.get(key)
        if new is None or old <= 0:
            continue  # series removed/renamed: not a perf regression
        if new < old * (1.0 - threshold):
            regressions.append((key, old, new))
    return regressions


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default=".")
    ap.add_argument("--out-json", default=None)
    ap.add_argument("--out-md", default=None)
    ap.add_argument("--baseline", default=None,
                    help="previous run's BENCH_TREND.json to gate against")
    ap.add_argument("--fail-threshold", type=float, default=0.10,
                    help="relative MBps drop that fails the gate")
    args = ap.parse_args()

    out_json = args.out_json or os.path.join(args.dir, "BENCH_TREND.json")
    out_md = args.out_md or os.path.join(args.dir, "TREND.md")

    reports = load_reports(args.dir)
    if not reports:
        print(f"trend.py: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1

    trend = {
        "benches": [r["bench"] for r in reports],
        "reports": reports,
    }
    with open(out_json, "w") as f:
        json.dump(trend, f, indent=2)
    with open(out_md, "w") as f:
        f.write(render_markdown(reports))
    print(f"trend.py: aggregated {len(reports)} benches -> "
          f"{out_json}, {out_md}")

    if args.baseline:
        regressions = check_regressions(reports, args.baseline,
                                        args.fail_threshold)
        if regressions:
            for (bench, series, label), old, new in regressions:
                print(f"trend.py: REGRESSION {bench}/{series}/{label}: "
                      f"{old:g} -> {new:g} MBps "
                      f"({(new / old - 1) * 100:+.1f}%)", file=sys.stderr)
            return 2
        print("trend.py: regression gate passed "
              f"(threshold {args.fail_threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
