// Table 4: createfiles microbenchmark, ops/sec, 1 and 32 threads.
//
// Expected shape (paper §6.5.3): Bento slightly ahead of C-Kernel (batched
// data writeback => fewer transactions per created file), FUSE ~50x slower
// (every transaction block write is pwrite + whole-disk-file fsync).
// Creates are far slower than deletes (Table 5) because xv6's ialloc
// linearly scans the inode table, which grows with the live file count,
// and each create carries 16KB of journaled data.
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  std::printf("Table 4: Create Microbenchmark Performance (Ops/sec)\n");
  JsonReport json("table4_create", "ops/s");
  std::printf("%-10s %12s %12s\n", "fs", "1 Thread", "32 Threads");
  for (const auto& [label, fsname] : kKernelFses) {
    std::printf("%-10s", label.c_str());
    for (const int threads : {1, 32}) {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = threads;
      run.horizon = 30 * sim::kSecond;
      run.max_ops = 60'000;
      run.device_blocks = 524'288;  // 2 GiB: the created set must fit
      auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
        return std::make_unique<wl::CreateFiles>(bed, /*filesize=*/16384,
                                                 /*dirwidth=*/100, tid, 7);
      });
      std::printf(" %12.0f", stats.ops_per_sec());
      json.add(label, std::to_string(threads) + "t", stats.ops_per_sec());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
