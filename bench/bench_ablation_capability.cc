// Ablation A4: the paper's §4.6 claim — capability types are compile-time
// wrappers around pointers, adding no meaningful runtime overhead. This is
// a *real-time* google-benchmark (not virtual time): we compare the
// buffer-cache hot path accessed through raw kernel pointers (the VFS way)
// against the same path through SuperBlockCap / BufferHeadHandle (the
// Bento way), excluding the modeled virtual-time charges from both sides
// by using an untimed scratch thread.
#include <benchmark/benchmark.h>

#include "bento/kernel_services.h"
#include "kernel/buffer_cache.h"
#include "sim/thread.h"

namespace {

using namespace bsim;

struct Rig {
  Rig()
      : dev(params()),
        cache(dev, 0),
        backend(cache),
        cap_holder(bento::CapTestAccess::make(backend)),
        cap(*cap_holder) {}

  static blk::DeviceParams params() {
    blk::DeviceParams p;
    p.nblocks = 4096;
    return p;
  }

  blk::BlockDevice dev;
  kern::BufferCache cache;
  bento::KernelBlockBackend backend;
  std::unique_ptr<bento::SuperBlockCap> cap_holder;
  bento::SuperBlockCap& cap;
};

void BM_RawBufferCache(benchmark::State& state) {
  sim::SimThread t(0);
  sim::ScopedThread in(t);
  Rig rig;
  std::uint64_t blockno = 0;
  for (auto _ : state) {
    auto bh = rig.cache.bread(blockno % 1024);
    benchmark::DoNotOptimize(bh.value()->bytes().data());
    rig.cache.brelse(bh.value());
    blockno += 1;
  }
}
BENCHMARK(BM_RawBufferCache);

void BM_CapabilityBufferHandle(benchmark::State& state) {
  sim::SimThread t(0);
  sim::ScopedThread in(t);
  Rig rig;
  std::uint64_t blockno = 0;
  for (auto _ : state) {
    auto bh = rig.cap.bread(blockno % 1024);
    benchmark::DoNotOptimize(bh.value().data().data());
    // RAII: handle destructor performs brelse.
    blockno += 1;
  }
}
BENCHMARK(BM_CapabilityBufferHandle);

void BM_RawFieldAccess(benchmark::State& state) {
  sim::SimThread t(0);
  sim::ScopedThread in(t);
  Rig rig;
  auto bh = rig.cache.bread(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bh.value()->bytes()[128]);
  }
  rig.cache.brelse(bh.value());
}
BENCHMARK(BM_RawFieldAccess);

void BM_CapabilityFieldAccess(benchmark::State& state) {
  sim::SimThread t(0);
  sim::ScopedThread in(t);
  Rig rig;
  auto bh = rig.cap.bread(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bh.value().data()[128]);
  }
}
BENCHMARK(BM_CapabilityFieldAccess);

}  // namespace

BENCHMARK_MAIN();
