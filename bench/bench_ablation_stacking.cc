// Ablation A8: composable file-system dispatch (paper §3.4 / Challenge 6).
//
// "Calling top-level VFS functions can add overhead to each call to a
// lower file system, resulting in potentially large overhead if several
// file systems are layered on top of one another. Bento may be able to
// provide a different interface ... that does not introduce this
// overhead." This ablation measures both designs as a function of stack
// depth: N encryption layers over xv6, dispatched (a) Bento-style —
// direct FileSystem-to-FileSystem calls — and (b) Linux-style — each
// layer re-enters the top-level VFS (modeled by charging the measured
// vfs_reentry cost per layer per operation).
//
// google-benchmark is used for (a) since direct dispatch is real C++
// call overhead; the (b) rows add the modeled re-entry term in virtual
// time. Printed as ns/op of 4 KiB cached reads.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bento/chacha.h"
#include "common.h"
#include "bento/crypt.h"
#include "sim/cost_model.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  (void)mount->mount_init();
  return mount;
}

/// Build a stack of `layers` CryptFs instances over xv6; returns the top
/// mount (each layer uses a key derived from its depth).
std::unique_ptr<bento::UserMount> make_stack(int layers) {
  auto mount = make_xv6_mount();
  for (int i = 0; i < layers; ++i) {
    auto crypt = std::make_unique<bento::CryptFs>(
        std::move(mount),
        bento::derive_key("layer" + std::to_string(i), "salt", 16));
    mount = std::make_unique<bento::UserMount>(
        std::make_unique<bento::MemBlockBackend>(16), std::move(crypt));
    (void)mount->mount_init();
  }
  return mount;
}

struct Measured {
  double direct_ns;       // Bento-style dispatch (virtual ns/op)
  double vfs_reentry_ns;  // + modeled per-layer VFS re-entry
};

Measured measure(int layers, int ops) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  auto mount = make_stack(layers);
  auto& fs = mount->fs();
  auto made =
      fs.create(mount->mkreq(), mount->borrow(), bento::kRootIno, "f", 0644);
  std::vector<std::byte> page(4096, std::byte{0x11});
  (void)fs.write(mount->mkreq(), mount->borrow(), made.value().ino, 0, 0,
                 page);
  mount->check_borrows();

  const auto t0 = sim::now();
  for (int i = 0; i < ops; ++i) {
    (void)fs.read(mount->mkreq(), mount->borrow(), made.value().ino, 0, 0,
                  page);
  }
  mount->check_borrows();
  const double direct =
      static_cast<double>(sim::now() - t0) / static_cast<double>(ops);
  // Linux-style stacking re-enters top-level VFS once per layer per op.
  const double reentry =
      direct + static_cast<double>(layers) *
                   static_cast<double>(sim::costs().vfs_reentry);
  return {direct, reentry};
}

}  // namespace

int main() {
  sim::costs() = sim::CostModel{};
  std::printf(
      "Ablation A8: stacked-FS dispatch, 4K cached read through N "
      "encryption layers\n\n");
  bsim::bench::JsonReport json("stacking", "ns/op");
  std::printf("%8s %22s %26s %10s\n", "layers", "Bento direct (ns/op)",
              "Linux VFS re-entry (ns/op)", "overhead");
  const Measured base = measure(0, 20000);
  for (const int layers : {0, 1, 2, 4, 8}) {
    const Measured m = measure(layers, 20000);
    std::printf("%8d %22.0f %26.0f %9.2fx\n", layers, m.direct_ns,
                m.vfs_reentry_ns, m.vfs_reentry_ns / m.direct_ns);
    json.add("direct", std::to_string(layers) + "layers", m.direct_ns);
    json.add("vfs_reentry", std::to_string(layers) + "layers",
             m.vfs_reentry_ns);
  }
  std::printf(
      "\nPer added layer, direct dispatch costs the cipher work plus one\n"
      "virtual call; the Linux-style alternative adds a further %lld ns\n"
      "VFS re-entry per layer per op (path: fd table, dispatch, checks) —\n"
      "the overhead Challenge 6 is about. Baseline 0-layer read: %.0f "
      "ns/op.\n",
      static_cast<long long>(sim::costs().vfs_reentry), base.direct_ns);
  return 0;
}
