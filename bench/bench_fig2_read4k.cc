// Figure 2: 4 KB read performance, ops/sec (x1000), for sequential and
// random reads with 1 and 32 threads, across Bento / C-Kernel / FUSE.
//
// Expected shape (paper §6.5.1): all three versions nearly identical —
// after warmup every request hits the same in-kernel page cache, so the
// interposition layer is never on the hot path.
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  struct Config {
    const char* label;
    bool sequential;
    int threads;
  };
  const Config configs[] = {{"seq-1t", true, 1},
                            {"seq-32t", true, 32},
                            {"rnd-1t", false, 1},
                            {"rnd-32t", false, 32}};

  std::printf("Figure 2: Read Performance (4KB), Ops/sec (x1000)\n");
  JsonReport json("fig2_read4k", "kops/s");
  std::printf("%-10s %10s %10s %10s %10s\n", "fs", "seq-1t", "seq-32t",
              "rnd-1t", "rnd-32t");
  for (const auto& [label, fsname] : kKernelFses) {
    std::printf("%-10s", label.c_str());
    for (const auto& cfg : configs) {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = cfg.threads;
      run.max_ops = 400'000;
      wl::SharedFile file;
      auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
        return std::make_unique<wl::ReadMicro>(bed, file, cfg.sequential,
                                               4096, tid, 42);
      });
      std::printf(" %10.1f", stats.ops_per_sec() / 1000.0);
      json.add(label, cfg.label, stats.ops_per_sec() / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
