// Shared benchmark harness: builds a TestBed per (file system, workload)
// pair, runs it under the virtual-time Runner, and prints paper-style rows.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/runner.h"
#include "workloads/macro.h"
#include "workloads/micro.h"
#include "workloads/testbed.h"

namespace bsim::bench {

/// The deployments in the paper's naming.
inline const std::vector<std::pair<std::string, std::string>> kKernelFses = {
    {"Bento", "xv6_bento"}, {"C-Kernel", "xv6_vfs"}, {"FUSE", "xv6_fuse"}};
inline const std::vector<std::pair<std::string, std::string>> kAllFses = {
    {"Bento", "xv6_bento"},
    {"C-Kernel", "xv6_vfs"},
    {"FUSE", "xv6_fuse"},
    {"Ext4", "ext4j"}};

/// Reset the global cost model to defaults (benches that sweep a parameter
/// mutate sim::costs() and must restore it).
inline void reset_costs() { sim::costs() = sim::CostModel{}; }

using WorkloadFactory =
    std::function<std::unique_ptr<sim::Workload>(wl::TestBed&, int tid)>;

struct BenchRun {
  std::string fs;           // registered fs name
  int nthreads = 1;
  sim::Nanos horizon = 60 * sim::kSecond;
  std::uint64_t max_ops = 0;
  std::uint64_t device_blocks = 262'144;  // 1 GiB
  std::string mount_opts;
  blk::DeviceParams device;  // latency model (nblocks overridden)
};

inline sim::RunStats run_bench(const BenchRun& cfg,
                               const WorkloadFactory& factory) {
  wl::BedOptions opts;
  opts.fs = cfg.fs;
  opts.device_blocks = cfg.device_blocks;
  opts.mount_opts = cfg.mount_opts;
  opts.device = cfg.device;
  wl::TestBed bed(opts);
  std::vector<std::unique_ptr<sim::Workload>> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.nthreads));
  for (int t = 0; t < cfg.nthreads; ++t) jobs.push_back(factory(bed, t));
  sim::RunnerOptions ropts;
  ropts.horizon = cfg.horizon;
  ropts.max_ops = cfg.max_ops;
  return sim::run_workloads(jobs, ropts);
}

inline void print_header(const char* title, const char* unit) {
  std::printf("\n%s  [%s]\n", title, unit);
  std::printf("%-12s", "");
}

inline void print_row_label(const char* label) { std::printf("%-12s", label); }

}  // namespace bsim::bench
