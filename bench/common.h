// Shared benchmark harness: builds a TestBed per (file system, workload)
// pair, runs it under the virtual-time Runner, and prints paper-style rows.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/runner.h"
#include "workloads/macro.h"
#include "workloads/micro.h"
#include "workloads/testbed.h"

namespace bsim::bench {

/// The deployments in the paper's naming.
inline const std::vector<std::pair<std::string, std::string>> kKernelFses = {
    {"Bento", "xv6_bento"}, {"C-Kernel", "xv6_vfs"}, {"FUSE", "xv6_fuse"}};
inline const std::vector<std::pair<std::string, std::string>> kAllFses = {
    {"Bento", "xv6_bento"},
    {"C-Kernel", "xv6_vfs"},
    {"FUSE", "xv6_fuse"},
    {"Ext4", "ext4j"}};

/// Reset the global cost model to defaults (benches that sweep a parameter
/// mutate sim::costs() and must restore it).
inline void reset_costs() { sim::costs() = sim::CostModel{}; }

using WorkloadFactory =
    std::function<std::unique_ptr<sim::Workload>(wl::TestBed&, int tid)>;

struct BenchRun {
  std::string fs;           // registered fs name
  int nthreads = 1;
  sim::Nanos horizon = 60 * sim::kSecond;
  std::uint64_t max_ops = 0;
  std::uint64_t device_blocks = 262'144;  // 1 GiB
  std::string mount_opts;
  blk::DeviceParams device;  // latency model (nblocks overridden)
  int stripe_devices = 1;    // >1: mount on a striped volume
  std::uint64_t stripe_chunk_blocks = 16;
  int mirror_devices = 1;    // >1: mirror each member (RAID1 / RAID10)
  blk::MirrorReadPolicy mirror_policy = blk::MirrorReadPolicy::RoundRobin;
  int parity_devices = 1;    // >=2: RAID5 data columns (RAID50 if striped)
  std::uint64_t parity_chunk_blocks = 16;
  int spare_devices = 0;
  // ---- observability dumps (written while the bed is still mounted) ----
  std::string stats_path;  // non-empty: Kernel::dump_stats() JSON snapshot
  std::string trace_path;  // non-empty: trace ring JSONL (needs "trace=N")
};

inline sim::RunStats run_bench(const BenchRun& cfg,
                               const WorkloadFactory& factory) {
  wl::BedOptions opts;
  opts.fs = cfg.fs;
  opts.device_blocks = cfg.device_blocks;
  opts.mount_opts = cfg.mount_opts;
  opts.device = cfg.device;
  opts.stripe_devices = cfg.stripe_devices;
  opts.stripe_chunk_blocks = cfg.stripe_chunk_blocks;
  opts.mirror_devices = cfg.mirror_devices;
  opts.mirror_policy = cfg.mirror_policy;
  opts.parity_devices = cfg.parity_devices;
  opts.parity_chunk_blocks = cfg.parity_chunk_blocks;
  opts.spare_devices = cfg.spare_devices;
  wl::TestBed bed(opts);
  std::vector<std::unique_ptr<sim::Workload>> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.nthreads));
  for (int t = 0; t < cfg.nthreads; ++t) jobs.push_back(factory(bed, t));
  sim::RunnerOptions ropts;
  ropts.horizon = cfg.horizon;
  ropts.max_ops = cfg.max_ops;
  sim::RunStats stats = sim::run_workloads(jobs, ropts);
  if (!cfg.stats_path.empty()) {
    (void)bed.kernel().dump_stats_to(cfg.stats_path);
  }
  if (!cfg.trace_path.empty() && bed.device().tracer() != nullptr) {
    (void)bed.device().tracer()->dump_jsonl(cfg.trace_path);
  }
  return stats;
}

inline void print_header(const char* title, const char* unit) {
  std::printf("\n%s  [%s]\n", title, unit);
  std::printf("%-12s", "");
}

inline void print_row_label(const char* label) { std::printf("%-12s", label); }

/// Machine-readable result sink: collects (series, label, value) rows and
/// writes BENCH_<name>.json next to the binary on destruction, so every
/// bench run leaves a data point and the perf trajectory accumulates
/// across PRs.
///
/// Schema v2: rows may carry their own unit and a gating direction —
/// "up" (higher is better; trend.py fails CI on a >threshold drop) or
/// "down" (lower is better, e.g. latency; trend.py fails on a >threshold
/// increase). Untagged rows keep the legacy behaviour (gated as "up" when
/// the report unit is MBps). A report can also record the BenchRun
/// configurations it measured (add_config) so the JSON artifact is
/// self-describing.
class JsonReport {
 public:
  explicit JsonReport(std::string name, std::string unit = "")
      : name_(std::move(name)), unit_(std::move(unit)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  /// Legacy row in the report's default unit, e.g.
  /// add("Bento", "seq-1t/32KB", 114.2).
  void add(std::string series, std::string label, double value) {
    rows_.push_back(Row{std::move(series), std::move(label), value, "", ""});
  }

  /// Tagged row: `direction` is "up", "down", or "" (tracked, not gated).
  void add(std::string series, std::string label, double value,
           std::string unit, std::string direction) {
    rows_.push_back(Row{std::move(series), std::move(label), value,
                        std::move(unit), std::move(direction)});
  }

  /// Latency attribution: p50 rides along untagged-direction (tracked
  /// only), p99 is gated downward — a >threshold p99 increase fails CI
  /// even if bandwidth improved.
  void add_latency(const std::string& series, const std::string& label,
                   const sim::LatencyHistogram& h) {
    add(series + ".p50", label, static_cast<double>(h.quantile(0.50)), "ns",
        "");
    add(series + ".p99", label, static_cast<double>(h.quantile(0.99)), "ns",
        "down");
  }

  /// Record the provenance of one measured configuration.
  void add_config(std::string cname, const BenchRun& run) {
    Config c;
    c.name = std::move(cname);
    c.fs = run.fs;
    c.mount_opts = run.mount_opts;
    c.nthreads = run.nthreads;
    c.device_blocks = run.device_blocks;
    c.stripe_devices = run.stripe_devices;
    c.mirror_devices = run.mirror_devices;
    c.parity_devices = run.parity_devices;
    c.spare_devices = run.spare_devices;
    configs_.push_back(std::move(c));
  }

 private:
  struct Row {
    std::string series;
    std::string label;
    double value;
    std::string unit;       // "" = report default
    std::string direction;  // "up" | "down" | "" (tracked only)
  };

  struct Config {
    std::string name;
    std::string fs;
    std::string mount_opts;
    int nthreads = 1;
    std::uint64_t device_blocks = 0;
    int stripe_devices = 1;
    int mirror_devices = 1;
    int parity_devices = 1;
    int spare_devices = 0;
  };

  static void escape(std::FILE* f, const std::string& s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') std::fputc('\\', f);
      std::fputc(c, f);
    }
  }

  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"schema_version\": 2,\n"
                 "  \"unit\": \"%s\",\n",
                 name_.c_str(), unit_.c_str());
    if (!configs_.empty()) {
      std::fprintf(f, "  \"configs\": [\n");
      for (std::size_t i = 0; i < configs_.size(); ++i) {
        const Config& c = configs_[i];
        std::fprintf(f, "    {\"name\": \"");
        escape(f, c.name);
        std::fprintf(f, "\", \"fs\": \"");
        escape(f, c.fs);
        std::fprintf(f, "\", \"mount_opts\": \"");
        escape(f, c.mount_opts);
        std::fprintf(f,
                     "\", \"threads\": %d, \"device_blocks\": %llu, "
                     "\"stripe_devices\": %d, \"mirror_devices\": %d, "
                     "\"parity_devices\": %d, \"spare_devices\": %d}%s\n",
                     c.nthreads,
                     static_cast<unsigned long long>(c.device_blocks),
                     c.stripe_devices, c.mirror_devices, c.parity_devices,
                     c.spare_devices, i + 1 < configs_.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
    }
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {\"series\": \"");
      escape(f, rows_[i].series);
      std::fprintf(f, "\", \"label\": \"");
      escape(f, rows_[i].label);
      std::fprintf(f, "\", \"value\": %.6g", rows_[i].value);
      if (!rows_[i].unit.empty()) {
        std::fprintf(f, ", \"unit\": \"");
        escape(f, rows_[i].unit);
        std::fprintf(f, "\"");
      }
      if (!rows_[i].direction.empty()) {
        std::fprintf(f, ", \"direction\": \"");
        escape(f, rows_[i].direction);
        std::fprintf(f, "\"");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  std::string name_;
  std::string unit_;
  std::vector<Row> rows_;
  std::vector<Config> configs_;
};

}  // namespace bsim::bench
