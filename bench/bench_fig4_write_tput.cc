// Figure 4 (a-c): write throughput for 32KB / 128KB / 1024KB I/O sizes,
// seq-1t / rnd-1t / rnd-32t, MBps.
//
// Expected shape (paper §6.5.2): Bento ~= C-Kernel, with Bento somewhat
// better at large sizes because BentoFS writeback batches sequential pages
// through ->writepages (one log transaction for many pages) while the VFS
// baseline commits one transaction per ->writepage. FUSE is nearly flush
// with the x-axis: its writeback runs become FUSE write requests whose
// transactions issue per-block O_DIRECT writes each followed by an fsync
// of the whole disk file (§6.4).
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  struct Config {
    const char* label;
    bool sequential;
    int threads;
  };
  const Config configs[] = {{"seq-1t", true, 1},
                            {"rnd-1t", false, 1},
                            {"rnd-32t", false, 32}};
  struct Size {
    const char* label;
    std::size_t iosize;
    std::uint64_t max_ops;
  };
  const Size sizes[] = {{"32KB", 32 << 10, 12'000},
                        {"128KB", 128 << 10, 4'000},
                        {"1024KB", 1 << 20, 1'000}};

  std::printf("Figure 4: Write Performance, Throughput (MBps)\n");
  JsonReport json("fig4_write_tput", "MBps");
  for (const auto& size : sizes) {
    std::printf("\n(%s writes)\n", size.label);
    std::printf("%-10s %10s %10s %10s\n", "fs", "seq-1t", "rnd-1t",
                "rnd-32t");
    for (const auto& [label, fsname] : kKernelFses) {
      std::printf("%-10s", label.c_str());
      for (const auto& cfg : configs) {
        BenchRun run;
        run.fs = fsname;
        run.nthreads = cfg.threads;
        run.max_ops = size.max_ops;
        run.horizon = 20 * sim::kSecond;
        wl::SharedFile file;
        auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
          return std::make_unique<wl::WriteMicro>(bed, file, cfg.sequential,
                                                  size.iosize, tid, 42);
        });
        std::printf(" %10.1f", stats.mbytes_per_sec());
        json.add(label, std::string(cfg.label) + "/" + size.label,
                 stats.mbytes_per_sec());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
