// Table 6: macrobenchmarks — varmail (ops/s), fileserver (ops/s), and
// untar of the Linux source tree (seconds; lower is better) — across all
// four file systems including the ext4 (data=journal) comparator.
//
// Expected shape (paper §6.6):
//   varmail:    Bento ~= C-Kernel; FUSE ~13x slower; ext4 ~2.5x faster
//               (group commit shares journal flushes across threads).
//   fileserver: Bento ~1.3x C-Kernel (writepages batching); FUSE collapses;
//               ext4 ~1.3x Bento (device-throughput-bound for both).
//   untar:      Bento ~1.6x faster than C-Kernel; ext4 ~3x faster than
//               Bento; FUSE two orders of magnitude slower.
//
// Note: one varmail/fileserver "op" here is a whole personality iteration
// (several filebench flowops), so absolute ops/s differ from the paper by
// a constant factor; the cross-FS ratios are directly comparable. Untar
// replays a 1/4-scale synthetic linux-4.15 manifest and reports measured
// seconds at that scale.
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  std::printf("Table 6: Macrobenchmark Performance\n");
  JsonReport json("table6_macro", "mixed");
  std::printf("%-10s %16s %18s %12s\n", "fs", "Varmail (ops/s)",
              "Fileserver (ops/s)", "Untar (s)");

  const auto manifest = wl::linux_tree_manifest(/*scale=*/0.25, 1);

  for (const auto& [label, fsname] : kAllFses) {
    std::printf("%-10s", label.c_str());

    // ---- varmail: 16 threads, fsync-heavy mail personality ----
    {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = 16;
      run.horizon = 30 * sim::kSecond;
      run.max_ops = 60'000;
      auto set = std::make_shared<wl::MailSet>();
      auto stats = run_bench(run, [&, set](wl::TestBed& bed, int tid) {
        return std::make_unique<wl::Varmail>(bed, *set, tid, 11);
      });
      std::printf(" %16.0f", stats.ops_per_sec());
      json.add(label, "varmail_ops_per_s", stats.ops_per_sec());
      std::fflush(stdout);
    }

    // ---- fileserver: 50 threads ----
    {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = 50;
      run.horizon = 30 * sim::kSecond;
      run.max_ops = 6'000;
      run.device_blocks = 524'288;  // 2 GiB
      auto set = std::make_shared<wl::ServerSet>();
      auto stats = run_bench(run, [&, set](wl::TestBed& bed, int tid) {
        return std::make_unique<wl::Fileserver>(bed, *set, tid, 13);
      });
      std::printf(" %18.0f", stats.ops_per_sec());
      json.add(label, "fileserver_ops_per_s", stats.ops_per_sec());
      std::fflush(stdout);
    }

    // ---- untar (single thread, runs to completion) ----
    {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = 1;
      run.horizon = 100'000 * sim::kSecond;  // completion-bound
      run.device_blocks = 524'288;           // 2 GiB
      auto stats = run_bench(run, [&](wl::TestBed& bed, int) {
        return std::make_unique<wl::Untar>(bed, manifest);
      });
      std::printf(" %12.1f\n", sim::to_seconds(stats.elapsed));
      json.add(label, "untar_seconds", sim::to_seconds(stats.elapsed));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n(untar at 1/4 scale of linux-4.15: %zu entries; multiply by ~4 for "
      "full-tree comparisons)\n",
      manifest.size());
  return 0;
}
