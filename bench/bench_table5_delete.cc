// Table 5: deletefiles microbenchmark, ops/sec, 1 and 32 threads, over a
// pre-created file set.
//
// Expected shape (paper §6.5.4): Bento ~= C-Kernel (unlink is one small
// synchronous log transaction); FUSE ~60x slower (those same transaction
// writes each become pwrite + whole-file fsync from userspace).
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  std::printf("Table 5: Delete Microbenchmark Performance (Ops/sec)\n");
  JsonReport json("table5_delete", "ops/s");
  std::printf("%-10s %12s %12s\n", "fs", "1 Thread", "32 Threads");
  for (const auto& [label, fsname] : kKernelFses) {
    std::printf("%-10s", label.c_str());
    for (const int threads : {1, 32}) {
      BenchRun run;
      run.fs = fsname;
      run.nthreads = threads;
      run.horizon = 8 * sim::kSecond;
      const std::uint64_t nfiles = 60'000;
      auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
        return std::make_unique<wl::DeleteFiles>(bed, nfiles,
                                                 /*dirwidth=*/100, tid,
                                                 threads);
      });
      std::printf(" %12.0f", stats.ops_per_sec());
      json.add(label, std::to_string(threads) + "t", stats.ops_per_sec());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
