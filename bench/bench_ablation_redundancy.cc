// Ablation: RAID1 mirrored volumes vs one device.
//
// Sweeps 1/2/4-way mirrors at a fixed LOGICAL volume size and measures
//   raw-rndread    — random 4 KiB reads at QD>1: balanced across replicas,
//                    so bandwidth should scale ~linearly with member count
//                    (the acceptance gate: >=1.8x at a 2-way mirror).
//   raw-seqwrite   — durable sequential writes: replicated to every member
//                    CONCURRENTLY via per-member submit_async, so the
//                    mirrored write stays within ~10% of one device.
//   degraded-rndread — the 2-way mirror after fail_member(1): all reads
//                    fall back to the survivor (~1x one device).
//   rebuild-rndread  — foreground random reads while the failed member
//                    resyncs: between degraded and healthy (the rebuild
//                    competes for the source's channels but backpressure
//                    keeps the foreground first).
//   Bento-seqwrite — buffered sequential writes through the full
//                    xv6-on-Bento stack mounted on the mirrored volume.
#include <array>
#include <vector>

#include "blockdev/mirrored.h"
#include "common.h"
#include "sim/rng.h"
#include "sim/thread.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

constexpr std::uint64_t kLogicalBlocks = 32'768;  // 128 MiB volume

std::unique_ptr<blk::MirroredDevice> make_volume(std::size_t nmirrors) {
  blk::MirrorParams mp;
  mp.nmirrors = nmirrors;
  blk::DeviceParams member;
  member.nblocks = kLogicalBlocks;
  return std::make_unique<blk::MirroredDevice>(mp, member);
}

/// Random 4 KiB read bandwidth at QD>1: 4096 reads, 64 per batch, up to
/// 8 batches in flight. Optional member failure / rebuild first.
double raw_rnd_read(std::size_t nmirrors, bool fail_one, bool rebuilding) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto vol = make_volume(nmirrors);
  sim::Rng rng(7);
  if (fail_one) vol->fail_member(nmirrors - 1);
  if (rebuilding) vol->start_rebuild(nmirrors - 1);

  constexpr std::size_t kReads = 4096;
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kDepth = 8;
  std::vector<std::array<std::byte, blk::kBlockSize>> bufs(kBatch);

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;
  for (std::size_t r = 0; r < kReads; r += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_read(rng.below(vol->nblocks()),
                                           bufs[i]));
    }
    if (inflight.size() == kDepth) {
      vol->wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol->submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol->wait(t);
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kReads * blk::kBlockSize) / (1e6 * secs);
}

/// Durable sequential write bandwidth: 8 MiB in 256-block batches, up to
/// 4 batches in flight, FLUSH at the end.
double raw_seq_write(std::size_t nmirrors) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto vol = make_volume(nmirrors);

  constexpr std::uint64_t kTotal = 2048;  // blocks (fits every write cache)
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kDepth = 4;
  std::array<std::byte, blk::kBlockSize> payload{};
  payload.fill(std::byte{0x5A});

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;
  for (std::uint64_t b = 0; b < kTotal; b += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_write(b + i, payload));
    }
    if (inflight.size() == kDepth) {
      vol->wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol->submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol->wait(t);
  vol->flush();
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kTotal * blk::kBlockSize) / (1e6 * secs);
}

/// Buffered sequential writes through the mounted Bento deployment.
double fs_seq_write(int nmirrors) {
  BenchRun run;
  run.fs = "xv6_bento";
  run.nthreads = 1;
  run.max_ops = 1'000;
  run.horizon = 20 * sim::kSecond;
  run.mirror_devices = nmirrors;
  wl::SharedFile file;
  auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
    return std::make_unique<wl::WriteMicro>(bed, file, /*sequential=*/true,
                                            1 << 20, tid, 42);
  });
  return stats.mbytes_per_sec();
}

}  // namespace

int main() {
  reset_costs();

  std::printf("Ablation: mirrored volumes — redundancy vs bandwidth "
              "(MBps)\n\n");
  std::printf("%-10s %12s %10s %12s %10s %14s\n", "mirrors", "raw-rndread",
              "scaling", "raw-seqwrite", "w-ratio", "Bento-seqwrite");

  JsonReport json("redundancy", "MBps");
  double base_read = 0, base_write = 0;
  for (const std::size_t n : {1UL, 2UL, 4UL}) {
    const double r = raw_rnd_read(n, false, false);
    const double w = raw_seq_write(n);
    const double f = fs_seq_write(static_cast<int>(n));
    if (n == 1) {
      base_read = r;
      base_write = w;
    }
    const std::string label = std::to_string(n) + "way";
    json.add("raw-rndread", label, r);
    json.add("raw-seqwrite", label, w);
    json.add("Bento-seqwrite", label, f);
    json.add("raw-rndread-scaling", label, base_read > 0 ? r / base_read : 0);
    json.add("raw-seqwrite-ratio", label,
             base_write > 0 ? w / base_write : 0);
    std::printf("%-10zu %12.1f %9.2fx %12.1f %9.2fx %14.1f\n", n, r,
                base_read > 0 ? r / base_read : 0.0, w,
                base_write > 0 ? w / base_write : 0.0, f);
    std::fflush(stdout);
  }

  const double degraded = raw_rnd_read(2, /*fail_one=*/true, false);
  const double rebuilding = raw_rnd_read(2, /*fail_one=*/true,
                                         /*rebuilding=*/true);
  json.add("degraded-rndread", "2way-1failed", degraded);
  json.add("rebuild-rndread", "2way-resync", rebuilding);
  std::printf("\n%-22s %12.1f\n", "degraded (2way-1fail)", degraded);
  std::printf("%-22s %12.1f\n", "during rebuild", rebuilding);
  return 0;
}
