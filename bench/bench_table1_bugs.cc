// Tables 1 & 2: the bug study (§2.1) and the extensibility-mechanism
// comparison (§2.2), regenerated from the categorized corpus by the
// analysis pipeline in src/bugs.
#include <cstdio>
#include <string>

#include "bugs/bugs.h"
#include "common.h"

int main() {
  const auto records = bsim::bugs::corpus();
  const auto analysis = bsim::bugs::analyze(records);
  std::printf("%s\n", bsim::bugs::render_table1(analysis).c_str());
  std::printf("%s\n", bsim::bugs::render_table2().c_str());

  bsim::bench::JsonReport json("table1_bugs", "bugs");
  for (const auto& row : analysis.rows) {
    json.add("table1", std::string(bsim::bugs::subcategory_name(row.subcategory)),
             row.count);
  }
  json.add("summary", "total", analysis.total);
  json.add("summary", "rust_preventable", analysis.rust_preventable);
  return 0;
}
