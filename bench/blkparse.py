#!/usr/bin/env python3
"""blkparse-style analyzer for the simulator's trace JSONL dumps.

Input is the ring dump produced by blk::Tracer::dump_jsonl (armed with the
"trace=N" mount option; benches write it via BenchRun::trace_path):

  line 1   {"type": "header", "schema": 1, "capacity": N, "devices": [...]}
  ...      {"t": ns, "ev": "Q|P|U|M|D|C|X|F|TO|TC|JW|JR|JK", "dev": i,
            "id": n, ["parent": n,] "block": n, "n": n, "op": "R|W|F|J"}
  last     {"type": "trailer", "emitted": N, "dropped": N, "counts": [...]}

The analyzer reconstructs per-bio latencies from the event stream —
queue wait (Q->D), service (D->C), and total (Q->C) — and validates the
stream's invariants:

  - per-id monotonicity: Q.t <= D.t <= C.t (ids are GLOBAL across device
    slots: a mirror read's Q lands on the volume slot while its D/C land
    on the member that served it; fan-out fragments get fresh ids linked
    by an X event carrying the parent id)
  - with --stats STATS.json (a Kernel::dump_stats snapshot), the
    trailer's exact per-device event counts — which survive ring
    overflow — are cross-checked against DeviceStats on every LEAF
    device: D == read_requests + write_requests, M == merges,
    F == flushes. (Volume slots route without dispatching, so they carry
    Q/C but no D.)

Exit codes: 0 = ok, 1 = malformed input, 2 = invariant/stats mismatch.
Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def fail(code, msg):
    print(f"blkparse.py: {msg}", file=sys.stderr)
    sys.exit(code)


def parse(path):
    try:
        with open(path) as f:
            raw = [ln for ln in f if ln.strip()]
    except OSError as e:
        fail(1, f"cannot read {path}: {e}")
    if len(raw) < 2:
        fail(1, f"{path}: too short for header + trailer")
    try:
        header = json.loads(raw[0])
        trailer = json.loads(raw[-1])
        events = [json.loads(ln) for ln in raw[1:-1]]
    except json.JSONDecodeError as e:
        fail(1, f"{path}: bad JSON: {e}")
    if header.get("type") != "header":
        fail(1, f"{path}: first line is not a header")
    if trailer.get("type") != "trailer":
        fail(1, f"{path}: last line is not a trailer")
    for e in events:
        for k in ("t", "ev", "dev", "id"):
            if k not in e:
                fail(1, f"{path}: event missing '{k}': {e}")
    return header, events, trailer


def check_monotone(events):
    """Per-id Q <= D <= C across all device slots. Returns #ids checked."""
    qs, ds, cs = {}, {}, {}
    for e in events:
        bucket = {"Q": qs, "D": ds, "C": cs}.get(e["ev"])
        if bucket is not None:
            bucket.setdefault(e["id"], []).append(e["t"])
    bad = []
    for i, dts in ds.items():
        if i in qs and max(qs[i]) > min(dts):
            bad.append((i, "Q after D", max(qs[i]), min(dts)))
        if i in cs and max(dts) > min(cs[i]):
            bad.append((i, "D after C", max(dts), min(cs[i])))
    for i, cts in cs.items():
        if i in qs and max(qs[i]) > min(cts):
            bad.append((i, "Q after C", max(qs[i]), min(cts)))
    for i, what, a, b in bad[:10]:
        print(f"blkparse.py: id {i}: {what} ({a} > {b})", file=sys.stderr)
    if bad:
        fail(2, f"{len(bad)} ids violate Q <= D <= C")
    return len(set(qs) | set(ds) | set(cs))


def latency_summary(events, devices):
    """Reconstruct Q->D / D->C / Q->C per device of the D/C event."""
    q_at = {}
    for e in events:
        if e["ev"] == "Q":
            q_at.setdefault(e["id"], e["t"])
    per_dev = {}
    d_at = {}
    for e in events:
        if e["ev"] == "D":
            d_at[e["id"]] = e["t"]
            if e["id"] in q_at:
                per_dev.setdefault(e["dev"], {"qd": [], "dc": [], "qc": []})[
                    "qd"].append(e["t"] - q_at[e["id"]])
        elif e["ev"] == "C":
            stats = per_dev.setdefault(e["dev"],
                                       {"qd": [], "dc": [], "qc": []})
            if e["id"] in d_at:
                stats["dc"].append(e["t"] - d_at[e["id"]])
            if e["id"] in q_at:
                stats["qc"].append(e["t"] - q_at[e["id"]])
    rows = []
    for dev in sorted(per_dev):
        name = devices[dev] if dev < len(devices) else str(dev)
        s = per_dev[dev]
        row = [name]
        for k in ("qd", "dc", "qc"):
            vals = s[k]
            if vals:
                row.append(f"{len(vals)}x avg={sum(vals)/len(vals):.0f}ns "
                           f"max={max(vals)}ns")
            else:
                row.append("-")
        rows.append(row)
    if rows:
        print(f"{'device':<12} {'Q->D (wait)':<32} {'D->C (service)':<32} "
              f"{'Q->C (total)':<32}")
        for row in rows:
            print(f"{row[0]:<12} {row[1]:<32} {row[2]:<32} {row[3]:<32}")


def leaf_devices(counts):
    """Trailer count entries for devices with no registered children."""
    names = {c["name"] for c in counts}
    return [c for c in counts if not any(n.startswith(c["name"] + "/")
                                         for n in names)]


def cross_check(trailer, stats_path):
    try:
        with open(stats_path) as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(1, f"cannot read stats snapshot {stats_path}: {e}")
    dev_stats = {}
    for obj in snap.get("devices", []):
        if obj.get("struct") == "DeviceStats":
            dev_stats[obj["device"]] = obj
    mismatches = 0
    checked = 0
    for c in leaf_devices(trailer.get("counts", [])):
        s = dev_stats.get(c["name"])
        if s is None:
            print(f"blkparse.py: no DeviceStats for traced device "
                  f"'{c['name']}' in {stats_path}", file=sys.stderr)
            mismatches += 1
            continue
        pairs = [
            ("D", c.get("D", 0),
             s["read_requests"] + s["write_requests"],
             "read_requests+write_requests"),
            ("M", c.get("M", 0), s["merges"], "merges"),
            ("F", c.get("F", 0), s["flushes"], "flushes"),
        ]
        for letter, traced, counted, what in pairs:
            checked += 1
            if traced != counted:
                print(f"blkparse.py: {c['name']}: traced {letter}={traced} "
                      f"!= DeviceStats.{what}={counted}", file=sys.stderr)
                mismatches += 1
    if mismatches:
        fail(2, f"{mismatches} trace/stats mismatches")
    print(f"blkparse.py: stats cross-check ok "
          f"({checked} counters on leaf devices)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="trace JSONL dump (Tracer::dump_jsonl)")
    ap.add_argument("--stats", default=None,
                    help="Kernel::dump_stats snapshot to cross-check against")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the latency table (checks only)")
    args = ap.parse_args()

    header, events, trailer = parse(args.trace)
    devices = header.get("devices", [])
    dropped = trailer.get("dropped", 0)

    if dropped == 0:
        nids = check_monotone(events)
        print(f"blkparse.py: {len(events)} events, {nids} ids, "
              f"Q <= D <= C holds")
    else:
        # The ring overwrote its oldest events: per-id sequences are
        # incomplete, but the trailer's per-device counts stay exact.
        print(f"blkparse.py: ring dropped {dropped} events; "
              f"skipping per-id monotonicity (counts stay exact)")

    if not args.quiet:
        latency_summary(events, devices)

    if args.stats:
        cross_check(trailer, args.stats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
