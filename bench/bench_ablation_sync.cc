// Ablation A3: sync granularity (§6.4). The FUSE deployment's durable
// block write is pwrite + fsync of the *whole disk file*; the kernel
// deployments write one block synchronously. We sweep the host-side fsync
// cost to show it is the first-order term in FUSE's create collapse, and
// print the kernel Bento number as the reference line.
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

double run_create(const char* fs) {
  BenchRun run;
  run.fs = fs;
  run.nthreads = 1;
  run.horizon = 30 * sim::kSecond;
  run.max_ops = 3'000;
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
           return std::make_unique<wl::CreateFiles>(bed, 16384, 100, tid, 7);
         })
      .ops_per_sec();
}

}  // namespace

int main() {
  std::printf("Ablation A3: whole-file fsync cost sweep (create, 1 thread)\n");
  JsonReport json("sync", "creates/s");
  reset_costs();
  const double bento = run_create("xv6_bento");
  std::printf("%-28s %12.1f\n", "kernel Bento (reference)", bento);
  json.add("Bento", "reference", bento);

  std::printf("%18s %12s\n", "host fsync (us)", "FUSE creates/s");
  for (const sim::Nanos host : {sim::usec(100), sim::usec(500), sim::usec(2200),
                                sim::usec(5000), sim::usec(10000)}) {
    reset_costs();
    sim::costs().host_file_fsync = host;
    const double ops = run_create("xv6_fuse");
    std::printf("%18lld %12.1f\n",
                static_cast<long long>(host / sim::kMicrosecond), ops);
    json.add("FUSE", std::to_string(host / sim::kMicrosecond) + "us", ops);
    std::fflush(stdout);
  }
  reset_costs();
  return 0;
}
