// fsync latency attribution: per-op pwrite+fsync round-trip time (the
// journal commit path end to end) on a plain device, a 4-member RAID0
// volume, and a 4+1 RAID5 volume. Every configuration reports the
// latency histogram the Runner collects per step — p50 tracked, p99
// GATED downward by trend.py — alongside the ops/s rate (gated upward),
// so a latency regression fails CI even when throughput improved.
//
// Each run also arms the block-layer trace ring ("trace=N") and dumps
// the unified stats snapshot + the trace JSONL; CI smoke-runs
// bench/blkparse.py over these to cross-check the traced event counts
// against DeviceStats.
#include "common.h"

#include "kernel/types.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

/// pwrite + fsync per step: the Runner's per-step latency histogram is
/// exactly the per-op commit latency.
class FsyncWrite final : public sim::Workload {
 public:
  FsyncWrite(wl::TestBed& bed, std::size_t iosize, int tid)
      : bed_(bed), iosize_(iosize), tid_(tid), buf_(iosize) {
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      buf_[i] = static_cast<std::byte>((i * 31 + 7) & 0xff);
    }
  }

  void setup() override {
    proc_ = bed_.kernel().new_process();
    const std::string path = "/mnt/fsync" + std::to_string(tid_);
    auto fd = bed_.kernel().open(*proc_, path,
                                 kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) throw std::runtime_error("fsynclat: open failed");
    fd_ = fd.value();
  }

  std::int64_t step() override {
    auto n = bed_.kernel().pwrite(*proc_, fd_, buf_, off_);
    if (!n.ok()) return -1;
    if (bed_.kernel().fsync(*proc_, fd_) != kern::Err::Ok) return -1;
    off_ += iosize_;
    if (off_ >= kFileBytes) off_ = 0;
    return static_cast<std::int64_t>(n.value());
  }

 private:
  static constexpr std::uint64_t kFileBytes = 16ull << 20;

  wl::TestBed& bed_;
  std::size_t iosize_;
  int tid_;
  std::vector<std::byte> buf_;
  std::unique_ptr<kern::Process> proc_;
  int fd_ = -1;
  std::uint64_t off_ = 0;
};

struct Config {
  const char* name;
  int stripe = 1;
  int parity = 1;
};

}  // namespace

int main() {
  std::printf("fsync latency: pwrite(4K)+fsync per op, xv6-on-Bento\n");
  std::printf("%-10s %10s %12s %12s %12s\n", "volume", "ops/s", "p50(us)",
              "p99(us)", "max(us)");

  JsonReport json("fsynclat", "ops/s");
  const Config configs[] = {
      {"plain", 1, 1}, {"striped4", 4, 1}, {"parity4", 1, 4}};
  for (const Config& c : configs) {
    reset_costs();
    BenchRun run;
    run.fs = "xv6_bento";
    run.nthreads = 1;
    run.horizon = 30 * sim::kSecond;
    run.max_ops = 2'000;
    run.stripe_devices = c.stripe;
    run.parity_devices = c.parity;
    // Arm the trace ring and leave a snapshot + trace next to the
    // binary for the analyzer smoke run (ring sized to hold the run).
    run.mount_opts = "trace=200000";
    run.stats_path = std::string("STATS_fsynclat_") + c.name + ".json";
    run.trace_path = std::string("TRACE_fsynclat_") + c.name + ".jsonl";
    const sim::RunStats stats =
        run_bench(run, [&](wl::TestBed& bed, int tid) {
          return std::make_unique<FsyncWrite>(bed, 4096, tid);
        });
    std::printf("%-10s %10.1f %12.1f %12.1f %12.1f\n", c.name,
                stats.ops_per_sec(),
                static_cast<double>(stats.latency.quantile(0.50)) / 1e3,
                static_cast<double>(stats.latency.quantile(0.99)) / 1e3,
                static_cast<double>(stats.latency.max()) / 1e3);
    std::fflush(stdout);
    json.add_config(c.name, run);
    json.add("fsync", c.name, stats.ops_per_sec(), "ops/s", "up");
    json.add_latency("fsync-lat", c.name, stats.latency);
  }
  reset_costs();
  return 0;
}
