// Failure-path throughput: pwrite(4K)+fsync under a programmable fault
// schedule (periodic controller brown-outs) with the request queue's
// bounded-retry policy armed, on a plain device, a 2-way mirror, and a
// 4+1 RAID5 volume. Every faulted configuration reports ops/s (gated
// upward by trend.py) and the per-op commit latency (p99 gated downward)
// alongside a healthy reference row (tracked, not gated), plus the
// volume-wide retry counters.
//
// The schedule is tuned so every scheduled fault is healed by a retry
// (backoff 200us > down window 50us): the bench FAILS its own run if no
// retry succeeded, so CI notices when the retry path stops engaging.
// The traces these runs dump contain requeue (R) events and retried
// bios; CI uploads them as artifacts but does NOT run blkparse's
// event-count cross-check over them.
#include "common.h"

#include "blockdev/aggregate.h"
#include "kernel/types.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

/// pwrite + fsync per step: the Runner's per-step latency histogram is
/// the per-op commit latency, retries included.
class FsyncWrite final : public sim::Workload {
 public:
  FsyncWrite(wl::TestBed& bed, std::size_t iosize, int tid)
      : bed_(bed), iosize_(iosize), tid_(tid), buf_(iosize) {
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      buf_[i] = static_cast<std::byte>((i * 13 + 5) & 0xff);
    }
  }

  void setup() override {
    proc_ = bed_.kernel().new_process();
    const std::string path = "/mnt/fault" + std::to_string(tid_);
    auto fd = bed_.kernel().open(*proc_, path,
                                 kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) throw std::runtime_error("faultpath: open failed");
    fd_ = fd.value();
  }

  std::int64_t step() override {
    auto n = bed_.kernel().pwrite(*proc_, fd_, buf_, off_);
    if (!n.ok()) return -1;
    if (bed_.kernel().fsync(*proc_, fd_) != kern::Err::Ok) return -1;
    off_ += iosize_;
    if (off_ >= kFileBytes) off_ = 0;
    return static_cast<std::int64_t>(n.value());
  }

 private:
  static constexpr std::uint64_t kFileBytes = 16ull << 20;

  wl::TestBed& bed_;
  std::size_t iosize_;
  int tid_;
  std::vector<std::byte> buf_;
  std::unique_ptr<kern::Process> proc_;
  int fd_ = -1;
  std::uint64_t off_ = 0;
};

struct Config {
  const char* name;
  int mirror = 1;
  int parity = 1;
};

/// Retries execute on the queue where the fault fired: the volume's own
/// queue for a plain device, every member queue for an aggregate. Sum
/// the whole tree.
void sum_queue_stats(blk::BlockDevice& dev, blk::RequestQueueStats& out) {
  const auto& s = dev.queue().stats();
  out.retries += s.retries;
  out.retry_successes += s.retry_successes;
  out.deadline_expirations += s.deadline_expirations;
  if (auto* agg = dynamic_cast<blk::AggregateDevice*>(&dev)) {
    for (std::size_t i = 0; i < agg->members(); ++i) {
      sum_queue_stats(agg->member(i), out);
    }
  }
}

struct Result {
  sim::RunStats stats;
  blk::RequestQueueStats queues;  // whole-tree retry counters
};

/// One measured run. With `faulted` set, every device in the volume gets
/// a periodic down window (2ms up / 50us down, always failing) armed
/// before the workload starts and cleared before unmount, so teardown
/// flushes run healthy.
Result run_faultpath(const BenchRun& cfg, bool faulted) {
  wl::BedOptions opts;
  opts.fs = cfg.fs;
  opts.device_blocks = cfg.device_blocks;
  opts.mount_opts = cfg.mount_opts;
  opts.device = cfg.device;
  opts.mirror_devices = cfg.mirror_devices;
  opts.parity_devices = cfg.parity_devices;
  wl::TestBed bed(opts);

  sim::SimThread armer(-2);
  if (faulted) {
    sim::ScopedThread in(armer);
    blk::FaultSchedule fs;
    fs.up_interval = sim::msec(2);
    fs.down_interval = sim::usec(50);
    fs.fail_p = 1.0;
    fs.seed = 97;
    bed.device().set_fault_schedule(fs);
  }

  std::vector<std::unique_ptr<sim::Workload>> jobs;
  for (int t = 0; t < cfg.nthreads; ++t) {
    jobs.push_back(std::make_unique<FsyncWrite>(bed, 4096, t));
  }
  sim::RunnerOptions ropts;
  ropts.horizon = cfg.horizon;
  ropts.max_ops = cfg.max_ops;
  Result r;
  r.stats = sim::run_workloads(jobs, ropts);
  sum_queue_stats(bed.device(), r.queues);
  if (faulted) {
    sim::ScopedThread in(armer);
    bed.device().clear_fault_schedule();
  }
  if (!cfg.stats_path.empty()) {
    (void)bed.kernel().dump_stats_to(cfg.stats_path);
  }
  if (!cfg.trace_path.empty() && bed.device().tracer() != nullptr) {
    (void)bed.device().tracer()->dump_jsonl(cfg.trace_path);
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "fault-path: pwrite(4K)+fsync under scheduled faults + retry, "
      "xv6-on-Bento\n");
  std::printf("%-10s %-8s %10s %12s %10s %10s %10s\n", "volume", "state",
              "ops/s", "p99(us)", "retries", "healed", "expired");

  JsonReport json("faultpath", "ops/s");
  const Config configs[] = {
      {"plain", 1, 1}, {"mirror2", 2, 1}, {"parity4", 1, 4}};
  bool retry_engaged = false;
  for (const Config& c : configs) {
    reset_costs();
    BenchRun run;
    run.fs = "xv6_bento";
    run.nthreads = 1;
    run.horizon = 30 * sim::kSecond;
    run.max_ops = 1'500;
    run.mirror_devices = c.mirror;
    run.parity_devices = c.parity;
    // Bounded retry heals every scheduled fault: the 200us backoff always
    // clears the 50us down window. Trace ring armed for the artifact
    // upload (retried bios — do not blkparse).
    run.mount_opts = "retries=4,retry_backoff_us=200,trace=200000";
    run.stats_path = std::string("STATS_faultpath_") + c.name + ".json";
    run.trace_path = std::string("TRACE_faultpath_") + c.name + ".jsonl";

    for (const bool faulted : {false, true}) {
      BenchRun r = run;
      if (!faulted) {  // healthy reference run leaves no artifacts
        r.stats_path.clear();
        r.trace_path.clear();
      }
      const Result res = run_faultpath(r, faulted);
      const char* state = faulted ? "faulted" : "healthy";
      std::printf("%-10s %-8s %10.1f %12.1f %10llu %10llu %10llu\n", c.name,
                  state, res.stats.ops_per_sec(),
                  static_cast<double>(res.stats.latency.quantile(0.99)) / 1e3,
                  static_cast<unsigned long long>(res.queues.retries),
                  static_cast<unsigned long long>(res.queues.retry_successes),
                  static_cast<unsigned long long>(
                      res.queues.deadline_expirations));
      std::fflush(stdout);
      if (faulted) {
        json.add_config(c.name, run);
        json.add("faulted", c.name, res.stats.ops_per_sec(), "ops/s", "up");
        json.add_latency("faulted-lat", c.name, res.stats.latency);
        json.add("retries", c.name,
                 static_cast<double>(res.queues.retries), "count", "");
        json.add("retry-successes", c.name,
                 static_cast<double>(res.queues.retry_successes), "count",
                 "");
        if (res.queues.retry_successes > 0) retry_engaged = true;
      } else {
        json.add("healthy", c.name, res.stats.ops_per_sec(), "ops/s", "");
      }
    }
  }
  reset_costs();
  if (!retry_engaged) {
    std::fprintf(stderr,
                 "faultpath: no retry ever succeeded — the retry path did "
                 "not engage\n");
    return 1;
  }
  return 0;
}
