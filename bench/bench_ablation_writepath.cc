// Ablation: the journaled write path — pipelined commits, cross-op group
// commit, and request-queue plugging (ISSUE 5).
//
// Sweeps the buffered sequential-write workload through the full
// xv6-on-Bento stack on 1/2/4/8-member striped volumes, toggling each
// write-path mechanism via mount options:
//   full        — pipeline + group commit + plug (the defaults)
//   nopipeline  — commits redeem their tickets synchronously
//   nogroup     — max_log_batch=1: one commit per closed operation
//   noplug      — flusher drains and relaxed-mode commits skip the
//                 request plug (QD tickets instead of one merged pass)
// plus a C-kernel (xv6_vfs) row showing the per-page ->writepage path's
// log_commits with and without group commit.
//
// Acceptance gates (ISSUE 5): the full config must scale >=2.5x from 1
// to 8 members on Bento-seqwrite (1.69x before this work), and group
// commit must cut the C-kernel's log_commits >=5x on the same trace.
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "sim/thread.h"
#include "xv6fs_c/xv6c.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

constexpr std::uint64_t kChunkBlocks = 16;  // 64 KiB chunks

struct FsRow {
  double mbps = 0;
  std::uint64_t log_commits = 0;
};

/// Buffered sequential writes through the mounted deployment; returns
/// throughput and (for the C-kernel row) the journal's commit count.
FsRow fs_seq_write(const std::string& fs, int ndev, const char* opts) {
  wl::BedOptions bopts;
  bopts.fs = fs;
  bopts.mount_opts = opts;
  bopts.stripe_devices = ndev;
  bopts.stripe_chunk_blocks = kChunkBlocks;
  wl::TestBed bed(bopts);
  wl::SharedFile file;
  std::vector<std::unique_ptr<sim::Workload>> jobs;
  jobs.push_back(std::make_unique<wl::WriteMicro>(bed, file,
                                                  /*sequential=*/true, 1 << 20,
                                                  /*thread_id=*/0, 42));
  sim::RunnerOptions ropts;
  ropts.horizon = 20 * sim::kSecond;
  ropts.max_ops = 1'000;
  const sim::RunStats stats = sim::run_workloads(jobs, ropts);

  FsRow row;
  row.mbps = stats.mbytes_per_sec();
  if (fs == "xv6_vfs") {
    auto* mnt = static_cast<xv6c::Xv6cMount*>(
        bed.kernel().sb_at("/mnt")->fs_info);
    row.log_commits = mnt->log_stats().commits;
  }
  return row;
}

}  // namespace

int main() {
  reset_costs();
  const int devs[] = {1, 2, 4, 8};
  const std::pair<const char*, const char*> configs[] = {
      {"Bento-seqwrite", ""},            // full: pipeline + group + plug
      {"Bento-nopipeline", "nopipeline"},
      {"Bento-nogroup", "nogroup"},
      {"Bento-noplug", "noplug"},
  };

  std::printf("Ablation: journaled write path — pipelined commits, group "
              "commit, plugging (MBps)\n\n");
  std::printf("%-18s %8s %8s %8s %8s %9s\n", "config", "1dev", "2dev", "4dev",
              "8dev", "8/1 scale");

  JsonReport json("writepath", "MBps");
  for (const auto& [series, opts] : configs) {
    double first = 0, last = 0;
    std::printf("%-18s", series);
    for (const int n : devs) {
      const FsRow row = fs_seq_write("xv6_bento", n, opts);
      if (n == 1) first = row.mbps;
      last = row.mbps;
      json.add(series, std::to_string(n) + "dev", row.mbps);
      std::printf(" %8.1f", row.mbps);
      std::fflush(stdout);
    }
    const double scale = first > 0 ? last / first : 0.0;
    json.add(series + std::string("-scaling"), "8dev", scale);
    std::printf(" %8.2fx\n", scale);
  }

  // C-kernel row: the per-page ->writepage path, group commit on vs off.
  // The mechanism under test is the commit count, not bandwidth.
  const FsRow grouped = fs_seq_write("xv6_vfs", 1, "");
  const FsRow ungrouped = fs_seq_write("xv6_vfs", 1, "nogroup");
  const double reduction =
      grouped.log_commits > 0
          ? static_cast<double>(ungrouped.log_commits) /
                static_cast<double>(grouped.log_commits)
          : 0.0;
  json.add("C-kernel-MBps", "group", grouped.mbps);
  json.add("C-kernel-MBps", "nogroup", ungrouped.mbps);
  json.add("C-kernel-log-commits", "group",
           static_cast<double>(grouped.log_commits));
  json.add("C-kernel-log-commits", "nogroup",
           static_cast<double>(ungrouped.log_commits));
  json.add("C-kernel-commit-reduction", "group-vs-nogroup", reduction);
  std::printf("\nC-kernel (xv6_vfs, 1dev): log_commits %llu (group) vs %llu "
              "(nogroup) — %.1fx fewer; %.1f vs %.1f MBps\n",
              static_cast<unsigned long long>(grouped.log_commits),
              static_cast<unsigned long long>(ungrouped.log_commits),
              reduction, grouped.mbps, ungrouped.mbps);
  return 0;
}
