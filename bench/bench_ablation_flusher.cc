// Ablation: background flusher + QD>1 async submission vs writer-context
// writeback (queue depth 1).
//
// "off"  mounts with -o noflusher: every threshold writeback runs on the
//        writer's clock, exactly the pre-flusher behaviour.
// "on"   is the default mount: a per-device flusher thread drains dirty
//        pages/buffers in large elevator-sorted batches through the async
//        request path, so the writer only pays the poke.
//
// Expected shape: buffered-write throughput rises with the flusher on —
// the writer no longer serializes on its own writeback and pipelines with
// the drain inside the bounded max_backlog window — but stays device-
// bound at steady state (balance_dirty_pages-style throttling caps the
// in-flight backlog). The FUSE row is unaffected (no flusher — its
// collapse is the §6.4 transport).
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  struct Mode {
    const char* label;
    const char* opts;
  };
  const Mode modes[] = {{"writer-ctx", "noflusher"}, {"flusher", ""}};
  struct Config {
    const char* label;
    bool sequential;
    std::size_t iosize;
    std::uint64_t max_ops;
  };
  const Config configs[] = {{"seq/128KB", true, 128 << 10, 4'000},
                            {"rnd/128KB", false, 128 << 10, 4'000},
                            {"seq/1MB", true, 1 << 20, 1'000}};

  std::printf("Ablation: background flusher vs writer-context writeback "
              "(MBps)\n");
  JsonReport json("flusher", "MBps");
  for (const auto& cfg : configs) {
    std::printf("\n(%s buffered writes, 1 thread)\n", cfg.label);
    std::printf("%-10s %12s %12s %10s\n", "fs", "writer-ctx", "flusher",
                "speedup");
    for (const auto& [label, fsname] : kKernelFses) {
      double mbps[2] = {0, 0};
      for (int m = 0; m < 2; ++m) {
        BenchRun run;
        run.fs = fsname;
        run.nthreads = 1;
        run.max_ops = cfg.max_ops;
        run.horizon = 20 * sim::kSecond;
        run.mount_opts = modes[m].opts;
        wl::SharedFile file;
        auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
          return std::make_unique<wl::WriteMicro>(bed, file, cfg.sequential,
                                                  cfg.iosize, tid, 42);
        });
        mbps[m] = stats.mbytes_per_sec();
        json.add(std::string(label) + "/" + modes[m].label, cfg.label,
                 mbps[m]);
        // Foreground write latency: with the flusher on, the writer pays
        // the poke, not the drain — p99 is gated downward.
        json.add_latency(std::string(label) + "/" + modes[m].label + "-lat",
                         cfg.label, stats.latency);
      }
      std::printf("%-10s %12.1f %12.1f %9.2fx\n", label.c_str(), mbps[0],
                  mbps[1], mbps[0] > 0 ? mbps[1] / mbps[0] : 0.0);
      std::fflush(stdout);
    }
  }
  return 0;
}
