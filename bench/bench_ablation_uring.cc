// Ablation A5: io_uring for the FUSE daemon's block I/O (paper §8.1).
//
// The paper's future work: "Using this interface for the I/O accesses from
// the FUSE version of the xv6 file system in the evaluation could result
// in better performance numbers, potentially decreasing the overhead seen
// by using FUSE." We run the metadata-heavy create workload (FUSE's worst
// case, Table 4) and the write microbenchmark with the daemon's block I/O
// issued per-op via syscalls vs batched through io_uring, against kernel
// Bento as the reference.
//
// Expected shape: io_uring trims the per-block crossing tax, but FUSE's
// collapse is dominated by the whole-disk-file fsync semantics (§6.4,
// ablation A3), which batching cannot remove — so FUSE improves by a
// modest factor and stays far from Bento. This is the quantified version
// of the paper's "potentially decreasing the overhead".
#include "common.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

double create_ops(const std::string& fs, const std::string& opts,
                  bool plp_ssd = false) {
  BenchRun run;
  run.fs = fs;
  run.mount_opts = opts;
  run.nthreads = 1;
  run.horizon = 30 * sim::kSecond;
  run.max_ops = 3'000;
  if (plp_ssd) {
    // Enterprise SSD with power-loss protection: FLUSH is a no-op.
    run.device.flush_base = 0;
    run.device.destage_per_block = 0;
  }
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
           return std::make_unique<wl::CreateFiles>(bed, 16384, 100, tid, 7);
         })
      .ops_per_sec();
}

double write_mbps(const std::string& fs, const std::string& opts) {
  BenchRun run;
  run.fs = fs;
  run.mount_opts = opts;
  run.nthreads = 1;
  run.horizon = 20 * sim::kSecond;
  run.max_ops = 2'000;
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
           wl::SharedFile file;
           file.size = 64ull << 20;
           return std::make_unique<wl::WriteMicro>(bed, file,
                                                   /*sequential=*/true,
                                                   128 * 1024, tid, 7);
         })
      .mbytes_per_sec();
}

}  // namespace

int main() {
  reset_costs();
  std::printf("Ablation A5: FUSE block I/O over io_uring (paper §8.1)\n\n");
  JsonReport json("uring", "mixed");

  std::printf("%-26s %14s %16s\n", "deployment", "creates/s",
              "write MBps(128K)");
  const double bento_c = create_ops("xv6_bento", "");
  const double bento_w = write_mbps("xv6_bento", "");
  std::printf("%-26s %14.1f %16.1f\n", "Bento (reference)", bento_c, bento_w);

  const double fuse_c = create_ops("xv6_fuse", "");
  const double fuse_w = write_mbps("xv6_fuse", "");
  std::printf("%-26s %14.1f %16.1f\n", "FUSE (syscalls)", fuse_c, fuse_w);

  const double uring_c = create_ops("xv6_fuse", "io_uring");
  const double uring_w = write_mbps("xv6_fuse", "io_uring");
  std::printf("%-26s %14.1f %16.1f\n", "FUSE (io_uring)", uring_c, uring_w);
  json.add("Bento", "creates_per_s", bento_c);
  json.add("Bento", "write_mbps_128k", bento_w);
  json.add("FUSE", "creates_per_s", fuse_c);
  json.add("FUSE", "write_mbps_128k", fuse_w);
  json.add("FUSE+io_uring", "creates_per_s", uring_c);
  json.add("FUSE+io_uring", "write_mbps_128k", uring_w);

  std::printf("\nio_uring speedup on FUSE:  creates %.2fx, writes %.2fx\n",
              uring_c / fuse_c, uring_w / fuse_w);
  std::printf("remaining gap to Bento:    creates %.1fx, writes %.1fx\n",
              bento_c / uring_c, bento_w / uring_w);
  std::printf(
      "\nAt the defaults, batching crossings is invisible: each whole-file\n"
      "fsync forces a host-side fsync (~600us) plus a device FLUSH (~800us\n"
      "on consumer NVMe), and those semantics (ablation A3) are first-\n"
      "order. Removing them step by step exposes the crossing term that\n"
      "io_uring amortizes:\n\n");

  struct Step {
    const char* label;
    sim::Nanos host_fsync;
    bool plp;
  };
  const Step steps[] = {
      {"consumer SSD, 600us fsync", sim::usec(600), false},
      {"consumer SSD, free fsync", 0, false},
      {"PLP SSD, 600us fsync", sim::usec(600), true},
      {"PLP SSD, free fsync", 0, true},
  };
  std::printf("%-28s %14s %12s %10s\n", "configuration", "FUSE creates/s",
              "+io_uring", "speedup");
  for (const auto& step : steps) {
    reset_costs();
    sim::costs().host_file_fsync = step.host_fsync;
    const double plain = create_ops("xv6_fuse", "", step.plp);
    const double uring = create_ops("xv6_fuse", "io_uring", step.plp);
    std::printf("%-28s %14.1f %12.1f %9.2fx\n", step.label, plain, uring,
                uring / plain);
    json.add("sweep/plain", step.label, plain);
    json.add("sweep/io_uring", step.label, uring);
    std::fflush(stdout);
  }
  reset_costs();
  return 0;
}
