// Ablation: RAID5 parity volumes vs one device.
//
// Sweeps a 4+1 left-symmetric parity volume at a fixed LOGICAL volume
// size and measures
//   fullstripe-seqwrite — stripe-row-aligned sequential writes: the
//                    reconstruct-write path computes parity in memory and
//                    streams to all five members concurrently, so the
//                    aggregate bandwidth must scale with the data columns
//                    (the acceptance gate: >=2.5x one device at 4+1).
//   rmw-rndwrite   — scattered single-block writes: each takes the
//                    read-modify-write path (read old data + old parity,
//                    write new data + new parity), well below one device.
//   raw-rndread    — random 4 KiB reads at QD>1: healthy reads route
//                    straight to the owning data member, so ~4 devices
//                    worth of channels serve them.
//   degraded-rndread — after fail_member(2): reads of the lost column
//                    reconstruct from the surviving members' XOR.
//   rebuild-rndread  — foreground random reads while a hot spare
//                    resyncs: between degraded and healthy (rebuild XOR
//                    reads compete for every member's channels).
//   Bento-seqwrite — buffered sequential writes through the full
//                    xv6-on-Bento stack mounted on the parity volume.
#include <array>
#include <cstdio>
#include <vector>

#include "blockdev/mirrored.h"
#include "blockdev/parity.h"
#include "common.h"
#include "sim/rng.h"
#include "sim/thread.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

constexpr std::uint64_t kLogicalBlocks = 32'768;  // 128 MiB volume
constexpr std::uint64_t kChunk = 16;              // 64 KiB chunks
constexpr std::size_t kNData = 4;                 // 4+1 members

std::unique_ptr<blk::ParityDevice> make_parity(std::size_t nspares = 0) {
  blk::ParityParams pp;
  pp.ndata = kNData;
  pp.chunk_blocks = kChunk;
  pp.nspares = nspares;
  blk::DeviceParams member;
  // 1 intent-bitmap block + logical/ndata data blocks per member.
  member.nblocks = blk::ParityDevice::kBitmapBlocks + kLogicalBlocks / kNData;
  return std::make_unique<blk::ParityDevice>(pp, member);
}

/// One plain device of the same logical capacity (a 1-way mirror is the
/// established "one device" baseline; see bench_ablation_redundancy).
std::unique_ptr<blk::MirroredDevice> make_single() {
  blk::MirrorParams mp;
  mp.nmirrors = 1;
  blk::DeviceParams member;
  member.nblocks = kLogicalBlocks;
  return std::make_unique<blk::MirroredDevice>(mp, member);
}

/// Durable sequential write bandwidth in stripe-row-aligned batches (one
/// batch = one full 64-block stripe row), up to 4 rows in flight.
double seq_write(blk::BlockDevice& vol) {
  constexpr std::uint64_t kTotal = 2048;  // blocks
  constexpr std::size_t kBatch = kChunk * kNData;  // one full stripe row
  constexpr std::size_t kDepth = 4;
  std::array<std::byte, blk::kBlockSize> payload{};
  payload.fill(std::byte{0x5A});

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;
  for (std::uint64_t b = 0; b < kTotal; b += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_write(b + i, payload));
    }
    if (inflight.size() == kDepth) {
      vol.wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol.submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol.wait(t);
  vol.flush();
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kTotal * blk::kBlockSize) / (1e6 * secs);
}

/// Scattered single-block durable writes: every one is a read-modify-write
/// on a parity volume.
double rnd_write(blk::BlockDevice& vol) {
  constexpr std::size_t kWrites = 512;
  sim::Rng rng(11);
  std::array<std::byte, blk::kBlockSize> payload{};
  payload.fill(std::byte{0xC3});

  const sim::Nanos start = sim::now();
  for (std::size_t i = 0; i < kWrites; ++i) {
    blk::Bio bio = blk::Bio::single_write(rng.below(vol.nblocks()), payload);
    vol.submit({&bio, 1});
  }
  vol.flush();
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kWrites * blk::kBlockSize) / (1e6 * secs);
}

/// Random 4 KiB read bandwidth at QD>1: 4096 reads, 64 per batch, up to
/// 8 batches in flight.
double rnd_read(blk::BlockDevice& vol) {
  constexpr std::size_t kReads = 4096;
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kDepth = 8;
  sim::Rng rng(7);
  std::vector<std::array<std::byte, blk::kBlockSize>> bufs(kBatch);

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;
  for (std::size_t r = 0; r < kReads; r += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_read(rng.below(vol.nblocks()),
                                           bufs[i]));
    }
    if (inflight.size() == kDepth) {
      vol.wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol.submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol.wait(t);
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kReads * blk::kBlockSize) / (1e6 * secs);
}

/// Buffered sequential writes through the mounted Bento deployment.
double fs_seq_write(int parity_devices) {
  BenchRun run;
  run.fs = "xv6_bento";
  run.nthreads = 1;
  run.max_ops = 1'000;
  run.horizon = 20 * sim::kSecond;
  run.parity_devices = parity_devices;
  wl::SharedFile file;
  auto stats = run_bench(run, [&](wl::TestBed& bed, int tid) {
    return std::make_unique<wl::WriteMicro>(bed, file, /*sequential=*/true,
                                            1 << 20, tid, 42);
  });
  return stats.mbytes_per_sec();
}

}  // namespace

int main() {
  reset_costs();

  std::printf("Ablation: RAID5 parity volumes — 4+1 vs one device "
              "(MBps)\n\n");

  JsonReport json("parity", "MBps");

  double single_w, single_r;
  {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    auto dev = make_single();
    single_w = seq_write(*dev);
  }
  {
    sim::SimThread thread(1);
    sim::ScopedThread in(thread);
    auto dev = make_single();
    single_r = rnd_read(*dev);
  }

  double full_w, rmw_w, healthy_r;
  {
    sim::SimThread thread(2);
    sim::ScopedThread in(thread);
    auto pd = make_parity();
    full_w = seq_write(*pd);
  }
  {
    sim::SimThread thread(3);
    sim::ScopedThread in(thread);
    auto pd = make_parity();
    rmw_w = rnd_write(*pd);
  }
  {
    sim::SimThread thread(4);
    sim::ScopedThread in(thread);
    auto pd = make_parity();
    healthy_r = rnd_read(*pd);
  }

  double degraded_r, rebuild_r;
  {
    sim::SimThread thread(5);
    sim::ScopedThread in(thread);
    auto pd = make_parity();
    pd->fail_member(2);
    degraded_r = rnd_read(*pd);
  }
  {
    sim::SimThread thread(6);
    sim::ScopedThread in(thread);
    auto pd = make_parity(/*nspares=*/1);
    pd->fail_member(2);  // hot spare adopts and resync starts
    rebuild_r = rnd_read(*pd);
  }

  const double fs_w = fs_seq_write(static_cast<int>(kNData));

  const double scaling = single_w > 0 ? full_w / single_w : 0.0;
  json.add("fullstripe-seqwrite", "4+1", full_w);
  json.add("fullstripe-seqwrite", "1dev", single_w);
  json.add("fullstripe-scaling", "4+1", scaling);
  json.add("rmw-rndwrite", "4+1", rmw_w);
  json.add("raw-rndread", "4+1", healthy_r);
  json.add("raw-rndread", "1dev", single_r);
  json.add("degraded-rndread", "4+1-1failed", degraded_r);
  json.add("rebuild-rndread", "4+1-resync", rebuild_r);
  json.add("Bento-seqwrite", "4+1", fs_w);

  std::printf("%-24s %12s %12s %10s\n", "row", "1dev", "4+1", "ratio");
  std::printf("%-24s %12.1f %12.1f %9.2fx\n", "fullstripe-seqwrite",
              single_w, full_w, scaling);
  std::printf("%-24s %12s %12.1f\n", "rmw-rndwrite", "-", rmw_w);
  std::printf("%-24s %12.1f %12.1f %9.2fx\n", "raw-rndread", single_r,
              healthy_r, single_r > 0 ? healthy_r / single_r : 0.0);
  std::printf("%-24s %12s %12.1f\n", "degraded-rndread", "-", degraded_r);
  std::printf("%-24s %12s %12.1f\n", "rebuild-rndread", "-", rebuild_r);
  std::printf("%-24s %12s %12.1f\n", "Bento-seqwrite", "-", fs_w);

  if (scaling < 2.5) {
    std::printf("\nGATE FAILED: full-stripe seq-write %.2fx < 2.5x one "
                "device\n", scaling);
    return 1;
  }
  return 0;
}
