// Ablation: multi-device striped volumes (RAID0) vs one device.
//
// Sweeps 1/2/4/8 member devices at a fixed LOGICAL volume size and
// measures
//   raw-seqwrite  — durable sequential writes straight at the volume
//                   (batched bios, QD>1, one FLUSH at the end): the pure
//                   striping-layer scaling, no file system above.
//   raw-rndread   — random 4 KiB reads, several batches in flight: the
//                   per-member channel parallelism.
//   Bento-seqwrite — buffered sequential writes through the full
//                   xv6-on-Bento stack mounted on the striped volume
//                   (per-member flushers drain in the background).
//
// Expected shape: raw write/read bandwidth scales ~linearly with member
// count (each member sees 1/N of the blocks and transfers concurrently);
// the FS row scales until the software path (journal, page copies)
// dominates. The acceptance gate for this ablation is >=1.7x at 2 devices
// and >=3x at 4 on the aggregate write row.
#include <array>
#include <vector>

#include "blockdev/striped.h"
#include "common.h"
#include "sim/rng.h"
#include "sim/thread.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

constexpr std::uint64_t kLogicalBlocks = 32'768;  // 128 MiB volume
constexpr std::uint64_t kChunkBlocks = 16;        // 64 KiB chunks

std::unique_ptr<blk::StripedDevice> make_volume(std::size_t ndev) {
  blk::StripeParams sp;
  sp.ndevices = ndev;
  sp.chunk_blocks = kChunkBlocks;
  blk::DeviceParams child;
  child.nblocks = kLogicalBlocks / ndev;
  return std::make_unique<blk::StripedDevice>(sp, child);
}

/// Durable sequential write bandwidth: 8 MiB in 256-block batches, up to
/// 4 batches in flight, FLUSH at the end. Returns MBps of virtual time.
double raw_seq_write(std::size_t ndev) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto vol = make_volume(ndev);

  constexpr std::uint64_t kTotal = 2048;  // blocks (fits every write cache)
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kDepth = 4;
  std::array<std::byte, blk::kBlockSize> payload{};
  payload.fill(std::byte{0x5A});

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;  // keep batches' bios alive
  for (std::uint64_t b = 0; b < kTotal; b += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_write(b + i, payload));
    }
    if (inflight.size() == kDepth) {
      vol->wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol->submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol->wait(t);
  vol->flush();
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kTotal * blk::kBlockSize) / (1e6 * secs);
}

/// Random 4 KiB read bandwidth at QD>1: 4096 reads, 64 per batch, up to
/// 8 batches in flight.
double raw_rnd_read(std::size_t ndev) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto vol = make_volume(ndev);
  sim::Rng rng(7);

  constexpr std::size_t kReads = 4096;
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kDepth = 8;
  std::vector<std::array<std::byte, blk::kBlockSize>> bufs(kBatch);

  const sim::Nanos start = sim::now();
  std::vector<blk::Ticket> inflight;
  std::vector<std::vector<blk::Bio>> live;
  for (std::size_t r = 0; r < kReads; r += kBatch) {
    std::vector<blk::Bio> bios;
    bios.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      bios.push_back(blk::Bio::single_read(rng.below(vol->nblocks()),
                                           bufs[i]));
    }
    if (inflight.size() == kDepth) {
      vol->wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    live.push_back(std::move(bios));
    inflight.push_back(vol->submit_async(live.back()));
  }
  for (const blk::Ticket& t : inflight) vol->wait(t);
  const double secs = sim::to_seconds(sim::now() - start);
  return static_cast<double>(kReads * blk::kBlockSize) / (1e6 * secs);
}

/// Buffered sequential writes through the mounted Bento deployment.
sim::RunStats fs_seq_write(int ndev) {
  BenchRun run;
  run.fs = "xv6_bento";
  run.nthreads = 1;
  run.max_ops = 1'000;
  run.horizon = 20 * sim::kSecond;
  run.stripe_devices = ndev;
  run.stripe_chunk_blocks = kChunkBlocks;
  wl::SharedFile file;
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
    return std::make_unique<wl::WriteMicro>(bed, file, /*sequential=*/true,
                                            1 << 20, tid, 42);
  });
}

}  // namespace

int main() {
  reset_costs();
  const std::size_t devs[] = {1, 2, 4, 8};

  std::printf("Ablation: striped volumes — aggregate bandwidth vs member "
              "count (MBps)\n\n");
  std::printf("%-8s %14s %10s %14s %14s\n", "devices", "raw-seqwrite",
              "scaling", "raw-rndread", "Bento-seqwrite");

  JsonReport json("striping", "MBps");
  double base_write = 0;
  for (const std::size_t n : devs) {
    const double w = raw_seq_write(n);
    const double r = raw_rnd_read(n);
    const sim::RunStats fstats = fs_seq_write(static_cast<int>(n));
    const double f = fstats.mbytes_per_sec();
    if (n == 1) base_write = w;
    const std::string label = std::to_string(n) + "dev";
    json.add("raw-seqwrite", label, w);
    json.add("raw-rndread", label, r);
    json.add("Bento-seqwrite", label, f);
    // Per-op (1 MiB buffered write) latency through the full stack; p99
    // gated downward so stripe-routing regressions surface as latency.
    json.add_latency("Bento-seqwrite-lat", label, fstats.latency);
    json.add("raw-seqwrite-scaling", label,
             base_write > 0 ? w / base_write : 0.0);
    std::printf("%-8zu %14.1f %9.2fx %14.1f %14.1f\n", n, w,
                base_write > 0 ? w / base_write : 0.0, r, f);
    std::fflush(stdout);
  }
  return 0;
}
