// Ablation A7: the Strata-style NVM op-log (paper §3).
//
// The paper motivates Bento with extensions a developer would actually
// want to ship, and names this one: "prepending an operation log stored
// in NVM can dramatically improve write performance". xv6_nvmlog is that
// extension, built as a stacked Bento file system (NvmLogFs over the
// unmodified xv6 FS). We run the paper's own fsync-heavy macrobenchmark
// (varmail, Table 6) plus a small-synchronous-write microbenchmark, and
// compare against plain kernel-Bento xv6 and ext4 data=journal.
//
// Expected shape: varmail is dominated by fsync; the op-log turns each
// fsync from a journal commit into a ~0.5us persist barrier, so
// xv6_nvmlog clears both xv6 and ext4 by a wide margin. Non-sync
// workloads are unchanged (the log only interposes on the write path).
#include "common.h"

#include "kernel/kernel.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

double varmail_ops(const std::string& fs, int nthreads) {
  BenchRun run;
  run.fs = fs;
  run.nthreads = nthreads;
  run.horizon = 30 * sim::kSecond;
  run.max_ops = 20'000;
  auto set = std::make_shared<wl::MailSet>();
  return run_bench(run, [set](wl::TestBed& bed, int tid) {
           return std::make_unique<wl::Varmail>(bed, *set, tid, 11);
         })
      .ops_per_sec();
}

/// append-fsync: the mail/WAL pattern at its purest — small append, then
/// fsync, repeatedly, one file per thread.
class AppendFsync final : public sim::Workload {
 public:
  AppendFsync(wl::TestBed& bed, std::size_t iosize, int thread_id)
      : bed_(bed), iosize_(iosize), thread_id_(thread_id) {}

  void setup() override {
    proc_ = bed_.kernel().new_process();
    const std::string path = "/mnt/wal" + std::to_string(thread_id_);
    auto fd = bed_.kernel().open(*proc_, path,
                                 kern::kOCreat | kern::kOWrOnly);
    fd_ = fd.ok() ? fd.value() : -1;
    buf_.assign(iosize_, std::byte{0x57});
  }

  std::int64_t step() override {
    if (fd_ < 0) return -1;
    auto w = bed_.kernel().write(*proc_, fd_, buf_);
    if (!w.ok()) return -1;
    if (bed_.kernel().fsync(*proc_, fd_) != kern::Err::Ok) return -1;
    return static_cast<std::int64_t>(w.value());
  }

 private:
  wl::TestBed& bed_;
  std::size_t iosize_;
  int thread_id_;
  std::unique_ptr<kern::Process> proc_;
  int fd_ = -1;
  std::vector<std::byte> buf_;
};

double append_fsync_ops(const std::string& fs, std::size_t iosize) {
  BenchRun run;
  run.fs = fs;
  run.nthreads = 1;
  run.horizon = 20 * sim::kSecond;
  run.max_ops = 30'000;
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
           return std::make_unique<AppendFsync>(bed, iosize, tid);
         })
      .ops_per_sec();
}

}  // namespace

int main() {
  reset_costs();
  std::printf("Ablation A7: Strata-style NVM op-log over xv6 (paper §3)\n\n");

  JsonReport json("nvmlog", "ops/s");
  std::printf("%-14s %16s %20s %20s\n", "fs", "varmail ops/s",
              "4K append+fsync/s", "64K append+fsync/s");
  for (const auto& [label, fs] :
       std::vector<std::pair<std::string, std::string>>{
           {"Bento", "xv6_bento"},
           {"Bento+NVMlog", "xv6_nvmlog"},
           {"Ext4", "ext4j"}}) {
    const double vm = varmail_ops(fs, 1);
    const double a4 = append_fsync_ops(fs, 4096);
    const double a64 = append_fsync_ops(fs, 65536);
    std::printf("%-14s %16.0f %20.0f %20.0f\n", label.c_str(), vm, a4, a64);
    json.add(label, "varmail_ops_per_s", vm);
    json.add(label, "append_fsync_4k", a4);
    json.add(label, "append_fsync_64k", a64);
    std::fflush(stdout);
  }
  std::printf(
      "\nThe op-log converts fsync from a journal commit into one NVM\n"
      "persist barrier; digests push data to the lower FS in bulk off the\n"
      "critical path. This is the §3 velocity story: the extension is a\n"
      "stacked Bento module over an unmodified xv6.\n");
  return 0;
}
