// Ablation A1 (DESIGN.md §5.3): why Bento beats the VFS C baseline on
// large writes and untar — ->writepages batching. We run identical
// sequential 1 MB writes on both kernel deployments and report throughput
// together with journal-commit counts: the C baseline commits one log
// transaction per 4 KiB page, Bento one per writeback batch.
#include "common.h"
#include "xv6fs/fs.h"
#include "xv6fs_c/xv6c.h"

using namespace bsim;
using namespace bsim::bench;

int main() {
  reset_costs();
  std::printf("Ablation A1: ->writepage vs ->writepages (seq 1MB writes)\n");
  std::printf("%-10s %12s %14s %16s\n", "fs", "MBps", "log commits",
              "blocks logged");
  JsonReport json("ablation_writeback", "MBps");

  for (const auto& [label, fsname] :
       std::vector<std::pair<std::string, std::string>>{
           {"Bento", "xv6_bento"}, {"C-Kernel", "xv6_vfs"}}) {
    wl::BedOptions opts;
    opts.fs = fsname;
    wl::TestBed bed(opts);
    std::vector<std::unique_ptr<sim::Workload>> jobs;
    wl::SharedFile file;
    jobs.push_back(std::make_unique<wl::WriteMicro>(bed, file, true, 1 << 20,
                                                    0, 42));
    sim::RunnerOptions ropts;
    ropts.horizon = 20 * sim::kSecond;
    ropts.max_ops = 800;
    auto stats = sim::run_workloads(jobs, ropts);

    std::uint64_t commits = 0;
    std::uint64_t blocks = 0;
    auto* sb = bed.kernel().sb_at("/mnt");
    if (fsname == "xv6_bento") {
      auto& fs = static_cast<xv6::Xv6FileSystem&>(
          bento::BentoModule::from(*sb)->fs());
      commits = fs.log_stats().commits;
      blocks = fs.log_stats().blocks_logged;
    } else {
      auto* mnt = static_cast<xv6c::Xv6cMount*>(sb->fs_info);
      commits = mnt->log_stats().commits;
      blocks = mnt->log_stats().blocks_logged;
    }
    std::printf("%-10s %12.1f %14llu %16llu\n", label.c_str(),
                stats.mbytes_per_sec(),
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(blocks));
    json.add(label, "MBps", stats.mbytes_per_sec());
    json.add(label, "log_commits", static_cast<double>(commits));
    json.add(label, "blocks_logged", static_cast<double>(blocks));
  }
  std::printf(
      "\n(same data volume -> similar blocks logged; the commit-count gap is "
      "the ->writepages batching advantage)\n");
  return 0;
}
