#!/usr/bin/env python3
"""Self-test for trend.py's direction-aware regression gate.

Builds synthetic BENCH_*.json reports in temp directories, aggregates a
baseline, then checks:

  1. a >10% p99 latency INCREASE fails the gate even when the MBps row
     in the same report IMPROVED (the masking case the gate exists for),
  2. changes within the threshold pass,
  3. a legacy (untagged, MBps-unit) bandwidth drop still fails,
  4. tracked-only rows (direction "") never gate.

Run: test_trend_gate.py [path/to/trend.py]. Exit 0 = all cases pass.
"""

import json
import os
import subprocess
import sys
import tempfile

TREND = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "trend.py")


def write_report(directory, bench, unit, rows):
    with open(os.path.join(directory, f"BENCH_{bench}.json"), "w") as f:
        json.dump({"bench": bench, "schema_version": 2, "unit": unit,
                   "rows": rows}, f)


def run_trend(directory, baseline=None):
    cmd = [sys.executable, TREND, "--dir", directory]
    if baseline:
        cmd += ["--baseline", baseline]
    p = subprocess.run(cmd, capture_output=True, text=True)
    return p.returncode, p.stdout + p.stderr


def fsynclat_rows(mbps, p50, p99):
    return [
        {"series": "fsync", "label": "plain", "value": mbps,
         "unit": "MBps", "direction": "up"},
        {"series": "fsync-lat.p50", "label": "plain", "value": p50,
         "unit": "ns", "direction": ""},
        {"series": "fsync-lat.p99", "label": "plain", "value": p99,
         "unit": "ns", "direction": "down"},
    ]


def main():
    failures = []

    def check(name, ok, detail=""):
        print(f"{'ok' if ok else 'FAIL'}: {name}")
        if not ok:
            failures.append((name, detail))

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        os.mkdir(base_dir)
        write_report(base_dir, "fsynclat", "ops/s",
                     fsynclat_rows(mbps=100.0, p50=50_000, p99=200_000))
        write_report(base_dir, "legacy", "MBps", [
            {"series": "Bento", "label": "seq", "value": 500.0},
            {"series": "Bento-scaling", "label": "seq", "value": 3.0},
        ])
        rc, out = run_trend(base_dir)
        check("baseline aggregates", rc == 0, out)
        baseline = os.path.join(base_dir, "BENCH_TREND.json")

        # 1. p99 +50% while the bandwidth row improved: must FAIL.
        cur = os.path.join(tmp, "lat_regress")
        os.mkdir(cur)
        write_report(cur, "fsynclat", "ops/s",
                     fsynclat_rows(mbps=150.0, p50=50_000, p99=300_000))
        write_report(cur, "legacy", "MBps", [
            {"series": "Bento", "label": "seq", "value": 500.0},
            {"series": "Bento-scaling", "label": "seq", "value": 3.0},
        ])
        rc, out = run_trend(cur, baseline)
        check("p99 increase fails despite MBps improvement",
              rc == 2 and "fsync-lat.p99" in out, out)

        # 2. everything within threshold: must PASS.
        cur = os.path.join(tmp, "within")
        os.mkdir(cur)
        write_report(cur, "fsynclat", "ops/s",
                     fsynclat_rows(mbps=95.0, p50=52_000, p99=205_000))
        write_report(cur, "legacy", "MBps", [
            {"series": "Bento", "label": "seq", "value": 480.0},
            {"series": "Bento-scaling", "label": "seq", "value": 3.0},
        ])
        rc, out = run_trend(cur, baseline)
        check("within-threshold changes pass", rc == 0, out)

        # 3. legacy untagged MBps drop: must FAIL (back-compat).
        cur = os.path.join(tmp, "bw_regress")
        os.mkdir(cur)
        write_report(cur, "fsynclat", "ops/s",
                     fsynclat_rows(mbps=100.0, p50=50_000, p99=200_000))
        write_report(cur, "legacy", "MBps", [
            {"series": "Bento", "label": "seq", "value": 300.0},
            {"series": "Bento-scaling", "label": "seq", "value": 3.0},
        ])
        rc, out = run_trend(cur, baseline)
        check("legacy MBps drop fails", rc == 2 and "legacy/Bento" in out,
              out)

        # 4. tracked-only p50 doubling (direction "") + scaling-series
        #    drop: neither gates; must PASS.
        cur = os.path.join(tmp, "tracked_only")
        os.mkdir(cur)
        write_report(cur, "fsynclat", "ops/s",
                     fsynclat_rows(mbps=100.0, p50=120_000, p99=200_000))
        write_report(cur, "legacy", "MBps", [
            {"series": "Bento", "label": "seq", "value": 500.0},
            {"series": "Bento-scaling", "label": "seq", "value": 1.0},
        ])
        rc, out = run_trend(cur, baseline)
        check("tracked-only rows never gate", rc == 0, out)

        # TREND.md marks gated columns.
        with open(os.path.join(cur, "TREND.md")) as f:
            md = f.read()
        check("TREND.md marks gated series",
              "fsync-lat.p99 [ns]*" in md and "fsync-lat.p50 [ns] " in md.replace("|", " "),
              md)

    if failures:
        for name, detail in failures:
            print(f"--- {name} ---\n{detail}", file=sys.stderr)
        return 1
    print("test_trend_gate.py: all cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
