// Ablation A6: the eBPF design point (paper §2.2, Table 2).
//
// ExtFUSE accelerates FUSE by answering metadata requests from verified
// eBPF programs in the kernel — "for kernel code that can fit within the
// eBPF model, this provides safe extensibility without significant
// performance overhead". We run a stat-heavy workload (the web/file-
// serving pattern: resolve + stat the same hot set over and over) across
// the four design points in Table 2:
//
//   VFS (C)         — fast, unsafe
//   FUSE            — safe, slow (every stat is a daemon round trip
//                     through the writeback-cache-less metadata path)
//   FUSE + ExtFUSE  — safe, fast *for what fits the eBPF model*
//   Bento           — safe, fast, general
//
// Expected shape: ExtFUSE recovers most of FUSE's metadata gap (hot set
// cached in maps), landing near Bento/VFS; Bento needs no such carve-out
// because the whole file system already runs in the kernel.
#include "common.h"

#include "kernel/kernel.h"

using namespace bsim;
using namespace bsim::bench;

namespace {

/// statfiles: resolve and stat files from a pre-created hot set,
/// round-robin. Metadata-only (the ExtFUSE use case).
class StatFiles final : public sim::Workload {
 public:
  StatFiles(wl::TestBed& bed, int nfiles, int thread_id)
      : bed_(bed), nfiles_(nfiles), thread_id_(thread_id) {}

  void setup() override {
    proc_ = bed_.kernel().new_process();
    if (thread_id_ != 0) return;
    for (int i = 0; i < nfiles_; ++i) {
      auto fd = bed_.kernel().open(*proc_, path(i),
                                   kern::kOCreat | kern::kOWrOnly);
      if (fd.ok()) (void)bed_.kernel().close(*proc_, fd.value());
    }
  }

  std::int64_t step() override {
    auto st = bed_.kernel().stat(*proc_, path(next_));
    next_ = (next_ + 1) % nfiles_;
    return st.ok() ? 0 : -1;
  }

 private:
  std::string path(int i) const {
    return "/mnt/hot" + std::to_string(i) + ".dat";
  }

  wl::TestBed& bed_;
  int nfiles_;
  int thread_id_;
  std::unique_ptr<kern::Process> proc_;
  int next_ = 0;
};

double stat_ops(const std::string& fs, const std::string& opts) {
  BenchRun run;
  run.fs = fs;
  run.mount_opts = opts;
  run.nthreads = 1;
  run.horizon = 10 * sim::kSecond;
  run.max_ops = 200'000;
  return run_bench(run, [&](wl::TestBed& bed, int tid) {
           return std::make_unique<StatFiles>(bed, 64, tid);
         })
      .ops_per_sec();
}

}  // namespace

int main() {
  reset_costs();
  std::printf("Ablation A6: ExtFUSE (eBPF metadata caching) on a stat-heavy "
              "workload\n\n");
  JsonReport json("extfuse", "stats/s");
  std::printf("%-20s %14s %10s\n", "deployment", "stats/s", "vs FUSE");
  const double fuse = stat_ops("xv6_fuse", "");
  struct Row {
    const char* label;
    const char* fs;
    const char* opts;
  };
  const Row rows[] = {
      {"C-Kernel (VFS)", "xv6_vfs", ""},
      {"FUSE", "xv6_fuse", ""},
      {"FUSE + ExtFUSE", "xv6_fuse", "extfuse"},
      {"Bento", "xv6_bento", ""},
  };
  for (const auto& row : rows) {
    const double ops =
        (std::string_view(row.opts).empty() &&
         std::string_view(row.fs) == "xv6_fuse")
            ? fuse
            : stat_ops(row.fs, row.opts);
    std::printf("%-20s %14.0f %9.1fx\n", row.label, ops, ops / fuse);
    json.add(row.label, "stats_per_s", ops);
    std::fflush(stdout);
  }
  std::printf(
      "\nExtFUSE recovers the metadata fast path within the eBPF model;\n"
      "Table 2's generality column is why it stops there (see the\n"
      "VerifierRejects tests for what the model cannot express).\n");
  return 0;
}
