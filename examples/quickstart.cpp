// Quickstart: bring up the simulated kernel, format a device with the xv6
// file system, mount it through Bento, and do ordinary file work.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bento/bentofs.h"
#include "kernel/kernel.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {
std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}
}  // namespace

int main() {
  // Everything timed runs on a simulated thread (virtual nanoseconds).
  sim::SimThread main_thread(0);
  sim::ScopedThread in(main_thread);

  // 1. A kernel with one NVMe-like device, formatted as xv6.
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 65536;  // 256 MiB
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, /*ninodes=*/4096);

  // 2. Register the Bento file system module ("insmod") and mount it.
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  if (kernel.mount("xv6_bento", "ssd0", "/mnt") != kern::Err::Ok) {
    std::fprintf(stderr, "mount failed\n");
    return 1;
  }
  std::printf("mounted xv6 (via Bento) at /mnt\n");

  // 3. Ordinary POSIX-flavored work through the syscall surface.
  auto& p = kernel.proc();
  (void)kernel.mkdir(p, "/mnt/notes");
  auto fd = kernel.open(p, "/mnt/notes/hello.txt",
                        kern::kOCreat | kern::kORdWr);
  if (!fd.ok()) return 1;
  (void)kernel.write(p, fd.value(), bytes_of("hello from the Bento port!\n"));
  (void)kernel.fsync(p, fd.value());
  (void)kernel.close(p, fd.value());

  fd = kernel.open(p, "/mnt/notes/hello.txt", kern::kORdOnly);
  std::vector<std::byte> buf(128);
  auto n = kernel.read(p, fd.value(), buf);
  (void)kernel.close(p, fd.value());
  std::printf("read back %llu bytes: %.*s",
              static_cast<unsigned long long>(n.value()),
              static_cast<int>(n.value()),
              reinterpret_cast<const char*>(buf.data()));

  // 4. Look around.
  auto entries = kernel.readdir(p, "/mnt/notes");
  std::printf("/mnt/notes:");
  for (const auto& e : entries.value()) std::printf(" %s", e.name.c_str());
  std::printf("\n");

  auto st = kernel.statfs(p, "/mnt");
  std::printf("statfs: %llu/%llu blocks free, %llu/%llu inodes free\n",
              static_cast<unsigned long long>(st.value().free_blocks),
              static_cast<unsigned long long>(st.value().total_blocks),
              static_cast<unsigned long long>(st.value().free_inodes),
              static_cast<unsigned long long>(st.value().total_inodes));

  std::printf("virtual time elapsed: %.3f ms\n",
              static_cast<double>(sim::now()) / sim::kMillisecond);
  (void)kernel.umount("/mnt");
  std::printf("done.\n");
  return 0;
}
