// Encryption at rest via a stacked Bento file system (paper §3.4): the
// ecryptfs use case. A CryptFs layer over xv6 encrypts file data with
// ChaCha20 under a passphrase-derived key; the demo writes secrets
// through the stack, then plays the attacker and reads the lower layer
// directly — ciphertext only — and finally shows that the wrong
// passphrase cannot decrypt.
//
// Build & run:   cmake --build build && ./build/examples/encrypted_store
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bento/crypt.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  (void)mount->mount_init();
  return mount;
}

void hexdump(std::string_view label, std::span<const std::byte> data) {
  std::printf("%s:", std::string(label).c_str());
  for (std::size_t i = 0; i < std::min<std::size_t>(24, data.size()); ++i) {
    std::printf(" %02x", static_cast<unsigned>(data[i]));
  }
  std::printf("%s\n", data.size() > 24 ? " ..." : "");
}

}  // namespace

int main() {
  sim::SimThread main_thread(0);
  sim::ScopedThread in(main_thread);

  // Key derivation from a passphrase (like an ecryptfs mount).
  const auto key = bento::derive_key("correct horse battery staple",
                                     "bsim-demo-salt");
  std::printf("derived 256-bit key from passphrase\n");

  auto crypt = std::make_unique<bento::CryptFs>(make_xv6_mount(), key);
  auto* fs = crypt.get();
  bento::UserMount mount(std::make_unique<bento::MemBlockBackend>(16),
                         std::move(crypt));
  if (mount.mount_init() != kern::Err::Ok) return 1;

  // Write a secret through the encrypted mount.
  const std::string secret =
      "account: 1234-5678  pin: 9876  recovery: tulip-ferry-anvil";
  auto made = fs->create(mount.mkreq(), mount.borrow(), bento::kRootIno,
                         "vault.txt", 0644);
  mount.check_borrows();
  const auto ino = made.value().ino;
  (void)fs->write(mount.mkreq(), mount.borrow(), ino, 0, 0,
                  bytes_of(secret));
  (void)fs->sync_fs(mount.mkreq(), mount.borrow());
  mount.check_borrows();
  std::printf("wrote %zu bytes to vault.txt through the crypt layer\n",
              secret.size());

  // Read through the stack: plaintext.
  std::vector<std::byte> buf(secret.size());
  auto r = fs->read(mount.mkreq(), mount.borrow(), ino, 0, 0, buf);
  mount.check_borrows();
  std::printf("\nthrough the crypt mount: %.*s\n",
              static_cast<int>(r.value()),
              reinterpret_cast<const char*>(buf.data()));

  // The attacker reads the lower file system directly (stolen disk).
  auto& lower = fs->lower();
  std::vector<std::byte> at_rest(secret.size());
  (void)lower.fs().read(lower.mkreq(), lower.borrow(), ino, 0, 0, at_rest);
  lower.check_borrows();
  hexdump("\nat rest on the lower layer", at_rest);

  // Wrong passphrase: derive a different key and try to decrypt.
  const auto wrong = bento::derive_key("correct horse battery stable",
                                       "bsim-demo-salt");
  bento::ChaChaNonce nonce{};
  nonce[0] = 'B'; nonce[1] = 'C'; nonce[2] = 'F'; nonce[3] = '1';
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(ino >> (8 * i));
  }
  std::vector<std::byte> guess = at_rest;
  bento::chacha20_xor(wrong, nonce, 0, guess);
  hexdump("decrypted with a wrong key", guess);

  std::printf("\ncipher stats: %llu bytes encrypted, %llu decrypted\n",
              static_cast<unsigned long long>(fs->stats().bytes_encrypted),
              static_cast<unsigned long long>(fs->stats().bytes_decrypted));
  std::printf("virtual time elapsed: %.3f ms\n",
              static_cast<double>(sim::now()) / sim::kMillisecond);
  return 0;
}
