// Online upgrade (paper §4.8): replace a running file system with a new
// version — without unmounting, while files are open — via Bento's
// TransferableState mechanism. This is the paper's headline "high velocity"
// feature; the paper left it as future work and this reproduction
// implements it.
//
// The demo upgrades xv6fs-v1 to a v2 that adds an operation-counting
// feature, mid-workload, with an open file descriptor surviving the swap.
//
// Build & run:   cmake --build build && ./build/examples/online_upgrade
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bento/bentofs.h"
#include "kernel/kernel.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

/// "v2" of the file system: same on-disk format, plus a new in-memory
/// feature (an op counter a hypothetical new ioctl could expose). It
/// inherits everything and participates in state transfer.
class Xv6V2 final : public xv6::Xv6FileSystem {
 public:
  Xv6V2()
      : xv6::Xv6FileSystem([] {
          Options o;
          o.version = "xv6fs-v2+opcount";
          return o;
        }()) {}

  bento::Result<std::uint32_t> write(const bento::Request& req,
                                     bento::SbRef sb, bento::Ino ino,
                                     std::uint64_t fh, std::uint64_t off,
                                     std::span<const std::byte> in) override {
    writes_observed_ += 1;  // the new v2 feature
    return xv6::Xv6FileSystem::write(req, std::move(sb), ino, fh, off, in);
  }

  bento::Result<std::uint32_t> write_bulk(
      const bento::Request& req, bento::SbRef sb, bento::Ino ino,
      std::uint64_t off,
      std::span<const std::span<const std::byte>> pages) override {
    writes_observed_ += 1;  // batched writeback counts too
    return xv6::Xv6FileSystem::write_bulk(req, std::move(sb), ino, off,
                                          pages);
  }

  [[nodiscard]] std::uint64_t writes_observed() const {
    return writes_observed_;
  }

 private:
  std::uint64_t writes_observed_ = 0;
};

std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace

int main() {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 32768;
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 2048);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  (void)kernel.mount("xv6_bento", "ssd0", "/mnt");

  auto& p = kernel.proc();
  auto* module = bento::BentoModule::from(*kernel.sb_at("/mnt"));
  std::printf("running version: %s\n",
              std::string(module->fs().version()).c_str());

  // An application starts writing a log file and KEEPS IT OPEN.
  auto fd = kernel.open(p, "/mnt/app.log", kern::kOCreat | kern::kORdWr);
  (void)kernel.write(p, fd.value(), bytes_of("written under v1\n"));

  // Build up some state so the transfer is non-trivial.
  for (int i = 0; i < 100; ++i) {
    auto f = kernel.open(p, "/mnt/data" + std::to_string(i),
                         kern::kOCreat | kern::kOWrOnly);
    (void)kernel.write(p, f.value(), bytes_of("payload"));
    (void)kernel.close(p, f.value());
  }
  auto before = kernel.statfs(p, "/mnt");

  // ---- the online upgrade ----
  const sim::Nanos t0 = sim::now();
  const kern::Err e = module->upgrade(std::make_unique<Xv6V2>());
  const sim::Nanos upgrade_latency = sim::now() - t0;
  std::printf("upgrade: %s in %.1f us (application saw only this delay)\n",
              e == kern::Err::Ok ? "OK" : kern::err_name(e),
              static_cast<double>(upgrade_latency) / sim::kMicrosecond);
  std::printf("running version: %s\n",
              std::string(module->fs().version()).c_str());

  auto& v2 = static_cast<Xv6V2&>(module->fs());
  std::printf("state transferred (not re-scanned): %s\n",
              v2.restored_from_transfer() ? "yes" : "no");

  // The open file descriptor keeps working across the swap.
  (void)kernel.write(p, fd.value(), bytes_of("written under v2\n"));
  (void)kernel.fsync(p, fd.value());
  std::vector<std::byte> buf(128);
  auto n = kernel.pread(p, fd.value(), buf, 0);
  std::printf("open fd survived; file now reads:\n%.*s",
              static_cast<int>(n.value()),
              reinterpret_cast<const char*>(buf.data()));
  (void)kernel.close(p, fd.value());

  // Allocation accounting carried over exactly; the new feature is live.
  auto after = kernel.statfs(p, "/mnt");
  std::printf("free blocks before/after upgrade: %llu / %llu\n",
              static_cast<unsigned long long>(before.value().free_blocks),
              static_cast<unsigned long long>(after.value().free_blocks));
  std::printf("v2 feature active: observed %llu write ops since upgrade\n",
              static_cast<unsigned long long>(v2.writes_observed()));

  (void)kernel.umount("/mnt");
  return 0;
}
