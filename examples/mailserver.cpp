// A mail-server-shaped scenario (the workload class the paper's varmail
// macrobenchmark models): fsync-heavy small-file churn, run against two
// deployments of the *same* file-system code — kernel Bento and FUSE — to
// show the §6.4 effect end to end, with device-level I/O statistics.
//
// Build & run:   cmake --build build && ./build/examples/mailserver
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bento/bentofs.h"
#include "fuse/fuse.h"
#include "kernel/kernel.h"
#include "sim/rng.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

struct MailStats {
  double virtual_seconds = 0;
  std::uint64_t delivered = 0;
  std::uint64_t device_writes = 0;
  std::uint64_t device_flushes = 0;
};

MailStats run_mailserver(const char* fstype) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 65536;  // 256 MiB
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 4096);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  fuse::register_fuse_fs(kernel, "xv6_fuse", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  if (kernel.mount(fstype, "ssd0", "/mail") != kern::Err::Ok) {
    std::fprintf(stderr, "mount %s failed\n", fstype);
    std::exit(1);
  }

  auto& p = kernel.proc();
  (void)kernel.mkdir(p, "/mail/spool");
  sim::Rng rng(2026);
  std::vector<std::byte> message(8192, std::byte{'m'});

  const sim::Nanos start = sim::now();
  std::uint64_t delivered = 0;
  // Deliver mail: write + fsync (the mail server durability contract),
  // then occasionally expunge old messages.
  for (int i = 0; i < 400; ++i) {
    const std::string path = "/mail/spool/msg" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kOWrOnly);
    if (!fd.ok()) break;
    const std::size_t len = static_cast<std::size_t>(rng.range(512, 8192));
    (void)kernel.write(p, fd.value(),
                       std::span<const std::byte>(message.data(), len));
    (void)kernel.fsync(p, fd.value());  // mail must not be lost
    (void)kernel.close(p, fd.value());
    delivered += 1;
    if (i >= 50 && rng.chance(0.4)) {
      (void)kernel.unlink(p, "/mail/spool/msg" + std::to_string(i - 50));
    }
  }

  MailStats stats;
  stats.virtual_seconds = sim::to_seconds(sim::now() - start);
  stats.delivered = delivered;
  stats.device_writes = dev.stats().writes;
  stats.device_flushes = dev.stats().flushes;
  (void)kernel.umount("/mail");
  return stats;
}

}  // namespace

int main() {
  std::printf("mail-server scenario: 400 durable deliveries + expunges\n\n");
  std::printf("%-12s %14s %14s %12s %12s\n", "deployment", "deliveries/s",
              "virtual time", "dev writes", "dev flushes");
  for (const char* fs : {"xv6_bento", "xv6_fuse"}) {
    const auto s = run_mailserver(fs);
    std::printf("%-12s %14.1f %12.2fs %12llu %12llu\n", fs,
                static_cast<double>(s.delivered) / s.virtual_seconds,
                s.virtual_seconds,
                static_cast<unsigned long long>(s.device_writes),
                static_cast<unsigned long long>(s.device_flushes));
  }
  std::printf(
      "\nSame file-system code in both rows; the gap is the deployment: "
      "in-kernel block writes vs per-block pwrite+fsync from userspace "
      "(paper §6.4).\n");
  return 0;
}
