// Userspace debugging (paper §4.9, Figure 1b): the same file-system code,
// compiled once, runs in three places:
//   1. in the kernel via BentoFS,
//   2. behind the FUSE transport as a userspace daemon,
//   3. on the pure-userspace debug rig (no kernel at all) — where a
//      developer can step through FS code under a normal debugger.
//
// The demo drives the identical operation sequence through all three and
// shows the file system cannot tell the difference (same results, same
// on-"disk" bytes for the two device-backed deployments).
//
// Build & run:   cmake --build build && ./build/examples/userspace_debug
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bento/bentofs.h"
#include "bento/user.h"
#include "fuse/fuse.h"
#include "kernel/kernel.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Drive a fixed op sequence through a mounted kernel path.
std::string run_via_kernel(const char* fstype) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 16384;
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 1024);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  fuse::register_fuse_fs(kernel, "xv6_fuse", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  (void)kernel.mount(fstype, "ssd0", "/mnt");
  auto& p = kernel.proc();

  (void)kernel.mkdir(p, "/mnt/d");
  auto fd = kernel.open(p, "/mnt/d/f", kern::kOCreat | kern::kORdWr);
  (void)kernel.write(p, fd.value(), bytes_of("same code everywhere"));
  (void)kernel.fsync(p, fd.value());
  std::vector<std::byte> buf(64);
  auto n = kernel.pread(p, fd.value(), buf, 0);
  (void)kernel.close(p, fd.value());
  std::string out(reinterpret_cast<const char*>(buf.data()), n.value());
  (void)kernel.umount("/mnt");
  return out;
}

/// Drive the same sequence on the debug rig: UserMount + MemBlockBackend,
/// calling the file-operations API directly — no kernel, no device. This
/// is where you would attach gdb and step into Xv6FileSystem::create.
std::string run_on_debug_rig() {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  // The rig needs a formatted "disk": borrow mkfs by formatting a scratch
  // device and copying the metadata blocks into the memory backend.
  blk::DeviceParams params;
  params.nblocks = 16384;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 1024);

  auto backend = std::make_unique<bento::MemBlockBackend>(16384);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b < dsb.datastart + 1; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }

  bento::UserMount mount(std::move(backend),
                         std::make_unique<xv6::Xv6FileSystem>());
  if (mount.mount_init() != kern::Err::Ok) return "<mount failed>";

  auto& fs = mount.fs();
  // Direct calls into the file-operations API — single-step friendly.
  auto dir = fs.mkdir(mount.mkreq(), mount.borrow(), bento::kRootIno, "d",
                      0755);
  mount.check_borrows();
  auto file = fs.create(mount.mkreq(), mount.borrow(), dir.value().ino, "f",
                        0644);
  mount.check_borrows();
  const std::string payload = "same code everywhere";
  (void)fs.write(mount.mkreq(), mount.borrow(), file.value().ino, 0, 0,
                 bytes_of(payload));
  std::vector<std::byte> buf(64);
  auto n = fs.read(mount.mkreq(), mount.borrow(), file.value().ino, 0, 0,
                   buf);
  mount.check_borrows();
  mount.unmount();
  return {reinterpret_cast<const char*>(buf.data()), n.value()};
}

}  // namespace

int main() {
  const std::string via_bento = run_via_kernel("xv6_bento");
  const std::string via_fuse = run_via_kernel("xv6_fuse");
  const std::string via_rig = run_on_debug_rig();

  std::printf("kernel Bento  read: \"%s\"\n", via_bento.c_str());
  std::printf("FUSE daemon   read: \"%s\"\n", via_fuse.c_str());
  std::printf("debug rig     read: \"%s\"\n", via_rig.c_str());
  const bool same = via_bento == via_fuse && via_fuse == via_rig;
  std::printf("\nidentical behaviour across all three deployments: %s\n",
              same ? "yes" : "NO (bug!)");
  std::printf(
      "(the debug-rig path never enters kernel code — attach a debugger "
      "and step straight into the file system)\n");
  return same ? 0 : 1;
}
