// io_uring-style batched I/O (paper §8.1): a WAL-writer pattern issues a
// group of writes plus an fsync as one submission — a single user/kernel
// crossing — and harvests completions from shared memory. The demo
// measures the same batch as plain syscalls for comparison, and mounts
// the FUSE deployment with "-o io_uring" so the daemon's block I/O uses
// the ring too.
//
// Build & run:   cmake --build build && ./build/examples/async_io
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bento/bentofs.h"
#include "fuse/fuse.h"
#include "kernel/uring.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

int main() {
  sim::SimThread main_thread(0);
  sim::ScopedThread in(main_thread);

  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 65536;
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 4096);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  if (kernel.mount("xv6_bento", "ssd0", "/mnt") != kern::Err::Ok) return 1;
  auto& p = kernel.proc();

  // A WAL writer: 64 x 4 KiB appends + fsync, as one ring submission.
  auto fd = kernel.open(p, "/mnt/wal.log", kern::kOCreat | kern::kORdWr);
  if (!fd.ok()) return 1;
  std::vector<std::byte> block(4096, std::byte{0xAB});

  kern::IoUring ring(kernel, p, /*sq_entries=*/128);
  const auto t0 = sim::now();
  for (int i = 0; i < 64; ++i) {
    (void)ring.prep_write(fd.value(), block,
                          static_cast<std::uint64_t>(i) * block.size(),
                          static_cast<std::uint64_t>(i));
  }
  (void)ring.prep_fsync(fd.value(), /*datasync=*/true, 64);
  auto submitted = ring.submit();
  std::size_t completed = 0;
  while (auto cqe = ring.pop_cqe()) {
    if (cqe->err == kern::Err::Ok) completed += 1;
  }
  const auto uring_ns = sim::now() - t0;
  std::printf("io_uring: submitted %u SQEs in one enter, %zu completions, "
              "%.1f us\n",
              submitted.value(), completed,
              static_cast<double>(uring_ns) / 1000.0);

  // The same work as plain syscalls.
  const auto t1 = sim::now();
  for (int i = 0; i < 64; ++i) {
    (void)kernel.pwrite(p, fd.value(), block,
                        static_cast<std::uint64_t>(64 + i) * block.size());
  }
  (void)kernel.fsync(p, fd.value(), /*datasync=*/true);
  const auto sys_ns = sim::now() - t1;
  std::printf("syscalls: same 64 writes + fsync, %.1f us  "
              "(ring saved %.1f us of crossings)\n",
              static_cast<double>(sys_ns) / 1000.0,
              static_cast<double>(sys_ns - uring_ns) / 1000.0);
  (void)kernel.close(p, fd.value());
  (void)kernel.umount("/mnt");

  // FUSE deployment with the daemon's block I/O batched over io_uring.
  blk::DeviceParams params2;
  params2.nblocks = 65536;
  auto& dev2 = kernel.add_device("ssd1", params2);
  xv6::mkfs(dev2, 4096);
  fuse::register_fuse_fs(kernel, "xv6_fuse", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  if (kernel.mount("xv6_fuse", "ssd1", "/mnt2", "io_uring") !=
      kern::Err::Ok) {
    return 1;
  }
  auto fd2 = kernel.open(p, "/mnt2/via-fuse.txt",
                         kern::kOCreat | kern::kOWrOnly);
  if (fd2.ok()) {
    (void)kernel.write(p, fd2.value(), block);
    (void)kernel.fsync(p, fd2.value());
    (void)kernel.close(p, fd2.value());
  }
  auto* module = static_cast<fuse::FuseModule*>(
      bento::BentoModule::from(*kernel.sb_at("/mnt2")));
  std::printf("\nFUSE daemon over io_uring: %llu requests through the "
              "transport\n",
              static_cast<unsigned long long>(
                  module->conn_stats().requests));
  (void)kernel.umount("/mnt2");

  std::printf("virtual time elapsed: %.3f ms\n",
              static_cast<double>(sim::now()) / sim::kMillisecond);
  return 0;
}
