// Data provenance (paper §3, third motivating use case): a pipeline of
// "processes" reads sensor data, calibrates it, and writes reports; the
// provenance layer tracks which sources and executables every output
// depends on. When the sensor calibration turns out to be wrong, the
// invalidation query names exactly the derived data that must be
// regenerated — and the retained pre-overwrite version of the source is
// still readable for auditing, until gc() decides nothing needs it.
//
// Build & run:   cmake --build build && ./build/examples/provenance
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bento/provenance.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

using namespace bsim;

namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  (void)mount->mount_init();
  return mount;
}

const char* kind_str(const bento::ProvSource& s) {
  return s.kind == bento::ProvSource::Kind::Image ? "image" : "file";
}

}  // namespace

int main() {
  sim::SimThread main_thread(0);
  sim::ScopedThread in(main_thread);

  auto prov = std::make_unique<bento::ProvenanceFs>(make_xv6_mount());
  auto* fs = prov.get();
  bento::UserMount mount(std::make_unique<bento::MemBlockBackend>(16),
                         std::move(prov));
  if (mount.mount_init() != kern::Err::Ok) return 1;

  // Register the pipeline's "executables".
  fs->register_process(100, "ingest-v2.1");
  fs->register_process(200, "calibrate-v0.9");
  fs->register_process(300, "report-gen-v1.4");

  auto req = [&](std::uint32_t pid) {
    auto r = mount.mkreq();
    r.pid = pid;
    return r;
  };
  auto create = [&](std::string_view name) {
    auto made =
        fs->create(req(0), mount.borrow(), bento::kRootIno, name, 0644);
    mount.check_borrows();
    return made.value().ino;
  };
  auto write_as = [&](std::uint32_t pid, bento::Ino ino,
                      std::string_view data) {
    (void)fs->write(req(pid), mount.borrow(), ino, 0, 0, bytes_of(data));
    (void)fs->fsync(req(pid), mount.borrow(), ino, 0, false);
    mount.check_borrows();
  };
  auto read_as = [&](std::uint32_t pid, bento::Ino ino) {
    std::vector<std::byte> buf(64);
    (void)fs->read(req(pid), mount.borrow(), ino, 0, 0, buf);
    mount.check_borrows();
  };

  // The pipeline: sensor.raw -> calibrated.dat -> report.txt
  const auto sensor = create("sensor.raw");
  const auto calibrated = create("calibrated.dat");
  const auto report = create("report.txt");
  write_as(100, sensor, "raw readings: 17 19 23");
  read_as(200, sensor);
  write_as(200, calibrated, "calibrated: 17.2 19.1 23.4");
  read_as(300, calibrated);
  write_as(300, report, "Q2 anomaly report");

  auto& store = fs->store();
  std::printf("report.txt lineage:\n");
  for (const auto& s : store.lineage_of(report)) {
    if (s.kind == bento::ProvSource::Kind::Image) {
      std::printf("  %-6s %s\n", kind_str(s), s.image.c_str());
    } else {
      std::printf("  %-6s ino=%llu v%llu\n", kind_str(s),
                  static_cast<unsigned long long>(s.ino),
                  static_cast<unsigned long long>(s.seq));
    }
  }

  // The calibration was wrong; the sensor data gets re-ingested.
  std::printf("\nsensor.raw is re-ingested (old version retained: the\n"
              "report still derives from it)...\n");
  write_as(100, sensor, "raw readings: 17 19 23 29");

  std::printf("data invalidated by sensor.raw:");
  for (const auto ino : store.tainted_by(sensor)) {
    std::printf(" ino=%llu", static_cast<unsigned long long>(ino));
  }
  std::printf("  (= calibrated.dat and report.txt)\n");

  std::printf("outputs of calibrate-v0.9:");
  for (const auto ino : store.tainted_by_image("calibrate-v0.9")) {
    std::printf(" ino=%llu", static_cast<unsigned long long>(ino));
  }
  std::printf("\n");

  const auto v0 = store.read_version(sensor, 0);
  std::printf("\nretained sensor.raw v0 (%zu bytes): %.*s\n",
              v0 ? v0->size() : 0, v0 ? static_cast<int>(v0->size()) : 0,
              v0 ? reinterpret_cast<const char*>(v0->data()) : "");
  std::printf("retained bytes before gc: %llu\n",
              static_cast<unsigned long long>(store.retained_bytes()));

  // Regenerate the pipeline from the new sensor data (fresh invocations
  // of the tools — a new execution starts a new read set), then collect.
  fs->register_process(200, "calibrate-v0.9");
  fs->register_process(300, "report-gen-v1.4");
  read_as(200, sensor);
  write_as(200, calibrated, "calibrated: 17.2 19.1 23.4 29.3");
  read_as(300, calibrated);
  write_as(300, report, "Q2 anomaly report, revised");
  const auto reclaimed = store.gc();
  std::printf("after regeneration, gc reclaimed %llu bytes "
              "(old lineage no longer referenced)\n",
              static_cast<unsigned long long>(reclaimed));

  std::printf("virtual time elapsed: %.3f ms\n",
              static_cast<double>(sim::now()) / sim::kMillisecond);
  return 0;
}
