// Tests for the eBPF substrate (paper §2.2): the verifier's admission
// rules — the mechanism behind Table 2's safety=yes / generality=no for
// eBPF — and the VM + map semantics ExtFUSE builds on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::test {
namespace {

using ebpf::Insn;
using ebpf::Op;
using ebpf::Vm;

constexpr std::size_t kCtx = 64;

std::uint64_t ctx_u64(std::span<const std::byte> ctx, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, ctx.data() + off, 8);
  return v;
}

void set_ctx_u64(std::span<std::byte> ctx, std::size_t off, std::uint64_t v) {
  std::memcpy(ctx.data() + off, &v, 8);
}

// ---- verifier: accepted programs ----

TEST(VerifierTest, AcceptsMinimalProgram) {
  const std::vector<Insn> prog = {
      {Op::MovImm, 0, 0, 0, 42},
      {Op::Exit, 0, 0, 0, 0},
  };
  EXPECT_TRUE(ebpf::verify(prog, kCtx).ok);
}

TEST(VerifierTest, AcceptsBranchesThatInitializeR0OnAllPaths) {
  const std::vector<Insn> prog = {
      {Op::LdCtx8, 1, 0, 0, 0},
      {Op::JeqImm, 1, 0, +2, 7},   // -> 4
      {Op::MovImm, 0, 0, 0, 1},
      {Op::Ja, 0, 0, +1, 0},       // -> 5
      {Op::MovImm, 0, 0, 0, 2},
      {Op::Exit, 0, 0, 0, 0},
  };
  EXPECT_TRUE(ebpf::verify(prog, kCtx).ok);
}

// ---- verifier: rejection sweep (parameterized) ----

struct RejectCase {
  const char* name;
  std::vector<Insn> prog;
  const char* why;  // substring expected in the error
};

class VerifierRejects : public ::testing::TestWithParam<RejectCase> {};

TEST_P(VerifierRejects, RejectsWithDiagnostic) {
  const auto& c = GetParam();
  const auto r = ebpf::verify(c.prog, kCtx);
  EXPECT_FALSE(r.ok) << c.name;
  EXPECT_NE(std::string::npos, r.error.find(c.why))
      << c.name << ": got '" << r.error << "'";
}

INSTANTIATE_TEST_SUITE_P(
    AdmissionRules, VerifierRejects,
    ::testing::Values(
        RejectCase{"empty", {}, "empty"},
        RejectCase{"no_exit",
                   {{Op::MovImm, 0, 0, 0, 1}},
                   "end with Exit"},
        RejectCase{"backward_jump_loop",
                   {{Op::MovImm, 0, 0, 0, 1},
                    {Op::JeqImm, 0, 0, -1, 1},  // the classic while-loop
                    {Op::Exit, 0, 0, 0, 0}},
                   "backward"},
        RejectCase{"self_jump",
                   {{Op::MovImm, 0, 0, 0, 1},
                    {Op::Ja, 0, 0, 0, 0},
                    {Op::Exit, 0, 0, 0, 0}},
                   "backward or self"},
        RejectCase{"jump_out_of_range",
                   {{Op::MovImm, 0, 0, 0, 1},
                    {Op::Ja, 0, 0, +5, 0},
                    {Op::Exit, 0, 0, 0, 0}},
                   "out of range"},
        RejectCase{"uninitialized_read",
                   {{Op::AddImm, 3, 0, 0, 1},  // r3 never written
                    {Op::MovImm, 0, 0, 0, 0},
                    {Op::Exit, 0, 0, 0, 0}},
                   "uninitialized"},
        RejectCase{"uninitialized_src",
                   {{Op::MovImm, 0, 0, 0, 1},
                    {Op::MovReg, 1, 5, 0, 0},  // r5 never written
                    {Op::Exit, 0, 0, 0, 0}},
                   "uninitialized"},
        RejectCase{"uninit_after_branch_merge",
                   // r2 is set on only one path; reading it after the merge
                   // must be rejected (the conservative meet).
                   {{Op::LdCtx8, 1, 0, 0, 0},
                    {Op::JeqImm, 1, 0, +1, 0},    // -> 3
                    {Op::MovImm, 2, 0, 0, 9},     // only this path sets r2
                    {Op::MovReg, 0, 2, 0, 0},     // merge point: r2 maybe-uninit
                    {Op::Exit, 0, 0, 0, 0}},
                   "uninitialized"},
        RejectCase{"exit_uninit_r0",
                   {{Op::MovImm, 1, 0, 0, 1},
                    {Op::Exit, 0, 0, 0, 0}},
                   "uninitialized r0"},
        RejectCase{"ctx_oob",
                   {{Op::LdCtx8, 0, 0, 64, 0},  // off 64 in 64-byte ctx
                    {Op::Exit, 0, 0, 0, 0}},
                   "out of bounds"},
        RejectCase{"ctx_negative",
                   {{Op::LdCtx8, 0, 0, -8, 0},
                    {Op::Exit, 0, 0, 0, 0}},
                   "out of bounds"},
        RejectCase{"ctx_unaligned",
                   {{Op::LdCtx8, 0, 0, 4, 0},
                    {Op::Exit, 0, 0, 0, 0}},
                   "unaligned"},
        RejectCase{"unknown_helper",
                   {{Op::MovImm, 1, 0, 0, 1},
                    {Op::MovImm, 2, 0, 0, 0},
                    {Op::MovImm, 3, 0, 0, 8},
                    {Op::Call, 0, 0, 0, 99},
                    {Op::Exit, 0, 0, 0, 0}},
                   "unknown helper"},
        RejectCase{"call_uninit_args",
                   {{Op::MovImm, 1, 0, 0, 1},
                    {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
                    {Op::Exit, 0, 0, 0, 0}},
                   "uninitialized argument"},
        RejectCase{"bad_register",
                   {{Op::MovImm, 12, 0, 0, 1},
                    {Op::Exit, 0, 0, 0, 0}},
                   "bad dst"},
        RejectCase{"shift_range",
                   {{Op::MovImm, 0, 0, 0, 1},
                    {Op::LshImm, 0, 0, 0, 64},
                    {Op::Exit, 0, 0, 0, 0}},
                   "shift"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(VerifierTest, RejectsOversizedProgram) {
  std::vector<Insn> prog(ebpf::kMaxInsns + 1, {Op::MovImm, 0, 0, 0, 0});
  prog.back() = {Op::Exit, 0, 0, 0, 0};
  const auto r = ebpf::verify(prog, kCtx);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(std::string::npos, r.error.find("instruction limit"));
}

TEST(VerifierTest, ClobbersCallerSavedRegistersAcrossCalls) {
  // r2 set before the call must count as uninitialized after it.
  Vm vm;
  (void)vm.add_map(8, 8, 4);
  std::vector<Insn> prog = {
      {Op::MovImm, 1, 0, 0, 1},
      {Op::MovImm, 2, 0, 0, 0},
      {Op::MovImm, 3, 0, 0, 8},
      {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      {Op::MovReg, 0, 2, 0, 0},  // r2 was clobbered by the call
      {Op::Exit, 0, 0, 0, 0},
  };
  const auto r = vm.load(std::move(prog), kCtx);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(std::string::npos, r.error.find("uninitialized"));
}

// ---- VM execution ----

class VmTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }
  sim::SimThread thread_{0};
};

TEST_F(VmTest, ArithmeticAndControlFlow) {
  Vm vm;
  // r0 = (ctx[0] * 3 + 5) ^ ctx[8], via a branch on ctx[16].
  std::vector<Insn> prog = {
      {Op::LdCtx8, 0, 0, 0, 0},
      {Op::MulImm, 0, 0, 0, 3},
      {Op::AddImm, 0, 0, 0, 5},
      {Op::LdCtx8, 1, 0, 8, 0},
      {Op::XorReg, 0, 1, 0, 0},
      {Op::LdCtx8, 2, 0, 16, 0},
      {Op::JeqImm, 2, 0, +1, 0},      // ctx[16]==0 -> skip the double
      {Op::AddReg, 0, 0, 0, 0},       // r0 += r0
      {Op::Exit, 0, 0, 0, 0},
  };
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);

  std::array<std::byte, kCtx> ctx{};
  set_ctx_u64(ctx, 0, 7);
  set_ctx_u64(ctx, 8, 2);
  set_ctx_u64(ctx, 16, 0);
  auto r = vm.run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((7u * 3 + 5) ^ 2u, r.value());

  set_ctx_u64(ctx, 16, 1);
  r = vm.run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(((7u * 3 + 5) ^ 2u) * 2, r.value());
}

TEST_F(VmTest, StoresReachTheContext) {
  Vm vm;
  std::vector<Insn> prog = {
      {Op::LdCtx8, 1, 0, 0, 0},
      {Op::AddImm, 1, 0, 0, 100},
      {Op::StCtx8, 0, 1, 8, 0},
      {Op::StCtxImm, 0, 0, 16, 0xbeef},
      {Op::MovImm, 0, 0, 0, 0},
      {Op::Exit, 0, 0, 0, 0},
  };
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);
  std::array<std::byte, kCtx> ctx{};
  set_ctx_u64(ctx, 0, 11);
  ASSERT_TRUE(vm.run(ctx).ok());
  EXPECT_EQ(111U, ctx_u64(ctx, 8));
  EXPECT_EQ(0xbeefU, ctx_u64(ctx, 16));
}

TEST_F(VmTest, MapLookupUpdateDeleteRoundTrip) {
  Vm vm;
  const auto map_id = vm.add_map(/*key=*/8, /*value=*/8, /*max=*/8);
  // Program: update map[ctx[0..8]] = ctx[8..16], then look it back up
  // into ctx[16..24]; r0 = lookup result.
  std::vector<Insn> prog = {
      {Op::MovImm, 1, 0, 0, map_id},
      {Op::MovImm, 2, 0, 0, 0},
      {Op::MovImm, 3, 0, 0, 8},
      {Op::Call, 0, 0, 0, ebpf::kHelperMapUpdate},
      {Op::MovImm, 1, 0, 0, map_id},
      {Op::MovImm, 2, 0, 0, 0},
      {Op::MovImm, 3, 0, 0, 16},
      {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      {Op::Exit, 0, 0, 0, 0},
  };
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);

  std::array<std::byte, kCtx> ctx{};
  set_ctx_u64(ctx, 0, 0x1234);
  set_ctx_u64(ctx, 8, 0x5678);
  auto r = vm.run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1U, r.value());           // hit
  EXPECT_EQ(0x5678U, ctx_u64(ctx, 16));
}

TEST_F(VmTest, MapMissReturnsZero) {
  Vm vm;
  const auto map_id = vm.add_map(8, 8, 8);
  std::vector<Insn> prog = {
      {Op::MovImm, 1, 0, 0, map_id},
      {Op::MovImm, 2, 0, 0, 0},
      {Op::MovImm, 3, 0, 0, 8},
      {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      {Op::Exit, 0, 0, 0, 0},
  };
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);
  std::array<std::byte, kCtx> ctx{};
  auto r = vm.run(ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(0U, r.value());
}

TEST_F(VmTest, MapCapacityBoundsEnforced) {
  ebpf::BpfMap map(8, 8, 2);
  std::array<std::byte, 8> k{}, v{};
  for (std::uint64_t i = 0; i < 2; ++i) {
    std::memcpy(k.data(), &i, 8);
    EXPECT_TRUE(map.update(k, v));
  }
  std::uint64_t i = 99;
  std::memcpy(k.data(), &i, 8);
  EXPECT_FALSE(map.update(k, v));  // full
  i = 0;
  std::memcpy(k.data(), &i, 8);
  EXPECT_TRUE(map.update(k, v));   // overwrite existing still fine
  EXPECT_TRUE(map.erase(k));
  i = 99;
  std::memcpy(k.data(), &i, 8);
  EXPECT_TRUE(map.update(k, v));   // room again
}

TEST_F(VmTest, DynamicBadHelperOffsetTraps) {
  Vm vm;
  const auto map_id = vm.add_map(8, 8, 8);
  // Key offset 60 + key size 8 > ctx 64: the verifier cannot see register
  // values, so this traps at runtime.
  std::vector<Insn> prog = {
      {Op::MovImm, 1, 0, 0, map_id},
      {Op::MovImm, 2, 0, 0, 60},
      {Op::MovImm, 3, 0, 0, 8},
      {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      {Op::Exit, 0, 0, 0, 0},
  };
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);
  std::array<std::byte, kCtx> ctx{};
  auto r = vm.run(ctx);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(1U, vm.stats().traps);
}

TEST_F(VmTest, RunChargesVirtualTimePerInstruction) {
  Vm vm;
  std::vector<Insn> prog;
  for (int i = 0; i < 99; ++i) prog.push_back({Op::MovImm, 0, 0, 0, i});
  prog.push_back({Op::Exit, 0, 0, 0, 0});
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);
  std::array<std::byte, kCtx> ctx{};
  const auto t0 = sim::now();
  ASSERT_TRUE(vm.run(ctx).ok());
  EXPECT_EQ(100 * sim::costs().ebpf_insn, sim::now() - t0);
  EXPECT_EQ(100U, vm.stats().insns);
}

TEST_F(VmTest, WrongCtxSizeRejectedAtRun) {
  Vm vm;
  std::vector<Insn> prog = {{Op::MovImm, 0, 0, 0, 0},
                            {Op::Exit, 0, 0, 0, 0}};
  ASSERT_TRUE(vm.load(std::move(prog), kCtx).ok);
  std::array<std::byte, 32> small{};
  EXPECT_FALSE(vm.run(small).ok());
}

}  // namespace
}  // namespace bsim::test
