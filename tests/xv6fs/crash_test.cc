// Crash-consistency property tests for the xv6 journal (Strict durability
// mode: FLUSH barriers at the commit points).
//
// Method: run a workload against a crash-tracked device, simulate power
// loss with each unflushed write independently surviving with probability
// p, copy the surviving image to a fresh device, mount it (journal
// recovery runs), unmount, and fsck. For every (p, seed) the recovered
// image must be structurally consistent and every fsync'd file intact.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "xv6fs/fsck.h"

namespace bsim::test {
namespace {

using kern::Err;

constexpr std::uint64_t kBlocks = 8192;  // 32 MiB images

std::unique_ptr<blk::BlockDevice> copy_device(blk::BlockDevice& src) {
  blk::DeviceParams p;
  p.nblocks = src.nblocks();
  auto dst = std::make_unique<blk::BlockDevice>(p);
  std::array<std::byte, blk::kBlockSize> buf{};
  for (std::uint64_t b = 0; b < src.nblocks(); ++b) {
    src.read_untimed(b, buf);
    dst->write_untimed(b, buf);
  }
  return dst;
}

/// The volume layouts the sweeps run against. Every layout has the same
/// LOGICAL size, so images compare bit-for-bit across layouts.
enum class DevKind { Plain, Striped4, Mirror2, Parity4 };

/// Register an 8192-block device under "ssd0": one plain device, a 4-way
/// RAID0 volume, a 2-way RAID1 mirror, or a 4+1 RAID5 parity volume.
blk::BlockDevice& add_test_device(kern::Kernel& kernel, DevKind kind) {
  blk::DeviceParams params;
  params.nblocks = kBlocks;
  switch (kind) {
    case DevKind::Plain:
      return kernel.add_device("ssd0", params);
    case DevKind::Striped4: {
      blk::StripeParams sp;
      sp.ndevices = 4;
      sp.chunk_blocks = 16;
      params.nblocks = kBlocks / 4;
      return kernel.add_striped_device("ssd0", sp, params);
    }
    case DevKind::Mirror2: {
      blk::MirrorParams mp;
      mp.nmirrors = 2;
      return kernel.add_mirrored_device("ssd0", mp, params);
    }
    case DevKind::Parity4: {
      blk::ParityParams pp;
      pp.ndata = 4;
      pp.chunk_blocks = 16;
      return kernel.add_parity_device("ssd0", pp, params);
    }
  }
  __builtin_unreachable();
}

bool mirror_members_identical(blk::MirroredDevice& md) {
  std::array<std::byte, blk::kBlockSize> a{}, b{};
  for (std::uint64_t blk = 0; blk < md.nblocks(); ++blk) {
    md.member(0).read_untimed(blk, a);
    md.member(1).read_untimed(blk, b);
    if (a != b) return false;
  }
  return true;
}

bool images_equal(blk::BlockDevice& a, blk::BlockDevice& b) {
  if (a.nblocks() != b.nblocks()) return false;
  std::array<std::byte, blk::kBlockSize> ba{}, bb{};
  for (std::uint64_t blk = 0; blk < a.nblocks(); ++blk) {
    a.read_untimed(blk, ba);
    b.read_untimed(blk, bb);
    if (ba != bb) return false;
  }
  return true;
}

void register_strict(kern::Kernel& kernel) {
  bento::register_bento_fs(kernel, "xv6_strict", [] {
    xv6::Xv6FileSystem::Options opts;
    opts.durability = xv6::Durability::Strict;
    return std::make_unique<xv6::Xv6FileSystem>(opts);
  });
}

// ---- shared crash-sweep phases ----
//
// Every sweep (single-device or striped, consistency or differential)
// runs the SAME traces through these helpers, so the differential tests
// compare exactly the workload the consistency sweeps validate.

/// Survival-sweep phase 1 on a plain or 4-way striped "ssd0": run a
/// metadata+data workload, fsync a subset (recorded in `synced`), crash
/// with per-block survival probability `survive_p`, and return the
/// surviving logical image.
std::unique_ptr<blk::BlockDevice> run_survival_trace(
    DevKind kind, double survive_p, std::uint64_t seed, std::string_view opts,
    std::map<std::string, std::string>& synced) {
  kern::Kernel kernel;
  auto& dev = add_test_device(kernel, kind);
  xv6::mkfs(dev, /*ninodes=*/512);
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", opts));
  dev.enable_crash_tracking();

  auto& p = kernel.proc();
  sim::Rng rng(seed);
  EXPECT_EQ(Err::Ok, kernel.mkdir(p, "/mnt/d0"));
  EXPECT_EQ(Err::Ok, kernel.mkdir(p, "/mnt/d1"));
  for (int i = 0; i < 40; ++i) {
    const std::string path =
        "/mnt/d" + std::to_string(i % 2) + "/f" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) break;  // already failed; report instead of asserting
    std::string data(rng.range(1, 20000), static_cast<char>('a' + i % 26));
    EXPECT_TRUE(kernel.write(p, fd.value(), as_bytes(data)).ok());
    if (rng.chance(0.5)) {
      EXPECT_EQ(Err::Ok, kernel.fsync(p, fd.value()));
      synced[path] = data;
    }
    EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
    // Mix in deletes and renames of earlier files.
    if (i > 4 && rng.chance(0.3)) {
      const std::string victim = "/mnt/d" + std::to_string((i - 3) % 2) +
                                 "/f" + std::to_string(i - 3);
      if (kernel.stat(p, victim).ok()) {
        (void)kernel.unlink(p, victim);
        synced.erase(victim);
      }
    }
  }
  // Power loss: unflushed device-cache writes partially survive. The
  // kernel object is then abandoned conceptually; its destructor writes
  // to the original device, which we no longer look at.
  sim::Rng crash_rng(seed * 7 + 1);
  dev.crash(survive_p, crash_rng);
  return copy_device(dev);
}

/// Torn-commit phase 1: run the fsync-heavy workload with the device set
/// to die after `kill_point` write commands, lose the volatile cache
/// entirely, and return the surviving logical image.
std::unique_ptr<blk::BlockDevice> run_torn_trace(DevKind kind,
                                                 std::uint64_t kill_point,
                                                 std::uint64_t seed,
                                                 std::string_view opts) {
  kern::Kernel kernel;
  auto& dev = add_test_device(kernel, kind);
  xv6::mkfs(dev, /*ninodes=*/512);
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", opts));
  dev.enable_crash_tracking();
  dev.kill_after(kill_point);

  auto& p = kernel.proc();
  sim::Rng rng(seed);
  (void)kernel.mkdir(p, "/mnt/dir");
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/mnt/dir/f" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) break;
    std::string data(rng.range(100, 30000), 'z');
    (void)kernel.write(p, fd.value(), as_bytes(data));
    (void)kernel.fsync(p, fd.value());
    (void)kernel.close(p, fd.value());
    if (i >= 2 && rng.chance(0.5)) {
      (void)kernel.unlink(p, "/mnt/dir/f" + std::to_string(i - 2));
    }
  }
  // Unflushed cache contents are lost entirely (worst case).
  sim::Rng crash_rng(seed + 99);
  dev.crash(/*survive_p=*/0.0, crash_rng);
  return copy_device(dev);
}

/// Phase 2: mount the surviving image on a fresh plain device (journal
/// recovery runs), verify every fsync'd file is intact, unmount, fsck,
/// and return the recovered image.
std::unique_ptr<blk::BlockDevice> recover_image(
    blk::BlockDevice& survivor,
    const std::map<std::string, std::string>& synced = {}) {
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = survivor.nblocks();
  auto& dev = kernel.add_device("ssd0", params);
  std::array<std::byte, blk::kBlockSize> buf{};
  for (std::uint64_t b = 0; b < survivor.nblocks(); ++b) {
    survivor.read_untimed(b, buf);
    dev.write_untimed(b, buf);
  }
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt"));
  auto& p = kernel.proc();
  for (const auto& [path, expect] : synced) {
    auto fd = kernel.open(p, path, kern::kORdOnly);
    EXPECT_TRUE(fd.ok()) << path << " lost after crash despite fsync";
    if (!fd.ok()) continue;
    std::vector<std::byte> buf2(expect.size() + 16);
    auto r = kernel.read(p, fd.value(), buf2);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r.value(), expect.size()) << path;
      EXPECT_EQ(to_string({buf2.data(), r.value()}), expect) << path;
    }
    EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
  }
  EXPECT_EQ(Err::Ok, kernel.umount("/mnt"));
  auto report = xv6::fsck(dev);
  EXPECT_TRUE(report.ok) << report.summary();
  return copy_device(dev);
}

struct CrashCase {
  double survive_p;
  std::uint64_t seed;
};

class CrashConsistency : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashConsistency, RecoversToConsistentImage) {
  const auto [survive_p, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  std::map<std::string, std::string> synced;  // path -> expected contents
  auto survivor = run_survival_trace(DevKind::Plain, survive_p, seed, "",
                                     synced);
  (void)recover_image(*survivor, synced);  // asserts recovery + fsck
}

std::vector<CrashCase> crash_cases() {
  std::vector<CrashCase> cases;
  for (const double p : {0.0, 0.35, 0.7, 1.0}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
      cases.push_back({p, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SurvivalSweep, CrashConsistency,
                         ::testing::ValuesIn(crash_cases()),
                         [](const auto& info) {
                           return "p" +
                                  std::to_string(static_cast<int>(
                                      info.param.survive_p * 100)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

TEST(Fsck, CleanImagePasses) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  blk::DeviceParams params;
  params.nblocks = kBlocks;
  blk::BlockDevice dev(params);
  xv6::mkfs(dev, 512);
  auto report = xv6::fsck(dev);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.dirs, 1u);  // just the root
}

TEST(Fsck, DetectsCorruption) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  blk::DeviceParams params;
  params.nblocks = kBlocks;
  blk::BlockDevice dev(params);
  const auto sb = xv6::mkfs(dev, 512);

  // Corrupt the root dinode: point its first block outside the data area.
  std::array<std::byte, blk::kBlockSize> buf{};
  dev.read_untimed(sb.inode_block(xv6::kRootInum), buf);
  auto* di = reinterpret_cast<xv6::Dinode*>(buf.data());
  di[xv6::kRootInum % xv6::kInodesPerBlock].addrs[0] = 2;  // log area
  dev.write_untimed(sb.inode_block(xv6::kRootInum), buf);

  auto report = xv6::fsck(dev);
  EXPECT_FALSE(report.ok);
}

TEST(LogRecovery, ReplaysCommittedTransaction) {
  // Simulate a crash after the commit record but before install: write a
  // valid log (header + payload) by hand, then mount — recovery must
  // install the payload to its home location.
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = kBlocks;
  auto& dev = kernel.add_device("ssd0", params);
  const auto sb = xv6::mkfs(dev, 512);

  const std::uint32_t victim = sb.datastart + 5;
  std::array<std::byte, blk::kBlockSize> payload{};
  payload.fill(std::byte{0xCD});
  dev.write_untimed(sb.logstart + 1, payload);
  xv6::LogHeader header;
  header.n = 1;
  header.blocks[0] = victim;
  std::array<std::byte, blk::kBlockSize> hbuf{};
  std::memcpy(hbuf.data(), &header, sizeof(header));
  dev.write_untimed(sb.logstart, hbuf);

  register_strict(kernel);
  ASSERT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt"));
  ASSERT_EQ(Err::Ok, kernel.umount("/mnt"));

  std::array<std::byte, blk::kBlockSize> got{};
  dev.read_untimed(victim, got);
  EXPECT_EQ(got, payload);  // replayed
  dev.read_untimed(sb.logstart, hbuf);
  xv6::LogHeader cleared;
  std::memcpy(&cleared, hbuf.data(), sizeof(cleared));
  EXPECT_EQ(cleared.n, 0u);  // header cleared after recovery
}

// ---- Torn-commit sweep: kill the device mid-transaction ----
//
// The device stops persisting writes after a chosen write count, so the
// durable image freezes at an arbitrary point inside a journal commit.
// With Strict durability, recovery must still produce a consistent image
// for every crash point: either the transaction replays completely or it
// never happened.

struct TornCase {
  std::uint64_t kill_after;
  std::uint64_t seed;
};

class TornCommit : public ::testing::TestWithParam<TornCase> {};

TEST_P(TornCommit, EveryCrashPointRecoversConsistently) {
  const auto [kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto survivor = run_torn_trace(DevKind::Plain, kill_point, seed, "");
  (void)recover_image(*survivor);  // asserts recovery + fsck
}

std::vector<TornCase> torn_cases() {
  std::vector<TornCase> cases;
  // Crash points spread across the workload's ~2000 device writes.
  for (std::uint64_t k : {5ULL, 17ULL, 40ULL, 73ULL, 120ULL, 200ULL, 333ULL,
                          500ULL, 800ULL, 1200ULL}) {
    for (std::uint64_t seed : {11ULL, 12ULL}) cases.push_back({k, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, TornCommit,
                         ::testing::ValuesIn(torn_cases()),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

// ---- Striped volumes: the same sweeps on a 4-way RAID0 volume ----
//
// The volume's kill_after counts LOGICAL write bios in the same order the
// single-device queue does (see blockdev/striped.h), so running the same
// op trace against one device and against a striped volume with the same
// kill point must freeze the same logical image — recovery is required to
// be bit-identical (the differential check). "-o noflusher" keeps the
// trace free of timer-driven writeback, whose wake points depend on
// virtual time and hence on device speed.

class StripedTornCommit : public ::testing::TestWithParam<TornCase> {};

TEST_P(StripedTornCommit, EveryCrashPointRecoversConsistently) {
  // Default mount (per-member flushers attached): every kill point must
  // still recover to a structurally consistent image.
  const auto [kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto survivor = run_torn_trace(DevKind::Striped4, kill_point, seed, "");
  (void)recover_image(*survivor);  // asserts mount + fsck internally
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, StripedTornCommit,
                         ::testing::ValuesIn(torn_cases()),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

class TornDifferential : public ::testing::TestWithParam<TornCase> {};

TEST_P(TornDifferential, StripedRecoveryBitIdenticalToSingleDevice) {
  const auto [kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  auto single = run_torn_trace(DevKind::Plain, kill_point, seed,
                               "noflusher");
  auto striped = run_torn_trace(DevKind::Striped4, kill_point, seed,
                                "noflusher");
  // The frozen images agree before recovery (same logical bios applied)…
  EXPECT_TRUE(images_equal(*single, *striped))
      << "surviving images diverged at kill_after=" << kill_point;
  // …and recovery lands both on the same consistent image.
  auto rec_single = recover_image(*single);
  auto rec_striped = recover_image(*striped);
  EXPECT_TRUE(images_equal(*rec_single, *rec_striped))
      << "recovered images diverged at kill_after=" << kill_point;
}

std::vector<TornCase> differential_cases() {
  std::vector<TornCase> cases;
  for (std::uint64_t k : {17ULL, 73ULL, 200ULL, 500ULL, 1200ULL}) {
    for (std::uint64_t seed : {11ULL, 12ULL}) cases.push_back({k, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, TornDifferential,
                         ::testing::ValuesIn(differential_cases()),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

class StripedCrashConsistency : public ::testing::TestWithParam<CrashCase> {};

TEST_P(StripedCrashConsistency, RecoversToConsistentImage) {
  const auto [survive_p, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  std::map<std::string, std::string> synced;
  auto survivor = run_survival_trace(DevKind::Striped4, survive_p, seed, "",
                                     synced);
  (void)recover_image(*survivor, synced);  // asserts recovery + fsck
}

INSTANTIATE_TEST_SUITE_P(SurvivalSweep, StripedCrashConsistency,
                         ::testing::ValuesIn(crash_cases()),
                         [](const auto& info) {
                           return "p" +
                                  std::to_string(static_cast<int>(
                                      info.param.survive_p * 100)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

class SurvivalDifferential : public ::testing::TestWithParam<CrashCase> {};

TEST_P(SurvivalDifferential, StripedRecoveryBitIdenticalToSingleDevice) {
  // Only the layout-independent survival probabilities (lose-all /
  // keep-all) admit a bit-exact differential; fractional survival draws
  // per-block randomness in layout-dependent order.
  const auto [survive_p, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  std::map<std::string, std::string> synced_a, synced_b;
  auto single = run_survival_trace(DevKind::Plain, survive_p, seed,
                                   "noflusher", synced_a);
  auto striped = run_survival_trace(DevKind::Striped4, survive_p, seed,
                                    "noflusher", synced_b);
  EXPECT_EQ(synced_a, synced_b);
  EXPECT_TRUE(images_equal(*single, *striped)) << "p=" << survive_p;
  auto rec_single = recover_image(*single);
  auto rec_striped = recover_image(*striped);
  EXPECT_TRUE(images_equal(*rec_single, *rec_striped)) << "p=" << survive_p;
}

std::vector<CrashCase> survival_differential_cases() {
  std::vector<CrashCase> cases;
  for (const double p : {0.0, 1.0}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
      cases.push_back({p, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SurvivalSweep, SurvivalDifferential,
                         ::testing::ValuesIn(survival_differential_cases()),
                         [](const auto& info) {
                           return "p" +
                                  std::to_string(static_cast<int>(
                                      info.param.survive_p * 100)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// ---- Pipelined commits (ISSUE 5): kill points landing BETWEEN
// overlapped transactions ----
//
// The pipelined-trace workload fsyncs only every third file, so group
// commit pools several operations per transaction and commits return
// with their transfers still in flight (commit N's record/checkpoint
// tickets outstanding while N+1 fills). Pipelining is a pure
// timing/overlap change: every write is still SUBMITTED in the same
// program order (media effects land at submission), so for any kill
// point the surviving image — and therefore recovery — must be
// bit-identical to the unpipelined oracle ("-o nopipeline"), on plain,
// striped, and mirrored mounts alike.

/// Run the mixed fsync-density trace with the device set to die after
/// `kill_point` write commands; return the surviving logical image.
/// `pipelined_commits_out` (optional) receives the journal's pipelined
/// commit count, so the sweep can prove commits actually overlapped.
std::unique_ptr<blk::BlockDevice> run_pipelined_trace(
    DevKind kind, std::uint64_t kill_point, std::uint64_t seed,
    std::string_view opts, std::uint64_t* pipelined_commits_out = nullptr) {
  kern::Kernel kernel;
  auto& dev = add_test_device(kernel, kind);
  xv6::mkfs(dev, /*ninodes=*/512);
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", opts));
  dev.enable_crash_tracking();
  dev.kill_after(kill_point);

  auto& p = kernel.proc();
  sim::Rng rng(seed);
  (void)kernel.mkdir(p, "/mnt/dir");
  for (int i = 0; i < 15; ++i) {
    const std::string path = "/mnt/dir/f" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) break;
    std::string data(rng.range(100, 30000), 'y');
    (void)kernel.write(p, fd.value(), as_bytes(data));
    // Only every third file forces a commit: in between, ops pool into
    // the running transaction and threshold commits go out pipelined.
    if (i % 3 == 2) (void)kernel.fsync(p, fd.value());
    (void)kernel.close(p, fd.value());
    if (i >= 2 && rng.chance(0.4)) {
      (void)kernel.unlink(p, "/mnt/dir/f" + std::to_string(i - 2));
    }
  }
  if (pipelined_commits_out != nullptr) {
    auto* module = bento::BentoModule::from(*kernel.sb_at("/mnt"));
    *pipelined_commits_out = static_cast<const xv6::Xv6FileSystem&>(
                                 module->fs())
                                 .log_stats()
                                 .pipelined_commits;
  }
  sim::Rng crash_rng(seed + 77);
  dev.crash(/*survive_p=*/0.0, crash_rng);
  return copy_device(dev);
}

struct PipelinedCase {
  DevKind kind;
  std::uint64_t kill_after;
  std::uint64_t seed;
};

class PipelinedTornDifferential
    : public ::testing::TestWithParam<PipelinedCase> {};

TEST_P(PipelinedTornDifferential, RecoveryBitIdenticalToUnpipelinedOracle) {
  const auto [kind, kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  // "-o noflusher" keeps writeback a pure function of the op trace (the
  // pipelined run and the oracle have different virtual-time behaviour,
  // which must not be allowed to move timer-driven wakes).
  std::uint64_t pipelined = 0;
  auto piped = run_pipelined_trace(kind, kill_point, seed, "noflusher",
                                   &pipelined);
  auto oracle = run_pipelined_trace(kind, kill_point, seed,
                                    "noflusher,nopipeline");
  EXPECT_GT(pipelined, 0u) << "trace never overlapped commits";
  EXPECT_TRUE(images_equal(*piped, *oracle))
      << "surviving images diverged at kill_after=" << kill_point;
  auto rec_piped = recover_image(*piped);
  auto rec_oracle = recover_image(*oracle);
  EXPECT_TRUE(images_equal(*rec_piped, *rec_oracle))
      << "recovered images diverged at kill_after=" << kill_point;
}

std::vector<PipelinedCase> pipelined_cases() {
  std::vector<PipelinedCase> cases;
  // Kill points spread so several land inside the overlap window of one
  // commit while the next transaction is filling (the trace issues
  // ~1500+ write commands; commits happen every ~3 files).
  for (const DevKind kind :
       {DevKind::Plain, DevKind::Striped4, DevKind::Mirror2}) {
    for (std::uint64_t k : {9ULL, 47ULL, 150ULL, 430ULL, 900ULL}) {
      cases.push_back({kind, k, 21ULL});
    }
    cases.push_back({kind, 260ULL, 22ULL});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, PipelinedTornDifferential,
                         ::testing::ValuesIn(pipelined_cases()),
                         [](const auto& info) {
                           const char* kind =
                               info.param.kind == DevKind::Plain ? "plain"
                               : info.param.kind == DevKind::Striped4
                                   ? "striped4"
                                   : "mirror2";
                           return std::string(kind) + "_k" +
                                  std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

TEST(PipelinedTornConsistency, DefaultMountRecoversAtEveryKillPoint) {
  // Default mounts (flushers attached, pipelining + group commit on):
  // every kill point must still recover to an fsck-clean image.
  for (const std::uint64_t k : {23ULL, 88ULL, 260ULL, 700ULL}) {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    auto survivor = run_pipelined_trace(DevKind::Striped4, k, 21, "");
    (void)recover_image(*survivor);  // asserts mount + fsck internally
  }
}

// ---- Journal abort, then power loss (ISSUE 10) ----
//
// A sticky write error in the journal area makes the doomed file's commit
// fail at stage 1 — before the commit record is issued — so the journal
// aborts and the mount flips read-only. Nothing of the aborted
// transaction (or of the failed post-abort operations) may reach durable
// media: crashing AFTER the abort and recovering must land bit-identical
// to an oracle run of the same trace truncated just before the doomed
// file. Swept across plain, 4-way striped, and 4+1 parity volumes.

/// Run `abort_at` healthy fsync'd files; then, unless `oracle`, poison
/// the journal and attempt three more files (they must fail), crash with
/// total cache loss, and return the surviving logical image.
std::unique_ptr<blk::BlockDevice> run_abort_trace(DevKind kind, int abort_at,
                                                  bool oracle,
                                                  std::uint64_t seed) {
  kern::Kernel kernel;
  auto& dev = add_test_device(kernel, kind);
  const auto dsb = xv6::mkfs(dev, /*ninodes=*/512);
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", "noflusher"));
  dev.enable_crash_tracking();

  auto& p = kernel.proc();
  sim::Rng rng(seed);
  (void)kernel.mkdir(p, "/mnt/dir");
  int failed_ops = 0;
  for (int i = 0; i < abort_at + 3; ++i) {
    if (i == abort_at) {
      if (oracle) break;
      // Journal poisoned: the NEXT commit's log-run write fails.
      dev.inject_write_error(dsb.logstart + 1);
    }
    const std::string path = "/mnt/dir/f" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) {
      failed_ops += 1;  // post-abort: EROFS
      continue;
    }
    std::string data(rng.range(100, 30000), 'q');
    (void)kernel.write(p, fd.value(), as_bytes(data));
    if (kernel.fsync(p, fd.value()) != Err::Ok) failed_ops += 1;
    (void)kernel.close(p, fd.value());
  }
  if (!oracle) {
    EXPECT_GE(failed_ops, 3) << "journal poison never bit";
    kern::SuperBlock* sb = kernel.sb_at("/mnt");
    EXPECT_TRUE(sb->read_only());
    auto* module = bento::BentoModule::from(*sb);
    EXPECT_EQ(static_cast<const xv6::Xv6FileSystem&>(module->fs())
                  .log_stats()
                  .log_aborted,
              1u);
  }
  sim::Rng crash_rng(seed + 55);
  dev.crash(/*survive_p=*/0.0, crash_rng);
  return copy_device(dev);
}

struct AbortCase {
  DevKind kind;
  int abort_at;
  std::uint64_t seed;
};

class AbortThenCrashDifferential
    : public ::testing::TestWithParam<AbortCase> {};

TEST_P(AbortThenCrashDifferential, RecoversToThePreAbortImage) {
  const auto [kind, abort_at, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  auto aborted = run_abort_trace(kind, abort_at, /*oracle=*/false, seed);
  auto oracle = run_abort_trace(kind, abort_at, /*oracle=*/true, seed);
  // The aborted transaction never committed, so the surviving images
  // agree before recovery…
  EXPECT_TRUE(images_equal(*aborted, *oracle))
      << "aborted run leaked uncommitted state (abort_at=" << abort_at
      << ")";
  // …and recovery (which must find an empty header: the commit record
  // was never issued) lands both on the same consistent image.
  auto rec_aborted = recover_image(*aborted);
  auto rec_oracle = recover_image(*oracle);
  EXPECT_TRUE(images_equal(*rec_aborted, *rec_oracle))
      << "recovered images diverged (abort_at=" << abort_at << ")";
}

std::vector<AbortCase> abort_cases() {
  std::vector<AbortCase> cases;
  for (const DevKind kind :
       {DevKind::Plain, DevKind::Striped4, DevKind::Parity4}) {
    for (const int at : {1, 4, 8}) cases.push_back({kind, at, 31ULL});
    cases.push_back({kind, 4, 32ULL});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AbortSweep, AbortThenCrashDifferential,
                         ::testing::ValuesIn(abort_cases()),
                         [](const auto& info) {
                           const char* kind =
                               info.param.kind == DevKind::Plain ? "plain"
                               : info.param.kind == DevKind::Striped4
                                   ? "striped4"
                                   : "parity4";
                           return std::string(kind) + "_a" +
                                  std::to_string(info.param.abort_at) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// ---- Mirrored volumes: the same sweeps on a 2-way RAID1 mirror ----
//
// The mirror's kill_after counts LOGICAL write bios exactly like the
// single-device queue and the striped volume (blockdev/mirrored.h), so
// the torn-commit sweep and its differential carry over unchanged.

class MirroredTornCommit : public ::testing::TestWithParam<TornCase> {};

TEST_P(MirroredTornCommit, EveryCrashPointRecoversConsistently) {
  // Default mount (flusher attached): every kill point must recover.
  const auto [kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  auto survivor = run_torn_trace(DevKind::Mirror2, kill_point, seed, "");
  (void)recover_image(*survivor);  // asserts mount + fsck internally
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, MirroredTornCommit,
                         ::testing::ValuesIn(torn_cases()),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

class MirroredTornDifferential : public ::testing::TestWithParam<TornCase> {};

TEST_P(MirroredTornDifferential, RecoveryBitIdenticalToSingleDevice) {
  const auto [kill_point, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  auto single = run_torn_trace(DevKind::Plain, kill_point, seed, "noflusher");
  auto mirrored =
      run_torn_trace(DevKind::Mirror2, kill_point, seed, "noflusher");
  EXPECT_TRUE(images_equal(*single, *mirrored))
      << "surviving images diverged at kill_after=" << kill_point;
  auto rec_single = recover_image(*single);
  auto rec_mirrored = recover_image(*mirrored);
  EXPECT_TRUE(images_equal(*rec_single, *rec_mirrored))
      << "recovered images diverged at kill_after=" << kill_point;
}

INSTANTIATE_TEST_SUITE_P(CrashPointSweep, MirroredTornDifferential,
                         ::testing::ValuesIn(differential_cases()),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.kill_after) +
                                  "_s" + std::to_string(info.param.seed);
                         });

// ---- Member loss mid-sweep: the failure mode only redundant volumes
// survive. A 2-way mirror fail-stops member 1 after `fail_at` files of
// the torn-trace workload and keeps serving; the surviving logical image
// must be bit-identical to a single-device run of the same op trace, and
// an online rebuild afterwards must leave the members bit-identical. ----

struct LossCase {
  int fail_at;         // file index at which member 1 fail-stops
  bool rebuild;        // resync the member after the trace
  std::uint64_t seed;
};

/// Run the torn-trace op sequence (no crash) with an optional mid-sweep
/// member failure + post-trace rebuild; return the final logical image.
std::unique_ptr<blk::BlockDevice> run_loss_trace(DevKind kind, int fail_at,
                                                 bool rebuild,
                                                 std::uint64_t seed,
                                                 std::string_view opts) {
  kern::Kernel kernel;
  auto& dev = add_test_device(kernel, kind);
  auto* mirror = kind == DevKind::Mirror2
                     ? static_cast<blk::MirroredDevice*>(&dev)
                     : nullptr;
  xv6::mkfs(dev, /*ninodes=*/512);
  register_strict(kernel);
  EXPECT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", opts));

  auto& p = kernel.proc();
  sim::Rng rng(seed);
  (void)kernel.mkdir(p, "/mnt/dir");
  for (int i = 0; i < 12; ++i) {
    if (mirror != nullptr && i == fail_at) mirror->fail_member(1);
    const std::string path = "/mnt/dir/f" + std::to_string(i);
    auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
    if (!fd.ok()) break;
    std::string data(rng.range(100, 30000), 'z');
    (void)kernel.write(p, fd.value(), as_bytes(data));
    (void)kernel.fsync(p, fd.value());
    (void)kernel.close(p, fd.value());
    if (i >= 2 && rng.chance(0.5)) {
      (void)kernel.unlink(p, "/mnt/dir/f" + std::to_string(i - 2));
    }
  }
  EXPECT_EQ(Err::Ok, kernel.sync(p));
  if (mirror != nullptr && fail_at >= 0) {
    EXPECT_TRUE(mirror->degraded());
    EXPECT_GT(mirror->volume_stats().degraded_reads +
                  mirror->volume_stats().degraded_writes,
              0u);
    if (rebuild) {
      mirror->start_rebuild(1);
      mirror->finish_rebuild();
      EXPECT_FALSE(mirror->degraded());
      EXPECT_TRUE(mirror_members_identical(*mirror))
          << "rebuild left replicas diverged (seed " << seed << ")";
    }
  }
  return copy_device(dev);
}

class MirrorMemberLoss : public ::testing::TestWithParam<LossCase> {};

TEST_P(MirrorMemberLoss, DegradedServiceBitIdenticalToSingleDevice) {
  const auto [fail_at, rebuild, seed] = GetParam();
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);

  // "-o noflusher" keeps writeback order a pure function of the op trace
  // (the member loss changes virtual-time behaviour, not the ops).
  auto single =
      run_loss_trace(DevKind::Plain, /*fail_at=*/-1, false, seed, "noflusher");
  auto degraded =
      run_loss_trace(DevKind::Mirror2, fail_at, rebuild, seed, "noflusher");
  EXPECT_TRUE(images_equal(*single, *degraded))
      << "degraded image diverged (fail_at=" << fail_at << ")";
  // Both recover to the same consistent image (fsck asserted inside).
  auto rec_single = recover_image(*single);
  auto rec_degraded = recover_image(*degraded);
  EXPECT_TRUE(images_equal(*rec_single, *rec_degraded));
}

std::vector<LossCase> loss_cases() {
  std::vector<LossCase> cases;
  for (const int fail_at : {0, 3, 7, 11}) {
    for (std::uint64_t seed : {11ULL, 12ULL}) {
      cases.push_back({fail_at, /*rebuild=*/false, seed});
      cases.push_back({fail_at, /*rebuild=*/true, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(MemberLossSweep, MirrorMemberLoss,
                         ::testing::ValuesIn(loss_cases()),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param.fail_at) +
                                  (info.param.rebuild ? "_rebuild" : "") +
                                  "_s" + std::to_string(info.param.seed);
                         });

// Degraded-mode + crash composition: the mirror loses a member mid-sweep
// AND the power dies later (default mount, flushers on) — recovery must
// still produce a consistent image from the surviving replica.

TEST(MirrorMemberLossThenCrash, RecoversFromTheSurvivor) {
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    for (const std::uint64_t kill_point : {40ULL, 200ULL, 800ULL}) {
      sim::SimThread thread(0);
      sim::ScopedThread in(thread);
      kern::Kernel kernel;
      auto& dev = add_test_device(kernel, DevKind::Mirror2);
      auto& mirror = static_cast<blk::MirroredDevice&>(dev);
      xv6::mkfs(dev, /*ninodes=*/512);
      register_strict(kernel);
      ASSERT_EQ(Err::Ok, kernel.mount("xv6_strict", "ssd0", "/mnt", ""));
      dev.enable_crash_tracking();
      dev.kill_after(kill_point);

      auto& p = kernel.proc();
      sim::Rng rng(seed);
      (void)kernel.mkdir(p, "/mnt/dir");
      for (int i = 0; i < 12; ++i) {
        if (i == 5) mirror.fail_member(1);
        const std::string path = "/mnt/dir/f" + std::to_string(i);
        auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
        if (!fd.ok()) break;
        std::string data(rng.range(100, 30000), 'z');
        (void)kernel.write(p, fd.value(), as_bytes(data));
        (void)kernel.fsync(p, fd.value());
        (void)kernel.close(p, fd.value());
      }
      sim::Rng crash_rng(seed + 99);
      dev.crash(/*survive_p=*/0.0, crash_rng);
      auto survivor = copy_device(dev);
      (void)recover_image(*survivor);  // asserts mount + fsck
    }
  }
}

}  // namespace
}  // namespace bsim::test
