// Unit tests for xv6 file-system internals, driven through the userspace
// debug rig (UserMount + MemBlockBackend; §4.9) — no kernel involved.
// Covers block-mapping boundaries, sparse files, the log's absorption, and
// allocator accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bento/user.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"

namespace bsim::xv6 {
namespace {

using bento::kRootIno;
using kern::Err;

/// Debug rig with a formatted in-memory "disk".
class Xv6Rig : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBlocks = 16384;  // 64 MiB

  void SetUp() override {
    sim::set_current(&thread_);
    // Format via a scratch device, copy metadata into the memory backend.
    blk::DeviceParams params;
    params.nblocks = kBlocks;
    blk::BlockDevice scratch(params);
    dsb_ = mkfs(scratch, /*ninodes=*/1024);

    auto backend = std::make_unique<bento::MemBlockBackend>(kBlocks);
    {
      auto cap = bento::CapTestAccess::make(*backend);
      std::array<std::byte, kBlockSize> buf{};
      for (std::uint32_t b = 1; b <= dsb_.datastart; ++b) {
        scratch.read_untimed(b, buf);
        auto bh = cap->getblk(b);
        std::memcpy(bh.value().data().data(), buf.data(), buf.size());
      }
    }
    mount_ = std::make_unique<bento::UserMount>(
        std::move(backend), std::make_unique<Xv6FileSystem>());
    ASSERT_EQ(Err::Ok, mount_->mount_init());
  }

  Xv6FileSystem& fs() {
    return static_cast<Xv6FileSystem&>(mount_->fs());
  }

  bento::Ino create_file(std::string_view name) {
    auto r = fs().create(mount_->mkreq(), mount_->borrow(), kRootIno, name,
                         0644);
    EXPECT_TRUE(r.ok());
    mount_->check_borrows();
    return r.ok() ? r.value().ino : 0;
  }

  void write_at(bento::Ino ino, std::uint64_t off,
                std::span<const std::byte> data) {
    auto r = fs().write(mount_->mkreq(), mount_->borrow(), ino, 0, off, data);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value(), data.size());
    mount_->check_borrows();
  }

  std::vector<std::byte> read_at(bento::Ino ino, std::uint64_t off,
                                 std::size_t len) {
    std::vector<std::byte> buf(len);
    auto r = fs().read(mount_->mkreq(), mount_->borrow(), ino, 0, off, buf);
    EXPECT_TRUE(r.ok());
    buf.resize(r.ok() ? r.value() : 0);
    mount_->check_borrows();
    return buf;
  }

  sim::SimThread thread_{0};
  DiskSuperblock dsb_;
  std::unique_ptr<bento::UserMount> mount_;
};

TEST_F(Xv6Rig, DirectToIndirectBoundary) {
  // Direct blocks cover kNDirect * 4K; write a byte pattern across the
  // boundary and read it back.
  const bento::Ino ino = create_file("boundary");
  const std::uint64_t boundary = kNDirect * kBlockSize;
  std::vector<std::byte> data(2 * kBlockSize);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  write_at(ino, boundary - kBlockSize, data);
  auto got = read_at(ino, boundary - kBlockSize, data.size());
  EXPECT_EQ(got, data);

  auto attr = fs().getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, boundary + kBlockSize);
}

TEST_F(Xv6Rig, IndirectToDoubleIndirectBoundary) {
  const bento::Ino ino = create_file("dind");
  const std::uint64_t boundary =
      (kNDirect + kNIndirect) * static_cast<std::uint64_t>(kBlockSize);
  std::vector<std::byte> data(2 * kBlockSize, std::byte{0x3C});
  write_at(ino, boundary - kBlockSize, data);
  auto got = read_at(ino, boundary - kBlockSize, data.size());
  EXPECT_EQ(got, data);
  // The double-indirect tree exists now (paper §6.1's 4 GB capability).
  auto attr = fs().getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, boundary + kBlockSize);
}

TEST_F(Xv6Rig, SparseFileReadsZeroesInHoles) {
  const bento::Ino ino = create_file("sparse");
  const std::byte x{0x5A};
  write_at(ino, 0, {&x, 1});
  // Extend far beyond without writing the middle.
  write_at(ino, 100 * kBlockSize, {&x, 1});

  auto hole = read_at(ino, 50 * kBlockSize, 64);
  ASSERT_EQ(hole.size(), 64u);
  for (auto b : hole) EXPECT_EQ(b, std::byte{0});
  // Sparse: far fewer blocks allocated than the size implies.
  auto before = fs().free_data_blocks();
  EXPECT_GT(before, 0u);
}

TEST_F(Xv6Rig, WriteBulkMatchesLoopedWrites) {
  const bento::Ino a = create_file("bulk_a");
  const bento::Ino b = create_file("bulk_b");
  std::vector<std::byte> page0(kBlockSize, std::byte{1});
  std::vector<std::byte> page1(kBlockSize, std::byte{2});
  std::vector<std::span<const std::byte>> pages{page0, page1};

  auto r = fs().write_bulk(mount_->mkreq(), mount_->borrow(), a, 0, pages);
  ASSERT_TRUE(r.ok());
  mount_->check_borrows();
  write_at(b, 0, page0);
  write_at(b, kBlockSize, page1);

  EXPECT_EQ(read_at(a, 0, 2 * kBlockSize), read_at(b, 0, 2 * kBlockSize));
}

TEST_F(Xv6Rig, LogAbsorbsRepeatedBlocks) {
  const bento::Ino ino = create_file("absorb");
  const auto before = fs().log_stats();
  // Many small writes to the same block within the same page: each write
  // is its own transaction here, but within a transaction the inode block
  // is logged once (absorption).
  std::vector<std::byte> chunk(512, std::byte{7});
  for (int i = 0; i < 8; ++i) {
    write_at(ino, static_cast<std::uint64_t>(i) * 512, chunk);
  }
  const auto after = fs().log_stats();
  EXPECT_GT(after.commits, before.commits);
  EXPECT_GT(after.absorbed, before.absorbed);  // data block re-logged
}

TEST_F(Xv6Rig, GroupCommitAbsorbsOpsUntilTheBatchFills) {
  // Satellite (ISSUE 5): end_op no longer commits per closed op; up to
  // max_log_batch ops pool into one transaction, and fsync still forces.
  const bento::Ino ino = create_file("group");
  // The create closed one op (still pooling); the three writes below stay
  // well inside one max_log_batch window.
  auto snap0 = fs().log_stats();
  std::vector<std::byte> chunk(256, std::byte{4});
  for (int i = 0; i < 3; ++i) {
    write_at(ino, static_cast<std::uint64_t>(i) * 256, chunk);
  }
  // Three closed ops < max_log_batch (8): nothing committed yet.
  EXPECT_EQ(fs().log_stats().commits, snap0.commits);
  ASSERT_EQ(Err::Ok, fs().fsync(mount_->mkreq(), mount_->borrow(), ino, 0,
                                false));
  mount_->check_borrows();
  const auto after = fs().log_stats();
  EXPECT_EQ(after.commits, snap0.commits + 1);    // ONE commit for all ops
  EXPECT_GT(after.group_commits, snap0.group_commits);
  EXPECT_GE(after.ops_committed, snap0.ops_committed + 3);
}

TEST_F(Xv6Rig, EmptyForceCommitAndFlushAreSkipped) {
  const bento::Ino ino = create_file("noop");
  std::vector<std::byte> chunk(64, std::byte{6});
  write_at(ino, 0, chunk);
  ASSERT_EQ(Err::Ok, fs().fsync(mount_->mkreq(), mount_->borrow(), ino, 0,
                                false));
  mount_->check_borrows();
  const auto snap = fs().log_stats();
  // A second fsync with nothing new: no commit work, no flush barrier.
  ASSERT_EQ(Err::Ok, fs().fsync(mount_->mkreq(), mount_->borrow(), ino, 0,
                                false));
  mount_->check_borrows();
  const auto after = fs().log_stats();
  EXPECT_EQ(after.commits, snap.commits);
  EXPECT_GT(after.empty_commits_skipped, snap.empty_commits_skipped);
  EXPECT_GT(after.flushes_skipped, snap.flushes_skipped);
}

TEST_F(Xv6Rig, MountOptsTuneTheLogParams) {
  LogParams p = merge_log_opts("rw,max_log_batch=4,noplug,nopipeline,chunk=16",
                               LogParams{});
  EXPECT_EQ(p.max_log_batch, 4u);
  EXPECT_FALSE(p.plug);
  EXPECT_FALSE(p.pipeline);
  LogParams q = merge_log_opts("nogroup", LogParams{});
  EXPECT_EQ(q.max_log_batch, 1u);
  EXPECT_TRUE(q.pipeline);
}

TEST_F(Xv6Rig, TruncateToZeroFreesEverything) {
  const auto free0 = fs().free_data_blocks();
  const bento::Ino ino = create_file("bigfree");
  std::vector<std::byte> mb(1 << 20, std::byte{9});
  for (int i = 0; i < 8; ++i) {
    write_at(ino, static_cast<std::uint64_t>(i) << 20, mb);
  }
  EXPECT_LT(fs().free_data_blocks(), free0);

  bento::SetAttrIn shrink;
  shrink.set_size = true;
  shrink.size = 0;
  auto r = fs().setattr(mount_->mkreq(), mount_->borrow(), ino, shrink);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size, 0u);
  // Everything (data + index blocks) returned to the allocator; only the
  // root dir block difference remains.
  EXPECT_EQ(fs().free_data_blocks(), free0);
}

TEST_F(Xv6Rig, PartialTruncateKeepsPrefix) {
  const bento::Ino ino = create_file("part");
  std::vector<std::byte> data(6 * kBlockSize);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i / kBlockSize + 1);
  }
  write_at(ino, 0, data);

  bento::SetAttrIn shrink;
  shrink.set_size = true;
  shrink.size = 2 * kBlockSize + 100;
  ASSERT_TRUE(
      fs().setattr(mount_->mkreq(), mount_->borrow(), ino, shrink).ok());

  auto got = read_at(ino, 0, 6 * kBlockSize);
  ASSERT_EQ(got.size(), 2 * kBlockSize + 100);
  EXPECT_EQ(got[0], std::byte{1});
  EXPECT_EQ(got[2 * kBlockSize + 50], std::byte{3});
}

TEST_F(Xv6Rig, CreateRejectsBadNames) {
  auto dot = fs().create(mount_->mkreq(), mount_->borrow(), kRootIno, ".",
                         0644);
  EXPECT_FALSE(dot.ok());
  auto slash = fs().create(mount_->mkreq(), mount_->borrow(), kRootIno,
                           "a/b", 0644);
  EXPECT_FALSE(slash.ok());
  const std::string long_name(kDirNameLen + 5, 'x');
  auto toolong = fs().create(mount_->mkreq(), mount_->borrow(), kRootIno,
                             long_name, 0644);
  EXPECT_FALSE(toolong.ok());
}

TEST_F(Xv6Rig, CreateDuplicateFails) {
  create_file("dup");
  auto again = fs().create(mount_->mkreq(), mount_->borrow(), kRootIno,
                           "dup", 0644);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.error(), Err::Exist);
}

TEST_F(Xv6Rig, LookupMissingIsNoEnt) {
  auto r = fs().lookup(mount_->mkreq(), mount_->borrow(), kRootIno, "ghost");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Err::NoEnt);
}

TEST_F(Xv6Rig, StatfsTracksAllocations) {
  auto s0 = fs().statfs(mount_->mkreq(), mount_->borrow());
  ASSERT_TRUE(s0.ok());
  const bento::Ino ino = create_file("acct");
  std::vector<std::byte> blockful(kBlockSize, std::byte{1});
  write_at(ino, 0, blockful);
  auto s1 = fs().statfs(mount_->mkreq(), mount_->borrow());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1.value().free_inodes + 1, s0.value().free_inodes);
  EXPECT_LT(s1.value().free_blocks, s0.value().free_blocks);
}

TEST_F(Xv6Rig, ReaddirStreamsAllEntries) {
  for (int i = 0; i < 200; ++i) {
    create_file("many" + std::to_string(i));
  }
  std::uint64_t pos = 0;
  int count = 0;
  ASSERT_EQ(Err::Ok,
            fs().readdir(mount_->mkreq(), mount_->borrow(), kRootIno, pos,
                         [&](const kern::DirEnt&) {
                           count += 1;
                           return true;
                         }));
  EXPECT_EQ(count, 202);  // ".", "..", 200 files
}

TEST_F(Xv6Rig, FileGrowsToFBigLimit) {
  const bento::Ino ino = create_file("toofar");
  const std::byte x{1};
  // Writing beyond the maximum mapped block must fail cleanly.
  auto r = fs().write(mount_->mkreq(), mount_->borrow(), ino, 0,
                      kMaxFileBlocks * static_cast<std::uint64_t>(kBlockSize),
                      {&x, 1});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Err::FBig);
}

}  // namespace
}  // namespace bsim::xv6
