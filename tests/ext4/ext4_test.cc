// Unit tests for the ext4 comparator: block groups, journal commit and
// recovery, group commit, and the directory index.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"
#include "sim/runner.h"

namespace bsim::test {
namespace {

using kern::Err;

class Ext4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    blk::DeviceParams params;
    params.nblocks = 65536;  // 256 MiB
    auto& dev = kernel_.add_device("ssd0", params);
    ext4::mkfs(dev, /*inodes_per_group=*/4096);
    register_all_xv6(kernel_);
    ASSERT_EQ(Err::Ok, kernel_.mount("ext4j", "ssd0", "/mnt"));
    mount_ = static_cast<ext4::Ext4Mount*>(kernel_.sb_at("/mnt")->fs_info);
    ASSERT_NE(mount_, nullptr);
  }

  kern::Process& proc() { return kernel_.proc(); }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
  ext4::Ext4Mount* mount_ = nullptr;
};

TEST_F(Ext4Test, MetadataOpsDoNotCommitSynchronously) {
  // The mechanism behind ext4's untar/fileserver advantage: creates join
  // the running transaction in memory; no journal commit per operation.
  const auto before = mount_->journal_stats().commits;
  for (int i = 0; i < 50; ++i) {
    auto fd = kernel_.open(proc(), "/mnt/f" + std::to_string(i),
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  EXPECT_EQ(mount_->journal_stats().commits, before);  // still uncommitted
  ASSERT_EQ(Err::Ok, kernel_.sync(proc()));
  EXPECT_GT(mount_->journal_stats().commits, before);  // one batched commit
}

TEST_F(Ext4Test, FsyncCommitsTheRunningTransaction) {
  auto fd = kernel_.open(proc(), "/mnt/d", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(16384, std::byte{7});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  const auto before = mount_->journal_stats().commits;
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  EXPECT_GT(mount_->journal_stats().commits, before);
  // data=journal: the file data itself went through the journal.
  EXPECT_GE(mount_->journal_stats().blocks_journaled, 4u);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(Ext4Test, EmptyCommitSkippedWithoutPendingWrites) {
  // Satellite (ISSUE 5): a flush-commit with nothing tagged, nothing in
  // flight, and nothing written since the last FLUSH must not pay a
  // header write + device FLUSH — it is skipped and counted.
  auto fd = kernel_.open(proc(), "/mnt/skip", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("payload")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));  // real commit
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  const auto commits = mount_->journal_stats().commits;
  const auto skips = mount_->journal_stats().empty_commits_skipped;
  const auto flushes = kernel_.device("ssd0")->stats().flushes;
  // Nothing dirtied since the fsync's flush: sync(2)'s flush-commit has
  // nothing to make durable. (A repeated fsync takes the shared_commits
  // fast path already; the sync_fs path is where the no-op commit used
  // to pay a header write + FLUSH.)
  ASSERT_EQ(Err::Ok, kernel_.sync(proc()));
  EXPECT_EQ(mount_->journal_stats().commits, commits);
  EXPECT_GT(mount_->journal_stats().empty_commits_skipped, skips);
  EXPECT_EQ(kernel_.device("ssd0")->stats().flushes, flushes);
}

TEST_F(Ext4Test, ThresholdCommitsArePipelined) {
  // The write path's threshold commits (no flush) keep their transfers
  // in flight on tickets — transaction N+1 fills while N's commit record
  // and checkpoint complete. fsync drains them.
  auto fd = kernel_.open(proc(), "/mnt/pipe", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> mb(1 << 20, std::byte{3});
  const auto before = mount_->journal_stats().pipelined_commits;
  for (int i = 0; i < 16; ++i) {  // 16 MiB > kTxnCommitThreshold blocks
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), mb).ok());
  }
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  EXPECT_GT(mount_->journal_stats().pipelined_commits, before);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(Ext4Test, JournalRecoveryReplaysCommittedTransaction) {
  // Write + fsync, snapshot the device, then re-point a fresh kernel at
  // the snapshot: mount-time recovery must yield the same contents.
  auto fd = kernel_.open(proc(), "/mnt/r", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("recovered")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  // Copy image.
  auto* dev = kernel_.device("ssd0");
  kern::Kernel kernel2;
  blk::DeviceParams params;
  params.nblocks = dev->nblocks();
  auto& dev2 = kernel2.add_device("ssd0", params);
  std::array<std::byte, blk::kBlockSize> buf{};
  for (std::uint64_t b = 0; b < dev->nblocks(); ++b) {
    dev->read_untimed(b, buf);
    dev2.write_untimed(b, buf);
  }
  register_all_xv6(kernel2);
  ASSERT_EQ(Err::Ok, kernel2.mount("ext4j", "ssd0", "/mnt"));
  auto fd2 = kernel2.open(kernel2.proc(), "/mnt/r", kern::kORdOnly);
  ASSERT_TRUE(fd2.ok());
  std::vector<std::byte> rbuf(32);
  auto r = kernel2.read(kernel2.proc(), fd2.value(), rbuf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({rbuf.data(), r.value()}), "recovered");
  ASSERT_EQ(Err::Ok, kernel2.close(kernel2.proc(), fd2.value()));
}

TEST_F(Ext4Test, AllocationUsesMultipleGroups) {
  // Write enough data that allocation must spill beyond group 0.
  auto fd = kernel_.open(proc(), "/mnt/big", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> mb(1 << 20, std::byte{1});
  for (int i = 0; i < 64; ++i) {  // 64 MiB
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), mb).ok());
  }
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(st.ok());
  EXPECT_LT(st.value().free_blocks + 16384,
            st.value().total_blocks);  // >16k blocks in use
}

TEST_F(Ext4Test, FreeCountsRestoreAfterDelete) {
  const auto free0 = mount_->free_blocks_total();
  const auto inodes0 = mount_->free_inodes_total();
  auto fd = kernel_.open(proc(), "/mnt/tmp", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(1 << 20, std::byte{1});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_LT(mount_->free_blocks_total(), free0);

  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/mnt/tmp"));
  EXPECT_EQ(mount_->free_blocks_total(), free0);
  EXPECT_EQ(mount_->free_inodes_total(), inodes0);
}

TEST_F(Ext4Test, DirIndexSurvivesChurn) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/idx"));
  for (int i = 0; i < 500; ++i) {
    auto fd = kernel_.open(proc(), "/mnt/idx/e" + std::to_string(i),
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  for (int i = 0; i < 500; i += 2) {
    ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/mnt/idx/e" + std::to_string(i)));
  }
  for (int i = 0; i < 500; ++i) {
    const bool should_exist = i % 2 == 1;
    EXPECT_EQ(kernel_.stat(proc(), "/mnt/idx/e" + std::to_string(i)).ok(),
              should_exist)
        << i;
  }
  auto entries = kernel_.readdir(proc(), "/mnt/idx");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 2u + 250u);
}

TEST_F(Ext4Test, GroupCommitSharesFlushes) {
  // Two fsyncs whose commits land within one flush window share a FLUSH;
  // exercised here through the journal's accounting by issuing commits
  // from interleaved virtual threads in the runner.
  // (The macro varmail benchmark shows the end-to-end effect; this test
  // pins the mechanism.)
  class Syncer final : public sim::Workload {
   public:
    Syncer(kern::Kernel& k, std::string path, int id)
        : kernel_(k), path_(std::move(path)), id_(id) {}
    void setup() override {
      proc_ = kernel_.new_process();
      auto fd = kernel_.open(*proc_, path_ + std::to_string(id_),
                             kern::kOCreat | kern::kOWrOnly);
      fd_ = fd.value();
    }
    std::int64_t step() override {
      if (steps_-- == 0) return -1;
      std::vector<std::byte> data(4096, std::byte{1});
      (void)kernel_.write(*proc_, fd_, data);
      (void)kernel_.fsync(*proc_, fd_);
      return 4096;
    }

   private:
    kern::Kernel& kernel_;
    std::string path_;
    int id_;
    int steps_ = 20;
    std::unique_ptr<kern::Process> proc_;
    int fd_ = -1;
  };

  std::vector<std::unique_ptr<sim::Workload>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(std::make_unique<Syncer>(kernel_, "/mnt/gc", i));
  }
  sim::RunnerOptions opts;
  opts.horizon = 10 * sim::kSecond;
  (void)sim::run_workloads(jobs, opts);
  EXPECT_GT(mount_->journal_stats().shared_commits, 0u);
}

TEST_F(Ext4Test, ReadpagesMapsExtentsOncePerRun) {
  // Write a file deep into the indirect region, drop the page cache via
  // remount, then scan it sequentially. The readahead batches must
  // resolve their mapping through map_run — a handful of indirect-block
  // reads per batch — with ZERO per-page bmap calls on the read path.
  const std::size_t kFileBytes = 48 * 4096;  // 48 blocks: direct + indirect
  auto fd = kernel_.open(proc(), "/mnt/big", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(kFileBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i / 4096);
  }
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.sync(proc()));
  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt"));
  ASSERT_EQ(Err::Ok, kernel_.mount("ext4j", "ssd0", "/mnt"));
  mount_ = static_cast<ext4::Ext4Mount*>(kernel_.sb_at("/mnt")->fs_info);

  const auto before = mount_->map_stats();
  fd = kernel_.open(proc(), "/mnt/big", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(4096);
  for (std::size_t off = 0; off < kFileBytes; off += buf.size()) {
    auto r = kernel_.pread(proc(), fd.value(), buf, off);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value(), buf.size());
    EXPECT_EQ(buf[0], static_cast<std::byte>(off / 4096));
  }
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  const auto& after = mount_->map_stats();
  const std::uint64_t batches = after.readpages_calls - before.readpages_calls;
  const std::uint64_t runs = after.map_runs - before.map_runs;
  const std::uint64_t indirect = after.map_indirect_reads -
                                 before.map_indirect_reads;
  ASSERT_GT(batches, 0u);
  EXPECT_EQ(runs, batches);  // one mapping pass per readahead batch
  // The whole 48-block scan touches one indirect block; per-block bmap
  // would have read it ~36 times. Allow one read per batch (the regression
  // bound: bmap calls / indirect reads per readahead batch <= 1).
  EXPECT_LE(indirect, batches);
  // The only single-block lookups left are outside readpages: the open's
  // directory lookup and the very first page's ->readpage (the stream
  // window has not opened yet). Per-page bmap would be ~48 here.
  EXPECT_LE(after.bmap_calls - before.bmap_calls, 4u)
      << "readpages must not fall back to per-page bmap";
}

}  // namespace
}  // namespace bsim::test
