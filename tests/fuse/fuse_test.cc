// Unit tests for the FUSE transport: request accounting, payload copy
// costs, the userspace block backend's pwrite+fsync durability path, and
// write-request chunking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"

namespace bsim::test {
namespace {

using kern::Err;

class FuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    blk::DeviceParams params;
    params.nblocks = 32768;
    auto& dev = kernel_.add_device("ssd0", params);
    xv6::mkfs(dev, 4096);
    register_all_xv6(kernel_);
    ASSERT_EQ(Err::Ok, kernel_.mount("xv6_fuse", "ssd0", "/mnt"));
    module_ = static_cast<fuse::FuseModule*>(
        bento::BentoModule::from(*kernel_.sb_at("/mnt")));
    ASSERT_NE(module_, nullptr);
  }

  kern::Process& proc() { return kernel_.proc(); }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
  fuse::FuseModule* module_ = nullptr;
};

TEST_F(FuseTest, RequestsAreCounted) {
  const auto before = module_->conn_stats().requests;
  auto fd = kernel_.open(proc(), "/mnt/f", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  // At least create + open + flush-side traffic crossed the transport.
  EXPECT_GT(module_->conn_stats().requests, before);
}

TEST_F(FuseTest, CachedReadsDoNotCrossTheTransport) {
  // Write + read back twice: the second read must be served from the
  // kernel page cache without a FUSE request (the §6.5.1 result).
  auto fd = kernel_.open(proc(), "/mnt/c", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(8192, std::byte{5});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));

  std::vector<std::byte> buf(8192);
  ASSERT_TRUE(kernel_.pread(proc(), fd.value(), buf, 0).ok());  // warms
  const auto before = module_->conn_stats().requests;
  ASSERT_TRUE(kernel_.pread(proc(), fd.value(), buf, 0).ok());  // cached
  EXPECT_EQ(module_->conn_stats().requests, before);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(FuseTest, PayloadBytesAccounted) {
  auto fd = kernel_.open(proc(), "/mnt/p", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  const auto before = module_->conn_stats().payload_bytes;
  std::vector<std::byte> data(64 * 1024, std::byte{1});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));  // pushes writeback
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  // The 64 KiB of dirty pages crossed the boundary (plus metadata traffic).
  EXPECT_GE(module_->conn_stats().payload_bytes - before, 64u * 1024u);
}

TEST_F(FuseTest, DurableBlockWritesFsyncTheDiskFile) {
  // The §6.4 behaviour: each synchronous block write from the daemon is
  // pwrite + fsync of the whole disk file. One commit (forced here by
  // fsync — group commit would otherwise defer the create's transaction)
  // must produce several fsyncs of the backing device.
  const auto flushes_before = kernel_.device("ssd0")->stats().flushes;
  auto fd = kernel_.open(proc(), "/mnt/d", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  const auto flushes_after = kernel_.device("ssd0")->stats().flushes;
  EXPECT_GE(flushes_after - flushes_before, 4u);  // log + header + install…
}

TEST_F(FuseTest, WritebackRunsAreChunkedToMaxWritePages) {
  // A 1 MiB dirty run must be split into requests of at most
  // kMaxPages pages (the FUSE max_write limit).
  auto fd = kernel_.open(proc(), "/mnt/big", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> mb(1 << 20, std::byte{2});
  const auto before = module_->conn_stats().requests;
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), mb).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  const auto writes =
      module_->conn_stats().requests - before;
  // 256 pages / 32 pages-per-request = at least 8 write requests.
  EXPECT_GE(writes, 8u);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(FuseTest, DataSurvivesRemountThroughUserspacePath) {
  auto fd = kernel_.open(proc(), "/mnt/persist", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("via daemon")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt"));
  // Remount through the *kernel* deployment: same on-disk format, so the
  // data written via the FUSE daemon must be readable via BentoFS.
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_bento", "ssd0", "/mnt"));
  auto fd2 = kernel_.open(proc(), "/mnt/persist", kern::kORdOnly);
  ASSERT_TRUE(fd2.ok());
  std::vector<std::byte> buf(32);
  auto r = kernel_.read(proc(), fd2.value(), buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "via daemon");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd2.value()));
}

TEST_F(FuseTest, MetadataOpsAreMuchSlowerThanKernelBento) {
  // The headline asymmetry, asserted as a property: creating a file via
  // FUSE costs at least 20x more virtual time than via kernel Bento.
  // Both sides mount "-o nogroup" so the create's transaction commits at
  // end_op (group commit would defer it past the measurement; an fsync
  // would bury the asymmetry under the device FLUSH both sides share).
  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt"));
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_fuse", "ssd0", "/mnt", "nogroup"));
  const sim::Nanos t0 = sim::now();
  auto fd = kernel_.open(proc(), "/mnt/slow", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  const sim::Nanos fuse_cost = sim::now() - t0;

  blk::DeviceParams params;
  params.nblocks = 32768;
  auto& dev2 = kernel_.add_device("ssd1", params);
  xv6::mkfs(dev2, 4096);
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_bento", "ssd1", "/mnt2", "nogroup"));
  const sim::Nanos t1 = sim::now();
  auto fd2 = kernel_.open(proc(), "/mnt2/fast", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd2.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd2.value()));
  const sim::Nanos bento_cost = sim::now() - t1;

  EXPECT_GT(fuse_cost, 20 * bento_cost)
      << "fuse=" << fuse_cost << "ns bento=" << bento_cost << "ns";
}

}  // namespace
}  // namespace bsim::test
