// Integration tests for ExtFUSE (paper §2.2, [5]): eBPF metadata caches
// attached to the FUSE driver — hit/miss behaviour, coherence under
// mutation, and the performance delta the design exists for.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"
#include "fuse/extfuse.h"

namespace bsim::test {
namespace {

using kern::Err;

class ExtFuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    blk::DeviceParams params;
    params.nblocks = 32768;
    auto& dev = kernel_.add_device("ssd0", params);
    xv6::mkfs(dev, 4096);
    register_all_xv6(kernel_);
    ASSERT_EQ(Err::Ok, kernel_.mount("xv6_fuse", "ssd0", "/mnt", "extfuse"));
    module_ = static_cast<fuse::FuseModule*>(
        bento::BentoModule::from(*kernel_.sb_at("/mnt")));
    ASSERT_NE(nullptr, module_);
    ASSERT_NE(nullptr, module_->extfuse());
  }

  kern::Process& proc() { return kernel_.proc(); }
  const fuse::ExtFuseFilter::Stats& stats() {
    return module_->extfuse()->stats();
  }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
  fuse::FuseModule* module_ = nullptr;
};

TEST_F(ExtFuseTest, MountWithOptionAttachesFilter) {
  EXPECT_NE(nullptr, module_->extfuse());
}

TEST_F(ExtFuseTest, MountWithoutOptionHasNoFilter) {
  blk::DeviceParams params;
  params.nblocks = 32768;
  auto& dev = kernel_.add_device("ssd1", params);
  xv6::mkfs(dev, 4096);
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_fuse", "ssd1", "/mnt2"));
  auto* plain = static_cast<fuse::FuseModule*>(
      bento::BentoModule::from(*kernel_.sb_at("/mnt2")));
  ASSERT_NE(nullptr, plain);
  EXPECT_EQ(nullptr, plain->extfuse());
  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt2"));
}

TEST_F(ExtFuseTest, RepeatedStatHitsTheAttrCache) {
  auto fd = kernel_.open(proc(), "/mnt/hot.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  for (int i = 0; i < 10; ++i) {
    auto st = kernel_.stat(proc(), "/mnt/hot.txt");
    ASSERT_TRUE(st.ok());
  }
  EXPECT_GT(stats().attr_hits + stats().entry_hits, 0U);
  EXPECT_GT(stats().installs, 0U);
}

TEST_F(ExtFuseTest, CachedStatMatchesPassthroughStat) {
  auto fd = kernel_.open(proc(), "/mnt/same.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  const std::string data(1234, 'd');
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes(data)).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  auto first = kernel_.stat(proc(), "/mnt/same.txt");   // install
  auto second = kernel_.stat(proc(), "/mnt/same.txt");  // may hit
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().ino, second.value().ino);
  EXPECT_EQ(first.value().size, second.value().size);
  EXPECT_EQ(1234U, second.value().size);
  EXPECT_EQ(first.value().mode, second.value().mode);
}

TEST_F(ExtFuseTest, WriteInvalidatesAttrCache) {
  // Sizes become visible at close (writeback flush), same as the plain
  // FUSE deployment; what ExtFUSE must not do is serve the *old* size
  // from its map after the file grows.
  auto fd = kernel_.open(proc(), "/mnt/grow.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("1111")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st1 = kernel_.stat(proc(), "/mnt/grow.txt");
  ASSERT_TRUE(st1.ok());
  EXPECT_EQ(4U, st1.value().size);
  (void)kernel_.stat(proc(), "/mnt/grow.txt");  // warm the cache

  fd = kernel_.open(proc(), "/mnt/grow.txt",
                    kern::kOWrOnly | kern::kOAppend);
  ASSERT_TRUE(fd.ok());
  const std::string more(10000, 'm');
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes(more)).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st2 = kernel_.stat(proc(), "/mnt/grow.txt");
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(10004U, st2.value().size);  // stale 4 = a coherence bug
}

TEST_F(ExtFuseTest, TruncateInvalidatesAttrCache) {
  auto fd = kernel_.open(proc(), "/mnt/shrink.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(),
                            as_bytes(std::string(5000, 's'))).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  (void)kernel_.stat(proc(), "/mnt/shrink.txt");  // warm
  (void)kernel_.stat(proc(), "/mnt/shrink.txt");

  ASSERT_EQ(Err::Ok, kernel_.truncate(proc(), "/mnt/shrink.txt", 100));
  auto st = kernel_.stat(proc(), "/mnt/shrink.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(100U, st.value().size);
}

TEST_F(ExtFuseTest, UnlinkInvalidatesEntryCache) {
  auto fd = kernel_.open(proc(), "/mnt/dead.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  (void)kernel_.stat(proc(), "/mnt/dead.txt");  // warm entry cache
  (void)kernel_.stat(proc(), "/mnt/dead.txt");

  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/mnt/dead.txt"));
  auto st = kernel_.stat(proc(), "/mnt/dead.txt");
  EXPECT_FALSE(st.ok());  // a cached positive entry here = stale namespace
}

TEST_F(ExtFuseTest, RenameInvalidatesBothNames) {
  auto fd = kernel_.open(proc(), "/mnt/old.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  (void)kernel_.stat(proc(), "/mnt/old.txt");
  (void)kernel_.stat(proc(), "/mnt/old.txt");

  ASSERT_EQ(Err::Ok, kernel_.rename(proc(), "/mnt/old.txt", "/mnt/new.txt"));
  EXPECT_FALSE(kernel_.stat(proc(), "/mnt/old.txt").ok());
  EXPECT_TRUE(kernel_.stat(proc(), "/mnt/new.txt").ok());
}

TEST_F(ExtFuseTest, HitPathIsCheaperThanDaemonRoundTrip) {
  auto fd = kernel_.open(proc(), "/mnt/fast.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  // First stat (cold): daemon round trips. Second stat (warm): map hits.
  const auto t0 = sim::now();
  ASSERT_TRUE(kernel_.stat(proc(), "/mnt/fast.txt").ok());
  const auto cold = sim::now() - t0;
  const auto t1 = sim::now();
  ASSERT_TRUE(kernel_.stat(proc(), "/mnt/fast.txt").ok());
  const auto warm = sim::now() - t1;
  EXPECT_LT(warm, cold / 2);
}

TEST_F(ExtFuseTest, InvalidationsAreCounted) {
  auto fd = kernel_.open(proc(), "/mnt/count.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  (void)kernel_.stat(proc(), "/mnt/count.txt");  // install
  const auto before = stats().invalidations;
  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/mnt/count.txt"));
  EXPECT_GT(stats().invalidations, before);
}

}  // namespace
}  // namespace bsim::test
