// Unit tests for RAID1 mirrored volumes (blockdev/mirrored.h): write
// replication, read balancing (round-robin and shortest-queue), the
// member-failure fault model (fail-stop + injected read errors), degraded
// service, the online rebuild (resync cursor, write interception,
// backpressure), RAID10 stacking, and crash-model parity with one device.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "blockdev/mirrored.h"
#include "blockdev/striped.h"
#include "sim/rng.h"
#include "sim/thread.h"

namespace bsim::blk {
namespace {

using sim::Nanos;

class MirroredDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  /// 2-way mirror, 64 blocks, round-robin reads.
  static MirroredDevice make2(
      MirrorReadPolicy policy = MirrorReadPolicy::RoundRobin) {
    MirrorParams mp;
    mp.nmirrors = 2;
    mp.policy = policy;
    DeviceParams member;
    member.nblocks = 64;
    return MirroredDevice(mp, member);
  }

  static std::array<std::byte, kBlockSize> pattern(std::uint8_t seed) {
    std::array<std::byte, kBlockSize> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::byte>(seed + i);
    }
    return b;
  }

  static bool members_identical(MirroredDevice& md, std::size_t a,
                                std::size_t b) {
    std::array<std::byte, kBlockSize> ba{}, bb{};
    for (std::uint64_t blk = 0; blk < md.nblocks(); ++blk) {
      md.member(a).read_untimed(blk, ba);
      md.member(b).read_untimed(blk, bb);
      if (ba != bb) return false;
    }
    return true;
  }

  sim::SimThread thread_{0};
};

// ---- geometry + option parsing ----

TEST_F(MirroredDeviceTest, VolumeGeometryIsOneMember) {
  MirroredDevice md = make2();
  EXPECT_EQ(md.members(), 2u);
  EXPECT_EQ(md.nblocks(), 64u);  // NOT 128: replicas, not capacity
  EXPECT_EQ(md.fan_out(), 1u);   // one logical device to flushers/shards
  EXPECT_FALSE(md.degraded());
  EXPECT_EQ(md.healthy_members(), 2u);
}

TEST_F(MirroredDeviceTest, OptionStringParsing) {
  auto mp = mirror_params_from_opts("noflusher,mirror=2,policy=sq");
  ASSERT_TRUE(mp.has_value());
  EXPECT_EQ(mp->nmirrors, 2u);
  EXPECT_EQ(mp->policy, MirrorReadPolicy::ShortestQueue);
  EXPECT_FALSE(mirror_params_from_opts("stripe=4").has_value());
  EXPECT_FALSE(mirror_params_from_opts("mirror=1").has_value());

  MirrorParams base;
  base.nmirrors = 3;
  base.policy = MirrorReadPolicy::ShortestQueue;
  const MirrorParams a = merge_mirror_opts("policy=rr", base);
  EXPECT_EQ(a.nmirrors, 3u);  // kept
  EXPECT_EQ(a.policy, MirrorReadPolicy::RoundRobin);
  const MirrorParams b = merge_mirror_opts("mirror=1", base);
  EXPECT_EQ(b.nmirrors, 1u);  // explicit disable
  const MirrorParams c = merge_mirror_opts("io_uring", base);
  EXPECT_EQ(c.nmirrors, 3u);  // unrelated tokens ignored

  // Stripe and mirror selections coexist in one option string.
  auto sp = stripe_params_from_opts("stripe=4,mirror=2");
  auto mp2 = mirror_params_from_opts("stripe=4,mirror=2");
  ASSERT_TRUE(sp.has_value());
  ASSERT_TRUE(mp2.has_value());
  EXPECT_EQ(sp->ndevices, 4u);
  EXPECT_EQ(mp2->nmirrors, 2u);
}

// ---- write replication ----

TEST_F(MirroredDeviceTest, WritesReplicateToEveryMember) {
  MirroredDevice md = make2();
  std::vector<std::array<std::byte, kBlockSize>> payloads;
  for (std::uint8_t i = 0; i < 16; ++i) payloads.push_back(pattern(i));
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 16; ++b) {
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  md.submit(bios);
  for (const Bio& b : bios) EXPECT_TRUE(b.applied);

  EXPECT_EQ(md.member(0).stats().writes, 16u);
  EXPECT_EQ(md.member(1).stats().writes, 16u);
  EXPECT_EQ(md.volume_stats().replicated_writes, 32u);
  EXPECT_TRUE(members_identical(md, 0, 1));
  std::array<std::byte, kBlockSize> got{};
  md.read_untimed(5, got);
  EXPECT_EQ(got, pattern(5));
}

TEST_F(MirroredDeviceTest, ReplicationCostsOneDeviceNotTwo) {
  // Replica batches go out via submit_async per member, so both members
  // transfer concurrently: the mirrored write takes single-device time.
  auto timed_write = [](std::size_t nmirrors) {
    sim::SimThread t(static_cast<int>(10 + nmirrors));
    sim::ScopedThread in(t);
    MirrorParams mp;
    mp.nmirrors = nmirrors;
    DeviceParams member;
    member.nblocks = 64;
    MirroredDevice md(mp, member);
    auto data = std::array<std::byte, kBlockSize>{};
    std::vector<Bio> bios;
    for (std::uint64_t b = 0; b < 32; ++b) {
      bios.push_back(Bio::single_write(b, data));
    }
    const Nanos t0 = sim::now();
    md.submit(bios);
    return sim::now() - t0;
  };
  EXPECT_EQ(timed_write(1), timed_write(2));
  EXPECT_EQ(timed_write(1), timed_write(4));
}

// ---- read balancing ----

TEST_F(MirroredDeviceTest, RoundRobinAlternatesHealthyMembers) {
  MirroredDevice md = make2();
  auto data = pattern(1);
  for (std::uint64_t b = 0; b < 32; ++b) md.write(b, data);

  // Stride-3 reads (never stream-contiguous) alternate members strictly.
  std::array<std::byte, kBlockSize> buf{};
  for (int r = 0; r < 8; ++r) md.read(static_cast<std::uint64_t>(r * 3), buf);
  EXPECT_EQ(md.member(0).stats().reads, 4u);
  EXPECT_EQ(md.member(1).stats().reads, 4u);
  EXPECT_EQ(md.volume_stats().balanced_reads, 8u);
  EXPECT_EQ(md.volume_stats().redirected_reads, 0u);
  EXPECT_EQ(md.volume_stats().sequential_affinity_reads, 0u);
}

TEST_F(MirroredDeviceTest, SequentialStreamSticksToOneMember) {
  // A sequential read stream stays on the member already serving it (the
  // md read_balance closest-head rule), keeping sequential pricing; a
  // second concurrent stream lands on the other member.
  MirroredDevice md = make2();
  auto data = pattern(1);
  for (std::uint64_t b = 0; b < 64; ++b) md.write(b, data);
  md.flush();

  std::array<std::byte, kBlockSize> buf{};
  md.read(0, buf);   // stream A opens on member 0 (rr)
  md.read(32, buf);  // stream B opens on member 1 (rr)
  for (std::uint64_t i = 1; i < 16; ++i) {
    md.read(i, buf);       // stream A continues on member 0
    md.read(32 + i, buf);  // stream B continues on member 1
  }
  EXPECT_EQ(md.volume_stats().sequential_affinity_reads, 30u);
  EXPECT_EQ(md.member(0).stats().reads, 16u);
  EXPECT_EQ(md.member(1).stats().reads, 16u);
  // The streams were priced sequentially (first read of each is random).
  EXPECT_GE(md.member(0).stats().seq_read_blocks, 15u);
  EXPECT_GE(md.member(1).stats().seq_read_blocks, 15u);
}

TEST_F(MirroredDeviceTest, ShortestQueueAvoidsTheBusyMember) {
  // Heterogeneous mirror: member 1 is 50x slower at random reads. The
  // shortest-queue policy should route the bulk of a read burst to the
  // fast member once the slow one's queue backs up.
  MirrorParams mp;
  mp.nmirrors = 2;
  mp.policy = MirrorReadPolicy::ShortestQueue;
  std::vector<DeviceParams> members(2);
  members[0].nblocks = members[1].nblocks = 64;
  members[0].channels = members[1].channels = 1;
  members[1].read_lat_rand = members[0].read_lat_rand * 50;
  MirroredDevice md(mp, members);

  auto data = pattern(1);
  for (std::uint64_t b = 0; b < 32; ++b) md.write(b, data);

  std::array<std::array<std::byte, kBlockSize>, 32> bufs{};
  std::vector<Bio> reads;
  for (std::uint64_t b = 0; b < 32; ++b) {
    reads.push_back(Bio::single_read((b * 7) % 32, bufs[b]));
  }
  md.submit(reads);
  EXPECT_GT(md.member(0).stats().reads, md.member(1).stats().reads * 3);
}

TEST_F(MirroredDeviceTest, ShortestQueueLatencyEwmaRepelsTheSlowMember) {
  // ISSUE 5 satellite (ROADMAP follow-up): the sq policy factors an EWMA
  // of OBSERVED per-member completion latency (Bio::done_at), not queue
  // depth alone. One bio at a time means both members always have an
  // EMPTY queue at pick time — depth alone would ping-pong 50/50 between
  // a fast and an artificially slow member; the latency EWMA learns the
  // slow one and keeps reads off it.
  MirrorParams mp;
  mp.nmirrors = 2;
  mp.policy = MirrorReadPolicy::ShortestQueue;
  std::vector<DeviceParams> members(2);
  members[0].nblocks = members[1].nblocks = 64;
  members[0].channels = members[1].channels = 1;
  members[1].read_lat_rand = members[0].read_lat_rand * 10;
  members[1].read_lat_seq = members[0].read_lat_seq * 10;
  members[1].write_xfer = members[0].write_xfer * 10;
  MirroredDevice md(mp, members);

  auto data = pattern(2);
  for (std::uint64_t b = 0; b < 32; ++b) md.write(b, data);

  std::array<std::byte, kBlockSize> buf{};
  const auto r0 = md.member(0).stats().reads;
  const auto r1 = md.member(1).stats().reads;
  for (std::uint64_t i = 0; i < 32; ++i) {
    // One scattered bio at a time, fully drained between picks: every
    // pick sees equal (zero) pending work on both members, and stride 3
    // never continues a stream (+1), so sequential affinity stays out of
    // the picture — the latency EWMA is the only discriminating signal.
    Bio rd = Bio::single_read((i * 3) % 64, buf);
    md.wait(md.submit_async(std::span<Bio>(&rd, 1)));
    sim::current().wait_until(sim::now() + sim::kMillisecond);  // queues idle
  }
  const auto fast = md.member(0).stats().reads - r0;
  const auto slow = md.member(1).stats().reads - r1;
  EXPECT_GT(fast, slow * 5) << "fast=" << fast << " slow=" << slow;
  EXPECT_GT(md.member_latency_ewma(1), md.member_latency_ewma(0));
}

TEST_F(MirroredDeviceTest, MirroredRandomReadsScaleWithMembers) {
  // The acceptance gate's microcosm: a random-read burst at QD>1 on a
  // 2-way mirror completes in about half the single-device time.
  auto timed_reads = [](std::size_t nmirrors) {
    sim::SimThread t(static_cast<int>(20 + nmirrors));
    sim::ScopedThread in(t);
    MirrorParams mp;
    mp.nmirrors = nmirrors;
    DeviceParams member;
    // A sparse address space keeps adjacent-block merge luck from
    // dominating the comparison (reads of unwritten blocks return zeros).
    member.nblocks = 8192;
    MirroredDevice md(mp, member);
    sim::Rng rng(3);

    std::vector<std::array<std::byte, kBlockSize>> bufs(64);
    const Nanos t0 = sim::now();
    std::vector<Ticket> inflight;
    std::vector<std::vector<Bio>> live;
    for (int batch = 0; batch < 8; ++batch) {
      std::vector<Bio> bios;
      for (std::size_t i = 0; i < 64; ++i) {
        bios.push_back(Bio::single_read(rng.below(8192), bufs[i]));
      }
      live.push_back(std::move(bios));
      inflight.push_back(md.submit_async(live.back()));
    }
    for (const Ticket& t2 : inflight) md.wait(t2);
    return sim::now() - t0;
  };
  const Nanos one = timed_reads(1);
  const Nanos two = timed_reads(2);
  EXPECT_LT(two * 18, one * 10);  // >= 1.8x
}

// ---- member failure: fail-stop ----

TEST_F(MirroredDeviceTest, FailMemberEntersDegradedModeAndKeepsServing) {
  MirroredDevice md = make2();
  auto before = pattern(1);
  for (std::uint64_t b = 0; b < 8; ++b) md.write(b, before);

  md.fail_member(1);
  EXPECT_TRUE(md.degraded());
  EXPECT_EQ(md.healthy_members(), 1u);
  EXPECT_FALSE(md.dead());  // degraded, not dead: still serving

  // Writes keep landing on the survivor; the failed member freezes.
  auto after = pattern(9);
  for (std::uint64_t b = 0; b < 8; ++b) md.write(b, after);
  std::array<std::byte, kBlockSize> got{};
  md.read_untimed(3, got);
  EXPECT_EQ(got, after);
  md.member(1).read_untimed(3, got);
  EXPECT_EQ(got, before);  // frozen at failure time

  // Reads all route to the survivor and are counted as degraded. Stride-5
  // reads defeat sequential affinity, so every pick goes through the
  // round-robin policy — whose turns onto the dead member redirect.
  const auto reads_before = md.member(0).stats().reads;
  std::array<std::byte, kBlockSize> buf{};
  for (int r = 0; r < 6; ++r) md.read(static_cast<std::uint64_t>(r * 5), buf);
  EXPECT_EQ(md.member(0).stats().reads, reads_before + 6);
  EXPECT_GE(md.volume_stats().degraded_reads, 6u);
  EXPECT_GT(md.volume_stats().degraded_writes, 0u);
  EXPECT_GT(md.volume_stats().redirected_reads, 0u);  // rr picks redirected
}

TEST_F(MirroredDeviceTest, FailMemberMidAsyncBatchFanInStillCompletes) {
  MirroredDevice md = make2();
  auto data = pattern(4);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 16; ++b) {
    bios.push_back(Bio::single_write(b, data));
  }
  const Ticket t = md.submit_async(bios);
  EXPECT_EQ(md.inflight(), 1u);
  // The member dies while the volume ticket is still in flight: fan-in
  // must redeem the dead member's ticket without wedging or double-free.
  md.fail_member(1);
  md.wait(t);
  EXPECT_EQ(md.inflight(), 0u);
  for (const Bio& b : bios) EXPECT_TRUE(b.applied);

  // The next batch replicates only to the survivor.
  std::vector<Bio> more;
  for (std::uint64_t b = 16; b < 20; ++b) {
    more.push_back(Bio::single_write(b, data));
  }
  const auto w1 = md.member(1).stats().writes;
  md.submit(more);
  EXPECT_EQ(md.member(1).stats().writes, w1);  // nothing new on the dead one
}

TEST_F(MirroredDeviceTest, AllMembersFailedReadsReportIoError) {
  MirroredDevice md = make2();
  auto data = pattern(2);
  md.write(0, data);
  md.fail_member(0);
  md.fail_member(1);
  std::array<std::byte, kBlockSize> buf{};
  Bio bio = Bio::single_read(0, buf);
  md.submit(bio);
  EXPECT_TRUE(bio.io_error);
  EXPECT_FALSE(bio.applied);
}

// ---- member failure: injected read errors ----

TEST_F(MirroredDeviceTest, ReadErrorFailsOverToTheMirror) {
  MirroredDevice md = make2();
  auto data = pattern(7);
  for (std::uint64_t b = 0; b < 4; ++b) md.write(b, data);

  // Block 2 is unreadable on BOTH members' first pick: inject on both and
  // check the whole-volume error; then repair one and check failover.
  md.member(0).inject_read_error(2);
  md.member(1).inject_read_error(2);
  std::array<std::byte, kBlockSize> buf{};
  Bio bad = Bio::single_read(2, buf);
  md.submit(bad);
  EXPECT_TRUE(bad.io_error);  // no replica could serve it
  EXPECT_GE(md.volume_stats().read_error_failovers, 1u);

  // A write repairs the sector on every serving member.
  md.write(2, data);
  Bio good = Bio::single_read(2, buf);
  md.submit(good);
  EXPECT_FALSE(good.io_error);
  EXPECT_TRUE(good.applied);

  // Single-member medium error: the volume serves the read from the
  // mirror and counts a failover; the caller never sees the error.
  md.member(0).inject_read_error(3);
  const auto failovers = md.volume_stats().read_error_failovers;
  buf.fill(std::byte{0});
  for (int r = 0; r < 2; ++r) {  // rr hits member 0 at least once
    Bio bio = Bio::single_read(3, buf);
    md.submit(bio);
    EXPECT_FALSE(bio.io_error);
    EXPECT_EQ(buf, data);
  }
  EXPECT_GT(md.volume_stats().read_error_failovers, failovers);
  EXPECT_GE(md.member(0).stats().read_errors, 1u);
}

// ---- online rebuild ----

TEST_F(MirroredDeviceTest, RebuildLeavesMembersBitIdentical) {
  MirroredDevice md = make2();
  auto data = pattern(1);
  for (std::uint64_t b = 0; b < 64; ++b) {
    md.write(b, pattern(static_cast<std::uint8_t>(b)));
  }
  (void)data;
  md.fail_member(1);
  // Divergence while degraded: the survivor moves on.
  for (std::uint64_t b = 0; b < 32; ++b) {
    md.write(b, pattern(static_cast<std::uint8_t>(0x80 + b)));
  }
  EXPECT_FALSE(members_identical(md, 0, 1));

  md.start_rebuild(1);
  EXPECT_TRUE(md.rebuild_active());
  md.finish_rebuild();
  EXPECT_FALSE(md.rebuild_active());
  EXPECT_FALSE(md.degraded());
  EXPECT_TRUE(members_identical(md, 0, 1));
  EXPECT_EQ(md.volume_stats().rebuild_copied, md.nblocks());
  EXPECT_EQ(md.volume_stats().rebuilds_completed, 1u);
}

TEST_F(MirroredDeviceTest, RebuildInterceptsForegroundWrites) {
  MirrorParams mp;
  mp.nmirrors = 2;
  mp.rebuild_batch = 8;
  // A tiny lead window: each foreground poke advances the resync only a
  // little, so writes land both behind and ahead of the cursor.
  mp.rebuild_lead = sim::usec(20);
  DeviceParams member;
  member.nblocks = 64;
  MirroredDevice md(mp, member);

  for (std::uint64_t b = 0; b < 64; ++b) md.write(b, pattern(1));
  md.fail_member(1);
  md.start_rebuild(1);

  // Foreground writes during the resync: every one must reach the target
  // too (write interception), regardless of the cursor position.
  for (std::uint64_t b = 0; b < 64; b += 4) {
    md.write(b, pattern(static_cast<std::uint8_t>(0x40 + b)));
  }
  EXPECT_GT(md.volume_stats().rebuild_write_intercepts, 0u);
  EXPECT_GT(md.volume_stats().rebuild_throttle_yields, 0u);  // backpressure
  md.finish_rebuild();
  EXPECT_TRUE(members_identical(md, 0, 1));
}

TEST_F(MirroredDeviceTest, RebuildBackpressureBoundsTheResyncClock) {
  MirrorParams mp;
  mp.nmirrors = 2;
  mp.rebuild_batch = 4;
  mp.rebuild_lead = sim::usec(50);
  DeviceParams member;
  member.nblocks = 256;
  MirroredDevice md(mp, member);
  for (std::uint64_t b = 0; b < 256; ++b) md.write(b, pattern(2));
  md.fail_member(1);
  md.start_rebuild(1);

  // One poke (a single foreground write) advances the resync by at most
  // the lead window, not to completion: foreground I/O is never starved
  // behind a full-device copy.
  md.write(0, pattern(3));
  EXPECT_TRUE(md.rebuild_active());
  EXPECT_GT(md.rebuild_cursor(), 0u);
  EXPECT_LT(md.rebuild_cursor(), md.nblocks());
  md.finish_rebuild();
  EXPECT_TRUE(members_identical(md, 0, 1));
}

TEST_F(MirroredDeviceTest, FailTargetDuringRebuildAborts) {
  MirroredDevice md = make2();
  for (std::uint64_t b = 0; b < 64; ++b) md.write(b, pattern(1));
  md.fail_member(1);
  md.start_rebuild(1);
  md.fail_member(1);  // the replacement dies mid-resync
  EXPECT_FALSE(md.rebuild_active());
  EXPECT_EQ(md.volume_stats().rebuilds_aborted, 1u);
  EXPECT_TRUE(md.degraded());
  // The volume still serves from the survivor.
  std::array<std::byte, kBlockSize> buf{};
  Bio bio = Bio::single_read(0, buf);
  md.submit(bio);
  EXPECT_FALSE(bio.io_error);
}

TEST_F(MirroredDeviceTest, FailSourceDuringRebuildFallsOverOrAborts) {
  // 3-way mirror: member 2 rebuilds; the first source (member 0) dies
  // mid-resync and the copy falls over to member 1.
  MirrorParams mp;
  mp.nmirrors = 3;
  mp.rebuild_batch = 8;
  mp.rebuild_lead = sim::usec(20);
  DeviceParams member;
  member.nblocks = 64;
  MirroredDevice md(mp, member);
  for (std::uint64_t b = 0; b < 64; ++b) {
    md.write(b, pattern(static_cast<std::uint8_t>(b)));
  }
  md.fail_member(2);
  md.start_rebuild(2);
  md.write(0, pattern(0));  // poke: partial progress from member 0
  EXPECT_TRUE(md.rebuild_active());
  md.fail_member(0);
  EXPECT_TRUE(md.rebuild_active());  // member 1 can still feed the resync
  md.finish_rebuild();
  EXPECT_TRUE(members_identical(md, 1, 2));

  // 2-way mirror: losing the only source aborts the resync.
  MirroredDevice md2 = make2();
  for (std::uint64_t b = 0; b < 64; ++b) md2.write(b, pattern(1));
  md2.fail_member(1);
  md2.start_rebuild(1);
  md2.fail_member(0);
  EXPECT_FALSE(md2.rebuild_active());
  EXPECT_EQ(md2.volume_stats().rebuilds_aborted, 1u);
}

TEST_F(MirroredDeviceTest, RebuildSourcePrefersTheFastReplicaByEwma) {
  // Resync-source selection reuses the read policy's latency EWMA: with
  // one replica an order of magnitude slower, the copy must come off a
  // fast member, not blindly off the first healthy index.
  MirrorParams mp;
  mp.nmirrors = 3;
  mp.policy = MirrorReadPolicy::ShortestQueue;
  mp.rebuild_batch = 8;
  mp.rebuild_lead = sim::usec(20);
  std::vector<DeviceParams> members(3);
  for (auto& m : members) {
    m.nblocks = 64;
    m.channels = 1;
  }
  members[0].read_lat_rand = members[1].read_lat_rand * 10;
  members[0].read_lat_seq = members[1].read_lat_seq * 10;
  MirroredDevice md(mp, members);
  for (std::uint64_t b = 0; b < 64; ++b) {
    md.write(b, pattern(static_cast<std::uint8_t>(b)));
  }
  // Seed the EWMAs: scattered single-bio reads observe both members'
  // latencies (the sq policy tries each at least once).
  std::array<std::byte, kBlockSize> buf{};
  for (std::uint64_t i = 0; i < 16; ++i) {
    Bio rd = Bio::single_read((i * 3) % 64, buf);
    md.wait(md.submit_async(std::span<Bio>(&rd, 1)));
    sim::current().wait_until(sim::now() + sim::kMillisecond);
  }
  ASSERT_GT(md.member_latency_ewma(0), md.member_latency_ewma(1));

  md.fail_member(2);
  const auto slow0 = md.member(0).stats().reads;
  const auto fast1 = md.member(1).stats().reads;
  md.start_rebuild(2);
  md.finish_rebuild();
  EXPECT_TRUE(members_identical(md, 1, 2));
  // The whole copy was fed by the fast replica.
  EXPECT_EQ(md.member(0).stats().reads, slow0);
  EXPECT_GT(md.member(1).stats().reads, fast1);
}

TEST_F(MirroredDeviceTest, HotSpareDeploysOnMemberFailure) {
  MirrorParams mp;
  mp.nmirrors = 2;
  mp.nspares = 1;
  DeviceParams member;
  member.nblocks = 64;
  MirroredDevice md(mp, member);
  EXPECT_EQ(md.spares_available(), 1u);
  for (std::uint64_t b = 0; b < 64; ++b) {
    md.write(b, pattern(static_cast<std::uint8_t>(b)));
  }
  md.fail_member(1);
  EXPECT_EQ(md.spares_available(), 0u);
  EXPECT_EQ(md.aggregate_stats().spares_deployed, 1u);
  EXPECT_TRUE(md.rebuild_active());
  md.finish_rebuild();
  EXPECT_FALSE(md.degraded());
  EXPECT_TRUE(members_identical(md, 0, 1));
}

// ---- crash model parity ----

TEST_F(MirroredDeviceTest, GlobalKillCountsLogicalBiosLikeOneDevice) {
  auto survivors_on = [](auto& dev) {
    sim::SimThread t(5);
    sim::ScopedThread in(t);
    dev.enable_crash_tracking();
    dev.kill_after(3);
    std::array<std::byte, kBlockSize> data{};
    data.fill(std::byte{0xAB});
    std::vector<Bio> bios;
    for (const std::uint64_t b : {40ULL, 8ULL, 33ULL, 2ULL, 17ULL}) {
      bios.push_back(Bio::single_write(b, data));
    }
    dev.submit(bios);
    std::vector<std::uint64_t> applied;
    for (const Bio& b : bios) {
      if (b.applied) applied.push_back(b.first_block());
    }
    EXPECT_TRUE(dev.dead());
    return applied;
  };

  DeviceParams p;
  p.nblocks = 64;
  BlockDevice single(p);
  MirroredDevice mirrored = make2();
  const auto a = survivors_on(single);
  const auto b = survivors_on(mirrored);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<std::uint64_t>{8, 2, 17}));
  // Both replicas froze at the same logical instant: identical images.
  EXPECT_TRUE(members_identical(mirrored, 0, 1));
}

TEST_F(MirroredDeviceTest, CrashRevertsNonDurableWritesOnEveryMember) {
  MirroredDevice md = make2();
  md.enable_crash_tracking();
  auto data = pattern(1);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 16; ++b) {
    bios.push_back(Bio::single_write(b, data));
  }
  md.submit(bios);
  EXPECT_EQ(md.dirty_blocks(), 32u);  // 16 logical blocks x 2 replicas

  sim::Rng rng(11);
  md.crash(/*survive_p=*/0.0, rng);
  EXPECT_EQ(md.dirty_blocks(), 0u);
  std::array<std::byte, kBlockSize> got{};
  md.read_untimed(3, got);
  EXPECT_EQ(got[0], std::byte{0});
  EXPECT_TRUE(members_identical(md, 0, 1));
}

// ---- stats aggregation under degraded mode ----

TEST_F(MirroredDeviceTest, StatsAggregateAcrossMembersWhileDegraded) {
  MirroredDevice md = make2();
  auto data = pattern(2);
  for (std::uint64_t b = 0; b < 8; ++b) md.write(b, data);
  md.fail_member(1);
  for (std::uint64_t b = 8; b < 16; ++b) md.write(b, data);
  std::array<std::byte, kBlockSize> buf{};
  for (int r = 0; r < 4; ++r) md.read(static_cast<std::uint64_t>(r), buf);
  md.flush();

  const DeviceStats& agg = md.stats();
  // The failed member's history stays in the aggregate (its counters are
  // frozen, not erased) and per-member counters remain reachable.
  EXPECT_EQ(agg.writes,
            md.member(0).stats().writes + md.member(1).stats().writes);
  EXPECT_EQ(agg.reads,
            md.member(0).stats().reads + md.member(1).stats().reads);
  EXPECT_EQ(agg.flushes, 1u);  // only the survivor was flushed
  EXPECT_EQ(md.member(0).stats().writes, 16u);
  EXPECT_EQ(md.member(1).stats().writes, 8u);
}

// ---- RAID10 stacking ----

TEST_F(MirroredDeviceTest, Raid10StripesOverMirrors) {
  StripeParams sp;
  sp.ndevices = 2;
  sp.chunk_blocks = 4;
  MirrorParams mp;
  mp.nmirrors = 2;
  DeviceParams member;
  member.nblocks = 32;
  std::vector<std::unique_ptr<BlockDevice>> stripes;
  for (int i = 0; i < 2; ++i) {
    stripes.push_back(std::make_unique<MirroredDevice>(mp, member));
  }
  auto* m0 = static_cast<MirroredDevice*>(stripes[0].get());
  StripedDevice raid10(sp, std::move(stripes));

  EXPECT_EQ(raid10.nblocks(), 64u);  // 2 stripes x 32; mirroring is free
  EXPECT_EQ(raid10.fan_out(), 2u);   // per-device subsystems see stripes

  std::vector<std::array<std::byte, kBlockSize>> payloads;
  for (std::uint8_t i = 0; i < 32; ++i) payloads.push_back(pattern(i));
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 32; ++b) {
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  raid10.submit(bios);
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 32; ++b) {
    raid10.read_untimed(b, got);
    EXPECT_EQ(got, pattern(static_cast<std::uint8_t>(b))) << b;
  }

  // One replica of stripe 0 dies: the RAID10 volume keeps serving every
  // block, and the mirror below reports degraded.
  m0->fail_member(0);
  EXPECT_TRUE(m0->degraded());
  std::array<std::byte, kBlockSize> buf{};
  for (std::uint64_t b = 0; b < 32; ++b) {
    Bio bio = Bio::single_read(b, buf);
    raid10.submit(bio);
    EXPECT_FALSE(bio.io_error) << b;
    EXPECT_EQ(buf, pattern(static_cast<std::uint8_t>(b))) << b;
  }

  // Volume-level error injection routes through the stripe to the owning
  // mirror (both replicas); the failure must survive the stripe fan-in
  // instead of being silently dropped.
  raid10.inject_read_error(1);  // chunk 0 -> stripe 0, child block 1
  Bio bad = Bio::single_read(1, buf);
  raid10.submit(bad);
  EXPECT_TRUE(bad.io_error);
  EXPECT_FALSE(bad.applied);
  // With member 0 already failed, a medium error on the surviving
  // replica leaves no copy to serve: the error surfaces through the
  // stripe. A rewrite repairs the sector and the read recovers.
  m0->member(1).inject_read_error(2);
  Bio served = Bio::single_read(2, buf);
  raid10.submit(served);
  EXPECT_TRUE(served.io_error);
  std::array<std::byte, kBlockSize> fix = pattern(2);
  raid10.write(2, fix);
  Bio again = Bio::single_read(2, buf);
  raid10.submit(again);
  EXPECT_FALSE(again.io_error);
  EXPECT_EQ(buf, fix);
}

}  // namespace
}  // namespace bsim::blk
