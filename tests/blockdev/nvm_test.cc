// Unit tests for the NVM region model: persistence semantics (barriered
// stores survive crashes, unbarriered stores do not) and virtual-time
// cost accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "blockdev/nvm.h"
#include "sim/thread.h"

namespace bsim::test {
namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

class NvmRegionTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  std::string read_str(blk::NvmRegion& nvm, std::size_t off, std::size_t n) {
    std::vector<std::byte> buf(n);
    nvm.read(off, buf);
    return {reinterpret_cast<const char*>(buf.data()), buf.size()};
  }

  sim::SimThread thread_{0};
};

TEST_F(NvmRegionTest, WriteReadRoundTrip) {
  blk::NvmRegion nvm(blk::NvmParams{});
  nvm.write(1000, bytes_of("persistent memory"));
  EXPECT_EQ("persistent memory", read_str(nvm, 1000, 17));
}

TEST_F(NvmRegionTest, BarrieredStoresSurviveCrash) {
  blk::NvmRegion nvm(blk::NvmParams{});
  nvm.write(0, bytes_of("durable"));
  nvm.persist_barrier();
  nvm.crash();
  EXPECT_EQ("durable", read_str(nvm, 0, 7));
}

TEST_F(NvmRegionTest, UnbarrieredStoresAreLostOnCrash) {
  blk::NvmRegion nvm(blk::NvmParams{});
  nvm.write(0, bytes_of("durable"));
  nvm.persist_barrier();
  nvm.write(0, bytes_of("DOOMED!"));
  nvm.crash();
  EXPECT_EQ("durable", read_str(nvm, 0, 7));
}

TEST_F(NvmRegionTest, CrashWithoutAnyBarrierYieldsZeros) {
  blk::NvmRegion nvm(blk::NvmParams{});
  nvm.write(64, bytes_of("gone"));
  nvm.crash();
  const std::string got = read_str(nvm, 64, 4);
  EXPECT_EQ(std::string(4, '\0'), got);
}

TEST_F(NvmRegionTest, WritesChargePerCacheline) {
  blk::NvmParams params;
  params.write_per_line = 60;
  blk::NvmRegion nvm(params);
  const std::vector<std::byte> line(64);
  const std::vector<std::byte> lines3(129);  // 3 lines (ceil)

  auto t0 = sim::now();
  nvm.write(0, line);
  EXPECT_EQ(60, sim::now() - t0);

  t0 = sim::now();
  nvm.write(0, lines3);
  EXPECT_EQ(180, sim::now() - t0);
}

TEST_F(NvmRegionTest, BarrierIsAWaitNotScaledCpu) {
  blk::NvmParams params;
  params.barrier = 500;
  blk::NvmRegion nvm(params);
  thread_.set_cpu_scale(4.0);  // heavy CPU contention
  const auto t0 = sim::now();
  nvm.persist_barrier();
  EXPECT_EQ(500, sim::now() - t0);  // the sfence drain does not timeshare
  thread_.set_cpu_scale(1.0);
}

TEST_F(NvmRegionTest, StatsAccumulate) {
  blk::NvmRegion nvm(blk::NvmParams{});
  nvm.write(0, bytes_of("abc"));
  nvm.write(10, bytes_of("defg"));
  nvm.persist_barrier();
  EXPECT_EQ(7U, nvm.stats().bytes_written);
  EXPECT_EQ(1U, nvm.stats().barriers);
}

}  // namespace
}  // namespace bsim::test
