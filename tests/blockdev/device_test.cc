// Unit tests for the NVMe-like device model: data integrity, service
// times, write-cache/flush semantics, and crash simulation.
#include <gtest/gtest.h>

#include <array>

#include "blockdev/device.h"
#include "sim/rng.h"
#include "sim/thread.h"

namespace bsim::blk {
namespace {

using sim::Nanos;

class DeviceTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  static DeviceParams small_params() {
    DeviceParams p;
    p.nblocks = 1024;
    return p;
  }

  static std::array<std::byte, kBlockSize> pattern(std::uint8_t seed) {
    std::array<std::byte, kBlockSize> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::byte>(seed + i);
    }
    return b;
  }

  sim::SimThread thread_{0};
};

TEST_F(DeviceTest, ReadBackWhatWasWritten) {
  BlockDevice dev(small_params());
  auto w = pattern(7);
  dev.write(42, w);
  std::array<std::byte, kBlockSize> r{};
  dev.read(42, r);
  EXPECT_EQ(w, r);
}

TEST_F(DeviceTest, UnwrittenBlocksReadZero) {
  BlockDevice dev(small_params());
  std::array<std::byte, kBlockSize> r = pattern(1);
  dev.read(7, r);
  for (auto b : r) EXPECT_EQ(b, std::byte{0});
}

TEST_F(DeviceTest, OutOfRangeThrows) {
  BlockDevice dev(small_params());
  std::array<std::byte, kBlockSize> b{};
  EXPECT_THROW(dev.read(1024, b), std::out_of_range);
}

TEST_F(DeviceTest, SequentialReadsAreFaster) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> b{};
  dev.read(100, b);  // random
  const Nanos t0 = sim::now();
  dev.read(101, b);  // sequential
  const Nanos seq = sim::now() - t0;
  const Nanos t1 = sim::now();
  dev.read(500, b);  // random again
  const Nanos rnd = sim::now() - t1;
  EXPECT_EQ(seq, p.read_lat_seq);
  EXPECT_EQ(rnd, p.read_lat_rand);
}

TEST_F(DeviceTest, WriteGoesToCacheUntilFlush) {
  auto p = small_params();
  BlockDevice dev(p);
  auto w = pattern(3);
  const Nanos t0 = sim::now();
  dev.write(5, w);
  EXPECT_EQ(sim::now() - t0, p.write_xfer);  // cache transfer only
  EXPECT_EQ(dev.dirty_blocks(), 1u);
  dev.flush();
  EXPECT_EQ(dev.dirty_blocks(), 0u);
  EXPECT_EQ(dev.stats().flushes, 1u);
}

TEST_F(DeviceTest, FlushCostGrowsWithDirtySet) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> b{};
  dev.flush();
  const Nanos t0 = sim::now();
  dev.flush();  // empty flush
  const Nanos empty_cost = sim::now() - t0;

  for (int i = 0; i < 100; ++i) dev.write(static_cast<std::uint64_t>(i), b);
  const Nanos t1 = sim::now();
  dev.flush();
  const Nanos full_cost = sim::now() - t1;
  EXPECT_EQ(full_cost - empty_cost, 100 * p.destage_per_block);
}

TEST_F(DeviceTest, ChannelsOverlapIndependentOps) {
  auto p = small_params();
  p.channels = 4;
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> b{};
  // 4 random reads on 4 channels overlap: total elapsed is one latency,
  // not four (the current thread's clock rides the max channel time).
  const Nanos t0 = sim::now();
  dev.read(10, b);
  // Subsequent reads start at thread-now; they queue on other channels but
  // can't finish before their own service time from now.
  const Nanos after_one = sim::now() - t0;
  EXPECT_EQ(after_one, p.read_lat_rand);
}

TEST_F(DeviceTest, WriteCachePressureForcesDestage) {
  auto p = small_params();
  p.write_cache_blocks = 8;
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> b{};
  for (int i = 0; i < 32; ++i) dev.write(static_cast<std::uint64_t>(i), b);
  // The dirty set is bounded by the cache size (one destaged per overflow).
  EXPECT_LE(dev.dirty_blocks(), 8u);
  EXPECT_GT(dev.stats().blocks_destaged, 0u);
}

TEST_F(DeviceTest, CrashDropsUnflushedWrites) {
  BlockDevice dev(small_params());
  dev.enable_crash_tracking();
  auto w1 = pattern(1);
  auto w2 = pattern(2);
  dev.write(3, w1);
  dev.flush();  // w1 durable
  dev.write(3, w2);  // overwrite, not yet flushed

  sim::Rng rng(1);
  dev.crash(/*survive_p=*/0.0, rng);
  std::array<std::byte, kBlockSize> r{};
  dev.read(3, r);
  EXPECT_EQ(r, w1);  // reverted to the durable version
}

TEST_F(DeviceTest, CrashWithFullSurvivalKeepsWrites) {
  BlockDevice dev(small_params());
  dev.enable_crash_tracking();
  auto w = pattern(9);
  dev.write(3, w);
  sim::Rng rng(1);
  dev.crash(/*survive_p=*/1.0, rng);
  std::array<std::byte, kBlockSize> r{};
  dev.read(3, r);
  EXPECT_EQ(r, w);
}

TEST_F(DeviceTest, UntimedAccessDoesNotAdvanceClock) {
  BlockDevice dev(small_params());
  auto w = pattern(5);
  const Nanos t0 = sim::now();
  dev.write_untimed(1, w);
  std::array<std::byte, kBlockSize> r{};
  dev.read_untimed(1, r);
  EXPECT_EQ(sim::now(), t0);
  EXPECT_EQ(r, w);
}

TEST_F(DeviceTest, StatsCountOps) {
  BlockDevice dev(small_params());
  std::array<std::byte, kBlockSize> b{};
  dev.read(1, b);
  dev.write(2, b);
  dev.write(3, b);
  dev.flush();
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 2u);
  EXPECT_EQ(dev.stats().flushes, 1u);
  EXPECT_GE(dev.stats().busy, 0);
}

}  // namespace
}  // namespace bsim::blk
