// Unit tests for RAID5 parity volumes (blockdev/parity.h): left-symmetric
// geometry and routing, RMW vs full-stripe write-path selection, degraded
// reads and writes (XOR reconstruction), medium-error self-healing, scrub
// verify/repair, hot-spare auto-rebuild, the write-intent bitmap closing
// the write hole across crashes, RAID50 stacking, and crash-model parity
// with a single device.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "blockdev/parity.h"
#include "blockdev/striped.h"
#include "sim/rng.h"
#include "sim/thread.h"

namespace bsim::blk {
namespace {

using sim::Nanos;

class ParityDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  /// 4+1 parity volume, chunk 4: 8 rows per member, 128 logical blocks.
  static ParityDevice make5(std::size_t nspares = 0) {
    ParityParams pp;
    pp.ndata = 4;
    pp.chunk_blocks = 4;
    pp.nspares = nspares;
    DeviceParams member;
    member.nblocks = 33;  // 1 bitmap block + 8 rows x 4 blocks
    return ParityDevice(pp, member);
  }

  static std::array<std::byte, kBlockSize> pattern(std::uint8_t seed) {
    std::array<std::byte, kBlockSize> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::byte>(seed + i);
    }
    return b;
  }

  /// Every parity line XORs to zero across the members.
  static bool lines_consistent(ParityDevice& pd) {
    const std::uint64_t usable = pd.nblocks() / pd.parity().ndata;
    BlockData x{}, tmp{};
    for (std::uint64_t mb = ParityDevice::kBitmapBlocks;
         mb < ParityDevice::kBitmapBlocks + usable; ++mb) {
      x.fill(std::byte{0});
      for (std::size_t m = 0; m < pd.members(); ++m) {
        pd.member(m).read_untimed(mb, tmp);
        for (std::size_t i = 0; i < kBlockSize; ++i) x[i] ^= tmp[i];
      }
      if (x != BlockData{}) return false;
    }
    return true;
  }

  static std::vector<std::array<std::byte, kBlockSize>> snapshot(
      BlockDevice& dev) {
    std::vector<std::array<std::byte, kBlockSize>> img(dev.nblocks());
    for (std::uint64_t b = 0; b < dev.nblocks(); ++b) {
      dev.read_untimed(b, img[b]);
    }
    return img;
  }

  sim::SimThread thread_{0};
};

// ---- geometry + option parsing ----

TEST_F(ParityDeviceTest, GeometryRotatesParityLeftSymmetric) {
  ParityDevice pd = make5();
  EXPECT_EQ(pd.members(), 5u);
  EXPECT_EQ(pd.nblocks(), 128u);  // 4 data columns x 8 rows x 4 blocks
  EXPECT_EQ(pd.fan_out(), 1u);    // one logical device, like a mirror
  EXPECT_EQ(pd.stripe_width_blocks(), 16u);  // ck x ndata

  // Row r parks parity on member (n-1) - (r % n); data columns follow.
  EXPECT_EQ(pd.parity_member_of(0), 4u);
  EXPECT_EQ(pd.parity_member_of(1), 3u);
  EXPECT_EQ(pd.parity_member_of(4), 0u);
  EXPECT_EQ(pd.parity_member_of(5), 4u);
  // Row 0: data columns 0..3 sit on members 0..3.
  EXPECT_EQ(pd.data_member_of(0), 0u);
  EXPECT_EQ(pd.data_member_of(4), 1u);
  EXPECT_EQ(pd.data_member_of(12), 3u);
  // Row 1 (logical 16..31): parity on 3, data on 4,0,1,2.
  EXPECT_EQ(pd.data_member_of(16), 4u);
  EXPECT_EQ(pd.data_member_of(20), 0u);
  // Member block: bitmap head + row offset.
  EXPECT_EQ(pd.child_block_of(0), 1u);
  EXPECT_EQ(pd.child_block_of(17), 6u);  // bitmap + row 1 * ck + off 1

  // No two chunks of one stripe row share a member (the rotation is a
  // permutation), so a full row fans across ALL data members.
  for (std::uint64_t row = 0; row < 8; ++row) {
    std::vector<bool> used(pd.members(), false);
    used[pd.parity_member_of(row)] = true;
    for (std::uint64_t c = 0; c < 4; ++c) {
      const std::size_t m = pd.data_member_of(row * 16 + c * 4);
      EXPECT_FALSE(used[m]) << "row " << row << " chunk " << c;
      used[m] = true;
    }
  }
}

TEST_F(ParityDeviceTest, OptionStringParsing) {
  auto pp = parity_params_from_opts("parity=4,chunk=8,spare=1,scrub");
  ASSERT_TRUE(pp.has_value());
  EXPECT_EQ(pp->ndata, 4u);
  EXPECT_EQ(pp->chunk_blocks, 8u);
  EXPECT_EQ(pp->nspares, 1u);
  EXPECT_TRUE(pp->auto_scrub);
  EXPECT_FALSE(parity_params_from_opts("stripe=4,mirror=2").has_value());
  EXPECT_FALSE(parity_params_from_opts("parity=1").has_value());

  ParityParams base;
  base.ndata = 3;
  const ParityParams a = merge_parity_opts("io_uring,chunk=2", base);
  EXPECT_EQ(a.ndata, 3u);  // unrelated tokens ignored
  EXPECT_EQ(a.chunk_blocks, 2u);
}

// ---- write paths ----

TEST_F(ParityDeviceTest, WriteReadBackKeepsEveryLineConsistent) {
  ParityDevice pd = make5();
  // Payload spans must outlive submission: keep them in one arena.
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);
  for (const Bio& b : bios) EXPECT_TRUE(b.applied);

  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 128; ++b) {
    pd.read_untimed(b, got);
    EXPECT_EQ(got, pattern(static_cast<std::uint8_t>(b))) << b;
  }
  EXPECT_TRUE(lines_consistent(pd));
  EXPECT_GT(pd.dirty_regions(), 0u);  // intent bits are sticky until scrub
}

TEST_F(ParityDeviceTest, FullStripeWritesComputeParityWithoutReads) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(16);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 16; ++b) {  // exactly one stripe row
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);

  const ParityVolumeStats& vs = pd.volume_stats();
  EXPECT_EQ(vs.full_stripe_writes, 4u);  // ck lines per row, all covered
  EXPECT_EQ(vs.rmw_writes, 0u);
  EXPECT_EQ(vs.rmw_read_blocks, 0u);
  EXPECT_EQ(vs.parity_writes, 4u);
  // No member served a read: parity came from the new data alone.
  for (std::size_t m = 0; m < pd.members(); ++m) {
    EXPECT_EQ(pd.member(m).stats().read_requests, 0u) << m;
  }
  EXPECT_TRUE(lines_consistent(pd));
}

TEST_F(ParityDeviceTest, SmallWriteTakesReadModifyWrite) {
  ParityDevice pd = make5();
  std::vector<Bio> fill;
  std::vector<std::array<std::byte, kBlockSize>> payloads(16);
  for (std::uint64_t b = 0; b < 16; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    fill.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(fill);

  // One block of a full line: old data + old parity read, delta XORed in.
  auto v = pattern(0xC3);
  pd.write(5, v);
  const ParityVolumeStats& vs = pd.volume_stats();
  EXPECT_EQ(vs.rmw_writes, 1u);
  EXPECT_EQ(vs.rmw_read_blocks, 2u);  // the written column + the parity
  EXPECT_EQ(vs.parity_writes, 5u);    // 4 full-stripe + 1 RMW
  EXPECT_TRUE(lines_consistent(pd));
  std::array<std::byte, kBlockSize> got{};
  pd.read_untimed(5, got);
  EXPECT_EQ(got, v);
}

TEST_F(ParityDeviceTest, FullStripeSequentialWriteBeatsRmwThroughput) {
  // The reconstruct-write fast path is what makes RAID5 sequential writes
  // scale: one row written whole costs no reads, while the same blocks
  // written one-at-a-time pay 2 reads + 2 writes per block.
  auto timed = [](bool whole_row) {
    sim::SimThread t(whole_row ? 31 : 32);
    sim::ScopedThread in(t);
    ParityParams pp;
    pp.ndata = 4;
    pp.chunk_blocks = 4;
    DeviceParams member;
    member.nblocks = 129;  // 32 rows
    ParityDevice pd(pp, member);
    std::vector<std::array<std::byte, kBlockSize>> payloads(256);
    const Nanos t0 = sim::now();
    for (std::uint64_t row = 0; row < 16; ++row) {
      std::vector<Bio> bios;
      for (std::uint64_t i = 0; i < 16; ++i) {
        const std::uint64_t b = row * 16 + i;
        payloads[b] = {};
        if (whole_row) {
          bios.push_back(Bio::single_write(b, payloads[b]));
        } else {
          Bio one = Bio::single_write(b, payloads[b]);
          pd.submit(one);
        }
      }
      if (whole_row) pd.submit(bios);
    }
    return sim::now() - t0;
  };
  EXPECT_LT(timed(true) * 2, timed(false));
}

// ---- degraded service ----

TEST_F(ParityDeviceTest, DegradedReadsReconstructFromParity) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);

  pd.fail_member(2);
  EXPECT_TRUE(pd.degraded());
  EXPECT_FALSE(pd.dead());

  // Timed reads: blocks on the lost member XOR-reconstruct from the
  // other four; everything still reads back correctly.
  std::array<std::byte, kBlockSize> buf{};
  for (std::uint64_t b = 0; b < 128; ++b) {
    Bio bio = Bio::single_read(b, buf);
    pd.submit(bio);
    EXPECT_FALSE(bio.io_error) << b;
    EXPECT_EQ(buf, pattern(static_cast<std::uint8_t>(b))) << b;
  }
  EXPECT_GT(pd.volume_stats().degraded_reads, 0u);
  EXPECT_GT(pd.volume_stats().reconstructed_blocks, 0u);
  // The lost member held 1/5 of the lines' blocks (data or parity);
  // reads of ITS data blocks reconstructed, the rest went direct.
  EXPECT_EQ(pd.volume_stats().degraded_reads,
            pd.volume_stats().reconstructed_blocks);
}

TEST_F(ParityDeviceTest, DegradedWritesSurviveThroughParity) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);
  pd.fail_member(0);

  // Overwrite blocks whose data member is the failed one (member 0 holds
  // column 0 of row 0: logical 0..3). The content must survive via the
  // parity update and reconstruct correctly on read.
  auto v = pattern(0xE1);
  for (std::uint64_t b = 0; b < 4; ++b) {
    Bio w = Bio::single_write(b, v);
    pd.submit(w);
    EXPECT_TRUE(w.applied) << b;
  }
  EXPECT_GT(pd.volume_stats().degraded_writes, 0u);
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 4; ++b) {
    pd.read_untimed(b, got);
    EXPECT_EQ(got, v) << b;
  }

  // A failed parity member degrades protection, not service: writes to
  // rows whose parity lived there proceed unprotected.
  Bio w = Bio::single_write(16, v);  // row 1: parity on member 3
  pd.submit(w);
  EXPECT_TRUE(w.applied);
}

TEST_F(ParityDeviceTest, ReadErrorHealsByReconstructionAndRewrite) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(16);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 16; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);

  // Medium error on logical block 6 (member 1, block 3): the volume
  // serves the read by XOR of the peers, rewrites the sector, and the
  // caller never sees the error.
  pd.inject_read_error(6);
  EXPECT_EQ(pd.member(1).injected_read_errors(), 1u);
  std::array<std::byte, kBlockSize> buf{};
  Bio rd = Bio::single_read(6, buf);
  pd.submit(rd);
  EXPECT_FALSE(rd.io_error);
  EXPECT_EQ(buf, pattern(6));
  EXPECT_GE(pd.volume_stats().read_error_failovers, 1u);
  EXPECT_GE(pd.member(1).stats().read_errors, 1u);
  EXPECT_EQ(pd.member(1).injected_read_errors(), 0u);  // healed in place
}

// ---- rebuild + hot spares ----

TEST_F(ParityDeviceTest, RebuildRegeneratesTheLostMemberByXor) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);
  pd.fail_member(3);
  // Divergence while degraded: some lines move on without member 3.
  auto v = pattern(0x55);
  for (std::uint64_t b = 0; b < 32; ++b) {
    Bio w = Bio::single_write(b, v);
    pd.submit(w);
  }

  pd.start_rebuild(3);
  pd.finish_rebuild();
  EXPECT_FALSE(pd.degraded());
  EXPECT_EQ(pd.volume_stats().rebuilds_completed, 1u);
  EXPECT_EQ(pd.volume_stats().rebuild_copied, pd.member(3).nblocks());
  EXPECT_TRUE(lines_consistent(pd));
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 128; ++b) {
    pd.read_untimed(b, got);
    EXPECT_EQ(got, b < 32 ? v : pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

TEST_F(ParityDeviceTest, HotSpareDeploysAndRebuildsAutomatically) {
  ParityDevice pd = make5(/*nspares=*/1);
  EXPECT_EQ(pd.spares_available(), 1u);
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);

  pd.fail_member(2);
  EXPECT_EQ(pd.spares_available(), 0u);
  EXPECT_EQ(pd.volume_stats().spares_deployed, 1u);
  EXPECT_TRUE(pd.rebuild_active());
  pd.finish_rebuild();
  EXPECT_FALSE(pd.degraded());
  EXPECT_TRUE(lines_consistent(pd));
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 128; ++b) {
    pd.read_untimed(b, got);
    EXPECT_EQ(got, pattern(static_cast<std::uint8_t>(b))) << b;
  }
  // A second failure finds no spare: the volume stays degraded.
  pd.fail_member(0);
  EXPECT_TRUE(pd.degraded());
  EXPECT_FALSE(pd.rebuild_active());
}

// ---- scrub ----

TEST_F(ParityDeviceTest, ScrubDetectsAndRepairsStaleParity) {
  ParityDevice pd = make5();
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);
  ASSERT_TRUE(lines_consistent(pd));
  EXPECT_GT(pd.dirty_regions(), 0u);

  // Corrupt two parity blocks behind the volume's back (rows 0 and 1:
  // parity on members 4 and 3) — the write-hole shape.
  auto junk = pattern(0xBD);
  pd.member(4).write_untimed(1, junk);
  pd.member(3).write_untimed(5, junk);
  ASSERT_FALSE(lines_consistent(pd));

  pd.start_scrub();
  EXPECT_TRUE(pd.scrub_active());
  pd.finish_scrub();
  EXPECT_FALSE(pd.scrub_active());
  const ParityVolumeStats& vs = pd.volume_stats();
  EXPECT_EQ(vs.scrub_mismatches, 2u);
  EXPECT_EQ(vs.scrub_repairs, 2u);
  EXPECT_GT(vs.scrub_steps, 0u);
  EXPECT_TRUE(lines_consistent(pd));
  // A clean pass retires the write-hole exposure: intent bits cleared.
  EXPECT_EQ(pd.dirty_regions(), 0u);
  // Data was never the repair source of truth: it reads back unchanged.
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 128; ++b) {
    pd.read_untimed(b, got);
    EXPECT_EQ(got, pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

TEST_F(ParityDeviceTest, ScrubDuringDownWindowNeverRepairsGoodData) {
  // Strict-mode audit (ISSUE 10): a scrub pass that overlaps a scheduled
  // fault window reads garbage-on-error, and a naive pass would "repair"
  // perfectly good parity from a failed read's buffer. The pass must
  // instead skip unverified lines, repair nothing, and KEEP the sticky
  // intent bits — the exposure was not verified away.
  ParityDevice pd = make5();
  std::vector<Bio> bios;
  std::vector<std::array<std::byte, kBlockSize>> payloads(128);
  for (std::uint64_t b = 0; b < 128; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  pd.submit(bios);
  ASSERT_TRUE(lines_consistent(pd));
  const std::uint64_t dirty_before = pd.dirty_regions();
  ASSERT_GT(dirty_before, 0u);
  const auto before = snapshot(pd);

  // Permanent down window: every member bio fails while armed.
  FaultSchedule fs;
  fs.up_interval = 0;
  fs.down_interval = sim::msec(1);
  fs.fail_p = 1.0;
  pd.set_fault_schedule(fs);
  pd.start_scrub();
  pd.finish_scrub();
  pd.clear_fault_schedule();

  const ParityVolumeStats& vs = pd.volume_stats();
  EXPECT_EQ(vs.scrub_repairs, 0u) << "repaired from a failed read's buffer";
  EXPECT_EQ(vs.scrub_mismatches, 0u);
  // Intent bits kept: nothing was verified, so the write-hole exposure
  // the bits record must survive for the next (healthy) pass.
  EXPECT_EQ(pd.dirty_regions(), dirty_before);
  // Media untouched: data and parity bit-identical to before the pass.
  EXPECT_EQ(snapshot(pd), before);
  ASSERT_TRUE(lines_consistent(pd));

  // The next pass on a healthy volume verifies everything and retires
  // the exposure as usual.
  pd.start_scrub();
  pd.finish_scrub();
  EXPECT_EQ(pd.volume_stats().scrub_repairs, 0u);
  EXPECT_EQ(pd.dirty_regions(), 0u);
}

// ---- crash model ----

TEST_F(ParityDeviceTest, GlobalKillCountsLogicalBiosLikeOneDevice) {
  // Volume-internal traffic (intent-bitmap FUAs, RMW prefetch reads,
  // parity writes) must NOT perturb the crash countdown: kill_after(n)
  // selects the same n logical bios as on a single device.
  auto survivors_on = [](auto& dev) {
    sim::SimThread t(5);
    sim::ScopedThread in(t);
    dev.enable_crash_tracking();
    dev.kill_after(3);
    std::array<std::byte, kBlockSize> data{};
    data.fill(std::byte{0xAB});
    std::vector<Bio> bios;
    for (const std::uint64_t b : {40ULL, 8ULL, 33ULL, 2ULL, 17ULL}) {
      bios.push_back(Bio::single_write(b, data));
    }
    dev.submit(bios);
    std::vector<std::uint64_t> applied;
    for (const Bio& b : bios) {
      if (b.applied) applied.push_back(b.first_block());
    }
    EXPECT_TRUE(dev.dead());
    return applied;
  };

  DeviceParams p;
  p.nblocks = 128;
  BlockDevice single(p);
  ParityDevice pd = make5();
  const auto a = survivors_on(single);
  const auto b = survivors_on(pd);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<std::uint64_t>{8, 2, 17}));
}

TEST_F(ParityDeviceTest, WriteHoleClosedByIntentBitmapResync) {
  // The RAID5 write hole: power dies between a line's data write and its
  // parity write, some blocks survive the volatile cache and some do
  // not. After resync() (driven by the FUA'd intent bitmap), parity must
  // be consistent with whatever data survived — so a LATER member loss
  // still reconstructs exactly the surviving image.
  for (std::uint64_t kill = 1; kill < 12; kill += 2) {
    ParityDevice pd = make5();
    std::vector<std::array<std::byte, kBlockSize>> payloads(128);
    std::vector<Bio> fill;
    for (std::uint64_t b = 0; b < 128; ++b) {
      payloads[b] = pattern(static_cast<std::uint8_t>(b));
      fill.push_back(Bio::single_write(b, payloads[b]));
    }
    pd.submit(fill);
    pd.flush();
    pd.enable_crash_tracking();
    pd.kill_after(kill);

    // Torn overwrite: partial lines (RMW path) across two rows.
    auto v = pattern(0x99);
    for (std::uint64_t b = 0; b < 24; b += 2) {
      Bio w = Bio::single_write(b, v);
      pd.submit(w);
    }
    EXPECT_TRUE(pd.dead());
    sim::Rng rng(kill);
    pd.crash(/*survive_p=*/0.5, rng);
    EXPECT_GT(pd.dirty_regions(), 0u);  // FUA'd intent survived the crash

    pd.resync();
    EXPECT_EQ(pd.dirty_regions(), 0u);
    EXPECT_TRUE(lines_consistent(pd)) << "kill=" << kill;

    // Degraded equivalence: for EVERY member, the image reconstructed
    // without it matches the healthy post-crash image bit for bit.
    const auto healthy = snapshot(pd);
    for (std::size_t f = 0; f < pd.members(); ++f) {
      BlockData rec{}, tmp{};
      for (std::uint64_t b = 0; b < pd.nblocks(); ++b) {
        if (pd.data_member_of(b) != f) continue;
        rec.fill(std::byte{0});
        for (std::size_t m = 0; m < pd.members(); ++m) {
          if (m == f) continue;
          pd.member(m).read_untimed(pd.child_block_of(b), tmp);
          for (std::size_t i = 0; i < kBlockSize; ++i) rec[i] ^= tmp[i];
        }
        ASSERT_EQ(rec, healthy[b]) << "kill=" << kill << " member=" << f
                                   << " block=" << b;
      }
    }
  }
}

TEST_F(ParityDeviceTest, KillSweepImageMatchesSingleDeviceOracle) {
  // With survive_p=0 both sides revert to the last flush: the parity
  // volume's logical image must equal a single device fed the same
  // sequence, at every kill point.
  for (std::uint64_t kill = 0; kill < 10; ++kill) {
    DeviceParams p;
    p.nblocks = 128;
    BlockDevice oracle(p);
    ParityDevice pd = make5();
    auto run = [&](BlockDevice& dev) {
      std::vector<std::array<std::byte, kBlockSize>> payloads(32);
      std::vector<Bio> fill;
      for (std::uint64_t b = 0; b < 32; ++b) {
        payloads[b] = pattern(static_cast<std::uint8_t>(b));
        fill.push_back(Bio::single_write(b, payloads[b]));
      }
      dev.submit(fill);
      dev.flush();
      dev.enable_crash_tracking();
      dev.kill_after(kill);
      auto v = pattern(0x42);
      for (std::uint64_t b = 0; b < 16; ++b) {
        Bio w = Bio::single_write(b * 3, v);
        dev.submit(w);
      }
      sim::Rng rng(7);
      dev.crash(/*survive_p=*/0.0, rng);
    };
    run(oracle);
    run(pd);
    pd.resync();
    std::array<std::byte, kBlockSize> a{}, b{};
    for (std::uint64_t blk = 0; blk < 128; ++blk) {
      oracle.read_untimed(blk, a);
      pd.read_untimed(blk, b);
      ASSERT_EQ(a, b) << "kill=" << kill << " block=" << blk;
    }
    EXPECT_TRUE(lines_consistent(pd)) << "kill=" << kill;
  }
}

// ---- RAID50 stacking ----

TEST_F(ParityDeviceTest, Raid50StripesOverParityVolumes) {
  StripeParams sp;
  sp.ndevices = 2;
  sp.chunk_blocks = 4;
  ParityParams pp;
  pp.ndata = 2;
  pp.chunk_blocks = 4;
  DeviceParams member;
  member.nblocks = 17;  // 1 bitmap + 4 rows x 4 -> 32 logical per leg
  std::vector<std::unique_ptr<BlockDevice>> legs;
  for (int i = 0; i < 2; ++i) {
    legs.push_back(std::make_unique<ParityDevice>(pp, member));
  }
  auto* leg0 = static_cast<ParityDevice*>(legs[0].get());
  StripedDevice raid50(sp, std::move(legs));
  EXPECT_EQ(raid50.nblocks(), 64u);
  EXPECT_EQ(raid50.fan_out(), 2u);  // stripes visible, parity hidden

  std::vector<std::array<std::byte, kBlockSize>> payloads(64);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 64; ++b) {
    payloads[b] = pattern(static_cast<std::uint8_t>(b));
    bios.push_back(Bio::single_write(b, payloads[b]));
  }
  raid50.submit(bios);

  // One member of leg 0 dies: the stack keeps serving every block.
  leg0->fail_member(1);
  std::array<std::byte, kBlockSize> buf{};
  for (std::uint64_t b = 0; b < 64; ++b) {
    Bio rd = Bio::single_read(b, buf);
    raid50.submit(rd);
    EXPECT_FALSE(rd.io_error) << b;
    EXPECT_EQ(buf, pattern(static_cast<std::uint8_t>(b))) << b;
  }
  EXPECT_GT(leg0->volume_stats().degraded_reads, 0u);
}

}  // namespace
}  // namespace bsim::blk
