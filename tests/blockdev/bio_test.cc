// Unit tests for the bio/request layer: adjacent-block merging, channel-
// parallel batch timing, out-of-order completion, crash-model interaction
// (kill_after counts write commands per bio), and batched buffer-cache
// writeback ordering.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "blockdev/device.h"
#include "kernel/buffer_cache.h"
#include "sim/rng.h"
#include "sim/thread.h"

namespace bsim::blk {
namespace {

using sim::Nanos;

class BioTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  static DeviceParams small_params() {
    DeviceParams p;
    p.nblocks = 1024;
    return p;
  }

  static std::array<std::byte, kBlockSize> pattern(std::uint8_t seed) {
    std::array<std::byte, kBlockSize> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::byte>(seed + i);
    }
    return b;
  }

  sim::SimThread thread_{0};
};

// ---- merging ----

TEST_F(BioTest, AdjacentReadBiosMergeIntoOneRequest) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::array<std::byte, kBlockSize>, 4> bufs{};
  std::vector<Bio> bios;
  for (std::uint64_t i = 0; i < 4; ++i) {
    bios.push_back(Bio::single_read(100 + i, bufs[i]));
  }
  const Nanos t0 = sim::now();
  dev.submit(bios);
  const Nanos elapsed = sim::now() - t0;

  EXPECT_EQ(dev.stats().read_requests, 1u);
  EXPECT_EQ(dev.stats().reads, 4u);
  EXPECT_EQ(dev.stats().merges, 3u);
  EXPECT_EQ(dev.stats().max_request_blocks, 4u);
  // First block random-priced, tail at the sequential rate.
  EXPECT_EQ(elapsed, p.read_lat_rand + 3 * p.read_lat_seq);
  EXPECT_EQ(dev.stats().seq_read_blocks, 3u);
}

TEST_F(BioTest, OutOfOrderBatchIsSortedBeforeMerging) {
  BlockDevice dev(small_params());
  std::array<std::array<std::byte, kBlockSize>, 3> bufs{};
  std::vector<Bio> bios;
  bios.push_back(Bio::single_read(202, bufs[0]));
  bios.push_back(Bio::single_read(200, bufs[1]));
  bios.push_back(Bio::single_read(201, bufs[2]));
  dev.submit(bios);
  EXPECT_EQ(dev.stats().read_requests, 1u);  // elevator sort found the run
  EXPECT_EQ(dev.stats().merges, 2u);
}

TEST_F(BioTest, NonAdjacentBiosSplitIntoSeparateRequests) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::array<std::byte, kBlockSize>, 3> bufs{};
  std::vector<Bio> bios;
  bios.push_back(Bio::single_read(10, bufs[0]));
  bios.push_back(Bio::single_read(12, bufs[1]));  // gap at 11: no merge
  bios.push_back(Bio::single_read(500, bufs[2]));
  const Nanos t0 = sim::now();
  dev.submit(bios);
  const Nanos elapsed = sim::now() - t0;

  EXPECT_EQ(dev.stats().read_requests, 3u);
  EXPECT_EQ(dev.stats().merges, 0u);
  // Three random requests overlap across idle channels: the batch costs
  // one random latency, not three.
  EXPECT_EQ(elapsed, p.read_lat_rand);
}

TEST_F(BioTest, BatchOverlapIsBoundedByChannels) {
  auto p = small_params();
  p.channels = 2;
  BlockDevice dev(p);
  std::array<std::array<std::byte, kBlockSize>, 4> bufs{};
  std::vector<Bio> bios;
  // Four scattered (non-mergeable) reads on two channels: two rounds.
  bios.push_back(Bio::single_read(10, bufs[0]));
  bios.push_back(Bio::single_read(20, bufs[1]));
  bios.push_back(Bio::single_read(30, bufs[2]));
  bios.push_back(Bio::single_read(40, bufs[3]));
  const Nanos t0 = sim::now();
  dev.submit(bios);
  EXPECT_EQ(sim::now() - t0, 2 * p.read_lat_rand);
}

TEST_F(BioTest, MergedRunContinuingScalarStreamPricesHeadSequential) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> b{};
  dev.read(99, b);  // random; stream now ends at 99
  std::array<std::array<std::byte, kBlockSize>, 2> bufs{};
  std::vector<Bio> bios;
  bios.push_back(Bio::single_read(100, bufs[0]));
  bios.push_back(Bio::single_read(101, bufs[1]));
  const Nanos t0 = sim::now();
  dev.submit(bios);
  // 100 continues the stream: the whole merged run streams sequentially.
  EXPECT_EQ(sim::now() - t0, 2 * p.read_lat_seq);
}

// ---- completion timing ----

TEST_F(BioTest, PerBioCompletionTimesAreOutOfOrder) {
  auto p = small_params();
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> big[4]{};
  std::array<std::byte, kBlockSize> small{};
  std::vector<Bio> bios;
  // One long merged run (submitted first) plus one short random read: the
  // short request completes before the long one despite submission order.
  Bio run(BioOp::Read);
  for (std::uint64_t i = 0; i < 4; ++i) run.add_read(100 + i, big[i]);
  bios.push_back(std::move(run));
  bios.push_back(Bio::single_read(600, small));
  const Nanos t0 = sim::now();
  dev.submit(bios);

  const Nanos run_done = bios[0].done_at;
  const Nanos small_done = bios[1].done_at;
  EXPECT_EQ(run_done - t0, p.read_lat_rand + 3 * p.read_lat_seq);
  EXPECT_EQ(small_done - t0, p.read_lat_rand);
  EXPECT_LT(small_done, run_done);
  // The submitting thread resumes at the batch barrier (the max).
  EXPECT_EQ(sim::now(), run_done);
}

TEST_F(BioTest, DataLandsInEachBioVec) {
  BlockDevice dev(small_params());
  auto w0 = pattern(3);
  auto w1 = pattern(7);
  dev.write(50, w0);
  dev.write(51, w1);
  std::array<std::byte, kBlockSize> r0{}, r1{};
  Bio bio(BioOp::Read);
  bio.add_read(50, r0);
  bio.add_read(51, r1);
  dev.queue().submit(bio);
  EXPECT_EQ(w0, r0);
  EXPECT_EQ(w1, r1);
}

// ---- async submission (QD>1) ----

TEST_F(BioTest, SubmitAsyncOverlapsBatchesInVirtualTime) {
  auto p = small_params();
  BlockDevice dev(p);
  const Nanos t0 = sim::now();

  // Batch A: one long merged run — occupies one channel for a while.
  std::array<std::byte, kBlockSize> big[8]{};
  std::vector<Bio> a;
  {
    Bio run(BioOp::Read);
    for (std::uint64_t i = 0; i < 8; ++i) run.add_read(100 + i, big[i]);
    a.push_back(std::move(run));
  }
  const Ticket ta = dev.submit_async(a);

  // The submitting thread did NOT advance: the batch is in flight.
  EXPECT_EQ(sim::now(), t0);
  EXPECT_EQ(dev.queue().inflight(), 1u);

  // Batch B, submitted while A is in flight, lands on a free channel and
  // completes BEFORE A — two batches overlap from one thread (QD=2).
  std::array<std::byte, kBlockSize> small{};
  std::vector<Bio> b;
  b.push_back(Bio::single_read(600, small));
  const Ticket tb = dev.submit_async(b);

  EXPECT_EQ(sim::now(), t0);  // still not advanced
  EXPECT_EQ(ta.done - t0, p.read_lat_rand + 7 * p.read_lat_seq);
  EXPECT_EQ(tb.done - t0, p.read_lat_rand);
  EXPECT_LT(tb.done, ta.done);  // B finished while A was still in flight
  EXPECT_EQ(a[0].done_at, ta.done);
  EXPECT_EQ(b[0].done_at, tb.done);
  EXPECT_EQ(dev.queue().stats().async_batches, 2u);
  EXPECT_EQ(dev.queue().stats().max_inflight, 2u);

  // Redeem out of submission order: each wait advances to ITS batch's
  // completion, so after redeeming both the clock is at max(ta, tb)
  // regardless of wait order.
  dev.wait(tb);
  EXPECT_EQ(sim::now(), tb.done);
  dev.wait(ta);
  EXPECT_EQ(sim::now(), ta.done);
  EXPECT_EQ(dev.queue().inflight(), 0u);
}

TEST_F(BioTest, WaitOrderDoesNotAffectFinalClock) {
  // The same two async batches on two identical devices, redeemed in
  // opposite orders, leave the thread at the same virtual time — wait
  // order does not affect determinism.
  auto p = small_params();
  p.channels = 2;
  Nanos final_clock[2] = {0, 0};
  for (int order = 0; order < 2; ++order) {
    sim::SimThread t(order + 1);
    sim::ScopedThread in(t);
    BlockDevice dev(p);
    std::array<std::byte, kBlockSize> b0[4]{}, b1{};
    std::vector<Bio> a;
    {
      Bio run(BioOp::Read);
      for (std::uint64_t i = 0; i < 4; ++i) run.add_read(10 + i, b0[i]);
      a.push_back(std::move(run));
    }
    std::vector<Bio> b;
    b.push_back(Bio::single_read(700, b1));
    const Ticket ta = dev.submit_async(a);
    const Ticket tb = dev.submit_async(b);
    if (order == 0) {
      dev.wait(ta);
      dev.wait(tb);
    } else {
      dev.wait(tb);
      dev.wait(ta);
    }
    final_clock[order] = sim::now();
  }
  EXPECT_EQ(final_clock[0], final_clock[1]);
}

TEST_F(BioTest, AsyncBatchesQueueBehindEachOtherOnBusyChannels) {
  auto p = small_params();
  p.channels = 1;  // force the second batch to queue behind the first
  BlockDevice dev(p);
  std::array<std::byte, kBlockSize> r0{}, r1{};
  std::vector<Bio> a, b;
  a.push_back(Bio::single_read(10, r0));
  b.push_back(Bio::single_read(500, r1));
  const Nanos t0 = sim::now();
  const Ticket ta = dev.submit_async(a);
  const Ticket tb = dev.submit_async(b);
  // One channel: B starts when A finishes.
  EXPECT_EQ(ta.done - t0, p.read_lat_rand);
  EXPECT_EQ(tb.done - t0, 2 * p.read_lat_rand);
  dev.wait(ta);
  dev.wait(tb);
  EXPECT_EQ(sim::now(), tb.done);
}

// ---- same-block bios within one batch ----

TEST_F(BioTest, DuplicateBlockWritesCoalesceAndLastSubmittedWins) {
  BlockDevice dev(small_params());
  const auto first = pattern(1);
  const auto second = pattern(2);
  const auto tail = pattern(3);
  std::vector<Bio> bios;
  bios.push_back(Bio::single_write(100, first));
  bios.push_back(Bio::single_write(100, second));  // same block, later
  bios.push_back(Bio::single_write(101, tail));
  dev.submit(bios);

  // Identical-range bios are absorbed into the request instead of
  // splitting the 100-101 merge: one write command for the batch.
  EXPECT_EQ(dev.stats().write_requests, 1u);
  EXPECT_EQ(dev.stats().merges, 2u);
  EXPECT_EQ(dev.stats().writes, 3u);  // three bios transferred

  // Last-submitted data wins on media.
  std::array<std::byte, kBlockSize> r{};
  dev.read_untimed(100, r);
  EXPECT_EQ(r, second);
  dev.read_untimed(101, r);
  EXPECT_EQ(r, tail);
}

TEST_F(BioTest, DuplicateBlockReadsBothReceiveData) {
  BlockDevice dev(small_params());
  const auto w = pattern(9);
  dev.write_untimed(42, w);
  std::array<std::byte, kBlockSize> r0{}, r1{};
  std::vector<Bio> bios;
  bios.push_back(Bio::single_read(42, r0));
  bios.push_back(Bio::single_read(42, r1));
  dev.submit(bios);
  EXPECT_EQ(dev.stats().read_requests, 1u);  // coalesced
  EXPECT_EQ(r0, w);
  EXPECT_EQ(r1, w);
}

// ---- crash model ----

TEST_F(BioTest, KillAfterCountsWriteCommandsPerBio) {
  BlockDevice dev(small_params());
  dev.enable_crash_tracking();
  dev.kill_after(1);  // one more write command survives

  auto w = pattern(9);
  std::vector<Bio> bios;
  // Scattered single-bio writes; dispatch order is sorted by block.
  bios.push_back(Bio::single_write(30, w));
  bios.push_back(Bio::single_write(10, w));
  bios.push_back(Bio::single_write(20, w));
  dev.submit(bios);
  EXPECT_TRUE(dev.dead());

  // Sorted dispatch: block 10 was the surviving command; 20 killed the
  // device mid-batch; 30 never reached media.
  std::array<std::byte, kBlockSize> r{};
  dev.read_untimed(10, r);
  EXPECT_EQ(r, w);
  dev.read_untimed(20, r);
  EXPECT_EQ(r[0], std::byte{0});
  dev.read_untimed(30, r);
  EXPECT_EQ(r[0], std::byte{0});
}

TEST_F(BioTest, MultiBlockBioAppliesAtomicallyUnderKill) {
  BlockDevice dev(small_params());
  dev.enable_crash_tracking();
  dev.kill_after(0);  // the very next write command dies

  auto w = pattern(5);
  Bio bio(BioOp::Write);
  bio.add_write(60, w);
  bio.add_write(61, w);
  bio.add_write(62, w);
  dev.queue().submit(bio);
  EXPECT_TRUE(dev.dead());

  // One bio = one command: none of its blocks reached media.
  for (std::uint64_t b = 60; b <= 62; ++b) {
    std::array<std::byte, kBlockSize> r{};
    dev.read_untimed(b, r);
    EXPECT_EQ(r[0], std::byte{0}) << "block " << b;
  }
}

TEST_F(BioTest, ScalarWritesStillCountIndividually) {
  // The scalar wrapper is one bio per write: kill_after semantics are
  // unchanged from the pre-bio device.
  BlockDevice dev(small_params());
  dev.enable_crash_tracking();
  dev.kill_after(2);
  auto w = pattern(1);
  dev.write(1, w);
  dev.write(2, w);
  EXPECT_FALSE(dev.dead());
  dev.write(3, w);
  EXPECT_TRUE(dev.dead());
}

TEST_F(BioTest, BatchedSyncKeepsUnexecutedBuffersDirty) {
  // Regression: sync_dirty_buffers used to clear bh->dirty for the whole
  // span even when kill_after aborted the batched submission early, so
  // buffers whose write command never executed were silently "clean" and
  // never retried. Dirty state must track exactly what reached media.
  BlockDevice dev(small_params());
  kern::BufferCache cache(dev, 0);
  dev.enable_crash_tracking();

  std::vector<kern::BufferHead*> held;
  for (std::uint64_t b : {10ull, 20ull, 30ull}) {  // scattered: 3 commands
    auto bh = cache.getblk(b);
    ASSERT_TRUE(bh.ok());
    cache.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  EXPECT_EQ(cache.nr_dirty(), 3u);

  dev.kill_after(1);  // one more write command reaches media
  cache.sync_dirty_buffers(held);
  EXPECT_TRUE(dev.dead());

  // Sorted dispatch: block 10's command executed; 20 hit the kill point
  // and 30 was issued to a dead device. Only 10 was written back.
  EXPECT_FALSE(held[0]->dirty);
  EXPECT_TRUE(held[1]->dirty);
  EXPECT_TRUE(held[2]->dirty);
  EXPECT_EQ(cache.nr_dirty(), 2u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  for (auto* bh : held) cache.brelse(bh);
}

TEST_F(BioTest, ScalarSyncOnDeadDeviceKeepsBufferDirty) {
  BlockDevice dev(small_params());
  kern::BufferCache cache(dev, 0);
  dev.enable_crash_tracking();
  dev.kill_after(0);  // next write command dies

  auto bh = cache.getblk(77);
  ASSERT_TRUE(bh.ok());
  cache.mark_dirty(bh.value());
  cache.sync_dirty_buffer(bh.value());
  EXPECT_TRUE(dev.dead());
  EXPECT_TRUE(bh.value()->dirty) << "write never executed: must stay dirty";
  EXPECT_EQ(cache.stats().writebacks, 0u);
  cache.brelse(bh.value());
}

TEST_F(BioTest, FlushDirtyAsyncDrainsWithMultipleBatchesInFlight) {
  auto p = small_params();
  BlockDevice dev(p);
  kern::BufferCache cache(dev, 0);

  // 64 scattered dirty buffers (stride 2 prevents merging into one run).
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto bh = cache.getblk(i * 2);
    ASSERT_TRUE(bh.ok());
    cache.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  const std::size_t written =
      cache.flush_dirty_async(/*max_batch=*/16, /*queue_depth=*/4,
                              /*shard=*/0, /*nshards=*/1, /*use_plug=*/false);
  EXPECT_EQ(written, 64u);
  EXPECT_EQ(cache.nr_dirty(), 0u);
  EXPECT_EQ(dev.queue().stats().async_batches, 4u);  // 64/16
  EXPECT_GE(dev.queue().stats().max_inflight, 2u);   // QD>1 achieved
  EXPECT_EQ(dev.queue().inflight(), 0u);             // all redeemed
  for (auto* bh : held) {
    EXPECT_FALSE(bh->dirty);
    cache.brelse(bh);
  }
}

TEST_F(BioTest, FlushDirtyAsyncPlugMergesBatchesIntoOnePass) {
  // The default (plugged) drain: the same sub-batch structure
  // accumulates under one request plug and dispatches as ONE elevator
  // pass — cross-batch merging instead of QD juggling.
  auto p = small_params();
  BlockDevice dev(p);
  kern::BufferCache cache(dev, 0);

  std::vector<kern::BufferHead*> held;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto bh = cache.getblk(i);  // contiguous: merges into ONE request
    ASSERT_TRUE(bh.ok());
    cache.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  const std::size_t written =
      cache.flush_dirty_async(/*max_batch=*/16, /*queue_depth=*/4);
  EXPECT_EQ(written, 64u);
  EXPECT_EQ(cache.nr_dirty(), 0u);
  EXPECT_EQ(dev.plug_stats().plugs, 1u);
  EXPECT_EQ(dev.plug_stats().plugged_batches, 4u);  // 64/16 accumulated
  EXPECT_EQ(dev.plug_stats().plugged_bios, 64u);
  EXPECT_EQ(dev.queue().stats().async_batches, 1u);  // one merged pass
  // Cross-batch merging: the four 16-block sub-batches are adjacent on
  // disk, so the single pass merges them into ONE 64-block command —
  // impossible without the plug (each sub-batch would be its own
  // request at best).
  EXPECT_EQ(dev.stats().write_requests, 1u);
  EXPECT_EQ(dev.stats().max_request_blocks, 64u);
  EXPECT_EQ(dev.queue().inflight(), 0u);
  for (auto* bh : held) {
    EXPECT_FALSE(bh->dirty);
    cache.brelse(bh);
  }
}

TEST_F(BioTest, PlugDeferredTicketsResolveOnWaitAndSyncOpsFlushEarly) {
  auto p = small_params();
  BlockDevice dev(p);

  std::array<std::byte, blk::kBlockSize> a{}, b{}, r{};
  a.fill(std::byte{0xAA});
  b.fill(std::byte{0xBB});
  dev.plug();
  Bio wa = Bio::single_write(3, a);
  Bio wb = Bio::single_write(4, b);
  const Ticket ta = dev.submit_async(std::span<Bio>(&wa, 1));
  const Ticket tb = dev.submit_async(std::span<Bio>(&wb, 1));
  // Deferred: nothing dispatched, media untouched, applied unset.
  EXPECT_EQ(dev.stats().writes, 0u);
  EXPECT_FALSE(wa.applied);
  // A synchronous read is a barrier: it flushes the plug first, so it
  // observes the plugged writes (and the window stays open).
  Bio rd = Bio::single_read(3, r);
  dev.submit(rd);
  EXPECT_TRUE(dev.plugged());
  EXPECT_TRUE(wa.applied);
  EXPECT_EQ(r, a);
  EXPECT_EQ(dev.plug_stats().forced_flushes, 1u);
  // The pre-flush tickets resolved to the dispatched batch; waiting them
  // (in any order) is harmless and the unplug of an empty window too.
  dev.wait(tb);
  dev.wait(ta);
  const Ticket rest = dev.unplug();
  EXPECT_FALSE(rest.valid());
  EXPECT_FALSE(dev.plugged());
  EXPECT_TRUE(wb.applied);
}

// ---- batched buffer-cache writeback ----

TEST_F(BioTest, BatchedWritebackMergesAndCleansBuffers) {
  auto p = small_params();
  BlockDevice dev(p);
  kern::BufferCache cache(dev, 0);

  // Dirty an adjacent run and a scattered block.
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t b : {200ull, 201ull, 202ull, 700ull}) {
    auto bh = cache.getblk(b);
    ASSERT_TRUE(bh.ok());
    auto data = pattern(static_cast<std::uint8_t>(b));
    std::copy(data.begin(), data.end(), bh.value()->bytes().begin());
    cache.mark_dirty(bh.value());
    held.push_back(bh.value());
  }

  const auto before = dev.stats();
  cache.sync_all();
  const auto& after = dev.stats();

  EXPECT_EQ(after.writes - before.writes, 4u);
  // 200-202 merged into one request; 700 its own: two write commands.
  EXPECT_EQ(after.write_requests - before.write_requests, 2u);
  EXPECT_EQ(cache.stats().writebacks, 4u);
  for (kern::BufferHead* bh : held) {
    EXPECT_FALSE(bh->dirty);
    cache.brelse(bh);
  }

  // Durable after flush; contents correct on re-read.
  dev.flush();
  for (std::uint64_t b : {200ull, 201ull, 202ull, 700ull}) {
    std::array<std::byte, kBlockSize> r{};
    dev.read_untimed(b, r);
    EXPECT_EQ(r, pattern(static_cast<std::uint8_t>(b))) << "block " << b;
  }
}

TEST_F(BioTest, BreadBatchFetchesMissesInOneSubmission) {
  auto p = small_params();
  BlockDevice dev(p);
  for (std::uint64_t b = 300; b < 304; ++b) {
    dev.write_untimed(b, pattern(static_cast<std::uint8_t>(b)));
  }
  kern::BufferCache cache(dev, 0);

  // Warm one block; the other three arrive via a single merged... two
  // requests (301 is cached, splitting the run at the device).
  auto warm = cache.bread(301);
  ASSERT_TRUE(warm.ok());
  cache.brelse(warm.value());
  const auto before = dev.stats();

  const std::uint64_t want[] = {300, 301, 302, 303};
  auto batch = cache.bread_batch(want);
  ASSERT_TRUE(batch.ok());
  const auto& after = dev.stats();
  EXPECT_EQ(after.reads - before.reads, 3u);          // 301 was a hit
  EXPECT_EQ(after.read_requests - before.read_requests, 2u);  // 300 | 302-303
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.value()[i]->blockno, want[i]);
    EXPECT_EQ(batch.value()[i]->bytes()[0],
              pattern(static_cast<std::uint8_t>(want[i]))[0]);
    cache.brelse(batch.value()[i]);
  }
}

TEST_F(BioTest, ReadaheadPopulatesWithoutReferences) {
  BlockDevice dev(small_params());
  kern::BufferCache cache(dev, 0);
  cache.readahead(400, 8);
  EXPECT_EQ(cache.outstanding_refs(), 0u);
  EXPECT_EQ(dev.stats().read_requests, 1u);  // one merged run
  EXPECT_EQ(dev.stats().reads, 8u);
  // Subsequent breads are hits.
  const auto misses = cache.stats().misses;
  auto bh = cache.bread(403);
  ASSERT_TRUE(bh.ok());
  EXPECT_EQ(cache.stats().misses, misses);
  cache.brelse(bh.value());
}

}  // namespace
}  // namespace bsim::blk
