// Unit tests for multi-device striped volumes (blockdev/striped.h):
// chunk routing, stripe-boundary bio splitting, per-member merging,
// ticket wait-order determinism across members, per-child and global
// (logical-bio) crash injection, and stats aggregation.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "blockdev/striped.h"
#include "sim/rng.h"
#include "sim/thread.h"

namespace bsim::blk {
namespace {

using sim::Nanos;

class StripedDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  /// 4-way RAID0, 4-block chunks, 64 blocks per member (256 logical).
  static StripedDevice make4() {
    StripeParams sp;
    sp.ndevices = 4;
    sp.chunk_blocks = 4;
    DeviceParams child;
    child.nblocks = 64;
    return StripedDevice(sp, child);
  }

  static std::array<std::byte, kBlockSize> pattern(std::uint8_t seed) {
    std::array<std::byte, kBlockSize> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::byte>(seed + i);
    }
    return b;
  }

  sim::SimThread thread_{0};
};

// ---- geometry ----

TEST_F(StripedDeviceTest, Raid0ChunkRouting) {
  StripedDevice sd = make4();
  EXPECT_EQ(sd.fan_out(), 4u);
  EXPECT_EQ(sd.nblocks(), 256u);

  // chunk c (4 blocks) lives on member c % 4 at member-chunk c / 4.
  EXPECT_EQ(sd.child_of(0), 0u);
  EXPECT_EQ(sd.child_of(3), 0u);
  EXPECT_EQ(sd.child_of(4), 1u);   // chunk 1
  EXPECT_EQ(sd.child_of(15), 3u);  // chunk 3
  EXPECT_EQ(sd.child_of(16), 0u);  // chunk 4 wraps to member 0
  EXPECT_EQ(sd.child_block_of(16), 4u);  // member 0's second chunk
  EXPECT_EQ(sd.child_block_of(5), 1u);   // chunk 1, offset 1 -> member 1
  EXPECT_EQ(sd.child_block_of(255), 63u);  // last block, last member

  // The mapping is a bijection: every member block is hit exactly once.
  std::vector<int> hits(4 * 64, 0);
  for (std::uint64_t b = 0; b < sd.nblocks(); ++b) {
    hits[sd.child_of(b) * 64 + sd.child_block_of(b)] += 1;
  }
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(StripedDeviceTest, LinearConcatRouting) {
  StripeParams sp;
  sp.ndevices = 2;
  sp.mode = StripeMode::Linear;
  DeviceParams child;
  child.nblocks = 128;
  StripedDevice sd(sp, child);
  EXPECT_EQ(sd.nblocks(), 256u);
  EXPECT_EQ(sd.child_of(0), 0u);
  EXPECT_EQ(sd.child_of(127), 0u);
  EXPECT_EQ(sd.child_of(128), 1u);
  EXPECT_EQ(sd.child_block_of(128), 0u);
  EXPECT_EQ(sd.child_block_of(255), 127u);
}

TEST_F(StripedDeviceTest, OptionStringParsing) {
  auto sp = stripe_params_from_opts("noflusher,stripe=4,chunk=32");
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(sp->ndevices, 4u);
  EXPECT_EQ(sp->chunk_blocks, 32u);
  EXPECT_EQ(sp->mode, StripeMode::Raid0);
  EXPECT_TRUE(stripe_params_from_opts("stripe=8,linear")->mode ==
              StripeMode::Linear);
  EXPECT_FALSE(stripe_params_from_opts("io_uring").has_value());
  EXPECT_FALSE(stripe_params_from_opts("stripe=1").has_value());

  // merge_stripe_opts overrides field-by-field: tokens present in the
  // option string win, absent tokens keep the caller's configuration.
  StripeParams base;
  base.ndevices = 4;
  base.chunk_blocks = 64;
  base.mode = StripeMode::Linear;
  const StripeParams a = merge_stripe_opts("stripe=2", base);
  EXPECT_EQ(a.ndevices, 2u);
  EXPECT_EQ(a.chunk_blocks, 64u);              // kept
  EXPECT_EQ(a.mode, StripeMode::Linear);       // kept
  const StripeParams b = merge_stripe_opts("chunk=8", base);
  EXPECT_EQ(b.ndevices, 4u);                   // kept
  EXPECT_EQ(b.chunk_blocks, 8u);
  const StripeParams c = merge_stripe_opts("stripe=1", base);
  EXPECT_EQ(c.ndevices, 1u);                   // explicit disable
  const StripeParams d = merge_stripe_opts("noflusher", base);
  EXPECT_EQ(d.ndevices, 4u);                   // unrelated tokens ignored
}

// ---- splitting + data integrity ----

TEST_F(StripedDeviceTest, BioSplitsAtStripeBoundaries) {
  StripedDevice sd = make4();
  // One 12-block write starting at block 2: covers chunk 0 (blocks 2-3),
  // chunk 1 (4-7), chunk 2 (8-11), chunk 3 (12-13) -> 4 fragments, one
  // per member.
  std::vector<std::array<std::byte, kBlockSize>> payloads;
  for (std::uint8_t i = 0; i < 12; ++i) payloads.push_back(pattern(i));
  Bio bio(BioOp::Write);
  for (std::uint64_t i = 0; i < 12; ++i) bio.add_write(2 + i, payloads[i]);
  sd.submit(bio);

  EXPECT_TRUE(bio.applied);
  EXPECT_GT(bio.done_at, 0);
  EXPECT_EQ(sd.volume_stats().fragments, 4u);
  EXPECT_EQ(sd.volume_stats().boundary_splits, 1u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(sd.fan_child(c).stats().write_requests, 1u) << c;
  }
  // Every block readable back through the logical address.
  for (std::uint64_t i = 0; i < 12; ++i) {
    std::array<std::byte, kBlockSize> got{};
    sd.read_untimed(2 + i, got);
    EXPECT_EQ(got, payloads[i]) << "block " << 2 + i;
  }
  // ... and physically resident on the member the mapping names.
  std::array<std::byte, kBlockSize> raw{};
  sd.fan_child(sd.child_of(5)).read_untimed(sd.child_block_of(5), raw);
  EXPECT_EQ(raw, payloads[3]);
}

TEST_F(StripedDeviceTest, SequentialRunMergesPerMember) {
  StripedDevice sd = make4();
  // 32 single-block sequential writes = 8 chunks = 2 chunks per member;
  // member chunks are consecutive, so each member merges its 8 blocks
  // into ONE request.
  auto data = pattern(9);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 32; ++b) {
    bios.push_back(Bio::single_write(b, data));
  }
  sd.submit(bios);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(sd.fan_child(c).stats().write_requests, 1u) << c;
    EXPECT_EQ(sd.fan_child(c).stats().writes, 8u) << c;
  }
  EXPECT_EQ(sd.stats().writes, 32u);  // aggregate
}

TEST_F(StripedDeviceTest, StripingOverlapsMembersInVirtualTime) {
  // A batch touching all 4 members completes ~4x faster than the same
  // bytes on one member: each member transfers its fragments concurrently.
  auto one_member_time = [] {
    sim::SimThread t(1);
    sim::ScopedThread in(t);
    StripeParams sp;
    sp.ndevices = 1;
    sp.chunk_blocks = 4;
    DeviceParams child;
    child.nblocks = 256;
    StripedDevice sd(sp, child);
    auto data = std::array<std::byte, kBlockSize>{};
    std::vector<Bio> bios;
    for (std::uint64_t b = 0; b < 64; ++b) {
      bios.push_back(Bio::single_write(b, data));
    }
    const Nanos t0 = sim::now();
    sd.submit(bios);
    return sim::now() - t0;
  };
  auto four_member_time = [] {
    sim::SimThread t(2);
    sim::ScopedThread in(t);
    StripedDevice sd = make4();
    auto data = std::array<std::byte, kBlockSize>{};
    std::vector<Bio> bios;
    for (std::uint64_t b = 0; b < 64; ++b) {
      bios.push_back(Bio::single_write(b, data));
    }
    const Nanos t0 = sim::now();
    sd.submit(bios);
    return sim::now() - t0;
  };
  const Nanos t1 = one_member_time();
  const Nanos t4 = four_member_time();
  EXPECT_EQ(t4 * 4, t1);  // exact: 64 blocks -> 16 per member, no overhead
}

// ---- async tickets ----

TEST_F(StripedDeviceTest, TicketWaitOrderIsIrrelevantAcrossMembers) {
  auto run = [](bool reverse) {
    sim::SimThread t(reverse ? 3 : 4);
    sim::ScopedThread in(t);
    StripedDevice sd = make4();
    auto data = std::array<std::byte, kBlockSize>{};

    std::vector<Bio> batch_a, batch_b;
    for (std::uint64_t b = 0; b < 16; ++b) {
      batch_a.push_back(Bio::single_write(b, data));          // all members
      batch_b.push_back(Bio::single_write(128 + b, data));    // all members
    }
    Ticket ta = sd.submit_async(batch_a);
    Ticket tb = sd.submit_async(batch_b);
    EXPECT_EQ(sd.inflight(), 2u);
    if (reverse) {
      sd.wait(tb);
      sd.wait(ta);
    } else {
      sd.wait(ta);
      sd.wait(tb);
    }
    EXPECT_EQ(sd.inflight(), 0u);
    // Member queues drained too (child tickets redeemed either way).
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(static_cast<BlockDevice&>(sd).fan_child(c).queue().inflight(),
                0u);
    }
    return sim::now();
  };
  const Nanos fwd = run(false);
  const Nanos rev = run(true);
  EXPECT_EQ(fwd, rev);  // redemption order never changes the final clock
  EXPECT_GT(fwd, 0);
}

TEST_F(StripedDeviceTest, AsyncHoldsQueueDepthAcrossMembers) {
  // Single-channel members so successive batches visibly queue behind
  // each other on every member.
  StripeParams sp;
  sp.ndevices = 4;
  sp.chunk_blocks = 4;
  DeviceParams child;
  child.nblocks = 64;
  child.channels = 1;
  StripedDevice sd(sp, child);
  auto data = std::array<std::byte, kBlockSize>{};
  std::vector<std::vector<Bio>> batches;
  std::vector<Ticket> tickets;
  for (int k = 0; k < 3; ++k) {
    std::vector<Bio> bios;
    for (std::uint64_t b = 0; b < 16; ++b) {
      bios.push_back(Bio::single_write(64ull * k + b, data));
    }
    batches.push_back(std::move(bios));
    tickets.push_back(sd.submit_async(batches.back()));
  }
  EXPECT_EQ(sd.volume_stats().async_batches, 3u);
  EXPECT_EQ(sd.volume_stats().max_inflight, 3u);
  // Later batches queue behind earlier ones on each member's channels.
  EXPECT_GT(tickets[2].done, tickets[0].done);
  for (const Ticket& t : tickets) sd.wait(t);
  EXPECT_EQ(sd.inflight(), 0u);
}

// ---- crash injection ----

TEST_F(StripedDeviceTest, PerChildKillCutsPowerToOneShardMidBatch) {
  StripedDevice sd = make4();
  sd.enable_crash_tracking();
  // Member 1 dies after 1 more of ITS write commands; the other members
  // keep persisting.
  sd.kill_after_child(1, 1);

  auto data = pattern(3);
  // Two separate writes to member 1 (logical chunks 1 and 5 -> member 1),
  // plus one to member 0 and one to member 2.
  std::vector<Bio> bios;
  bios.push_back(Bio::single_write(4, data));    // member 1, chunk 1
  bios.push_back(Bio::single_write(20, data));   // member 1, chunk 5
  bios.push_back(Bio::single_write(0, data));    // member 0
  bios.push_back(Bio::single_write(8, data));    // member 2
  sd.submit(bios);

  // Member 1's queue dispatches its two fragments in block order: child
  // block 0 (logical 4) survives, child block 4 (logical 20) dies.
  EXPECT_TRUE(bios[0].applied);
  EXPECT_FALSE(bios[1].applied);
  EXPECT_TRUE(bios[2].applied);
  EXPECT_TRUE(bios[3].applied);
  EXPECT_TRUE(sd.fan_child(1).dead());
  EXPECT_FALSE(sd.fan_child(0).dead());
  EXPECT_TRUE(sd.dead());  // a volume with a dead member is dead

  std::array<std::byte, kBlockSize> got{};
  sd.read_untimed(4, got);
  EXPECT_EQ(got, data);
  sd.read_untimed(20, got);
  EXPECT_NE(got, data);  // never reached media
}

TEST_F(StripedDeviceTest, GlobalKillCountsLogicalBiosLikeOneDevice) {
  // kill_after(n) on the volume must select the same n logical bios as
  // the single-device queue would for an identical submission sequence —
  // the property the striped crash sweep's differential check relies on.
  auto survivors_on = [](auto& dev) {
    sim::SimThread t(5);
    sim::ScopedThread in(t);
    dev.enable_crash_tracking();
    dev.kill_after(3);
    std::array<std::byte, kBlockSize> data{};
    data.fill(std::byte{0xAB});
    // Unsorted submission order; counting happens in first-block order.
    std::vector<Bio> bios;
    for (const std::uint64_t b : {40ULL, 8ULL, 33ULL, 2ULL, 17ULL}) {
      bios.push_back(Bio::single_write(b, data));
    }
    dev.submit(bios);
    std::vector<std::uint64_t> applied;
    for (const Bio& b : bios) {
      if (b.applied) applied.push_back(b.first_block());
    }
    EXPECT_TRUE(dev.dead());
    return applied;
  };

  DeviceParams p;
  p.nblocks = 256;
  BlockDevice single(p);
  StripedDevice striped = make4();
  const auto a = survivors_on(single);
  const auto b = survivors_on(striped);
  EXPECT_EQ(a, b);
  // Sorted order 2,8,17,33,40 with 3 survivors -> {2,8,17} applied.
  EXPECT_EQ(a, (std::vector<std::uint64_t>{8, 2, 17}));
}

TEST_F(StripedDeviceTest, CrashRevertsNonDurableWritesOnEveryMember) {
  StripedDevice sd = make4();
  sd.enable_crash_tracking();
  auto data = pattern(1);
  std::vector<Bio> bios;
  for (std::uint64_t b = 0; b < 32; ++b) {
    bios.push_back(Bio::single_write(b, data));
  }
  sd.submit(bios);
  EXPECT_EQ(sd.dirty_blocks(), 32u);

  sim::Rng rng(11);
  sd.crash(/*survive_p=*/0.0, rng);
  EXPECT_EQ(sd.dirty_blocks(), 0u);
  std::array<std::byte, kBlockSize> got{};
  for (std::uint64_t b = 0; b < 32; ++b) {
    sd.read_untimed(b, got);
    EXPECT_EQ(got[0], std::byte{0}) << b;  // pre-image restored
  }

  // Durable (flushed) writes survive a later crash.
  std::vector<Bio> again;
  for (std::uint64_t b = 0; b < 8; ++b) {
    again.push_back(Bio::single_write(b, data));
  }
  sd.submit(again);
  sd.flush();
  sd.crash(0.0, rng);
  sd.read_untimed(3, got);
  EXPECT_EQ(got, data);
}

// ---- stats aggregation ----

TEST_F(StripedDeviceTest, StatsAggregateAcrossMembers) {
  StripedDevice sd = make4();
  auto data = pattern(2);
  std::vector<Bio> writes;
  for (std::uint64_t b = 0; b < 16; ++b) {
    writes.push_back(Bio::single_write(b, data));
  }
  sd.submit(writes);
  std::array<std::byte, kBlockSize> buf{};
  std::vector<Bio> reads;
  for (std::uint64_t b = 0; b < 16; ++b) {
    reads.push_back(Bio::single_read(b, buf));
  }
  sd.submit(reads);
  sd.flush();

  const DeviceStats& agg = sd.stats();
  std::uint64_t writes_sum = 0, reads_sum = 0, flushes_sum = 0;
  sim::Nanos busy_sum = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    writes_sum += sd.fan_child(c).stats().writes;
    reads_sum += sd.fan_child(c).stats().reads;
    flushes_sum += sd.fan_child(c).stats().flushes;
    busy_sum += sd.fan_child(c).stats().busy;
  }
  EXPECT_EQ(agg.writes, 16u);
  EXPECT_EQ(agg.writes, writes_sum);
  EXPECT_EQ(agg.reads, 16u);
  EXPECT_EQ(agg.reads, reads_sum);
  EXPECT_EQ(agg.flushes, 4u);  // one FLUSH per member
  EXPECT_EQ(agg.flushes, flushes_sum);
  EXPECT_EQ(agg.busy, busy_sum);
  EXPECT_EQ(sd.volume_stats().batches, 2u);
  EXPECT_EQ(sd.volume_stats().bios, 32u);
}

// ---- scalar wrappers ----

TEST_F(StripedDeviceTest, ScalarReadWriteRouteThroughTheVolume) {
  StripedDevice sd = make4();
  auto data = pattern(7);
  sd.write(100, data);  // chunk 25 -> member 1
  std::array<std::byte, kBlockSize> got{};
  sd.read(100, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(sd.fan_child(sd.child_of(100)).stats().writes, 1u);
  EXPECT_GT(sim::now(), 0);
}

}  // namespace
}  // namespace bsim::blk
