// Integration tests: the full stack — syscalls -> VFS -> interposition
// layer -> xv6 file system -> block backend -> device — behaving like
// POSIX. Parameterized over all three deployments of the same file system
// (paper §6.2): kernel Bento, the VFS C baseline, and FUSE userspace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"

namespace bsim::test {
namespace {

using kern::Err;
using kern::FileType;

class PosixFsTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    blk::DeviceParams params;
    params.nblocks = 32768;  // 128 MiB
    auto& dev = kernel_.add_device("ssd0", params);
    if (std::string_view(GetParam()) == "ext4j") {
      ext4::mkfs(dev, /*inodes_per_group=*/4096);
    } else {
      xv6::mkfs(dev, /*ninodes=*/4096);
    }
    register_all_xv6(kernel_);
    ASSERT_EQ(kern::Err::Ok, kernel_.mount(GetParam(), "ssd0", "/mnt"));
  }

  kern::Process& proc() { return kernel_.proc(); }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
};

INSTANTIATE_TEST_SUITE_P(AllDeployments, PosixFsTest,
                         ::testing::Values("xv6_bento", "xv6_vfs",
                                           "xv6_fuse", "ext4j",
                                           "xv6_nvmlog"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_P(PosixFsTest, CreateWriteReadBack) {
  auto fd = kernel_.open(proc(), "/mnt/hello.txt",
                         kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  auto w = kernel_.write(proc(), fd.value(), as_bytes("hello, bento"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 12u);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  fd = kernel_.open(proc(), "/mnt/hello.txt", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(64);
  auto r = kernel_.read(proc(), fd.value(), buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "hello, bento");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, OpenMissingFileFails) {
  auto fd = kernel_.open(proc(), "/mnt/nope", kern::kORdOnly);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error(), Err::NoEnt);
}

TEST_P(PosixFsTest, OExclFailsOnExisting) {
  auto fd = kernel_.open(proc(), "/mnt/f", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto fd2 = kernel_.open(proc(), "/mnt/f",
                          kern::kOCreat | kern::kOExcl | kern::kOWrOnly);
  ASSERT_FALSE(fd2.ok());
  EXPECT_EQ(fd2.error(), Err::Exist);
}

TEST_P(PosixFsTest, StatReportsSizeAndType) {
  auto fd = kernel_.open(proc(), "/mnt/s", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(10000, std::byte{1});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  auto st = kernel_.stat(proc(), "/mnt/s");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 10000u);
  EXPECT_EQ(st.value().type, FileType::Regular);
  EXPECT_EQ(st.value().nlink, 1u);
}

TEST_P(PosixFsTest, AppendFlag) {
  auto fd = kernel_.open(proc(), "/mnt/log", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("aaa")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  fd = kernel_.open(proc(), "/mnt/log", kern::kOWrOnly | kern::kOAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("bbb")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  auto st = kernel_.stat(proc(), "/mnt/log");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 6u);
}

TEST_P(PosixFsTest, PreadPwriteAtOffsets) {
  auto fd = kernel_.open(proc(), "/mnt/p", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.pwrite(proc(), fd.value(), as_bytes("XY"), 8000).ok());
  std::vector<std::byte> buf(2);
  auto r = kernel_.pread(proc(), fd.value(), buf, 8000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), 2}), "XY");
  // The hole before offset 8000 reads as zeros.
  auto hole = kernel_.pread(proc(), fd.value(), buf, 100);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(buf[0], std::byte{0});
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, LseekEnd) {
  auto fd = kernel_.open(proc(), "/mnt/seek", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("0123456789")).ok());
  auto pos = kernel_.lseek(proc(), fd.value(), -4, kern::Whence::End);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 6u);
  std::vector<std::byte> buf(4);
  auto r = kernel_.read(proc(), fd.value(), buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), 4}), "6789");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, MkdirReaddirRmdir) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/d"));
  for (const char* name : {"a", "b", "c"}) {
    auto fd = kernel_.open(proc(), std::string("/mnt/d/") + name,
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  auto entries = kernel_.readdir(proc(), "/mnt/d");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : entries.value()) names.push_back(e.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{".", "..", "a", "b", "c"}));

  EXPECT_EQ(kernel_.rmdir(proc(), "/mnt/d"), Err::NotEmpty);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), std::string("/mnt/d/") + name));
  }
  EXPECT_EQ(kernel_.rmdir(proc(), "/mnt/d"), Err::Ok);
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/d").error(), Err::NoEnt);
}

TEST_P(PosixFsTest, NestedDirectories) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/a"));
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/a/b"));
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/a/b/c"));
  auto fd = kernel_.open(proc(), "/mnt/a/b/c/deep.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st = kernel_.stat(proc(), "/mnt/a/b/c/deep.txt");
  ASSERT_TRUE(st.ok());
}

TEST_P(PosixFsTest, UnlinkRemovesAndFreesSpace) {
  auto before = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(before.ok());

  auto fd = kernel_.open(proc(), "/mnt/big", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> mb(1 << 20, std::byte{7});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), mb).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  auto during = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(during.ok());
  EXPECT_LT(during.value().free_blocks, before.value().free_blocks);

  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/mnt/big"));
  auto after = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().free_blocks, before.value().free_blocks);
  EXPECT_EQ(after.value().free_inodes, before.value().free_inodes);
}

TEST_P(PosixFsTest, RenameMovesFile) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/src"));
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/dst"));
  auto fd = kernel_.open(proc(), "/mnt/src/x", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("payload")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  ASSERT_EQ(Err::Ok, kernel_.rename(proc(), "/mnt/src/x", "/mnt/dst/y"));
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/src/x").error(), Err::NoEnt);
  auto st = kernel_.stat(proc(), "/mnt/dst/y");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 7u);
}

TEST_P(PosixFsTest, RenameOverwritesTarget) {
  for (const char* n : {"/mnt/o1", "/mnt/o2"}) {
    auto fd = kernel_.open(proc(), n, kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes(n)).ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  ASSERT_EQ(Err::Ok, kernel_.rename(proc(), "/mnt/o1", "/mnt/o2"));
  auto st = kernel_.stat(proc(), "/mnt/o2");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 7u);  // "/mnt/o1"
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/o1").error(), Err::NoEnt);
}

TEST_P(PosixFsTest, TruncateShrinkAndGrow) {
  auto fd = kernel_.open(proc(), "/mnt/t", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(50000, std::byte{9});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  ASSERT_EQ(Err::Ok, kernel_.truncate(proc(), "/mnt/t", 100));
  auto st = kernel_.stat(proc(), "/mnt/t");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 100u);

  // Bytes within the kept range survive; the tail rereads as zero after
  // growing again.
  ASSERT_EQ(Err::Ok, kernel_.truncate(proc(), "/mnt/t", 9000));
  fd = kernel_.open(proc(), "/mnt/t", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(9000);
  auto r = kernel_.read(proc(), fd.value(), buf);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), 9000u);
  EXPECT_EQ(buf[99], std::byte{9});
  EXPECT_EQ(buf[100], std::byte{0});
  EXPECT_EQ(buf[8999], std::byte{0});
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, OTruncClearsContent) {
  auto fd = kernel_.open(proc(), "/mnt/tr", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("old")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  fd = kernel_.open(proc(), "/mnt/tr", kern::kOWrOnly | kern::kOTrunc);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st = kernel_.stat(proc(), "/mnt/tr");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 0u);
}

TEST_P(PosixFsTest, LargeFileThroughIndirectBlocks) {
  // Cross the direct (10 blocks = 40 KiB) and into the indirect range.
  auto fd = kernel_.open(proc(), "/mnt/large", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> chunk(1 << 20);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::byte>(i * 31 / 4096);
  }
  for (int mb = 0; mb < 8; ++mb) {
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), chunk).ok());
  }
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));

  // Read back scattered offsets and verify contents.
  std::vector<std::byte> buf(4096);
  for (std::uint64_t off :
       {0ULL, 39ULL * 4096, 41ULL * 4096, (4ULL << 20) + 4096}) {
    auto r = kernel_.pread(proc(), fd.value(), buf, off);
    ASSERT_TRUE(r.ok());
    const std::size_t within = (off % (1 << 20)) / 1;
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(buf[static_cast<std::size_t>(i)],
                chunk[within + static_cast<std::size_t>(i)])
          << "offset " << off << " byte " << i;
    }
  }
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, PersistsAcrossRemount) {
  auto fd = kernel_.open(proc(), "/mnt/persist", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("durable")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt"));
  ASSERT_EQ(Err::Ok, kernel_.mount(GetParam(), "ssd0", "/mnt"));

  fd = kernel_.open(proc(), "/mnt/persist", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(16);
  auto r = kernel_.read(proc(), fd.value(), buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "durable");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_P(PosixFsTest, ManyFilesInOneDirectory) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/many"));
  for (int i = 0; i < 300; ++i) {
    auto fd = kernel_.open(proc(), "/mnt/many/f" + std::to_string(i),
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok()) << i;
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  auto entries = kernel_.readdir(proc(), "/mnt/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 302u);  // ".", "..", 300 files
  auto st = kernel_.stat(proc(), "/mnt/many/f299");
  ASSERT_TRUE(st.ok());
}

TEST_P(PosixFsTest, FsyncAndSyncSucceed) {
  auto fd = kernel_.open(proc(), "/mnt/sy", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("x")).ok());
  EXPECT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  EXPECT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(Err::Ok, kernel_.sync(proc()));
}

TEST_P(PosixFsTest, StatfsGeometry) {
  auto st = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().block_size, 4096u);
  EXPECT_GT(st.value().total_blocks, 0u);
  EXPECT_GT(st.value().free_blocks, 0u);
  EXPECT_EQ(st.value().total_inodes, 4096u);
}

TEST_P(PosixFsTest, WriteReturnsBadFOnReadOnlyFd) {
  auto fd = kernel_.open(proc(), "/mnt/ro", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  fd = kernel_.open(proc(), "/mnt/ro", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  auto w = kernel_.write(proc(), fd.value(), as_bytes("no"));
  EXPECT_EQ(w.error(), Err::BadF);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(BentoXv6Fixture, BorrowLedgerBalancedAfterWorkload) {
  // The ownership-model contract (§4.4): after any sequence of operations,
  // the file system must have returned every borrowed capability.
  for (int i = 0; i < 50; ++i) {
    auto fd = kernel_.open(proc(), "/mnt/w" + std::to_string(i),
                           kern::kOCreat | kern::kORdWr);
    ASSERT_TRUE(fd.ok());
    std::vector<std::byte> data(8192, std::byte{4});
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
    ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  auto* sb = kernel_.sb_at("/mnt");
  ASSERT_NE(sb, nullptr);
  auto* module = bento::BentoModule::from(*sb);
  ASSERT_NE(module, nullptr);
  EXPECT_TRUE(module->ledger().balanced());
  EXPECT_GT(module->ledger().total(), 0);
  // And no buffer references leaked either (RAII BufferHeadHandle).
  EXPECT_EQ(sb->bufcache().outstanding_refs(), 0u);
}

}  // namespace
}  // namespace bsim::test
