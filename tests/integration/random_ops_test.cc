// Property test: random operation sequences against an in-memory oracle.
//
// For each (file system, seed) we run several hundred random namespace and
// data operations through the syscall surface, mirroring every mutation in
// a simple in-memory model, and continuously check that the file system
// and the model agree — contents, sizes, existence, directory listings —
// including after unmount/remount.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "../testutil.h"

namespace bsim::test {
namespace {

using kern::Err;

struct Model {
  // Path -> contents for files; set of directories.
  std::map<std::string, std::string> files;
  std::vector<std::string> dirs{"/mnt"};

  [[nodiscard]] bool dir_exists(const std::string& d) const {
    return std::find(dirs.begin(), dirs.end(), d) != dirs.end();
  }
  [[nodiscard]] bool dir_empty(const std::string& d) const {
    for (const auto& [p, _] : files) {
      if (p.starts_with(d + "/")) return false;
    }
    for (const auto& sub : dirs) {
      if (sub != d && sub.starts_with(d + "/")) return false;
    }
    return true;
  }
};

struct Case {
  const char* fs;
  std::uint64_t seed;
  const char* mount_opts = "";
  const char* tag = "";  // distinguishes option variants in test names
  int stripe = 1;        // >1: mount on an N-way striped volume
  int mirror = 1;        // >1: mirror each (stripe member) device N ways
  int parity = 1;        // >=2: RAID5 with this many data columns
};

/// Register a 32768-block "ssd0": plain, an N-way RAID0 volume, an N-way
/// RAID1 mirror, RAID10, RAID5, or RAID50 — always the same logical size.
blk::BlockDevice& add_ssd0(kern::Kernel& kernel, int stripe, int mirror = 1,
                           int parity = 1) {
  blk::DeviceParams params;
  params.nblocks = 32768;
  std::optional<blk::StripeParams> sp;
  if (stripe > 1) {
    sp.emplace();
    sp->ndevices = static_cast<std::size_t>(stripe);
    sp->chunk_blocks = 16;
  }
  std::optional<blk::MirrorParams> mp;
  if (mirror > 1) {
    mp.emplace();
    mp->nmirrors = static_cast<std::size_t>(mirror);
  }
  std::optional<blk::ParityParams> pp;
  if (parity >= 2) {
    pp.emplace();
    pp->ndata = static_cast<std::size_t>(parity);
    pp->chunk_blocks = 16;
  }
  return kernel.add_volume("ssd0", sp, mp, pp, params);
}

class RandomOps : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    auto& dev = add_ssd0(kernel_, GetParam().stripe, GetParam().mirror,
                         GetParam().parity);
    if (std::string_view(GetParam().fs) == "ext4j") {
      ext4::mkfs(dev, 4096);
    } else {
      xv6::mkfs(dev, 4096);
    }
    register_all_xv6(kernel_);
    ASSERT_EQ(Err::Ok, kernel_.mount(GetParam().fs, "ssd0", "/mnt",
                                     GetParam().mount_opts));
  }

  std::string write_file(const std::string& path, sim::Rng& rng) {
    auto fd = kernel_.open(proc(), path, kern::kOCreat | kern::kORdWr);
    EXPECT_TRUE(fd.ok()) << path;
    if (!fd.ok()) return {};
    std::string data(rng.range(0, 30000),
                     static_cast<char>('A' + rng.below(26)));
    EXPECT_TRUE(kernel_.write(proc(), fd.value(), as_bytes(data)).ok());
    EXPECT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
    return data;
  }

  void verify_file(const std::string& path, const std::string& expect) {
    auto fd = kernel_.open(proc(), path, kern::kORdOnly);
    ASSERT_TRUE(fd.ok()) << path;
    std::vector<std::byte> buf(expect.size() + 64);
    auto r = kernel_.read(proc(), fd.value(), buf);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_EQ(r.value(), expect.size()) << path;
    EXPECT_EQ(to_string({buf.data(), r.value()}), expect) << path;
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }

  void verify_all(const Model& model) {
    for (const auto& [path, contents] : model.files) {
      verify_file(path, contents);
    }
    for (const auto& d : model.dirs) {
      auto st = kernel_.stat(proc(), d);
      if (d == "/mnt") continue;  // mountpoint is not stat-able by path
      ASSERT_TRUE(st.ok()) << d;
      EXPECT_EQ(st.value().type, kern::FileType::Directory) << d;
    }
  }

  kern::Process& proc() { return kernel_.proc(); }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
};

TEST_P(RandomOps, AgreesWithOracle) {
  sim::Rng rng(GetParam().seed);
  Model model;
  int next_id = 0;

  for (int step = 0; step < 350; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 30) {
      // Create or overwrite a file in a random directory.
      const std::string& dir = model.dirs[rng.below(model.dirs.size())];
      const std::string path = dir + "/f" + std::to_string(next_id++);
      model.files[path] = write_file(path, rng);
    } else if (dice < 45 && !model.files.empty()) {
      // Overwrite an existing file (O_TRUNC).
      auto it = model.files.begin();
      std::advance(it, static_cast<long>(rng.below(model.files.size())));
      auto fd = kernel_.open(proc(), it->first,
                             kern::kOWrOnly | kern::kOTrunc);
      ASSERT_TRUE(fd.ok());
      std::string data(rng.range(0, 9000), 'q');
      ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes(data)).ok());
      ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
      it->second = data;
    } else if (dice < 58 && !model.files.empty()) {
      // Unlink a file.
      auto it = model.files.begin();
      std::advance(it, static_cast<long>(rng.below(model.files.size())));
      ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), it->first)) << it->first;
      model.files.erase(it);
    } else if (dice < 68) {
      // mkdir under a random existing dir (bounded depth).
      const std::string& parent = model.dirs[rng.below(model.dirs.size())];
      if (std::count(parent.begin(), parent.end(), '/') < 5) {
        const std::string d = parent + "/d" + std::to_string(next_id++);
        ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), d)) << d;
        model.dirs.push_back(d);
      }
    } else if (dice < 74 && model.dirs.size() > 1) {
      // rmdir an empty directory (if we find one).
      for (std::size_t i = model.dirs.size(); i-- > 1;) {
        if (model.dir_empty(model.dirs[i])) {
          ASSERT_EQ(Err::Ok, kernel_.rmdir(proc(), model.dirs[i]));
          model.dirs.erase(model.dirs.begin() + static_cast<long>(i));
          break;
        }
      }
    } else if (dice < 84 && !model.files.empty()) {
      // rename a file to a fresh name in a random dir.
      auto it = model.files.begin();
      std::advance(it, static_cast<long>(rng.below(model.files.size())));
      const std::string& dir = model.dirs[rng.below(model.dirs.size())];
      const std::string to = dir + "/r" + std::to_string(next_id++);
      ASSERT_EQ(Err::Ok, kernel_.rename(proc(), it->first, to))
          << it->first << " -> " << to;
      model.files[to] = it->second;
      model.files.erase(it);
    } else if (dice < 92 && !model.files.empty()) {
      // truncate to a random size.
      auto it = model.files.begin();
      std::advance(it, static_cast<long>(rng.below(model.files.size())));
      const std::uint64_t newsize = rng.below(20000);
      ASSERT_EQ(Err::Ok, kernel_.truncate(proc(), it->first, newsize));
      if (newsize <= it->second.size()) {
        it->second.resize(newsize);
      } else {
        it->second.resize(newsize, '\0');
      }
    } else if (!model.files.empty()) {
      // spot-check a random file.
      auto it = model.files.begin();
      std::advance(it, static_cast<long>(rng.below(model.files.size())));
      verify_file(it->first, it->second);
      auto st = kernel_.stat(proc(), it->first);
      ASSERT_TRUE(st.ok());
      EXPECT_EQ(st.value().size, it->second.size()) << it->first;
    }
  }

  verify_all(model);

  // Durability: everything must survive an unmount/remount cycle.
  ASSERT_EQ(Err::Ok, kernel_.sync(proc()));
  ASSERT_EQ(Err::Ok, kernel_.umount("/mnt"));
  ASSERT_EQ(Err::Ok, kernel_.mount(GetParam().fs, "ssd0", "/mnt",
                                   GetParam().mount_opts));
  verify_all(model);
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (const char* fs :
       {"xv6_bento", "xv6_vfs", "xv6_fuse", "ext4j", "xv6_nvmlog"}) {
    for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
      out.push_back({fs, seed});
    }
  }
  // FUSE with the ExtFUSE eBPF caches: the differential oracle doubles as
  // a cache-coherence check across every mutation pattern.
  for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    out.push_back({"xv6_fuse", seed, "extfuse", "ext"});
  }
  // Every deployment mounts a 4-way striped volume unchanged; the oracle
  // sweep exercises the stripe-splitting path under all mutation shapes.
  for (const char* fs :
       {"xv6_bento", "xv6_vfs", "xv6_fuse", "ext4j", "xv6_nvmlog"}) {
    out.push_back({fs, 101, "", "striped4", 4});
  }
  out.push_back({"xv6_bento", 202, "", "striped4", 4});
  // ... and a 2-way RAID1 mirror (write replication + balanced reads
  // under every mutation shape), plus one RAID10 stack.
  for (const char* fs :
       {"xv6_bento", "xv6_vfs", "xv6_fuse", "ext4j", "xv6_nvmlog"}) {
    out.push_back({fs, 101, "", "mirror2", 1, 2});
  }
  out.push_back({"xv6_bento", 202, "", "raid10", 2, 2});
  // ... and a 4+1 RAID5 parity volume (full-stripe vs RMW path selection,
  // intent-bitmap updates, parity maintenance under every mutation shape).
  for (const char* fs :
       {"xv6_bento", "xv6_vfs", "xv6_fuse", "ext4j", "xv6_nvmlog"}) {
    out.push_back({fs, 101, "", "parity4", 1, 1, 4});
  }
  out.push_back({"xv6_bento", 202, "", "raid50", 2, 1, 2});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFses, RandomOps, ::testing::ValuesIn(cases()),
                         [](const auto& info) {
                           return std::string(info.param.fs) +
                                  info.param.tag + "_s" +
                                  std::to_string(info.param.seed);
                         });

// ---- Striped differential: the same op trace on one device and on a
// 4-way striped volume must produce bit-identical LOGICAL images after
// sync + unmount. "-o noflusher" keeps writeback (and hence block
// allocation order) a pure function of the op sequence rather than of
// virtual time, which differs between the two layouts.

void run_mutation_trace(kern::Kernel& kernel, std::uint64_t seed) {
  auto& p = kernel.proc();
  sim::Rng rng(seed);
  std::vector<std::string> files, dirs{"/mnt"};
  int next_id = 0;
  for (int step = 0; step < 200; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 35) {
      const std::string path =
          dirs[rng.below(dirs.size())] + "/f" + std::to_string(next_id++);
      auto fd = kernel.open(p, path, kern::kOCreat | kern::kORdWr);
      ASSERT_TRUE(fd.ok()) << path;
      std::string data(rng.range(0, 30000),
                       static_cast<char>('A' + rng.below(26)));
      ASSERT_TRUE(kernel.write(p, fd.value(), as_bytes(data)).ok());
      if (rng.chance(0.3)) {
        ASSERT_EQ(Err::Ok, kernel.fsync(p, fd.value()));
      }
      ASSERT_EQ(Err::Ok, kernel.close(p, fd.value()));
      files.push_back(path);
    } else if (dice < 50 && !files.empty()) {
      const std::string& victim = files[rng.below(files.size())];
      ASSERT_EQ(Err::Ok, kernel.unlink(p, victim)) << victim;
      files.erase(std::find(files.begin(), files.end(), victim));
    } else if (dice < 65) {
      const std::string& parent = dirs[rng.below(dirs.size())];
      if (std::count(parent.begin(), parent.end(), '/') < 5) {
        const std::string d = parent + "/d" + std::to_string(next_id++);
        ASSERT_EQ(Err::Ok, kernel.mkdir(p, d)) << d;
        dirs.push_back(d);
      }
    } else if (dice < 80 && !files.empty()) {
      const std::size_t i = rng.below(files.size());
      const std::string to =
          dirs[rng.below(dirs.size())] + "/r" + std::to_string(next_id++);
      ASSERT_EQ(Err::Ok, kernel.rename(p, files[i], to));
      files[i] = to;
    } else if (!files.empty()) {
      const std::string& victim = files[rng.below(files.size())];
      ASSERT_EQ(Err::Ok, kernel.truncate(p, victim, rng.below(20000)));
    }
  }
  ASSERT_EQ(Err::Ok, kernel.sync(p));
}

TEST(StripedDifferential, FinalImageBitIdenticalToSingleDevice) {
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    std::array<std::unique_ptr<kern::Kernel>, 2> kernels;
    std::array<blk::BlockDevice*, 2> devs{};
    for (int k = 0; k < 2; ++k) {
      kernels[k] = std::make_unique<kern::Kernel>();
      devs[k] = &add_ssd0(*kernels[k], k == 0 ? 1 : 4);
      xv6::mkfs(*devs[k], 4096);
      register_all_xv6(*kernels[k]);
      ASSERT_EQ(Err::Ok, kernels[k]->mount("xv6_bento", "ssd0", "/mnt",
                                           "noflusher"));
      run_mutation_trace(*kernels[k], seed);
      ASSERT_EQ(Err::Ok, kernels[k]->umount("/mnt"));
    }
    ASSERT_EQ(devs[0]->nblocks(), devs[1]->nblocks());
    std::array<std::byte, blk::kBlockSize> a{}, b{};
    std::uint64_t diffs = 0;
    for (std::uint64_t blk = 0; blk < devs[0]->nblocks(); ++blk) {
      devs[0]->read_untimed(blk, a);
      devs[1]->read_untimed(blk, b);
      if (a != b) diffs += 1;
    }
    EXPECT_EQ(diffs, 0u) << "seed " << seed << ": " << diffs
                         << " logical blocks diverged";
  }
}

TEST(MirroredDifferential, FinalImageAndReplicasBitIdentical) {
  // The same op trace on one device and on a 2-way mirror: the mirror's
  // logical image must match the single device bit-for-bit, and after
  // sync + unmount its two replicas must match each other.
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    std::array<std::unique_ptr<kern::Kernel>, 2> kernels;
    std::array<blk::BlockDevice*, 2> devs{};
    for (int k = 0; k < 2; ++k) {
      kernels[k] = std::make_unique<kern::Kernel>();
      devs[k] = &add_ssd0(*kernels[k], 1, k == 0 ? 1 : 2);
      xv6::mkfs(*devs[k], 4096);
      register_all_xv6(*kernels[k]);
      ASSERT_EQ(Err::Ok, kernels[k]->mount("xv6_bento", "ssd0", "/mnt",
                                           "noflusher"));
      run_mutation_trace(*kernels[k], seed);
      ASSERT_EQ(Err::Ok, kernels[k]->umount("/mnt"));
    }
    auto& mirror = *static_cast<blk::MirroredDevice*>(devs[1]);
    ASSERT_EQ(devs[0]->nblocks(), mirror.nblocks());
    std::array<std::byte, blk::kBlockSize> a{}, b{}, c{};
    std::uint64_t logical_diffs = 0, replica_diffs = 0;
    for (std::uint64_t blk = 0; blk < devs[0]->nblocks(); ++blk) {
      devs[0]->read_untimed(blk, a);
      mirror.read_untimed(blk, b);
      if (a != b) logical_diffs += 1;
      mirror.member(0).read_untimed(blk, b);
      mirror.member(1).read_untimed(blk, c);
      if (b != c) replica_diffs += 1;
    }
    EXPECT_EQ(logical_diffs, 0u) << "seed " << seed;
    EXPECT_EQ(replica_diffs, 0u) << "seed " << seed;
  }
}

TEST(ParityDifferential, FinalImageBitIdenticalHealthyAndDegraded) {
  // The same op trace on one device and on a 4+1 RAID5 volume: the parity
  // volume's logical image must match the single device bit-for-bit —
  // read healthy, and read again after losing each member in turn (every
  // block then reconstructed from data + parity of the survivors).
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    std::array<std::unique_ptr<kern::Kernel>, 2> kernels;
    std::array<blk::BlockDevice*, 2> devs{};
    for (int k = 0; k < 2; ++k) {
      kernels[k] = std::make_unique<kern::Kernel>();
      devs[k] = &add_ssd0(*kernels[k], 1, 1, k == 0 ? 1 : 4);
      xv6::mkfs(*devs[k], 4096);
      register_all_xv6(*kernels[k]);
      ASSERT_EQ(Err::Ok, kernels[k]->mount("xv6_bento", "ssd0", "/mnt",
                                           "noflusher"));
      run_mutation_trace(*kernels[k], seed);
      ASSERT_EQ(Err::Ok, kernels[k]->umount("/mnt"));
    }
    auto& pd = *static_cast<blk::ParityDevice*>(devs[1]);
    ASSERT_EQ(devs[0]->nblocks(), pd.nblocks());
    std::array<std::byte, blk::kBlockSize> a{}, b{};
    std::uint64_t healthy_diffs = 0;
    for (std::uint64_t blk = 0; blk < devs[0]->nblocks(); ++blk) {
      devs[0]->read_untimed(blk, a);
      pd.read_untimed(blk, b);
      if (a != b) healthy_diffs += 1;
    }
    EXPECT_EQ(healthy_diffs, 0u) << "seed " << seed;
    // Degraded sweep: reconstruct member m's blocks from the others and
    // compare against the oracle (exercises every parity line the trace
    // wrote, without mutating the volume).
    for (std::size_t m = 0; m < pd.members(); ++m) {
      std::uint64_t degraded_diffs = 0;
      std::array<std::byte, blk::kBlockSize> rec{}, tmp{};
      for (std::uint64_t blk = 0; blk < pd.nblocks(); ++blk) {
        if (pd.data_member_of(blk) != m) continue;
        devs[0]->read_untimed(blk, a);
        rec.fill(std::byte{0});
        for (std::size_t o = 0; o < pd.members(); ++o) {
          if (o == m) continue;
          pd.member(o).read_untimed(pd.child_block_of(blk), tmp);
          for (std::size_t i = 0; i < blk::kBlockSize; ++i) rec[i] ^= tmp[i];
        }
        if (rec != a) degraded_diffs += 1;
      }
      EXPECT_EQ(degraded_diffs, 0u)
          << "seed " << seed << " lost member " << m;
    }
  }
}

}  // namespace
}  // namespace bsim::test
