// Tests for the benchmark workload generators: determinism, file-set
// geometry, op accounting, and smoke runs of every personality.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bugs/bugs.h"
#include "workloads/macro.h"
#include "workloads/micro.h"
#include "workloads/testbed.h"

namespace bsim::wl {
namespace {

TEST(UntarManifest, DeterministicForSameSeed) {
  const auto a = linux_tree_manifest(0.05, 42);
  const auto b = linux_tree_manifest(0.05, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(UntarManifest, ShapeMatchesLinuxTree) {
  const auto m = linux_tree_manifest(0.1, 1);
  std::uint64_t files = 0, dirs = 0, bytes = 0;
  std::set<std::string> dir_paths;
  for (const auto& e : m) {
    if (e.is_dir) {
      dirs += 1;
      dir_paths.insert(e.path);
    } else {
      files += 1;
      bytes += e.size;
    }
  }
  EXPECT_NEAR(static_cast<double>(files), 6200, 10);
  EXPECT_NEAR(static_cast<double>(dirs), 430, 20);
  // Mean file ~14 KB (long tail): total within a factor of the target.
  EXPECT_GT(bytes, files * 8'000);
  EXPECT_LT(bytes, files * 30'000);
  // Every file's parent directory appears before it in the manifest.
  std::set<std::string> seen;
  for (const auto& e : m) {
    const auto slash = e.path.rfind('/');
    const std::string parent = e.path.substr(0, slash);
    if (parent != "/mnt") {
      EXPECT_TRUE(seen.contains(parent)) << e.path;
    }
    if (e.is_dir) seen.insert(e.path);
  }
}

TEST(DeleteFilesWorkload, PartitionsAreDisjointAndComplete) {
  std::set<std::string> all;
  const int nthreads = 4;
  const std::uint64_t nfiles = 100;
  for (int t = 0; t < nthreads; ++t) {
    for (std::uint64_t i = t; i < nfiles;
         i += static_cast<std::uint64_t>(nthreads)) {
      auto [it, fresh] = all.insert(DeleteFiles::file_path(10, i));
      EXPECT_TRUE(fresh);
      (void)it;
    }
  }
  EXPECT_EQ(all.size(), nfiles);
}

TEST(Personalities, SmokeRunEveryWorkloadOnEveryFs) {
  for (const char* fs : {"xv6_bento", "xv6_vfs", "ext4j"}) {
    BedOptions opts;
    opts.fs = fs;
    opts.device_blocks = 32768;
    TestBed bed(opts);

    {
      std::vector<std::unique_ptr<sim::Workload>> jobs;
      SharedFile file;
      file.size = 8 << 20;
      jobs.push_back(
          std::make_unique<ReadMicro>(bed, file, true, 4096, 0, 1));
      sim::RunnerOptions ropts;
      ropts.max_ops = 200;
      auto stats = sim::run_workloads(jobs, ropts);
      EXPECT_EQ(stats.ops, 200u) << fs;
      EXPECT_EQ(stats.bytes, 200u * 4096u) << fs;
      EXPECT_GT(stats.ops_per_sec(), 0.0) << fs;
    }
    {
      std::vector<std::unique_ptr<sim::Workload>> jobs;
      SharedFile file;
      file.size = 8 << 20;
      jobs.push_back(
          std::make_unique<WriteMicro>(bed, file, false, 32768, 0, 2));
      sim::RunnerOptions ropts;
      ropts.max_ops = 50;
      auto stats = sim::run_workloads(jobs, ropts);
      EXPECT_EQ(stats.ops, 50u) << fs;
    }
    {
      std::vector<std::unique_ptr<sim::Workload>> jobs;
      jobs.push_back(std::make_unique<CreateFiles>(bed, 4096, 10, 0, 3));
      sim::RunnerOptions ropts;
      ropts.max_ops = 40;
      auto stats = sim::run_workloads(jobs, ropts);
      EXPECT_EQ(stats.ops, 40u) << fs;
    }
  }
}

TEST(Personalities, VarmailAndFileserverProgress) {
  BedOptions opts;
  opts.fs = "xv6_bento";
  opts.device_blocks = 65536;
  TestBed bed(opts);
  {
    auto set = std::make_shared<MailSet>();
    set->config.nfiles = 50;
    std::vector<std::unique_ptr<sim::Workload>> jobs;
    for (int t = 0; t < 4; ++t) {
      jobs.push_back(std::make_unique<Varmail>(bed, *set, t, 5));
    }
    sim::RunnerOptions ropts;
    ropts.max_ops = 60;
    auto stats = sim::run_workloads(jobs, ropts);
    EXPECT_EQ(stats.ops, 60u);
    EXPECT_GT(stats.bytes, 0u);
  }
  {
    auto set = std::make_shared<ServerSet>();
    set->config.nfiles = 40;
    std::vector<std::unique_ptr<sim::Workload>> jobs;
    for (int t = 0; t < 4; ++t) {
      jobs.push_back(std::make_unique<Fileserver>(bed, *set, t, 6));
    }
    sim::RunnerOptions ropts;
    ropts.max_ops = 40;
    auto stats = sim::run_workloads(jobs, ropts);
    EXPECT_EQ(stats.ops, 40u);
  }
}

TEST(Personalities, UntarRunsToCompletion) {
  BedOptions opts;
  opts.fs = "xv6_bento";
  opts.device_blocks = 65536;
  TestBed bed(opts);
  const auto manifest = linux_tree_manifest(0.01, 3);
  std::vector<std::unique_ptr<sim::Workload>> jobs;
  jobs.push_back(std::make_unique<Untar>(bed, manifest));
  sim::RunnerOptions ropts;
  ropts.horizon = 100'000 * sim::kSecond;
  auto stats = sim::run_workloads(jobs, ropts);
  EXPECT_EQ(stats.ops, manifest.size());
  // Spot-check the tree actually exists (needs a clock for the syscall).
  sim::SimThread checker(0);
  sim::ScopedThread in(checker);
  auto st = bed.kernel().stat(bed.proc(), manifest.back().path);
  EXPECT_TRUE(st.ok());
}

TEST(BugStudy, Table1MarginalsMatchThePaper) {
  const auto analysis = bugs::analyze(bugs::corpus());
  EXPECT_EQ(analysis.total, 74);
  EXPECT_EQ(analysis.memory, 50);
  EXPECT_EQ(analysis.concurrency, 11);
  EXPECT_EQ(analysis.type, 13);
  // §2.1's headline percentages.
  EXPECT_EQ(analysis.memory * 100 / analysis.total, 67);         // "68%"
  EXPECT_EQ(analysis.rust_preventable * 100 / analysis.total, 93);
  EXPECT_EQ(analysis.oops * 100 / analysis.total, 25);           // "26%"
  EXPECT_EQ(analysis.leaks * 100 / analysis.total, 33);          // "34%"
  // Leak share of memory bugs: "Of the memory bugs, 50% were ... leak".
  EXPECT_EQ(analysis.leaks * 100 / analysis.memory, 50);
}

TEST(BugStudy, RenderedTablesContainEveryRow) {
  const auto analysis = bugs::analyze(bugs::corpus());
  const std::string t1 = bugs::render_table1(analysis);
  for (const char* row :
       {"Use Before Allocate", "Double Free", "NULL Dereference",
        "Use After Free", "Over Allocation", "Out of Bounds",
        "Dangling Pointer", "Missing Free", "Reference Count Leak",
        "Deadlock", "Race Condition", "Unchecked Error Value"}) {
    EXPECT_NE(t1.find(row), std::string::npos) << row;
  }
  const std::string t2 = bugs::render_table2();
  EXPECT_NE(t2.find("Bento"), std::string::npos);
  EXPECT_NE(t2.find("eBPF"), std::string::npos);
}

TEST(TestBedVolumes, MountOptsSelectMirrorStripeAndRaid10) {
  // Every deployment mounts a mirrored volume purely by option string;
  // the same string combines with striping into RAID10.
  for (const char* fs :
       {"xv6_bento", "xv6_vfs", "xv6_fuse", "ext4j", "xv6_nvmlog"}) {
    BedOptions opts;
    opts.fs = fs;
    opts.device_blocks = 32768;
    opts.mount_opts = "mirror=2,policy=sq";
    TestBed bed(opts);
    auto* mirror = dynamic_cast<blk::MirroredDevice*>(&bed.device());
    ASSERT_NE(mirror, nullptr) << fs;
    EXPECT_EQ(mirror->members(), 2u) << fs;
    EXPECT_EQ(mirror->mirror().policy, blk::MirrorReadPolicy::ShortestQueue);
    EXPECT_EQ(mirror->nblocks(), 32768u) << fs;  // replicas are free
    // mkfs reached both replicas (untimed writes replicate too).
    std::array<std::byte, blk::kBlockSize> a{}, b{};
    mirror->member(0).read_untimed(1, a);
    mirror->member(1).read_untimed(1, b);
    EXPECT_EQ(a, b) << fs;
    EXPECT_NE(std::count(a.begin(), a.end(), std::byte{0}),
              static_cast<std::ptrdiff_t>(a.size()))
        << fs << ": superblock block is all zero";
  }

  BedOptions raid10;
  raid10.fs = "xv6_bento";
  raid10.device_blocks = 32768;
  raid10.mount_opts = "stripe=2,chunk=16,mirror=2";
  TestBed bed(raid10);
  auto* striped = dynamic_cast<blk::StripedDevice*>(&bed.device());
  ASSERT_NE(striped, nullptr);
  EXPECT_EQ(striped->fan_out(), 2u);
  EXPECT_EQ(striped->nblocks(), 32768u);
  for (std::size_t i = 0; i < 2; ++i) {
    auto* member = dynamic_cast<blk::MirroredDevice*>(&striped->fan_child(i));
    ASSERT_NE(member, nullptr) << i;
    EXPECT_EQ(member->members(), 2u);
  }
}

}  // namespace
}  // namespace bsim::wl
