// Unit tests for the virtual-time substrate: clocks, locks, batch gate,
// deterministic RNG, histogram, and the multi-thread runner.
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/thread.h"

namespace bsim::sim {
namespace {

TEST(SimThread, ChargesAndWaits) {
  SimThread t(0);
  ScopedThread in(t);
  charge(100);
  EXPECT_EQ(now(), 100);
  t.wait_until(50);  // in the past: no-op
  EXPECT_EQ(now(), 100);
  t.wait_until(250);
  EXPECT_EQ(now(), 250);
  t.wait(10);
  EXPECT_EQ(now(), 260);
}

TEST(SimThread, CpuScaleAppliesToChargesOnly) {
  SimThread t(0);
  t.set_cpu_scale(4.0);
  ScopedThread in(t);
  charge(100);
  EXPECT_EQ(now(), 400);
  t.wait_until(500);  // device waits are not scaled
  EXPECT_EQ(now(), 500);
  EXPECT_EQ(t.cpu_charged(), 100);  // unscaled accounting
}

TEST(SimMutex, SerializesInVirtualTime) {
  SimThread a(0);
  SimThread b(1);
  SimMutex mu;

  {
    ScopedThread in(a);
    mu.lock();
    charge(1000);
    mu.unlock();  // released at a.now()
  }
  {
    ScopedThread in(b);
    mu.lock();  // must wait until a released
    EXPECT_GE(now(), a.now());
    mu.unlock();
  }
  EXPECT_EQ(mu.acquires(), 2u);
  EXPECT_EQ(mu.contended_acquires(), 1u);
}

TEST(SimMutex, UncontendedIsCheap) {
  SimThread t(0);
  ScopedThread in(t);
  SimMutex mu;
  mu.lock();
  mu.unlock();
  EXPECT_EQ(now(), costs().lock_uncontended);
  EXPECT_EQ(mu.contended_acquires(), 0u);
}

TEST(SimRwLock, ReadersDoNotSerialize) {
  SimRwLock rw;
  SimThread a(0);
  SimThread b(1);
  {
    ScopedThread in(a);
    rw.lock_shared();
    charge(1000);
    rw.unlock_shared();
  }
  {
    ScopedThread in(b);
    rw.lock_shared();
    // b did not have to wait for a's read section.
    EXPECT_LT(now(), 1000);
    rw.unlock_shared();
  }
  SimThread c(2);
  {
    ScopedThread in(c);
    rw.lock();  // writer waits for last reader
    EXPECT_GE(now(), 1000);
    rw.unlock();
  }
}

TEST(BatchGate, SharesCostWithinWindow) {
  BatchGate gate(usec(100));
  SimThread a(0);
  SimThread b(1);
  Nanos done_a = 0;
  {
    ScopedThread in(a);
    done_a = gate.join(usec(500));
    EXPECT_EQ(done_a, usec(600));  // window + cost
  }
  {
    ScopedThread in(b);
    b.wait_until(usec(50));  // arrives within the window
    const Nanos done_b = gate.join(usec(500));
    EXPECT_EQ(done_b, done_a);  // shares the in-flight batch
  }
  EXPECT_EQ(gate.batches_started(), 1u);
  EXPECT_EQ(gate.joins(), 1u);

  SimThread c(2);
  {
    ScopedThread in(c);
    c.wait_until(usec(1000));  // far past the batch
    const Nanos done_c = gate.join(usec(500));
    EXPECT_EQ(done_c, usec(1600));
  }
  EXPECT_EQ(gate.batches_started(), 2u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowAndRangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SizeAroundRespectsBounds) {
  Rng rng(3);
  std::uint64_t sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = rng.size_around(16384, 1 << 20);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, std::uint64_t{1} << 20);
    sum += v;
  }
  const double mean = static_cast<double>(sum) / kSamples;
  EXPECT_GT(mean, 8000.0);   // roughly centered on the requested mean
  EXPECT_LT(mean, 32000.0);
}

TEST(LatencyHistogram, MeanMinMaxQuantiles) {
  LatencyHistogram h;
  for (Nanos v : {100, 200, 300, 400, 1000}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 400.0);
  EXPECT_GE(h.quantile(0.99), 512);  // log-bucket upper bound
}

TEST(LatencyHistogram, Merge) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

class FixedWork final : public Workload {
 public:
  FixedWork(Nanos per_op, int nops) : per_op_(per_op), remaining_(nops) {}
  std::int64_t step() override {
    if (remaining_ == 0) return -1;
    remaining_ -= 1;
    charge(per_op_);
    return 1;
  }

 private:
  Nanos per_op_;
  int remaining_;
};

TEST(Runner, SingleThreadRate) {
  std::vector<std::unique_ptr<Workload>> jobs;
  jobs.push_back(std::make_unique<FixedWork>(usec(10), 1000));
  RunnerOptions opts;
  opts.horizon = sec(1);
  auto stats = run_workloads(jobs, opts);
  EXPECT_EQ(stats.ops, 1000u);
  EXPECT_NEAR(stats.ops_per_sec(), 100000.0, 2000.0);
}

TEST(Runner, HorizonStopsWork) {
  std::vector<std::unique_ptr<Workload>> jobs;
  jobs.push_back(std::make_unique<FixedWork>(usec(100), 1 << 30));
  RunnerOptions opts;
  opts.horizon = msec(10);
  auto stats = run_workloads(jobs, opts);
  EXPECT_NEAR(static_cast<double>(stats.ops), 100.0, 3.0);
}

TEST(Runner, CpuContentionScalesThroughput) {
  // With 8 cores, 32 CPU-bound threads should aggregate to ~8x a single
  // thread's rate, not 32x.
  auto run_with = [](int nthreads) {
    std::vector<std::unique_ptr<Workload>> jobs;
    for (int i = 0; i < nthreads; ++i) {
      jobs.push_back(std::make_unique<FixedWork>(usec(10), 1 << 30));
    }
    RunnerOptions opts;
    opts.horizon = msec(100);
    opts.cpu_cores = 8;
    return run_workloads(jobs, opts).ops_per_sec();
  };
  const double one = run_with(1);
  const double eight = run_with(8);
  const double thirty_two = run_with(32);
  EXPECT_NEAR(eight / one, 8.0, 0.5);
  EXPECT_NEAR(thirty_two / one, 8.0, 0.5);  // capped at core count
}

TEST(Runner, MaxOpsCap) {
  std::vector<std::unique_ptr<Workload>> jobs;
  jobs.push_back(std::make_unique<FixedWork>(usec(1), 1 << 30));
  RunnerOptions opts;
  opts.horizon = sec(100);
  opts.max_ops = 500;
  auto stats = run_workloads(jobs, opts);
  EXPECT_EQ(stats.ops, 500u);
}

}  // namespace
}  // namespace bsim::sim
