// Tests for the composable overlay file system (paper §3 / Challenge 6):
// layer merging, copy-up, whiteouts, and mounting the overlay in the
// kernel like any other Bento module.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "bento/overlay.h"

namespace bsim::test {
namespace {

using kern::Err;

/// Build a UserMount over a formatted in-memory xv6 image.
std::unique_ptr<bento::UserMount> make_layer() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  EXPECT_EQ(Err::Ok, mount->mount_init());
  return mount;
}

void put_file(bento::UserMount& layer, bento::Ino dir, std::string_view name,
              std::string_view contents) {
  auto& fs = layer.fs();
  auto made = fs.create(layer.mkreq(), layer.borrow(), dir, name, 0644);
  ASSERT_TRUE(made.ok());
  auto w = fs.write(layer.mkreq(), layer.borrow(), made.value().ino, 0, 0,
                    as_bytes(contents));
  ASSERT_TRUE(w.ok());
  layer.check_borrows();
}

class OverlayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    auto lower = make_layer();
    // Pre-populate the read-only lower layer (the "container image").
    put_file(*lower, bento::kRootIno, "base.txt", "from the image");
    auto etc = lower->fs().mkdir(lower->mkreq(), lower->borrow(),
                                 bento::kRootIno, "etc", 0755);
    ASSERT_TRUE(etc.ok());
    put_file(*lower, etc.value().ino, "config", "default config");
    lower->check_borrows();

    auto upper = make_layer();
    lower_raw_ = lower.get();

    // Mount the overlay in the kernel like any other Bento module.
    blk::DeviceParams params;
    params.nblocks = 4096;  // the overlay itself needs no real device
    kernel_.add_device("ssd0", params);
    auto overlay = std::make_unique<bento::OverlayFs>(std::move(lower),
                                                      std::move(upper));
    overlay_raw_ = overlay.get();
    // Factory hands over the pre-built instance exactly once.
    auto* slot = new std::unique_ptr<bento::OverlayFs>(std::move(overlay));
    bento::register_bento_fs(kernel_, "overlay", [slot] {
      std::unique_ptr<bento::FileSystem> fs = std::move(*slot);
      delete slot;
      return fs;
    });
    ASSERT_EQ(Err::Ok, kernel_.mount("overlay", "ssd0", "/ov"));
  }

  kern::Process& proc() { return kernel_.proc(); }

  std::string read_all(const std::string& path) {
    auto fd = kernel_.open(proc(), path, kern::kORdOnly);
    if (!fd.ok()) return "<" + std::string(kern::err_name(fd.error())) + ">";
    std::vector<std::byte> buf(4096);
    auto r = kernel_.read(proc(), fd.value(), buf);
    (void)kernel_.close(proc(), fd.value());
    if (!r.ok()) return "<read err>";
    return to_string({buf.data(), r.value()});
  }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
  bento::OverlayFs* overlay_raw_ = nullptr;
  bento::UserMount* lower_raw_ = nullptr;
};

TEST_F(OverlayTest, LowerLayerFilesAreVisible) {
  EXPECT_EQ(read_all("/ov/base.txt"), "from the image");
  EXPECT_EQ(read_all("/ov/etc/config"), "default config");
}

TEST_F(OverlayTest, WriteTriggersCopyUpAndPreservesLower) {
  auto fd = kernel_.open(proc(), "/ov/base.txt", kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.pwrite(proc(), fd.value(), as_bytes("FROM"), 0).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  EXPECT_EQ(read_all("/ov/base.txt"), "FROM the image");
  EXPECT_EQ(overlay_raw_->copy_ups(), 1u);

  // The lower layer is untouched (the defining overlay property).
  auto& lfs = lower_raw_->fs();
  auto low = lfs.lookup(lower_raw_->mkreq(), lower_raw_->borrow(),
                        bento::kRootIno, "base.txt");
  ASSERT_TRUE(low.ok());
  std::vector<std::byte> buf(64);
  auto r = lfs.read(lower_raw_->mkreq(), lower_raw_->borrow(),
                    low.value().ino, 0, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "from the image");
}

TEST_F(OverlayTest, CopyUpInNestedDirectoryBuildsUpperChain) {
  auto fd = kernel_.open(proc(), "/ov/etc/config", kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.pwrite(proc(), fd.value(), as_bytes("customs"), 0).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(read_all("/ov/etc/config"), "customs config");
}

TEST_F(OverlayTest, DeleteLowerFileCreatesWhiteout) {
  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/ov/base.txt"));
  EXPECT_EQ(kernel_.stat(proc(), "/ov/base.txt").error(), Err::NoEnt);
  // Recreating after deletion works and shadows the lower file.
  auto fd = kernel_.open(proc(), "/ov/base.txt",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("reborn")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(read_all("/ov/base.txt"), "reborn");
}

TEST_F(OverlayTest, NewFilesGoToUpperLayer) {
  auto fd = kernel_.open(proc(), "/ov/fresh", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("new data")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(read_all("/ov/fresh"), "new data");
  EXPECT_EQ(overlay_raw_->copy_ups(), 0u);  // creation is not copy-up

  // Not present in the lower layer.
  auto low = lower_raw_->fs().lookup(lower_raw_->mkreq(),
                                     lower_raw_->borrow(), bento::kRootIno,
                                     "fresh");
  EXPECT_FALSE(low.ok());
}

TEST_F(OverlayTest, ReaddirMergesLayersAndHidesWhiteouts) {
  auto fd = kernel_.open(proc(), "/ov/upper-only",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.unlink(proc(), "/ov/base.txt"));

  auto entries = kernel_.readdir(proc(), "/ov");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : entries.value()) names.push_back(e.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "upper-only"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "etc"), names.end());
  // Deleted lower file hidden; whiteout markers never leak.
  EXPECT_EQ(std::find(names.begin(), names.end(), "base.txt"), names.end());
  for (const auto& n : names) EXPECT_FALSE(n.starts_with(".wh."));
}

TEST_F(OverlayTest, TruncateCopiesUp) {
  ASSERT_EQ(Err::Ok, kernel_.truncate(proc(), "/ov/base.txt", 4));
  EXPECT_EQ(read_all("/ov/base.txt"), "from");
  EXPECT_EQ(overlay_raw_->copy_ups(), 1u);
}

}  // namespace
}  // namespace bsim::test
