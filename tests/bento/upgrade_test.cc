// Tests for the online-upgrade component (§4.8): state transfer between
// file-system versions without unmounting, fallback to cold init, and
// failure containment (a failed upgrade leaves the old version running).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"

namespace bsim::test {
namespace {

using kern::Err;

class UpgradeTest : public BentoXv6Fixture {};

TEST_F(UpgradeTest, StateTransfersAndOperationsContinue) {
  // Build some state under v1.
  for (int i = 0; i < 20; ++i) {
    auto fd = kernel_.open(proc(), "/mnt/u" + std::to_string(i),
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("version one")).ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  }
  auto before = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(before.ok());

  auto* sb = kernel_.sb_at("/mnt");
  ASSERT_NE(sb, nullptr);
  auto* module = bento::BentoModule::from(*sb);
  ASSERT_NE(module, nullptr);
  EXPECT_EQ(module->fs().version(), "xv6fs-v1");

  // Upgrade to v2 of the same file system.
  xv6::Xv6FileSystem::Options v2;
  v2.version = "xv6fs-v2";
  ASSERT_EQ(Err::Ok,
            module->upgrade(std::make_unique<xv6::Xv6FileSystem>(v2)));
  EXPECT_EQ(module->fs().version(), "xv6fs-v2");
  EXPECT_EQ(module->stats().upgrades, 1u);

  // The new instance took over via restore_state, not a cold mount.
  auto& fs2 = static_cast<xv6::Xv6FileSystem&>(module->fs());
  EXPECT_TRUE(fs2.restored_from_transfer());

  // Free-space accounting survived the transfer exactly.
  auto after = kernel_.statfs(proc(), "/mnt");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().free_blocks, before.value().free_blocks);
  EXPECT_EQ(after.value().free_inodes, before.value().free_inodes);

  // Old files are readable, new operations work.
  auto fd = kernel_.open(proc(), "/mnt/u7", kern::kORdOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(32);
  auto r = kernel_.read(proc(), fd.value(), buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "version one");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  fd = kernel_.open(proc(), "/mnt/post-upgrade",
                    kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("v2 data")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(UpgradeTest, OpenFilesSurviveUpgrade) {
  auto fd = kernel_.open(proc(), "/mnt/live",
                         kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("before ")).ok());

  auto* module = bento::BentoModule::from(*kernel_.sb_at("/mnt"));
  xv6::Xv6FileSystem::Options v2;
  v2.version = "xv6fs-v2";
  ASSERT_EQ(Err::Ok,
            module->upgrade(std::make_unique<xv6::Xv6FileSystem>(v2)));

  // The fd opened against v1 keeps working against v2 ("transparently to
  // applications, except for a small delay").
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("after")).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  std::vector<std::byte> buf(32);
  auto r = kernel_.pread(proc(), fd.value(), buf, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "before after");
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

/// A file system with no transfer support: upgrade falls back to init().
class NoTransferFs final : public xv6::Xv6FileSystem {
 public:
  kern::Err restore_state(const bento::Request&, bento::SbRef,
                          bento::TransferableState) override {
    return kern::Err::NoSys;
  }
};

TEST_F(UpgradeTest, FallsBackToColdInit) {
  auto fd = kernel_.open(proc(), "/mnt/cold", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("x")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

  auto* module = bento::BentoModule::from(*kernel_.sb_at("/mnt"));
  ASSERT_EQ(Err::Ok, module->upgrade(std::make_unique<NoTransferFs>()));
  // Cold-attached: state rebuilt from disk, data still visible.
  auto st = kernel_.stat(proc(), "/mnt/cold");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 1u);
}

/// A successor whose restore fails outright.
class BrokenFs final : public bento::FileSystem {
 public:
  kern::Err init(const bento::Request&, bento::SbRef) override {
    return kern::Err::Io;
  }
  kern::Err restore_state(const bento::Request&, bento::SbRef,
                          bento::TransferableState) override {
    return kern::Err::Io;
  }
};

TEST_F(UpgradeTest, FailedUpgradeKeepsOldVersionRunning) {
  auto* module = bento::BentoModule::from(*kernel_.sb_at("/mnt"));
  EXPECT_EQ(module->upgrade(std::make_unique<BrokenFs>()), Err::Io);
  EXPECT_EQ(module->fs().version(), "xv6fs-v1");
  EXPECT_EQ(module->stats().upgrades, 0u);

  // Still fully operational.
  auto fd = kernel_.open(proc(), "/mnt/still-alive",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(UpgradeTest, RepeatedUpgradesChainState) {
  for (int gen = 2; gen <= 5; ++gen) {
    auto fd = kernel_.open(proc(), "/mnt/gen" + std::to_string(gen),
                           kern::kOCreat | kern::kOWrOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));

    auto* module = bento::BentoModule::from(*kernel_.sb_at("/mnt"));
    xv6::Xv6FileSystem::Options v;
    v.version = "xv6fs-v" + std::to_string(gen);
    ASSERT_EQ(Err::Ok,
              module->upgrade(std::make_unique<xv6::Xv6FileSystem>(v)));
    EXPECT_EQ(module->fs().version(), "xv6fs-v" + std::to_string(gen));
  }
  for (int gen = 2; gen <= 5; ++gen) {
    EXPECT_TRUE(kernel_.stat(proc(), "/mnt/gen" + std::to_string(gen)).ok());
  }
  EXPECT_EQ(bento::BentoModule::from(*kernel_.sb_at("/mnt"))->stats().upgrades,
            4u);
}

}  // namespace
}  // namespace bsim::test
