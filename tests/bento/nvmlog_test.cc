// Tests for the Strata-style NVM op-log file system (paper §3): overlay
// correctness, digest write-through, fsync-at-barrier-cost, and crash
// recovery from the persisted log (including torn-tail detection).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "bento/nvmlog.h"

namespace bsim::test {
namespace {

using bento::Ino;
using kern::Err;

/// Harness: NvmLogFs over xv6 on one shared MemBlockBackend/superblock,
/// with direct access to the lower FS (bypassing the log) and the NVM
/// region (for crash simulation).
class NvmLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    nvm_ = std::make_shared<blk::NvmRegion>(blk::NvmParams{});
    remount(/*fresh_device=*/true);
  }

  /// Build (or rebuild, after a crash) the mount. The NVM region always
  /// survives; the device survives unless fresh_device.
  void remount(bool fresh_device) {
    mount_.reset();
    if (fresh_device) {
      blk::DeviceParams params;
      params.nblocks = 8192;
      blk::BlockDevice scratch(params);
      const auto dsb = xv6::mkfs(scratch, 512);
      backend_image_.clear();
      std::array<std::byte, blk::kBlockSize> buf{};
      for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
        scratch.read_untimed(b, buf);
        backend_image_.push_back({b, buf});
      }
    }
    auto backend = std::make_unique<bento::MemBlockBackend>(8192);
    {
      auto cap = bento::CapTestAccess::make(*backend);
      for (const auto& [blockno, data] : backend_image_) {
        auto bh = cap->getblk(blockno);
        std::memcpy(bh.value().data().data(), data.data(), data.size());
      }
      if (!fresh_device && lower_image_) {
        // Restore the full device image captured at crash time.
        for (std::uint64_t b = 0; b < lower_image_->size(); ++b) {
          auto bh = cap->getblk(b);
          std::memcpy(bh.value().data().data(), (*lower_image_)[b].data(),
                      blk::kBlockSize);
        }
      }
    }
    backend_raw_ = backend.get();
    bento::NvmLogFs::Options opts;
    opts.digest_watermark = 4ull << 20;
    auto fs = std::make_unique<bento::NvmLogFs>(
        std::make_unique<xv6::Xv6FileSystem>(), nvm_, opts);
    fs_ = fs.get();
    mount_ = std::make_unique<bento::UserMount>(std::move(backend),
                                                std::move(fs));
    ASSERT_EQ(Err::Ok, mount_->mount_init());
  }

  /// Simulate power loss: NVM loses unbarriered stores; the in-memory
  /// block device (standing in for the disk) is captured as-is — the
  /// durability question under test is the *log's*, the lower xv6 journal
  /// has its own crash suite.
  void crash_and_remount() {
    auto image = std::make_unique<std::vector<std::array<std::byte, blk::kBlockSize>>>(
        8192);
    {
      auto cap = bento::CapTestAccess::make(*backend_raw_);
      for (std::uint64_t b = 0; b < 8192; ++b) {
        auto bh = cap->getblk(b);
        std::memcpy((*image)[b].data(), bh.value().data().data(),
                    blk::kBlockSize);
      }
    }
    lower_image_ = std::move(image);
    mount_->abandon();  // power loss: no orderly unmount, no digest
    nvm_->crash();
    mount_.reset();
    remount(/*fresh_device=*/false);
  }

  Ino create_file(std::string_view name) {
    auto made = fs_->create(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                            name, 0644);
    EXPECT_TRUE(made.ok());
    mount_->check_borrows();
    return made.value().ino;
  }

  void write_at(Ino ino, std::uint64_t off, std::string_view data) {
    auto w = fs_->write(mount_->mkreq(), mount_->borrow(), ino, 0, off,
                        as_bytes(data));
    ASSERT_TRUE(w.ok());
    mount_->check_borrows();
  }

  std::string read_at(Ino ino, std::uint64_t off, std::size_t n) {
    std::vector<std::byte> buf(n);
    auto r = fs_->read(mount_->mkreq(), mount_->borrow(), ino, 0, off, buf);
    EXPECT_TRUE(r.ok());
    mount_->check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  std::string read_lower(Ino ino, std::uint64_t off, std::size_t n) {
    std::vector<std::byte> buf(n);
    auto r = fs_->lower().read(mount_->mkreq(), mount_->borrow(), ino, 0, off,
                               buf);
    EXPECT_TRUE(r.ok());
    mount_->check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  void fsync_file(Ino ino) {
    ASSERT_EQ(Err::Ok,
              fs_->fsync(mount_->mkreq(), mount_->borrow(), ino, 0, false));
    mount_->check_borrows();
  }

  void digest() {
    ASSERT_EQ(Err::Ok, fs_->digest(mount_->mkreq(), mount_->borrow()));
    mount_->check_borrows();
  }

  sim::SimThread thread_{0};
  std::shared_ptr<blk::NvmRegion> nvm_;
  std::vector<std::pair<std::uint32_t, std::array<std::byte, blk::kBlockSize>>>
      backend_image_;
  std::unique_ptr<std::vector<std::array<std::byte, blk::kBlockSize>>>
      lower_image_;
  bento::MemBlockBackend* backend_raw_ = nullptr;
  std::unique_ptr<bento::UserMount> mount_;
  bento::NvmLogFs* fs_ = nullptr;
};

TEST_F(NvmLogTest, WriteGoesToLogNotLower) {
  const Ino ino = create_file("fast.txt");
  write_at(ino, 0, "logged, not written through");
  EXPECT_EQ("logged, not written through", read_at(ino, 0, 27));
  // The lower FS has not seen the data.
  EXPECT_EQ("", read_lower(ino, 0, 27));
  EXPECT_EQ(1U, fs_->stats().log_appends);
  EXPECT_GT(nvm_->stats().bytes_written, 27U);
}

TEST_F(NvmLogTest, GetattrReflectsLoggedSize) {
  const Ino ino = create_file("sized.txt");
  write_at(ino, 100, std::string(50, 's'));
  auto attr = fs_->getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(150U, attr.value().size);
  mount_->check_borrows();
}

TEST_F(NvmLogTest, OverlappingWritesLastWins) {
  const Ino ino = create_file("overlap.txt");
  write_at(ino, 0, "aaaaaaaaaa");
  write_at(ino, 3, "BBB");
  write_at(ino, 5, "cccc");
  EXPECT_EQ("aaaBBcccca", read_at(ino, 0, 10));
}

TEST_F(NvmLogTest, ReadMergesLowerAndLoggedData) {
  const Ino ino = create_file("mixed.txt");
  write_at(ino, 0, "0123456789");
  digest();  // now in the lower FS
  EXPECT_EQ("0123456789", read_lower(ino, 0, 10));
  write_at(ino, 4, "XY");  // logged only
  EXPECT_EQ("0123XY6789", read_at(ino, 0, 10));
}

TEST_F(NvmLogTest, HoleBetweenLowerEofAndLoggedExtentReadsZero) {
  const Ino ino = create_file("hole.txt");
  write_at(ino, 0, "head");
  digest();
  write_at(ino, 10, "tail");
  const std::string got = read_at(ino, 0, 14);
  ASSERT_EQ(14U, got.size());
  EXPECT_EQ("head", got.substr(0, 4));
  EXPECT_EQ(std::string(6, '\0'), got.substr(4, 6));
  EXPECT_EQ("tail", got.substr(10, 4));
}

TEST_F(NvmLogTest, DigestWritesThroughAndTruncatesLog) {
  const Ino ino = create_file("digested.txt");
  const std::string data(10000, 'd');
  write_at(ino, 0, data);
  EXPECT_GT(fs_->pending_bytes(), 0U);

  digest();
  EXPECT_EQ(0U, fs_->pending_bytes());
  EXPECT_EQ(1U, fs_->stats().digests);
  EXPECT_EQ(data, read_lower(ino, 0, data.size()));
  EXPECT_EQ(data, read_at(ino, 0, data.size()));
}

TEST_F(NvmLogTest, WatermarkTriggersAutoDigest) {
  const Ino ino = create_file("auto.txt");
  const std::string chunk(64 * 1024, 'w');
  // 4 MiB watermark: ~64 chunks force at least one digest.
  for (int i = 0; i < 80; ++i) {
    write_at(ino, static_cast<std::uint64_t>(i) * chunk.size(), chunk);
  }
  EXPECT_GE(fs_->stats().digests, 1U);
  // All data readable regardless of which side of the digest it is on.
  EXPECT_EQ(chunk, read_at(ino, 42ull * chunk.size(), chunk.size()));
}

TEST_F(NvmLogTest, FsyncIsOneBarrierNoBlockIo) {
  const Ino ino = create_file("sync.txt");
  write_at(ino, 0, "durable");
  const auto barriers_before = nvm_->stats().barriers;
  const auto t0 = sim::now();
  fsync_file(ino);
  const auto dt = sim::now() - t0;
  EXPECT_EQ(barriers_before + 1, nvm_->stats().barriers);
  // Strata's point: fsync costs a persist barrier, not a journal commit.
  EXPECT_LE(dt, 2 * blk::NvmParams{}.barrier);
  EXPECT_EQ("", read_lower(ino, 0, 7));  // still nothing on the "disk"
}

TEST_F(NvmLogTest, PersistedWritesSurviveCrash) {
  const Ino ino = create_file("precious.txt");
  write_at(ino, 0, "must survive");
  fsync_file(ino);  // barrier: log records durable

  crash_and_remount();

  EXPECT_EQ("must survive", read_at(ino, 0, 12));
  EXPECT_GE(fs_->stats().recovered_records, 1U);
}

TEST_F(NvmLogTest, UnbarrieredTailIsLostButPrefixSurvives) {
  const Ino ino = create_file("partial.txt");
  write_at(ino, 0, "persisted-part");
  fsync_file(ino);
  write_at(ino, 100, "volatile-part");  // never barriered

  crash_and_remount();

  EXPECT_EQ("persisted-part", read_at(ino, 0, 14));
  auto attr = fs_->getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(14U, attr.value().size);  // the tail write is gone
  mount_->check_borrows();
}

// Offset into the second record's payload: records are header(40B) +
// payload, appended back to back from offset 0.
std::size_t offset_into_second_record_payload() {
  const std::size_t header = 48;
  return header + 11 + header + 4;
}

TEST_F(NvmLogTest, CorruptedRecordStopsReplayAtTear) {
  const Ino ino = create_file("torn.txt");
  write_at(ino, 0, "good record");
  write_at(ino, 50, "doomed record");
  fsync_file(ino);

  // Corrupt the second record's payload directly in NVM (bit rot / torn
  // line), then persist the corruption so the crash keeps it.
  std::array<std::byte, 1> evil{std::byte{0xff}};
  nvm_->write(offset_into_second_record_payload(), evil);
  nvm_->persist_barrier();

  crash_and_remount();
  EXPECT_EQ("good record", read_at(ino, 0, 11));
  EXPECT_EQ(1U, fs_->stats().torn_records_dropped);
  EXPECT_EQ(1U, fs_->stats().recovered_records);
}

TEST_F(NvmLogTest, DigestedStateNeedsNoLog) {
  const Ino ino = create_file("settled.txt");
  write_at(ino, 0, "settled data");
  digest();

  crash_and_remount();  // log is empty (truncated at digest + barrier)
  EXPECT_EQ(0U, fs_->stats().recovered_records);
  EXPECT_EQ("settled data", read_at(ino, 0, 12));
}

TEST_F(NvmLogTest, UnlinkDropsPendingExtents) {
  const Ino ino = create_file("victim.txt");
  write_at(ino, 0, "doomed");
  EXPECT_GT(fs_->pending_bytes(), 0U);
  ASSERT_EQ(Err::Ok, fs_->unlink(mount_->mkreq(), mount_->borrow(),
                                 bento::kRootIno, "victim.txt"));
  mount_->check_borrows();
  EXPECT_EQ(0U, fs_->pending_bytes());

  // An inode-number reuse must not see the ghost.
  const Ino reuse = create_file("fresh.txt");
  if (reuse == ino) {
    EXPECT_EQ("", read_at(reuse, 0, 6));
  }
}

TEST_F(NvmLogTest, TruncateDropsPendingBeyondNewSize) {
  const Ino ino = create_file("trunc.txt");
  write_at(ino, 0, std::string(200, 't'));
  bento::SetAttrIn in;
  in.set_size = true;
  in.size = 100;
  auto r = fs_->setattr(mount_->mkreq(), mount_->borrow(), ino, in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(100U, r.value().size);
  mount_->check_borrows();
  EXPECT_EQ(std::string(100, 't'), read_at(ino, 0, 200));
}

// ---- randomized overlay property sweep ----
//
// The extent overlay (split/trim/merge on overlapping writes) is compared
// against a flat byte-array model under random write/truncate/digest/
// remount-after-fsync patterns.
struct OverlayCase {
  std::uint64_t seed;
  bool digest_sometimes;
};

class NvmLogOverlayProperty
    : public NvmLogTest,
      public ::testing::WithParamInterface<OverlayCase> {};

TEST_P(NvmLogOverlayProperty, MatchesFlatBufferModel) {
  const auto [seed, digest_sometimes] = GetParam();
  sim::Rng rng(seed);
  const Ino ino = create_file("prop.bin");
  std::string model;  // the whole file as a flat byte array

  for (int step = 0; step < 120; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 70) {
      // Random write: offset within [0, 40000), size [1, 3000).
      const std::uint64_t off = rng.below(40000);
      const std::size_t len = 1 + rng.below(2999);
      std::string data(len, static_cast<char>('a' + rng.below(26)));
      write_at(ino, off, data);
      if (model.size() < off + len) model.resize(off + len, '\0');
      model.replace(static_cast<std::size_t>(off), len, data);
    } else if (dice < 80 && !model.empty()) {
      // Truncate to a random size.
      const std::uint64_t nsize = rng.below(model.size() + 1);
      bento::SetAttrIn in;
      in.set_size = true;
      in.size = nsize;
      auto r = fs_->setattr(mount_->mkreq(), mount_->borrow(), ino, in);
      ASSERT_TRUE(r.ok());
      mount_->check_borrows();
      model.resize(nsize, '\0');
    } else if (dice < 90 && digest_sometimes) {
      digest();
    } else {
      // Spot-check a random window.
      if (model.empty()) continue;
      const std::uint64_t off = rng.below(model.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(4000), model.size() - off);
      ASSERT_EQ(model.substr(static_cast<std::size_t>(off), len),
                read_at(ino, off, len))
          << "step " << step << " window " << off << "+" << len;
    }
  }

  // Full-file comparison, then again after digest and after a persisted
  // crash + replay.
  ASSERT_EQ(model, read_at(ino, 0, model.size() + 100));
  auto attr = fs_->getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(model.size(), attr.value().size);
  mount_->check_borrows();

  fsync_file(ino);
  crash_and_remount();
  EXPECT_EQ(model, read_at(ino, 0, model.size() + 100));

  digest();
  EXPECT_EQ(model, read_at(ino, 0, model.size() + 100));
}

INSTANTIATE_TEST_SUITE_P(
    RandomPatterns, NvmLogOverlayProperty,
    ::testing::Values(OverlayCase{11, false}, OverlayCase{12, false},
                      OverlayCase{13, true}, OverlayCase{14, true},
                      OverlayCase{15, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.digest_sometimes ? "_digest" : "_logonly");
    });

TEST_F(NvmLogTest, SyncFsDigestsEverything) {
  const Ino a = create_file("a.txt");
  const Ino b = create_file("b.txt");
  write_at(a, 0, "alpha");
  write_at(b, 0, "beta");
  ASSERT_EQ(Err::Ok, fs_->sync_fs(mount_->mkreq(), mount_->borrow()));
  mount_->check_borrows();
  EXPECT_EQ(0U, fs_->pending_bytes());
  EXPECT_EQ("alpha", read_lower(a, 0, 5));
  EXPECT_EQ("beta", read_lower(b, 0, 4));
}

}  // namespace
}  // namespace bsim::test
