// Composition tests (paper §3.4 / Challenge 6): Bento's answer to
// stackable file systems is direct FileSystem-to-FileSystem dispatch, so
// the layers must compose arbitrarily. We stack three deep — encryption
// over an overlay over xv6 — and check the combined semantics: container-
// style upper/lower merging underneath, ciphertext at rest in the upper
// layer, plaintext through the top.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "bento/crypt.h"
#include "bento/overlay.h"

namespace bsim::test {
namespace {

using kern::Err;

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  EXPECT_EQ(Err::Ok, mount->mount_init());
  return mount;
}

/// crypt( overlay( lower=xv6, upper=xv6 ) )
class CompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);

    auto lower = make_xv6_mount();
    // Seed the read-only image with a base file (plaintext on the image,
    // like a container base layer distributed unencrypted).
    {
      auto& fs = lower->fs();
      auto made = fs.create(lower->mkreq(), lower->borrow(), bento::kRootIno,
                            "base.txt", 0644);
      ASSERT_TRUE(made.ok());
      auto w = fs.write(lower->mkreq(), lower->borrow(), made.value().ino, 0,
                        0, as_bytes("image contents"));
      ASSERT_TRUE(w.ok());
      lower->check_borrows();
    }
    auto upper = make_xv6_mount();

    auto overlay = std::make_unique<bento::OverlayFs>(std::move(lower),
                                                      std::move(upper));
    overlay_raw_ = overlay.get();
    auto overlay_mount = std::make_unique<bento::UserMount>(
        std::make_unique<bento::MemBlockBackend>(64), std::move(overlay));
    ASSERT_EQ(Err::Ok, overlay_mount->mount_init());

    auto crypt = std::make_unique<bento::CryptFs>(
        std::move(overlay_mount), bento::derive_key("stack", "salt", 64));
    crypt_raw_ = crypt.get();
    top_ = std::make_unique<bento::UserMount>(
        std::make_unique<bento::MemBlockBackend>(64), std::move(crypt));
    ASSERT_EQ(Err::Ok, top_->mount_init());
  }

  bento::Ino lookup_top(std::string_view name) {
    auto r = crypt_raw_->lookup(top_->mkreq(), top_->borrow(),
                                bento::kRootIno, name);
    EXPECT_TRUE(r.ok()) << name;
    top_->check_borrows();
    return r.ok() ? r.value().ino : 0;
  }

  std::string read_top(bento::Ino ino, std::size_t n) {
    std::vector<std::byte> buf(n);
    auto r = crypt_raw_->read(top_->mkreq(), top_->borrow(), ino, 0, 0, buf);
    EXPECT_TRUE(r.ok());
    top_->check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  sim::SimThread thread_{0};
  std::unique_ptr<bento::UserMount> top_;
  bento::CryptFs* crypt_raw_ = nullptr;
  bento::OverlayFs* overlay_raw_ = nullptr;
};

TEST_F(CompositionTest, WritesThroughAllThreeLayers) {
  auto made = crypt_raw_->create(top_->mkreq(), top_->borrow(),
                                 bento::kRootIno, "new.txt", 0644);
  ASSERT_TRUE(made.ok());
  top_->check_borrows();
  auto w = crypt_raw_->write(top_->mkreq(), top_->borrow(), made.value().ino,
                             0, 0, as_bytes("through the stack"));
  ASSERT_TRUE(w.ok());
  top_->check_borrows();
  EXPECT_EQ("through the stack", read_top(made.value().ino, 17));
}

TEST_F(CompositionTest, CopyUpHappensBelowTheCipher) {
  // NOTE: the base file was written unencrypted into the lower image, so
  // reading it through the crypt layer yields cipher-decoded bytes — this
  // test exercises the *write* path: writing to a lower-layer file
  // triggers the overlay's copy-up, and the new upper-layer bytes are the
  // crypt layer's ciphertext.
  const auto ino = lookup_top("base.txt");
  ASSERT_NE(0U, ino);
  const auto before = overlay_raw_->copy_ups();
  auto w = crypt_raw_->write(top_->mkreq(), top_->borrow(), ino, 0, 0,
                             as_bytes("REWRITTEN-BY-CRYPT"));
  ASSERT_TRUE(w.ok());
  top_->check_borrows();
  EXPECT_GT(overlay_raw_->copy_ups(), before);
  EXPECT_EQ("REWRITTEN-BY-CRYPT", read_top(ino, 18));
}

TEST_F(CompositionTest, UpperLayerHoldsCiphertext) {
  auto made = crypt_raw_->create(top_->mkreq(), top_->borrow(),
                                 bento::kRootIno, "secret.txt", 0644);
  ASSERT_TRUE(made.ok());
  top_->check_borrows();
  const std::string msg = "nothing to see in the container layer";
  auto w = crypt_raw_->write(top_->mkreq(), top_->borrow(), made.value().ino,
                             0, 0, as_bytes(msg));
  ASSERT_TRUE(w.ok());
  top_->check_borrows();

  // Read the same file through the overlay directly (below the cipher).
  auto& overlay_mount = crypt_raw_->lower();
  auto looked = overlay_mount.fs().lookup(overlay_mount.mkreq(),
                                          overlay_mount.borrow(),
                                          bento::kRootIno, "secret.txt");
  ASSERT_TRUE(looked.ok());
  std::vector<std::byte> buf(msg.size());
  auto r = overlay_mount.fs().read(overlay_mount.mkreq(),
                                   overlay_mount.borrow(),
                                   looked.value().ino, 0, 0, buf);
  ASSERT_TRUE(r.ok());
  overlay_mount.check_borrows();
  EXPECT_NE(msg, to_string(buf));
  EXPECT_EQ(std::string::npos, to_string(buf).find("container"));
}

TEST_F(CompositionTest, ReaddirComposesThroughTheStack) {
  auto made = crypt_raw_->create(top_->mkreq(), top_->borrow(),
                                 bento::kRootIno, "upper-only.txt", 0644);
  ASSERT_TRUE(made.ok());
  top_->check_borrows();

  std::vector<std::string> names;
  std::uint64_t pos = 0;
  auto rd = crypt_raw_->readdir(top_->mkreq(), top_->borrow(),
                                bento::kRootIno, pos,
                                [&](const kern::DirEnt& e) {
                                  names.push_back(e.name);
                                  return true;
                                });
  EXPECT_EQ(Err::Ok, rd);
  top_->check_borrows();
  // Both the lower-image file and the new file are visible, merged.
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "base.txt"));
  EXPECT_NE(names.end(),
            std::find(names.begin(), names.end(), "upper-only.txt"));
}

TEST_F(CompositionTest, AllLedgersBalancedAfterStackedOps) {
  auto made = crypt_raw_->create(top_->mkreq(), top_->borrow(),
                                 bento::kRootIno, "bal.txt", 0644);
  ASSERT_TRUE(made.ok());
  top_->check_borrows();
  (void)read_top(made.value().ino, 1);
  EXPECT_TRUE(top_->ledger().balanced());
  EXPECT_TRUE(crypt_raw_->lower().ledger().balanced());
}

}  // namespace
}  // namespace bsim::test
