// Unit tests for the Bento ownership model (§4.4) and capability types
// (§4.6-§4.7): borrow accounting, reborrowing, RAII buffer handles, and
// the framework's post-call contract checks.
#include <gtest/gtest.h>

#include <utility>

#include "bento/kernel_services.h"
#include "bento/ownership.h"
#include "bento/user.h"
#include "sim/thread.h"

namespace bsim::bento {
namespace {

struct Dummy {
  int value = 7;
};

TEST(Ownership, BorrowCountsWhileAlive) {
  BorrowLedger ledger;
  Dummy obj;
  EXPECT_TRUE(ledger.balanced());
  {
    Borrowed<Dummy> b(obj, ledger);
    EXPECT_EQ(ledger.outstanding(), 1);
    EXPECT_FALSE(ledger.balanced());
    EXPECT_EQ(b->value, 7);
  }
  EXPECT_TRUE(ledger.balanced());
  EXPECT_EQ(ledger.total(), 1);
}

TEST(Ownership, MoveTransfersTheBorrow) {
  BorrowLedger ledger;
  Dummy obj;
  Borrowed<Dummy> a(obj, ledger);
  Borrowed<Dummy> b = std::move(a);
  EXPECT_EQ(ledger.outstanding(), 1);  // still exactly one borrow
  EXPECT_EQ(b->value, 7);
}

TEST(Ownership, ReborrowNestsAndUnwinds) {
  BorrowLedger ledger;
  Dummy obj;
  Borrowed<Dummy> a(obj, ledger);
  {
    auto b = a.reborrow();
    EXPECT_EQ(ledger.outstanding(), 2);
    EXPECT_EQ(b->value, 7);
  }
  EXPECT_EQ(ledger.outstanding(), 1);
}

TEST(Ownership, EscapedBorrowIsDetected) {
  // A file system that stores a borrowed capability (what safe Rust would
  // reject at compile time) leaves the ledger unbalanced — the runtime
  // check the framework asserts after every call.
  BorrowLedger ledger;
  Dummy obj;
  auto* escaped = new Borrowed<Dummy>(obj, ledger);
  EXPECT_FALSE(ledger.balanced());
  delete escaped;
  EXPECT_TRUE(ledger.balanced());
}

class CapabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  sim::SimThread thread_{0};
};

TEST_F(CapabilityTest, BufferHandleReleasesOnDestruction) {
  blk::DeviceParams p;
  p.nblocks = 64;
  blk::BlockDevice dev(p);
  kern::BufferCache cache(dev, 8);
  KernelBlockBackend backend(cache);
  auto cap = CapTestAccess::make(backend);

  {
    auto bh = cap->bread(3);
    ASSERT_TRUE(bh.ok());
    EXPECT_EQ(cache.outstanding_refs(), 1u);
    EXPECT_EQ(bh.value().data().size(), blk::kBlockSize);
  }
  // RAII: the handle's destructor performed brelse.
  EXPECT_EQ(cache.outstanding_refs(), 0u);
}

TEST_F(CapabilityTest, BufferHandleMoveKeepsSingleReference) {
  blk::DeviceParams p;
  p.nblocks = 64;
  blk::BlockDevice dev(p);
  kern::BufferCache cache(dev, 8);
  KernelBlockBackend backend(cache);
  auto cap = CapTestAccess::make(backend);

  auto bh = cap->bread(3);
  ASSERT_TRUE(bh.ok());
  BufferHeadHandle moved = std::move(bh.value());
  EXPECT_EQ(cache.outstanding_refs(), 1u);
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(bh.value()));
  moved.reset();
  EXPECT_EQ(cache.outstanding_refs(), 0u);
}

TEST_F(CapabilityTest, SyncWritesThrough) {
  blk::DeviceParams p;
  p.nblocks = 64;
  blk::BlockDevice dev(p);
  kern::BufferCache cache(dev, 8);
  KernelBlockBackend backend(cache);
  auto cap = CapTestAccess::make(backend);

  auto bh = cap->getblk(5);
  ASSERT_TRUE(bh.ok());
  bh.value().data()[0] = std::byte{0xEE};
  bh.value().set_dirty();
  bh.value().sync();
  std::array<std::byte, blk::kBlockSize> r{};
  dev.read_untimed(5, r);
  EXPECT_EQ(r[0], std::byte{0xEE});
}

TEST_F(CapabilityTest, MemBackendForDebugRig) {
  // The §4.9 debugging configuration: the same capability surface over a
  // purely in-memory backend, no kernel anywhere.
  MemBlockBackend backend(32);
  auto cap = CapTestAccess::make(backend);
  auto bh = cap->getblk(1);
  ASSERT_TRUE(bh.ok());
  bh.value().data()[10] = std::byte{0x42};
  bh.value().reset();
  auto again = cap->bread(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().data()[10], std::byte{0x42});
}

TEST_F(CapabilityTest, OutOfRangeBlockRejected) {
  MemBlockBackend backend(4);
  auto cap = CapTestAccess::make(backend);
  auto bh = cap->bread(99);
  EXPECT_FALSE(bh.ok());
}

}  // namespace
}  // namespace bsim::bento
