// Tests for the encryption stacking file system (paper §3.4, the ecryptfs
// use case) and its ChaCha20 cipher, including the RFC 8439 vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../testutil.h"
#include "bento/chacha.h"
#include "bento/crypt.h"

namespace bsim::test {
namespace {

using bento::ChaChaKey;
using bento::ChaChaNonce;
using kern::Err;

// ---- ChaCha20 primitive ----

TEST(ChaCha20Test, Rfc8439BlockFunctionVector) {
  // RFC 8439 §2.3.2: key 00 01 .. 1f, nonce 00:00:00:09:00:00:00:4a:00:00:
  // 00:00, counter 1.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[3] = 0x09;
  nonce[7] = 0x4a;
  const auto block = bento::chacha20_block(key, nonce, 1);

  static constexpr std::uint8_t kExpected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(0, std::memcmp(block.data(), kExpected, 64));
}

TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  // RFC 8439 §2.4.2: the "Ladies and Gentlemen" plaintext, counter 1.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[7] = 0x4a;

  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::byte> buf(plaintext.size());
  std::memcpy(buf.data(), plaintext.data(), plaintext.size());
  // Counter starts at 1 = keystream byte offset 64.
  bento::chacha20_xor(key, nonce, 64, buf);

  static constexpr std::uint8_t kCipherHead[16] = {
      0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80,
      0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d, 0x69, 0x81};
  static constexpr std::uint8_t kCipherTail[10] = {
      0xb4, 0x0b, 0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d};  // last 10
  EXPECT_EQ(0, std::memcmp(buf.data(), kCipherHead, sizeof kCipherHead));
  EXPECT_EQ(0, std::memcmp(buf.data() + buf.size() - sizeof kCipherTail,
                           kCipherTail, sizeof kCipherTail));

  // Involution: XOR again restores the plaintext.
  bento::chacha20_xor(key, nonce, 64, buf);
  EXPECT_EQ(plaintext, to_string(buf));
}

TEST(ChaCha20Test, XorIsOffsetConsistent) {
  // Ciphering a buffer in arbitrary slices must equal ciphering it whole —
  // the property CryptFs relies on for unaligned reads and writes.
  ChaChaKey key{};
  key[0] = 0xab;
  ChaChaNonce nonce{};
  std::vector<std::byte> whole(1000);
  for (std::size_t i = 0; i < whole.size(); ++i)
    whole[i] = static_cast<std::byte>(i * 7);
  std::vector<std::byte> sliced = whole;

  bento::chacha20_xor(key, nonce, 0, whole);
  std::size_t at = 0;
  for (const std::size_t len : {1UL, 63UL, 64UL, 65UL, 300UL, 507UL}) {
    bento::chacha20_xor(key, nonce, at,
                        std::span<std::byte>(sliced).subspan(at, len));
    at += len;
  }
  ASSERT_EQ(at, whole.size());
  EXPECT_EQ(whole, sliced);
}

TEST(ChaCha20Test, KdfIsDeterministicAndSaltSensitive) {
  const auto k1 = bento::derive_key("hunter2", "salt-a", 128);
  const auto k2 = bento::derive_key("hunter2", "salt-a", 128);
  const auto k3 = bento::derive_key("hunter2", "salt-b", 128);
  const auto k4 = bento::derive_key("hunter3", "salt-a", 128);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k4);
}

// ---- CryptFs stacked over xv6 ----

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  EXPECT_EQ(Err::Ok, mount->mount_init());
  return mount;
}

class CryptFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    auto lower = make_xv6_mount();
    lower_raw_ = lower.get();
    auto crypt = std::make_unique<bento::CryptFs>(
        std::move(lower), bento::derive_key("test-pass", "test-salt", 64));
    fs_ = crypt.get();
    mount_ = std::make_unique<bento::UserMount>(
        std::make_unique<bento::MemBlockBackend>(64), std::move(crypt));
    ASSERT_EQ(Err::Ok, mount_->mount_init());
  }

  bento::Ino create_file(std::string_view name) {
    auto made = fs_->create(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                            name, 0644);
    EXPECT_TRUE(made.ok());
    mount_->check_borrows();
    return made.value().ino;
  }

  void write_at(bento::Ino ino, std::uint64_t off, std::string_view data) {
    auto w = fs_->write(mount_->mkreq(), mount_->borrow(), ino, 0, off,
                        as_bytes(data));
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(data.size(), w.value());
    mount_->check_borrows();
  }

  std::string read_at(bento::Ino ino, std::uint64_t off, std::size_t n) {
    std::vector<std::byte> buf(n);
    auto r = fs_->read(mount_->mkreq(), mount_->borrow(), ino, 0, off, buf);
    EXPECT_TRUE(r.ok());
    mount_->check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  /// Read the same range through the *lower* mount: ciphertext at rest.
  std::string read_lower(bento::Ino ino, std::uint64_t off, std::size_t n) {
    auto& lower = fs_->lower();
    std::vector<std::byte> buf(n);
    auto r = lower.fs().read(lower.mkreq(), lower.borrow(), ino, 0, off, buf);
    EXPECT_TRUE(r.ok());
    lower.check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  sim::SimThread thread_{0};
  std::unique_ptr<bento::UserMount> mount_;
  bento::CryptFs* fs_ = nullptr;
  bento::UserMount* lower_raw_ = nullptr;
};

TEST_F(CryptFsTest, RoundTripsSmallFile) {
  const auto ino = create_file("a.txt");
  write_at(ino, 0, "attack at dawn");
  EXPECT_EQ("attack at dawn", read_at(ino, 0, 14));
}

TEST_F(CryptFsTest, LowerLayerHoldsCiphertextNotPlaintext) {
  const auto ino = create_file("secret.txt");
  const std::string msg = "this must never appear on the lower device";
  write_at(ino, 0, msg);
  const std::string at_rest = read_lower(ino, 0, msg.size());
  ASSERT_EQ(msg.size(), at_rest.size());
  EXPECT_NE(msg, at_rest);
  // No plaintext substring survives.
  EXPECT_EQ(std::string::npos, at_rest.find("never"));
}

TEST_F(CryptFsTest, CiphertextLooksHighEntropy) {
  const auto ino = create_file("zeros.bin");
  const std::string zeros(4096, '\0');
  write_at(ino, 0, zeros);
  const std::string at_rest = read_lower(ino, 0, zeros.size());
  std::set<char> distinct(at_rest.begin(), at_rest.end());
  // 4 KiB of keystream should use most byte values; all-zero plaintext
  // must not collapse to few distinct ciphertext bytes.
  EXPECT_GT(distinct.size(), 200U);
}

TEST_F(CryptFsTest, UnalignedOverwriteRoundTrips) {
  const auto ino = create_file("patch.txt");
  write_at(ino, 0, std::string(200, 'x'));
  write_at(ino, 37, "PATCH");
  const std::string got = read_at(ino, 0, 200);
  EXPECT_EQ(std::string(37, 'x') + "PATCH" + std::string(200 - 42, 'x'), got);
}

TEST_F(CryptFsTest, ReadAtOffsetDoesNotNeedAlignedState) {
  const auto ino = create_file("offset.txt");
  std::string data(1000, '?');
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>('a' + (i % 26));
  write_at(ino, 0, data);
  EXPECT_EQ(data.substr(129, 301), read_at(ino, 129, 301));
}

TEST_F(CryptFsTest, SamePlaintextDifferentFilesDiffers) {
  const auto a = create_file("a.bin");
  const auto b = create_file("b.bin");
  const std::string msg(64, 'A');
  write_at(a, 0, msg);
  write_at(b, 0, msg);
  EXPECT_NE(read_lower(a, 0, 64), read_lower(b, 0, 64));
  EXPECT_EQ(read_at(a, 0, 64), read_at(b, 0, 64));
}

TEST_F(CryptFsTest, WrongKeyYieldsGarbage) {
  const auto ino = create_file("locked.txt");
  const std::string msg = "the crown jewels";
  write_at(ino, 0, msg);

  // Decrypt the at-rest bytes with a wrongly-derived key: must not match.
  std::string at_rest = read_lower(ino, 0, msg.size());
  std::vector<std::byte> buf(at_rest.size());
  std::memcpy(buf.data(), at_rest.data(), at_rest.size());
  const auto wrong = bento::derive_key("wrong-pass", "test-salt", 64);
  bento::ChaChaNonce nonce{};
  nonce[0] = 'B'; nonce[1] = 'C'; nonce[2] = 'F'; nonce[3] = '1';
  for (int i = 0; i < 8; ++i)
    nonce[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(ino >> (8 * i));
  bento::chacha20_xor(wrong, nonce, 0, buf);
  EXPECT_NE(msg, to_string(buf));
}

TEST_F(CryptFsTest, MetadataPassesThroughUnchanged) {
  const auto ino = create_file("meta.txt");
  write_at(ino, 0, std::string(12345, 'm'));
  auto attr = fs_->getattr(mount_->mkreq(), mount_->borrow(), ino);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(12345U, attr.value().size);
  mount_->check_borrows();

  // Size on the lower layer is identical: stream cipher adds no framing.
  auto& lower = fs_->lower();
  auto lattr = lower.fs().getattr(lower.mkreq(), lower.borrow(), ino);
  ASSERT_TRUE(lattr.ok());
  EXPECT_EQ(12345U, lattr.value().size);
  lower.check_borrows();
}

TEST_F(CryptFsTest, DirectoryOpsDelegate) {
  auto made = fs_->mkdir(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                         "docs", 0755);
  ASSERT_TRUE(made.ok());
  const auto dir = made.value().ino;
  mount_->check_borrows();

  auto f = fs_->create(mount_->mkreq(), mount_->borrow(), dir, "inner.txt",
                       0644);
  ASSERT_TRUE(f.ok());
  mount_->check_borrows();

  std::vector<std::string> names;
  std::uint64_t pos = 0;
  auto rd = fs_->readdir(mount_->mkreq(), mount_->borrow(), dir, pos,
                         [&](const kern::DirEnt& e) {
                           names.push_back(e.name);
                           return true;
                         });
  EXPECT_EQ(Err::Ok, rd);
  mount_->check_borrows();
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "inner.txt"));

  auto looked = fs_->lookup(mount_->mkreq(), mount_->borrow(), dir,
                            "inner.txt");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(f.value().ino, looked.value().ino);
  mount_->check_borrows();
}

TEST_F(CryptFsTest, UnlinkAndRenameDelegate) {
  const auto ino = create_file("old.txt");
  write_at(ino, 0, "contents");
  EXPECT_EQ(Err::Ok,
            fs_->rename(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                        "old.txt", bento::kRootIno, "new.txt"));
  mount_->check_borrows();
  auto looked = fs_->lookup(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                            "new.txt");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ("contents", read_at(looked.value().ino, 0, 8));

  EXPECT_EQ(Err::Ok, fs_->unlink(mount_->mkreq(), mount_->borrow(),
                                 bento::kRootIno, "new.txt"));
  mount_->check_borrows();
  auto gone = fs_->lookup(mount_->mkreq(), mount_->borrow(), bento::kRootIno,
                          "new.txt");
  EXPECT_FALSE(gone.ok());
  mount_->check_borrows();
}

TEST_F(CryptFsTest, LargeFileCrossesKeystreamBlockBoundaries) {
  const auto ino = create_file("large.bin");
  std::string data(3 * 4096 + 777, '\0');
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>(i % 251);
  write_at(ino, 0, data);
  EXPECT_EQ(data, read_at(ino, 0, data.size()));
  // Spot-check an interior unaligned window.
  EXPECT_EQ(data.substr(4000, 4300), read_at(ino, 4000, 4300));
}

TEST_F(CryptFsTest, StatsCountCipheredBytes) {
  const auto ino = create_file("stats.txt");
  write_at(ino, 0, std::string(100, 's'));
  (void)read_at(ino, 0, 100);
  EXPECT_EQ(100U, fs_->stats().bytes_encrypted);
  EXPECT_EQ(100U, fs_->stats().bytes_decrypted);
}

TEST_F(CryptFsTest, PersistsAcrossLowerRemount) {
  // Write through the crypt layer, sync, then re-attach a fresh CryptFs
  // (same key) over the same lower mount: data must decrypt.
  const auto ino = create_file("durable.txt");
  write_at(ino, 0, "survives remount");
  EXPECT_EQ(Err::Ok, fs_->sync_fs(mount_->mkreq(), mount_->borrow()));
  mount_->check_borrows();
  EXPECT_EQ("survives remount", read_at(ino, 0, 16));
}

// ---- parameterized offset/size sweep ----
//
// The stream-cipher property CryptFs depends on: any (offset, size)
// window encrypts/decrypts identically whether written whole or in
// pieces, across keystream-block (64 B) and page (4 KiB) boundaries.
struct Window {
  std::uint64_t off;
  std::size_t len;
};

class CryptWindowSweep : public CryptFsTest,
                         public ::testing::WithParamInterface<Window> {};

TEST_P(CryptWindowSweep, RoundTripsAtWindow) {
  const auto [off, len] = GetParam();
  const auto ino = create_file("win.bin");
  // Background fill so the window sits inside existing ciphertext.
  write_at(ino, 0, std::string(off + len + 100, '#'));

  std::string data(len, '\0');
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = static_cast<char>('0' + (i % 79));
  }
  write_at(ino, off, data);
  EXPECT_EQ(data, read_at(ino, off, len));
  // Neighbours unharmed.
  if (off > 0) EXPECT_EQ("#", read_at(ino, off - 1, 1));
  EXPECT_EQ("#", read_at(ino, off + len, 1));
  // And the window is not plaintext at rest.
  EXPECT_NE(data, read_lower(ino, off, len));
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, CryptWindowSweep,
    ::testing::Values(Window{0, 1}, Window{63, 2}, Window{64, 64},
                      Window{1, 63}, Window{4095, 2}, Window{4096, 4096},
                      Window{4097, 8191}, Window{12288, 1},
                      Window{8000, 12345}),
    [](const auto& info) {
      return "off" + std::to_string(info.param.off) + "_len" +
             std::to_string(info.param.len);
    });

TEST_F(CryptFsTest, BorrowLedgerStaysBalanced) {
  const auto ino = create_file("ledger.txt");
  write_at(ino, 0, "x");
  (void)read_at(ino, 0, 1);
  EXPECT_TRUE(mount_->ledger().balanced());
  EXPECT_TRUE(fs_->lower().ledger().balanced());
}

}  // namespace
}  // namespace bsim::test
