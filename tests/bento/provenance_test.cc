// Tests for the provenance stacking file system (paper §3, third
// motivating use case): source tracking, transitive lineage, invalidation
// queries, version retention, and garbage collection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "bento/provenance.h"

namespace bsim::test {
namespace {

using bento::Ino;
using bento::ProvSource;
using kern::Err;

std::unique_ptr<bento::UserMount> make_xv6_mount() {
  blk::DeviceParams params;
  params.nblocks = 8192;
  blk::BlockDevice scratch(params);
  const auto dsb = xv6::mkfs(scratch, 512);
  auto backend = std::make_unique<bento::MemBlockBackend>(8192);
  {
    auto cap = bento::CapTestAccess::make(*backend);
    std::array<std::byte, blk::kBlockSize> buf{};
    for (std::uint32_t b = 1; b <= dsb.datastart; ++b) {
      scratch.read_untimed(b, buf);
      auto bh = cap->getblk(b);
      std::memcpy(bh.value().data().data(), buf.data(), buf.size());
    }
  }
  auto mount = std::make_unique<bento::UserMount>(
      std::move(backend), std::make_unique<xv6::Xv6FileSystem>());
  EXPECT_EQ(Err::Ok, mount->mount_init());
  return mount;
}

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    auto prov = std::make_unique<bento::ProvenanceFs>(make_xv6_mount());
    fs_ = prov.get();
    mount_ = std::make_unique<bento::UserMount>(
        std::make_unique<bento::MemBlockBackend>(64), std::move(prov));
    ASSERT_EQ(Err::Ok, mount_->mount_init());
  }

  bento::Request req_as(std::uint32_t pid) {
    auto r = mount_->mkreq();
    r.pid = pid;
    return r;
  }

  Ino create_file(std::string_view name) {
    auto made = fs_->create(req_as(0), mount_->borrow(), bento::kRootIno,
                            name, 0644);
    EXPECT_TRUE(made.ok());
    mount_->check_borrows();
    return made.value().ino;
  }

  void write_as(std::uint32_t pid, Ino ino, std::string_view data,
                std::uint64_t off = 0) {
    auto w = fs_->write(req_as(pid), mount_->borrow(), ino, 0, off,
                        as_bytes(data));
    ASSERT_TRUE(w.ok());
    mount_->check_borrows();
  }

  std::string read_as(std::uint32_t pid, Ino ino, std::size_t n,
                      std::uint64_t off = 0) {
    std::vector<std::byte> buf(n);
    auto r = fs_->read(req_as(pid), mount_->borrow(), ino, 0, off, buf);
    EXPECT_TRUE(r.ok());
    mount_->check_borrows();
    buf.resize(r.value());
    return to_string(buf);
  }

  void barrier(Ino ino) {
    ASSERT_EQ(Err::Ok, fs_->fsync(req_as(0), mount_->borrow(), ino, 0, false));
    mount_->check_borrows();
  }

  bento::ProvenanceStore& store() { return fs_->store(); }

  sim::SimThread thread_{0};
  std::unique_ptr<bento::UserMount> mount_;
  bento::ProvenanceFs* fs_ = nullptr;
};

TEST_F(ProvenanceTest, DirectSourceRecorded) {
  fs_->register_process(100, "transform");
  const Ino a = create_file("input.csv");
  const Ino b = create_file("output.dat");
  write_as(0, a, "raw data");
  barrier(a);

  (void)read_as(100, a, 8);
  write_as(100, b, "derived");

  const auto sources = store().sources_of(b);
  EXPECT_TRUE(sources.contains(ProvSource::file(a, store().current_seq(a))));
  EXPECT_TRUE(sources.contains(ProvSource::img("transform")));
}

TEST_F(ProvenanceTest, UnreadInputsAreNotSources) {
  fs_->register_process(100, "tool");
  const Ino a = create_file("used.txt");
  const Ino c = create_file("unrelated.txt");
  const Ino b = create_file("out.txt");
  write_as(0, a, "x");
  write_as(0, c, "y");

  (void)read_as(100, a, 1);
  write_as(100, b, "z");

  const auto sources = store().sources_of(b);
  EXPECT_TRUE(sources.contains(ProvSource::file(a, store().current_seq(a))));
  for (const auto& s : sources) {
    if (s.kind == ProvSource::Kind::FileVersion) EXPECT_NE(c, s.ino);
  }
}

TEST_F(ProvenanceTest, LineageIsTransitive) {
  fs_->register_process(1, "stage1");
  fs_->register_process(2, "stage2");
  const Ino a = create_file("a");
  const Ino b = create_file("b");
  const Ino c = create_file("c");
  write_as(0, a, "origin");
  barrier(a);

  (void)read_as(1, a, 6);
  write_as(1, b, "mid");
  barrier(b);
  (void)read_as(2, b, 3);
  write_as(2, c, "final");

  const auto lineage = store().lineage_of(c);
  bool has_a = false, has_b = false, has_s1 = false, has_s2 = false;
  for (const auto& s : lineage) {
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == a) has_a = true;
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == b) has_b = true;
    if (s.kind == ProvSource::Kind::Image && s.image == "stage1") has_s1 = true;
    if (s.kind == ProvSource::Kind::Image && s.image == "stage2") has_s2 = true;
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
  EXPECT_TRUE(has_s1);  // the image that built b is in c's lineage
  EXPECT_TRUE(has_s2);
}

TEST_F(ProvenanceTest, TaintedByFindsAllDerivedData) {
  // The paper's scenario: "If a data source becomes invalid (e.g., because
  // of a change to sensor calibration), provenance can be used to track
  // down what derived data needs to be regenerated."
  fs_->register_process(1, "calib");
  fs_->register_process(2, "report");
  const Ino sensor = create_file("sensor.raw");
  const Ino calibrated = create_file("calibrated.dat");
  const Ino report = create_file("report.pdf");
  const Ino other = create_file("untouched.txt");
  write_as(0, sensor, "readings");
  barrier(sensor);
  write_as(0, other, "independent");

  (void)read_as(1, sensor, 8);
  write_as(1, calibrated, "fixed");
  barrier(calibrated);
  (void)read_as(2, calibrated, 5);
  write_as(2, report, "summary");

  const auto tainted = store().tainted_by(sensor);
  EXPECT_TRUE(tainted.contains(calibrated));
  EXPECT_TRUE(tainted.contains(report));
  EXPECT_FALSE(tainted.contains(other));
}

TEST_F(ProvenanceTest, TaintedByImageFindsToolOutputs) {
  fs_->register_process(7, "buggy-tool-v3");
  const Ino in = create_file("in");
  const Ino out1 = create_file("out1");
  const Ino out2 = create_file("out2");
  write_as(0, in, "i");
  (void)read_as(7, in, 1);
  write_as(7, out1, "o1");
  write_as(7, out2, "o2");

  const auto tainted = store().tainted_by_image("buggy-tool-v3");
  EXPECT_TRUE(tainted.contains(out1));
  EXPECT_TRUE(tainted.contains(out2));
  EXPECT_FALSE(tainted.contains(in));
}

TEST_F(ProvenanceTest, OverwriteStartsNewVersionAndRetainsOld) {
  fs_->register_process(1, "reader");
  const Ino src = create_file("source.txt");
  const Ino out = create_file("out.txt");
  write_as(0, src, "version zero");
  barrier(src);

  // Reader consumes v0 and produces out (edge to src@v0).
  (void)read_as(1, src, 12);
  write_as(1, out, "derived from v0");
  barrier(out);

  // Source is overwritten: v0's bytes must be retained because out's
  // provenance still references them.
  const auto v0 = store().current_seq(src);
  write_as(0, src, "VERSION ONE!");
  barrier(src);
  EXPECT_GT(store().current_seq(src), v0);

  const auto retained = store().read_version(src, v0);
  ASSERT_TRUE(retained.has_value());
  EXPECT_EQ("version zero", to_string(*retained));
  // The live file shows the new contents.
  EXPECT_EQ("VERSION ONE!", read_as(0, src, 12));
}

TEST_F(ProvenanceTest, SourcesArePerVersion) {
  fs_->register_process(1, "gen1");
  fs_->register_process(2, "gen2");
  const Ino a = create_file("a");
  const Ino b = create_file("b");
  const Ino out = create_file("out");
  write_as(0, a, "a");
  write_as(0, b, "b");

  (void)read_as(1, a, 1);
  write_as(1, out, "from a");
  barrier(out);
  const auto seq_v0 = store().current_seq(out);

  (void)read_as(2, b, 1);
  write_as(2, out, "from b");

  const auto v0_sources = store().sources_of(out, seq_v0);
  const auto v1_sources = store().sources_of(out);
  bool v0_has_a = false, v1_has_b = false, v1_has_a = false;
  for (const auto& s : v0_sources) {
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == a) v0_has_a = true;
  }
  for (const auto& s : v1_sources) {
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == b) v1_has_b = true;
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == a) v1_has_a = true;
  }
  EXPECT_TRUE(v0_has_a);
  EXPECT_TRUE(v1_has_b);
  EXPECT_FALSE(v1_has_a);  // gen2 never read a
}

TEST_F(ProvenanceTest, GcReclaimsUnreferencedVersions) {
  fs_->register_process(1, "consumer");
  const Ino src = create_file("big.bin");
  const Ino out = create_file("out.bin");

  // v0 is read and referenced by out.
  write_as(0, src, std::string(1000, 'v'));
  barrier(src);
  (void)read_as(1, src, 1000);
  write_as(1, out, "uses v0");
  barrier(out);

  // v1 is read by a process that never writes: retained on overwrite but
  // referenced by nobody once the read set is discarded.
  write_as(0, src, std::string(500, 'w'));
  barrier(src);
  fs_->register_process(9, "idle");
  (void)read_as(9, src, 500);
  write_as(0, src, std::string(10, 'x'));
  barrier(src);
  store().forget_process(9);  // exit without producing output

  // Both pre-images were snapshotted. The v1 snapshot is the whole
  // 1000-byte file (the 500-byte overwrite left the old tail in place).
  const auto before = store().retained_bytes();
  EXPECT_EQ(2000U, before);

  const auto reclaimed = store().gc();
  EXPECT_EQ(1000U, reclaimed);  // v1 dropped; v0 kept (out still needs it)
  EXPECT_TRUE(store().read_version(src, 0).has_value());
  EXPECT_FALSE(store().read_version(src, 1).has_value());
}

TEST_F(ProvenanceTest, GcKeepsChainThroughDeadIntermediates) {
  // a -> b -> c, then b is unlinked: a and b versions must survive gc while
  // c is live (the paper: retained "if they are part of the provenance of
  // live output files").
  fs_->register_process(1, "p1");
  fs_->register_process(2, "p2");
  const Ino a = create_file("a");
  const Ino b = create_file("b");
  const Ino c = create_file("c");
  write_as(0, a, "aaaa");
  barrier(a);
  (void)read_as(1, a, 4);
  write_as(1, b, "bbbb");
  barrier(b);
  (void)read_as(2, b, 4);
  write_as(2, c, "cccc");
  barrier(c);

  ASSERT_EQ(Err::Ok, fs_->unlink(req_as(0), mount_->borrow(), bento::kRootIno,
                                 "b"));
  mount_->check_borrows();
  (void)store().gc();

  // b's version record survives: c's lineage still reaches a through it.
  const auto lineage = store().lineage_of(c);
  bool has_a = false;
  for (const auto& s : lineage) {
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == a) has_a = true;
  }
  EXPECT_TRUE(has_a);
}

TEST_F(ProvenanceTest, GcDropsFullyDeadFiles) {
  const Ino tmp = create_file("scratch.tmp");
  write_as(0, tmp, "temp");
  ASSERT_EQ(Err::Ok, fs_->unlink(req_as(0), mount_->borrow(), bento::kRootIno,
                                 "scratch.tmp"));
  mount_->check_borrows();
  const auto tracked_before = store().tracked_files();
  (void)store().gc();
  EXPECT_LT(store().tracked_files(), tracked_before);
}

TEST_F(ProvenanceTest, SelfAppendDoesNotSelfReference) {
  fs_->register_process(1, "appender");
  const Ino log = create_file("log.txt");
  write_as(1, log, "line1\n");
  (void)read_as(1, log, 6);
  write_as(1, log, "line2\n", 6);

  // The current version must not list itself as an input.
  const auto seq = store().current_seq(log);
  for (const auto& s : store().sources_of(log, seq)) {
    if (s.kind == ProvSource::Kind::FileVersion) {
      EXPECT_FALSE(s.ino == log && s.seq == seq);
    }
  }
}

TEST_F(ProvenanceTest, IndependentPidsDoNotCrossContaminate) {
  fs_->register_process(1, "p1");
  fs_->register_process(2, "p2");
  const Ino a = create_file("a");
  const Ino b = create_file("b");
  const Ino out = create_file("out");
  write_as(0, a, "a");
  write_as(0, b, "b");

  (void)read_as(1, a, 1);  // p1 reads a
  (void)read_as(2, b, 1);  // p2 reads b
  write_as(2, out, "by p2");

  for (const auto& s : store().sources_of(out)) {
    if (s.kind == ProvSource::Kind::FileVersion) EXPECT_NE(a, s.ino);
    if (s.kind == ProvSource::Kind::Image) EXPECT_EQ("p2", s.image);
  }
}

TEST_F(ProvenanceTest, SurvivesOnlineUpgrade) {
  // §4.8: the provenance graph is internal in-memory state that must move
  // to the new file-system version during an online upgrade.
  fs_->register_process(1, "tool");
  const Ino a = create_file("in");
  const Ino b = create_file("out");
  write_as(0, a, "data");
  (void)read_as(1, a, 4);
  write_as(1, b, "cooked");

  auto* old_fs = fs_;
  auto state = old_fs->prepare_transfer(req_as(0), mount_->borrow());
  mount_->check_borrows();

  bento::ProvenanceFs next(nullptr);
  ASSERT_EQ(Err::Ok, next.restore_state(req_as(0), mount_->borrow(),
                                        std::move(state)));
  mount_->check_borrows();

  const auto sources = next.store().sources_of(b);
  bool has_a = false;
  for (const auto& s : sources) {
    if (s.kind == ProvSource::Kind::FileVersion && s.ino == a) has_a = true;
  }
  EXPECT_TRUE(has_a);
  // The data plane still works through the restored lower mount.
  std::vector<std::byte> buf(6);
  auto r = next.read(req_as(1), mount_->borrow(), b, 0, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("cooked", to_string(std::span<const std::byte>(buf.data(),
                                                           r.value())));
  mount_->check_borrows();
}

TEST_F(ProvenanceTest, BorrowLedgerStaysBalanced) {
  fs_->register_process(1, "t");
  const Ino a = create_file("x");
  write_as(1, a, "1");
  (void)read_as(1, a, 1);
  EXPECT_TRUE(mount_->ledger().balanced());
  EXPECT_TRUE(fs_->lower().ledger().balanced());
}

}  // namespace
}  // namespace bsim::test
