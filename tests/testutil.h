// Shared test fixtures: a simulated kernel with a formatted xv6 device.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bento/bentofs.h"
#include "bento/nvmlog.h"
#include "ext4/ext4.h"
#include "fuse/fuse.h"
#include "kernel/kernel.h"
#include "sim/thread.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"
#include "xv6fs_c/xv6c.h"

namespace bsim::test {

inline std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

inline std::string to_string(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Register all three xv6 deployments (paper §6.2) with a kernel:
/// "xv6_bento" (kernel Bento), "xv6_vfs" (C baseline), "xv6_fuse"
/// (userspace via the FUSE transport).
inline void register_all_xv6(kern::Kernel& kernel) {
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  bento::register_bento_fs(kernel, "xv6_nvmlog", [] {
    return std::make_unique<bento::NvmLogFs>(
        std::make_unique<xv6::Xv6FileSystem>(),
        std::make_shared<blk::NvmRegion>(blk::NvmParams{}));
  });
  xv6c::register_xv6c(kernel, "xv6_vfs");
  fuse::register_fuse_fs(kernel, "xv6_fuse", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  ext4::register_ext4(kernel, "ext4j");
}

/// A kernel with one device formatted as xv6 and mounted via BentoFS.
class BentoXv6Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_current(&thread_);
    blk::DeviceParams params;
    params.nblocks = 32768;  // 128 MiB
    auto& dev = kernel_.add_device("ssd0", params);
    xv6::mkfs(dev, /*ninodes=*/4096);
    register_all_xv6(kernel_);
    ASSERT_EQ(kern::Err::Ok,
              kernel_.mount("xv6_bento", "ssd0", "/mnt"));
  }

  // NOTE: no TearDown clearing the current thread — the kernel's
  // destructor runs timed unmount code and needs the clock. Members are
  // destroyed in reverse declaration order (kernel_ before thread_).

  kern::Process& proc() { return kernel_.proc(); }

  sim::SimThread thread_{0};
  kern::Kernel kernel_;
};

}  // namespace bsim::test
