// Unit tests for the page cache / address space: read-through, dirty
// tracking, run coalescing for ->writepages, and truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kernel/page_cache.h"
#include "kernel/vfs.h"
#include "sim/thread.h"

namespace bsim::kern {
namespace {

/// Records the writeback calls it receives.
class RecordingAops final : public AddressSpaceOps {
 public:
  explicit RecordingAops(bool batched) : batched_(batched) {}

  Err readpage(Inode&, std::uint64_t pgoff,
               std::span<std::byte> out) override {
    reads.push_back(pgoff);
    std::memset(out.data(), static_cast<int>(pgoff & 0xFF), out.size());
    return Err::Ok;
  }
  Err writepage(Inode&, std::uint64_t pgoff,
                std::span<const std::byte>) override {
    single_writes.push_back(pgoff);
    return Err::Ok;
  }
  Err writepages(Inode&, std::span<const PageRun> runs,
                 std::size_t& completed_runs) override {
    completed_runs = 0;
    for (const auto& r : runs) {
      run_shapes.emplace_back(r.first_pgoff, r.pages.size());
      completed_runs += 1;
    }
    return Err::Ok;
  }
  [[nodiscard]] bool has_writepages() const override { return batched_; }

  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> single_writes;
  std::vector<std::pair<std::uint64_t, std::size_t>> run_shapes;

 private:
  bool batched_;
};

class PageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  sim::SimThread thread_{0};
  blk::BlockDevice dev_{[] {
    blk::DeviceParams p;
    p.nblocks = 64;
    return p;
  }()};
  SuperBlock sb_{dev_, 0};
};

TEST_F(PageCacheTest, ReadThroughOnce) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  auto p1 = inode.mapping.read_page(inode, aops, 3);
  ASSERT_TRUE(p1.ok());
  auto p2 = inode.mapping.read_page(inode, aops, 3);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(aops.reads.size(), 1u);  // second access was a cache hit
  EXPECT_EQ(p1.value()->bytes()[0], std::byte{3});
}

TEST_F(PageCacheTest, DirtyTrackingAndWritepageFallback) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  for (std::uint64_t pg : {0ULL, 1ULL, 5ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.single_writes, (std::vector<std::uint64_t>{0, 1, 5}));
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
}

TEST_F(PageCacheTest, WritepagesCoalescesContiguousRuns) {
  Inode inode(sb_, 10);
  RecordingAops aops(true);
  for (std::uint64_t pg : {0ULL, 1ULL, 2ULL, 7ULL, 8ULL, 20ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  ASSERT_EQ(aops.run_shapes.size(), 3u);
  EXPECT_EQ(aops.run_shapes[0], std::make_pair(std::uint64_t{0}, std::size_t{3}));
  EXPECT_EQ(aops.run_shapes[1], std::make_pair(std::uint64_t{7}, std::size_t{2}));
  EXPECT_EQ(aops.run_shapes[2], std::make_pair(std::uint64_t{20}, std::size_t{1}));
}

TEST_F(PageCacheTest, WritebackSkipsCleanPages) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  auto& clean = inode.mapping.find_or_alloc(0);
  clean.uptodate = true;
  auto& dirty = inode.mapping.find_or_alloc(1);
  dirty.uptodate = true;
  inode.mapping.mark_dirty(1);
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.single_writes, std::vector<std::uint64_t>{1});
}

TEST_F(PageCacheTest, TruncateDropsPagesAndZeroesTail) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  for (std::uint64_t pg = 0; pg < 4; ++pg) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    std::memset(page.bytes().data(), 0xFF, kPageSize);
    inode.mapping.mark_dirty(pg);
  }
  inode.size = 4 * kPageSize;
  generic_truncate_pagecache(inode, kPageSize + 100);
  EXPECT_EQ(inode.size, kPageSize + 100);
  EXPECT_EQ(inode.mapping.nr_pages(), 2u);  // pages 0 and 1 remain
  // Tail of page 1 beyond byte 100 is zeroed.
  Page* p1 = inode.mapping.find(1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->bytes()[99], std::byte{0xFF});
  EXPECT_EQ(p1->bytes()[100], std::byte{0});
  EXPECT_EQ(p1->bytes()[kPageSize - 1], std::byte{0});
}

/// Fault injection: fails every writepages run (and every writepage call)
/// past a configurable budget — the mid-run failure the partial-writeback
/// regression tests drive.
class FailingAops final : public AddressSpaceOps {
 public:
  FailingAops(bool batched, std::size_t budget)
      : batched_(batched), budget_(budget) {}

  Err readpage(Inode&, std::uint64_t, std::span<std::byte> out) override {
    std::memset(out.data(), 0, out.size());
    return Err::Ok;
  }
  Err writepage(Inode&, std::uint64_t pgoff,
                std::span<const std::byte>) override {
    if (budget_ == 0) return Err::Io;
    budget_ -= 1;
    written_pages.push_back(pgoff);
    return Err::Ok;
  }
  Err writepages(Inode&, std::span<const PageRun> runs,
                 std::size_t& completed_runs) override {
    completed_runs = 0;
    for (const auto& run : runs) {
      if (budget_ == 0) return Err::Io;  // this run never reached media
      budget_ -= 1;
      written_runs.emplace_back(run.first_pgoff, run.pages.size());
      completed_runs += 1;
    }
    return Err::Ok;
  }
  [[nodiscard]] bool has_writepages() const override { return batched_; }

  void refill(std::size_t budget) { budget_ = budget; }

  std::vector<std::uint64_t> written_pages;
  std::vector<std::pair<std::uint64_t, std::size_t>> written_runs;

 private:
  bool batched_;
  std::size_t budget_;
};

TEST_F(PageCacheTest, PartialWritepagesFailureClearsExactlyCompletedPrefix) {
  // Regression: writeback used to clear NO dirty state when ->writepages
  // failed mid-run, so runs that already reached media were re-submitted
  // on the next sync (duplicate journal transactions, duplicate device
  // writes). Now exactly the completed prefix is retired.
  Inode inode(sb_, 10);
  FailingAops aops(/*batched=*/true, /*budget=*/1);  // 1 run, then EIO
  for (std::uint64_t pg : {0ULL, 1ULL, 2ULL, 7ULL, 8ULL, 20ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }
  ASSERT_EQ(inode.mapping.nr_dirty(), 6u);

  // Runs: [0-2], [7-8], [20]. Budget 1: run [0-2] completes, [7-8] fails.
  EXPECT_EQ(Err::Io, inode.mapping.writeback(inode, aops));
  ASSERT_EQ(aops.written_runs.size(), 1u);
  EXPECT_EQ(aops.written_runs[0],
            std::make_pair(std::uint64_t{0}, std::size_t{3}));
  // Completed prefix clean; failed tail still dirty.
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);
  EXPECT_FALSE(inode.mapping.find(0)->dirty);
  EXPECT_FALSE(inode.mapping.find(2)->dirty);
  EXPECT_TRUE(inode.mapping.find(7)->dirty);
  EXPECT_TRUE(inode.mapping.find(8)->dirty);
  EXPECT_TRUE(inode.mapping.find(20)->dirty);

  // Re-dirtying an already-dirty page must not double-count.
  inode.mapping.mark_dirty(7);
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);

  // The retry submits ONLY the still-dirty runs — nothing is written
  // twice and nothing is lost.
  aops.refill(100);
  EXPECT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  ASSERT_EQ(aops.written_runs.size(), 3u);
  EXPECT_EQ(aops.written_runs[1],
            std::make_pair(std::uint64_t{7}, std::size_t{2}));
  EXPECT_EQ(aops.written_runs[2],
            std::make_pair(std::uint64_t{20}, std::size_t{1}));
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
}

TEST_F(PageCacheTest, PartialWritepageFailureKeepsIndexConsistent) {
  // The unbatched path had the dual bug: pages written before a mid-loop
  // failure were marked clean but stayed in the dirty-tag index, so
  // nr_dirty went inconsistent (and a later mark_dirty double-counted).
  Inode inode(sb_, 10);
  FailingAops aops(/*batched=*/false, /*budget=*/2);  // 2 pages, then EIO
  for (std::uint64_t pg : {0ULL, 1ULL, 5ULL, 9ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }

  EXPECT_EQ(Err::Io, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.written_pages, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(inode.mapping.nr_dirty(), 2u);
  EXPECT_FALSE(inode.mapping.find(1)->dirty);
  EXPECT_TRUE(inode.mapping.find(5)->dirty);

  // mark_dirty on a retired page re-enters the index exactly once.
  inode.mapping.mark_dirty(0);
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);

  aops.refill(100);
  EXPECT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.written_pages, (std::vector<std::uint64_t>{0, 1, 0, 5, 9}));
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
}

TEST_F(PageCacheTest, HitMissStats) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  (void)inode.mapping.read_page(inode, aops, 0);
  (void)inode.mapping.read_page(inode, aops, 0);
  EXPECT_EQ(inode.mapping.stats().misses, 1u);
  EXPECT_EQ(inode.mapping.stats().hits, 1u);
}

// ---- sequential-stream readahead (generic_file_read heuristics) ----

/// Batched aops that records the shape of every ->readpages call.
class BatchRecordingAops final : public AddressSpaceOps {
 public:
  Err readpage(Inode&, std::uint64_t pgoff,
               std::span<std::byte> out) override {
    single_reads += 1;
    std::memset(out.data(), static_cast<int>(pgoff & 0xFF), out.size());
    return Err::Ok;
  }
  Err readpages(Inode&, std::uint64_t first_pgoff,
                std::span<const std::span<std::byte>> pages) override {
    batch_shapes.emplace_back(first_pgoff, pages.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      std::memset(pages[i].data(), static_cast<int>((first_pgoff + i) & 0xFF),
                  pages[i].size());
    }
    return Err::Ok;
  }
  [[nodiscard]] bool has_readpages() const override { return true; }
  Err writepage(Inode&, std::uint64_t, std::span<const std::byte>) override {
    return Err::Ok;
  }

  std::uint64_t single_reads = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> batch_shapes;
};

TEST_F(PageCacheTest, SequentialScanGrowsReadaheadWindow) {
  constexpr std::uint64_t kPages = 64;
  Inode inode(sb_, 10);
  BatchRecordingAops aops;
  inode.aops = &aops;
  inode.size = kPages * kPageSize;

  // A page-at-a-time sequential scan. Without the stream window this
  // faulted every page individually (64 ->readpage calls, zero batches);
  // with detection + doubling the whole file arrives in a handful of
  // growing ->readpages batches.
  std::vector<std::byte> buf(kPageSize);
  for (std::uint64_t pg = 0; pg < kPages; ++pg) {
    auto r = generic_file_read(inode, pg * kPageSize, buf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), kPageSize);
    EXPECT_EQ(buf[0], static_cast<std::byte>(pg & 0xFF)) << pg;
  }

  const auto& stats = inode.mapping.stats();
  EXPECT_LE(aops.batch_shapes.size() + aops.single_reads, 6u)
      << "sequential scan should issue few, growing batches";
  EXPECT_EQ(stats.readahead_pages + aops.single_reads, kPages);
  EXPECT_EQ(stats.ra_window_max, kReadaheadMaxPages);  // doubled to the cap
  EXPECT_GE(stats.ra_sequential_hits, kPages - 1);
  // Windows double: every batch after the first is larger, until the cap
  // or EOF clips it.
  for (std::size_t i = 1; i + 1 < aops.batch_shapes.size(); ++i) {
    EXPECT_GE(aops.batch_shapes[i].second, aops.batch_shapes[i - 1].second);
  }
}

TEST_F(PageCacheTest, RandomReadsCollapseTheWindow) {
  constexpr std::uint64_t kPages = 64;
  Inode inode(sb_, 11);
  BatchRecordingAops aops;
  inode.aops = &aops;
  inode.size = kPages * kPageSize;

  // Stride-7 single-page reads: never sequential, so no speculation — no
  // batched readahead, one ->readpage per distinct page, and the window
  // never opens.
  std::vector<std::byte> buf(kPageSize);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const std::uint64_t pg = (i * 7 + 3) % kPages;
    ASSERT_TRUE(generic_file_read(inode, pg * kPageSize, buf).ok());
  }
  EXPECT_EQ(aops.batch_shapes.size(), 0u);
  EXPECT_EQ(inode.mapping.stats().ra_window_max, 0u);
  EXPECT_EQ(inode.mapping.stats().ra_sequential_hits, 0u);
}

TEST_F(PageCacheTest, ReadaheadClampsAtEof) {
  // 6-page file: the stream window must never fault pages past EOF.
  Inode inode(sb_, 12);
  BatchRecordingAops aops;
  inode.aops = &aops;
  inode.size = 6 * kPageSize + 123;  // partial 7th page

  std::vector<std::byte> buf(kPageSize);
  for (std::uint64_t pg = 0; pg < 7; ++pg) {
    ASSERT_TRUE(generic_file_read(inode, pg * kPageSize, buf).ok());
  }
  std::uint64_t max_pg = 0;
  for (const auto& [first, count] : aops.batch_shapes) {
    max_pg = std::max(max_pg, first + count - 1);
  }
  EXPECT_LE(max_pg, 6u);
  EXPECT_LE(inode.mapping.nr_pages(), 7u);
}

}  // namespace
}  // namespace bsim::kern
