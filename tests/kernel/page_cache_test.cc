// Unit tests for the page cache / address space: read-through, dirty
// tracking, run coalescing for ->writepages, and truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kernel/page_cache.h"
#include "kernel/vfs.h"
#include "sim/thread.h"

namespace bsim::kern {
namespace {

/// Records the writeback calls it receives.
class RecordingAops final : public AddressSpaceOps {
 public:
  explicit RecordingAops(bool batched) : batched_(batched) {}

  Err readpage(Inode&, std::uint64_t pgoff,
               std::span<std::byte> out) override {
    reads.push_back(pgoff);
    std::memset(out.data(), static_cast<int>(pgoff & 0xFF), out.size());
    return Err::Ok;
  }
  Err writepage(Inode&, std::uint64_t pgoff,
                std::span<const std::byte>) override {
    single_writes.push_back(pgoff);
    return Err::Ok;
  }
  Err writepages(Inode&, std::span<const PageRun> runs) override {
    for (const auto& r : runs) {
      run_shapes.emplace_back(r.first_pgoff, r.pages.size());
    }
    return Err::Ok;
  }
  [[nodiscard]] bool has_writepages() const override { return batched_; }

  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> single_writes;
  std::vector<std::pair<std::uint64_t, std::size_t>> run_shapes;

 private:
  bool batched_;
};

class PageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  sim::SimThread thread_{0};
  blk::BlockDevice dev_{[] {
    blk::DeviceParams p;
    p.nblocks = 64;
    return p;
  }()};
  SuperBlock sb_{dev_, 0};
};

TEST_F(PageCacheTest, ReadThroughOnce) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  auto p1 = inode.mapping.read_page(inode, aops, 3);
  ASSERT_TRUE(p1.ok());
  auto p2 = inode.mapping.read_page(inode, aops, 3);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(aops.reads.size(), 1u);  // second access was a cache hit
  EXPECT_EQ(p1.value()->bytes()[0], std::byte{3});
}

TEST_F(PageCacheTest, DirtyTrackingAndWritepageFallback) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  for (std::uint64_t pg : {0ULL, 1ULL, 5ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.single_writes, (std::vector<std::uint64_t>{0, 1, 5}));
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
}

TEST_F(PageCacheTest, WritepagesCoalescesContiguousRuns) {
  Inode inode(sb_, 10);
  RecordingAops aops(true);
  for (std::uint64_t pg : {0ULL, 1ULL, 2ULL, 7ULL, 8ULL, 20ULL}) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    inode.mapping.mark_dirty(pg);
  }
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  ASSERT_EQ(aops.run_shapes.size(), 3u);
  EXPECT_EQ(aops.run_shapes[0], std::make_pair(std::uint64_t{0}, std::size_t{3}));
  EXPECT_EQ(aops.run_shapes[1], std::make_pair(std::uint64_t{7}, std::size_t{2}));
  EXPECT_EQ(aops.run_shapes[2], std::make_pair(std::uint64_t{20}, std::size_t{1}));
}

TEST_F(PageCacheTest, WritebackSkipsCleanPages) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  auto& clean = inode.mapping.find_or_alloc(0);
  clean.uptodate = true;
  auto& dirty = inode.mapping.find_or_alloc(1);
  dirty.uptodate = true;
  inode.mapping.mark_dirty(1);
  ASSERT_EQ(Err::Ok, inode.mapping.writeback(inode, aops));
  EXPECT_EQ(aops.single_writes, std::vector<std::uint64_t>{1});
}

TEST_F(PageCacheTest, TruncateDropsPagesAndZeroesTail) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  for (std::uint64_t pg = 0; pg < 4; ++pg) {
    auto& page = inode.mapping.find_or_alloc(pg);
    page.uptodate = true;
    std::memset(page.bytes().data(), 0xFF, kPageSize);
    inode.mapping.mark_dirty(pg);
  }
  inode.size = 4 * kPageSize;
  generic_truncate_pagecache(inode, kPageSize + 100);
  EXPECT_EQ(inode.size, kPageSize + 100);
  EXPECT_EQ(inode.mapping.nr_pages(), 2u);  // pages 0 and 1 remain
  // Tail of page 1 beyond byte 100 is zeroed.
  Page* p1 = inode.mapping.find(1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->bytes()[99], std::byte{0xFF});
  EXPECT_EQ(p1->bytes()[100], std::byte{0});
  EXPECT_EQ(p1->bytes()[kPageSize - 1], std::byte{0});
}

TEST_F(PageCacheTest, HitMissStats) {
  Inode inode(sb_, 10);
  RecordingAops aops(false);
  (void)inode.mapping.read_page(inode, aops, 0);
  (void)inode.mapping.read_page(inode, aops, 0);
  EXPECT_EQ(inode.mapping.stats().misses, 1u);
  EXPECT_EQ(inode.mapping.stats().hits, 1u);
}

}  // namespace
}  // namespace bsim::kern
