// Unit tests for the buffer cache: caching, refcounts, writeback, LRU
// eviction, and the sync paths the journal depends on.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "kernel/buffer_cache.h"
#include "sim/thread.h"

namespace bsim::kern {
namespace {

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest() : dev_(params()) {}

  static blk::DeviceParams params() {
    blk::DeviceParams p;
    p.nblocks = 256;
    return p;
  }

  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  sim::SimThread thread_{0};
  blk::BlockDevice dev_;
};

TEST_F(BufferCacheTest, MissThenHit) {
  BufferCache cache(dev_, 16);
  auto a = cache.bread(5);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.brelse(a.value());
  auto b = cache.bread(5);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(a.value(), b.value());  // same buffer
  cache.brelse(b.value());
}

TEST_F(BufferCacheTest, ReadsDeviceContent) {
  std::array<std::byte, blk::kBlockSize> w{};
  w[0] = std::byte{0xAB};
  dev_.write_untimed(9, w);
  BufferCache cache(dev_, 16);
  auto bh = cache.bread(9);
  ASSERT_TRUE(bh.ok());
  EXPECT_EQ(bh.value()->bytes()[0], std::byte{0xAB});
  cache.brelse(bh.value());
}

TEST_F(BufferCacheTest, GetblkDoesNotReadDevice) {
  BufferCache cache(dev_, 16);
  const auto reads_before = dev_.stats().reads;
  auto bh = cache.getblk(3);
  ASSERT_TRUE(bh.ok());
  EXPECT_EQ(dev_.stats().reads, reads_before);
  cache.brelse(bh.value());
}

TEST_F(BufferCacheTest, SyncDirtyBufferWritesThrough) {
  BufferCache cache(dev_, 16);
  auto bh = cache.bread(4);
  ASSERT_TRUE(bh.ok());
  bh.value()->bytes()[0] = std::byte{0x5C};
  cache.mark_dirty(bh.value());
  cache.sync_dirty_buffer(bh.value());
  EXPECT_FALSE(bh.value()->dirty);
  cache.brelse(bh.value());

  std::array<std::byte, blk::kBlockSize> r{};
  dev_.read_untimed(4, r);
  EXPECT_EQ(r[0], std::byte{0x5C});
}

TEST_F(BufferCacheTest, DirtyBlockStaysInCacheUntilSync) {
  // The property journaling depends on: modifying a cached block must not
  // reach the device until explicitly written.
  BufferCache cache(dev_, 16);
  auto bh = cache.bread(4);
  ASSERT_TRUE(bh.ok());
  bh.value()->bytes()[0] = std::byte{0x77};
  cache.mark_dirty(bh.value());
  std::array<std::byte, blk::kBlockSize> r{};
  dev_.read_untimed(4, r);
  EXPECT_EQ(r[0], std::byte{0});  // device still has old content
  cache.sync_dirty_buffer(bh.value());
  cache.brelse(bh.value());
}

TEST_F(BufferCacheTest, SyncAllWritesEveryDirtyBuffer) {
  BufferCache cache(dev_, 16);
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto bh = cache.bread(i);
    ASSERT_TRUE(bh.ok());
    bh.value()->bytes()[0] = std::byte{0x11};
    cache.mark_dirty(bh.value());
    cache.brelse(bh.value());
  }
  cache.sync_all();
  EXPECT_EQ(cache.stats().writebacks, 4u);
}

TEST_F(BufferCacheTest, EvictionWritesDirtyVictims) {
  BufferCache cache(dev_, 4);
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto bh = cache.bread(i);
    ASSERT_TRUE(bh.ok());
    bh.value()->bytes()[0] = std::byte{0x22};
    cache.mark_dirty(bh.value());
    cache.brelse(bh.value());
  }
  EXPECT_LE(cache.cached_blocks(), 5u);  // capacity respected (1 overshoot)
  EXPECT_GT(cache.stats().evictions, 0u);
  // Dirty victims were written, not dropped.
  std::array<std::byte, blk::kBlockSize> r{};
  dev_.read_untimed(0, r);
  EXPECT_EQ(r[0], std::byte{0x22});
}

TEST_F(BufferCacheTest, ReferencedBuffersAreNotEvicted) {
  BufferCache cache(dev_, 2);
  auto pinned = cache.bread(0);
  ASSERT_TRUE(pinned.ok());
  for (std::uint64_t i = 1; i < 6; ++i) {
    auto bh = cache.bread(i);
    ASSERT_TRUE(bh.ok());
    cache.brelse(bh.value());
  }
  // Block 0 must still be present (refcount held).
  auto again = cache.bread(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), pinned.value());
  cache.brelse(again.value());
  cache.brelse(pinned.value());
}

TEST_F(BufferCacheTest, OutstandingRefsTracked) {
  BufferCache cache(dev_, 16);
  EXPECT_EQ(cache.outstanding_refs(), 0u);
  auto a = cache.bread(1);
  auto b = cache.bread(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.outstanding_refs(), 2u);
  cache.brelse(a.value());
  cache.brelse(b.value());
  EXPECT_EQ(cache.outstanding_refs(), 0u);
}

TEST_F(BufferCacheTest, BreadAfterGetblkKeepsOverwrittenContent) {
  // Regression: block 9 has stale content on the device; getblk + full
  // overwrite + a later bread must see the new content, not re-read the
  // device. (This bug corrupted reallocated indirect blocks under the
  // fileserver workload.)
  std::array<std::byte, blk::kBlockSize> stale{};
  stale.fill(std::byte{0x66});
  dev_.write_untimed(9, stale);

  BufferCache cache(dev_, 16);
  auto nb = cache.getblk(9);
  ASSERT_TRUE(nb.ok());
  std::memset(nb.value()->bytes().data(), 0, blk::kBlockSize);
  cache.mark_dirty(nb.value());
  cache.brelse(nb.value());

  auto rb = cache.bread(9);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb.value()->bytes()[0], std::byte{0});  // not 0x66
  cache.brelse(rb.value());
}

TEST_F(BufferCacheTest, BreadBeyondDeviceFails) {
  BufferCache cache(dev_, 16);
  auto r = cache.bread(10'000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Err::Io);
}

TEST_F(BufferCacheTest, WritebackScansOnlyDirtyBuffers) {
  // The O(dirty) regression for the old full-map walk: syncing a cache
  // holding many CLEAN buffers must examine only the dirty-block index.
  BufferCache cache(dev_, 0);
  std::vector<BufferHead*> held;
  for (std::uint64_t b = 0; b < 200; ++b) {  // 200 clean cached buffers
    auto bh = cache.getblk(b);
    ASSERT_TRUE(bh.ok());
    held.push_back(bh.value());
  }
  for (const std::uint64_t b : {20ULL, 120ULL, 40ULL, 180ULL, 3ULL}) {
    cache.mark_dirty(held[b]);
  }
  ASSERT_EQ(cache.nr_dirty(), 5u);

  cache.sync_all();
  EXPECT_EQ(cache.nr_dirty(), 0u);
  EXPECT_EQ(cache.stats().writebacks, 5u);
  EXPECT_EQ(cache.stats().dirty_scanned, 5u)
      << "writeback must walk the dirty index, not all "
      << cache.cached_blocks() << " cached buffers";
  // Ascending submission: the five scattered blocks arrive as five
  // separate (non-mergeable) requests in one batch.
  EXPECT_EQ(dev_.stats().write_requests, 5u);
  for (auto* bh : held) cache.brelse(bh);
}

TEST_F(BufferCacheTest, InjectedReadErrorSurfacesAsIoError) {
  // A medium error on an unmirrored device must surface to the caller,
  // not silently hand back a zero-filled "cached" buffer.
  BufferCache cache(dev_, 16);
  dev_.inject_read_error(7);
  auto bad = cache.bread(7);
  EXPECT_FALSE(bad.ok());
  auto batch = cache.bread_batch(std::vector<std::uint64_t>{6, 7, 8});
  EXPECT_FALSE(batch.ok());

  // A rewrite repairs the sector; the read then succeeds and the buffer
  // population is consistent (no stale !uptodate entries pinned).
  std::array<std::byte, blk::kBlockSize> data{};
  data.fill(std::byte{0x5C});
  dev_.write(7, data);
  auto good = cache.bread(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value()->bytes()[0], std::byte{0x5C});
  cache.brelse(good.value());
  EXPECT_EQ(cache.outstanding_refs(), 0u);
}

}  // namespace
}  // namespace bsim::kern
