// errseq-style writeback error reporting and journal abort with
// read-only degradation (ISSUE 10):
//
//   - ErrSeq report-once semantics (the errseq_t contract): each cursor
//     sees a recorded error exactly once; a cursor sampled after the
//     error sees nothing; a new error re-arms every cursor.
//   - A writeback failure that happened on nobody's clock (background
//     drain) surfaces at each open descriptor's NEXT fsync — once per
//     descriptor, never twice.
//   - A failed journal write aborts the journal: fsync fails with EIO,
//     the mount degrades per its errors= policy (remount-ro default:
//     writes fail EROFS, reads keep serving; errors=continue keeps the
//     mount writable-in-cache but the journal stays dead).
//   - A transient fault retried to success by the request queue's
//     RetryPolicy is invisible to fsync: no residual error, no abort.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"
#include "kernel/errseq.h"

namespace bsim::test {
namespace {

using kern::Err;
using kern::ErrSeq;
using kern::ErrSeqCursor;

// ---- the ErrSeq primitive ----

TEST(ErrSeqUnit, EachCursorSeesAnErrorExactlyOnce) {
  ErrSeq es;
  ErrSeqCursor a = es.sample();
  EXPECT_EQ(es.check(a), Err::Ok);

  es.record(Err::Io);
  EXPECT_EQ(es.check(a), Err::Io);  // reported...
  EXPECT_EQ(es.check(a), Err::Ok);  // ...exactly once

  // A cursor sampled after the failure (a later open) sees nothing.
  ErrSeqCursor b = es.sample();
  EXPECT_EQ(es.check(b), Err::Ok);

  // A NEW error re-arms every cursor, including already-caught-up ones.
  es.record(Err::NoSpc);
  EXPECT_EQ(es.check(b), Err::NoSpc);
  EXPECT_EQ(es.check(a), Err::NoSpc);
  EXPECT_EQ(es.check(a), Err::Ok);
}

TEST(ErrSeqUnit, OkIsNeverRecorded) {
  ErrSeq es;
  ErrSeqCursor c = es.sample();
  es.record(Err::Ok);
  EXPECT_EQ(es.seq(), 0u);
  EXPECT_EQ(es.check(c), Err::Ok);
}

// ---- kernel integration ----

constexpr std::uint64_t kBlocks = 16384;  // 64 MiB

struct Bed {
  kern::Kernel kernel;
  blk::BlockDevice* dev = nullptr;
  xv6::DiskSuperblock dsb;
};

/// A kernel with a formatted xv6 device mounted at /mnt via Bento.
void make_bed(Bed& bed, std::string_view opts = "") {
  blk::DeviceParams params;
  params.nblocks = kBlocks;
  bed.dev = &bed.kernel.add_device("ssd0", params);
  bed.dsb = xv6::mkfs(*bed.dev, /*ninodes=*/512);
  bento::register_bento_fs(bed.kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  ASSERT_EQ(Err::Ok, bed.kernel.mount("xv6_bento", "ssd0", "/mnt", opts));
}

const xv6::LogStats& log_stats(kern::Kernel& kernel) {
  auto* module = bento::BentoModule::from(*kernel.sb_at("/mnt"));
  return static_cast<const xv6::Xv6FileSystem&>(module->fs()).log_stats();
}

TEST(WritebackErrseq, BackgroundFailureReportedOncePerDescriptor) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  Bed bed;
  make_bed(bed);
  auto& kernel = bed.kernel;
  auto& p = kernel.proc();

  // Two descriptors on the same file, both opened BEFORE the failure.
  auto fd1 = kernel.open(p, "/mnt/f", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd1.ok());
  auto fd2 = kernel.open(p, "/mnt/f", kern::kORdWr);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(kernel.write(p, fd1.value(), as_bytes("payload")).ok());
  ASSERT_EQ(Err::Ok, kernel.fsync(p, fd1.value()));

  // Fail a metadata writeback on NOBODY's clock: dirty an idle block and
  // drain it into an injected device write error (the background-flusher
  // shape — the writer system call that dirtied it returned long ago).
  kern::SuperBlock* sb = kernel.sb_at("/mnt");
  auto& bc = sb->bufcache();
  const std::uint64_t victim = kBlocks - 1;
  auto bh = bc.bread(victim);
  ASSERT_TRUE(bh.ok());
  bc.mark_dirty(bh.value());
  bed.dev->inject_write_error(victim);
  (void)bc.flush_dirty_async(/*max_batch=*/8, /*queue_depth=*/1);
  bed.dev->clear_write_error(victim);
  bc.brelse(bh.value());
  EXPECT_EQ(bc.wb_err_seq(), 1u);

  // Each pre-failure descriptor's next fsync reports it — exactly once.
  EXPECT_EQ(kernel.fsync(p, fd1.value()), Err::Io);
  EXPECT_EQ(kernel.fsync(p, fd1.value()), Err::Ok);
  EXPECT_EQ(kernel.fsync(p, fd2.value()), Err::Io);
  EXPECT_EQ(kernel.fsync(p, fd2.value()), Err::Ok);

  // A descriptor opened after the failure never sees it.
  auto fd3 = kernel.open(p, "/mnt/f", kern::kORdOnly);
  ASSERT_TRUE(fd3.ok());
  EXPECT_EQ(kernel.fsync(p, fd3.value()), Err::Ok);

  for (const auto& fd : {fd1, fd2, fd3}) {
    EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
  }
  EXPECT_EQ(Err::Ok, kernel.umount("/mnt"));
}

TEST(JournalAbort, FailedJournalWriteFlipsMountReadOnly) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  Bed bed;
  make_bed(bed);  // default policy: errors=remount-ro
  auto& kernel = bed.kernel;
  auto& p = kernel.proc();

  // A healthy committed file, read back after the abort.
  auto keep = kernel.open(p, "/mnt/keep", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(kernel.write(p, keep.value(), as_bytes("survives")).ok());
  ASSERT_EQ(Err::Ok, kernel.fsync(p, keep.value()));

  // Poison the journal area: the log run's first payload block. The next
  // commit's stage-1 write fails before the commit record is ever issued.
  bed.dev->inject_write_error(bed.dsb.logstart + 1);
  auto fd = kernel.open(p, "/mnt/doomed", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel.write(p, fd.value(), as_bytes("never durable")).ok());
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Io);

  kern::SuperBlock* sb = kernel.sb_at("/mnt");
  EXPECT_TRUE(sb->read_only());
  EXPECT_EQ(sb->fs_error_seen(), Err::Io);
  EXPECT_EQ(log_stats(kernel).log_aborted, 1u);

  // Writes fail with EROFS across the mutating syscalls...
  auto w = kernel.write(p, fd.value(), as_bytes("x"));
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error(), Err::RoFs);
  EXPECT_FALSE(kernel.open(p, "/mnt/new", kern::kOCreat).ok());
  EXPECT_EQ(kernel.mkdir(p, "/mnt/dir"), Err::RoFs);
  EXPECT_EQ(kernel.unlink(p, "/mnt/keep"), Err::RoFs);
  EXPECT_EQ(kernel.rename(p, "/mnt/keep", "/mnt/keep2"), Err::RoFs);

  // ...and a second fsync keeps failing (the journal never recovers in
  // this mount), but does NOT double-count the abort.
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Io);
  EXPECT_EQ(log_stats(kernel).log_aborted, 1u);

  // Reads keep serving: the pre-abort committed file is intact.
  std::vector<std::byte> buf(16);
  auto r = kernel.pread(p, keep.value(), buf, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "survives");

  EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
  EXPECT_EQ(Err::Ok, kernel.close(p, keep.value()));
  EXPECT_EQ(Err::Ok, kernel.umount("/mnt"));
}

TEST(JournalAbort, ErrorsContinueKeepsServingWithoutRoFlip) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  Bed bed;
  make_bed(bed, "errors=continue");
  auto& kernel = bed.kernel;
  auto& p = kernel.proc();

  bed.dev->inject_write_error(bed.dsb.logstart + 1);
  auto fd = kernel.open(p, "/mnt/f", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel.write(p, fd.value(), as_bytes("data")).ok());
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Io);

  kern::SuperBlock* sb = kernel.sb_at("/mnt");
  EXPECT_EQ(sb->fs_error_seen(), Err::Io);
  EXPECT_FALSE(sb->read_only());  // continue: no EROFS flip...
  EXPECT_TRUE(kernel.write(p, fd.value(), as_bytes("more")).ok());
  // ...but the journal stays aborted: durability is gone for good.
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Io);

  EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
  EXPECT_EQ(Err::Ok, kernel.umount("/mnt"));
}

TEST(TransientRetry, RetriedToSuccessLeavesNoResidualError) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  Bed bed;
  make_bed(bed, "retries=4,retry_backoff_us=100");
  auto& kernel = bed.kernel;
  auto& p = kernel.proc();

  auto fd = kernel.open(p, "/mnt/f", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel.write(p, fd.value(), as_bytes("retried fine")).ok());

  // One controller hiccup on the next bio: the request queue reissues it
  // after the backoff and the op completes — the caller never knows.
  bed.dev->inject_transient_errors(1);
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Ok);
  EXPECT_GE(bed.dev->queue().stats().retries, 1u);
  EXPECT_GE(bed.dev->queue().stats().retry_successes, 1u);

  // No residual: no abort, no RO flip, no error at the next fsync.
  EXPECT_EQ(log_stats(kernel).log_aborted, 0u);
  EXPECT_FALSE(kernel.sb_at("/mnt")->read_only());
  EXPECT_EQ(kernel.fsync(p, fd.value()), Err::Ok);

  // The data actually landed.
  std::vector<std::byte> buf(32);
  auto r = kernel.pread(p, fd.value(), buf, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string({buf.data(), r.value()}), "retried fine");

  EXPECT_EQ(Err::Ok, kernel.close(p, fd.value()));
  EXPECT_EQ(Err::Ok, kernel.umount("/mnt"));
}

}  // namespace
}  // namespace bsim::test
