// Tests for the io_uring-style batched syscall path (paper §8.1):
// batching semantics, error reporting through CQEs, and the crossing-cost
// arithmetic that motivates using it for FUSE block I/O.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"
#include "kernel/uring.h"

namespace bsim::test {
namespace {

using kern::Cqe;
using kern::Err;
using kern::IoUring;

class UringTest : public BentoXv6Fixture {
 protected:
  int open_file(std::string_view path, int flags) {
    auto fd = kernel_.open(proc(), path, flags, 0644);
    EXPECT_TRUE(fd.ok());
    return fd.value();
  }
};

TEST_F(UringTest, SubmitExecutesWholeBatch) {
  const int fd = open_file("/mnt/batch.txt", kern::kOCreat | kern::kORdWr);
  IoUring ring(kernel_, proc());

  const std::string a = "first ", b = "second ", c = "third";
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(a), 0, 1));
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(b), a.size(), 2));
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(c), a.size() + b.size(), 3));
  EXPECT_EQ(3U, ring.sq_pending());

  auto n = ring.submit();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(3U, n.value());
  EXPECT_EQ(0U, ring.sq_pending());
  EXPECT_EQ(3U, ring.cq_ready());

  // Data landed.
  std::vector<std::byte> buf(a.size() + b.size() + c.size());
  auto r = kernel_.pread(proc(), fd, buf, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("first second third", to_string(buf));
}

TEST_F(UringTest, CqesArriveInSubmissionOrderWithUserData) {
  const int fd = open_file("/mnt/order.txt", kern::kOCreat | kern::kORdWr);
  IoUring ring(kernel_, proc());
  const std::string data = "x";
  for (std::uint64_t tag = 10; tag < 15; ++tag) {
    ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), tag - 10, tag));
  }
  ASSERT_TRUE(ring.submit().ok());
  for (std::uint64_t tag = 10; tag < 15; ++tag) {
    auto cqe = ring.pop_cqe();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(tag, cqe->user_data);
    EXPECT_EQ(Err::Ok, cqe->err);
    EXPECT_EQ(1U, cqe->res);
  }
  EXPECT_FALSE(ring.pop_cqe().has_value());
}

TEST_F(UringTest, ReadSqeReturnsData) {
  const int fd = open_file("/mnt/read.txt", kern::kOCreat | kern::kORdWr);
  const std::string data = "ring around the rosie";
  ASSERT_TRUE(kernel_.pwrite(proc(), fd, as_bytes(data), 0).ok());

  IoUring ring(kernel_, proc());
  std::vector<std::byte> buf(data.size());
  ASSERT_EQ(Err::Ok, ring.prep_read(fd, buf, 0, 42));
  ASSERT_TRUE(ring.submit().ok());
  auto cqe = ring.pop_cqe();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(Err::Ok, cqe->err);
  EXPECT_EQ(data.size(), cqe->res);
  EXPECT_EQ(data, to_string(buf));
}

TEST_F(UringTest, BadFdFailsInCqeNotSubmit) {
  IoUring ring(kernel_, proc());
  std::vector<std::byte> buf(8);
  ASSERT_EQ(Err::Ok, ring.prep_read(9999, buf, 0, 7));
  auto n = ring.submit();
  ASSERT_TRUE(n.ok());  // the *submission* succeeds
  EXPECT_EQ(1U, n.value());
  auto cqe = ring.pop_cqe();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(Err::BadF, cqe->err);
  EXPECT_EQ(7U, cqe->user_data);
}

TEST_F(UringTest, MixedBatchReportsPerOpErrors) {
  const int fd = open_file("/mnt/mixed.txt", kern::kOCreat | kern::kORdWr);
  IoUring ring(kernel_, proc());
  const std::string data = "ok";
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 0, 1));
  std::vector<std::byte> buf(2);
  ASSERT_EQ(Err::Ok, ring.prep_read(12345, buf, 0, 2));  // bad fd
  ASSERT_EQ(Err::Ok, ring.prep_fsync(fd, false, 3));
  ASSERT_TRUE(ring.submit().ok());

  auto c1 = ring.pop_cqe();
  auto c2 = ring.pop_cqe();
  auto c3 = ring.pop_cqe();
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(Err::Ok, c1->err);
  EXPECT_EQ(Err::BadF, c2->err);
  EXPECT_EQ(Err::Ok, c3->err);
}

TEST_F(UringTest, SqOverflowReturnsAgain) {
  const int fd = open_file("/mnt/full.txt", kern::kOCreat | kern::kORdWr);
  IoUring ring(kernel_, proc(), /*sq_entries=*/2);
  const std::string data = "d";
  EXPECT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 0, 1));
  EXPECT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 1, 2));
  EXPECT_EQ(Err::Again, ring.prep_write(fd, as_bytes(data), 2, 3));
  ASSERT_TRUE(ring.submit().ok());
  EXPECT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 2, 3));  // room again
}

TEST_F(UringTest, DeviceFileRespectsODirectAlignment) {
  const int fd = open_file("/dev/ssd0", kern::kORdWr | kern::kODirect);
  IoUring ring(kernel_, proc());

  std::vector<std::byte> page(4096);
  ASSERT_EQ(Err::Ok, ring.prep_read(fd, page, 4096, 1));
  std::vector<std::byte> odd(100);
  ASSERT_EQ(Err::Ok, ring.prep_read(fd, odd, 4096, 2));  // bad length
  ASSERT_TRUE(ring.submit().ok());

  auto c1 = ring.pop_cqe();
  auto c2 = ring.pop_cqe();
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(Err::Ok, c1->err);
  EXPECT_EQ(4096U, c1->res);
  EXPECT_EQ(Err::Inval, c2->err);
}

TEST_F(UringTest, FsyncSqeIsDurableOnDeviceFile) {
  const int fd = open_file("/dev/ssd0", kern::kORdWr | kern::kODirect);
  IoUring ring(kernel_, proc());
  std::vector<std::byte> page(4096, std::byte{0x5a});
  const std::uint64_t far_block = 20000;  // out of the fs's way
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, page, far_block * 4096, 1));
  ASSERT_EQ(Err::Ok, ring.prep_fsync(fd, false, 2));
  ASSERT_TRUE(ring.submit().ok());
  auto c1 = ring.pop_cqe();
  auto c2 = ring.pop_cqe();
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(Err::Ok, c1->err);
  EXPECT_EQ(Err::Ok, c2->err);

  std::array<std::byte, 4096> check{};
  kernel_.device("ssd0")->read_untimed(far_block, check);
  EXPECT_EQ(std::byte{0x5a}, check[0]);
  EXPECT_EQ(std::byte{0x5a}, check[4095]);
}

TEST_F(UringTest, BatchIsCheaperThanPerOpSyscalls) {
  // The §8.1 claim in cost-model terms: N batched ops pay 1 crossing +
  // N small dispatches; N syscalls pay N crossings + N VFS dispatches.
  const int fd = open_file("/dev/ssd0", kern::kORdWr | kern::kODirect);
  constexpr int kOps = 64;
  std::vector<std::byte> page(4096);

  const auto t0 = sim::now();
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(kernel_.pread(proc(), fd, page,
                              static_cast<std::uint64_t>(i) * 4096).ok());
  }
  const auto syscall_time = sim::now() - t0;

  IoUring ring(kernel_, proc());
  const auto t1 = sim::now();
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(Err::Ok, ring.prep_read(fd, page,
                                      static_cast<std::uint64_t>(i) * 4096,
                                      static_cast<std::uint64_t>(i)));
  }
  ASSERT_TRUE(ring.submit().ok());
  while (ring.pop_cqe().has_value()) {
  }
  const auto uring_time = sim::now() - t1;

  EXPECT_LT(uring_time, syscall_time);
  // The saving must be at least the (N-1) avoided crossings.
  EXPECT_GE(syscall_time - uring_time,
            static_cast<sim::Nanos>(kOps - 1) * sim::costs().syscall / 2);
}

TEST_F(UringTest, StatsTrackLifetimeCounts) {
  const int fd = open_file("/mnt/stats.txt", kern::kOCreat | kern::kORdWr);
  IoUring ring(kernel_, proc());
  const std::string data = "s";
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 0, 1));
  ASSERT_TRUE(ring.submit().ok());
  ASSERT_EQ(Err::Ok, ring.prep_write(fd, as_bytes(data), 1, 2));
  ASSERT_EQ(Err::Ok, ring.prep_fsync(fd, true, 3));
  ASSERT_TRUE(ring.submit().ok());
  while (ring.pop_cqe().has_value()) {
  }
  EXPECT_EQ(3U, ring.stats().sqes);
  EXPECT_EQ(2U, ring.stats().enters);
  EXPECT_EQ(3U, ring.stats().cqes);
}

TEST_F(UringTest, UserBlockBackendBatchesDurableWrites) {
  // The §8.1 integration: a UserBlockBackend in uring mode performs its
  // durable block write (pwrite + whole-file fsync) as ONE submission,
  // and flush_all batches every dirty block plus the fsync.
  auto daemon = kernel_.new_process();
  auto fd = kernel_.open(*daemon, "/dev/ssd0",
                         kern::kORdWr | kern::kODirect);
  ASSERT_TRUE(fd.ok());
  bento::UserBlockBackend backend(kernel_, *daemon, fd.value(),
                                  kernel_.device("ssd0")->nblocks(),
                                  /*cache_blocks=*/64, /*use_uring=*/true);

  auto cap = bento::CapTestAccess::make(backend);
  const std::uint64_t blockno = 20001;  // clear of the mounted fs
  {
    auto bh = cap->getblk(blockno);
    ASSERT_TRUE(bh.ok());
    bh.value().data()[0] = std::byte{0x77};
    bh.value().set_dirty();
    bh.value().sync();  // pwrite + fsync in one io_uring_enter
  }
  EXPECT_EQ(1U, backend.io_stats().uring_enters);
  EXPECT_EQ(1U, backend.io_stats().pwrites);
  EXPECT_EQ(1U, backend.io_stats().fsyncs);

  std::array<std::byte, 4096> check{};
  kernel_.device("ssd0")->read_untimed(blockno, check);
  EXPECT_EQ(std::byte{0x77}, check[0]);

  // Several dirty blocks + the trailing fsync ride one more submission.
  for (std::uint64_t b = 20002; b < 20010; ++b) {
    auto bh = cap->getblk(b);
    ASSERT_TRUE(bh.ok());
    bh.value().data()[0] = std::byte{0x42};
    bh.value().set_dirty();
  }
  backend.flush_all();
  EXPECT_EQ(2U, backend.io_stats().uring_enters);
  kernel_.device("ssd0")->read_untimed(20007, check);
  EXPECT_EQ(std::byte{0x42}, check[0]);
  (void)kernel_.close(*daemon, fd.value());
}

TEST_F(UringTest, EmptySubmitPaysOneCrossingOnly) {
  IoUring ring(kernel_, proc());
  const auto t0 = sim::now();
  auto n = ring.submit();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(0U, n.value());
  EXPECT_EQ(sim::costs().syscall, sim::now() - t0);
}

}  // namespace
}  // namespace bsim::test
