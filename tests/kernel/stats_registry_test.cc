// Stats-registry exhaustiveness: every *Stats owner in the tree must show
// up in Kernel::dump_stats(). Mounting each deployment and checking the
// snapshot for the known struct tags means a new stats struct that is
// never registered (or a registration that silently drops out) fails here
// rather than going dark in the bench artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "sim/thread.h"
#include "workloads/testbed.h"

namespace bsim {
namespace {

/// Mounts `fs`, does a little I/O (create, write, fsync, read), and
/// returns the kernel's JSON stats snapshot.
std::string snapshot(const std::string& fs, int stripe = 1) {
  wl::BedOptions opts;
  opts.fs = fs;
  opts.device_blocks = 32768;
  opts.stripe_devices = stripe;
  wl::TestBed bed(opts);

  sim::SimThread thread(1);
  sim::ScopedThread in(thread);
  kern::Kernel& k = bed.kernel();
  kern::Process& p = k.proc();
  auto fd = k.open(p, "/mnt/snap", kern::kOCreat | kern::kORdWr);
  EXPECT_TRUE(fd.ok());
  std::vector<std::byte> buf(4096, std::byte{0x42});
  EXPECT_TRUE(k.pwrite(p, fd.value(), buf, 0).ok());
  EXPECT_EQ(kern::Err::Ok, k.fsync(p, fd.value()));
  EXPECT_TRUE(k.pread(p, fd.value(), buf, 0).ok());
  EXPECT_EQ(kern::Err::Ok, k.close(p, fd.value()));
  return k.dump_stats();
}

bool has_struct(const std::string& snap, const std::string& name) {
  return snap.find("\"struct\": \"" + name + "\"") != std::string::npos;
}

TEST(StatsRegistry, EveryKnownStatsStructIsRegistered) {
  struct Deployment {
    const char* fs;
    int stripe;
    std::vector<const char*> expects;
  };
  // Structs common to every kernel-side deployment. FlusherStats is not
  // core: ext4j journals its own writeback and FUSE drains in userspace,
  // so neither attaches kernel flusher shards.
  const std::vector<const char*> kCore = {
      "DeviceStats", "RequestQueueStats", "PlugStats",
      "BufferCacheStats", "AddressSpaceStats"};
  const Deployment deployments[] = {
      {"xv6_bento", 1, {"FlusherStats", "ModuleStats", "LogStats"}},
      {"xv6_bento", 4, {"AggregateVolumeStats", "LogStats"}},
      {"xv6_nvmlog", 1, {"ModuleStats", "NvmLogStats", "LogStats"}},
      {"xv6_vfs", 1, {"FlusherStats", "CLogStats"}},
      {"xv6_fuse", 1, {"FuseConnStats", "ModuleStats", "LogStats"}},
      {"ext4j", 1, {"JournalStats", "MapStats"}},
  };

  // The exhaustiveness roll: every stats struct the tree defines must be
  // seen in at least one snapshot. Adding a new *Stats without wiring it
  // into dump_stats()/register_stats() fails this list.
  std::vector<std::string> all_known = {
      "DeviceStats",    "RequestQueueStats", "PlugStats",
      "BufferCacheStats", "AddressSpaceStats", "FlusherStats",
      "AggregateVolumeStats", "ModuleStats", "LogStats",
      "NvmLogStats",    "CLogStats",       "FuseConnStats",
      "JournalStats",   "MapStats"};
  std::string everything;

  for (const Deployment& d : deployments) {
    SCOPED_TRACE(std::string(d.fs) + (d.stripe > 1 ? "/striped" : ""));
    const std::string snap = snapshot(d.fs, d.stripe);
    EXPECT_NE(snap.find("\"type\": \"stats_snapshot\""), std::string::npos);
    for (const char* want : kCore) {
      EXPECT_TRUE(has_struct(snap, want)) << want;
    }
    for (const char* want : d.expects) {
      EXPECT_TRUE(has_struct(snap, want)) << want;
    }
    everything += snap;
  }
  for (const std::string& want : all_known) {
    EXPECT_TRUE(has_struct(everything, want))
        << want << " is registered nowhere — wire it into dump_stats";
  }
}

TEST(StatsRegistry, SnapshotWritesToFile) {
  wl::BedOptions opts;
  opts.fs = "xv6_bento";
  opts.device_blocks = 32768;
  wl::TestBed bed(opts);
  sim::SimThread thread(1);
  sim::ScopedThread in(thread);
  const std::string path = "stats_registry_snapshot_test.json";
  EXPECT_EQ(kern::Err::Ok, bed.kernel().dump_stats_to(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bsim
