// Unit + integration tests for the background flusher: threshold and
// periodic-timer wakes, drains off the writer's clock, QD>1 buffer
// draining, the fsync catch-up barrier, and the mount opt-out.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "../testutil.h"
#include "blockdev/striped.h"
#include "kernel/flusher.h"
#include "kernel/vfs.h"

namespace bsim::test {
namespace {

using kern::AddressSpaceOps;
using kern::Err;
using kern::FileType;
using kern::Flusher;
using kern::FlusherParams;
using kern::Inode;
using kern::PageRun;
using kern::SuperBlock;

/// Counts writepages traffic; pretends everything reaches media.
class CountingAops final : public AddressSpaceOps {
 public:
  Err readpage(Inode&, std::uint64_t, std::span<std::byte> out) override {
    std::memset(out.data(), 0, out.size());
    return Err::Ok;
  }
  Err writepage(Inode&, std::uint64_t, std::span<const std::byte>) override {
    pages += 1;
    return Err::Ok;
  }
  Err writepages(Inode&, std::span<const PageRun> runs,
                 std::size_t& completed_runs) override {
    completed_runs = 0;
    for (const auto& run : runs) {
      pages += run.pages.size();
      completed_runs += 1;
    }
    return Err::Ok;
  }
  [[nodiscard]] bool has_writepages() const override { return true; }

  std::size_t pages = 0;
};

class FlusherTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::set_current(&thread_); }
  void TearDown() override { sim::set_current(nullptr); }

  Inode& make_file(SuperBlock& sb, kern::Ino ino, AddressSpaceOps& aops) {
    Inode& inode = sb.inew(ino);
    inode.type = FileType::Regular;
    inode.aops = &aops;
    return inode;
  }

  static void dirty_pages(Inode& inode, std::uint64_t first, std::size_t n) {
    for (std::uint64_t pg = first; pg < first + n; ++pg) {
      auto& page = inode.mapping.find_or_alloc(pg);
      page.uptodate = true;
      inode.mapping.mark_dirty(pg);
    }
  }

  sim::SimThread thread_{0};
  blk::BlockDevice dev_{[] {
    blk::DeviceParams p;
    p.nblocks = 4096;
    return p;
  }()};
};

TEST_F(FlusherTest, ThresholdWakeDrainsOffTheWriterClock) {
  SuperBlock sb(dev_, 0);
  CountingAops aops;
  Inode& inode = make_file(sb, 10, aops);

  FlusherParams fp;
  fp.dirty_pages_threshold = 8;
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();
  ASSERT_NE(f, nullptr);

  // Below the threshold: the poke is a no-op.
  dirty_pages(inode, 0, 4);
  EXPECT_FALSE(f->wake_due(&inode));
  f->poke(&inode);
  EXPECT_EQ(inode.mapping.nr_dirty(), 4u);
  EXPECT_EQ(f->stats().wakeups, 0u);

  // Crossing it wakes the flusher, which drains EVERYTHING — on its own
  // clock: the writer's virtual time must not advance.
  dirty_pages(inode, 4, 4);
  EXPECT_TRUE(f->wake_due(&inode));
  const sim::Nanos writer_before = sim::now();
  f->poke(&inode);
  EXPECT_EQ(sim::now(), writer_before);
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
  EXPECT_EQ(aops.pages, 8u);
  EXPECT_EQ(f->stats().threshold_wakeups, 1u);
  EXPECT_EQ(f->stats().pages_flushed, 8u);
  // The flusher's clock advanced past the poke point (it did timed work).
  EXPECT_GT(f->last_completion(), writer_before);

  // wait_idle is the fsync barrier: the foreground catches up.
  f->wait_idle();
  EXPECT_EQ(sim::now(), f->last_completion());
}

TEST_F(FlusherTest, PeriodicTimerDrainsBelowThreshold) {
  SuperBlock sb(dev_, 0);
  CountingAops aops;
  Inode& inode = make_file(sb, 10, aops);

  FlusherParams fp;
  fp.dirty_pages_threshold = 1000;  // unreachable
  fp.period = sim::msec(5);
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();

  dirty_pages(inode, 0, 3);
  f->poke(&inode);  // before the period: nothing
  EXPECT_EQ(inode.mapping.nr_dirty(), 3u);

  sim::current().wait(sim::msec(6));  // kupdated interval elapses
  f->poke(&inode);
  EXPECT_EQ(inode.mapping.nr_dirty(), 0u);
  EXPECT_EQ(f->stats().timer_wakeups, 1u);
  EXPECT_EQ(f->stats().pages_flushed, 3u);
}

TEST_F(FlusherTest, DrainsDirtyBuffersThroughAsyncBatches) {
  SuperBlock sb(dev_, 0);
  FlusherParams fp;
  fp.drain_buffers = true;
  fp.dirty_buffers_min = 16;
  fp.max_batch = 8;
  fp.queue_depth = 2;
  fp.use_plug = false;  // this test pins down the QD>1 ticket path
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();

  auto& bc = sb.bufcache();
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto bh = bc.getblk(i * 3);  // scattered
    ASSERT_TRUE(bh.ok());
    bc.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  EXPECT_TRUE(f->wake_due(nullptr));
  f->poke(nullptr);
  EXPECT_EQ(bc.nr_dirty(), 0u);
  EXPECT_EQ(f->stats().buffers_flushed, 32u);
  EXPECT_EQ(dev_.queue().stats().async_batches, 4u);  // 32 / 8
  EXPECT_GE(dev_.queue().stats().max_inflight, 2u);   // QD>1
  EXPECT_EQ(dev_.queue().inflight(), 0u);
  for (auto* bh : held) bc.brelse(bh);
}

TEST_F(FlusherTest, DefaultDrainPlugsBatchesIntoOneElevatorPass) {
  // The default drain (use_plug on) accumulates the sub-batches under a
  // request plug: one queue submission per wake, cross-batch merging.
  SuperBlock sb(dev_, 0);
  FlusherParams fp;
  fp.drain_buffers = true;
  fp.dirty_buffers_min = 16;
  fp.max_batch = 8;
  fp.queue_depth = 2;
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();

  auto& bc = sb.bufcache();
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto bh = bc.getblk(100 + i);  // contiguous: merges into one request
    ASSERT_TRUE(bh.ok());
    bc.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  const auto wreq_before = dev_.stats().write_requests;
  f->poke(nullptr);
  EXPECT_EQ(bc.nr_dirty(), 0u);
  EXPECT_EQ(f->stats().buffers_flushed, 32u);
  EXPECT_EQ(dev_.plug_stats().plugs, 1u);
  EXPECT_EQ(dev_.plug_stats().plugged_batches, 4u);  // 32 / 8
  EXPECT_EQ(dev_.queue().stats().async_batches, 1u);  // one merged pass
  EXPECT_EQ(dev_.stats().write_requests - wreq_before, 1u);  // one command
  EXPECT_EQ(dev_.queue().inflight(), 0u);
  for (auto* bh : held) bc.brelse(bh);
}

TEST_F(FlusherTest, DrainWriteErrorLandsInTheErrorSequenceOnce) {
  // An EIO on the flusher's own clock (the writer returned long ago) must
  // surface through the buffer cache's writeback error sequence so the
  // caller's NEXT fsync reports it — exactly once per sampled cursor.
  SuperBlock sb(dev_, 0);
  FlusherParams fp;
  fp.drain_buffers = true;
  fp.dirty_buffers_min = 4;
  fp.dirty_pages_threshold = 1000;
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();

  auto& bc = sb.bufcache();
  kern::ErrSeqCursor cur = bc.wb_err_sample();  // "fd opened here"
  dev_.inject_write_error(7);
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t b = 5; b < 13; ++b) {
    auto bh = bc.getblk(b);
    ASSERT_TRUE(bh.ok());
    bc.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  f->poke(nullptr);

  // Block 7's write failed; the rest drained. The failed buffer stays
  // dirty (the write never happened) and the failure is sequenced.
  EXPECT_EQ(bc.nr_dirty(), 1u);
  EXPECT_EQ(bc.wb_err_seq(), 1u);
  EXPECT_EQ(bc.wb_err_check(cur), Err::Io);  // reported at "fsync"...
  EXPECT_EQ(bc.wb_err_check(cur), Err::Ok);  // ...exactly once

  // A cursor sampled after the failure (a later open) sees nothing.
  kern::ErrSeqCursor later = bc.wb_err_sample();
  EXPECT_EQ(bc.wb_err_check(later), Err::Ok);

  dev_.clear_write_error(7);
  for (auto* bh : held) bc.brelse(bh);
}

TEST_F(FlusherTest, MultipleInodesAllDrain) {
  SuperBlock sb(dev_, 0);
  CountingAops aops;
  Inode& a = make_file(sb, 1, aops);
  Inode& b = make_file(sb, 2, aops);

  FlusherParams fp;
  fp.dirty_pages_threshold = 8;
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));

  dirty_pages(a, 0, 8);   // at threshold
  dirty_pages(b, 10, 3);  // below — drained anyway once awake
  sb.flusher()->poke(&a);
  EXPECT_EQ(a.mapping.nr_dirty(), 0u);
  EXPECT_EQ(b.mapping.nr_dirty(), 0u);
  EXPECT_EQ(sb.flusher()->stats().pages_flushed, 11u);
}

TEST_F(FlusherTest, WakeScansOnlyDirtyInodes) {
  // The O(dirty) regression for the old full-walk: a wake on a cache full
  // of CLEAN inodes must examine only the dirty-inode list, not the whole
  // inode cache.
  SuperBlock sb(dev_, 0);
  CountingAops aops;
  for (kern::Ino ino = 100; ino < 300; ++ino) {
    make_file(sb, ino, aops);  // 200 resident, clean inodes
  }
  Inode& d1 = make_file(sb, 1, aops);
  Inode& d2 = make_file(sb, 2, aops);
  Inode& d3 = make_file(sb, 3, aops);
  dirty_pages(d1, 0, 4);
  dirty_pages(d2, 0, 4);
  dirty_pages(d3, 0, 4);
  EXPECT_EQ(sb.dirty_inode_count(), 3u);

  FlusherParams fp;
  fp.dirty_pages_threshold = 4;
  sb.attach_flusher(std::make_unique<Flusher>(sb, fp));
  Flusher* f = sb.flusher();
  f->poke(&d1);
  EXPECT_EQ(f->stats().pages_flushed, 12u);  // all three dirty inodes
  EXPECT_EQ(f->stats().inodes_scanned, 3u)
      << "a wake must walk the dirty list, not all " << sb.cached_inodes()
      << " cached inodes";
  EXPECT_EQ(sb.dirty_inode_count(), 3u);  // pruned lazily at next wake
  dirty_pages(d1, 0, 4);
  f->poke(&d1);
  // Second wake re-scans the 3 list entries, prunes the 2 now-clean ones.
  EXPECT_EQ(f->stats().inodes_scanned, 6u);
  EXPECT_EQ(sb.dirty_inode_count(), 1u);
}

TEST(FlusherSharding, BackpressureThrottlesOnlySlowMemberWriters) {
  // Two-speed striped volume: member 1's transfers are ~300x slower than
  // member 0's. Each member has its own flusher; per-device backpressure
  // must throttle only writers whose inodes shard to the slow member.
  sim::SimThread boot(0);
  sim::ScopedThread in(boot);
  blk::StripeParams sp;
  sp.ndevices = 2;
  sp.chunk_blocks = 4;
  std::vector<blk::DeviceParams> members(2);
  members[0].nblocks = members[1].nblocks = 4096;
  members[1].write_xfer = sim::usec(2000);  // the slow shard
  blk::StripedDevice dev(sp, members);
  SuperBlock sb(dev, 0);

  FlusherParams fp;
  fp.drain_buffers = true;
  fp.dirty_buffers_min = 8;  // volume-wide; per-member trigger = 4
  fp.dirty_pages_threshold = 1000;
  fp.max_backlog = sim::msec(1);
  kern::maybe_attach_flusher(sb, "", fp);
  ASSERT_EQ(sb.flusher_count(), 2u);  // one flusher per member device

  Inode& fast_file = sb.inew(10);  // ino 10 -> shard 0
  Inode& slow_file = sb.inew(11);  // ino 11 -> shard 1
  fast_file.type = slow_file.type = FileType::Regular;
  ASSERT_EQ(sb.flusher_for(&fast_file), sb.flusher_at(0));
  ASSERT_EQ(sb.flusher_for(&slow_file), sb.flusher_at(1));

  // 16 dirty buffers per member: even chunks live on member 0, odd on 1.
  auto& bc = sb.bufcache();
  std::vector<kern::BufferHead*> held;
  for (std::uint64_t chunk = 0; chunk < 32; ++chunk) {
    auto bh = bc.getblk(chunk * 4);
    ASSERT_TRUE(bh.ok());
    bc.mark_dirty(bh.value());
    held.push_back(bh.value());
  }
  ASSERT_EQ(bc.nr_dirty_shard(0), 16u);
  ASSERT_EQ(bc.nr_dirty_shard(1), 16u);

  // A writer bound to the FAST member pokes through the normal writer
  // hook: its own flusher drains shard 0 and may throttle it; the slow
  // member's flusher gets a courtesy wake — it drains ITS shard too (no
  // member starves just because no writer's inode hashes to it), but an
  // unowned member's backlog can never throttle this writer.
  sim::SimThread fast_writer(10);
  {
    sim::ScopedThread w(fast_writer);
    sb.poke_flushers(&fast_file, 1000);
  }
  EXPECT_EQ(bc.nr_dirty_shard(0), 0u);
  EXPECT_EQ(bc.nr_dirty_shard(1), 0u);  // courtesy wake drained the rest
  EXPECT_EQ(sb.flusher_at(0)->stats().buffers_flushed, 16u);
  EXPECT_EQ(sb.flusher_at(1)->stats().buffers_flushed, 16u);
  EXPECT_EQ(sb.flusher_at(0)->stats().throttle_waits, 0u);
  EXPECT_EQ(sb.flusher_at(1)->stats().throttle_waits, 0u);
  EXPECT_EQ(fast_writer.now(), 0);  // never throttled, never charged

  // A writer bound to the SLOW member: that member's drain is now far
  // past the backlog window, so THIS writer (and only this one) is
  // throttled to the slow member's drain rate.
  sim::SimThread slow_writer(11);
  {
    sim::ScopedThread w(slow_writer);
    sb.poke_flushers(&slow_file, 1000);
  }
  EXPECT_GE(sb.flusher_at(1)->stats().throttle_waits, 1u);
  EXPECT_EQ(sb.flusher_at(0)->stats().throttle_waits, 0u);
  EXPECT_GT(slow_writer.now(), sim::msec(1));  // held back by backpressure
  EXPECT_GT(sb.flusher_at(1)->last_completion(), slow_writer.now());

  for (auto* bh : held) bc.brelse(bh);
}

// ---- integration: real deployments ----

TEST(FlusherIntegration, BentoWritesDrainInBackgroundAndSurviveFsync) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 16384;  // 64 MiB
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 512);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  ASSERT_EQ(Err::Ok, kernel.mount("xv6_bento", "ssd0", "/mnt"));
  kern::SuperBlock* sb = kernel.sb_at("/mnt");
  ASSERT_NE(sb, nullptr);
  ASSERT_NE(sb->flusher(), nullptr) << "Bento mounts attach a flusher";

  auto& p = kernel.proc();
  auto fd = kernel.open(p, "/mnt/big", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  // 2 MiB of buffered writes: crosses the 256-dirty-page threshold
  // repeatedly, so the background flusher (not the writer) drains.
  std::string chunk(64 << 10, 'x');
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(kernel.write(p, fd.value(), as_bytes(chunk)).ok());
  }
  EXPECT_GT(sb->flusher()->stats().pages_flushed, 0u)
      << "background flusher should have drained threshold writeback";

  ASSERT_EQ(Err::Ok, kernel.fsync(p, fd.value()));
  // fsync caught up with THIS inode's background writeback (per-inode
  // barrier — an unrelated file's writeback would not be charged).
  auto ino = kernel.resolve("/mnt/big");
  ASSERT_TRUE(ino.ok());
  EXPECT_GE(sim::now(), ino.value()->mapping.writeback_done_at());
  sb->iput(ino.value());

  // Data integrity end-to-end.
  std::vector<std::byte> buf(chunk.size());
  ASSERT_TRUE(kernel.pread(p, fd.value(), buf, 31 * chunk.size()).ok());
  EXPECT_EQ(to_string({buf.data(), buf.size()}), chunk);
  ASSERT_EQ(Err::Ok, kernel.close(p, fd.value()));
  ASSERT_EQ(Err::Ok, kernel.umount("/mnt"));
}

TEST(FlusherIntegration, NoflusherMountOptRestoresWriterContextSync) {
  sim::SimThread thread(0);
  sim::ScopedThread in(thread);
  kern::Kernel kernel;
  blk::DeviceParams params;
  params.nblocks = 16384;
  auto& dev = kernel.add_device("ssd0", params);
  xv6::mkfs(dev, 512);
  bento::register_bento_fs(kernel, "xv6_bento", [] {
    return std::make_unique<xv6::Xv6FileSystem>();
  });
  ASSERT_EQ(Err::Ok,
            kernel.mount("xv6_bento", "ssd0", "/mnt", "noflusher"));
  kern::SuperBlock* sb = kernel.sb_at("/mnt");
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->flusher(), nullptr);
  ASSERT_EQ(Err::Ok, kernel.umount("/mnt"));
}

TEST(FlusherIntegration, DeterministicAcrossRuns) {
  // The same workload twice: device state and flusher stats must be
  // bit-identical (crash-sweep reproducibility depends on this).
  auto run = [] {
    sim::SimThread thread(0);
    sim::ScopedThread in(thread);
    kern::Kernel kernel;
    blk::DeviceParams params;
    params.nblocks = 16384;
    auto& dev = kernel.add_device("ssd0", params);
    xv6::mkfs(dev, 512);
    bento::register_bento_fs(kernel, "xv6_bento", [] {
      return std::make_unique<xv6::Xv6FileSystem>();
    });
    EXPECT_EQ(Err::Ok, kernel.mount("xv6_bento", "ssd0", "/mnt"));
    auto& p = kernel.proc();
    auto fd = kernel.open(p, "/mnt/f", kern::kOCreat | kern::kORdWr);
    std::string chunk(128 << 10, 'd');
    for (int i = 0; i < 16; ++i) {
      (void)kernel.write(p, fd.value(), as_bytes(chunk));
    }
    (void)kernel.fsync(p, fd.value());
    kern::SuperBlock* sb = kernel.sb_at("/mnt");
    const auto fstats = sb->flusher()->stats();
    struct Result {
      std::uint64_t writes, wakeups, pages;
      sim::Nanos clock;
    } r{dev.stats().writes, fstats.wakeups, fstats.pages_flushed,
        sim::now()};
    (void)kernel.close(p, fd.value());
    (void)kernel.umount("/mnt");
    return r;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.clock, b.clock);
}

}  // namespace
}  // namespace bsim::test
