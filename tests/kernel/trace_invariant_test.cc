// Block-trace invariants across volume topologies: per-id event ordering
// (Q <= D <= C with ids global across device slots), exact trailer counts
// vs DeviceStats, and the zero-cost property — arming "trace=N" must
// leave every virtual-time result bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "blockdev/trace.h"
#include "kernel/types.h"
#include "sim/thread.h"
#include "workloads/testbed.h"

namespace bsim {
namespace {

struct Topology {
  const char* name;
  int stripe = 1;
  int mirror = 1;
  int parity = 1;
};

const Topology kTopologies[] = {
    {"plain", 1, 1, 1},
    {"striped4", 4, 1, 1},
    {"mirror2", 1, 2, 1},
    {"parity4", 1, 1, 4},
};

/// Everything the workload's virtual-time outcome consists of: the final
/// clock and the device tree's aggregated counters.
struct RunResult {
  sim::Nanos end_time = 0;
  std::uint64_t reads = 0, writes = 0, flushes = 0;
  std::uint64_t read_requests = 0, write_requests = 0, merges = 0;
};

/// A deterministic mixed workload: create files, write, fsync, read back,
/// unlink one. `check` runs before teardown with the bed still mounted.
RunResult drive(const Topology& topo, const std::string& mount_opts,
                const std::function<void(wl::TestBed&)>& check = {}) {
  wl::BedOptions opts;
  opts.fs = "xv6_bento";
  opts.device_blocks = 32768;
  opts.mount_opts = mount_opts;
  opts.stripe_devices = topo.stripe;
  opts.mirror_devices = topo.mirror;
  opts.parity_devices = topo.parity;
  wl::TestBed bed(opts);

  sim::SimThread thread(1);
  sim::ScopedThread in(thread);
  kern::Kernel& k = bed.kernel();
  kern::Process& p = k.proc();
  std::vector<std::byte> buf(4096);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 13 & 0xff);
  }
  for (int f = 0; f < 6; ++f) {
    const std::string path = "/mnt/t" + std::to_string(f);
    auto fd = k.open(p, path, kern::kOCreat | kern::kORdWr);
    EXPECT_TRUE(fd.ok());
    for (int b = 0; b < 24; ++b) {
      EXPECT_TRUE(k.pwrite(p, fd.value(), buf,
                           static_cast<std::uint64_t>(b) * buf.size())
                      .ok());
    }
    EXPECT_EQ(kern::Err::Ok, k.fsync(p, fd.value()));
    std::vector<std::byte> back(buf.size());
    EXPECT_TRUE(k.pread(p, fd.value(), back, 0).ok());
    EXPECT_EQ(kern::Err::Ok, k.close(p, fd.value()));
  }
  EXPECT_EQ(kern::Err::Ok, k.unlink(p, "/mnt/t0"));
  EXPECT_EQ(kern::Err::Ok, k.sync(p));

  if (check) check(bed);

  RunResult r;
  r.end_time = sim::now();
  const blk::DeviceStats& s = bed.device().stats();
  r.reads = s.reads;
  r.writes = s.writes;
  r.flushes = s.flushes;
  r.read_requests = s.read_requests;
  r.write_requests = s.write_requests;
  r.merges = s.merges;
  return r;
}

/// Device slots with no registered children (fragment D/C land here).
std::vector<std::uint16_t> leaf_slots(const blk::Tracer& tr) {
  const std::vector<std::string>& names = tr.devices();
  std::vector<std::uint16_t> leaves;
  for (std::size_t d = 0; d < names.size(); ++d) {
    const std::string prefix = names[d] + "/";
    const bool has_child =
        std::any_of(names.begin(), names.end(), [&](const std::string& n) {
          return n.compare(0, prefix.size(), prefix) == 0;
        });
    if (!has_child) leaves.push_back(static_cast<std::uint16_t>(d));
  }
  return leaves;
}

TEST(TraceInvariants, MonotoneAndCountsMatchStats) {
  for (const Topology& topo : kTopologies) {
    SCOPED_TRACE(topo.name);
    drive(topo, "trace=100000", [&](wl::TestBed& bed) {
      blk::Tracer* tr = bed.device().tracer();
      ASSERT_NE(tr, nullptr);
      ASSERT_EQ(tr->dropped(), 0u) << "ring sized to hold the whole run";

      // Per-id monotonicity, ids global across slots: a mirror read's Q
      // lands on the volume slot while D/C land on the serving member.
      std::map<std::uint64_t, sim::Nanos> max_q, min_d, max_d, min_c;
      for (const blk::TraceEvent& e : tr->events()) {
        switch (e.ev) {
          case blk::TraceEv::Queue:
            max_q.try_emplace(e.id, e.t);
            max_q[e.id] = std::max(max_q[e.id], e.t);
            break;
          case blk::TraceEv::Dispatch:
            min_d.try_emplace(e.id, e.t);
            min_d[e.id] = std::min(min_d[e.id], e.t);
            max_d.try_emplace(e.id, e.t);
            max_d[e.id] = std::max(max_d[e.id], e.t);
            break;
          case blk::TraceEv::Complete:
            min_c.try_emplace(e.id, e.t);
            min_c[e.id] = std::min(min_c[e.id], e.t);
            break;
          default:
            break;
        }
      }
      EXPECT_FALSE(max_q.empty());
      for (const auto& [id, d] : min_d) {
        auto q = max_q.find(id);
        if (q != max_q.end()) {
          EXPECT_LE(q->second, d) << "id " << id;
        }
      }
      for (const auto& [id, c] : min_c) {
        auto d = max_d.find(id);
        if (d != max_d.end()) {
          EXPECT_LE(d->second, c) << "id " << id;
        }
        auto q = max_q.find(id);
        if (q != max_q.end()) {
          EXPECT_LE(q->second, c) << "id " << id;
        }
      }

      // Exact trailer counts vs the aggregated DeviceStats: the volume's
      // stats() is the sum over leaves, and M/D/F only occur on leaves.
      std::uint64_t traced_m = 0, traced_d = 0, traced_f = 0;
      for (const std::uint16_t d : leaf_slots(*tr)) {
        traced_m += tr->count(d, blk::TraceEv::Merge);
        traced_d += tr->count(d, blk::TraceEv::Dispatch);
        traced_f += tr->count(d, blk::TraceEv::Flush);
      }
      const blk::DeviceStats& s = bed.device().stats();
      EXPECT_EQ(traced_m, s.merges);
      EXPECT_EQ(traced_d, s.read_requests + s.write_requests);
      EXPECT_EQ(traced_f, s.flushes);
    });
  }
}

TEST(TraceInvariants, ArmingTraceIsFreeOnTheSimClock) {
  for (const Topology& topo : kTopologies) {
    SCOPED_TRACE(topo.name);
    const RunResult off = drive(topo, "");
    const RunResult on = drive(topo, "trace=100000");
    EXPECT_EQ(off.end_time, on.end_time);
    EXPECT_EQ(off.reads, on.reads);
    EXPECT_EQ(off.writes, on.writes);
    EXPECT_EQ(off.flushes, on.flushes);
    EXPECT_EQ(off.read_requests, on.read_requests);
    EXPECT_EQ(off.write_requests, on.write_requests);
    EXPECT_EQ(off.merges, on.merges);
  }
}

TEST(TraceInvariants, RingOverflowKeepsExactCounts) {
  // A tiny ring drops oldest events but the per-device counters stay
  // exact — the analyzer's cross-check relies on this.
  const Topology plain{"plain", 1, 1, 1};
  drive(plain, "trace=16", [&](wl::TestBed& bed) {
    blk::Tracer* tr = bed.device().tracer();
    ASSERT_NE(tr, nullptr);
    EXPECT_EQ(tr->events().size(), 16u);
    EXPECT_GT(tr->dropped(), 0u);
    std::uint64_t traced_d = 0;
    for (const std::uint16_t d : leaf_slots(*tr)) {
      traced_d += tr->count(d, blk::TraceEv::Dispatch);
    }
    const blk::DeviceStats& s = bed.device().stats();
    EXPECT_EQ(traced_d, s.read_requests + s.write_requests);
  });
}

}  // namespace
}  // namespace bsim
