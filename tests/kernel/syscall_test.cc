// Kernel syscall-surface tests: fd-table edge cases, mount management,
// path resolution errors, and the /dev block-device file interface the
// FUSE daemon depends on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"

namespace bsim::test {
namespace {

using kern::Err;
using kern::Whence;

class SyscallTest : public BentoXv6Fixture {};

TEST_F(SyscallTest, BadFdIsRejectedEverywhere) {
  std::vector<std::byte> buf(8);
  EXPECT_EQ(kernel_.read(proc(), 42, buf).error(), Err::BadF);
  EXPECT_EQ(kernel_.write(proc(), 42, buf).error(), Err::BadF);
  EXPECT_EQ(kernel_.pread(proc(), -1, buf, 0).error(), Err::BadF);
  EXPECT_EQ(kernel_.fsync(proc(), 7), Err::BadF);
  EXPECT_EQ(kernel_.close(proc(), 3), Err::BadF);
  EXPECT_EQ(kernel_.lseek(proc(), 9, 0, Whence::Set).error(), Err::BadF);
}

TEST_F(SyscallTest, FdsAreReusedAfterClose) {
  auto a = kernel_.open(proc(), "/mnt/a", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), a.value()));
  auto b = kernel_.open(proc(), "/mnt/b", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // slot reused
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), b.value()));
}

TEST_F(SyscallTest, ProcessesHaveIndependentFdTables) {
  auto p2 = kernel_.new_process();
  auto fd1 = kernel_.open(proc(), "/mnt/x", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd1.ok());
  // Same numeric fd in another process is invalid.
  EXPECT_EQ(kernel_.close(*p2, fd1.value()), Err::BadF);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd1.value()));
}

TEST_F(SyscallTest, MountErrors) {
  EXPECT_EQ(kernel_.mount("nope", "ssd0", "/m2"), Err::NoDev);
  EXPECT_EQ(kernel_.mount("xv6_bento", "nodev", "/m2"), Err::NoDev);
  EXPECT_EQ(kernel_.mount("xv6_bento", "ssd0", "relative"), Err::Inval);
  EXPECT_EQ(kernel_.mount("xv6_bento", "ssd0", "/mnt"), Err::Busy);
  EXPECT_EQ(kernel_.umount("/nothing"), Err::NoEnt);
}

TEST_F(SyscallTest, MountRejectsUnknownOptionTokens) {
  // Strict option validation: a typo'd token ("mirrro=2" for "mirror=2",
  // a malformed value "chunk=16k") used to mount fine with the option
  // silently ignored — an experiment then measured the wrong deployment.
  blk::DeviceParams params;
  params.nblocks = 32768;
  auto& dev = kernel_.add_device("ssd1", params);
  xv6::mkfs(dev, 4096);
  EXPECT_EQ(kernel_.mount("xv6_bento", "ssd1", "/m2", "mirrro=2"),
            Err::Inval);
  EXPECT_EQ(kernel_.mount("xv6_bento", "ssd1", "/m2", "chunk=16k"),
            Err::Inval);
  EXPECT_EQ(kernel_.mount("xv6_bento", "ssd1", "/m2", "noflusher,bogus"),
            Err::Inval);
  // Nothing was mounted by the rejected attempts.
  EXPECT_EQ(kernel_.umount("/m2"), Err::NoEnt);
  // Every known token (and combinations) still mounts...
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_bento", "ssd1", "/m2",
                                   "rw,noflusher,max_log_batch=4"));
  ASSERT_EQ(Err::Ok, kernel_.umount("/m2"));
  // ... and "lax_opts" opts one mount out of validation (options the
  // vocabulary does not know yet, e.g. from an experiment branch).
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_bento", "ssd1", "/m2",
                                   "lax_opts,future_knob=7"));
  ASSERT_EQ(Err::Ok, kernel_.umount("/m2"));
}

TEST_F(SyscallTest, PathResolutionErrors) {
  EXPECT_EQ(kernel_.stat(proc(), "/other/x").error(), Err::NoEnt);
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/no/such/depth").error(), Err::NoEnt);

  auto fd = kernel_.open(proc(), "/mnt/file", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  // A regular file used as a directory component.
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/file/sub").error(), Err::NotDir);

  const std::string too_long(kern::kNameMax + 10, 'n');
  EXPECT_EQ(kernel_.stat(proc(), "/mnt/" + too_long).error(),
            Err::NameTooLong);
}

TEST_F(SyscallTest, ReaddirOnFileFails) {
  auto fd = kernel_.open(proc(), "/mnt/plain", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(kernel_.readdir(proc(), "/mnt/plain").error(), Err::NotDir);
}

TEST_F(SyscallTest, OpenDirectoryForWriteFails) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/dir"));
  auto fd = kernel_.open(proc(), "/mnt/dir", kern::kORdWr);
  EXPECT_EQ(fd.error(), Err::IsDir);
}

TEST_F(SyscallTest, UnlinkDirectoryFails) {
  ASSERT_EQ(Err::Ok, kernel_.mkdir(proc(), "/mnt/dir2"));
  EXPECT_EQ(kernel_.unlink(proc(), "/mnt/dir2"), Err::IsDir);
  EXPECT_EQ(kernel_.rmdir(proc(), "/mnt/dir2"), Err::Ok);
}

TEST_F(SyscallTest, RmdirOnFileFails) {
  auto fd = kernel_.open(proc(), "/mnt/f", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(kernel_.rmdir(proc(), "/mnt/f"), Err::NotDir);
}

TEST_F(SyscallTest, LseekWhences) {
  auto fd = kernel_.open(proc(), "/mnt/seek", kern::kOCreat | kern::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("0123456789")).ok());
  EXPECT_EQ(kernel_.lseek(proc(), fd.value(), 2, Whence::Set).value(), 2u);
  EXPECT_EQ(kernel_.lseek(proc(), fd.value(), 3, Whence::Cur).value(), 5u);
  EXPECT_EQ(kernel_.lseek(proc(), fd.value(), -1, Whence::End).value(), 9u);
  EXPECT_EQ(kernel_.lseek(proc(), fd.value(), -100, Whence::Set).error(),
            Err::Inval);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(SyscallTest, DevFileODirectAlignment) {
  auto fd = kernel_.open(proc(), "/dev/ssd0", kern::kORdWr | kern::kODirect);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> misaligned(100);
  EXPECT_EQ(kernel_.pread(proc(), fd.value(), misaligned, 0).error(),
            Err::Inval);
  std::vector<std::byte> aligned(4096);
  EXPECT_EQ(kernel_.pread(proc(), fd.value(), aligned, 512).error(),
            Err::Inval);  // offset misaligned
  EXPECT_TRUE(kernel_.pread(proc(), fd.value(), aligned, 4096).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(SyscallTest, DevFileRoundTripAndFsync) {
  auto fd = kernel_.open(proc(), "/dev/ssd0", kern::kORdWr | kern::kODirect);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> out(4096, std::byte{0xA5});
  // Stay clear of the mounted fs metadata: write near the device's end.
  const std::uint64_t off = (32768 - 4) * 4096ULL;
  ASSERT_TRUE(kernel_.pwrite(proc(), fd.value(), out, off).ok());
  ASSERT_EQ(Err::Ok, kernel_.fsync(proc(), fd.value()));
  std::vector<std::byte> in(4096);
  ASSERT_TRUE(kernel_.pread(proc(), fd.value(), in, off).ok());
  EXPECT_EQ(in, out);
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

TEST_F(SyscallTest, OpenMissingDeviceFails) {
  auto fd = kernel_.open(proc(), "/dev/ghost", kern::kORdWr);
  EXPECT_EQ(fd.error(), Err::NoEnt);
}

TEST_F(SyscallTest, RenameAcrossMountsRejected) {
  // Second mount on the same device type but another device.
  blk::DeviceParams params;
  params.nblocks = 16384;
  auto& dev2 = kernel_.add_device("ssd1", params);
  xv6::mkfs(dev2, 1024);
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_vfs", "ssd1", "/mnt2"));
  auto fd = kernel_.open(proc(), "/mnt/src", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  EXPECT_EQ(kernel_.rename(proc(), "/mnt/src", "/mnt2/dst"), Err::Inval);
}

TEST_F(SyscallTest, LongestPrefixMountResolution) {
  blk::DeviceParams params;
  params.nblocks = 16384;
  auto& dev2 = kernel_.add_device("ssd1", params);
  xv6::mkfs(dev2, 1024);
  ASSERT_EQ(Err::Ok, kernel_.mount("xv6_vfs", "ssd1", "/mnt/inner"));
  // "/mnt/inner/f" must land on the inner mount, not on /mnt's fs.
  auto fd = kernel_.open(proc(), "/mnt/inner/f",
                         kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), as_bytes("inner")).ok());
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
  auto st = kernel_.statfs(proc(), "/mnt/inner");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().fs_name, "xv6_vfs");
}

TEST_F(SyscallTest, SyncFlushesEverything) {
  auto fd = kernel_.open(proc(), "/mnt/s", kern::kOCreat | kern::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(100000, std::byte{3});
  ASSERT_TRUE(kernel_.write(proc(), fd.value(), data).ok());
  EXPECT_EQ(Err::Ok, kernel_.sync(proc()));
  ASSERT_EQ(Err::Ok, kernel_.close(proc(), fd.value()));
}

}  // namespace
}  // namespace bsim::test
