// A ready-to-measure deployment: kernel + formatted device + one mounted
// file system, addressable by the names the paper's evaluation uses:
//   "xv6_bento" — xv6 on kernel Bento           (paper: Bento)
//   "xv6_vfs"   — xv6 on the raw VFS, in C style (paper: C-Kernel)
//   "xv6_fuse"  — xv6 behind the FUSE transport  (paper: FUSE)
//   "ext4j"     — the ext4 comparator, data=journal (paper: Ext4)
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "blockdev/mirrored.h"
#include "blockdev/parity.h"
#include "blockdev/striped.h"

#include "bento/bentofs.h"
#include "bento/nvmlog.h"
#include "ext4/ext4.h"
#include "fuse/fuse.h"
#include "kernel/kernel.h"
#include "xv6fs/fs.h"
#include "xv6fs/layout.h"
#include "xv6fs_c/xv6c.h"

namespace bsim::wl {

struct BedOptions {
  std::string fs = "xv6_bento";
  std::uint64_t device_blocks = 262'144;  // 1 GiB
  std::uint32_t ninodes = 262'144;        // xv6 inode-table size
  blk::DeviceParams device;               // latency model (nblocks overridden)
  std::string mount_opts;                 // e.g. "io_uring" for xv6_fuse
  /// Striped volume: >1 aggregates this many member devices behind one
  /// BlockDevice (device_blocks stays the LOGICAL volume size, split
  /// evenly). The same selection is honoured from mount_opts tokens
  /// ("stripe=4,chunk=16[,linear]"), so every deployment can mount a
  /// striped volume by option string alone.
  int stripe_devices = 1;
  std::uint64_t stripe_chunk_blocks = 16;  // 64 KiB chunks
  bool stripe_linear = false;
  /// Mirrored volume: >1 replicates each (stripe member) device this many
  /// ways (RAID1; combined with stripe_devices>1 it builds RAID10). Also
  /// honoured from mount_opts tokens ("mirror=2[,policy=rr|sq]").
  int mirror_devices = 1;
  blk::MirrorReadPolicy mirror_policy = blk::MirrorReadPolicy::RoundRobin;
  /// RAID5 parity volume: >=2 data columns over parity_devices + 1
  /// members (device_blocks stays the LOGICAL size). Combined with
  /// stripe_devices>1 it builds RAID50. Also honoured from mount_opts
  /// tokens ("parity=4,chunk=16[,spare=1][,scrub]"). Parity beats mirror
  /// when both are selected.
  int parity_devices = 1;  // <2: no parity volume
  std::uint64_t parity_chunk_blocks = 16;
  int spare_devices = 0;
  bool auto_scrub = false;
};

/// Builds the full stack for one deployment. The mountpoint is /mnt.
class TestBed {
 public:
  explicit TestBed(BedOptions opts) : opts_(std::move(opts)) {
    opts_.device.nblocks = opts_.device_blocks;
    blk::StripeParams sp;
    sp.ndevices = static_cast<std::size_t>(
        std::max(opts_.stripe_devices, 1));
    sp.chunk_blocks = opts_.stripe_chunk_blocks;
    sp.mode = opts_.stripe_linear ? blk::StripeMode::Linear
                                  : blk::StripeMode::Raid0;
    blk::MirrorParams mp;
    mp.nmirrors = static_cast<std::size_t>(
        std::max(opts_.mirror_devices, 1));
    mp.policy = opts_.mirror_policy;
    blk::ParityParams pp;
    pp.ndata = static_cast<std::size_t>(std::max(opts_.parity_devices, 1));
    pp.chunk_blocks = opts_.parity_chunk_blocks;
    pp.nspares = static_cast<std::size_t>(std::max(opts_.spare_devices, 0));
    pp.auto_scrub = opts_.auto_scrub;
    // Mount-option tokens override field-by-field; absent tokens keep
    // the programmatic configuration above.
    sp = blk::merge_stripe_opts(opts_.mount_opts, sp);
    mp = blk::merge_mirror_opts(opts_.mount_opts, mp);
    pp = blk::merge_parity_opts(opts_.mount_opts, pp);
    auto& dev = kernel_.add_volume(
        "ssd0", sp, mp, pp.ndata >= 2 ? std::optional(pp) : std::nullopt,
        opts_.device);
    if (opts_.fs == "ext4j") {
      ext4::mkfs(dev, /*inodes_per_group=*/8192);
    } else {
      xv6::mkfs(dev, opts_.ninodes);
    }
    bento::register_bento_fs(kernel_, "xv6_bento", [] {
      return std::make_unique<xv6::Xv6FileSystem>();
    });
    // xv6 with a Strata-style NVM op-log prepended (paper §3).
    bento::register_bento_fs(kernel_, "xv6_nvmlog", [] {
      return std::make_unique<bento::NvmLogFs>(
          std::make_unique<xv6::Xv6FileSystem>(),
          std::make_shared<blk::NvmRegion>(blk::NvmParams{}));
    });
    xv6c::register_xv6c(kernel_, "xv6_vfs");
    fuse::register_fuse_fs(kernel_, "xv6_fuse", [] {
      return std::make_unique<xv6::Xv6FileSystem>();
    });
    ext4::register_ext4(kernel_, "ext4j");

    sim::ScopedThread in(boot_);
    const kern::Err e =
        kernel_.mount(opts_.fs, "ssd0", "/mnt", opts_.mount_opts);
    if (e != kern::Err::Ok) {
      throw std::runtime_error("mount failed: " +
                               std::string(kern::err_name(e)));
    }
  }

  ~TestBed() {
    // Unmount runs timed flush code; give it a clock.
    sim::ScopedThread in(boot_);
    (void)kernel_.umount("/mnt");
  }

  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  [[nodiscard]] kern::Kernel& kernel() { return kernel_; }
  [[nodiscard]] kern::Process& proc() { return kernel_.proc(); }
  [[nodiscard]] blk::BlockDevice& device() { return *kernel_.device("ssd0"); }
  [[nodiscard]] const std::string& fs() const { return opts_.fs; }

 private:
  BedOptions opts_;
  sim::SimThread boot_{-1};
  kern::Kernel kernel_;
};

}  // namespace bsim::wl
