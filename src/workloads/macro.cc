#include "workloads/macro.h"

#include <array>
#include <cassert>
#include <stdexcept>

namespace bsim::wl {

namespace {

void must(kern::Err e, const char* what) {
  if (e != kern::Err::Ok) {
    throw std::runtime_error(std::string("macro workload: ") + what +
                             " failed: " + kern::err_name(e));
  }
}

template <class T>
T must_v(kern::Result<T> r, const char* what) {
  if (!r.ok()) {
    throw std::runtime_error(std::string("macro workload: ") + what +
                             " failed: " + kern::err_name(r.error()));
  }
  return r.value();
}

}  // namespace

// ---- Varmail ----

std::string Varmail::path_of(std::uint64_t i) {
  return "/mnt/vm/m" + std::to_string(i);
}

Varmail::Varmail(TestBed& bed, MailSet& set, int thread_id,
                 std::uint64_t seed)
    : bed_(bed),
      set_(set),
      thread_id_(thread_id),
      rng_(seed ^ (static_cast<std::uint64_t>(thread_id) << 32)),
      append_buf_(set.config.iosize),
      read_buf_(1 << 20) {}

void Varmail::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ != 0) return;
  set_.exists.assign(set_.config.nfiles, false);
  must(bed_.kernel().mkdir(*proc_, "/mnt/vm"), "mkdir /mnt/vm");
  sim::Rng prep(99);
  for (std::uint64_t i = 0; i < set_.config.nfiles; ++i) {
    const int fd = must_v(bed_.kernel().open(*proc_, path_of(i),
                                             kern::kOCreat | kern::kOWrOnly),
                          "pre-create mail file");
    const auto size =
        prep.size_around(set_.config.mean_size, 4 * set_.config.mean_size);
    std::vector<std::byte> data(size, std::byte{0x6d});
    must_v(bed_.kernel().write(*proc_, fd, data), "fill mail file");
    must(bed_.kernel().close(*proc_, fd), "close mail file");
    set_.exists[i] = true;
  }
}

std::uint64_t Varmail::pick_existing() {
  for (int tries = 0; tries < 64; ++tries) {
    const std::uint64_t i = rng_.below(set_.config.nfiles);
    if (set_.exists[i]) return i;
  }
  for (std::uint64_t i = 0; i < set_.config.nfiles; ++i) {
    if (set_.exists[i]) return i;
  }
  return 0;
}

std::int64_t Varmail::do_iteration() {
  auto& k = bed_.kernel();
  std::int64_t bytes = 0;

  // 1. deletefile
  {
    const std::uint64_t i = pick_existing();
    if (set_.exists[i]) {
      must(k.unlink(*proc_, path_of(i)), "varmail unlink");
      set_.exists[i] = false;
    }
  }
  // 2. createfile + appendfilerand + fsync + close
  {
    std::uint64_t i = rng_.below(set_.config.nfiles);
    for (int tries = 0; tries < 64 && set_.exists[i]; ++tries) {
      i = rng_.below(set_.config.nfiles);
    }
    if (!set_.exists[i]) {
      const int fd = must_v(
          k.open(*proc_, path_of(i), kern::kOCreat | kern::kOWrOnly),
          "varmail create");
      const auto n = rng_.size_around(set_.config.mean_size,
                                      4 * set_.config.mean_size);
      must_v(k.write(*proc_, fd,
                     std::span<const std::byte>(append_buf_.data(),
                                                std::min(n, append_buf_.size()))),
             "varmail append");
      must(k.fsync(*proc_, fd), "varmail fsync");
      must(k.close(*proc_, fd), "varmail close");
      set_.exists[i] = true;
      bytes += static_cast<std::int64_t>(n);
    }
  }
  // 3. open + readwholefile + appendfilerand + fsync + close
  {
    const std::uint64_t i = pick_existing();
    if (set_.exists[i]) {
      const int fd = must_v(k.open(*proc_, path_of(i), kern::kORdWr),
                            "varmail open rw");
      auto r = must_v(k.pread(*proc_, fd, read_buf_, 0), "varmail read");
      (void)k.lseek(*proc_, fd, 0, kern::Whence::End);
      must_v(k.write(*proc_, fd, append_buf_), "varmail append2");
      must(k.fsync(*proc_, fd), "varmail fsync2");
      must(k.close(*proc_, fd), "varmail close2");
      bytes += static_cast<std::int64_t>(r + append_buf_.size());
    }
  }
  // 4. open + readwholefile + close
  {
    const std::uint64_t i = pick_existing();
    if (set_.exists[i]) {
      const int fd = must_v(k.open(*proc_, path_of(i), kern::kORdOnly),
                            "varmail open ro");
      auto r = must_v(k.pread(*proc_, fd, read_buf_, 0), "varmail read2");
      must(k.close(*proc_, fd), "varmail close3");
      bytes += static_cast<std::int64_t>(r);
    }
  }
  return bytes;
}

std::int64_t Varmail::step() { return do_iteration(); }

// ---- Fileserver ----

std::string Fileserver::path_of(const FileserverConfig& cfg, std::uint64_t i) {
  return "/mnt/fs" +
         std::to_string(i % static_cast<std::uint64_t>(cfg.dirwidth)) + "/f" +
         std::to_string(i);
}

Fileserver::Fileserver(TestBed& bed, ServerSet& set, int thread_id,
                       std::uint64_t seed)
    : bed_(bed),
      set_(set),
      thread_id_(thread_id),
      rng_(seed ^ (static_cast<std::uint64_t>(thread_id) * 0x517cc1b7)),
      buf_(set.config.mean_size, std::byte{0x66}),
      read_buf_(4 << 20) {}

void Fileserver::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ != 0) return;
  auto& k = bed_.kernel();
  set_.exists.assign(set_.config.nfiles * 2, false);
  set_.next_new = set_.config.nfiles;
  for (int d = 0; d < set_.config.dirwidth; ++d) {
    must(k.mkdir(*proc_, "/mnt/fs" + std::to_string(d)), "mkdir fileserver");
  }
  sim::Rng prep(123);
  for (std::uint64_t i = 0; i < set_.config.nfiles; ++i) {
    const int fd =
        must_v(k.open(*proc_, path_of(set_.config, i),
                      kern::kOCreat | kern::kOWrOnly),
               "pre-create server file");
    const auto size =
        prep.size_around(set_.config.mean_size, 4 * set_.config.mean_size);
    must_v(k.write(*proc_, fd,
                   std::span<const std::byte>(
                       buf_.data(), std::min(size, buf_.size()))),
           "fill server file");
    must(k.close(*proc_, fd), "close server file");
    set_.exists[i] = true;
  }
}

std::uint64_t Fileserver::pick_existing() {
  for (int tries = 0; tries < 64; ++tries) {
    const std::uint64_t i = rng_.below(set_.exists.size());
    if (set_.exists[i]) return i;
  }
  for (std::uint64_t i = 0; i < set_.exists.size(); ++i) {
    if (set_.exists[i]) return i;
  }
  return 0;
}

std::int64_t Fileserver::step() {
  auto& k = bed_.kernel();
  std::int64_t bytes = 0;

  // 1. create + writewholefile + close
  {
    const std::uint64_t i = set_.next_new++;
    if (i >= set_.exists.size()) set_.exists.resize(2 * set_.exists.size());
    const int fd = must_v(k.open(*proc_, path_of(set_.config, i),
                                 kern::kOCreat | kern::kOWrOnly),
                          "fileserver create");
    const auto size =
        rng_.size_around(set_.config.mean_size, 4 * set_.config.mean_size);
    must_v(k.write(*proc_, fd,
                   std::span<const std::byte>(buf_.data(),
                                              std::min(size, buf_.size()))),
           "fileserver write");
    must(k.close(*proc_, fd), "fileserver close");
    set_.exists[i] = true;
    bytes += static_cast<std::int64_t>(size);
  }
  // 2. open + append + close
  {
    const std::uint64_t i = pick_existing();
    const int fd = must_v(k.open(*proc_, path_of(set_.config, i),
                                 kern::kOWrOnly | kern::kOAppend),
                          "fileserver open append");
    must_v(k.write(*proc_, fd,
                   std::span<const std::byte>(buf_.data(),
                                              set_.config.append_size)),
           "fileserver append");
    must(k.close(*proc_, fd), "fileserver close append");
    bytes += static_cast<std::int64_t>(set_.config.append_size);
  }
  // 3. open + readwholefile + close
  {
    const std::uint64_t i = pick_existing();
    const int fd = must_v(k.open(*proc_, path_of(set_.config, i),
                                 kern::kORdOnly),
                          "fileserver open read");
    auto r = must_v(k.pread(*proc_, fd, read_buf_, 0), "fileserver read");
    must(k.close(*proc_, fd), "fileserver close read");
    bytes += static_cast<std::int64_t>(r);
  }
  // 4. deletefile
  {
    const std::uint64_t i = pick_existing();
    if (set_.exists[i]) {
      must(k.unlink(*proc_, path_of(set_.config, i)), "fileserver unlink");
      set_.exists[i] = false;
    }
  }
  // 5. statfile
  {
    const std::uint64_t i = pick_existing();
    if (set_.exists[i]) {
      must_v(k.stat(*proc_, path_of(set_.config, i)), "fileserver stat");
    }
  }
  return bytes;
}

// ---- Untar ----

std::vector<UntarEntry> linux_tree_manifest(double scale,
                                            std::uint64_t seed) {
  // Shape parameters of linux-4.15: ~62k files across ~4.3k directories,
  // mean file ~14 KB with a long tail, a few large files.
  const auto nfiles = static_cast<std::uint64_t>(62000 * scale);
  const auto ndirs = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(4300 * scale));
  static constexpr std::array<const char*, 12> kTop = {
      "arch",  "drivers", "fs",    "include", "kernel", "net",
      "sound", "tools",   "mm",    "lib",     "block",  "Documentation"};

  sim::Rng rng(seed);
  std::vector<UntarEntry> out;
  out.reserve(nfiles + ndirs + 16);

  out.push_back({"/mnt/linux-4.15", 0, true});
  std::vector<std::string> dirs;
  dirs.reserve(ndirs);
  for (const char* top : kTop) {
    std::string d = std::string("/mnt/linux-4.15/") + top;
    out.push_back({d, 0, true});
    dirs.push_back(std::move(d));
  }
  // Nested subdirectories, biased toward drivers/ and arch/ like the real
  // tree; each new directory hangs off a previously created one.
  while (dirs.size() < ndirs) {
    const std::string& parent = dirs[rng.below(dirs.size())];
    if (std::count(parent.begin(), parent.end(), '/') > 7) continue;
    std::string d = parent + "/d" + std::to_string(dirs.size());
    out.push_back({d, 0, true});
    dirs.push_back(std::move(d));
  }
  for (std::uint64_t i = 0; i < nfiles; ++i) {
    const std::string& dir = dirs[rng.below(dirs.size())];
    UntarEntry e;
    e.path = dir + "/f" + std::to_string(i) + ".c";
    e.size = rng.size_around(14336, 1 << 20);
    out.push_back(std::move(e));
  }
  return out;
}

Untar::Untar(TestBed& bed, const std::vector<UntarEntry>& manifest)
    : bed_(bed), manifest_(manifest), data_(1 << 20, std::byte{0x55}) {}

void Untar::setup() { proc_ = bed_.kernel().new_process(); }

std::int64_t Untar::step() {
  if (next_ >= manifest_.size()) return -1;
  const UntarEntry& e = manifest_[next_++];
  auto& k = bed_.kernel();
  if (e.is_dir) {
    must(k.mkdir(*proc_, e.path), "untar mkdir");
    return 0;
  }
  const int fd = must_v(k.open(*proc_, e.path, kern::kOCreat | kern::kOWrOnly),
                        "untar create");
  std::uint64_t left = e.size;
  while (left > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, data_.size()));
    must_v(k.write(*proc_, fd,
                   std::span<const std::byte>(data_.data(), chunk)),
           "untar write");
    left -= chunk;
  }
  must(k.close(*proc_, fd), "untar close");
  return static_cast<std::int64_t>(e.size);
}

}  // namespace bsim::wl
