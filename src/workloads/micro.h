// Filebench-like microbenchmark personalities (paper §6.4–§6.5): read,
// write, createfiles, deletefiles. Each personality is a sim::Workload run
// by the virtual-time Runner; file-set preparation happens in setup()
// (excluded from the measured interval, as filebench's prealloc is).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/runner.h"
#include "workloads/testbed.h"

namespace bsim::wl {

/// Shared state for a single-file read/write benchmark.
struct SharedFile {
  std::string path = "/mnt/bigfile";
  std::uint64_t size = 256ull << 20;  // 256 MiB
};

/// filebench read: one shared file, each thread issues `iosize` reads,
/// sequential or uniformly random. Thread 0 creates and prewarms the file.
class ReadMicro final : public sim::Workload {
 public:
  ReadMicro(TestBed& bed, SharedFile file, bool sequential,
            std::size_t iosize, int thread_id, std::uint64_t seed);
  void setup() override;
  std::int64_t step() override;

 private:
  TestBed& bed_;
  SharedFile file_;
  bool sequential_;
  std::size_t iosize_;
  int thread_id_;
  sim::Rng rng_;
  std::unique_ptr<kern::Process> proc_;
  int fd_ = -1;
  std::uint64_t pos_ = 0;
  std::vector<std::byte> buf_;
};

/// filebench write: overwrite within a preallocated file; no fsync (the
/// dirty-page threshold pushes data through the FS synchronously).
class WriteMicro final : public sim::Workload {
 public:
  WriteMicro(TestBed& bed, SharedFile file, bool sequential,
             std::size_t iosize, int thread_id, std::uint64_t seed);
  void setup() override;
  std::int64_t step() override;

 private:
  TestBed& bed_;
  SharedFile file_;
  bool sequential_;
  std::size_t iosize_;
  int thread_id_;
  sim::Rng rng_;
  std::unique_ptr<kern::Process> proc_;
  int fd_ = -1;
  std::uint64_t pos_ = 0;
  std::vector<std::byte> buf_;
};

/// filebench createfiles: create files with `filesize` bytes of data in a
/// directory tree of `dirwidth` directories.
class CreateFiles final : public sim::Workload {
 public:
  CreateFiles(TestBed& bed, std::size_t filesize, int dirwidth,
              int thread_id, std::uint64_t seed);
  void setup() override;
  std::int64_t step() override;

 private:
  TestBed& bed_;
  std::size_t filesize_;
  int dirwidth_;
  int thread_id_;
  sim::Rng rng_;
  std::unique_ptr<kern::Process> proc_;
  std::uint64_t counter_ = 0;
  std::vector<std::byte> data_;
};

/// filebench deletefiles: unlink from a pre-created file set. Each thread
/// owns a disjoint slice; the workload ends when its slice is exhausted.
class DeleteFiles final : public sim::Workload {
 public:
  /// `nfiles` is the total pre-created set, partitioned over `nthreads`.
  DeleteFiles(TestBed& bed, std::uint64_t nfiles, int dirwidth,
              int thread_id, int nthreads);
  void setup() override;
  std::int64_t step() override;

  static std::string file_path(int dirwidth, std::uint64_t i);

 private:
  TestBed& bed_;
  std::uint64_t nfiles_;
  int dirwidth_;
  int thread_id_;
  int nthreads_;
  std::unique_ptr<kern::Process> proc_;
  std::uint64_t next_ = 0;
};

}  // namespace bsim::wl
