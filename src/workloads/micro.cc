#include "workloads/micro.h"

#include <cassert>
#include <stdexcept>

namespace bsim::wl {

namespace {

void fill_pattern(std::vector<std::byte>& buf, std::uint64_t seed) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((seed + i) * 31);
  }
}

void must(kern::Err e, const char* what) {
  if (e != kern::Err::Ok) {
    throw std::runtime_error(std::string("workload: ") + what + " failed: " +
                             kern::err_name(e));
  }
}

template <class T>
T must_v(kern::Result<T> r, const char* what) {
  if (!r.ok()) {
    throw std::runtime_error(std::string("workload: ") + what + " failed: " +
                             kern::err_name(r.error()));
  }
  return r.value();
}

/// Create (if needed) and fill the shared benchmark file, then prewarm the
/// page cache by reading it through once (the paper's read numbers are for
/// the cached steady state, §6.5.1).
void prepare_shared_file(TestBed& bed, kern::Process& proc,
                         const SharedFile& file, bool prewarm) {
  auto st = bed.kernel().stat(proc, file.path);
  if (!st.ok()) {
    const int fd = must_v(
        bed.kernel().open(proc, file.path, kern::kOCreat | kern::kOWrOnly),
        "create shared file");
    std::vector<std::byte> chunk(1 << 20);
    fill_pattern(chunk, 7);
    for (std::uint64_t off = 0; off < file.size; off += chunk.size()) {
      must_v(bed.kernel().write(proc, fd, chunk), "fill shared file");
    }
    must(bed.kernel().fsync(proc, fd), "fsync shared file");
    must(bed.kernel().close(proc, fd), "close shared file");
  }
  if (prewarm) {
    const int fd = must_v(bed.kernel().open(proc, file.path, kern::kORdOnly),
                          "open for prewarm");
    std::vector<std::byte> chunk(1 << 20);
    for (std::uint64_t off = 0; off < file.size; off += chunk.size()) {
      must_v(bed.kernel().pread(proc, fd, chunk, off), "prewarm read");
    }
    must(bed.kernel().close(proc, fd), "close prewarm");
  }
}

}  // namespace

// ---- ReadMicro ----

ReadMicro::ReadMicro(TestBed& bed, SharedFile file, bool sequential,
                     std::size_t iosize, int thread_id, std::uint64_t seed)
    : bed_(bed),
      file_(file),
      sequential_(sequential),
      iosize_(iosize),
      thread_id_(thread_id),
      rng_(seed ^ static_cast<std::uint64_t>(thread_id) * 0x9e3779b9),
      buf_(iosize) {}

void ReadMicro::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ == 0) {
    prepare_shared_file(bed_, *proc_, file_, /*prewarm=*/true);
  }
  fd_ = must_v(bed_.kernel().open(*proc_, file_.path, kern::kORdOnly),
               "open read file");
  // Stagger sequential starting offsets so threads are not in lockstep.
  pos_ = (file_.size / 32) * static_cast<std::uint64_t>(thread_id_);
  pos_ -= pos_ % iosize_;
}

std::int64_t ReadMicro::step() {
  std::uint64_t off;
  if (sequential_) {
    off = pos_;
    pos_ += iosize_;
    if (pos_ + iosize_ > file_.size) pos_ = 0;
  } else {
    off = rng_.below(file_.size / iosize_) * iosize_;
  }
  const auto n = must_v(bed_.kernel().pread(*proc_, fd_, buf_, off), "pread");
  return static_cast<std::int64_t>(n);
}

// ---- WriteMicro ----

WriteMicro::WriteMicro(TestBed& bed, SharedFile file, bool sequential,
                       std::size_t iosize, int thread_id, std::uint64_t seed)
    : bed_(bed),
      file_(file),
      sequential_(sequential),
      iosize_(iosize),
      thread_id_(thread_id),
      rng_(seed ^ static_cast<std::uint64_t>(thread_id) * 0x2545f491),
      buf_(iosize) {
  fill_pattern(buf_, 3);
}

void WriteMicro::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ == 0) {
    prepare_shared_file(bed_, *proc_, file_, /*prewarm=*/false);
  }
  fd_ = must_v(bed_.kernel().open(*proc_, file_.path, kern::kORdWr),
               "open write file");
  pos_ = 0;
}

std::int64_t WriteMicro::step() {
  std::uint64_t off;
  if (sequential_) {
    off = pos_;
    pos_ += iosize_;
    if (pos_ + iosize_ > file_.size) pos_ = 0;
  } else {
    off = rng_.below(file_.size / iosize_) * iosize_;
  }
  const auto n =
      must_v(bed_.kernel().pwrite(*proc_, fd_, buf_, off), "pwrite");
  return static_cast<std::int64_t>(n);
}

// ---- CreateFiles ----

CreateFiles::CreateFiles(TestBed& bed, std::size_t filesize, int dirwidth,
                         int thread_id, std::uint64_t seed)
    : bed_(bed),
      filesize_(filesize),
      dirwidth_(dirwidth),
      thread_id_(thread_id),
      rng_(seed + static_cast<std::uint64_t>(thread_id)),
      data_(filesize) {
  fill_pattern(data_, 11);
}

void CreateFiles::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ == 0) {
    for (int d = 0; d < dirwidth_; ++d) {
      must(bed_.kernel().mkdir(*proc_, "/mnt/cd" + std::to_string(d)),
           "mkdir create-dir");
    }
  }
}

std::int64_t CreateFiles::step() {
  const std::uint64_t i = counter_++;
  const std::string path =
      "/mnt/cd" +
      std::to_string((i + static_cast<std::uint64_t>(thread_id_) * 37) %
                     static_cast<std::uint64_t>(dirwidth_)) +
      "/t" + std::to_string(thread_id_) + "_" + std::to_string(i);
  auto fd = bed_.kernel().open(*proc_, path, kern::kOCreat | kern::kOWrOnly);
  if (!fd.ok()) return -1;  // out of inodes/space: end the workload
  auto w = bed_.kernel().write(*proc_, fd.value(), data_);
  must(bed_.kernel().close(*proc_, fd.value()), "close created file");
  if (!w.ok()) return -1;
  return static_cast<std::int64_t>(w.value());
}

// ---- DeleteFiles ----

std::string DeleteFiles::file_path(int dirwidth, std::uint64_t i) {
  return "/mnt/dd" + std::to_string(i % static_cast<std::uint64_t>(dirwidth)) +
         "/f" + std::to_string(i);
}

DeleteFiles::DeleteFiles(TestBed& bed, std::uint64_t nfiles, int dirwidth,
                         int thread_id, int nthreads)
    : bed_(bed),
      nfiles_(nfiles),
      dirwidth_(dirwidth),
      thread_id_(thread_id),
      nthreads_(nthreads) {}

void DeleteFiles::setup() {
  proc_ = bed_.kernel().new_process();
  if (thread_id_ == 0) {
    for (int d = 0; d < dirwidth_; ++d) {
      must(bed_.kernel().mkdir(*proc_, "/mnt/dd" + std::to_string(d)),
           "mkdir delete-dir");
    }
    for (std::uint64_t i = 0; i < nfiles_; ++i) {
      const int fd =
          must_v(bed_.kernel().open(*proc_, file_path(dirwidth_, i),
                                    kern::kOCreat | kern::kOWrOnly),
                 "pre-create delete file");
      must(bed_.kernel().close(*proc_, fd), "close pre-created");
    }
  }
  next_ = static_cast<std::uint64_t>(thread_id_);
}

std::int64_t DeleteFiles::step() {
  if (next_ >= nfiles_) return -1;
  const std::string path = file_path(dirwidth_, next_);
  next_ += static_cast<std::uint64_t>(nthreads_);
  must(bed_.kernel().unlink(*proc_, path), "unlink");
  return 0;
}

}  // namespace bsim::wl
