// Macrobenchmark personalities (paper §6.6): filebench varmail and
// fileserver, plus "untar the Linux kernel".
//
// Op accounting: one step() = one whole personality iteration (varmail's
// delete/create-append-fsync/read-append-fsync/read sequence; fileserver's
// create-write/append/read/delete/stat sequence). The paper's absolute
// ops/sec therefore differ by the flowops-per-iteration factor;
// EXPERIMENTS.md compares ratios between file systems, which are unit-free.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/runner.h"
#include "workloads/testbed.h"

namespace bsim::wl {

struct VarmailConfig {
  std::uint64_t nfiles = 1000;
  std::size_t mean_size = 16384;
  std::size_t iosize = 16384;  // append size
};

/// Shared across varmail threads: which mail files currently exist.
struct MailSet {
  VarmailConfig config;
  std::vector<bool> exists;
};

/// filebench varmail: a mail-server-like fsync-heavy loop.
class Varmail final : public sim::Workload {
 public:
  Varmail(TestBed& bed, MailSet& set, int thread_id, std::uint64_t seed);
  void setup() override;
  std::int64_t step() override;

  static std::string path_of(std::uint64_t i);

 private:
  std::uint64_t pick_existing();
  std::int64_t do_iteration();

  TestBed& bed_;
  MailSet& set_;
  int thread_id_;
  sim::Rng rng_;
  std::unique_ptr<kern::Process> proc_;
  std::vector<std::byte> append_buf_;
  std::vector<std::byte> read_buf_;
};

struct FileserverConfig {
  std::uint64_t nfiles = 5000;
  int dirwidth = 20;
  std::size_t mean_size = 131072;  // 128 KiB
  std::size_t append_size = 16384;
};

struct ServerSet {
  FileserverConfig config;
  std::vector<bool> exists;
  std::uint64_t next_new = 0;  // names for freshly created files
};

/// filebench fileserver: create/write, append, read-whole, delete, stat.
class Fileserver final : public sim::Workload {
 public:
  Fileserver(TestBed& bed, ServerSet& set, int thread_id, std::uint64_t seed);
  void setup() override;
  std::int64_t step() override;

  static std::string path_of(const FileserverConfig& cfg, std::uint64_t i);

 private:
  std::uint64_t pick_existing();
  TestBed& bed_;
  ServerSet& set_;
  int thread_id_;
  sim::Rng rng_;
  std::unique_ptr<kern::Process> proc_;
  std::vector<std::byte> buf_;
  std::vector<std::byte> read_buf_;
};

/// One entry of the synthetic Linux source tree.
struct UntarEntry {
  std::string path;
  std::uint64_t size = 0;  // 0 with is_dir
  bool is_dir = false;
};

/// Deterministic synthetic linux-4.15 source-tree manifest. `scale` = 1.0
/// reproduces the full tree's shape (~62k files, ~900 MB); benchmarks run
/// scaled down and report the scale they used.
std::vector<UntarEntry> linux_tree_manifest(double scale, std::uint64_t seed);

/// Untar: replay a manifest (mkdir/create/write/close), single-threaded.
class Untar final : public sim::Workload {
 public:
  Untar(TestBed& bed, const std::vector<UntarEntry>& manifest);
  void setup() override;
  std::int64_t step() override;

  [[nodiscard]] bool done() const { return next_ >= manifest_.size(); }

 private:
  TestBed& bed_;
  const std::vector<UntarEntry>& manifest_;
  std::size_t next_ = 0;
  std::unique_ptr<kern::Process> proc_;
  std::vector<std::byte> data_;
};

}  // namespace bsim::wl
