#include "fuse/extfuse.h"

#include <cstring>
#include <stdexcept>

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::fuse {

namespace {

using ebpf::Insn;
using ebpf::Op;

static_assert(std::is_trivially_copyable_v<kern::Stat>);
static_assert(std::is_trivially_copyable_v<bento::EntryOut>);
static_assert(sizeof(kern::Stat) <= ExtFuseCtx::kSize - ExtFuseCtx::kReplyOff);
static_assert(sizeof(bento::EntryOut) <=
              ExtFuseCtx::kSize - ExtFuseCtx::kReplyOff);

/// The stock ExtFUSE program: route by ctx.op to the entry or attr map,
/// copy a hit into the reply area, flag ctx.handled. See extfuse.h for
/// the ctx layout. Every jump is forward (verifier rule); both maps are
/// consulted with the key the driver serialized at kKeyOff.
std::vector<Insn> stock_program(std::int64_t entry_map, std::int64_t attr_map) {
  constexpr auto kOp = static_cast<std::int16_t>(ExtFuseCtx::kOpOff);
  constexpr auto kKey = static_cast<std::int64_t>(ExtFuseCtx::kKeyOff);
  constexpr auto kHandled = static_cast<std::int16_t>(ExtFuseCtx::kHandledOff);
  constexpr auto kReply = static_cast<std::int64_t>(ExtFuseCtx::kReplyOff);
  return {
      /* 0*/ {Op::LdCtx8, 4, 0, kOp, 0},
      /* 1*/ {Op::JeqImm, 4, 0, +7, ExtFuseCtx::kOpGetattr},  // -> 9
      // lookup path: entry cache
      /* 2*/ {Op::MovImm, 1, 0, 0, entry_map},
      /* 3*/ {Op::MovImm, 2, 0, 0, kKey},
      /* 4*/ {Op::MovImm, 3, 0, 0, kReply},
      /* 5*/ {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      /* 6*/ {Op::JeqImm, 0, 0, +10, 0},                      // miss -> 17
      /* 7*/ {Op::StCtxImm, 0, 0, kHandled, 1},
      /* 8*/ {Op::Ja, 0, 0, +6, 0},                           // -> 15
      // getattr path: attr cache
      /* 9*/ {Op::MovImm, 1, 0, 0, attr_map},
      /*10*/ {Op::MovImm, 2, 0, 0, kKey},
      /*11*/ {Op::MovImm, 3, 0, 0, kReply},
      /*12*/ {Op::Call, 0, 0, 0, ebpf::kHelperMapLookup},
      /*13*/ {Op::JeqImm, 0, 0, +3, 0},                       // miss -> 17
      /*14*/ {Op::StCtxImm, 0, 0, kHandled, 1},
      // hit exit
      /*15*/ {Op::MovImm, 0, 0, 0, 1},
      /*16*/ {Op::Exit, 0, 0, 0, 0},
      // miss exit
      /*17*/ {Op::StCtxImm, 0, 0, kHandled, 0},
      /*18*/ {Op::MovImm, 0, 0, 0, 0},
      /*19*/ {Op::Exit, 0, 0, 0, 0},
  };
}

void charge_bpf_syscall() {
  // Daemon-side bpf(2) call for installs: one crossing.
  if (sim::current_or_null() != nullptr) sim::charge(sim::costs().syscall);
}

}  // namespace

std::uint64_t ExtFuseFilter::name_hash(std::string_view name) {
  // FNV-1a, the usual in-kernel string hash stand-in.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : name) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ExtFuseFilter::ExtFuseFilter() {
  entry_map_ = vm_.add_map(/*key=*/16, sizeof(bento::EntryOut), 16384);
  attr_map_ = vm_.add_map(/*key=*/8, sizeof(kern::Stat), 16384);
  auto loaded = vm_.load(stock_program(entry_map_, attr_map_),
                         ExtFuseCtx::kSize);
  if (!loaded.ok) {
    throw std::runtime_error("ExtFUSE stock program rejected: " +
                             loaded.error);
  }
}

bool ExtFuseFilter::run_prog(std::uint64_t op, std::uint64_t key0,
                             std::uint64_t key1, std::span<std::byte> reply) {
  std::array<std::byte, ExtFuseCtx::kSize> ctx{};
  std::memcpy(ctx.data() + ExtFuseCtx::kOpOff, &op, 8);
  std::memcpy(ctx.data() + ExtFuseCtx::kKeyOff, &key0, 8);
  std::memcpy(ctx.data() + ExtFuseCtx::kKeyOff + 8, &key1, 8);
  auto r = vm_.run(ctx);
  if (!r.ok() || r.value() == 0) return false;
  std::memcpy(reply.data(), ctx.data() + ExtFuseCtx::kReplyOff, reply.size());
  return true;
}

bool ExtFuseFilter::getattr_hit(kern::Ino ino, kern::Stat& out) {
  std::array<std::byte, sizeof(kern::Stat)> reply;
  if (!run_prog(ExtFuseCtx::kOpGetattr, ino, 0, reply)) {
    stats_.attr_misses += 1;
    return false;
  }
  std::memcpy(&out, reply.data(), sizeof out);
  stats_.attr_hits += 1;
  return true;
}

bool ExtFuseFilter::lookup_hit(kern::Ino parent, std::string_view name,
                               bento::EntryOut& out) {
  std::array<std::byte, sizeof(bento::EntryOut)> reply;
  if (!run_prog(ExtFuseCtx::kOpLookup, parent, name_hash(name), reply)) {
    stats_.entry_misses += 1;
    return false;
  }
  std::memcpy(&out, reply.data(), sizeof out);
  stats_.entry_hits += 1;
  return true;
}

void ExtFuseFilter::install_attr(kern::Ino ino, const kern::Stat& attr) {
  charge_bpf_syscall();
  std::array<std::byte, 8> key;
  std::memcpy(key.data(), &ino, 8);
  std::array<std::byte, sizeof(kern::Stat)> val;
  std::memcpy(val.data(), &attr, sizeof attr);
  (void)vm_.map(attr_map_)->update(key, val);
  stats_.installs += 1;
}

void ExtFuseFilter::install_entry(kern::Ino parent, std::string_view name,
                                  const bento::EntryOut& entry) {
  charge_bpf_syscall();
  std::array<std::byte, 16> key;
  const std::uint64_t hash = name_hash(name);
  std::memcpy(key.data(), &parent, 8);
  std::memcpy(key.data() + 8, &hash, 8);
  std::array<std::byte, sizeof(bento::EntryOut)> val;
  std::memcpy(val.data(), &entry, sizeof entry);
  (void)vm_.map(entry_map_)->update(key, val);
  stats_.installs += 1;
}

void ExtFuseFilter::invalidate_attr(kern::Ino ino) {
  if (sim::current_or_null() != nullptr) {
    sim::charge(sim::costs().ebpf_map_op);
  }
  std::array<std::byte, 8> key;
  std::memcpy(key.data(), &ino, 8);
  if (vm_.map(attr_map_)->erase(key)) stats_.invalidations += 1;
}

void ExtFuseFilter::invalidate_entry(kern::Ino parent, std::string_view name) {
  if (sim::current_or_null() != nullptr) {
    sim::charge(sim::costs().ebpf_map_op);
  }
  std::array<std::byte, 16> key;
  const std::uint64_t hash = name_hash(name);
  std::memcpy(key.data(), &parent, 8);
  std::memcpy(key.data() + 8, &hash, 8);
  if (vm_.map(entry_map_)->erase(key)) stats_.invalidations += 1;
}

}  // namespace bsim::fuse
