// The FUSE deployment (paper §2.2, §6.2): the same file system served from
// "userspace" behind the FUSE transport.
//
// Architecture mirrors real FUSE:
//   - FuseModule is the kernel driver: it reuses the shared VFS-
//     interposition core (BentoModule) — historically accurate, since the
//     paper built BentoFS out of the FUSE kernel module — but every call
//     into the file system is a *request*: marshalled, queued to the
//     daemon, and replied to, costing two user/kernel crossings plus
//     per-page payload copies. The writeback cache is on (like the paper's
//     modified fuse-rs), so cached reads/writes stay in the kernel.
//   - The daemon side runs the identical bento::FileSystem implementation
//     over a UserBlockBackend: block I/O goes through a /dev file opened
//     O_DIRECT, and every durable block write costs pwrite + fsync of the
//     whole disk file (§6.4) — the behaviour that produces FUSE's collapse
//     on metadata- and sync-heavy workloads.
#pragma once

#include <memory>
#include <string>

#include "bento/bentofs.h"
#include "bento/user.h"
#include "fuse/extfuse.h"

namespace bsim::fuse {

struct FuseConnStats {
  std::uint64_t requests = 0;
  std::uint64_t payload_bytes = 0;
};

/// The FUSE kernel driver for one mount.
class FuseModule final : public bento::BentoModule {
 public:
  FuseModule(kern::SuperBlock& sb, std::unique_ptr<bento::FileSystem> fs,
             std::unique_ptr<bento::BlockBackend> backend,
             std::unique_ptr<kern::Process> daemon, int devfd);

  [[nodiscard]] const FuseConnStats& conn_stats() const { return conn_; }
  [[nodiscard]] kern::Process& daemon() { return *daemon_; }
  [[nodiscard]] int devfd() const { return devfd_; }

  /// Attach an ExtFUSE eBPF filter (paper §2.2, [5]): verified programs
  /// that answer lookup/getattr from in-kernel BPF maps, skipping the
  /// daemon round trip on a hit.
  void attach_extfuse(std::unique_ptr<ExtFuseFilter> filter) {
    filter_ = std::move(filter);
  }
  [[nodiscard]] ExtFuseFilter* extfuse() { return filter_.get(); }

  /// FUSE caps write requests at max_pages (128 KiB default); large
  /// writeback runs are split into multiple requests.
  kern::Err writepages(kern::Inode& inode,
                       std::span<const kern::PageRun> runs,
                       std::size_t& completed_runs) override;

  /// Readahead is capped the same way: a run becomes ceil(n/max_pages)
  /// FUSE READ requests (each one still a daemon round trip).
  kern::Err readpages(kern::Inode& inode, std::uint64_t first_pgoff,
                      std::span<const std::span<std::byte>> pages) override;

  // ---- ExtFUSE interception (fast path + invalidation) ----
  kern::Result<kern::Inode*> lookup(kern::Inode& dir,
                              std::string_view name) override;
  kern::Err getattr(kern::Inode& inode, kern::Stat& out) override;
  kern::Err setattr(kern::Inode& inode, const kern::SetAttr& attr) override;
  kern::Result<kern::Inode*> create(kern::Inode& dir, std::string_view name,
                              std::uint32_t mode) override;
  kern::Result<kern::Inode*> mkdir(kern::Inode& dir, std::string_view name,
                             std::uint32_t mode) override;
  kern::Err unlink(kern::Inode& dir, std::string_view name) override;
  kern::Err rmdir(kern::Inode& dir, std::string_view name) override;
  kern::Err rename(kern::Inode& old_dir, std::string_view old_name,
                   kern::Inode& new_dir, std::string_view new_name) override;
  kern::Result<std::uint64_t> write(kern::Inode& inode, kern::FileHandle& fh,
                              std::uint64_t off,
                              std::span<const std::byte> in) override;
  kern::Err writepage(kern::Inode& inode, std::uint64_t pgoff,
                      std::span<const std::byte> in) override;

  static constexpr std::size_t kMaxPages = 32;

 protected:
  /// Request transport: marshal + two crossings + payload copies.
  void channel(std::size_t payload_in, std::size_t payload_out) override;

 private:
  /// Daemon-reply install of a freshly materialized entry.
  void install_from(kern::Inode& inode, kern::Ino parent,
                    std::string_view name);

  std::unique_ptr<kern::Process> daemon_;
  int devfd_;
  std::unique_ptr<ExtFuseFilter> filter_;
  FuseConnStats conn_;
};

/// Mountable type for a FUSE file system ("fuse -o writeback_cache").
class FuseFsType final : public kern::FileSystemType {
 public:
  FuseFsType(kern::Kernel& kernel, std::string name,
             bento::FsFactory factory)
      : kernel_(&kernel), name_(std::move(name)), factory_(std::move(factory)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  kern::Result<kern::SuperBlock*> mount(blk::BlockDevice& dev,
                                        std::string_view opts) override;
  void kill_sb(kern::SuperBlock* sb) override;

 private:
  kern::Kernel* kernel_;
  std::string name_;
  bento::FsFactory factory_;
};

/// Register a userspace (FUSE) file system with the kernel. The factory's
/// FileSystem runs in a daemon process over O_DIRECT block I/O.
void register_fuse_fs(kern::Kernel& kernel, std::string name,
                      bento::FsFactory factory);

}  // namespace bsim::fuse
