// ExtFUSE-style eBPF acceleration of the FUSE driver (paper §2.2, [5]).
//
// "a project (ExtFUSE) has provided support for parts of a FUSE file
// system to be run in the kernel using eBPF" — this module is that design
// point, built on src/ebpf: verified bytecode programs attached to the
// FUSE driver's lookup and getattr paths consult BPF hash maps populated
// by the (simulated) userspace daemon. A map hit answers in the kernel —
// no request marshalling, no crossings, no daemon — at the cost of a few
// VM instructions and a hash probe. A miss passes through to the daemon,
// whose reply installs the entry (one extra bpf(2) syscall, as in real
// ExtFUSE), and the kernel driver invalidates entries on every mutation.
//
// The generality boundary (Table 2's eBPF row) is structural: the
// programs can only route between "answer from this map" and "pass
// through"; data-plane ops, allocation, journaling — the body of a file
// system — cannot be expressed under the verifier's rules (see
// VerifierRejects* tests), which is why ExtFUSE caches metadata and
// nothing more.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "bento/api.h"
#include "ebpf/vm.h"
#include "kernel/types.h"

namespace bsim::fuse {

/// Context-buffer layout shared between the driver and the programs.
/// All fields are u64-aligned; the reply area must fit the largest cached
/// value (EntryOut for lookup, Stat for getattr).
struct ExtFuseCtx {
  static constexpr std::size_t kOpOff = 0;
  static constexpr std::size_t kKeyOff = 8;     // {ino} or {parent, namehash}
  static constexpr std::size_t kHandledOff = 24;
  static constexpr std::size_t kReplyOff = 32;
  static constexpr std::size_t kSize = 32 + 128;

  enum : std::uint64_t { kOpLookup = 1, kOpGetattr = 2 };
};

/// The eBPF programs + maps attached to one FUSE mount.
class ExtFuseFilter {
 public:
  /// Builds the attr and entry caches and loads the two stock programs.
  /// Throws std::runtime_error if the programs fail verification (cannot
  /// happen for the stock programs; exercised by tests that load their
  /// own).
  ExtFuseFilter();

  /// Kernel-side fast path. Returns true on hit, filling `out`.
  bool getattr_hit(kern::Ino ino, kern::Stat& out);
  bool lookup_hit(kern::Ino parent, std::string_view name,
                  bento::EntryOut& out);

  /// Daemon-side install after a passthrough reply (bpf(2) map update).
  void install_attr(kern::Ino ino, const kern::Stat& attr);
  void install_entry(kern::Ino parent, std::string_view name,
                     const bento::EntryOut& entry);

  /// Kernel-side invalidation on mutation.
  void invalidate_attr(kern::Ino ino);
  void invalidate_entry(kern::Ino parent, std::string_view name);

  struct Stats {
    std::uint64_t attr_hits = 0;
    std::uint64_t attr_misses = 0;
    std::uint64_t entry_hits = 0;
    std::uint64_t entry_misses = 0;
    std::uint64_t installs = 0;
    std::uint64_t invalidations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] ebpf::Vm& vm() { return vm_; }

  static std::uint64_t name_hash(std::string_view name);

 private:
  bool run_prog(std::uint64_t op, std::uint64_t key0, std::uint64_t key1,
                std::span<std::byte> reply);

  ebpf::Vm vm_;
  std::int64_t attr_map_ = 0;
  std::int64_t entry_map_ = 0;
  Stats stats_;
};

}  // namespace bsim::fuse
