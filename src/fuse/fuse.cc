#include "fuse/fuse.h"

#include <algorithm>

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::fuse {

using kern::Err;

FuseModule::FuseModule(kern::SuperBlock& sb,
                       std::unique_ptr<bento::FileSystem> fs,
                       std::unique_ptr<bento::BlockBackend> backend,
                       std::unique_ptr<kern::Process> daemon, int devfd)
    : BentoModule(sb, std::move(fs), std::move(backend)),
      daemon_(std::move(daemon)),
      devfd_(devfd) {}

void FuseModule::channel(std::size_t payload_in, std::size_t payload_out) {
  const auto& c = sim::costs();
  const std::size_t pages_in = (payload_in + kern::kPageSize - 1) / kern::kPageSize;
  const std::size_t pages_out =
      (payload_out + kern::kPageSize - 1) / kern::kPageSize;
  // Request path: marshal, wake the daemon (crossing), copy the payload in;
  // reply path: copy the payload out, wake the caller (crossing).
  sim::charge(c.fuse_request_base + 2 * c.fuse_crossing +
              static_cast<sim::Nanos>(pages_in + pages_out) *
                  c.fuse_copy_per_page);
  conn_.requests += 1;
  conn_.payload_bytes += payload_in + payload_out;
}

// ---- ExtFUSE fast paths ----

namespace {

bento::EntryOut entry_from_inode(const kern::Inode& inode) {
  bento::EntryOut e;
  e.ino = inode.ino();
  e.attr.ino = inode.ino();
  e.attr.kind = inode.type;
  e.attr.mode = inode.mode;
  e.attr.nlink = inode.nlink;
  e.attr.size = inode.size;
  e.attr.blocks = (inode.size + 511) / 512;
  e.attr.atime = inode.atime;
  e.attr.mtime = inode.mtime;
  e.attr.ctime = inode.ctime;
  return e;
}

kern::Stat stat_from_inode(const kern::Inode& inode) {
  kern::Stat st;
  st.ino = inode.ino();
  st.type = inode.type;
  st.mode = inode.mode;
  st.nlink = inode.nlink;
  st.size = inode.size;
  st.blocks = (inode.size + 511) / 512;
  st.atime = inode.atime;
  st.mtime = inode.mtime;
  st.ctime = inode.ctime;
  return st;
}

}  // namespace

void FuseModule::install_from(kern::Inode& inode, kern::Ino parent,
                              std::string_view name) {
  filter_->install_entry(parent, name, entry_from_inode(inode));
  filter_->install_attr(inode.ino(), stat_from_inode(inode));
}

kern::Result<kern::Inode*> FuseModule::lookup(kern::Inode& dir,
                                              std::string_view name) {
  if (filter_ != nullptr) {
    bento::EntryOut entry;
    if (filter_->lookup_hit(dir.ino(), name, entry)) {
      return &materialize(entry);  // answered in the kernel, no daemon
    }
  }
  auto r = BentoModule::lookup(dir, name);
  if (filter_ != nullptr && r.ok()) {
    install_from(*r.value(), dir.ino(), name);
  }
  return r;
}

Err FuseModule::getattr(kern::Inode& inode, kern::Stat& out) {
  if (filter_ != nullptr && filter_->getattr_hit(inode.ino(), out)) {
    // Same page-cache-ahead rule as the passthrough path.
    out.size = std::max(out.size, inode.size);
    return Err::Ok;
  }
  Err e = BentoModule::getattr(inode, out);
  if (filter_ != nullptr && e == Err::Ok) {
    filter_->install_attr(inode.ino(), out);
  }
  return e;
}

Err FuseModule::setattr(kern::Inode& inode, const kern::SetAttr& attr) {
  if (filter_ != nullptr) filter_->invalidate_attr(inode.ino());
  return BentoModule::setattr(inode, attr);
}

kern::Result<kern::Inode*> FuseModule::create(kern::Inode& dir,
                                              std::string_view name,
                                              std::uint32_t mode) {
  if (filter_ != nullptr) {
    filter_->invalidate_entry(dir.ino(), name);
    filter_->invalidate_attr(dir.ino());
  }
  return BentoModule::create(dir, name, mode);
}

kern::Result<kern::Inode*> FuseModule::mkdir(kern::Inode& dir,
                                             std::string_view name,
                                             std::uint32_t mode) {
  if (filter_ != nullptr) {
    filter_->invalidate_entry(dir.ino(), name);
    filter_->invalidate_attr(dir.ino());
  }
  return BentoModule::mkdir(dir, name, mode);
}

Err FuseModule::unlink(kern::Inode& dir, std::string_view name) {
  if (filter_ != nullptr) {
    filter_->invalidate_entry(dir.ino(), name);
    kern::Inode* victim = super().dcache_lookup(dir, name);
    if (victim != nullptr) {
      filter_->invalidate_attr(victim->ino());
      super().iput(victim);
    }
  }
  return BentoModule::unlink(dir, name);
}

Err FuseModule::rmdir(kern::Inode& dir, std::string_view name) {
  if (filter_ != nullptr) filter_->invalidate_entry(dir.ino(), name);
  return BentoModule::rmdir(dir, name);
}

Err FuseModule::rename(kern::Inode& old_dir, std::string_view old_name,
                       kern::Inode& new_dir, std::string_view new_name) {
  if (filter_ != nullptr) {
    filter_->invalidate_entry(old_dir.ino(), old_name);
    filter_->invalidate_entry(new_dir.ino(), new_name);
  }
  return BentoModule::rename(old_dir, old_name, new_dir, new_name);
}

kern::Result<std::uint64_t> FuseModule::write(kern::Inode& inode,
                                              kern::FileHandle& fh,
                                              std::uint64_t off,
                                              std::span<const std::byte> in) {
  if (filter_ != nullptr) filter_->invalidate_attr(inode.ino());
  return BentoModule::write(inode, fh, off, in);
}

Err FuseModule::writepage(kern::Inode& inode, std::uint64_t pgoff,
                          std::span<const std::byte> in) {
  if (filter_ != nullptr) filter_->invalidate_attr(inode.ino());
  return BentoModule::writepage(inode, pgoff, in);
}

Err FuseModule::writepages(kern::Inode& inode,
                           std::span<const kern::PageRun> runs,
                           std::size_t& completed_runs) {
  if (filter_ != nullptr) filter_->invalidate_attr(inode.ino());
  // Split each run into FUSE-sized write requests (max_pages per request);
  // the base implementation then issues one request per (sub-)run.
  std::vector<kern::PageRun> chunked;
  std::vector<std::size_t> chunks_per_run;
  chunks_per_run.reserve(runs.size());
  for (const auto& run : runs) {
    std::size_t i = 0;
    std::size_t nchunks = 0;
    while (i < run.pages.size()) {
      const std::size_t n = std::min(kMaxPages, run.pages.size() - i);
      kern::PageRun sub;
      sub.first_pgoff = run.first_pgoff + i;
      sub.pages.assign(run.pages.begin() + static_cast<std::ptrdiff_t>(i),
                       run.pages.begin() + static_cast<std::ptrdiff_t>(i + n));
      chunked.push_back(std::move(sub));
      i += n;
      nchunks += 1;
    }
    chunks_per_run.push_back(nchunks);
  }
  // An original run completed only if ALL of its sub-requests did: map the
  // completed-chunk prefix back to a completed-run prefix for the caller's
  // dirty-state accounting.
  std::size_t completed_chunks = 0;
  const Err e = BentoModule::writepages(inode, chunked, completed_chunks);
  completed_runs = 0;
  for (const std::size_t nchunks : chunks_per_run) {
    if (completed_chunks < nchunks) break;
    completed_chunks -= nchunks;
    completed_runs += 1;
  }
  return e;
}

Err FuseModule::readpages(kern::Inode& inode, std::uint64_t first_pgoff,
                          std::span<const std::span<std::byte>> pages) {
  // Readahead runs split at the FUSE request cap, one daemon round trip
  // per sub-run (the driver's batching ends at max_pages).
  std::size_t i = 0;
  while (i < pages.size()) {
    const std::size_t n = std::min(kMaxPages, pages.size() - i);
    BSIM_TRY(BentoModule::readpages(inode, first_pgoff + i,
                                    pages.subspan(i, n)));
    i += n;
  }
  return Err::Ok;
}

kern::Result<kern::SuperBlock*> FuseFsType::mount(blk::BlockDevice& dev,
                                                  std::string_view opts) {
  // The daemon opens the disk with O_DIRECT, like the paper's baseline.
  auto daemon = kernel_->new_process();
  const std::string devname = kernel_->device_name_of(&dev);
  if (devname.empty()) return Err::NoDev;
  auto fd = kernel_->open(*daemon, "/dev/" + devname,
                          kern::kORdWr | kern::kODirect);
  if (!fd.ok()) return fd.error();

  // "-o io_uring": the daemon batches its block I/O submissions (§8.1).
  const bool use_uring = opts.find("io_uring") != std::string_view::npos;

  auto sb = std::make_unique<kern::SuperBlock>(dev, /*buffer_cache=*/16384);
  sb->fs_name = name_;
  auto backend = std::make_unique<bento::UserBlockBackend>(
      *kernel_, *daemon, fd.value(), dev.nblocks(), /*cache_blocks=*/4096,
      use_uring);
  auto module =
      std::make_unique<FuseModule>(*sb, factory_(), std::move(backend),
                                   std::move(daemon), fd.value());
  // "-o extfuse": attach the eBPF metadata caches (paper §2.2, [5]).
  if (opts.find("extfuse") != std::string_view::npos) {
    module->attach_extfuse(std::make_unique<ExtFuseFilter>());
  }
  sb->fs_info = static_cast<bento::BentoModule*>(module.get());
  sb->s_op = module.get();
  module->fs().apply_mount_opts(opts);
  Err e = module->mount_init();
  if (e != Err::Ok) return e;
  FuseModule* mod = module.get();
  sb->register_stats("fuse", [mod](sim::JsonWriter& w) {
    w.begin_object();
    w.field("struct", "FuseConnStats");
    w.field("requests", mod->conn_stats().requests);
    w.field("payload_bytes", mod->conn_stats().payload_bytes);
    w.end_object();
    w.begin_object();
    w.field("struct", "ModuleStats");
    w.field("dispatches", mod->stats().dispatches);
    w.field("upgrades", mod->stats().upgrades);
    w.end_object();
    mod->fs().dump_stats(w);
  });
  module.release();  // owned via sb->fs_info, reclaimed in kill_sb
  return sb.release();
}

void FuseFsType::kill_sb(kern::SuperBlock* sb) {
  if (sb == nullptr) return;
  std::unique_ptr<kern::SuperBlock> owned_sb(sb);
  std::unique_ptr<FuseModule> module(
      static_cast<FuseModule*>(bento::BentoModule::from(*sb)));
  sb->sync_all();
  module->put_super(*sb);
  (void)kernel_->close(module->daemon(), module->devfd());
  sb->fs_info = nullptr;
  sb->s_op = nullptr;
}

void register_fuse_fs(kern::Kernel& kernel, std::string name,
                      bento::FsFactory factory) {
  kernel.register_fs(std::make_unique<FuseFsType>(kernel, std::move(name),
                                                  std::move(factory)));
}

}  // namespace bsim::fuse
