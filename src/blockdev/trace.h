// Block-layer tracing, modeled on blktrace/blkparse: a bounded ring of
// virtual-time events shared by one device tree (the traced root plus its
// volume members), armed at mount time by "-o trace=N" (N = ring capacity
// in events) and dumped as JSONL for the in-tree analyzer
// (bench/blkparse.py).
//
// Event vocabulary (blktrace letters where one exists):
//   Q  bio queued (enters a request queue, or accumulates under a plug)
//   P  plug opened          U  unplug (accumulated batch dispatched)
//   M  bio merged into the preceding request (back-merge/absorption)
//   D  merged request dispatched to a device channel
//   C  bio completed
//   R  bio requeued for a bounded retry after a transient error
//   X  fan-out child: a volume fragment bio linked to its logical parent
//   F  device FLUSH (cache destage barrier)
//   TO/TC  journal transaction opened / closed (id = txn sequence)
//   JW journal log-run write submitted    JR commit record submitted
//   JK checkpoint (install to home locations) submitted
//
// Tracing is free on the simulated clock: emission is host-side only and
// never calls into sim time, so "-o trace=" leaves every virtual-time
// result bit-identical (the trace-invariant tests pin this down).
//
// The ring drops the OLDEST events when full (dropped_ counts them), but
// per-device per-event counters are exact regardless of capacity, so
// count-based cross-checks against DeviceStats stay valid even after an
// overflow.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace bsim::blk {

enum class TraceEv : std::uint8_t {
  Queue,
  Plug,
  Unplug,
  Merge,
  Dispatch,
  Complete,
  FanChild,
  Flush,
  TxnOpen,
  TxnClose,
  JLogWrite,
  JCommitRecord,
  JCheckpoint,
  Requeue,
};

inline constexpr int kTraceEvCount = 14;

/// The blkparse-style letter for an event ("Q", "D", "TO", ...).
const char* trace_ev_name(TraceEv ev);

/// Operation class of a traced event.
enum class TraceOp : std::uint8_t { Read, Write, Flush, Journal };

const char* trace_op_name(TraceOp op);

struct TraceEvent {
  sim::Nanos t = 0;          // virtual time of the event
  std::uint64_t id = 0;      // bio id, or txn sequence for journal events
  std::uint64_t parent = 0;  // logical parent bio id (FanChild), else 0
  std::uint64_t block = 0;   // first block of the bio/request
  std::uint32_t nblocks = 0;
  std::uint16_t dev = 0;     // slot from Tracer::register_device
  TraceEv ev = TraceEv::Queue;
  TraceOp op = TraceOp::Read;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Add a device to the trace's device table; returns its slot index.
  std::uint16_t register_device(std::string name);
  [[nodiscard]] const std::vector<std::string>& devices() const {
    return names_;
  }

  /// Fresh bio/request id (never 0).
  std::uint64_t next_id() { return ++last_id_; }

  void emit(const TraceEvent& e);

  /// Surviving ring contents in emission order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return emitted_ <= capacity_ ? 0 : emitted_ - capacity_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Exact per-device count of `ev` events, independent of ring overflow.
  [[nodiscard]] std::uint64_t count(std::uint16_t dev, TraceEv ev) const;

  /// Dump header + events + trailer as JSONL (see bench/blkparse.py for
  /// the consumer). Returns false when the file cannot be written.
  bool dump_jsonl(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // overwrite cursor once the ring is full
  std::uint64_t emitted_ = 0;
  std::uint64_t last_id_ = 0;
  std::vector<std::string> names_;
  std::vector<std::array<std::uint64_t, kTraceEvCount>> counts_;
};

}  // namespace bsim::blk
