// The bio / request layer: Linux-style block-I/O descriptors between the
// kernel (caches, journals, io_uring) and the device.
//
// A Bio is one logical block request from a subsystem: an op plus a run of
// *consecutive* disk blocks, each block backed by its own memory segment
// (scatter-gather, like Linux's bio_vec array). Callers build batches of
// bios and hand them to a RequestQueue, which
//   - elevator-sorts the batch by start block (reads and writes
//     separately),
//   - merges back-to-back bios into single device requests (the
//     adjacent-block merge a real request queue performs),
//   - dispatches each merged request to a device channel, so a batch
//     occupies up to `DeviceParams::channels` channels *concurrently* in
//     virtual time, and
//   - either waits until every request completes (`submit`, synchronous at
//     the batch boundary, like submit_bio_wait over a plugged queue) or
//     returns a Ticket the caller redeems later (`submit_async`/`wait`),
//     so one simulated thread can keep several batches in flight across
//     the device's channels (QD>1).
//
// Per-bio completion times are recorded in Bio::done_at, so tests and
// stats can observe out-of-order completion inside a batch even though the
// submitting thread only resumes at the batch barrier (or at wait()).
//
// Same-block bios within one batch are well-defined and deterministic:
// dispatch stable-sorts by start block, so bios with the SAME start block
// execute in submission order — for those, the last-submitted data wins
// on media — and bios with identical block ranges are coalesced into one
// device request (a queue-level write absorption) instead of splitting a
// merge run. Partially overlapping ranges with different start blocks
// apply in ascending-start order (deterministic, but not last-submitted-
// wins); no consumer submits those in one batch today.
//
// The scalar BlockDevice::read/write entry points are one-bio wrappers
// over this layer; every block access in the simulation funnels through
// RequestQueue::submit.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace bsim::blk {

class BlockDevice;

inline constexpr std::uint32_t kBlockSize = 4096;

enum class BioOp : std::uint8_t { Read, Write };

/// One block-sized memory segment of a bio's payload.
struct BioVec {
  std::uint64_t blockno = 0;
  std::span<std::byte> data{};          // destination (Read)
  std::span<const std::byte> wdata{};   // source (Write)
};

/// One logical block-I/O request: `op` over consecutive blocks.
struct Bio {
  BioOp op = BioOp::Read;
  std::vector<BioVec> vecs;
  /// Absolute virtual completion time, set by RequestQueue::submit.
  sim::Nanos done_at = 0;
  /// Whether the command actually executed against media. Reads are always
  /// applied; a write bio issued at or after the crash model's kill point
  /// is accepted (and timed) but never reaches media, and stays false.
  /// Dirty-state owners (the buffer cache) must not clear dirty bits for
  /// unapplied writes.
  bool applied = false;
  /// The command touched a faulted block or a fault window (the
  /// member-failure fault model; see BlockDevice::inject_read_error /
  /// inject_write_error / set_fault_schedule). The whole command fails —
  /// no data was transferred — and `applied` stays false. Redundant
  /// volumes retry the bio on a mirror; plain consumers treat it like any
  /// other I/O error.
  bool io_error = false;
  /// The failure that set io_error was TRANSIENT (an injected transient
  /// error or a scheduled fault window) rather than a sticky medium error:
  /// the request queue's retry policy may reissue the bio. Cleared before
  /// each retry attempt; left set alongside io_error on exhaustion so
  /// stats can tell the failure classes apart.
  bool retryable = false;
  /// Retry attempts the request queue made for this bio (0 on the
  /// zero-fault path).
  std::uint32_t retries = 0;
  /// Virtual time the bio entered a queue (plug accumulation or request
  /// queue, whichever first; -1 = not yet queued). The Q→D queue-wait
  /// histograms are derived from this; set once, never reset.
  sim::Nanos queued_at = -1;
  /// Trace identity (0 = unassigned). Assigned at the first Q event when
  /// the device tree is traced; a volume fragment carries its logical
  /// parent's id in parent_trace_id so the analyzer can stitch fan-outs.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_trace_id = 0;

  Bio() = default;
  explicit Bio(BioOp o) : op(o) {}

  [[nodiscard]] bool empty() const { return vecs.empty(); }
  [[nodiscard]] std::size_t nblocks() const { return vecs.size(); }
  [[nodiscard]] std::uint64_t first_block() const {
    assert(!vecs.empty());
    return vecs.front().blockno;
  }
  /// One past the last block (the merge point for an adjacent bio).
  [[nodiscard]] std::uint64_t end_block() const {
    assert(!vecs.empty());
    return vecs.back().blockno + 1;
  }

  /// Append a read segment; blocks in one bio must be consecutive.
  void add_read(std::uint64_t blockno, std::span<std::byte> out) {
    assert(op == BioOp::Read);
    assert(out.size() >= kBlockSize);
    assert(vecs.empty() || blockno == end_block());
    vecs.push_back(BioVec{blockno, out.subspan(0, kBlockSize), {}});
  }

  /// Append a write segment; blocks in one bio must be consecutive.
  void add_write(std::uint64_t blockno, std::span<const std::byte> in) {
    assert(op == BioOp::Write);
    assert(in.size() >= kBlockSize);
    assert(vecs.empty() || blockno == end_block());
    vecs.push_back(BioVec{blockno, {}, in.subspan(0, kBlockSize)});
  }

  static Bio single_read(std::uint64_t blockno, std::span<std::byte> out) {
    Bio b(BioOp::Read);
    b.add_read(blockno, out);
    return b;
  }

  static Bio single_write(std::uint64_t blockno,
                          std::span<const std::byte> in) {
    Bio b(BioOp::Write);
    b.add_write(blockno, in);
    return b;
  }
};

/// Batch-level accounting; request-level counts (requests, merges,
/// blocks) live in DeviceStats, where the merged commands execute.
struct RequestQueueStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // bios submitted
  std::uint64_t async_batches = 0;  // batches submitted without a barrier
  std::uint64_t max_inflight = 0;   // peak unredeemed async tickets
  // ---- transient-error retry policy (see RetryPolicy) ----
  std::uint64_t retries = 0;            // retry attempts issued
  std::uint64_t retry_successes = 0;    // retried bios that then completed
  std::uint64_t deadline_expirations = 0;  // retries abandoned at deadline
};

/// Bounded-retry policy for transient failures, applied per bio by the
/// request queue: a bio that fails with Bio::retryable set is reissued up
/// to `max_retries` times, each attempt `backoff` after the previous
/// failure's completion (in virtual time — the md/SCSI mid-layer requeue).
/// `deadline` bounds the total queue residency: a retry that would start
/// later than queued_at + deadline is abandoned and the bio stays failed.
/// The default (max_retries = 0) disables retry entirely, keeping the
/// zero-fault path bit-identical.
struct RetryPolicy {
  std::uint32_t max_retries = 0;
  sim::Nanos backoff = sim::usec(50);
  sim::Nanos deadline = 0;  // 0 = no deadline
};

/// Value-batch to pointer-batch conversion (the device layer's plug and
/// the queue's span<Bio> convenience overloads both funnel through the
/// pointer shape).
inline std::vector<Bio*> bio_ptrs(std::span<Bio> bios) {
  std::vector<Bio*> ptrs;
  ptrs.reserve(bios.size());
  for (Bio& b : bios) ptrs.push_back(&b);
  return ptrs;
}

/// Handle for an in-flight async batch. Redeem with RequestQueue::wait;
/// default-constructed tickets are empty and wait() on them is a no-op.
/// Tickets may be redeemed in any order — each one independently records
/// its batch's completion time, so wait order does not affect the clock a
/// thread ends up at after redeeming a set of tickets.
struct Ticket {
  sim::Nanos done = 0;
  std::uint64_t id = 0;  // 0 = empty
  /// At least one bio of the ticket's batch failed (io_error after any
  /// retries) — set at submission, when media effects land, so a journal
  /// can check it before issuing dependent writes without redeeming the
  /// ticket first.
  bool failed = false;

  [[nodiscard]] bool valid() const { return id != 0; }
};

/// The per-device request queue. All timed block traffic goes through
/// submit(); BlockDevice owns one (BlockDevice::queue()).
class RequestQueue {
 public:
  explicit RequestQueue(BlockDevice& dev) : dev_(&dev) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Submit a batch: sort, merge, dispatch across device channels, then
  /// wait for the whole batch (timed). Returns the completion time of the
  /// last request; each bio's own completion is left in its done_at.
  /// Reads and writes in one batch must not overlap block ranges (no
  /// consumer mixes them; a batch is one direction of one subsystem).
  sim::Nanos submit(std::span<Bio> bios);
  /// Pointer-batch form (the device layer's plug/unplug path hands the
  /// accumulated bios over as pointers; same semantics).
  sim::Nanos submit(std::span<Bio* const> bios);

  /// One-bio convenience (the scalar read/write path).
  sim::Nanos submit(Bio& bio) { return submit(std::span<Bio>(&bio, 1)); }

  /// Non-barrier submission: sort, merge, and dispatch the batch across
  /// device channels exactly like submit(), but do NOT advance the calling
  /// thread to the batch's completion. The returned Ticket records the
  /// completion time of the batch's last request; redeem it with wait().
  /// A later submission (async or not) queues behind this batch on busy
  /// channels, which is what lets one thread hold QD>1 against the device.
  /// Media effects and the crash model's write-command count still happen
  /// at submission, in submission order.
  Ticket submit_async(std::span<Bio> bios);
  Ticket submit_async(std::span<Bio* const> bios);

  /// Redeem a ticket: advance the calling thread to the batch's completion
  /// (no-op for empty tickets or if the caller's clock is already past it).
  /// Returns the batch completion time. Tickets may be redeemed in any
  /// order and at most once each meaningfully; extra waits are harmless.
  sim::Nanos wait(const Ticket& t);

  /// Unredeemed async tickets (diagnostics). Tracked by ticket identity,
  /// so redundant waits on an already-redeemed ticket stay harmless.
  [[nodiscard]] std::uint64_t inflight() const {
    return outstanding_.size();
  }

  [[nodiscard]] const RequestQueueStats& stats() const { return stats_; }

  /// Arm (or disarm, with max_retries = 0) the transient-error retry
  /// policy. Normally set through BlockDevice::set_retry_policy, which a
  /// volume fans out to every member queue.
  void set_retry_policy(const RetryPolicy& p) { policy_ = p; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return policy_; }

 private:
  /// Sort + merge + dispatch; fills done_at, returns last completion.
  sim::Nanos start_batch(std::span<Bio* const> bios);
  void dispatch(std::vector<Bio*>& list, sim::Nanos& last_done);
  /// Reissue one transiently-failed bio per the retry policy; updates
  /// done_at/io_error in place and folds the final completion into
  /// `last_done`.
  void retry_bio(Bio& b, sim::Nanos& last_done);

  BlockDevice* dev_;
  RetryPolicy policy_;
  std::uint64_t next_ticket_ = 1;
  std::unordered_set<std::uint64_t> outstanding_;  // unredeemed ticket ids
  RequestQueueStats stats_;
};

}  // namespace bsim::blk
