// The bio / request layer: Linux-style block-I/O descriptors between the
// kernel (caches, journals, io_uring) and the device.
//
// A Bio is one logical block request from a subsystem: an op plus a run of
// *consecutive* disk blocks, each block backed by its own memory segment
// (scatter-gather, like Linux's bio_vec array). Callers build batches of
// bios and hand them to a RequestQueue, which
//   - elevator-sorts the batch by start block (reads and writes
//     separately),
//   - merges back-to-back bios into single device requests (the
//     adjacent-block merge a real request queue performs),
//   - dispatches each merged request to a device channel, so a batch
//     occupies up to `DeviceParams::channels` channels *concurrently* in
//     virtual time, and
//   - waits until every request completes (submission is synchronous at
//     the batch boundary, like submit_bio_wait over a plugged queue).
//
// Per-bio completion times are recorded in Bio::done_at, so tests and
// stats can observe out-of-order completion inside a batch even though the
// submitting thread only resumes at the batch barrier.
//
// The scalar BlockDevice::read/write entry points are one-bio wrappers
// over this layer; every block access in the simulation funnels through
// RequestQueue::submit.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.h"

namespace bsim::blk {

class BlockDevice;

inline constexpr std::uint32_t kBlockSize = 4096;

enum class BioOp : std::uint8_t { Read, Write };

/// One block-sized memory segment of a bio's payload.
struct BioVec {
  std::uint64_t blockno = 0;
  std::span<std::byte> data{};          // destination (Read)
  std::span<const std::byte> wdata{};   // source (Write)
};

/// One logical block-I/O request: `op` over consecutive blocks.
struct Bio {
  BioOp op = BioOp::Read;
  std::vector<BioVec> vecs;
  /// Absolute virtual completion time, set by RequestQueue::submit.
  sim::Nanos done_at = 0;

  Bio() = default;
  explicit Bio(BioOp o) : op(o) {}

  [[nodiscard]] bool empty() const { return vecs.empty(); }
  [[nodiscard]] std::size_t nblocks() const { return vecs.size(); }
  [[nodiscard]] std::uint64_t first_block() const {
    assert(!vecs.empty());
    return vecs.front().blockno;
  }
  /// One past the last block (the merge point for an adjacent bio).
  [[nodiscard]] std::uint64_t end_block() const {
    assert(!vecs.empty());
    return vecs.back().blockno + 1;
  }

  /// Append a read segment; blocks in one bio must be consecutive.
  void add_read(std::uint64_t blockno, std::span<std::byte> out) {
    assert(op == BioOp::Read);
    assert(out.size() >= kBlockSize);
    assert(vecs.empty() || blockno == end_block());
    vecs.push_back(BioVec{blockno, out.subspan(0, kBlockSize), {}});
  }

  /// Append a write segment; blocks in one bio must be consecutive.
  void add_write(std::uint64_t blockno, std::span<const std::byte> in) {
    assert(op == BioOp::Write);
    assert(in.size() >= kBlockSize);
    assert(vecs.empty() || blockno == end_block());
    vecs.push_back(BioVec{blockno, {}, in.subspan(0, kBlockSize)});
  }

  static Bio single_read(std::uint64_t blockno, std::span<std::byte> out) {
    Bio b(BioOp::Read);
    b.add_read(blockno, out);
    return b;
  }

  static Bio single_write(std::uint64_t blockno,
                          std::span<const std::byte> in) {
    Bio b(BioOp::Write);
    b.add_write(blockno, in);
    return b;
  }
};

/// Batch-level accounting; request-level counts (requests, merges,
/// blocks) live in DeviceStats, where the merged commands execute.
struct RequestQueueStats {
  std::uint64_t batches = 0;  // submit() calls
  std::uint64_t bios = 0;     // bios submitted
};

/// The per-device request queue. All timed block traffic goes through
/// submit(); BlockDevice owns one (BlockDevice::queue()).
class RequestQueue {
 public:
  explicit RequestQueue(BlockDevice& dev) : dev_(&dev) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Submit a batch: sort, merge, dispatch across device channels, then
  /// wait for the whole batch (timed). Returns the completion time of the
  /// last request; each bio's own completion is left in its done_at.
  /// Reads and writes in one batch must not overlap block ranges (no
  /// consumer mixes them; a batch is one direction of one subsystem).
  sim::Nanos submit(std::span<Bio> bios);

  /// One-bio convenience (the scalar read/write path).
  sim::Nanos submit(Bio& bio) { return submit(std::span<Bio>(&bio, 1)); }

  [[nodiscard]] const RequestQueueStats& stats() const { return stats_; }

 private:
  void dispatch(std::vector<Bio*>& list, sim::Nanos& last_done);

  BlockDevice* dev_;
  RequestQueueStats stats_;
};

}  // namespace bsim::blk
