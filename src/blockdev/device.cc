#include "blockdev/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "sim/thread.h"

namespace bsim::blk {

BlockDevice::BlockDevice(DeviceParams params)
    : params_(params),
      blocks_(params.nblocks),
      channel_free_(static_cast<std::size_t>(std::max(params.channels, 1)), 0) {}

BlockData& BlockDevice::slot(std::uint64_t blockno) {
  if (blockno >= params_.nblocks) throw std::out_of_range("blockno beyond device");
  auto& p = blocks_[blockno];
  if (!p) {
    p = std::make_unique<BlockData>();
    p->fill(std::byte{0});
  }
  return *p;
}

sim::Nanos BlockDevice::service(sim::Nanos latency) {
  // Pick the channel that frees up first; queue behind it if busy.
  auto it = std::min_element(channel_free_.begin(), channel_free_.end());
  const sim::Nanos start = std::max(*it, sim::now());
  const sim::Nanos done = start + latency;
  *it = done;
  stats_.busy += latency;
  return done;
}

void BlockDevice::read(std::uint64_t blockno, std::span<std::byte> out) {
  assert(out.size() >= kBlockSize);
  const bool sequential = blockno == last_block_read_ + 1;
  last_block_read_ = blockno;
  const sim::Nanos done =
      service(sequential ? params_.read_lat_seq : params_.read_lat_rand);
  sim::current().wait_until(done);
  stats_.reads += 1;
  std::memcpy(out.data(), slot(blockno).data(), kBlockSize);
}

void BlockDevice::write(std::uint64_t blockno, std::span<const std::byte> in) {
  assert(in.size() >= kBlockSize);
  // Forced destage when the volatile cache is full: the write behaves like
  // a media program instead of a cache transfer.
  sim::Nanos latency = params_.write_xfer;
  if (dirty_.size() >= params_.write_cache_blocks) {
    latency += params_.destage_per_block;
    // Oldest-written semantics are irrelevant for timing; make one slot
    // durable to bound the dirty set.
    if (!dirty_.empty()) {
      stats_.blocks_destaged += 1;
      dirty_.erase(dirty_.begin());
    }
  }
  const sim::Nanos done = service(latency);
  sim::current().wait_until(done);
  stats_.writes += 1;

  if (kill_armed_) {
    if (kill_countdown_ == 0) dead_ = true;
    else kill_countdown_ -= 1;
  }
  if (dead_) return;  // power died: the write never reached the device

  auto& dst = slot(blockno);
  if (!dirty_.contains(blockno)) {
    std::unique_ptr<BlockData> pre;
    if (crash_tracking_) pre = std::make_unique<BlockData>(dst);
    dirty_.emplace(blockno, std::move(pre));
  }
  std::memcpy(dst.data(), in.data(), kBlockSize);
}

void BlockDevice::flush() {
  // FLUSH is a barrier: it starts after all in-flight requests and blocks
  // the whole device until the cache is destaged.
  const sim::Nanos cost =
      params_.flush_base +
      static_cast<sim::Nanos>(dirty_.size()) * params_.destage_per_block;
  sim::Nanos start = sim::now();
  for (const sim::Nanos busy : channel_free_) start = std::max(start, busy);
  const sim::Nanos done = start + cost;
  for (auto& ch : channel_free_) ch = done;
  stats_.busy += cost;
  sim::current().wait_until(done);
  stats_.flushes += 1;
  if (dead_) return;  // dead device: nothing destages
  stats_.blocks_destaged += dirty_.size();
  dirty_.clear();
}

void BlockDevice::read_untimed(std::uint64_t blockno, std::span<std::byte> out) {
  assert(out.size() >= kBlockSize);
  std::memcpy(out.data(), slot(blockno).data(), kBlockSize);
}

void BlockDevice::write_untimed(std::uint64_t blockno,
                                std::span<const std::byte> in) {
  assert(in.size() >= kBlockSize);
  std::memcpy(slot(blockno).data(), in.data(), kBlockSize);
}

void BlockDevice::enable_crash_tracking() { crash_tracking_ = true; }

void BlockDevice::kill_after(std::uint64_t n) {
  kill_armed_ = true;
  kill_countdown_ = n;
}

void BlockDevice::crash(double survive_p, sim::Rng& rng) {
  assert(crash_tracking_ && "crash() requires enable_crash_tracking()");
  dead_ = false;
  kill_armed_ = false;
  for (auto& [blockno, pre] : dirty_) {
    if (rng.chance(survive_p)) continue;  // this block made it to media
    if (pre) std::memcpy(slot(blockno).data(), pre->data(), kBlockSize);
  }
  dirty_.clear();
}

}  // namespace bsim::blk
