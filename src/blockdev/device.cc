#include "blockdev/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "sim/thread.h"

namespace bsim::blk {

BlockDevice::BlockDevice(DeviceParams params)
    : params_(params),
      blocks_(params.nblocks),
      channel_free_(static_cast<std::size_t>(std::max(params.channels, 1)), 0) {}

BlockDevice::BlockDevice(DeviceParams params, NoBacking)
    : params_(params),
      channel_free_(static_cast<std::size_t>(std::max(params.channels, 1)), 0) {}

BlockDevice::~BlockDevice() = default;

BlockData& BlockDevice::slot(std::uint64_t blockno) {
  if (blockno >= blocks_.size()) throw std::out_of_range("blockno beyond device");
  auto& p = blocks_[blockno];
  if (!p) {
    p = std::make_unique<BlockData>();
    p->fill(std::byte{0});
  }
  return *p;
}

sim::Nanos BlockDevice::service(sim::Nanos latency, sim::Nanos not_before) {
  // Pick the channel that frees up first; queue behind it if busy.
  auto it = std::min_element(channel_free_.begin(), channel_free_.end());
  const sim::Nanos start = std::max({*it, sim::now(), not_before});
  const sim::Nanos done = start + latency;
  *it = done;
  stats_.busy += latency;
  return done;
}

void BlockDevice::arm_trace(std::size_t capacity, const std::string& name) {
  install_tracer(std::make_shared<Tracer>(capacity), name);
}

void BlockDevice::install_tracer(const std::shared_ptr<Tracer>& t,
                                 const std::string& name) {
  tracer_ = t;
  trace_dev_ = t->register_device(name);
}

void BlockDevice::trace_event(TraceEv ev, std::uint64_t id,
                              std::uint64_t block, std::uint32_t nblocks,
                              TraceOp op) {
  if (!tracer_) return;
  TraceEvent e;
  e.t = sim::now();
  e.id = id;
  e.block = block;
  e.nblocks = nblocks;
  e.dev = trace_dev_;
  e.ev = ev;
  e.op = op;
  tracer_->emit(e);
}

void BlockDevice::note_bio_queued(Bio& b) {
  if (b.queued_at >= 0) return;  // already queued upstream (volume / plug)
  b.queued_at = sim::now();
  if (!tracer_) return;
  if (b.trace_id == 0) b.trace_id = tracer_->next_id();
  const TraceOp op = b.op == BioOp::Read ? TraceOp::Read : TraceOp::Write;
  TraceEvent e;
  e.t = b.queued_at;
  e.id = b.trace_id;
  e.parent = b.parent_trace_id;
  e.block = b.first_block();
  e.nblocks = static_cast<std::uint32_t>(b.nblocks());
  e.dev = trace_dev_;
  e.op = op;
  if (b.parent_trace_id != 0) {
    // A volume fragment: link it to its logical parent before its Q.
    e.ev = TraceEv::FanChild;
    tracer_->emit(e);
  }
  e.ev = TraceEv::Queue;
  tracer_->emit(e);
}

void BlockDevice::set_fault_schedule(const FaultSchedule& s) {
  fault_sched_ = s;
  fault_sched_armed_ = true;
  fault_sched_t0_ = sim::now();
  fault_rng_ = sim::Rng(s.seed);
}

bool BlockDevice::scheduled_fault_at(sim::Nanos at) {
  const sim::Nanos period =
      fault_sched_.up_interval + fault_sched_.down_interval;
  if (period > 0) {
    const sim::Nanos phase = (at - fault_sched_t0_) % period;
    if (phase < fault_sched_.up_interval) return false;  // healthy window
  }
  return fault_rng_.chance(fault_sched_.fail_p);
}

bool BlockDevice::fault_check(Bio& b, sim::Nanos at) {
  // Sticky per-block errors first (a bad sector beats a transient blip),
  // direction-specific; these are NOT retryable.
  const auto& bad = b.op == BioOp::Read ? bad_reads_ : bad_writes_;
  if (!bad.empty()) {
    for (const BioVec& v : b.vecs) {
      if (bad.contains(v.blockno)) {
        b.io_error = true;
        return true;
      }
    }
  }
  if (transient_remaining_ > 0) {
    transient_remaining_ -= 1;
    stats_.transient_errors += 1;
    b.io_error = true;
    b.retryable = true;
    return true;
  }
  if (fault_sched_armed_ && scheduled_fault_at(at)) {
    stats_.faults_scheduled += 1;
    b.io_error = true;
    b.retryable = true;
    return true;
  }
  return false;
}

sim::Nanos BlockDevice::do_request(std::span<Bio* const> bios,
                                   sim::Nanos* start_out,
                                   sim::Nanos not_before) {
  assert(!bios.empty());
  const BioOp op = bios.front()->op;
  std::size_t nblocks = 0;
  for (const Bio* b : bios) nblocks += b->vecs.size();
  stats_.max_request_blocks = std::max<std::uint64_t>(
      stats_.max_request_blocks, nblocks);
  stats_.merges += bios.size() - 1;
  const bool faulty = faults_armed();

  if (op == BioOp::Read) {
    // A merged request is one device command: only its first block can be
    // random-priced; the tail streams at the sequential rate regardless of
    // what preceded the request.
    const bool sequential =
        bios.front()->first_block() == last_block_read_ + 1;
    last_block_read_ = bios.back()->end_block() - 1;
    const sim::Nanos first_lat =
        sequential ? params_.read_lat_seq : params_.read_lat_rand;
    const sim::Nanos lat =
        first_lat + static_cast<sim::Nanos>(nblocks - 1) * params_.read_lat_seq;
    stats_.seq_read_blocks +=
        static_cast<std::uint64_t>(nblocks - 1) + (sequential ? 1 : 0);
    const sim::Nanos done = service(lat, not_before);
    const sim::Nanos start = done - lat;  // channel occupancy began here
    if (start_out != nullptr) *start_out = start;
    stats_.reads += nblocks;
    stats_.read_requests += 1;
    for (Bio* b : bios) {
      if (b->queued_at >= 0) stats_.read_wait.record(start - b->queued_at);
      stats_.read_service.record(done - start);
    }
    for (Bio* b : bios) {
      // A bio hitting the fault model fails whole: the command is timed
      // (the drive spent the service attempt) but transfers nothing.
      if (faulty && fault_check(*b, start)) {
        stats_.read_errors += 1;
        continue;
      }
      b->applied = true;
      for (BioVec& v : b->vecs) {
        std::memcpy(v.data.data(), slot(v.blockno).data(), kBlockSize);
      }
    }
    return done;
  }

  // Write: per-block transfer into the volatile cache, with forced destage
  // when it is full. One bio is one write command for the crash model; a
  // dead device keeps charging time but never changes media state.
  // `occupancy` tracks what dirty_ will hold as the request's blocks land,
  // so every block of a large batch prices its own destage once the cache
  // is full (matching the scalar write-then-write sequence).
  sim::Nanos lat = 0;
  stats_.write_requests += 1;
  std::size_t occupancy = dirty_.size();
  // Predicted channel-start for the fault schedule: service() below picks
  // the earliest-free channel, so this equals the start it will compute
  // (nothing between here and there touches channel_free_).
  sim::Nanos pred = 0;
  if (faulty) {
    pred = std::max(
        {*std::min_element(channel_free_.begin(), channel_free_.end()),
         sim::now(), not_before});
  }
  for (Bio* b : bios) {
    for (const BioVec& v : b->vecs) {
      lat += params_.write_xfer;
      if (occupancy >= params_.write_cache_blocks) {
        lat += params_.destage_per_block;
        if (!dirty_.empty()) {
          stats_.blocks_destaged += 1;
          dirty_.erase(dirty_.begin());
        }
      } else if (!dirty_.contains(v.blockno)) {
        occupancy += 1;
      }
    }
    stats_.writes += b->vecs.size();
    if (kill_armed_) {
      if (kill_countdown_ == 0) dead_ = true;
      else kill_countdown_ -= 1;
    }
    if (dead_) continue;  // power died: this bio never reached the device
    // Faults fail the command visibly (io_error; a dead device swallows
    // silently): full latency charged, no media change, no heal.
    if (faulty && fault_check(*b, pred)) {
      stats_.write_errors += 1;
      continue;
    }
    b->applied = true;
    for (const BioVec& v : b->vecs) {
      bad_reads_.erase(v.blockno);  // a successful write repairs the sector
      auto& dst = slot(v.blockno);
      if (!dirty_.contains(v.blockno)) {
        std::unique_ptr<BlockData> pre;
        if (crash_tracking_) pre = std::make_unique<BlockData>(dst);
        dirty_.emplace(v.blockno, std::move(pre));
      }
      std::memcpy(dst.data(), v.wdata.data(), kBlockSize);
    }
  }
  const sim::Nanos done = service(lat, not_before);
  const sim::Nanos start = done - lat;
  if (start_out != nullptr) *start_out = start;
  for (Bio* b : bios) {
    if (b->queued_at >= 0) stats_.write_wait.record(start - b->queued_at);
    stats_.write_service.record(done - start);
  }
  return done;
}

// ---- public submission entry points (plug-aware, non-virtual) ----

namespace {
/// Synthetic ticket ids for plugged submissions live in their own id
/// space so the public wait() can tell them apart from impl tickets.
constexpr std::uint64_t kPlugTicketBit = 1ULL << 63;
}  // namespace

sim::Nanos BlockDevice::submit(std::span<Bio> bios) {
  if (bios.empty()) return sim::now();
  // A synchronous submission is a barrier: anything plugged must reach
  // the device first (and in particular before any read that could
  // observe it), exactly like a blocking op flushing a blk_plug.
  flush_plug();
  const std::vector<Bio*> ptrs = bio_ptrs(bios);
  return submit_impl(ptrs);
}

Ticket BlockDevice::submit_async(std::span<Bio> bios) {
  if (bios.empty()) return Ticket{};
  if (plug_depth_ > 0) {
    // Accumulation is where the bio enters "the queue": stamp Q now so
    // the wait histograms charge plug residency to queue wait.
    for (Bio& b : bios) note_bio_queued(b);
    for (Bio& b : bios) plug_list_.push_back(&b);
    plug_stats_.plugged_batches += 1;
    plug_stats_.plugged_bios += bios.size();
    const std::uint64_t id = kPlugTicketBit | next_plug_id_++;
    plug_pending_.push_back(id);
    return Ticket{0, id};
  }
  const std::vector<Bio*> ptrs = bio_ptrs(bios);
  return submit_async_impl(ptrs);
}

sim::Nanos BlockDevice::wait(const Ticket& t) {
  if (!t.valid()) return sim::now();
  if ((t.id & kPlugTicketBit) != 0) {
    // A plugged ticket: force the accumulated batch out if it has not
    // been dispatched yet, then redeem the real ticket it resolved to.
    // Several plugged tickets share one real ticket; redundant waits on
    // it are harmless by the queue's contract.
    if (std::find(plug_pending_.begin(), plug_pending_.end(), t.id) !=
        plug_pending_.end()) {
      flush_plug();
    }
    auto it = plug_resolved_.find(t.id);
    if (it == plug_resolved_.end()) return sim::now();
    const Ticket real = it->second;
    plug_resolved_.erase(it);
    return real.valid() ? wait_impl(real) : sim::now();
  }
  return wait_impl(t);
}

void BlockDevice::plug() {
  plug_depth_ += 1;
  if (plug_depth_ == 1) {
    plug_stats_.plugs += 1;
    trace_event(TraceEv::Plug, 0, 0, 0, TraceOp::Write);
    // Resolved synthetic tickets from EARLIER windows that were never
    // waited become no-ops now instead of accumulating forever. This is
    // safe because every consumer that defers its waits past a window
    // also holds that window's REAL unplug ticket (the journal pipeline
    // does; the flusher waits inside its own window), so completion
    // tracking never depends on a stale synthetic id.
    plug_resolved_.clear();
  }
}

Ticket BlockDevice::unplug() {
  assert(plug_depth_ > 0 && "unplug without a matching plug");
  plug_depth_ -= 1;
  if (plug_depth_ > 0) return Ticket{};  // nested: outermost dispatches
  trace_event(TraceEv::Unplug, 0, 0,
              static_cast<std::uint32_t>(plug_list_.size()), TraceOp::Write);
  if (plug_list_.empty() && plug_pending_.empty()) return Ticket{};
  const Ticket real =
      plug_list_.empty() ? Ticket{}
                         : submit_async_impl(std::span<Bio* const>(plug_list_));
  for (const std::uint64_t id : plug_pending_) plug_resolved_[id] = real;
  plug_list_.clear();
  plug_pending_.clear();
  return real;
}

void BlockDevice::flush_plug() {
  if (plug_list_.empty() && plug_pending_.empty()) return;
  if (plug_depth_ > 0) {
    plug_stats_.forced_flushes += 1;
    // An early flush is an unplug event too (blktrace's "unplug due to
    // sync"); the window itself stays open.
    trace_event(TraceEv::Unplug, 0, 0,
                static_cast<std::uint32_t>(plug_list_.size()),
                TraceOp::Write);
  }
  const Ticket real =
      plug_list_.empty() ? Ticket{}
                         : submit_async_impl(std::span<Bio* const>(plug_list_));
  for (const std::uint64_t id : plug_pending_) plug_resolved_[id] = real;
  plug_list_.clear();
  plug_pending_.clear();
  // The flushed batch is left in flight (its tickets are still
  // redeemable); the plug window itself stays open for further batches.
}

void BlockDevice::read(std::uint64_t blockno, std::span<std::byte> out) {
  assert(out.size() >= kBlockSize);
  Bio bio = Bio::single_read(blockno, out);
  submit(bio);  // routes through the striping layer when present
}

void BlockDevice::write(std::uint64_t blockno, std::span<const std::byte> in) {
  assert(in.size() >= kBlockSize);
  Bio bio = Bio::single_write(blockno, in);
  submit(bio);
}

void BlockDevice::flush() { sim::current().wait_until(flush_nowait()); }

sim::Nanos BlockDevice::flush_nowait() {
  // FLUSH is a barrier over everything submitted, including anything a
  // still-open plug has accumulated.
  flush_plug();
  return flush_nowait_impl();
}

sim::Nanos BlockDevice::flush_nowait_impl() {
  // FLUSH is a barrier: it starts after all in-flight requests and blocks
  // the whole device until the cache is destaged. State effects land here
  // (at submission); the caller decides when to observe the completion.
  const sim::Nanos cost =
      params_.flush_base +
      static_cast<sim::Nanos>(dirty_.size()) * params_.destage_per_block;
  sim::Nanos start = sim::now();
  for (const sim::Nanos busy : channel_free_) start = std::max(start, busy);
  const sim::Nanos done = start + cost;
  for (auto& ch : channel_free_) ch = done;
  stats_.busy += cost;
  stats_.flushes += 1;
  stats_.flush_lat.record(done - sim::now());
  if (tracer_) {
    TraceEvent e;
    e.t = done;
    e.id = tracer_->next_id();
    e.block = 0;
    e.nblocks = static_cast<std::uint32_t>(dirty_.size());
    e.dev = trace_dev_;
    e.ev = TraceEv::Flush;
    e.op = TraceOp::Flush;
    tracer_->emit(e);
  }
  if (dead_) return done;  // dead device: nothing destages
  stats_.blocks_destaged += dirty_.size();
  dirty_.clear();
  return done;
}

void BlockDevice::read_untimed(std::uint64_t blockno, std::span<std::byte> out) {
  assert(out.size() >= kBlockSize);
  std::memcpy(out.data(), slot(blockno).data(), kBlockSize);
}

void BlockDevice::write_untimed(std::uint64_t blockno,
                                std::span<const std::byte> in) {
  assert(in.size() >= kBlockSize);
  std::memcpy(slot(blockno).data(), in.data(), kBlockSize);
}

sim::Nanos BlockDevice::write_fua(std::uint64_t blockno,
                                  std::span<const std::byte> in) {
  assert(in.size() >= kBlockSize);
  // Transfer plus the single block's forced destage: the completion IS
  // the durability point, so the block never enters the dirty set (and a
  // stale cached copy of it is superseded on media).
  const sim::Nanos queued = sim::now();
  const sim::Nanos lat = params_.write_xfer + params_.destage_per_block;
  const sim::Nanos done = service(lat);
  const sim::Nanos start = done - lat;
  stats_.writes += 1;
  stats_.write_requests += 1;
  stats_.write_wait.record(start - queued);
  stats_.write_service.record(done - start);
  if (tracer_) {
    const std::uint64_t id = tracer_->next_id();
    TraceEvent e;
    e.id = id;
    e.block = blockno;
    e.nblocks = 1;
    e.dev = trace_dev_;
    e.op = TraceOp::Write;
    e.t = queued;
    e.ev = TraceEv::Queue;
    tracer_->emit(e);
    e.t = start;
    e.ev = TraceEv::Dispatch;
    tracer_->emit(e);
    e.t = done;
    e.ev = TraceEv::Complete;
    tracer_->emit(e);
  }
  if (!dead_) {
    bad_reads_.erase(blockno);
    dirty_.erase(blockno);
    std::memcpy(slot(blockno).data(), in.data(), kBlockSize);
  }
  sim::current().wait_until(done);
  return done;
}

void BlockDevice::enable_crash_tracking() { crash_tracking_ = true; }

void BlockDevice::kill_after(std::uint64_t n) {
  kill_armed_ = true;
  kill_countdown_ = n;
}

void BlockDevice::crash(double survive_p, sim::Rng& rng) {
  assert(crash_tracking_ && "crash() requires enable_crash_tracking()");
  dead_ = false;
  kill_armed_ = false;
  for (auto& [blockno, pre] : dirty_) {
    if (rng.chance(survive_p)) continue;  // this block made it to media
    if (pre) std::memcpy(slot(blockno).data(), pre->data(), kBlockSize);
  }
  dirty_.clear();
}

}  // namespace bsim::blk
