#include "blockdev/statsdump.h"

#include "blockdev/aggregate.h"
#include "blockdev/bio.h"

namespace bsim::blk {

namespace {

void dump_device_stats(sim::JsonWriter& w, const std::string& name,
                       const DeviceStats& s) {
  w.begin_object();
  w.field("struct", "DeviceStats");
  w.field("device", name);
  w.field("reads", s.reads);
  w.field("writes", s.writes);
  w.field("flushes", s.flushes);
  w.field("blocks_destaged", s.blocks_destaged);
  w.field("busy_ns", static_cast<std::int64_t>(s.busy));
  w.field("read_requests", s.read_requests);
  w.field("write_requests", s.write_requests);
  w.field("merges", s.merges);
  w.field("seq_read_blocks", s.seq_read_blocks);
  w.field("max_request_blocks", s.max_request_blocks);
  w.field("read_errors", s.read_errors);
  w.field("write_errors", s.write_errors);
  w.field("transient_errors", s.transient_errors);
  w.field("faults_scheduled", s.faults_scheduled);
  sim::dump_histogram(w, "read_wait", s.read_wait);
  sim::dump_histogram(w, "write_wait", s.write_wait);
  sim::dump_histogram(w, "read_service", s.read_service);
  sim::dump_histogram(w, "write_service", s.write_service);
  sim::dump_histogram(w, "flush_lat", s.flush_lat);
  w.end_object();
}

void dump_queue_stats(sim::JsonWriter& w, const std::string& name,
                      const RequestQueueStats& s) {
  w.begin_object();
  w.field("struct", "RequestQueueStats");
  w.field("device", name);
  w.field("batches", s.batches);
  w.field("bios", s.bios);
  w.field("async_batches", s.async_batches);
  w.field("max_inflight", s.max_inflight);
  w.field("retries", s.retries);
  w.field("retry_successes", s.retry_successes);
  w.field("deadline_expirations", s.deadline_expirations);
  w.end_object();
}

void dump_plug_stats(sim::JsonWriter& w, const std::string& name,
                     const PlugStats& s) {
  w.begin_object();
  w.field("struct", "PlugStats");
  w.field("device", name);
  w.field("plugs", s.plugs);
  w.field("plugged_batches", s.plugged_batches);
  w.field("plugged_bios", s.plugged_bios);
  w.field("forced_flushes", s.forced_flushes);
  w.end_object();
}

void dump_volume_stats(sim::JsonWriter& w, const std::string& name,
                       const AggregateVolumeStats& s) {
  w.begin_object();
  w.field("struct", "AggregateVolumeStats");
  w.field("device", name);
  w.field("batches", s.batches);
  w.field("bios", s.bios);
  w.field("async_batches", s.async_batches);
  w.field("max_inflight", s.max_inflight);
  w.field("rebuilds_started", s.rebuilds_started);
  w.field("rebuilds_completed", s.rebuilds_completed);
  w.field("rebuilds_aborted", s.rebuilds_aborted);
  w.field("rebuild_copied", s.rebuild_copied);
  w.field("rebuild_throttle_yields", s.rebuild_throttle_yields);
  w.field("spares_deployed", s.spares_deployed);
  w.field("scrub_steps", s.scrub_steps);
  w.field("scrub_mismatches", s.scrub_mismatches);
  w.field("scrub_repairs", s.scrub_repairs);
  w.end_object();
}

}  // namespace

void dump_device_tree_stats(sim::JsonWriter& w, const std::string& name,
                            BlockDevice& dev) {
  dump_device_stats(w, name, dev.stats());
  dump_queue_stats(w, name, dev.queue().stats());
  dump_plug_stats(w, name, dev.plug_stats());
  if (auto* agg = dynamic_cast<AggregateDevice*>(&dev)) {
    dump_volume_stats(w, name, agg->aggregate_stats());
    for (std::size_t i = 0; i < agg->members(); ++i) {
      dump_device_tree_stats(w, name + "/" + std::to_string(i),
                             agg->member(i));
    }
  }
}

}  // namespace bsim::blk
