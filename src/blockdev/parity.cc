#include "blockdev/parity.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "blockdev/opts.h"
#include "sim/thread.h"

namespace bsim::blk {

namespace {

void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) {
  for (std::size_t i = 0; i < kBlockSize; ++i) dst[i] ^= src[i];
}

bool all_zero(const BlockData& b) {
  for (const std::byte x : b) {
    if (x != std::byte{0}) return false;
  }
  return true;
}

}  // namespace

ParityParams merge_parity_opts(std::string_view opts, ParityParams base) {
  for_each_opt_token(opts, [&](std::string_view tok) {
    std::uint64_t n = 0;
    if (opt_num_after(tok, "parity=", n)) {
      base.ndata = static_cast<std::size_t>(n);
    } else if (opt_num_after(tok, "chunk=", n) && n >= 1) {
      base.chunk_blocks = n;
    } else if (opt_num_after(tok, "spare=", n)) {
      base.nspares = static_cast<std::size_t>(n);
    } else if (tok == "scrub") {
      base.auto_scrub = true;
    }
  });
  return base;
}

std::optional<ParityParams> parity_params_from_opts(std::string_view opts) {
  ParityParams off;
  off.ndata = 0;  // parity only on an explicit parity=N>=2 token
  const ParityParams merged = merge_parity_opts(opts, off);
  if (merged.ndata < 2) return std::nullopt;
  return merged;
}

// ---- geometry ----

std::size_t ParityDevice::parity_member_of(std::uint64_t row) const {
  const std::uint64_t n = nmembers();
  return static_cast<std::size_t>((n - 1) - (row % n));
}

std::size_t ParityDevice::data_member_of(std::uint64_t blockno) const {
  const std::uint64_t chunk = blockno / parity_.chunk_blocks;
  const std::uint64_t row = chunk / parity_.ndata;
  const std::uint64_t d = chunk % parity_.ndata;
  return static_cast<std::size_t>((parity_member_of(row) + 1 + d) %
                                  nmembers());
}

std::uint64_t ParityDevice::child_block_of(std::uint64_t blockno) const {
  const std::uint64_t ck = parity_.chunk_blocks;
  const std::uint64_t row = blockno / ck / parity_.ndata;
  return kBitmapBlocks + row * ck + blockno % ck;
}

DeviceParams ParityDevice::volume_params(
    const ParityParams& pp, const std::vector<DeviceParams>& members) {
  assert(!members.empty());
  DeviceParams p = members.front();
  if (p.nblocks <= kBitmapBlocks) {
    throw std::invalid_argument("parity members too small for the bitmap");
  }
  const std::uint64_t rows =
      (p.nblocks - kBitmapBlocks) / std::max<std::uint64_t>(pp.chunk_blocks, 1);
  // Logical capacity: the data columns of every full stripe row. One
  // member's worth of capacity goes to parity, one block each to the
  // replicated intent bitmap.
  p.nblocks = pp.ndata * rows * pp.chunk_blocks;
  p.channels = 0;
  for (const DeviceParams& m : members) p.channels += m.channels;
  return p;
}

ParityDevice::ParityDevice(ParityParams pp, DeviceParams member_params)
    : ParityDevice(pp, std::vector<DeviceParams>(pp.ndata + 1,
                                                 member_params)) {}

ParityDevice::ParityDevice(ParityParams pp,
                           std::vector<DeviceParams> member_params)
    : AggregateDevice(volume_params(pp, member_params)), parity_(pp) {
  if (parity_.ndata < 2) {
    throw std::invalid_argument("parity needs at least 2 data columns");
  }
  if (member_params.size() != parity_.ndata + 1) {
    throw std::invalid_argument("parity member count must be ndata + 1");
  }
  if (parity_.chunk_blocks == 0) {
    throw std::invalid_argument("chunk_blocks must be positive");
  }
  for (const DeviceParams& p : member_params) {
    if (p.nblocks != member_params.front().nblocks) {
      throw std::invalid_argument("parity members must be the same size");
    }
  }
  rows_ =
      (member_params.front().nblocks - kBitmapBlocks) / parity_.chunk_blocks;
  if (rows_ == 0) {
    throw std::invalid_argument("members too small for one stripe row");
  }
  const std::uint64_t regions = (rows_ + kRegionRows - 1) / kRegionRows;
  if (regions > kBlockSize * 8) {
    throw std::invalid_argument("volume too large for a one-block bitmap");
  }
  region_dirty_.assign(static_cast<std::size_t>(regions), false);
  bitmap_page_.fill(std::byte{0});
  std::vector<std::unique_ptr<BlockDevice>> members;
  for (const DeviceParams& p : member_params) {
    members.push_back(std::make_unique<BlockDevice>(p));
  }
  std::vector<std::unique_ptr<BlockDevice>> spares;
  for (std::size_t i = 0; i < parity_.nspares; ++i) {
    spares.push_back(std::make_unique<BlockDevice>(member_params.front()));
  }
  adopt_children(std::move(members), std::move(spares), parity_.rebuild_batch,
                 parity_.rebuild_lead);
  if (parity_.auto_scrub) arm_auto_scrub();
}

ParityDevice::~ParityDevice() = default;

// ---- write-intent bitmap ----

void ParityDevice::write_bitmap_page(bool timed) {
  for (std::size_t m = 0; m < children_.size(); ++m) {
    if (timed) {
      if (!serves_writes(m)) continue;
      children_[m]->write_fua(0, bitmap_page_);
      vstats_.bitmap_updates += 1;
    } else {
      children_[m]->write_untimed(0, bitmap_page_);
    }
  }
}

void ParityDevice::mark_regions(
    const std::map<std::uint64_t, LineUpdate>& lines) {
  bool changed = false;
  for (const auto& [mb, line] : lines) {
    const std::uint64_t r = region_of_mb(mb);
    if (region_dirty_[static_cast<std::size_t>(r)]) continue;
    region_dirty_[static_cast<std::size_t>(r)] = true;
    bitmap_page_[static_cast<std::size_t>(r / 8)] |=
        std::byte{1} << static_cast<int>(r % 8);
    changed = true;
  }
  // FUA, and BEFORE any of the batch's data lands: were the intent not
  // durable first, a crash between a line's data and parity writes would
  // leave a silently broken line that resync() cannot find.
  if (changed) write_bitmap_page(/*timed=*/true);
}

std::size_t ParityDevice::dirty_regions() const {
  return static_cast<std::size_t>(
      std::count(region_dirty_.begin(), region_dirty_.end(), true));
}

// ---- XOR reconstruction ----

bool ParityDevice::reconstruct_block_timed(std::size_t m, std::uint64_t mb,
                                           std::span<std::byte> out,
                                           ChildTickets& tickets,
                                           sim::Nanos& last_done,
                                           sim::Nanos& bio_done) {
  std::fill(out.begin(), out.begin() + kBlockSize, std::byte{0});
  BlockData peer;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i == m) continue;
    if (!healthy_[i]) return false;  // double failure: nothing to XOR from
    Bio read = Bio::single_read(mb, peer);
    const Ticket t = children_[i]->submit_async(std::span<Bio>(&read, 1));
    tickets.emplace_back(i, t);
    last_done = std::max(last_done, t.done);
    bio_done = std::max(bio_done, read.done_at);
    if (read.io_error) return false;
    xor_into(out, peer);
  }
  vstats_.reconstructed_blocks += 1;
  return true;
}

void ParityDevice::reconstruct_block_untimed(std::size_t m, std::uint64_t mb,
                                             std::span<std::byte> out) {
  std::fill(out.begin(), out.begin() + kBlockSize, std::byte{0});
  BlockData tmp;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i == m) continue;
    children_[i]->read_untimed(mb, tmp);
    xor_into(out, tmp);
  }
}

// ---- write path ----

void ParityDevice::submit_write_lines(const std::vector<Bio*>& parents,
                                      ChildTickets& tickets,
                                      sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = children_.size();
  const std::uint64_t ck = parity_.chunk_blocks;
  const bool deg = degraded();

  // 1. Classify the batch into parity lines, keyed by the member-local
  //    line block (where both the line's data and its parity live on
  //    their respective members).
  std::map<std::uint64_t, LineUpdate> lines;
  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = true;  // AND-ed with every fragment below
    if (deg) vstats_.degraded_writes += 1;
    for (const BioVec& v : parent->vecs) {
      const std::size_t d =
          static_cast<std::size_t>((v.blockno / ck) % parity_.ndata);
      LineUpdate& line = lines[child_block_of(v.blockno)];
      if (line.newdata.empty()) {
        line.newdata.assign(parity_.ndata, {});
        line.olddata.assign(parity_.ndata, nullptr);
      }
      if (line.newdata[d].empty()) line.written += 1;
      line.newdata[d] = v.wdata;  // same-block rewrites: last writer wins
      if (line.writers.empty() || line.writers.back() != parent) {
        line.writers.push_back(parent);
      }
    }
  }

  // 2. Pick each line's parity plan. With at most one lost member parity
  //    is always maintainable: a failed written column forces
  //    reconstruct-write, a failed unwritten column forces RMW; only a
  //    lost parity member skips the update (the region stays marked).
  for (auto& [mb, line] : lines) {
    const std::uint64_t row = (mb - kBitmapBlocks) / ck;
    const std::size_t p = parity_member_of(row);
    if (!serves_writes(p)) {
      line.plan = LinePlan::Skip;
      continue;
    }
    if (line.written == parity_.ndata) {
      line.plan = LinePlan::Full;
      continue;
    }
    bool rmw_ok = healthy_[p];  // a resyncing parity member is stale
    bool recon_ok = true;
    for (std::size_t d = 0; d < parity_.ndata; ++d) {
      const std::size_t m = (p + 1 + d) % n;
      if (!line.newdata[d].empty()) {
        rmw_ok = rmw_ok && healthy_[m];
      } else {
        recon_ok = recon_ok && healthy_[m];
      }
    }
    const std::size_t rmw_reads = line.written + 1;
    const std::size_t recon_reads = parity_.ndata - line.written;
    if (rmw_ok && (!recon_ok || rmw_reads <= recon_reads)) {
      line.plan = LinePlan::Rmw;
    } else if (recon_ok) {
      line.plan = LinePlan::Reconstruct;
    } else {
      line.plan = LinePlan::Skip;  // doubly degraded
    }
  }

  // 3. Durable write intent before any data lands.
  mark_regions(lines);

  // 4. Prefetch the pre-images the plans need: one async batch per
  //    member (its elevator merges adjacent blocks), then a barrier —
  //    the new writes cannot be issued before the old content is in
  //    hand, so the submitter pays the RMW penalty, like md waiting on
  //    its stripe-cache fill.
  std::deque<BlockData> arena;
  std::vector<std::vector<Bio>> pre(n);
  // (line mb, column index | ndata for parity), aligned with pre[m] —
  // to patch medium errors back to their line.
  std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> pre_src(n);
  for (auto& [mb, line] : lines) {
    if (line.plan != LinePlan::Rmw && line.plan != LinePlan::Reconstruct) {
      continue;
    }
    const std::uint64_t row = (mb - kBitmapBlocks) / ck;
    const std::size_t p = parity_member_of(row);
    const bool rmw = line.plan == LinePlan::Rmw;
    for (std::size_t d = 0; d < parity_.ndata; ++d) {
      const bool want =
          rmw ? !line.newdata[d].empty() : line.newdata[d].empty();
      if (!want) continue;
      const std::size_t m = (p + 1 + d) % n;
      arena.emplace_back();
      line.olddata[d] = &arena.back();
      pre[m].push_back(Bio::single_read(mb, arena.back()));
      pre_src[m].emplace_back(mb, d);
    }
    if (rmw) {
      arena.emplace_back();
      line.old_parity = &arena.back();
      pre[p].push_back(Bio::single_read(mb, arena.back()));
      pre_src[p].emplace_back(mb, parity_.ndata);
    }
  }
  sim::Nanos prefetch_done = 0;
  for (std::size_t m = 0; m < n; ++m) {
    if (pre[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(pre[m]);
    tickets.emplace_back(m, t);
    last_done = std::max(last_done, t.done);
    prefetch_done = std::max(prefetch_done, t.done);
    vstats_.rmw_read_blocks += pre[m].size();
  }
  // Medium errors on a pre-image: re-derive the block by XOR of the other
  // members and rewrite it in place (self-healing); if even that fails,
  // the line's parity is left stale — and its region stays marked.
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < pre[m].size(); ++i) {
      if (!pre[m][i].io_error) continue;
      const auto [lmb, col] = pre_src[m][i];
      LineUpdate& line = lines[lmb];
      BlockData* dst =
          col == parity_.ndata ? line.old_parity : line.olddata[col];
      sim::Nanos bio_done = 0;
      if (reconstruct_block_timed(m, lmb, *dst, tickets, last_done,
                                  bio_done)) {
        Bio heal = Bio::single_write(lmb, *dst);
        const Ticket t = children_[m]->submit_async(std::span<Bio>(&heal, 1));
        tickets.emplace_back(m, t);
        last_done = std::max(last_done, t.done);
        prefetch_done = std::max(prefetch_done, bio_done);
        vstats_.read_error_failovers += 1;
      } else {
        line.ok = false;
      }
    }
  }
  if (prefetch_done > 0) sim::current().wait_until(prefetch_done);

  // 5. Compute the new parity blocks.
  std::vector<std::vector<Bio>> pwrites(n);
  std::vector<std::vector<const LineUpdate*>> powners(n);
  for (auto& [mb, line] : lines) {
    if (line.plan == LinePlan::Skip || !line.ok) continue;
    const std::uint64_t row = (mb - kBitmapBlocks) / ck;
    const std::size_t p = parity_member_of(row);
    arena.emplace_back();
    BlockData& par = arena.back();
    par.fill(std::byte{0});
    switch (line.plan) {
      case LinePlan::Full:
        for (std::size_t d = 0; d < parity_.ndata; ++d) {
          xor_into(par, line.newdata[d]);
        }
        vstats_.full_stripe_writes += 1;
        break;
      case LinePlan::Rmw:
        xor_into(par, *line.old_parity);
        for (std::size_t d = 0; d < parity_.ndata; ++d) {
          if (line.newdata[d].empty()) continue;
          xor_into(par, *line.olddata[d]);
          xor_into(par, line.newdata[d]);
        }
        vstats_.rmw_writes += 1;
        break;
      case LinePlan::Reconstruct:
        for (std::size_t d = 0; d < parity_.ndata; ++d) {
          if (!line.newdata[d].empty()) {
            xor_into(par, line.newdata[d]);
          } else {
            xor_into(par, *line.olddata[d]);
          }
        }
        vstats_.rmw_writes += 1;  // partial-line update, degraded shape
        break;
      case LinePlan::Skip:
        break;
    }
    pwrites[p].push_back(Bio::single_write(mb, par));
    powners[p].push_back(&line);
  }

  // 6. Data fragments: striped-style, one bio per consecutive
  //    member-block run per parent, one async batch per member.
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);
  for (Bio* parent : parents) {
    for (const BioVec& v : parent->vecs) {
      const std::size_t m = data_member_of(v.blockno);
      const std::uint64_t mb = child_block_of(v.blockno);
      if (!serves_writes(m)) {
        // The data member is gone: the write survives only through the
        // parity update (a degraded write) — or not at all.
        LineUpdate& line = lines[mb];
        if (line.plan == LinePlan::Skip || !line.ok) {
          parent->applied = false;
        } else {
          line.parity_reliant.push_back(parent);
        }
        continue;
      }
      if (frags[m].empty() || owners[m].back() != parent ||
          frags[m].back().end_block() != mb) {
        frags[m].emplace_back(BioOp::Write);
        frags[m].back().parent_trace_id = parent->trace_id;
        owners[m].push_back(parent);
        vstats_.fragments += 1;
      }
      frags[m].back().add_write(mb, v.wdata);
    }
  }
  for (std::size_t m = 0; m < n; ++m) {
    if (frags[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(frags[m]);
    tickets.emplace_back(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      parent->done_at = std::max(parent->done_at, frags[m][i].done_at);
      if (!frags[m][i].applied) parent->applied = false;
      // A failed data write is NOT absorbed by redundancy: the new parity
      // was computed against the new data, so the line is inconsistent
      // and the new data exists nowhere durable. The region stays marked
      // (scrub re-derives consistent parity from the surviving old data)
      // but the logical write itself has failed — swallowing it here
      // would be silent data loss.
      if (frags[m][i].io_error) parent->io_error = true;
    }
  }

  // 7. Parity follows its lines' data on each member queue; the window
  //    between the two is the write hole the intent bitmap covers.
  for (std::size_t m = 0; m < n; ++m) {
    if (pwrites[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(pwrites[m]);
    tickets.emplace_back(m, t);
    last_done = std::max(last_done, t.done);
    vstats_.parity_writes += pwrites[m].size();
    for (std::size_t i = 0; i < pwrites[m].size(); ++i) {
      const LineUpdate& line = *powners[m][i];
      for (Bio* parent : line.writers) {
        parent->done_at = std::max(parent->done_at, pwrites[m][i].done_at);
      }
      for (Bio* parent : line.parity_reliant) {
        if (!pwrites[m][i].applied) parent->applied = false;
        // A degraded write survives ONLY through the parity update; if
        // that failed, the write failed. (For ordinary lines a failed
        // parity write is absorbed: the data landed, the region stays
        // marked, and scrub re-derives the parity.)
        if (pwrites[m][i].io_error) parent->io_error = true;
      }
    }
  }

  for (Bio* parent : parents) {
    if (parent->done_at == 0) parent->done_at = sim::now();
  }
}

void ParityDevice::submit_dead_writes(const std::vector<Bio*>& parents,
                                      ChildTickets& tickets,
                                      sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = children_.size();
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);
  for (Bio* parent : parents) {
    parent->done_at = 0;
    parent->applied = true;
    for (const BioVec& v : parent->vecs) {
      const std::size_t m = data_member_of(v.blockno);
      const std::uint64_t mb = child_block_of(v.blockno);
      if (!serves_writes(m)) {
        parent->applied = false;
        continue;
      }
      if (frags[m].empty() || owners[m].back() != parent ||
          frags[m].back().end_block() != mb) {
        frags[m].emplace_back(BioOp::Write);
        frags[m].back().parent_trace_id = parent->trace_id;
        owners[m].push_back(parent);
      }
      frags[m].back().add_write(mb, v.wdata);
    }
  }
  for (std::size_t m = 0; m < n; ++m) {
    if (frags[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(frags[m]);
    tickets.emplace_back(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      owners[m][i]->done_at =
          std::max(owners[m][i]->done_at, frags[m][i].done_at);
      if (!frags[m][i].applied) owners[m][i]->applied = false;
    }
  }
  for (Bio* parent : parents) {
    if (parent->done_at == 0) parent->done_at = sim::now();
  }
}

// ---- read path ----

void ParityDevice::submit_reads(const std::vector<Bio*>& parents,
                                ChildTickets& tickets,
                                sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = children_.size();
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);
  struct Recon {
    std::size_t m;
    std::uint64_t mb;
    std::span<std::byte> out;
    Bio* parent;
  };
  std::vector<Recon> recon;

  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->io_error = false;
    bool degraded_bio = false;
    for (const BioVec& v : parent->vecs) {
      const std::size_t m = data_member_of(v.blockno);
      const std::uint64_t mb = child_block_of(v.blockno);
      if (!healthy_[m]) {  // lost (or still resyncing): XOR-reconstruct
        recon.push_back({m, mb, v.data, parent});
        degraded_bio = true;
        continue;
      }
      if (frags[m].empty() || owners[m].back() != parent ||
          frags[m].back().end_block() != mb) {
        frags[m].emplace_back(BioOp::Read);
        frags[m].back().parent_trace_id = parent->trace_id;
        owners[m].push_back(parent);
        vstats_.fragments += 1;
      }
      frags[m].back().add_read(mb, v.data);
    }
    if (degraded_bio) vstats_.degraded_reads += 1;
  }

  for (std::size_t m = 0; m < n; ++m) {
    if (frags[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(frags[m]);
    tickets.emplace_back(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      parent->done_at = std::max(parent->done_at, frags[m][i].done_at);
      if (frags[m][i].io_error) parent->io_error = true;  // healed below
    }
  }

  // Medium-error failover: re-serve every block of a failed fragment by
  // XOR of the other members and rewrite the reconstructed content in
  // place (self-healing, md's read-error rewrite). The failed attempt
  // still cost its service time.
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      if (!frags[m][i].io_error) continue;
      Bio* parent = owners[m][i];
      parent->io_error = false;
      vstats_.read_error_failovers += 1;
      std::vector<Bio> heals;
      for (const BioVec& v : frags[m][i].vecs) {
        sim::Nanos bio_done = 0;
        if (!reconstruct_block_timed(m, v.blockno, v.data, tickets,
                                     last_done, bio_done)) {
          parent->io_error = true;
          continue;
        }
        parent->done_at = std::max(parent->done_at, bio_done);
        heals.push_back(Bio::single_write(v.blockno, v.data));
      }
      if (!heals.empty()) {
        const Ticket t = children_[m]->submit_async(heals);
        tickets.emplace_back(m, t);
        last_done = std::max(last_done, t.done);
      }
    }
  }

  // Degraded reconstruction: blocks whose data member is lost.
  for (const Recon& r : recon) {
    sim::Nanos bio_done = 0;
    if (!reconstruct_block_timed(r.m, r.mb, r.out, tickets, last_done,
                                 bio_done)) {
      r.parent->io_error = true;
      continue;
    }
    r.parent->done_at = std::max(r.parent->done_at, bio_done);
  }

  for (Bio* parent : parents) {
    parent->applied = !parent->io_error;
    if (parent->done_at == 0) parent->done_at = sim::now();
  }
}

void ParityDevice::route_policy(const std::vector<Bio*>& writes,
                                const std::vector<Bio*>& killed, bool fire,
                                const std::vector<Bio*>& reads,
                                ChildTickets& tickets,
                                sim::Nanos& last_done) {
  submit_write_lines(writes, tickets, last_done);
  if (fire) {
    mark_volume_dead();
    // Power died: plain data fragments only. RMW reads and parity
    // updates are work the real array never got to do — and every
    // member, now off, swallows the data anyway.
    submit_dead_writes(killed, tickets, last_done);
  }
  submit_reads(reads, tickets, last_done);
}

// ---- untimed access (mkfs, oracles, recovery tooling) ----

void ParityDevice::read_untimed(std::uint64_t blockno,
                                std::span<std::byte> out) {
  const std::size_t m = data_member_of(blockno);
  if (healthy_[m]) {
    children_[m]->read_untimed(child_block_of(blockno), out);
    return;
  }
  reconstruct_block_untimed(m, child_block_of(blockno), out);
}

void ParityDevice::write_untimed(std::uint64_t blockno,
                                 std::span<const std::byte> in) {
  const std::size_t m = data_member_of(blockno);
  const std::uint64_t mb = child_block_of(blockno);
  const std::size_t p = parity_member_of(row_of(blockno));
  const bool update_parity = serves_writes(p);
  BlockData par;
  if (update_parity) {
    if (healthy_[m] && healthy_[p]) {
      // RMW-style: parity ^= old ^ new.
      BlockData tmp;
      children_[p]->read_untimed(mb, par);
      children_[m]->read_untimed(mb, tmp);
      xor_into(par, tmp);
      xor_into(par, in);
    } else {
      // Reconstruct-style: XOR of every data column, `in` standing in
      // for this one (the initial all-zero media is parity-consistent,
      // so mkfs through this path keeps every line consistent).
      std::memcpy(par.data(), in.data(), kBlockSize);
      BlockData tmp;
      for (std::size_t d = 0; d < parity_.ndata; ++d) {
        const std::size_t i = (p + 1 + d) % children_.size();
        if (i == m) continue;
        children_[i]->read_untimed(mb, tmp);
        xor_into(par, tmp);
      }
    }
  }
  if (serves_writes(m)) children_[m]->write_untimed(mb, in);
  if (update_parity) children_[p]->write_untimed(mb, par);
}

// ---- crash recovery ----

void ParityDevice::recompute_row_untimed(std::uint64_t row) {
  const std::uint64_t ck = parity_.chunk_blocks;
  const std::size_t p = parity_member_of(row);
  BlockData par, tmp;
  for (std::uint64_t off = 0; off < ck; ++off) {
    const std::uint64_t mb = kBitmapBlocks + row * ck + off;
    par.fill(std::byte{0});
    for (std::size_t d = 0; d < parity_.ndata; ++d) {
      const std::size_t i = (p + 1 + d) % children_.size();
      children_[i]->read_untimed(mb, tmp);
      xor_into(par, tmp);
    }
    children_[p]->write_untimed(mb, par);
  }
}

void ParityDevice::resync() {
  // Array assembly after power loss: only regions marked in the intent
  // bitmap can hold a broken line (data landed, parity did not — or the
  // other way round). Recompute those regions' parity from the data
  // columns wholesale, then retire the intent bits.
  for (std::size_t r = 0; r < region_dirty_.size(); ++r) {
    if (!region_dirty_[r]) continue;
    const std::uint64_t last = std::min<std::uint64_t>(
        rows_, (static_cast<std::uint64_t>(r) + 1) * kRegionRows);
    for (std::uint64_t row = r * kRegionRows; row < last; ++row) {
      recompute_row_untimed(row);
    }
    region_dirty_[r] = false;
  }
  bitmap_page_.fill(std::byte{0});
  write_bitmap_page(/*timed=*/false);
}

bool ParityDevice::dead() const {
  if (volume_killed()) return true;
  for (const auto& m : children_) {
    if (!m->dead()) return false;
  }
  return true;
}

// ---- rebuild hooks ----

bool ParityDevice::has_rebuild_source(std::size_t target) const {
  // XOR reconstruction needs EVERY other member (unlike a mirror's any-one).
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i != target && !healthy_[i]) return false;
  }
  return true;
}

bool ParityDevice::rebuild_source_read(std::uint64_t start, std::uint64_t n) {
  const std::size_t tgt = *rebuild_target();
  const std::uint64_t data_end = kBitmapBlocks + member_usable();
  for (std::uint64_t i = 0; i < n; ++i) rebuild_buf_[i].fill(std::byte{0});

  // Bitmap head: replicated, not parity-protected — copy from a peer.
  // (The XOR of identical replicas would be garbage, not the content.)
  if (start < kBitmapBlocks) {
    const std::uint64_t bm_n = std::min(n, kBitmapBlocks - start);
    std::size_t src = children_.size();
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i != tgt && healthy_[i]) {
        src = i;
        break;
      }
    }
    if (src == children_.size()) return false;
    Bio read(BioOp::Read);
    for (std::uint64_t i = 0; i < bm_n; ++i) {
      read.add_read(start + i, rebuild_buf_[i]);
    }
    children_[src]->submit(read);
    if (read.io_error) return false;
  }

  // Data area: XOR of every other member's run (all peers read
  // concurrently; content is available at submission). Blocks past the
  // data area — chunk-rounding slack — stay zero.
  const std::uint64_t d0 = std::max(start, kBitmapBlocks);
  const std::uint64_t d1 = std::min(start + n, data_end);
  if (d1 > d0) {
    std::vector<BlockData> peer(d1 - d0);
    sim::Nanos done = 0;
    for (std::size_t m = 0; m < children_.size(); ++m) {
      if (m == tgt) continue;
      if (!healthy_[m]) return false;  // lost redundancy mid-rebuild
      Bio read(BioOp::Read);
      for (std::uint64_t i = 0; i < d1 - d0; ++i) {
        read.add_read(d0 + i, peer[i]);
      }
      const Ticket t = children_[m]->submit_async(std::span<Bio>(&read, 1));
      done = std::max(done, t.done);
      if (read.io_error) return false;
      for (std::uint64_t i = 0; i < d1 - d0; ++i) {
        xor_into(rebuild_buf_[d0 - start + i], peer[i]);
      }
    }
    sim::current().wait_until(done);
  }
  return true;
}

// ---- scrub ----

std::uint64_t ParityDevice::scrub_step(std::uint64_t cursor) {
  const std::uint64_t extent = scrub_extent();
  const std::uint64_t nl = std::min<std::uint64_t>(
      std::max<std::uint64_t>(parity_.rebuild_batch, 1), extent - cursor);
  // Verification compares whole lines: it needs every member present.
  if (degraded()) {
    scrub_skipped_ = true;
    return nl;
  }
  const std::uint64_t mb0 = kBitmapBlocks + cursor;
  const std::size_t n = children_.size();
  std::vector<std::vector<BlockData>> buf(n);
  sim::Nanos done = 0;
  for (std::size_t m = 0; m < n; ++m) {
    buf[m].resize(nl);
    Bio read(BioOp::Read);
    for (std::uint64_t i = 0; i < nl; ++i) read.add_read(mb0 + i, buf[m][i]);
    const Ticket t = children_[m]->submit_async(std::span<Bio>(&read, 1));
    done = std::max(done, t.done);
    if (read.io_error) {
      // Medium or scheduled error: this line batch goes UNVERIFIED (never
      // "repair" from a failed read's buffer — a fault window must not
      // rewrite good parity). The pass completes but must not clear the
      // intent bits it did not check.
      scrub_skipped_ = true;
      return nl;
    }
  }
  sim::current().wait_until(done);
  for (std::uint64_t i = 0; i < nl; ++i) {
    BlockData x;
    x.fill(std::byte{0});
    for (std::size_t m = 0; m < n; ++m) xor_into(x, buf[m][i]);
    if (all_zero(x)) continue;
    astats_.scrub_mismatches += 1;
    // Recompute parity from the data columns and rewrite it — md's
    // "repair" sync_action. Data is presumed good, parity stale: the
    // write-hole shape.
    const std::uint64_t row = (cursor + i) / parity_.chunk_blocks;
    const std::size_t p = parity_member_of(row);
    BlockData par;
    par.fill(std::byte{0});
    for (std::size_t m = 0; m < n; ++m) {
      if (m != p) xor_into(par, buf[m][i]);
    }
    Bio repair = Bio::single_write(mb0 + i, par);
    children_[p]->submit(repair);
    if (repair.applied) {
      astats_.scrub_repairs += 1;
    } else {
      scrub_skipped_ = true;  // repair lost to a fault: line still stale
    }
  }
  return nl;
}

void ParityDevice::on_scrub_complete() {
  // A clean, non-degraded pass verified every line: the write-hole
  // exposure the sticky intent bits recorded is gone. (A pass that ran
  // degraded — or skipped lines on faulted reads/repairs — did NOT verify
  // everything: keep the bits for the next pass.)
  const bool skipped = scrub_skipped_;
  scrub_skipped_ = false;
  if (degraded() || skipped) return;
  if (dirty_regions() == 0) return;
  region_dirty_.assign(region_dirty_.size(), false);
  bitmap_page_.fill(std::byte{0});
  write_bitmap_page(/*timed=*/true);
}

}  // namespace bsim::blk
