// AggregateDevice: the common base of every multi-member volume (striped,
// mirrored, parity). One place owns the machinery that used to be
// duplicated per volume type:
//
//   - ownership of the member BlockDevices (each with its own
//     RequestQueue, so every member elevator-sorts and merges its share
//     independently) plus optional cold hot-spare devices;
//   - async ticket fan-out/fan-in: a volume submission hands each member
//     its batch through submit_async, collects (member, Ticket) pairs, and
//     redeems them on wait() — the caller's single submit()/submit_async()
//     therefore holds QD>1 across members in virtual time;
//   - the logical-write-bio crash model: kill_after(n) counts LOGICAL
//     write bios in the single-device queue's stable first-block sort
//     order, so a volume crash sweep selects the SAME n bios as the same
//     trace on one device; at expiry every member is power_off()'d at one
//     instant. kill_after_child(i, n) arms a per-member kill instead;
//     crash()/enable_crash_tracking() fan out in member-index order
//     (deterministic rng consumption);
//   - per-member DeviceStats aggregation (stats() is a live re-aggregated
//     view, like a plain device's);
//   - member health (fail_member fail-stop), online rebuild (resync
//     cursor on a dedicated sim thread, poked forward by foreground
//     submissions, bounded by a lead window), hot spares (a spare is
//     swapped into a failed slot and rebuilt automatically), and a
//     background scrub pass — all shared; subclasses supply only the
//     redundancy policy (where rebuild source data comes from, what a
//     scrub step verifies).
//
// Subclasses implement route_policy(): given the batch already classified
// by the kill model (surviving writes, killed writes, reads), submit it to
// the members in whatever order and grouping the volume's geometry
// demands. Everything else — entry points, ticket bookkeeping, crash
// fan-out, stats — lives here.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/device.h"
#include "sim/thread.h"

namespace bsim::blk {

/// Volume-level counters every aggregate maintains; subclasses fold these
/// into their own volume_stats() structs (whose field names the tests
/// already use) and add their policy-specific counters on top.
struct AggregateVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;   // peak unredeemed volume tickets
  // ---- rebuild ----
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuilds_aborted = 0;   // member failed mid-rebuild
  std::uint64_t rebuild_copied = 0;     // member blocks written by resync
  std::uint64_t rebuild_throttle_yields = 0;  // backpressure pauses
  // ---- hot spares ----
  std::uint64_t spares_deployed = 0;    // spare swapped into a failed slot
  // ---- scrub ----
  std::uint64_t scrub_steps = 0;        // scrub work units executed
  std::uint64_t scrub_mismatches = 0;   // inconsistencies detected
  std::uint64_t scrub_repairs = 0;      // inconsistencies repaired
};

class AggregateDevice : public BlockDevice {
 public:
  ~AggregateDevice() override;

  // ---- member introspection ----
  [[nodiscard]] std::size_t members() const { return children_.size(); }
  [[nodiscard]] BlockDevice& member(std::size_t i) { return *children_[i]; }
  [[nodiscard]] bool healthy(std::size_t i) const { return healthy_[i]; }
  [[nodiscard]] std::size_t healthy_members() const;
  /// Degraded: at least one member is failed or still rebuilding.
  [[nodiscard]] bool degraded() const {
    return healthy_members() < children_.size();
  }
  [[nodiscard]] std::size_t spares_available() const { return spares_.size(); }
  [[nodiscard]] std::uint64_t inflight() const { return outstanding_.size(); }
  [[nodiscard]] const AggregateVolumeStats& aggregate_stats() const {
    return astats_;
  }

  // ---- fan-out protocol (default: expose the members; volumes that are
  // one logical device to per-device subsystems — mirror, parity —
  // override back to 1) ----
  [[nodiscard]] std::size_t fan_out() const override {
    return children_.size();
  }
  [[nodiscard]] BlockDevice& fan_child(std::size_t i) override {
    return *children_[i];
  }

  // ---- member failure + online rebuild + hot spares ----
  /// Fail-stop member `i`: from now on it serves no I/O and receives no
  /// writes; the volume runs degraded on the survivors. Aborts an
  /// in-flight rebuild that was using `i` as target or source. If a hot
  /// spare is available (and redundancy permits), the spare is swapped
  /// into the slot and a rebuild starts automatically.
  void fail_member(std::size_t i);
  /// Begin resyncing failed member `i` from the volume's redundancy. The
  /// copy runs on the rebuild thread's clock, poked forward by foreground
  /// submissions; drive it to completion with finish_rebuild().
  void start_rebuild(std::size_t i);
  [[nodiscard]] bool rebuild_active() const {
    return rebuild_target_.has_value();
  }
  [[nodiscard]] std::optional<std::size_t> rebuild_target() const {
    return rebuild_target_;
  }
  /// Next member-local block the resync will copy.
  [[nodiscard]] std::uint64_t rebuild_cursor() const { return rebuild_cursor_; }
  /// Run the resync to completion and advance the calling thread past it
  /// (the "wait for md to finish" barrier). No-op when no rebuild is on.
  void finish_rebuild();

  // ---- scrub ----
  /// Begin one background verification pass over the volume's redundancy
  /// (parity check / replica compare, with repair). Advances on foreground
  /// pokes like a rebuild; finish_scrub() drives it to completion.
  void start_scrub();
  [[nodiscard]] bool scrub_active() const { return scrub_on_; }
  void finish_scrub();

  // ---- crash model ----
  void enable_crash_tracking() override;
  void kill_after(std::uint64_t n) override;
  /// Cut power to ONE member after `n` more of ITS write commands
  /// (member bios, counted in that member queue's dispatch order).
  void kill_after_child(std::size_t child, std::uint64_t n);
  void power_off() override;
  /// Default: the volume is dead when ANY member is (no redundancy).
  /// Redundant volumes override with their own survival rule.
  [[nodiscard]] bool dead() const override;
  void crash(double survive_p, sim::Rng& rng) override;

  // ---- fault-model fan-out (members inherit the volume's faults; the
  // per-block inject_read_error/inject_write_error routing is geometry-
  // specific and lives in the subclasses) ----
  /// Arm every member: each independently fails its next `k` accesses.
  void inject_transient_errors(std::uint64_t k) override;
  /// Arm every member with a per-member derived seed, so replicas do not
  /// fail in lockstep and redundancy/retry have something to work with.
  void set_fault_schedule(const FaultSchedule& s) override;
  void clear_fault_schedule() override;
  /// Retries run where faults fire: on every member's request queue.
  void set_retry_policy(const RetryPolicy& p) override;

  [[nodiscard]] std::uint64_t dirty_blocks() const override;
  [[nodiscard]] const DeviceStats& stats() const override;

  /// Register the volume AND every member in the shared trace: the volume
  /// takes `name`, member `i` takes "<name>/<i>" (recursively for nested
  /// volumes, e.g. RAID10's mirrors). Volume-level Q/C events land on the
  /// volume slot; member queues emit their own Q/M/D/C per fragment.
  void install_tracer(const std::shared_ptr<Tracer>& t,
                      const std::string& name) override;

 protected:
  using ChildTickets = std::vector<std::pair<std::size_t, Ticket>>;

  explicit AggregateDevice(DeviceParams logical_params)
      : BlockDevice(logical_params, NoBacking{}) {}

  /// Install the member (and spare) devices. Must be called exactly once,
  /// from the subclass constructor body (after geometry validation).
  void adopt_children(std::vector<std::unique_ptr<BlockDevice>> children,
                      std::vector<std::unique_ptr<BlockDevice>> spares = {},
                      std::size_t rebuild_batch = 64,
                      sim::Nanos rebuild_lead = 2 * sim::kMillisecond);

  // ---- submission skeleton (BlockDevice impl hooks; the public entry
  // points add the plug layer) ----
  sim::Nanos submit_impl(std::span<Bio* const> bios) override;
  Ticket submit_async_impl(std::span<Bio* const> bios) override;
  sim::Nanos wait_impl(const Ticket& t) override;
  sim::Nanos flush_nowait_impl() override;

  /// Policy hook: submit one batch, already classified by the kill model.
  /// `writes` are the surviving write bios in stable first-block order;
  /// when `fire` is set the implementation must call mark_volume_dead()
  /// after submitting them and then submit `killed` (which every member,
  /// now powered off, swallows); `reads` are in submission order and may
  /// be routed before or after the writes as the geometry demands.
  virtual void route_policy(const std::vector<Bio*>& writes,
                            const std::vector<Bio*>& killed, bool fire,
                            const std::vector<Bio*>& reads,
                            ChildTickets& tickets, sim::Nanos& last_done) = 0;

  /// The kill expired mid-batch: power dies across the whole volume AT
  /// THIS INSTANT — every member swallows all later write commands and
  /// flushes (accepted and timed, never applied), the same moment the
  /// single-device countdown would flip dead_.
  void mark_volume_dead();

  /// Serving members receive writes/flushes: healthy ones plus a rebuild
  /// target (which absorbs foreground writes while resyncing).
  [[nodiscard]] bool serves_writes(std::size_t i) const {
    return healthy_[i] || rebuild_target_ == i;
  }

  /// Whether the whole-volume kill fired (every member powered off at one
  /// instant) — distinct from individual member death.
  [[nodiscard]] bool volume_killed() const { return volume_dead_; }

  /// Defer one scrub pass to the first foreground submission (volumes
  /// built with a "scrub" mount option are constructed outside any
  /// simulated thread, so the pass cannot start in the constructor).
  void arm_auto_scrub() { auto_scrub_ = true; }

  // ---- redundancy-policy hooks ----
  /// Fill rebuild_buf_[0..n) with the content of member-local blocks
  /// [start, start+n) of the rebuild target, reading peers through their
  /// queues (timed on the calling — rebuild — thread). Return false when
  /// no source can serve the range (the rebuild aborts). Default: no
  /// redundancy, no source.
  virtual bool rebuild_source_read(std::uint64_t start, std::uint64_t n);
  /// Whether the surviving members can regenerate failed member `target`.
  virtual bool has_rebuild_source(std::size_t /*target*/) const {
    return false;
  }
  /// Total member-local work units in one scrub pass (0: no scrub).
  virtual std::uint64_t scrub_extent() const { return 0; }
  /// Verify (and repair) the work unit at `cursor`; returns units consumed
  /// (>= 1). Timed on the calling — scrub — thread.
  virtual std::uint64_t scrub_step(std::uint64_t cursor);
  virtual void on_scrub_complete() {}

  /// Advance the resync/scrub while their clocks stay within the lead
  /// window of `horizon` (called from every foreground submission).
  void rebuild_poke(sim::Nanos horizon);
  void scrub_poke(sim::Nanos horizon);

  std::vector<std::unique_ptr<BlockDevice>> children_;
  std::vector<bool> healthy_;
  std::vector<BlockData> rebuild_buf_;
  AggregateVolumeStats astats_;

 private:
  void pokes();
  ChildTickets route_batch(std::span<Bio* const> bios, sim::Nanos& last_done);
  void rebuild_copy_step();
  void complete_rebuild();
  void abort_rebuild();
  void scrub_step_once();
  /// Swap a spare into failed slot `i` and start rebuilding it.
  void maybe_deploy_spare(std::size_t i);

  // Logical-bio kill model (see class comment).
  bool kill_armed_ = false;
  std::uint64_t kill_countdown_ = 0;
  bool volume_dead_ = false;

  // Online rebuild.
  std::optional<std::size_t> rebuild_target_;
  std::uint64_t rebuild_cursor_ = 0;
  std::size_t rebuild_batch_ = 64;
  sim::Nanos rebuild_lead_ = 2 * sim::kMillisecond;
  sim::SimThread rebuild_thread_{-16};

  // Scrub pass.
  bool auto_scrub_ = false;  // start one pass at the first submission
  bool scrub_on_ = false;
  std::uint64_t scrub_cursor_ = 0;
  sim::SimThread scrub_thread_{-17};

  // Hot spares (cold standby) and retired members (kept alive so stale
  // references held across a spare swap stay valid).
  std::vector<std::unique_ptr<BlockDevice>> spares_;
  std::vector<std::unique_ptr<BlockDevice>> retired_;

  std::uint64_t next_ticket_ = 1;
  std::unordered_map<std::uint64_t, ChildTickets> outstanding_;
  mutable DeviceStats agg_;  // stats() aggregation scratch
};

}  // namespace bsim::blk
