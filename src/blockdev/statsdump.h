// JSON serialization of the block layer's stats structs, one object per
// struct (keyed by "struct": "<TypeName>" so tests can assert coverage),
// recursing through aggregate volumes into their member devices. Used by
// Kernel::dump_stats for the unified snapshot.
#pragma once

#include <string>

#include "blockdev/device.h"
#include "sim/jsonw.h"

namespace bsim::blk {

/// Append the stats objects of `dev` (DeviceStats, RequestQueueStats,
/// PlugStats; plus AggregateVolumeStats and each member's objects for
/// aggregate volumes) to an OPEN JSON array on `w`. `name` labels the
/// device ("disk0", "vol/2", ...); member devices get "name/<i>".
void dump_device_tree_stats(sim::JsonWriter& w, const std::string& name,
                            BlockDevice& dev);

}  // namespace bsim::blk
