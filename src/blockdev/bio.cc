#include "blockdev/bio.h"

#include <algorithm>

#include "blockdev/device.h"
#include "sim/thread.h"

namespace bsim::blk {

void RequestQueue::dispatch(std::vector<Bio*>& list, sim::Nanos& last_done) {
  std::stable_sort(list.begin(), list.end(), [](const Bio* a, const Bio* b) {
    return a->first_block() < b->first_block();
  });
  std::size_t i = 0;
  while (i < list.size()) {
    // Grow the request while the next bio starts where this one ends.
    std::size_t j = i + 1;
    while (j < list.size() &&
           list[j]->first_block() == list[j - 1]->end_block()) {
      j += 1;
    }
    const sim::Nanos done =
        dev_->do_request(std::span<Bio* const>(list.data() + i, j - i));
    for (std::size_t k = i; k < j; ++k) list[k]->done_at = done;
    last_done = std::max(last_done, done);
    i = j;
  }
}

sim::Nanos RequestQueue::submit(std::span<Bio> bios) {
  if (bios.empty()) return sim::now();
  stats_.batches += 1;
  stats_.bios += bios.size();

  std::vector<Bio*> reads, writes;
  for (Bio& b : bios) {
    assert(!b.vecs.empty() && "submitting an empty bio");
    (b.op == BioOp::Read ? reads : writes).push_back(&b);
  }

  // Writes dispatch before reads so that media effects (and crash-model
  // write-command counting) happen in a deterministic order; the batch
  // barrier below makes the distinction invisible to timing.
  sim::Nanos last_done = sim::now();
  if (!writes.empty()) dispatch(writes, last_done);
  if (!reads.empty()) dispatch(reads, last_done);

  sim::current().wait_until(last_done);
  return last_done;
}

}  // namespace bsim::blk
