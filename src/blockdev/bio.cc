#include "blockdev/bio.h"

#include <algorithm>

#include "blockdev/device.h"
#include "sim/thread.h"

namespace bsim::blk {

void RequestQueue::dispatch(std::vector<Bio*>& list, sim::Nanos& last_done) {
  std::stable_sort(list.begin(), list.end(), [](const Bio* a, const Bio* b) {
    return a->first_block() < b->first_block();
  });
  std::size_t i = 0;
  while (i < list.size()) {
    // Grow the request while the next bio starts where this one ends, or
    // covers the exact same range (duplicate-block absorption: the stable
    // sort keeps submission order among equal start blocks, and
    // do_request applies bios in list order, so the last-submitted data
    // wins on media — the documented same-block semantics).
    std::size_t j = i + 1;
    while (j < list.size() &&
           (list[j]->first_block() == list[j - 1]->end_block() ||
            (list[j]->first_block() == list[j - 1]->first_block() &&
             list[j]->end_block() == list[j - 1]->end_block()))) {
      j += 1;
    }
    const std::span<Bio* const> req(list.data() + i, j - i);
    sim::Nanos start = 0;
    const sim::Nanos done = dev_->do_request(req, &start);
    for (std::size_t k = i; k < j; ++k) list[k]->done_at = done;
    // Transiently-failed bios get their bounded retries BEFORE the trace
    // completions, so each bio's C event carries its final outcome and
    // completion time (one C per Q, retries visible as R events).
    if (policy_.max_retries > 0) {
      for (std::size_t k = i; k < j; ++k) {
        if (list[k]->io_error && list[k]->retryable) {
          retry_bio(*list[k], last_done);
        }
      }
    }
    if (Tracer* tr = dev_->tracer_.get(); tr != nullptr) {
      const TraceOp op =
          req.front()->op == BioOp::Read ? TraceOp::Read : TraceOp::Write;
      TraceEvent e;
      e.dev = dev_->trace_dev_;
      e.op = op;
      // Bios folded into the lead one: an M each, at merge (dispatch) time.
      for (std::size_t k = i + 1; k < j; ++k) {
        e.t = sim::now();
        e.ev = TraceEv::Merge;
        e.id = list[k]->trace_id;
        e.block = list[k]->first_block();
        e.nblocks = static_cast<std::uint32_t>(list[k]->nblocks());
        tr->emit(e);
      }
      // One D for the merged request, stamped when it takes its channel.
      std::uint32_t total = 0;
      for (const Bio* b : req) total += static_cast<std::uint32_t>(b->nblocks());
      e.t = start;
      e.ev = TraceEv::Dispatch;
      e.id = req.front()->trace_id;
      e.block = req.front()->first_block();
      e.nblocks = total;
      tr->emit(e);
      // Every bio completes with the request (a retried bio at its own,
      // later, final completion).
      e.ev = TraceEv::Complete;
      for (const Bio* b : req) {
        e.t = b->done_at;
        e.id = b->trace_id;
        e.block = b->first_block();
        e.nblocks = static_cast<std::uint32_t>(b->nblocks());
        tr->emit(e);
      }
    }
    last_done = std::max(last_done, done);
    i = j;
  }
}

void RequestQueue::retry_bio(Bio& b, sim::Nanos& last_done) {
  const sim::Nanos deadline = policy_.deadline > 0 && b.queued_at >= 0
                                  ? b.queued_at + policy_.deadline
                                  : 0;
  while (b.io_error && b.retryable) {
    if (b.retries >= policy_.max_retries) break;  // exhausted: stays failed
    const sim::Nanos at = b.done_at + policy_.backoff;
    if (deadline != 0 && at > deadline) {
      stats_.deadline_expirations += 1;
      break;
    }
    b.retries += 1;
    stats_.retries += 1;
    if (Tracer* tr = dev_->tracer_.get(); tr != nullptr) {
      TraceEvent e;
      e.t = at;
      e.id = b.trace_id;
      e.block = b.first_block();
      e.nblocks = static_cast<std::uint32_t>(b.nblocks());
      e.dev = dev_->trace_dev_;
      e.ev = TraceEv::Requeue;
      e.op = b.op == BioOp::Read ? TraceOp::Read : TraceOp::Write;
      tr->emit(e);
    }
    b.io_error = false;
    b.retryable = false;
    Bio* const one = &b;
    b.done_at =
        dev_->do_request(std::span<Bio* const>(&one, 1), nullptr, at);
    if (!b.io_error) {
      stats_.retry_successes += 1;
      break;
    }
  }
  last_done = std::max(last_done, b.done_at);
}

sim::Nanos RequestQueue::start_batch(std::span<Bio* const> bios) {
  stats_.batches += 1;
  stats_.bios += bios.size();

  std::vector<Bio*> reads, writes;
  for (Bio* b : bios) {
    assert(!b->vecs.empty() && "submitting an empty bio");
    // Idempotent: bios that already queued upstream (plug accumulation,
    // volume routing) keep their original queue time and trace id.
    dev_->note_bio_queued(*b);
    (b->op == BioOp::Read ? reads : writes).push_back(b);
  }

  // Writes dispatch before reads so that media effects (and crash-model
  // write-command counting) happen in a deterministic order; the batch
  // barrier (or ticket redemption) makes the distinction invisible to
  // timing.
  sim::Nanos last_done = sim::now();
  if (!writes.empty()) dispatch(writes, last_done);
  if (!reads.empty()) dispatch(reads, last_done);
  return last_done;
}

sim::Nanos RequestQueue::submit(std::span<Bio> bios) {
  const std::vector<Bio*> ptrs = bio_ptrs(bios);
  return submit(std::span<Bio* const>(ptrs));
}

sim::Nanos RequestQueue::submit(std::span<Bio* const> bios) {
  if (bios.empty()) return sim::now();
  const sim::Nanos last_done = start_batch(bios);
  sim::current().wait_until(last_done);
  return last_done;
}

Ticket RequestQueue::submit_async(std::span<Bio> bios) {
  const std::vector<Bio*> ptrs = bio_ptrs(bios);
  return submit_async(std::span<Bio* const>(ptrs));
}

Ticket RequestQueue::submit_async(std::span<Bio* const> bios) {
  if (bios.empty()) return Ticket{};
  const sim::Nanos last_done = start_batch(bios);
  stats_.async_batches += 1;
  outstanding_.insert(next_ticket_);
  stats_.max_inflight = std::max<std::uint64_t>(stats_.max_inflight,
                                                outstanding_.size());
  Ticket t{last_done, next_ticket_++};
  for (const Bio* b : bios) t.failed |= b->io_error;
  return t;
}

sim::Nanos RequestQueue::wait(const Ticket& t) {
  if (!t.valid()) return sim::now();
  outstanding_.erase(t.id);  // redundant waits are harmless
  sim::current().wait_until(t.done);
  return t.done;
}

}  // namespace bsim::blk
