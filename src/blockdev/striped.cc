#include "blockdev/striped.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blockdev/opts.h"

namespace bsim::blk {

StripeParams merge_stripe_opts(std::string_view opts, StripeParams base) {
  for_each_opt_token(opts, [&](std::string_view tok) {
    std::uint64_t n = 0;
    if (opt_num_after(tok, "stripe=", n) && n >= 1) {
      base.ndevices = static_cast<std::size_t>(n);
    } else if (opt_num_after(tok, "chunk=", n) && n > 0) {
      base.chunk_blocks = n;
    } else if (tok == "linear") {
      base.mode = StripeMode::Linear;
    }
  });
  return base;
}

std::optional<StripeParams> stripe_params_from_opts(std::string_view opts) {
  StripeParams off;
  off.ndevices = 1;  // striping only on an explicit stripe=N>1 token
  const StripeParams merged = merge_stripe_opts(opts, off);
  if (merged.ndevices <= 1) return std::nullopt;
  return merged;
}

DeviceParams StripedDevice::volume_params(
    const StripeParams& sp, const std::vector<DeviceParams>& children) {
  assert(!children.empty());
  DeviceParams p = children.front();
  std::uint64_t usable = children.front().nblocks;
  if (sp.mode == StripeMode::Raid0) {
    usable -= usable % sp.chunk_blocks;
  }
  p.nblocks = usable * children.size();
  p.channels = 0;
  for (const DeviceParams& c : children) p.channels += c.channels;
  return p;
}

namespace {

std::vector<std::unique_ptr<BlockDevice>> make_plain_children(
    const std::vector<DeviceParams>& child_params) {
  std::vector<std::unique_ptr<BlockDevice>> out;
  out.reserve(child_params.size());
  for (const DeviceParams& p : child_params) {
    out.push_back(std::make_unique<BlockDevice>(p));
  }
  return out;
}

std::vector<DeviceParams> params_of(
    const std::vector<std::unique_ptr<BlockDevice>>& children) {
  std::vector<DeviceParams> out;
  out.reserve(children.size());
  for (const auto& c : children) out.push_back(c->params());
  return out;
}

}  // namespace

StripedDevice::StripedDevice(StripeParams sp, DeviceParams child_params)
    : StripedDevice(sp, std::vector<DeviceParams>(
                            std::max<std::size_t>(sp.ndevices, 1),
                            child_params)) {}

StripedDevice::StripedDevice(StripeParams sp,
                             std::vector<DeviceParams> child_params)
    : StripedDevice(sp, make_plain_children(child_params)) {}

StripedDevice::StripedDevice(StripeParams sp,
                             std::vector<std::unique_ptr<BlockDevice>> children)
    : AggregateDevice(volume_params(sp, params_of(children))), stripe_(sp) {
  assert(!children.empty());
  stripe_.ndevices = children.size();
  child_usable_ = children.front()->nblocks();
  if (stripe_.mode == StripeMode::Raid0) {
    assert(stripe_.chunk_blocks > 0);
    child_usable_ -= child_usable_ % stripe_.chunk_blocks;
  }
  if (child_usable_ == 0) {
    throw std::invalid_argument("striped member smaller than one chunk");
  }
  // Raid0 requires a uniform usable size; linear concat uses the same
  // rule so the logical->member mapping stays a pure function.
  for (const auto& c : children) {
    std::uint64_t usable = c->nblocks();
    if (stripe_.mode == StripeMode::Raid0) {
      usable -= usable % stripe_.chunk_blocks;
    }
    if (usable != child_usable_) {
      throw std::invalid_argument("striped members must be the same size");
    }
  }
  adopt_children(std::move(children));
}

StripedDevice::~StripedDevice() = default;

std::size_t StripedDevice::child_of(std::uint64_t blockno) const {
  if (stripe_.mode == StripeMode::Linear) {
    return static_cast<std::size_t>(blockno / child_usable_);
  }
  return static_cast<std::size_t>((blockno / stripe_.chunk_blocks) %
                                  children_.size());
}

std::uint64_t StripedDevice::child_block_of(std::uint64_t blockno) const {
  if (stripe_.mode == StripeMode::Linear) return blockno % child_usable_;
  const std::uint64_t chunk = blockno / stripe_.chunk_blocks;
  return (chunk / children_.size()) * stripe_.chunk_blocks +
         blockno % stripe_.chunk_blocks;
}

void StripedDevice::submit_fragments(const std::vector<Bio*>& parents,
                                     ChildTickets& tickets,
                                     sim::Nanos& last_done) {
  const std::size_t n = children_.size();
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);  // aligned with frags[c]

  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = true;  // AND-ed with every fragment below
    parent->io_error = false;  // OR-ed: any failed fragment fails the bio
    std::size_t nfrags = 0;
    std::size_t cur_child = n;  // sentinel: no open fragment
    for (const BioVec& v : parent->vecs) {
      const std::size_t c = child_of(v.blockno);
      const std::uint64_t cb = child_block_of(v.blockno);
      if (c != cur_child) {
        frags[c].emplace_back(parent->op);
        frags[c].back().parent_trace_id = parent->trace_id;
        owners[c].push_back(parent);
        cur_child = c;
        nfrags += 1;
      }
      Bio& frag = frags[c].back();
      if (parent->op == BioOp::Read) {
        frag.add_read(cb, v.data);
      } else {
        frag.add_write(cb, v.wdata);
      }
    }
    vstats_.fragments += nfrags;
    if (nfrags > 1) vstats_.boundary_splits += 1;
  }

  // Submit each member's share as ONE async batch, in member order: the
  // member queue elevator-sorts/merges independently, media effects land
  // now, and the caller ends up holding all members' tickets at once.
  for (std::size_t c = 0; c < n; ++c) {
    if (frags[c].empty()) continue;
    const Ticket t = children_[c]->submit_async(frags[c]);
    tickets.emplace_back(c, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[c].size(); ++i) {
      Bio* parent = owners[c][i];
      parent->done_at = std::max(parent->done_at, frags[c][i].done_at);
      if (!frags[c][i].applied) parent->applied = false;
      // A member (or, in RAID10, a whole mirror) that could not serve a
      // read fragment fails the logical bio — consumers (BufferCache)
      // check io_error, so the error must not vanish at the stripe layer.
      if (frags[c][i].io_error) parent->io_error = true;
    }
  }
}

void StripedDevice::route_policy(const std::vector<Bio*>& writes,
                                 const std::vector<Bio*>& killed, bool fire,
                                 const std::vector<Bio*>& reads,
                                 ChildTickets& tickets,
                                 sim::Nanos& last_done) {
  std::vector<Bio*> survivors = writes;
  survivors.insert(survivors.end(), reads.begin(), reads.end());
  submit_fragments(survivors, tickets, last_done);
  if (fire) {
    mark_volume_dead();
    submit_fragments(killed, tickets, last_done);
  }
}

void StripedDevice::read_untimed(std::uint64_t blockno,
                                 std::span<std::byte> out) {
  children_[child_of(blockno)]->read_untimed(child_block_of(blockno), out);
}

void StripedDevice::write_untimed(std::uint64_t blockno,
                                  std::span<const std::byte> in) {
  children_[child_of(blockno)]->write_untimed(child_block_of(blockno), in);
}

}  // namespace bsim::blk
