#include "blockdev/trace.h"

#include <algorithm>
#include <cstdio>

namespace bsim::blk {

const char* trace_ev_name(TraceEv ev) {
  switch (ev) {
    case TraceEv::Queue: return "Q";
    case TraceEv::Plug: return "P";
    case TraceEv::Unplug: return "U";
    case TraceEv::Merge: return "M";
    case TraceEv::Dispatch: return "D";
    case TraceEv::Complete: return "C";
    case TraceEv::FanChild: return "X";
    case TraceEv::Flush: return "F";
    case TraceEv::TxnOpen: return "TO";
    case TraceEv::TxnClose: return "TC";
    case TraceEv::JLogWrite: return "JW";
    case TraceEv::JCommitRecord: return "JR";
    case TraceEv::JCheckpoint: return "JK";
    case TraceEv::Requeue: return "R";
  }
  return "?";
}

const char* trace_op_name(TraceOp op) {
  switch (op) {
    case TraceOp::Read: return "R";
    case TraceOp::Write: return "W";
    case TraceOp::Flush: return "F";
    case TraceOp::Journal: return "J";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

std::uint16_t Tracer::register_device(std::string name) {
  names_.push_back(std::move(name));
  counts_.emplace_back();
  return static_cast<std::uint16_t>(names_.size() - 1);
}

void Tracer::emit(const TraceEvent& e) {
  emitted_ += 1;
  if (e.dev < counts_.size()) {
    counts_[e.dev][static_cast<std::size_t>(e.ev)] += 1;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  // Full: overwrite the oldest event (head_ is the logical start).
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::count(std::uint16_t dev, TraceEv ev) const {
  if (dev >= counts_.size()) return 0;
  return counts_[dev][static_cast<std::size_t>(ev)];
}

bool Tracer::dump_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"type\": \"header\", \"schema\": 1, \"capacity\": %zu, "
                  "\"devices\": [",
               capacity_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "", names_[i].c_str());
  }
  std::fprintf(f, "]}\n");
  for (const TraceEvent& e : events()) {
    std::fprintf(f, "{\"t\": %lld, \"ev\": \"%s\", \"dev\": %u, \"id\": %llu",
                 static_cast<long long>(e.t), trace_ev_name(e.ev),
                 static_cast<unsigned>(e.dev),
                 static_cast<unsigned long long>(e.id));
    if (e.parent != 0) {
      std::fprintf(f, ", \"parent\": %llu",
                   static_cast<unsigned long long>(e.parent));
    }
    std::fprintf(f, ", \"block\": %llu, \"n\": %u, \"op\": \"%s\"}\n",
                 static_cast<unsigned long long>(e.block), e.nblocks,
                 trace_op_name(e.op));
  }
  std::fprintf(f, "{\"type\": \"trailer\", \"emitted\": %llu, "
                  "\"dropped\": %llu, \"counts\": [",
               static_cast<unsigned long long>(emitted_),
               static_cast<unsigned long long>(dropped()));
  for (std::size_t d = 0; d < names_.size(); ++d) {
    std::fprintf(f, "%s{\"dev\": %zu, \"name\": \"%s\"", d > 0 ? ", " : "", d,
                 names_[d].c_str());
    for (int ev = 0; ev < kTraceEvCount; ++ev) {
      std::fprintf(f, ", \"%s\": %llu",
                   trace_ev_name(static_cast<TraceEv>(ev)),
                   static_cast<unsigned long long>(counts_[d][ev]));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

}  // namespace bsim::blk
