// Shared mount-option tokenizer for the volume layers (striped, mirrored).
// One place owns the token syntax: ","/" "-separated tokens, numeric
// values parsed whole ("chunk=16k" is malformed, not 16).
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>

namespace bsim::blk {

/// Invoke `fn(token)` for every non-empty token of a mount-option string.
template <class Fn>
void for_each_opt_token(std::string_view opts, Fn&& fn) {
  std::size_t i = 0;
  while (i < opts.size()) {
    while (i < opts.size() && (opts[i] == ',' || opts[i] == ' ')) ++i;
    std::size_t j = i;
    while (j < opts.size() && opts[j] != ',' && opts[j] != ' ') ++j;
    if (j > i) fn(opts.substr(i, j - i));
    i = j;
  }
}

/// If `tok` is "<prefix><digits>", parse the number into `out`. The whole
/// value must be digits; any trailing junk rejects the token.
inline bool opt_num_after(std::string_view tok, std::string_view prefix,
                          std::uint64_t& out) {
  if (!tok.starts_with(prefix)) return false;
  const std::string_view v = tok.substr(prefix.size());
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

}  // namespace bsim::blk
