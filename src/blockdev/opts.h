// Shared mount-option tokenizer for the volume layers (striped, mirrored).
// One place owns the token syntax: ","/" "-separated tokens, numeric
// values parsed whole ("chunk=16k" is malformed, not 16).
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bsim::blk {

/// Invoke `fn(token)` for every non-empty token of a mount-option string.
template <class Fn>
void for_each_opt_token(std::string_view opts, Fn&& fn) {
  std::size_t i = 0;
  while (i < opts.size()) {
    while (i < opts.size() && (opts[i] == ',' || opts[i] == ' ')) ++i;
    std::size_t j = i;
    while (j < opts.size() && opts[j] != ',' && opts[j] != ' ') ++j;
    if (j > i) fn(opts.substr(i, j - i));
    i = j;
  }
}

/// If `tok` is "<prefix><digits>", parse the number into `out`. The whole
/// value must be digits; any trailing junk rejects the token.
inline bool opt_num_after(std::string_view tok, std::string_view prefix,
                          std::uint64_t& out) {
  if (!tok.starts_with(prefix)) return false;
  const std::string_view v = tok.substr(prefix.size());
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

/// Whether `tok` is in the full vocabulary the volume layers and file
/// systems accept. Every consumer still parses only the tokens it cares
/// about; this is the union, maintained so strict mount validation can
/// reject typos ("mirrro=2", "chunk=16k") instead of silently mounting
/// with the option ignored.
inline bool known_opt_token(std::string_view tok) {
  static constexpr std::string_view kExact[] = {
      "rw",       "linear",  "nogroup", "nopipeline",
      "noplug",   "noflusher", "io_uring", "extfuse",
      "scrub",    "lax_opts", "policy=rr", "policy=sq",
      "errors=remount-ro", "errors=continue", "errors=panic"};
  static constexpr std::string_view kNumeric[] = {
      "stripe=", "chunk=", "mirror=", "parity=",
      "spare=",  "max_log_batch=", "log_blocks=", "trace=",
      "retries=", "retry_backoff_us=", "io_deadline_ms="};
  for (const std::string_view k : kExact) {
    if (tok == k) return true;
  }
  std::uint64_t n = 0;
  for (const std::string_view p : kNumeric) {
    if (opt_num_after(tok, p, n)) return true;
  }
  return false;
}

/// The unrecognized tokens of a mount-option string (empty: all known).
inline std::vector<std::string> unknown_opt_tokens(std::string_view opts) {
  std::vector<std::string> bad;
  for_each_opt_token(opts, [&](std::string_view tok) {
    if (!known_opt_token(tok)) bad.emplace_back(tok);
  });
  return bad;
}

/// The "lax_opts" escape hatch: this mount opts out of strict validation
/// (for experiments carrying options the vocabulary does not know yet).
inline bool opts_lax(std::string_view opts) {
  bool lax = false;
  for_each_opt_token(opts,
                     [&](std::string_view tok) { lax = lax || tok == "lax_opts"; });
  return lax;
}

}  // namespace bsim::blk
