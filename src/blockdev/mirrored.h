// Redundant volumes: RAID1 mirroring of N member BlockDevices behind the
// ordinary BlockDevice interface.
//
// The shared aggregate machinery — member ownership, async ticket
// fan-out/fan-in, the logical-write-bio crash model, member health,
// online rebuild, hot spares, scrub scaffolding, stats aggregation —
// lives in AggregateDevice (blockdev/aggregate.h); this class keeps only
// the mirroring policy. Writes are replicated to every serving member —
// each member owns its own RequestQueue (independent elevator/merge), the
// volume hands each member its copy of the batch through `submit_async`,
// so one caller transfers to all replicas concurrently in virtual time (a
// mirrored write costs what a single-device write costs, not N of them).
// Reads are balanced across the healthy members by a per-bio policy:
//   - round-robin (`policy=rr`, default): cycle through healthy members;
//   - shortest-queue (`policy=sq`): pick the member with the lowest
//     expected completion time — outstanding volume-submitted work PLUS
//     an EWMA of the member's observed per-bio completion latency
//     (Bio::done_at), with cumulative DeviceStats::busy as the
//     tie-break. The latency term makes an intrinsically slow replica
//     (degraded flash, a rebuilding member) repel reads even when queue
//     depths are momentarily equal.
// With all members healthy an N-way mirror therefore serves ~N× the
// random-read bandwidth of one device.
//
// Member-failure fault model — distinct from the power-loss crash model:
//   - fail_member(i): fail-stop. The member vanishes from now on (its
//     content freezes); no further reads or writes are routed to it. The
//     volume keeps serving from the survivors ("degraded mode"). With a
//     hot spare configured ("spare=N"), the spare takes over the slot and
//     rebuilds automatically.
//   - BlockDevice::inject_read_error(b) on a member: reads of that block
//     fail on that member only (Bio::io_error). The volume retries the
//     bio on another healthy member (read_error_failovers) and only
//     propagates io_error when every healthy member fails it.
//
// Online rebuild (machinery in AggregateDevice): the resync source is the
// healthy peer with the lowest observed completion-latency EWMA — the
// same signal the sq read policy uses — so a slow replica is not made
// slower by also feeding the resync. A scrub pass compares the replicas
// block-for-block and repairs divergent copies from the first healthy
// member.
//
// Stacking: RAID10 = StripedDevice constructed over MirroredDevice
// members (see StripedDevice's prebuilt-children constructor). The mirror
// reports fan_out() == 1 — it IS one logical device (one flusher, one
// buffer shard); per-stripe fan-out comes from the striping layer above.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "blockdev/aggregate.h"

namespace bsim::blk {

enum class MirrorReadPolicy : std::uint8_t { RoundRobin, ShortestQueue };

struct MirrorParams {
  std::size_t nmirrors = 2;
  MirrorReadPolicy policy = MirrorReadPolicy::RoundRobin;
  /// Hot spares kept on cold standby (deployed on fail_member).
  std::size_t nspares = 0;
  /// One replica-verification pass starts with the first submission.
  bool auto_scrub = false;
  /// Blocks copied per rebuild step (one read + one write submission).
  std::size_t rebuild_batch = 64;
  /// Backpressure: how far the rebuild clock may run ahead of the thread
  /// that poked it before the rebuild yields to foreground I/O.
  sim::Nanos rebuild_lead = 2 * sim::kMillisecond;
};

/// Apply any "mirror=N", "policy=rr|sq", "spare=N", "scrub" tokens in
/// `opts` onto `base` (same override-by-token contract as
/// merge_stripe_opts; "mirror=1" disables mirroring, unrelated tokens are
/// ignored).
MirrorParams merge_mirror_opts(std::string_view opts, MirrorParams base);

/// Parse a mirror selection out of a free-form mount-option string.
/// Returns nullopt when the string does not itself select mirroring.
std::optional<MirrorParams> mirror_params_from_opts(std::string_view opts);

struct MirrorVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t replicated_writes = 0;  // member write bios produced
  std::uint64_t balanced_reads = 0;     // read bios routed by policy
  std::uint64_t sequential_affinity_reads = 0;  // kept on the stream member
  std::uint64_t degraded_reads = 0;   // reads served while degraded
  std::uint64_t degraded_writes = 0;  // writes served while degraded
  std::uint64_t redirected_reads = 0;   // policy pick unavailable/failed
  std::uint64_t read_error_failovers = 0;  // io_error retried on a mirror
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;   // peak unredeemed volume tickets
  // ---- rebuild (maintained by AggregateDevice) ----
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuilds_aborted = 0;   // member failed mid-rebuild
  std::uint64_t rebuild_copied = 0;     // blocks copied by the resync
  std::uint64_t rebuild_write_intercepts = 0;  // writes ahead of cursor
  std::uint64_t rebuild_throttle_yields = 0;   // backpressure pauses
};

class MirroredDevice final : public AggregateDevice {
 public:
  /// Uniform members: every member stores the FULL logical image, so
  /// `member_params.nblocks` is both the member and the volume size.
  MirroredDevice(MirrorParams mp, DeviceParams member_params);
  /// Heterogeneous members (e.g. one slow replica in policy tests). All
  /// members must be the same size. Spares are shaped like the first.
  MirroredDevice(MirrorParams mp, std::vector<DeviceParams> member_params);
  ~MirroredDevice() override;

  [[nodiscard]] const MirrorParams& mirror() const { return mirror_; }
  [[nodiscard]] const MirrorVolumeStats& volume_stats() const {
    const AggregateVolumeStats& a = aggregate_stats();
    vstats_.batches = a.batches;
    vstats_.bios = a.bios;
    vstats_.async_batches = a.async_batches;
    vstats_.max_inflight = a.max_inflight;
    vstats_.rebuilds_started = a.rebuilds_started;
    vstats_.rebuilds_completed = a.rebuilds_completed;
    vstats_.rebuilds_aborted = a.rebuilds_aborted;
    vstats_.rebuild_copied = a.rebuild_copied;
    vstats_.rebuild_throttle_yields = a.rebuild_throttle_yields;
    return vstats_;
  }

  // Deliberately NOT the fan_out() protocol: a mirror is one logical
  // device to per-device subsystems (flusher sharding, buffer shards);
  // replicas are an internal redundancy detail.
  [[nodiscard]] std::size_t fan_out() const override { return 1; }
  [[nodiscard]] BlockDevice& fan_child(std::size_t i) override {
    (void)i;
    return *this;
  }

  /// Observed completion-latency EWMA for member `i` (shortest-queue
  /// policy input and resync-source selector; 0 until the member has
  /// served anything).
  [[nodiscard]] sim::Nanos member_latency_ewma(std::size_t i) const {
    return lat_ewma_[i];
  }

  void read_untimed(std::uint64_t blockno, std::span<std::byte> out) override;
  void write_untimed(std::uint64_t blockno,
                     std::span<const std::byte> in) override;

  /// Replicas die independently only through the whole-volume kill, so
  /// the volume is dead when every member is (a single dead member would
  /// be a fail_member'd one, which is degradation, not death).
  [[nodiscard]] bool dead() const override;
  void inject_read_error(std::uint64_t blockno) override;
  void inject_write_error(std::uint64_t blockno) override;
  void clear_write_error(std::uint64_t blockno) override;

 protected:
  void route_policy(const std::vector<Bio*>& writes,
                    const std::vector<Bio*>& killed, bool fire,
                    const std::vector<Bio*>& reads, ChildTickets& tickets,
                    sim::Nanos& last_done) override;

  // ---- redundancy hooks (AggregateDevice) ----
  /// Any healthy peer can regenerate a replica.
  [[nodiscard]] bool has_rebuild_source(std::size_t target) const override;
  /// Resync source: the healthy peer with the lowest latency EWMA (ties
  /// and never-observed members fall back to index order), with failover
  /// to the next candidate on a medium error.
  bool rebuild_source_read(std::uint64_t start, std::uint64_t n) override;
  /// Scrub: compare the replicas block-for-block; repair divergent copies
  /// from the first healthy member.
  [[nodiscard]] std::uint64_t scrub_extent() const override {
    return nblocks();
  }
  std::uint64_t scrub_step(std::uint64_t cursor) override;

 private:
  /// Pick the member to serve a read bio: sequential affinity first (a
  /// read continuing a stream stays on the member whose "head" is already
  /// there, like md's read_balance, so mirrored sequential streams keep
  /// the device's sequential pricing), then the configured policy.
  [[nodiscard]] std::size_t pick_read_member(std::uint64_t first_block);
  [[nodiscard]] std::size_t first_healthy() const;

  void submit_writes(const std::vector<Bio*>& parents, ChildTickets& tickets,
                     sim::Nanos& last_done);
  void submit_reads(const std::vector<Bio*>& parents, ChildTickets& tickets,
                    sim::Nanos& last_done);
  void note_submission(std::size_t member, const Ticket& t);
  /// Fold one observed bio completion (done_at - submission time) into the
  /// member's latency EWMA (alpha = 1/8, like md's io-latency averaging).
  void note_latency(std::size_t member, sim::Nanos sample);

  static DeviceParams volume_params(const std::vector<DeviceParams>& members);

  MirrorParams mirror_;
  /// Estimated absolute time each member's queue drains what WE submitted
  /// (shortest-queue policy input; per-member DeviceStats break ties).
  std::vector<sim::Nanos> busy_until_;
  /// EWMA of observed per-member completion latency (Bio::done_at minus
  /// submission time). The sq policy adds this to the outstanding-work
  /// estimate, so a member that is intrinsically slow (not merely busy)
  /// repels reads even at equal queue depth (ROADMAP follow-up).
  std::vector<sim::Nanos> lat_ewma_;
  /// One past the last block of the latest read routed to each member
  /// (the sequential-affinity "head position").
  std::vector<std::uint64_t> last_read_end_;
  std::size_t rr_next_ = 0;

  mutable MirrorVolumeStats vstats_;
};

}  // namespace bsim::blk
