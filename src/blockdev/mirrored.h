// Redundant volumes: RAID1 mirroring of N member BlockDevices behind the
// ordinary BlockDevice interface.
//
// Writes are replicated to every serving member — each member owns its own
// RequestQueue (independent elevator/merge), the volume hands each member
// its copy of the batch through `submit_async`, and the member tickets fan
// out/in exactly like StripedDevice's, so one caller transfers to all
// replicas concurrently in virtual time (a mirrored write costs what a
// single-device write costs, not N of them). Reads are balanced across the
// healthy members by a per-bio policy:
//   - round-robin (`policy=rr`, default): cycle through healthy members;
//   - shortest-queue (`policy=sq`): pick the member with the lowest
//     expected completion time — outstanding volume-submitted work PLUS
//     an EWMA of the member's observed per-bio completion latency
//     (Bio::done_at), with cumulative DeviceStats::busy as the
//     tie-break. The latency term makes an intrinsically slow replica
//     (degraded flash, a rebuilding member) repel reads even when queue
//     depths are momentarily equal.
// With all members healthy an N-way mirror therefore serves ~N× the
// random-read bandwidth of one device.
//
// Member-failure fault model — distinct from the power-loss crash model:
//   - fail_member(i): fail-stop. The member vanishes from now on (its
//     content freezes); no further reads or writes are routed to it. The
//     volume keeps serving from the survivors ("degraded mode": stats
//     expose degraded_reads/degraded_writes and redirected_reads).
//   - BlockDevice::inject_read_error(b) on a member: reads of that block
//     fail on that member only (Bio::io_error). The volume retries the
//     bio on another healthy member (read_error_failovers) and only
//     propagates io_error when every healthy member fails it.
//   - The volume-level crash model matches StripedDevice: kill_after(n)
//     counts LOGICAL write bios in single-device sort order and
//     power_off()s every member at the expiry instant, so a mirrored
//     crash sweep stays comparable bio-for-bio with one device.
//
// Online rebuild: start_rebuild(i) resyncs a previously failed member from
// a healthy peer on a dedicated simulated thread (flusher-style): a resync
// cursor sweeps the device in `rebuild_batch`-block copies, each copy
// timed on the rebuild thread's clock through the member queues (so
// rebuild I/O competes with foreground I/O for member channels).
// Foreground submissions poke the rebuild forward but backpressure bounds
// it: the rebuild clock may run at most `rebuild_lead` ahead of the
// poking thread, so rebuild never starves foreground I/O of the device.
// While rebuilding, the target receives every foreground write (writes
// ahead of the cursor are counted as rebuild_write_intercepts) but serves
// no reads; on completion the target is flushed, marked healthy, and must
// be bit-identical to its peers.
//
// Stacking: RAID10 = StripedDevice constructed over MirroredDevice
// members (see StripedDevice's prebuilt-children constructor). The mirror
// reports fan_out() == 1 — it IS one logical device (one flusher, one
// buffer shard); per-stripe fan-out comes from the striping layer above.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/device.h"
#include "sim/thread.h"

namespace bsim::blk {

enum class MirrorReadPolicy : std::uint8_t { RoundRobin, ShortestQueue };

struct MirrorParams {
  std::size_t nmirrors = 2;
  MirrorReadPolicy policy = MirrorReadPolicy::RoundRobin;
  /// Blocks copied per rebuild step (one read + one write submission).
  std::size_t rebuild_batch = 64;
  /// Backpressure: how far the rebuild clock may run ahead of the thread
  /// that poked it before the rebuild yields to foreground I/O.
  sim::Nanos rebuild_lead = 2 * sim::kMillisecond;
};

/// Apply any "mirror=N", "policy=rr|sq" tokens in `opts` onto `base`
/// (same override-by-token contract as merge_stripe_opts; "mirror=1"
/// disables mirroring, unrelated tokens are ignored).
MirrorParams merge_mirror_opts(std::string_view opts, MirrorParams base);

/// Parse a mirror selection out of a free-form mount-option string.
/// Returns nullopt when the string does not itself select mirroring.
std::optional<MirrorParams> mirror_params_from_opts(std::string_view opts);

struct MirrorVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t replicated_writes = 0;  // member write bios produced
  std::uint64_t balanced_reads = 0;     // read bios routed by policy
  std::uint64_t sequential_affinity_reads = 0;  // kept on the stream member
  std::uint64_t degraded_reads = 0;   // reads served while degraded
  std::uint64_t degraded_writes = 0;  // writes served while degraded
  std::uint64_t redirected_reads = 0;   // policy pick unavailable/failed
  std::uint64_t read_error_failovers = 0;  // io_error retried on a mirror
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;   // peak unredeemed volume tickets
  // ---- rebuild ----
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuilds_aborted = 0;   // member failed mid-rebuild
  std::uint64_t rebuild_copied = 0;     // blocks copied by the resync
  std::uint64_t rebuild_write_intercepts = 0;  // writes ahead of cursor
  std::uint64_t rebuild_throttle_yields = 0;   // backpressure pauses
};

class MirroredDevice final : public BlockDevice {
 public:
  /// Uniform members: every member stores the FULL logical image, so
  /// `member_params.nblocks` is both the member and the volume size.
  MirroredDevice(MirrorParams mp, DeviceParams member_params);
  /// Heterogeneous members (e.g. one slow replica in policy tests). All
  /// members must be the same size.
  MirroredDevice(MirrorParams mp, std::vector<DeviceParams> member_params);
  ~MirroredDevice() override;

  [[nodiscard]] const MirrorParams& mirror() const { return mirror_; }
  [[nodiscard]] const MirrorVolumeStats& volume_stats() const {
    return vstats_;
  }
  [[nodiscard]] std::uint64_t inflight() const { return outstanding_.size(); }

  // ---- member introspection ----
  // Deliberately NOT the fan_out() protocol: a mirror is one logical
  // device to per-device subsystems (flusher sharding, buffer shards);
  // replicas are an internal redundancy detail.
  [[nodiscard]] std::size_t members() const { return members_.size(); }
  [[nodiscard]] BlockDevice& member(std::size_t i) { return *members_[i]; }
  [[nodiscard]] bool healthy(std::size_t i) const { return healthy_[i]; }
  [[nodiscard]] std::size_t healthy_members() const;
  /// Degraded: at least one member is failed or still rebuilding.
  [[nodiscard]] bool degraded() const {
    return healthy_members() < members_.size();
  }

  /// Observed completion-latency EWMA for member `i` (shortest-queue
  /// policy input; 0 until the member has served anything).
  [[nodiscard]] sim::Nanos member_latency_ewma(std::size_t i) const {
    return lat_ewma_[i];
  }

  void read_untimed(std::uint64_t blockno, std::span<std::byte> out) override;
  void write_untimed(std::uint64_t blockno,
                     std::span<const std::byte> in) override;

  // ---- member failure + online rebuild ----
  /// Fail-stop member `i`: from now on it serves no I/O and receives no
  /// replication; the volume runs degraded on the survivors. Aborts an
  /// in-flight rebuild that was using `i` as target or source.
  void fail_member(std::size_t i);
  /// Begin resyncing failed member `i` from a healthy peer. The copy runs
  /// on the rebuild thread's clock, poked forward by foreground
  /// submissions; drive it to completion with finish_rebuild().
  void start_rebuild(std::size_t i);
  [[nodiscard]] bool rebuild_active() const { return rebuild_target_.has_value(); }
  /// Next block the resync will copy (== nblocks() when done/inactive).
  [[nodiscard]] std::uint64_t rebuild_cursor() const { return rebuild_cursor_; }
  /// Run the resync to completion and advance the calling thread past it
  /// (the "wait for md to finish" barrier). No-op when no rebuild is on.
  void finish_rebuild();

  // ---- crash model (volume-level, same contract as StripedDevice) ----
  void enable_crash_tracking() override;
  void kill_after(std::uint64_t n) override;
  void power_off() override;
  [[nodiscard]] bool dead() const override;
  void crash(double survive_p, sim::Rng& rng) override;
  void inject_read_error(std::uint64_t blockno) override;

  [[nodiscard]] std::uint64_t dirty_blocks() const override;
  [[nodiscard]] const DeviceStats& stats() const override;

 protected:
  // ---- submission (BlockDevice impl hooks; the public entry points add
  // the plug layer) ----
  sim::Nanos submit_impl(std::span<Bio* const> bios) override;
  Ticket submit_async_impl(std::span<Bio* const> bios) override;
  sim::Nanos wait_impl(const Ticket& t) override;
  sim::Nanos flush_nowait_impl() override;

 private:
  using MemberTickets = std::vector<std::pair<std::size_t, Ticket>>;

  /// Serving members receive writes: healthy ones plus a rebuild target.
  [[nodiscard]] bool serves_writes(std::size_t i) const {
    return healthy_[i] || rebuild_target_ == i;
  }
  /// Pick the member to serve a read bio: sequential affinity first (a
  /// read continuing a stream stays on the member whose "head" is already
  /// there, like md's read_balance, so mirrored sequential streams keep
  /// the device's sequential pricing), then the configured policy.
  [[nodiscard]] std::size_t pick_read_member(std::uint64_t first_block);
  [[nodiscard]] std::size_t first_healthy() const;

  /// Replicate/balance one batch; returns member tickets and the batch's
  /// last completion time. Applies the logical-bio kill model and the
  /// read-error failover.
  MemberTickets route_batch(std::span<Bio* const> bios,
                            sim::Nanos& last_done);
  void submit_writes(const std::vector<Bio*>& parents, MemberTickets& tickets,
                     sim::Nanos& last_done);
  void submit_reads(const std::vector<Bio*>& parents, MemberTickets& tickets,
                    sim::Nanos& last_done);
  void note_submission(std::size_t member, const Ticket& t);
  /// Fold one observed bio completion (done_at - submission time) into the
  /// member's latency EWMA (alpha = 1/8, like md's io-latency averaging).
  void note_latency(std::size_t member, sim::Nanos sample);

  /// Advance the resync while its clock stays within rebuild_lead of
  /// `horizon`; completes the rebuild when the cursor reaches the end.
  void rebuild_poke(sim::Nanos horizon);
  /// Copy one rebuild_batch starting at the cursor (rebuild clock).
  void rebuild_copy_step();
  void complete_rebuild();
  void abort_rebuild();

  static DeviceParams volume_params(const std::vector<DeviceParams>& members);

  MirrorParams mirror_;
  std::vector<std::unique_ptr<BlockDevice>> members_;
  std::vector<bool> healthy_;
  /// Estimated absolute time each member's queue drains what WE submitted
  /// (shortest-queue policy input; per-member DeviceStats break ties).
  std::vector<sim::Nanos> busy_until_;
  /// EWMA of observed per-member completion latency (Bio::done_at minus
  /// submission time). The sq policy adds this to the outstanding-work
  /// estimate, so a member that is intrinsically slow (not merely busy)
  /// repels reads even at equal queue depth (ROADMAP follow-up).
  std::vector<sim::Nanos> lat_ewma_;
  /// One past the last block of the latest read routed to each member
  /// (the sequential-affinity "head position").
  std::vector<std::uint64_t> last_read_end_;
  std::size_t rr_next_ = 0;

  // Logical-bio kill model (see StripedDevice header comment).
  bool kill_armed_ = false;
  std::uint64_t kill_countdown_ = 0;
  bool volume_dead_ = false;

  // Online rebuild.
  std::optional<std::size_t> rebuild_target_;
  std::uint64_t rebuild_cursor_ = 0;
  sim::SimThread rebuild_thread_{-16};
  std::vector<BlockData> rebuild_buf_;

  std::uint64_t next_ticket_ = 1;
  std::unordered_map<std::uint64_t, MemberTickets> outstanding_;
  MirrorVolumeStats vstats_;
  mutable DeviceStats agg_;  // stats() aggregation scratch
};

}  // namespace bsim::blk
