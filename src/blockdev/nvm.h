// Byte-addressable non-volatile memory (paper §3): the substrate for the
// Strata-style operation log. "Systems such as Strata [17] have shown
// that prepending an operation log stored in NVM can dramatically improve
// write performance" — this models the NVM those systems assume
// (Optane-DC-class): cacheline-granular persistent stores buffered in the
// write-pending queue, made durable by an explicit persist barrier
// (CLWB + SFENCE), with no block abstraction and no FLUSH command.
//
// Crash model: stores issued since the last persist_barrier() may be lost
// on power failure; barriered stores are durable. crash() reverts to the
// last barriered image, which is how the op-log recovery tests simulate
// power loss.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.h"

namespace bsim::blk {

struct NvmParams {
  std::size_t bytes = 64ull << 20;           // region size (64 MiB)
  sim::Nanos write_per_line = 60;            // store + WPQ, per 64 B line
  sim::Nanos read_per_line = 100;            // media read, per 64 B line
  sim::Nanos barrier = 500;                  // CLWB + SFENCE drain
};

class NvmRegion {
 public:
  explicit NvmRegion(NvmParams params);

  [[nodiscard]] std::size_t size() const { return working_.size(); }

  /// Timed store into the region (working image).
  void write(std::size_t off, std::span<const std::byte> data);
  /// Timed load. Normal op-log operation reads its own DRAM copies; this
  /// is the recovery/replay path.
  void read(std::size_t off, std::span<std::byte> out) const;
  /// Make every prior store durable.
  void persist_barrier();

  /// Power failure: unbarriered stores are lost.
  void crash();

  struct Stats {
    std::uint64_t bytes_written = 0;
    std::uint64_t barriers = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  NvmParams params_;
  std::vector<std::byte> working_;  // what stores see
  std::vector<std::byte> stable_;   // what survives a crash
  /// Byte ranges stored since the last barrier; a barrier commits (and a
  /// crash reverts) only these, keeping both O(dirty), not O(region).
  std::vector<std::pair<std::size_t, std::size_t>> dirty_;
  Stats stats_;
};

}  // namespace bsim::blk
