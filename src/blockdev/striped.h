// Multi-device striped volumes: a RAID0-style (or linear-concat) aggregate
// of N BlockDevices behind the ordinary BlockDevice interface.
//
// The shared aggregate machinery — per-member RequestQueues, async ticket
// fan-out/fan-in, the logical-write-bio crash model, per-member stats
// aggregation — lives in AggregateDevice (blockdev/aggregate.h); this
// class keeps only the striping policy: the chunk math and the splitting
// of logical bios into per-member fragments. A caller's single
// submit()/submit_async() holds QD>1 *across devices*: all members
// transfer concurrently in virtual time, while each member's media effects
// still land at submission, in deterministic program order (child 0 first,
// then child 1, …; within a child, the child queue's documented
// write-sorted order).
//
// Geometry (Raid0): logical blocks are grouped into chunks of
// `chunk_blocks`; chunk c lives on child c % N at child-chunk c / N.
// A logical run that crosses a chunk boundary is split there; within a
// chunk the child blocks stay consecutive, so a long sequential logical
// run becomes N long sequential child runs that merge per child.
// Linear mode concatenates the children instead (child = block / size).
//
// Crash model (see AggregateDevice):
//   - kill_after(n) counts *logical* write bios, in the same write-sorted
//     order the single-device queue counts them, so a striped crash sweep
//     stays comparable bio-for-bio with the same op trace on one device;
//   - kill_after_child(i, n) arms the per-member kill instead: member i
//     stops persisting after n more *fragment* write commands while the
//     other members keep going — power loss of one shard mid-batch, the
//     failure mode only multi-device volumes have.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "blockdev/aggregate.h"

namespace bsim::blk {

enum class StripeMode : std::uint8_t { Raid0, Linear };

struct StripeParams {
  std::size_t ndevices = 2;
  std::uint64_t chunk_blocks = 16;  // 64 KiB chunks
  StripeMode mode = StripeMode::Raid0;
};

/// Apply any "stripe=N", "chunk=M", "linear" tokens in `opts` onto
/// `base`: a token that is present overrides that field, absent tokens
/// leave the caller's configuration untouched ("stripe=1" disables
/// striping). Unrelated tokens are ignored, so the same string can be
/// passed on to the file system unchanged.
StripeParams merge_stripe_opts(std::string_view opts, StripeParams base);

/// Parse a stripe selection out of a free-form mount-option string.
/// Returns nullopt when the string does not itself select striping
/// (no "stripe=" token, or "stripe=1").
std::optional<StripeParams> stripe_params_from_opts(std::string_view opts);

/// Volume-level submission accounting (the member queues keep their own
/// RequestQueueStats underneath).
struct StripeVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t fragments = 0;      // child bios produced by splitting
  std::uint64_t boundary_splits = 0;  // bios that crossed a stripe boundary
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;   // peak unredeemed volume tickets
};

class StripedDevice final : public AggregateDevice {
 public:
  /// Uniform members: `child_params.nblocks` is the PER-CHILD size
  /// (rounded down to a whole number of chunks in Raid0 mode).
  StripedDevice(StripeParams sp, DeviceParams child_params);
  /// Heterogeneous members (e.g. one slow shard in fault tests). All
  /// children must have the same usable size; Raid0 requires it.
  StripedDevice(StripeParams sp, std::vector<DeviceParams> child_params);
  /// Prebuilt members: stacking volumes, e.g. RAID10 = a stripe whose
  /// members are MirroredDevices, RAID50 = a stripe of ParityDevices.
  /// Each child is addressed purely through the BlockDevice interface
  /// (its own submit_async fans further down).
  StripedDevice(StripeParams sp,
                std::vector<std::unique_ptr<BlockDevice>> children);
  ~StripedDevice() override;

  [[nodiscard]] const StripeParams& stripe() const { return stripe_; }
  [[nodiscard]] const StripeVolumeStats& volume_stats() const {
    const AggregateVolumeStats& a = aggregate_stats();
    vstats_.batches = a.batches;
    vstats_.bios = a.bios;
    vstats_.async_batches = a.async_batches;
    vstats_.max_inflight = a.max_inflight;
    return vstats_;
  }

  // ---- geometry ----
  [[nodiscard]] std::size_t child_of(std::uint64_t blockno) const override;
  /// The member-local block number logical `blockno` maps to.
  [[nodiscard]] std::uint64_t child_block_of(std::uint64_t blockno) const;
  /// One full stripe row in logical blocks (the writeback-clustering
  /// geometry hint). Linear concat has no row geometry.
  [[nodiscard]] std::uint64_t stripe_width_blocks() const override {
    return stripe_.mode == StripeMode::Raid0
               ? stripe_.chunk_blocks * children_.size()
               : 0;
  }

  void read_untimed(std::uint64_t blockno, std::span<std::byte> out) override;
  void write_untimed(std::uint64_t blockno,
                     std::span<const std::byte> in) override;

  /// Route the injected medium error to the member that owns the block
  /// (the base-class default would mark it in the aggregate's own unused
  /// backing state and never fire).
  void inject_read_error(std::uint64_t blockno) override {
    children_[child_of(blockno)]->inject_read_error(child_block_of(blockno));
  }
  void inject_write_error(std::uint64_t blockno) override {
    children_[child_of(blockno)]->inject_write_error(child_block_of(blockno));
  }
  void clear_write_error(std::uint64_t blockno) override {
    children_[child_of(blockno)]->clear_write_error(child_block_of(blockno));
  }

 protected:
  /// Striping submits the surviving writes and the reads together: each
  /// member receives its fragments of the whole batch as ONE async
  /// submission (one elevator pass per member).
  void route_policy(const std::vector<Bio*>& writes,
                    const std::vector<Bio*>& killed, bool fire,
                    const std::vector<Bio*>& reads, ChildTickets& tickets,
                    sim::Nanos& last_done) override;

 private:
  /// Split `parents` into per-child fragment batches and submit each
  /// child's batch async (child index order). Appends tickets.
  void submit_fragments(const std::vector<Bio*>& parents,
                        ChildTickets& tickets, sim::Nanos& last_done);
  static DeviceParams volume_params(const StripeParams& sp,
                                    const std::vector<DeviceParams>& children);

  StripeParams stripe_;
  std::uint64_t child_usable_ = 0;  // usable blocks per member (uniform)
  mutable StripeVolumeStats vstats_;
};

}  // namespace bsim::blk
