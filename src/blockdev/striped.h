// Multi-device striped volumes: a RAID0-style (or linear-concat) aggregate
// of N BlockDevices behind the ordinary BlockDevice interface.
//
// The volume owns one RequestQueue *per member device* (each child's own
// queue). An incoming Bio batch is split at stripe boundaries into
// per-child fragment bios, each child's fragments are handed to that
// child's queue as ONE batch (so every member elevator-sorts and merges
// its share independently), and the child submissions go out through
// `submit_async` — the caller's single submit()/submit_async() therefore
// holds QD>1 *across devices*: all members transfer concurrently in
// virtual time, while each member's media effects still land at
// submission, in deterministic program order (child 0 first, then child 1,
// …; within a child, the child queue's documented write-sorted order).
//
// Geometry (Raid0): logical blocks are grouped into chunks of
// `chunk_blocks`; chunk c lives on child c % N at child-chunk c / N.
// A logical run that crosses a chunk boundary is split there; within a
// chunk the child blocks stay consecutive, so a long sequential logical
// run becomes N long sequential child runs that merge per child.
// Linear mode concatenates the children instead (child = block / size).
//
// Crash model:
//   - kill_after(n) counts *logical* write bios, in the same
//     write-sorted order the single-device queue counts them. The first n
//     logical bios apply on their members in full; everything after dies
//     on every member. Counting logical bios (not per-child fragments)
//     keeps a striped crash sweep comparable bio-for-bio with the same op
//     trace on one device — the recovered logical image is bit-identical.
//   - kill_after_child(i, n) arms the per-member kill instead: member i
//     stops persisting after n more *fragment* write commands while the
//     other members keep going — power loss of one shard mid-batch, the
//     failure mode only multi-device volumes have.
//   - crash(p, rng) / enable_crash_tracking() fan out to every member in
//     index order (deterministic rng consumption).
//
// DeviceStats aggregate across members on read (stats()); per-member
// counters stay available through fan_child(i).stats().
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/device.h"

namespace bsim::blk {

enum class StripeMode : std::uint8_t { Raid0, Linear };

struct StripeParams {
  std::size_t ndevices = 2;
  std::uint64_t chunk_blocks = 16;  // 64 KiB chunks
  StripeMode mode = StripeMode::Raid0;
};

/// Apply any "stripe=N", "chunk=M", "linear" tokens in `opts` onto
/// `base`: a token that is present overrides that field, absent tokens
/// leave the caller's configuration untouched ("stripe=1" disables
/// striping). Unrelated tokens are ignored, so the same string can be
/// passed on to the file system unchanged.
StripeParams merge_stripe_opts(std::string_view opts, StripeParams base);

/// Parse a stripe selection out of a free-form mount-option string.
/// Returns nullopt when the string does not itself select striping
/// (no "stripe=" token, or "stripe=1").
std::optional<StripeParams> stripe_params_from_opts(std::string_view opts);

/// Volume-level submission accounting (the member queues keep their own
/// RequestQueueStats underneath).
struct StripeVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t fragments = 0;      // child bios produced by splitting
  std::uint64_t boundary_splits = 0;  // bios that crossed a stripe boundary
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;   // peak unredeemed volume tickets
};

class StripedDevice final : public BlockDevice {
 public:
  /// Uniform members: `child_params.nblocks` is the PER-CHILD size
  /// (rounded down to a whole number of chunks in Raid0 mode).
  StripedDevice(StripeParams sp, DeviceParams child_params);
  /// Heterogeneous members (e.g. one slow shard in fault tests). All
  /// children must have the same usable size; Raid0 requires it.
  StripedDevice(StripeParams sp, std::vector<DeviceParams> child_params);
  /// Prebuilt members: stacking volumes, e.g. RAID10 = a stripe whose
  /// members are MirroredDevices. Each child is addressed purely through
  /// the BlockDevice interface (its own submit_async fans further down).
  StripedDevice(StripeParams sp,
                std::vector<std::unique_ptr<BlockDevice>> children);
  ~StripedDevice() override;

  [[nodiscard]] const StripeParams& stripe() const { return stripe_; }
  [[nodiscard]] const StripeVolumeStats& volume_stats() const {
    return vstats_;
  }
  [[nodiscard]] std::uint64_t inflight() const { return outstanding_.size(); }

  // ---- fan-out introspection ----
  [[nodiscard]] std::size_t fan_out() const override {
    return children_.size();
  }
  [[nodiscard]] BlockDevice& fan_child(std::size_t i) override {
    return *children_[i];
  }
  [[nodiscard]] std::size_t child_of(std::uint64_t blockno) const override;
  /// The member-local block number logical `blockno` maps to.
  [[nodiscard]] std::uint64_t child_block_of(std::uint64_t blockno) const;
  /// One full stripe row in logical blocks (the writeback-clustering
  /// geometry hint). Linear concat has no row geometry.
  [[nodiscard]] std::uint64_t stripe_width_blocks() const override {
    return stripe_.mode == StripeMode::Raid0
               ? stripe_.chunk_blocks * children_.size()
               : 0;
  }

  void read_untimed(std::uint64_t blockno, std::span<std::byte> out) override;
  void write_untimed(std::uint64_t blockno,
                     std::span<const std::byte> in) override;

  /// Route the injected medium error to the member that owns the block
  /// (the base-class default would mark it in the aggregate's own unused
  /// backing state and never fire).
  void inject_read_error(std::uint64_t blockno) override {
    children_[child_of(blockno)]->inject_read_error(child_block_of(blockno));
  }

  // ---- crash model ----
  void enable_crash_tracking() override;
  void kill_after(std::uint64_t n) override;
  /// Cut power to ONE member after `n` more of ITS write commands
  /// (fragment bios, counted in that member queue's dispatch order).
  void kill_after_child(std::size_t child, std::uint64_t n);
  void power_off() override;
  [[nodiscard]] bool dead() const override;
  void crash(double survive_p, sim::Rng& rng) override;

  [[nodiscard]] std::uint64_t dirty_blocks() const override;
  [[nodiscard]] const DeviceStats& stats() const override;

 protected:
  // ---- submission (BlockDevice impl hooks; the public entry points add
  // the plug layer, whose deferred batches route here at unplug) ----
  sim::Nanos submit_impl(std::span<Bio* const> bios) override;
  Ticket submit_async_impl(std::span<Bio* const> bios) override;
  sim::Nanos wait_impl(const Ticket& t) override;
  sim::Nanos flush_nowait_impl() override;

 private:
  using ChildTickets = std::vector<std::pair<std::size_t, Ticket>>;

  /// Split + route one batch; returns the child tickets and the batch's
  /// last completion time. Applies the logical-bio kill model.
  ChildTickets route_batch(std::span<Bio* const> bios, sim::Nanos& last_done);
  /// Split `parents` into per-child fragment batches and submit each
  /// child's batch async (child index order). Appends tickets.
  void submit_fragments(const std::vector<Bio*>& parents,
                        ChildTickets& tickets, sim::Nanos& last_done);
  static DeviceParams volume_params(const StripeParams& sp,
                                    const std::vector<DeviceParams>& children);

  StripeParams stripe_;
  std::vector<std::unique_ptr<BlockDevice>> children_;
  std::uint64_t child_usable_ = 0;  // usable blocks per member (uniform)

  // Logical-bio kill model (see header comment).
  bool kill_armed_ = false;
  std::uint64_t kill_countdown_ = 0;
  bool volume_dead_ = false;

  std::uint64_t next_ticket_ = 1;
  std::unordered_map<std::uint64_t, ChildTickets> outstanding_;
  StripeVolumeStats vstats_;
  mutable DeviceStats agg_;  // stats() aggregation scratch
};

}  // namespace bsim::blk
