// Parity redundancy: RAID5 volumes (left-symmetric rotating parity) as
// the third AggregateDevice subclass.
//
// Geometry. `ndata` data columns plus one parity column live on
// ndata + 1 members; parity rotates left-symmetrically like md's default
// raid5 layout: in stripe row r the parity chunk sits on member
// p = (n-1) - (r % n), and data column d sits on member (p + 1 + d) % n.
// Every member block mb therefore belongs to one "parity line" — the
// ndata data blocks plus the parity block stored at the same mb on the
// other members — and the XOR over a line is zero when consistent, which
// is also the reconstruction rule: any one member's block equals the XOR
// of the other members' blocks at the same mb.
//
// Write paths.
//   - Full-stripe reconstruct-write: a batch that covers every data
//     column of a line (stripe-row-aligned runs, which the journal's
//     stripe-aware group commit and the flusher's clustering produce)
//     computes parity from the new data alone — no reads, ~ndata× one
//     device's sequential write bandwidth.
//   - Read-modify-write: a partial line reads the old data of the
//     written columns plus the old parity (timed, charged to the
//     submitting thread — the RMW penalty), then XORs the delta in.
//   - Degraded: a line whose RMW sources are unreadable falls back to
//     reconstruct-write from the surviving columns; with the parity
//     member gone, data writes proceed unprotected (the region stays
//     marked in the intent bitmap).
//
// Write hole. A parity update is two writes (data + parity) that cannot
// be atomic across members: power loss between them leaves the line's
// XOR broken, and a LATER member failure would then reconstruct garbage
// — the classic RAID5 write hole. It is closed md-style with a
// write-intent bitmap: member-local region bits, replicated on every
// member and written with FUA (BlockDevice::write_fua) BEFORE the first
// data write into a region; bits stay set ("sticky") until a scrub or
// resync() verifies the region. After a crash, resync() recomputes
// parity for every marked region from the surviving data, so degraded
// reads are trustworthy again.
//
// Reads route straight to the owning data member (striped-style
// fragments); a failed or unreadable column is reconstructed by XOR of
// the other members, and a medium error additionally rewrites the
// reconstructed block in place (self-healing, like md's read-error
// rewrite). A background scrub pass (AggregateDevice scaffolding)
// XOR-checks whole lines and repairs stale parity.
//
// Rebuild/self-healing: fail_member + start_rebuild resync a replaced
// member by XOR-reconstructing its blocks from the survivors; hot spares
// ("spare=N") deploy and rebuild automatically on fail_member.
//
// Stacking: RAID50 = StripedDevice over ParityDevice members. The
// parity volume reports fan_out() == 1 — like a mirror it IS one
// logical device; stripe_width_blocks() exposes the data row so
// writeback clustering aligns to full stripes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "blockdev/aggregate.h"

namespace bsim::blk {

struct ParityParams {
  /// Data columns; the volume has ndata + 1 members (4 -> "4+1").
  std::size_t ndata = 4;
  std::uint64_t chunk_blocks = 16;  // 64 KiB chunks
  /// Hot spares kept on cold standby (deployed on fail_member).
  std::size_t nspares = 0;
  /// One parity-verification pass starts with the first submission.
  bool auto_scrub = false;
  /// Blocks regenerated per rebuild step.
  std::size_t rebuild_batch = 64;
  sim::Nanos rebuild_lead = 2 * sim::kMillisecond;
};

/// Apply any "parity=N", "chunk=M", "spare=N", "scrub" tokens in `opts`
/// onto `base` (same override-by-token contract as merge_stripe_opts;
/// "parity=0"/"parity=1" disables parity, unrelated tokens are ignored).
ParityParams merge_parity_opts(std::string_view opts, ParityParams base);

/// Parse a parity selection out of a free-form mount-option string.
/// Returns nullopt when the string does not itself select parity
/// (no "parity=" token, or fewer than two data columns).
std::optional<ParityParams> parity_params_from_opts(std::string_view opts);

struct ParityVolumeStats {
  std::uint64_t batches = 0;        // submit() + submit_async() calls
  std::uint64_t bios = 0;           // logical bios submitted
  std::uint64_t fragments = 0;      // member data bios produced
  // ---- write-path selection ----
  std::uint64_t full_stripe_writes = 0;  // lines via reconstruct-write
  std::uint64_t rmw_writes = 0;          // lines via read-modify-write
  std::uint64_t rmw_read_blocks = 0;     // old data/parity blocks read
  std::uint64_t parity_writes = 0;       // parity blocks written
  std::uint64_t bitmap_updates = 0;      // FUA intent-bitmap writes
  // ---- degraded / self-healing ----
  std::uint64_t degraded_reads = 0;      // read bios needing reconstruction
  std::uint64_t degraded_writes = 0;     // write bios served while degraded
  std::uint64_t reconstructed_blocks = 0;  // blocks rebuilt by XOR
  std::uint64_t read_error_failovers = 0;  // medium errors healed by XOR
  std::uint64_t async_batches = 0;
  std::uint64_t max_inflight = 0;
  // ---- rebuild + spares + scrub (maintained by AggregateDevice) ----
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuilds_aborted = 0;
  std::uint64_t rebuild_copied = 0;
  std::uint64_t rebuild_throttle_yields = 0;
  std::uint64_t spares_deployed = 0;
  std::uint64_t scrub_steps = 0;
  std::uint64_t scrub_mismatches = 0;
  std::uint64_t scrub_repairs = 0;
};

class ParityDevice final : public AggregateDevice {
 public:
  /// Member-local blocks reserved for the write-intent bitmap (replicated
  /// at the head of every member).
  static constexpr std::uint64_t kBitmapBlocks = 1;
  /// Stripe rows covered by one intent bit.
  static constexpr std::uint64_t kRegionRows = 64;

  /// Uniform members: `member_params.nblocks` is the PER-MEMBER size; the
  /// logical volume is ndata * (member blocks - bitmap, rounded down to
  /// whole chunks).
  ParityDevice(ParityParams pp, DeviceParams member_params);
  /// Heterogeneous members (fault/latency tests). All members must have
  /// the same usable size. Spares are shaped like the first.
  ParityDevice(ParityParams pp, std::vector<DeviceParams> member_params);
  ~ParityDevice() override;

  [[nodiscard]] const ParityParams& parity() const { return parity_; }
  [[nodiscard]] const ParityVolumeStats& volume_stats() const {
    const AggregateVolumeStats& a = aggregate_stats();
    vstats_.batches = a.batches;
    vstats_.bios = a.bios;
    vstats_.async_batches = a.async_batches;
    vstats_.max_inflight = a.max_inflight;
    vstats_.rebuilds_started = a.rebuilds_started;
    vstats_.rebuilds_completed = a.rebuilds_completed;
    vstats_.rebuilds_aborted = a.rebuilds_aborted;
    vstats_.rebuild_copied = a.rebuild_copied;
    vstats_.rebuild_throttle_yields = a.rebuild_throttle_yields;
    vstats_.spares_deployed = a.spares_deployed;
    vstats_.scrub_steps = a.scrub_steps;
    vstats_.scrub_mismatches = a.scrub_mismatches;
    vstats_.scrub_repairs = a.scrub_repairs;
    return vstats_;
  }

  // Like a mirror, one logical device to per-device subsystems; member
  // fan-out is an internal redundancy detail.
  [[nodiscard]] std::size_t fan_out() const override { return 1; }
  [[nodiscard]] BlockDevice& fan_child(std::size_t i) override {
    (void)i;
    return *this;
  }
  /// One full stripe row of DATA blocks (the writeback-clustering and
  /// group-commit alignment hint: a run covering this much, row-aligned,
  /// takes the no-read reconstruct-write path).
  [[nodiscard]] std::uint64_t stripe_width_blocks() const override {
    return parity_.chunk_blocks * parity_.ndata;
  }

  // ---- geometry (exposed for tests) ----
  /// Member holding logical block `blockno`'s data. Deliberately NOT the
  /// fan-out protocol's child_of() (which stays 0: per-device subsystems
  /// like the buffer-cache shards and flushers see ONE logical device —
  /// the member split is an internal redundancy detail, like a mirror's).
  [[nodiscard]] std::size_t data_member_of(std::uint64_t blockno) const;
  /// Member-local block `blockno` maps to.
  [[nodiscard]] std::uint64_t child_block_of(std::uint64_t blockno) const;
  /// Member holding the parity of stripe row `row`.
  [[nodiscard]] std::size_t parity_member_of(std::uint64_t row) const;
  [[nodiscard]] std::uint64_t row_of(std::uint64_t blockno) const {
    return blockno / stripe_width_blocks();
  }

  void read_untimed(std::uint64_t blockno, std::span<std::byte> out) override;
  /// Untimed writes (mkfs, oracle image construction) keep parity
  /// consistent: the parity line is updated in the same call.
  void write_untimed(std::uint64_t blockno,
                     std::span<const std::byte> in) override;

  void inject_read_error(std::uint64_t blockno) override {
    children_[data_member_of(blockno)]->inject_read_error(
        child_block_of(blockno));
  }
  void inject_write_error(std::uint64_t blockno) override {
    children_[data_member_of(blockno)]->inject_write_error(
        child_block_of(blockno));
  }
  void clear_write_error(std::uint64_t blockno) override {
    children_[data_member_of(blockno)]->clear_write_error(
        child_block_of(blockno));
  }

  /// Crash recovery (array assembly after power loss): recompute parity
  /// for every stripe row in a region marked in the write-intent bitmap,
  /// then clear the bitmap. Untimed — the offline step run before the
  /// file system mounts, like md's bitmap-driven resync.
  void resync();
  /// Marked (not yet verified) intent regions — write-hole exposure.
  [[nodiscard]] std::size_t dirty_regions() const;

  /// An array with at most one lost member serves all I/O; it is dead
  /// only through the whole-volume kill (or every member gone).
  [[nodiscard]] bool dead() const override;

 protected:
  void route_policy(const std::vector<Bio*>& writes,
                    const std::vector<Bio*>& killed, bool fire,
                    const std::vector<Bio*>& reads, ChildTickets& tickets,
                    sim::Nanos& last_done) override;

  // ---- redundancy hooks (AggregateDevice) ----
  [[nodiscard]] bool has_rebuild_source(std::size_t target) const override;
  /// XOR-reconstruct the target's member-local blocks from the other
  /// members (bitmap blocks are copied verbatim from a healthy replica).
  bool rebuild_source_read(std::uint64_t start, std::uint64_t n) override;
  /// Scrub: XOR-check whole parity lines, repair parity from data, and
  /// clear verified intent regions.
  [[nodiscard]] std::uint64_t scrub_extent() const override {
    return rows_ * parity_.chunk_blocks;
  }
  std::uint64_t scrub_step(std::uint64_t cursor) override;
  void on_scrub_complete() override;

 private:
  /// How one touched line's parity gets updated (or why it does not).
  enum class LinePlan {
    Full,         // parity from new data alone (covers every column)
    Rmw,          // read old data of written columns + old parity
    Reconstruct,  // read old data of the unwritten columns
    Skip,         // parity member unavailable: data goes unprotected
  };

  /// One parity line touched by a write batch: which data columns get new
  /// content, and which parent bios depend on the line's parity update.
  struct LineUpdate {
    std::vector<std::span<const std::byte>> newdata;  // per column; empty=no
    std::vector<Bio*> writers;         // parents touching the line
    std::vector<Bio*> parity_reliant;  // parents with a dropped data write
    std::size_t written = 0;
    LinePlan plan = LinePlan::Skip;
    // Prefetched pre-images (RMW / reconstruct sources), arena-backed.
    BlockData* old_parity = nullptr;
    std::vector<BlockData*> olddata;  // per column; null = not needed
    bool ok = true;  // prefetch served (else parity is skipped this round)
  };

  [[nodiscard]] std::uint64_t nmembers() const { return children_.size(); }
  /// Member-local data blocks (excludes the bitmap head).
  [[nodiscard]] std::uint64_t member_usable() const {
    return rows_ * parity_.chunk_blocks;
  }
  [[nodiscard]] std::uint64_t region_of_mb(std::uint64_t mb) const {
    return (mb - kBitmapBlocks) / parity_.chunk_blocks / kRegionRows;
  }

  void submit_write_lines(const std::vector<Bio*>& parents,
                          ChildTickets& tickets, sim::Nanos& last_done);
  /// Route killed writes: data fragments only — every member is powered
  /// off, so RMW reads and parity updates are pointless work the real
  /// array never got to do.
  void submit_dead_writes(const std::vector<Bio*>& parents,
                          ChildTickets& tickets, sim::Nanos& last_done);
  void submit_reads(const std::vector<Bio*>& parents, ChildTickets& tickets,
                    sim::Nanos& last_done);
  /// Mark the intent regions the batch touches; FUA-writes the bitmap
  /// block to every serving member before returning.
  void mark_regions(const std::map<std::uint64_t, LineUpdate>& lines);
  /// Timed XOR reconstruction of one member-local block of member `m`
  /// from the other members' queues. `bio_done` is max-ed with the peer
  /// completions. Returns false on a medium error.
  bool reconstruct_block_timed(std::size_t m, std::uint64_t mb,
                               std::span<std::byte> out, ChildTickets& tickets,
                               sim::Nanos& last_done, sim::Nanos& bio_done);
  /// Untimed XOR reconstruction (recovery/oracle paths).
  void reconstruct_block_untimed(std::size_t m, std::uint64_t mb,
                                 std::span<std::byte> out);
  void recompute_row_untimed(std::uint64_t row);
  void write_bitmap_page(bool timed);

  static DeviceParams volume_params(const ParityParams& pp,
                                    const std::vector<DeviceParams>& members);

  ParityParams parity_;
  std::uint64_t rows_ = 0;
  /// The running scrub pass skipped verification somewhere (degraded, a
  /// faulted read, a lost repair): on_scrub_complete keeps the intent
  /// bits. Reset when the pass's completion is processed.
  bool scrub_skipped_ = false;
  std::vector<bool> region_dirty_;   // in-memory intent bitmap
  BlockData bitmap_page_;            // on-media image (replicated)
  mutable ParityVolumeStats vstats_;
};

}  // namespace bsim::blk
