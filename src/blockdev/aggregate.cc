#include "blockdev/aggregate.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bsim::blk {

AggregateDevice::~AggregateDevice() = default;

void AggregateDevice::adopt_children(
    std::vector<std::unique_ptr<BlockDevice>> children,
    std::vector<std::unique_ptr<BlockDevice>> spares,
    std::size_t rebuild_batch, sim::Nanos rebuild_lead) {
  assert(children_.empty() && "adopt_children must be called exactly once");
  assert(!children.empty());
  children_ = std::move(children);
  spares_ = std::move(spares);
  healthy_.assign(children_.size(), true);
  rebuild_batch_ = std::max<std::size_t>(rebuild_batch, 1);
  rebuild_lead_ = rebuild_lead;
  rebuild_buf_.resize(rebuild_batch_);
}

std::size_t AggregateDevice::healthy_members() const {
  return static_cast<std::size_t>(
      std::count(healthy_.begin(), healthy_.end(), true));
}

void AggregateDevice::install_tracer(const std::shared_ptr<Tracer>& t,
                                     const std::string& name) {
  BlockDevice::install_tracer(t, name);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->install_tracer(t, name + "/" + std::to_string(i));
  }
}

// ---- submission skeleton ----

AggregateDevice::ChildTickets AggregateDevice::route_batch(
    std::span<Bio* const> bios, sim::Nanos& last_done) {
  astats_.batches += 1;
  astats_.bios += bios.size();
  // Logical bios queue at the volume: Q lands on the volume's trace slot
  // (members trace their fragments separately). Idempotent for bios the
  // plug layer already stamped.
  for (Bio* b : bios) note_bio_queued(*b);

  // Mirror the single-device queue's crash-count order: writes are counted
  // bio-by-bio in stable first-block order (see RequestQueue::dispatch),
  // so kill_after(n) on a volume selects the SAME n logical bios as on one
  // device for an identical submission sequence.
  std::vector<Bio*> writes, survivors, killed, reads;
  for (Bio* b : bios) {
    (b->op == BioOp::Write ? writes : reads).push_back(b);
  }
  std::stable_sort(writes.begin(), writes.end(),
                   [](const Bio* a, const Bio* b) {
                     return a->first_block() < b->first_block();
                   });
  bool fire = false;
  for (Bio* w : writes) {
    if (kill_armed_ && !fire) {
      if (kill_countdown_ == 0) fire = true;
      else kill_countdown_ -= 1;
    }
    (fire ? killed : survivors).push_back(w);
  }

  ChildTickets tickets;
  route_policy(survivors, killed, fire, reads, tickets, last_done);
  if (Tracer* tr = tracer(); tr != nullptr) {
    // Media effects (and done_at) land at routing, so the logical C is
    // known now even on the async path; t is the bio's own completion.
    for (const Bio* b : bios) {
      TraceEvent e;
      e.t = b->done_at;
      e.id = b->trace_id;
      e.block = b->first_block();
      e.nblocks = static_cast<std::uint32_t>(b->nblocks());
      e.dev = trace_dev_;
      e.ev = TraceEv::Complete;
      e.op = b->op == BioOp::Read ? TraceOp::Read : TraceOp::Write;
      tr->emit(e);
    }
  }
  return tickets;
}

void AggregateDevice::mark_volume_dead() {
  volume_dead_ = true;
  kill_armed_ = false;
  for (auto& c : children_) c->power_off();
}

sim::Nanos AggregateDevice::submit_impl(std::span<Bio* const> bios) {
  if (bios.empty()) return sim::now();
  pokes();
  sim::Nanos last_done = sim::now();
  ChildTickets tickets = route_batch(bios, last_done);
  for (auto& [c, t] : tickets) children_[c]->wait(t);
  sim::current().wait_until(last_done);
  return last_done;
}

Ticket AggregateDevice::submit_async_impl(std::span<Bio* const> bios) {
  if (bios.empty()) return Ticket{};
  pokes();
  sim::Nanos last_done = sim::now();
  ChildTickets tickets = route_batch(bios, last_done);
  astats_.async_batches += 1;
  const std::uint64_t id = next_ticket_++;
  outstanding_.emplace(id, std::move(tickets));
  astats_.max_inflight =
      std::max<std::uint64_t>(astats_.max_inflight, outstanding_.size());
  Ticket t{last_done, id};
  // A logical bio that still carries io_error after routing (member
  // failure the redundancy could not absorb) fails the ticket, same as a
  // plain queue's.
  for (const Bio* b : bios) t.failed |= b->io_error;
  return t;
}

sim::Nanos AggregateDevice::wait_impl(const Ticket& t) {
  if (!t.valid()) return sim::now();
  auto it = outstanding_.find(t.id);
  if (it != outstanding_.end()) {
    // Redeem every member ticket, INCLUDING those of a member that
    // fail-stopped after submission: its queue already dispatched the
    // batch, so fan-in just collects the completion times.
    for (auto& [c, ct] : it->second) children_[c]->wait(ct);
    outstanding_.erase(it);
  }
  sim::current().wait_until(t.done);  // redundant waits are harmless
  return t.done;
}

sim::Nanos AggregateDevice::flush_nowait_impl() {
  pokes();
  // FLUSH every serving member in parallel: each barriers its own
  // channels; the volume's flush completes when the slowest member
  // destages. A failed member is gone — it neither receives nor
  // acknowledges the FLUSH.
  sim::Nanos done = sim::now();
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (serves_writes(i)) done = std::max(done, children_[i]->flush_nowait());
  }
  return done;
}

void AggregateDevice::pokes() {
  if (auto_scrub_ && !scrub_on_) {
    auto_scrub_ = false;
    start_scrub();
  }
  rebuild_poke(sim::now());
  scrub_poke(sim::now());
}

// ---- member failure + online rebuild + hot spares ----

void AggregateDevice::fail_member(std::size_t i) {
  assert(i < children_.size());
  if (rebuild_target_ == i) abort_rebuild();
  healthy_[i] = false;
  // Rebuild whose redundancy just vanished cannot make progress.
  if (rebuild_active() && !has_rebuild_source(*rebuild_target_)) {
    abort_rebuild();
  }
  maybe_deploy_spare(i);
}

void AggregateDevice::maybe_deploy_spare(std::size_t i) {
  if (spares_.empty() || rebuild_active() || healthy_[i]) return;
  if (!has_rebuild_source(i)) return;
  // md-style hot spare: the spare takes over the failed slot and the
  // resync starts immediately. The failed device is retired, not
  // destroyed, so references taken before the swap stay valid.
  retired_.push_back(std::move(children_[i]));
  children_[i] = std::move(spares_.back());
  spares_.pop_back();
  astats_.spares_deployed += 1;
  start_rebuild(i);
}

void AggregateDevice::start_rebuild(std::size_t i) {
  assert(i < children_.size());
  assert(!healthy_[i] && "rebuilding a member that is already serving");
  assert(!rebuild_active() && "one rebuild at a time");
  if (!has_rebuild_source(i)) {
    throw std::logic_error("rebuild needs a redundancy source");
  }
  rebuild_target_ = i;
  rebuild_cursor_ = 0;
  astats_.rebuilds_started += 1;
  // The resync starts no earlier than now; its clock then advances as the
  // copy progresses (poked forward by foreground submissions).
  rebuild_thread_.wait_until(sim::now());
}

void AggregateDevice::rebuild_poke(sim::Nanos horizon) {
  if (!rebuild_active()) return;
  const sim::Nanos limit = horizon + rebuild_lead_;
  bool yielded = false;
  {
    sim::ScopedThread in(rebuild_thread_);
    while (rebuild_active() && rebuild_thread_.now() < limit) {
      rebuild_copy_step();
    }
    yielded = rebuild_active();
  }
  // Backpressure: the copy ran as far ahead of the poking thread as the
  // lead window allows and yields the device back to foreground I/O.
  if (yielded) astats_.rebuild_throttle_yields += 1;
}

void AggregateDevice::rebuild_copy_step() {
  assert(rebuild_active());
  const std::size_t tgt = *rebuild_target_;
  // Power died (the crash model cut the whole volume): resync writes
  // would be silently swallowed by the dead target, so a "completed"
  // rebuild could promote a bit-diverged member. Abort instead.
  if (children_[tgt]->dead()) {
    abort_rebuild();
    return;
  }
  const std::uint64_t extent = children_[tgt]->nblocks();
  const std::uint64_t n =
      std::min<std::uint64_t>(rebuild_batch_, extent - rebuild_cursor_);
  if (n == 0) {
    complete_rebuild();
    return;
  }
  // Regenerate the run from the volume's redundancy (timed on the rebuild
  // clock, through the member queues — rebuild I/O competes with
  // foreground I/O for member channels).
  if (!rebuild_source_read(rebuild_cursor_, n)) {
    abort_rebuild();
    return;
  }
  Bio write(BioOp::Write);
  for (std::uint64_t i = 0; i < n; ++i) {
    write.add_write(rebuild_cursor_ + i, rebuild_buf_[i]);
  }
  children_[tgt]->submit(write);
  if (!write.applied) {  // target swallowed the copy (power death)
    abort_rebuild();
    return;
  }
  rebuild_cursor_ += n;
  astats_.rebuild_copied += n;
  if (rebuild_cursor_ == extent) complete_rebuild();
}

void AggregateDevice::complete_rebuild() {
  assert(rebuild_active());
  // Destage the target's write cache before declaring it in sync, then
  // promote it back to serving.
  const std::size_t t = *rebuild_target_;
  sim::current().wait_until(children_[t]->flush_nowait());
  healthy_[t] = true;
  rebuild_target_.reset();
  rebuild_cursor_ = children_[t]->nblocks();
  astats_.rebuilds_completed += 1;
}

void AggregateDevice::abort_rebuild() {
  if (!rebuild_active()) return;
  rebuild_target_.reset();
  astats_.rebuilds_aborted += 1;
}

void AggregateDevice::finish_rebuild() {
  if (!rebuild_active()) return;
  {
    sim::ScopedThread in(rebuild_thread_);
    while (rebuild_active()) rebuild_copy_step();
  }
  // Barrier: the caller observes the completed resync.
  sim::current().wait_until(rebuild_thread_.now());
}

bool AggregateDevice::rebuild_source_read(std::uint64_t start,
                                          std::uint64_t n) {
  (void)start;
  (void)n;
  return false;  // no redundancy in the base: nothing to rebuild from
}

// ---- scrub ----

std::uint64_t AggregateDevice::scrub_step(std::uint64_t cursor) {
  (void)cursor;
  return scrub_extent();  // no-op default: consume the whole pass
}

void AggregateDevice::start_scrub() {
  if (scrub_on_ || scrub_extent() == 0) return;
  scrub_on_ = true;
  scrub_cursor_ = 0;
  scrub_thread_.wait_until(sim::now());
}

void AggregateDevice::scrub_poke(sim::Nanos horizon) {
  if (!scrub_on_) return;
  const sim::Nanos limit = horizon + rebuild_lead_;
  sim::ScopedThread in(scrub_thread_);
  while (scrub_on_ && scrub_thread_.now() < limit) scrub_step_once();
}

void AggregateDevice::scrub_step_once() {
  assert(scrub_on_);
  if (scrub_cursor_ >= scrub_extent()) {
    scrub_on_ = false;
    on_scrub_complete();
    return;
  }
  const std::uint64_t consumed = scrub_step(scrub_cursor_);
  scrub_cursor_ += std::max<std::uint64_t>(consumed, 1);
  astats_.scrub_steps += 1;
}

void AggregateDevice::finish_scrub() {
  if (!scrub_on_) return;
  {
    sim::ScopedThread in(scrub_thread_);
    while (scrub_on_) scrub_step_once();
  }
  sim::current().wait_until(scrub_thread_.now());
}

// ---- crash model ----

void AggregateDevice::enable_crash_tracking() {
  for (auto& c : children_) c->enable_crash_tracking();
}

void AggregateDevice::kill_after(std::uint64_t n) {
  kill_armed_ = true;
  kill_countdown_ = n;
}

void AggregateDevice::kill_after_child(std::size_t child, std::uint64_t n) {
  assert(child < children_.size());
  children_[child]->kill_after(n);
}

void AggregateDevice::power_off() {
  volume_dead_ = true;
  kill_armed_ = false;
  for (auto& c : children_) c->power_off();
}

bool AggregateDevice::dead() const {
  if (volume_dead_) return true;
  for (const auto& c : children_) {
    if (c->dead()) return true;
  }
  return false;
}

void AggregateDevice::crash(double survive_p, sim::Rng& rng) {
  volume_dead_ = false;
  kill_armed_ = false;
  for (auto& c : children_) c->crash(survive_p, rng);
}

// ---- fault-model fan-out ----

void AggregateDevice::inject_transient_errors(std::uint64_t k) {
  for (auto& c : children_) c->inject_transient_errors(k);
}

void AggregateDevice::set_fault_schedule(const FaultSchedule& s) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    FaultSchedule cs = s;
    // Distinct RNG stream per member (splitmix64 increment), same windows.
    cs.seed = s.seed * 0x9e3779b97f4a7c15ULL + i + 1;
    children_[i]->set_fault_schedule(cs);
  }
}

void AggregateDevice::clear_fault_schedule() {
  for (auto& c : children_) c->clear_fault_schedule();
}

void AggregateDevice::set_retry_policy(const RetryPolicy& p) {
  for (auto& c : children_) c->set_retry_policy(p);
}

std::uint64_t AggregateDevice::dirty_blocks() const {
  std::uint64_t total = 0;
  for (const auto& c : children_) total += c->dirty_blocks();
  return total;
}

const DeviceStats& AggregateDevice::stats() const {
  // Like the base class, the returned reference is a live view: it
  // reflects whatever I/O has happened by the time it is read (here via
  // re-aggregation on each call). Callers wanting a snapshot to diff
  // against must copy the struct, exactly as with a plain device.
  agg_ = DeviceStats{};
  for (const auto& c : children_) {
    const DeviceStats& s = c->stats();
    agg_.reads += s.reads;
    agg_.writes += s.writes;
    agg_.flushes += s.flushes;
    agg_.blocks_destaged += s.blocks_destaged;
    agg_.busy += s.busy;
    agg_.read_requests += s.read_requests;
    agg_.write_requests += s.write_requests;
    agg_.merges += s.merges;
    agg_.seq_read_blocks += s.seq_read_blocks;
    agg_.read_errors += s.read_errors;
    agg_.write_errors += s.write_errors;
    agg_.transient_errors += s.transient_errors;
    agg_.faults_scheduled += s.faults_scheduled;
    agg_.max_request_blocks =
        std::max(agg_.max_request_blocks, s.max_request_blocks);
    agg_.read_wait.merge(s.read_wait);
    agg_.write_wait.merge(s.write_wait);
    agg_.read_service.merge(s.read_service);
    agg_.write_service.merge(s.write_service);
    agg_.flush_lat.merge(s.flush_lat);
  }
  return agg_;
}

}  // namespace bsim::blk
