#include "blockdev/mirrored.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blockdev/opts.h"

namespace bsim::blk {

MirrorParams merge_mirror_opts(std::string_view opts, MirrorParams base) {
  for_each_opt_token(opts, [&](std::string_view tok) {
    std::uint64_t n = 0;
    if (opt_num_after(tok, "mirror=", n) && n >= 1) {
      base.nmirrors = static_cast<std::size_t>(n);
    } else if (tok == "policy=rr") {
      base.policy = MirrorReadPolicy::RoundRobin;
    } else if (tok == "policy=sq") {
      base.policy = MirrorReadPolicy::ShortestQueue;
    } else if (opt_num_after(tok, "spare=", n)) {
      base.nspares = static_cast<std::size_t>(n);
    } else if (tok == "scrub") {
      base.auto_scrub = true;
    }
  });
  return base;
}

std::optional<MirrorParams> mirror_params_from_opts(std::string_view opts) {
  MirrorParams off;
  off.nmirrors = 1;  // mirroring only on an explicit mirror=N>1 token
  const MirrorParams merged = merge_mirror_opts(opts, off);
  if (merged.nmirrors <= 1) return std::nullopt;
  return merged;
}

DeviceParams MirroredDevice::volume_params(
    const std::vector<DeviceParams>& members) {
  assert(!members.empty());
  DeviceParams p = members.front();
  // Every member stores the full image: the volume's logical size is one
  // member's size; read capacity is the members' channels combined.
  p.channels = 0;
  for (const DeviceParams& m : members) p.channels += m.channels;
  return p;
}

MirroredDevice::MirroredDevice(MirrorParams mp, DeviceParams member_params)
    : MirroredDevice(mp, std::vector<DeviceParams>(
                             std::max<std::size_t>(mp.nmirrors, 1),
                             member_params)) {}

MirroredDevice::MirroredDevice(MirrorParams mp,
                               std::vector<DeviceParams> member_params)
    : AggregateDevice(volume_params(member_params)), mirror_(mp) {
  mirror_.nmirrors = member_params.size();
  std::vector<std::unique_ptr<BlockDevice>> members;
  for (const DeviceParams& p : member_params) {
    if (p.nblocks != member_params.front().nblocks) {
      throw std::invalid_argument("mirror members must be the same size");
    }
    members.push_back(std::make_unique<BlockDevice>(p));
  }
  std::vector<std::unique_ptr<BlockDevice>> spares;
  for (std::size_t i = 0; i < mirror_.nspares; ++i) {
    spares.push_back(std::make_unique<BlockDevice>(member_params.front()));
  }
  const std::size_t n = members.size();
  adopt_children(std::move(members), std::move(spares), mirror_.rebuild_batch,
                 mirror_.rebuild_lead);
  busy_until_.assign(n, 0);
  lat_ewma_.assign(n, 0);
  last_read_end_.assign(n, ~0ULL);
  if (mirror_.auto_scrub) arm_auto_scrub();
}

MirroredDevice::~MirroredDevice() = default;

std::size_t MirroredDevice::first_healthy() const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (healthy_[i]) return i;
  }
  return children_.size();
}

bool MirroredDevice::has_rebuild_source(std::size_t target) const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i != target && healthy_[i]) return true;
  }
  return false;
}

std::size_t MirroredDevice::pick_read_member(std::uint64_t first_block) {
  const std::size_t n = children_.size();
  // Sequential affinity beats the policy: a read continuing the stream a
  // member is already serving stays there, so the member prices it at the
  // sequential rate instead of paying a random seek on every other
  // replica (md read_balance's closest-head rule).
  for (std::size_t m = 0; m < n; ++m) {
    if (healthy_[m] && last_read_end_[m] == first_block) {
      vstats_.sequential_affinity_reads += 1;
      return m;
    }
  }
  if (mirror_.policy == MirrorReadPolicy::RoundRobin) {
    // Cycle through the members; a pick that lands on an unserving member
    // is redirected to the next healthy one.
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t m = (rr_next_ + step) % n;
      if (healthy_[m]) {
        rr_next_ = (m + 1) % n;
        if (step != 0) vstats_.redirected_reads += 1;
        return m;
      }
    }
    return n;  // no healthy member
  }
  // Shortest queue: lowest EXPECTED completion — outstanding
  // volume-submitted work plus the member's observed-latency EWMA (a
  // member that finishes bios slowly scores worse than an equally-deep
  // fast one) — with DeviceStats busy as the tie-break (the long-term
  // balance signal), then index.
  const sim::Nanos now = sim::now();
  std::size_t best = n;
  sim::Nanos best_score = 0;
  for (std::size_t m = 0; m < n; ++m) {
    if (!healthy_[m]) continue;
    const sim::Nanos pending = busy_until_[m] > now ? busy_until_[m] - now : 0;
    const sim::Nanos score = pending + lat_ewma_[m];
    if (best == n || score < best_score ||
        (score == best_score &&
         children_[m]->stats().busy < children_[best]->stats().busy)) {
      best = m;
      best_score = score;
    }
  }
  return best;
}

void MirroredDevice::note_submission(std::size_t member, const Ticket& t) {
  busy_until_[member] = std::max(busy_until_[member], t.done);
}

void MirroredDevice::note_latency(std::size_t member, sim::Nanos sample) {
  if (sample < 0) sample = 0;
  // Read completions only (writes replicate to every member, so their
  // latency carries no routing signal and would just flatten the scale).
  // alpha = 1/8; seeded by the first observation so one slow replica is
  // visible immediately instead of being averaged up from zero.
  lat_ewma_[member] = lat_ewma_[member] == 0
                          ? sample
                          : lat_ewma_[member] - lat_ewma_[member] / 8 +
                                sample / 8;
}

void MirroredDevice::submit_writes(const std::vector<Bio*>& parents,
                                   ChildTickets& tickets,
                                   sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = children_.size();
  const bool deg = degraded();
  std::vector<std::vector<Bio>> copies(n);

  std::vector<std::uint32_t> ncopies(parents.size(), 0);
  std::vector<std::uint32_t> nfailed(parents.size(), 0);
  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = true;  // AND-ed with every replica below
    parent->io_error = false;
    bool replicated = false;
    for (std::size_t m = 0; m < n; ++m) {
      if (!serves_writes(m)) continue;
      Bio& copy = copies[m].emplace_back(BioOp::Write);
      copy.parent_trace_id = parent->trace_id;
      for (const BioVec& v : parent->vecs) copy.add_write(v.blockno, v.wdata);
      vstats_.replicated_writes += 1;
      replicated = true;
    }
    if (!replicated) parent->applied = false;  // no serving member left
    if (deg) vstats_.degraded_writes += 1;
    // Write-interception accounting: a write landing (partly) ahead of the
    // resync cursor reaches the rebuild target before the copy pass does.
    if (rebuild_active() && parent->end_block() > rebuild_cursor()) {
      vstats_.rebuild_write_intercepts += 1;
    }
  }

  // Hand each member its replica batch as ONE async submission, in member
  // order: every member elevator-sorts and merges its copy independently,
  // all replicas transfer concurrently in virtual time, and the caller
  // ends up holding every member's ticket at once.
  for (std::size_t m = 0; m < n; ++m) {
    if (copies[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(copies[m]);
    tickets.emplace_back(m, t);
    note_submission(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < copies[m].size(); ++i) {
      Bio* parent = parents[i];
      parent->done_at = std::max(parent->done_at, copies[m][i].done_at);
      if (!copies[m][i].applied) parent->applied = false;
      ncopies[i] += 1;
      if (copies[m][i].io_error) nfailed[i] += 1;
    }
  }
  // A write error on ONE replica does not fail the logical write — the
  // surviving copies carry the data (md would kick the member; we keep
  // it, and applied=false keeps dirty-state owners retrying). Only when
  // EVERY replica failed does the error surface.
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (ncopies[i] > 0 && nfailed[i] == ncopies[i]) {
      parents[i]->io_error = true;
    }
  }
}

void MirroredDevice::submit_reads(const std::vector<Bio*>& parents,
                                  ChildTickets& tickets,
                                  sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = children_.size();
  const bool deg = degraded();
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);  // aligned with frags[m]

  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = false;
    parent->io_error = false;
    const std::size_t m = pick_read_member(parent->first_block());
    if (m == n) {  // no healthy member: the volume cannot serve reads
      parent->io_error = true;
      parent->done_at = sim::now();
      continue;
    }
    last_read_end_[m] = parent->end_block();
    vstats_.balanced_reads += 1;
    if (deg) vstats_.degraded_reads += 1;
    Bio& frag = frags[m].emplace_back(BioOp::Read);
    frag.parent_trace_id = parent->trace_id;
    owners[m].push_back(parent);
    for (const BioVec& v : parent->vecs) frag.add_read(v.blockno, v.data);
  }

  const sim::Nanos submitted_at = sim::now();
  for (std::size_t m = 0; m < n; ++m) {
    if (frags[m].empty()) continue;
    const Ticket t = children_[m]->submit_async(frags[m]);
    tickets.emplace_back(m, t);
    note_submission(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      parent->done_at = std::max(parent->done_at, frags[m][i].done_at);
      parent->applied = frags[m][i].applied;
      parent->io_error = frags[m][i].io_error;
      note_latency(m, frags[m][i].done_at - submitted_at);
    }
  }

  // Read-error failover: a replica that failed a bio (injected medium
  // error) does not fail the volume — retry on each other healthy member
  // until one serves it. Media effects land at submission, so the outcome
  // is visible immediately and the retry queues behind what was already
  // submitted (the failed attempt still cost its service time).
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      if (!parent->io_error) continue;
      for (std::size_t step = 1; step < n && parent->io_error; ++step) {
        const std::size_t alt = (m + step) % n;
        if (!healthy_[alt]) continue;
        vstats_.read_error_failovers += 1;
        vstats_.redirected_reads += 1;
        Bio retry(BioOp::Read);
        retry.parent_trace_id = parent->trace_id;
        for (const BioVec& v : parent->vecs) retry.add_read(v.blockno, v.data);
        const Ticket t =
            children_[alt]->submit_async(std::span<Bio>(&retry, 1));
        tickets.emplace_back(alt, t);
        note_submission(alt, t);
        last_read_end_[alt] = parent->end_block();
        last_done = std::max(last_done, t.done);
        parent->done_at = std::max(parent->done_at, retry.done_at);
        parent->applied = retry.applied;
        parent->io_error = retry.io_error;
      }
    }
  }
}

void MirroredDevice::route_policy(const std::vector<Bio*>& writes,
                                  const std::vector<Bio*>& killed, bool fire,
                                  const std::vector<Bio*>& reads,
                                  ChildTickets& tickets,
                                  sim::Nanos& last_done) {
  submit_writes(writes, tickets, last_done);
  if (fire) {
    mark_volume_dead();
    submit_writes(killed, tickets, last_done);
  }
  submit_reads(reads, tickets, last_done);
}

void MirroredDevice::read_untimed(std::uint64_t blockno,
                                  std::span<std::byte> out) {
  std::size_t m = first_healthy();
  if (m == children_.size()) {
    // Every member fail-stopped: there is no live logical image to read.
    // A mid-resync target is the best stale copy; with none, fail loudly
    // rather than silently serving a frozen pre-failure replica.
    if (!rebuild_active()) {
      throw std::logic_error("read_untimed on a mirror with no live member");
    }
    m = *rebuild_target();
  }
  children_[m]->read_untimed(blockno, out);
}

void MirroredDevice::write_untimed(std::uint64_t blockno,
                                   std::span<const std::byte> in) {
  for (std::size_t m = 0; m < children_.size(); ++m) {
    if (serves_writes(m)) children_[m]->write_untimed(blockno, in);
  }
}

// ---- redundancy hooks ----

bool MirroredDevice::rebuild_source_read(std::uint64_t start,
                                         std::uint64_t n) {
  // Resync-source selection: candidates ordered by observed
  // completion-latency EWMA — the shortest-queue policy's signal — so the
  // copy reads from the fastest replica instead of blindly from the first
  // healthy one. Never-observed members (EWMA 0) and ties keep index
  // order, which preserves the historical first-healthy pick. A medium
  // error on the chosen source falls over to the next candidate (the
  // failed attempt still cost its service time).
  std::vector<std::size_t> order;
  for (std::size_t m = 0; m < children_.size(); ++m) {
    if (healthy_[m]) order.push_back(m);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lat_ewma_[a] < lat_ewma_[b];
                   });
  for (std::size_t src : order) {
    Bio read(BioOp::Read);
    for (std::uint64_t i = 0; i < n; ++i) {
      read.add_read(start + i, rebuild_buf_[i]);
    }
    children_[src]->submit(read);
    if (!read.io_error) return true;
  }
  return false;
}

std::uint64_t MirroredDevice::scrub_step(std::uint64_t cursor) {
  const std::uint64_t n = std::min<std::uint64_t>(
      std::max<std::size_t>(mirror_.rebuild_batch, 1), nblocks() - cursor);
  const std::size_t ref = first_healthy();
  if (ref == children_.size()) return n;  // nothing to compare against
  // Read every healthy replica's copy of the run (timed on the scrub
  // thread, through the member queues) and repair divergent blocks from
  // the reference copy — md's "repair" sync_action.
  std::vector<BlockData> refbuf(n);
  Bio refread(BioOp::Read);
  for (std::uint64_t i = 0; i < n; ++i) refread.add_read(cursor + i, refbuf[i]);
  children_[ref]->submit(refread);
  std::vector<BlockData> buf(n);
  for (std::size_t m = 0; m < children_.size(); ++m) {
    if (m == ref || !healthy_[m]) continue;
    Bio read(BioOp::Read);
    for (std::uint64_t i = 0; i < n; ++i) read.add_read(cursor + i, buf[i]);
    children_[m]->submit(read);
    Bio repair(BioOp::Write);
    std::size_t divergent = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (buf[i] == refbuf[i]) continue;
      astats_.scrub_mismatches += 1;
      repair.add_write(cursor + i, refbuf[i]);
      divergent += 1;
    }
    if (divergent > 0) {
      children_[m]->submit(repair);
      astats_.scrub_repairs += divergent;
    }
  }
  return n;
}

// ---- crash model ----

bool MirroredDevice::dead() const {
  if (volume_killed()) return true;
  for (const auto& m : children_) {
    if (!m->dead()) return false;
  }
  return true;
}

void MirroredDevice::inject_read_error(std::uint64_t blockno) {
  // Volume-level injection marks the block bad on EVERY replica (a truly
  // unreadable logical block); per-member injection — the interesting
  // fault for failover tests — goes through member(i).inject_read_error.
  for (auto& m : children_) m->inject_read_error(blockno);
}

void MirroredDevice::inject_write_error(std::uint64_t blockno) {
  // Same contract as inject_read_error: volume-level marks every replica
  // (a logically unwritable block); per-member injection goes through
  // member(i) directly.
  for (auto& m : children_) m->inject_write_error(blockno);
}

void MirroredDevice::clear_write_error(std::uint64_t blockno) {
  for (auto& m : children_) m->clear_write_error(blockno);
}

}  // namespace bsim::blk
