#include "blockdev/mirrored.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blockdev/opts.h"

namespace bsim::blk {

MirrorParams merge_mirror_opts(std::string_view opts, MirrorParams base) {
  for_each_opt_token(opts, [&](std::string_view tok) {
    std::uint64_t n = 0;
    if (opt_num_after(tok, "mirror=", n) && n >= 1) {
      base.nmirrors = static_cast<std::size_t>(n);
    } else if (tok == "policy=rr") {
      base.policy = MirrorReadPolicy::RoundRobin;
    } else if (tok == "policy=sq") {
      base.policy = MirrorReadPolicy::ShortestQueue;
    }
  });
  return base;
}

std::optional<MirrorParams> mirror_params_from_opts(std::string_view opts) {
  MirrorParams off;
  off.nmirrors = 1;  // mirroring only on an explicit mirror=N>1 token
  const MirrorParams merged = merge_mirror_opts(opts, off);
  if (merged.nmirrors <= 1) return std::nullopt;
  return merged;
}

DeviceParams MirroredDevice::volume_params(
    const std::vector<DeviceParams>& members) {
  assert(!members.empty());
  DeviceParams p = members.front();
  // Every member stores the full image: the volume's logical size is one
  // member's size; read capacity is the members' channels combined.
  p.channels = 0;
  for (const DeviceParams& m : members) p.channels += m.channels;
  return p;
}

MirroredDevice::MirroredDevice(MirrorParams mp, DeviceParams member_params)
    : MirroredDevice(mp, std::vector<DeviceParams>(
                             std::max<std::size_t>(mp.nmirrors, 1),
                             member_params)) {}

MirroredDevice::MirroredDevice(MirrorParams mp,
                               std::vector<DeviceParams> member_params)
    : BlockDevice(volume_params(member_params), NoBacking{}), mirror_(mp) {
  mirror_.nmirrors = member_params.size();
  for (const DeviceParams& p : member_params) {
    if (p.nblocks != member_params.front().nblocks) {
      throw std::invalid_argument("mirror members must be the same size");
    }
    members_.push_back(std::make_unique<BlockDevice>(p));
  }
  healthy_.assign(members_.size(), true);
  busy_until_.assign(members_.size(), 0);
  lat_ewma_.assign(members_.size(), 0);
  last_read_end_.assign(members_.size(), ~0ULL);
  rebuild_buf_.resize(std::max<std::size_t>(mirror_.rebuild_batch, 1));
}

MirroredDevice::~MirroredDevice() = default;

std::size_t MirroredDevice::healthy_members() const {
  return static_cast<std::size_t>(
      std::count(healthy_.begin(), healthy_.end(), true));
}

std::size_t MirroredDevice::first_healthy() const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (healthy_[i]) return i;
  }
  return members_.size();
}

std::size_t MirroredDevice::pick_read_member(std::uint64_t first_block) {
  const std::size_t n = members_.size();
  // Sequential affinity beats the policy: a read continuing the stream a
  // member is already serving stays there, so the member prices it at the
  // sequential rate instead of paying a random seek on every other
  // replica (md read_balance's closest-head rule).
  for (std::size_t m = 0; m < n; ++m) {
    if (healthy_[m] && last_read_end_[m] == first_block) {
      vstats_.sequential_affinity_reads += 1;
      return m;
    }
  }
  if (mirror_.policy == MirrorReadPolicy::RoundRobin) {
    // Cycle through the members; a pick that lands on an unserving member
    // is redirected to the next healthy one.
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t m = (rr_next_ + step) % n;
      if (healthy_[m]) {
        rr_next_ = (m + 1) % n;
        if (step != 0) vstats_.redirected_reads += 1;
        return m;
      }
    }
    return n;  // no healthy member
  }
  // Shortest queue: lowest EXPECTED completion — outstanding
  // volume-submitted work plus the member's observed-latency EWMA (a
  // member that finishes bios slowly scores worse than an equally-deep
  // fast one) — with DeviceStats busy as the tie-break (the long-term
  // balance signal), then index.
  const sim::Nanos now = sim::now();
  std::size_t best = n;
  sim::Nanos best_score = 0;
  for (std::size_t m = 0; m < n; ++m) {
    if (!healthy_[m]) continue;
    const sim::Nanos pending = busy_until_[m] > now ? busy_until_[m] - now : 0;
    const sim::Nanos score = pending + lat_ewma_[m];
    if (best == n || score < best_score ||
        (score == best_score &&
         members_[m]->stats().busy < members_[best]->stats().busy)) {
      best = m;
      best_score = score;
    }
  }
  return best;
}

void MirroredDevice::note_submission(std::size_t member, const Ticket& t) {
  busy_until_[member] = std::max(busy_until_[member], t.done);
}

void MirroredDevice::note_latency(std::size_t member, sim::Nanos sample) {
  if (sample < 0) sample = 0;
  // Read completions only (writes replicate to every member, so their
  // latency carries no routing signal and would just flatten the scale).
  // alpha = 1/8; seeded by the first observation so one slow replica is
  // visible immediately instead of being averaged up from zero.
  lat_ewma_[member] = lat_ewma_[member] == 0
                          ? sample
                          : lat_ewma_[member] - lat_ewma_[member] / 8 +
                                sample / 8;
}

void MirroredDevice::submit_writes(const std::vector<Bio*>& parents,
                                   MemberTickets& tickets,
                                   sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = members_.size();
  const bool deg = degraded();
  std::vector<std::vector<Bio>> copies(n);

  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = true;  // AND-ed with every replica below
    bool replicated = false;
    for (std::size_t m = 0; m < n; ++m) {
      if (!serves_writes(m)) continue;
      Bio& copy = copies[m].emplace_back(BioOp::Write);
      for (const BioVec& v : parent->vecs) copy.add_write(v.blockno, v.wdata);
      vstats_.replicated_writes += 1;
      replicated = true;
    }
    if (!replicated) parent->applied = false;  // no serving member left
    if (deg) vstats_.degraded_writes += 1;
    // Write-interception accounting: a write landing (partly) ahead of the
    // resync cursor reaches the rebuild target before the copy pass does.
    if (rebuild_active() && parent->end_block() > rebuild_cursor_) {
      vstats_.rebuild_write_intercepts += 1;
    }
  }

  // Hand each member its replica batch as ONE async submission, in member
  // order: every member elevator-sorts and merges its copy independently,
  // all replicas transfer concurrently in virtual time, and the caller
  // ends up holding every member's ticket at once.
  for (std::size_t m = 0; m < n; ++m) {
    if (copies[m].empty()) continue;
    const Ticket t = members_[m]->submit_async(copies[m]);
    tickets.emplace_back(m, t);
    note_submission(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < copies[m].size(); ++i) {
      Bio* parent = parents[i];
      parent->done_at = std::max(parent->done_at, copies[m][i].done_at);
      if (!copies[m][i].applied) parent->applied = false;
    }
  }
}

void MirroredDevice::submit_reads(const std::vector<Bio*>& parents,
                                  MemberTickets& tickets,
                                  sim::Nanos& last_done) {
  if (parents.empty()) return;
  const std::size_t n = members_.size();
  const bool deg = degraded();
  std::vector<std::vector<Bio>> frags(n);
  std::vector<std::vector<Bio*>> owners(n);  // aligned with frags[m]

  for (Bio* parent : parents) {
    assert(!parent->vecs.empty() && "submitting an empty bio");
    parent->done_at = 0;
    parent->applied = false;
    parent->io_error = false;
    const std::size_t m = pick_read_member(parent->first_block());
    if (m == n) {  // no healthy member: the volume cannot serve reads
      parent->io_error = true;
      parent->done_at = sim::now();
      continue;
    }
    last_read_end_[m] = parent->end_block();
    vstats_.balanced_reads += 1;
    if (deg) vstats_.degraded_reads += 1;
    Bio& frag = frags[m].emplace_back(BioOp::Read);
    owners[m].push_back(parent);
    for (const BioVec& v : parent->vecs) frag.add_read(v.blockno, v.data);
  }

  const sim::Nanos submitted_at = sim::now();
  for (std::size_t m = 0; m < n; ++m) {
    if (frags[m].empty()) continue;
    const Ticket t = members_[m]->submit_async(frags[m]);
    tickets.emplace_back(m, t);
    note_submission(m, t);
    last_done = std::max(last_done, t.done);
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      parent->done_at = std::max(parent->done_at, frags[m][i].done_at);
      parent->applied = frags[m][i].applied;
      parent->io_error = frags[m][i].io_error;
      note_latency(m, frags[m][i].done_at - submitted_at);
    }
  }

  // Read-error failover: a replica that failed a bio (injected medium
  // error) does not fail the volume — retry on each other healthy member
  // until one serves it. Media effects land at submission, so the outcome
  // is visible immediately and the retry queues behind what was already
  // submitted (the failed attempt still cost its service time).
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < frags[m].size(); ++i) {
      Bio* parent = owners[m][i];
      if (!parent->io_error) continue;
      for (std::size_t step = 1; step < n && parent->io_error; ++step) {
        const std::size_t alt = (m + step) % n;
        if (!healthy_[alt]) continue;
        vstats_.read_error_failovers += 1;
        vstats_.redirected_reads += 1;
        Bio retry(BioOp::Read);
        for (const BioVec& v : parent->vecs) retry.add_read(v.blockno, v.data);
        const Ticket t =
            members_[alt]->submit_async(std::span<Bio>(&retry, 1));
        tickets.emplace_back(alt, t);
        note_submission(alt, t);
        last_read_end_[alt] = parent->end_block();
        last_done = std::max(last_done, t.done);
        parent->done_at = std::max(parent->done_at, retry.done_at);
        parent->applied = retry.applied;
        parent->io_error = retry.io_error;
      }
    }
  }
}

MirroredDevice::MemberTickets MirroredDevice::route_batch(
    std::span<Bio* const> bios, sim::Nanos& last_done) {
  vstats_.batches += 1;
  vstats_.bios += bios.size();

  // Mirror the single-device queue's crash-count order: writes are counted
  // bio-by-bio in stable first-block order (see RequestQueue::dispatch),
  // so kill_after(n) selects the SAME n logical bios as on one device.
  std::vector<Bio*> writes, survivors, killed, reads;
  for (Bio* b : bios) {
    (b->op == BioOp::Write ? writes : reads).push_back(b);
  }
  std::stable_sort(writes.begin(), writes.end(),
                   [](const Bio* a, const Bio* b) {
                     return a->first_block() < b->first_block();
                   });
  bool fire = false;
  for (Bio* w : writes) {
    if (kill_armed_ && !fire) {
      if (kill_countdown_ == 0) fire = true;
      else kill_countdown_ -= 1;
    }
    (fire ? killed : survivors).push_back(w);
  }

  MemberTickets tickets;
  submit_writes(survivors, tickets, last_done);
  if (fire) {
    // Power dies across the whole volume AT THIS INSTANT: every member
    // swallows all later write commands and flushes, exactly when the
    // single-device countdown would flip dead_.
    volume_dead_ = true;
    kill_armed_ = false;
    for (auto& m : members_) m->power_off();
    submit_writes(killed, tickets, last_done);
  }
  submit_reads(reads, tickets, last_done);
  return tickets;
}

sim::Nanos MirroredDevice::submit_impl(std::span<Bio* const> bios) {
  if (bios.empty()) return sim::now();
  rebuild_poke(sim::now());
  sim::Nanos last_done = sim::now();
  MemberTickets tickets = route_batch(bios, last_done);
  for (auto& [m, t] : tickets) members_[m]->wait(t);
  sim::current().wait_until(last_done);
  return last_done;
}

Ticket MirroredDevice::submit_async_impl(std::span<Bio* const> bios) {
  if (bios.empty()) return Ticket{};
  rebuild_poke(sim::now());
  sim::Nanos last_done = sim::now();
  MemberTickets tickets = route_batch(bios, last_done);
  vstats_.async_batches += 1;
  const std::uint64_t id = next_ticket_++;
  outstanding_.emplace(id, std::move(tickets));
  vstats_.max_inflight =
      std::max<std::uint64_t>(vstats_.max_inflight, outstanding_.size());
  return Ticket{last_done, id};
}

sim::Nanos MirroredDevice::wait_impl(const Ticket& t) {
  if (!t.valid()) return sim::now();
  auto it = outstanding_.find(t.id);
  if (it != outstanding_.end()) {
    // Redeem every member ticket, INCLUDING those of a member that
    // fail-stopped after submission: its queue already dispatched the
    // batch, so fan-in just collects the completion times.
    for (auto& [m, mt] : it->second) members_[m]->wait(mt);
    outstanding_.erase(it);
  }
  sim::current().wait_until(t.done);  // redundant waits are harmless
  return t.done;
}

sim::Nanos MirroredDevice::flush_nowait_impl() {
  rebuild_poke(sim::now());
  // FLUSH every serving member in parallel; the volume's flush completes
  // when the slowest replica destages. A failed member is gone — it
  // neither receives nor acknowledges the FLUSH.
  sim::Nanos done = sim::now();
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (serves_writes(m)) done = std::max(done, members_[m]->flush_nowait());
  }
  return done;
}

void MirroredDevice::read_untimed(std::uint64_t blockno,
                                  std::span<std::byte> out) {
  std::size_t m = first_healthy();
  if (m == members_.size()) {
    // Every member fail-stopped: there is no live logical image to read.
    // A mid-resync target is the best stale copy; with none, fail loudly
    // rather than silently serving a frozen pre-failure replica.
    if (!rebuild_target_.has_value()) {
      throw std::logic_error("read_untimed on a mirror with no live member");
    }
    m = *rebuild_target_;
  }
  members_[m]->read_untimed(blockno, out);
}

void MirroredDevice::write_untimed(std::uint64_t blockno,
                                   std::span<const std::byte> in) {
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (serves_writes(m)) members_[m]->write_untimed(blockno, in);
  }
}

// ---- member failure + online rebuild ----

void MirroredDevice::fail_member(std::size_t i) {
  assert(i < members_.size());
  if (rebuild_target_ == i) abort_rebuild();
  healthy_[i] = false;
  // Rebuild with no healthy source left cannot make progress.
  if (rebuild_active() && first_healthy() == members_.size()) abort_rebuild();
}

void MirroredDevice::start_rebuild(std::size_t i) {
  assert(i < members_.size());
  assert(!healthy_[i] && "rebuilding a member that is already serving");
  assert(!rebuild_active() && "one rebuild at a time");
  if (first_healthy() == members_.size()) {
    throw std::logic_error("rebuild needs at least one healthy source");
  }
  rebuild_target_ = i;
  rebuild_cursor_ = 0;
  vstats_.rebuilds_started += 1;
  // The resync starts no earlier than now; its clock then advances as the
  // copy progresses (poked forward by foreground submissions).
  rebuild_thread_.wait_until(sim::now());
}

void MirroredDevice::rebuild_poke(sim::Nanos horizon) {
  if (!rebuild_active()) return;
  const sim::Nanos limit = horizon + mirror_.rebuild_lead;
  bool yielded = false;
  {
    sim::ScopedThread in(rebuild_thread_);
    while (rebuild_active() && rebuild_thread_.now() < limit) {
      rebuild_copy_step();
    }
    yielded = rebuild_active();
  }
  // Backpressure: the copy ran as far ahead of the poking thread as the
  // lead window allows and yields the device back to foreground I/O.
  if (yielded) vstats_.rebuild_throttle_yields += 1;
}

void MirroredDevice::rebuild_copy_step() {
  assert(rebuild_active());
  // Power died (the crash model cut the whole volume): resync writes
  // would be silently swallowed by the dead target, so a "completed"
  // rebuild could promote a bit-diverged replica. Abort instead.
  if (members_[*rebuild_target_]->dead()) {
    abort_rebuild();
    return;
  }
  const std::uint64_t n = std::min<std::uint64_t>(
      mirror_.rebuild_batch, nblocks() - rebuild_cursor_);
  if (n == 0) {
    complete_rebuild();
    return;
  }
  // Read the run from a healthy peer (timed on the rebuild clock, through
  // the member's queue — rebuild I/O competes for the member's channels).
  Bio read(BioOp::Read);
  for (std::uint64_t i = 0; i < n; ++i) {
    read.add_read(rebuild_cursor_ + i, rebuild_buf_[i]);
  }
  std::size_t src = first_healthy();
  members_[src]->submit(read);
  while (read.io_error) {
    // Source medium error: fall over to the next healthy peer; with no
    // peer left the resync cannot complete.
    std::size_t alt = members_.size();
    for (std::size_t m = src + 1; m < members_.size(); ++m) {
      if (healthy_[m]) {
        alt = m;
        break;
      }
    }
    if (alt == members_.size()) {
      abort_rebuild();
      return;
    }
    read.io_error = false;
    read.applied = false;
    src = alt;
    members_[src]->submit(read);
  }
  Bio write(BioOp::Write);
  for (std::uint64_t i = 0; i < n; ++i) {
    write.add_write(rebuild_cursor_ + i, rebuild_buf_[i]);
  }
  members_[*rebuild_target_]->submit(write);
  if (!write.applied) {  // target swallowed the copy (power death)
    abort_rebuild();
    return;
  }
  rebuild_cursor_ += n;
  vstats_.rebuild_copied += n;
  if (rebuild_cursor_ == nblocks()) complete_rebuild();
}

void MirroredDevice::complete_rebuild() {
  assert(rebuild_active());
  // Destage the target's write cache before declaring it in sync, then
  // promote it back to serving reads.
  const std::size_t t = *rebuild_target_;
  sim::current().wait_until(members_[t]->flush_nowait());
  healthy_[t] = true;
  rebuild_target_.reset();
  rebuild_cursor_ = nblocks();
  vstats_.rebuilds_completed += 1;
}

void MirroredDevice::abort_rebuild() {
  if (!rebuild_active()) return;
  rebuild_target_.reset();
  vstats_.rebuilds_aborted += 1;
}

void MirroredDevice::finish_rebuild() {
  if (!rebuild_active()) return;
  {
    sim::ScopedThread in(rebuild_thread_);
    while (rebuild_active()) rebuild_copy_step();
  }
  // Barrier: the caller observes the completed resync.
  sim::current().wait_until(rebuild_thread_.now());
}

// ---- crash model ----

void MirroredDevice::enable_crash_tracking() {
  for (auto& m : members_) m->enable_crash_tracking();
}

void MirroredDevice::kill_after(std::uint64_t n) {
  kill_armed_ = true;
  kill_countdown_ = n;
}

void MirroredDevice::power_off() {
  volume_dead_ = true;
  kill_armed_ = false;
  for (auto& m : members_) m->power_off();
}

bool MirroredDevice::dead() const {
  if (volume_dead_) return true;
  // Replicas die independently only through the whole-volume kill, so the
  // volume is dead when every member is (a single dead member would be a
  // fail_member'd one, which is degradation, not death).
  for (const auto& m : members_) {
    if (!m->dead()) return false;
  }
  return true;
}

void MirroredDevice::crash(double survive_p, sim::Rng& rng) {
  volume_dead_ = false;
  kill_armed_ = false;
  for (auto& m : members_) m->crash(survive_p, rng);
}

void MirroredDevice::inject_read_error(std::uint64_t blockno) {
  // Volume-level injection marks the block bad on EVERY replica (a truly
  // unreadable logical block); per-member injection — the interesting
  // fault for failover tests — goes through member(i).inject_read_error.
  for (auto& m : members_) m->inject_read_error(blockno);
}

std::uint64_t MirroredDevice::dirty_blocks() const {
  // Counts replica copies: N members with the same unflushed block report
  // N (each member's cache really holds one).
  std::uint64_t total = 0;
  for (const auto& m : members_) total += m->dirty_blocks();
  return total;
}

const DeviceStats& MirroredDevice::stats() const {
  // Live view re-aggregated per call, like StripedDevice::stats().
  agg_ = DeviceStats{};
  for (const auto& m : members_) {
    const DeviceStats& s = m->stats();
    agg_.reads += s.reads;
    agg_.writes += s.writes;
    agg_.flushes += s.flushes;
    agg_.blocks_destaged += s.blocks_destaged;
    agg_.busy += s.busy;
    agg_.read_requests += s.read_requests;
    agg_.write_requests += s.write_requests;
    agg_.merges += s.merges;
    agg_.seq_read_blocks += s.seq_read_blocks;
    agg_.read_errors += s.read_errors;
    agg_.max_request_blocks =
        std::max(agg_.max_request_blocks, s.max_request_blocks);
  }
  return agg_;
}

}  // namespace bsim::blk
