#include "blockdev/nvm.h"

#include <cassert>
#include <cstring>

#include "sim/thread.h"

namespace bsim::blk {

namespace {
constexpr std::size_t kLine = 64;

std::size_t lines(std::size_t n) { return (n + kLine - 1) / kLine; }

void charge_if_timed(sim::Nanos cost) {
  if (sim::current_or_null() != nullptr) sim::charge(cost);
}
}  // namespace

NvmRegion::NvmRegion(NvmParams params)
    : params_(params),
      working_(params.bytes, std::byte{0}),
      stable_(params.bytes, std::byte{0}) {}

void NvmRegion::write(std::size_t off, std::span<const std::byte> data) {
  assert(off + data.size() <= working_.size() && "NVM write out of range");
  charge_if_timed(static_cast<sim::Nanos>(lines(data.size())) *
                  params_.write_per_line);
  if (!data.empty()) {
    std::memcpy(working_.data() + off, data.data(), data.size());
    dirty_.emplace_back(off, data.size());
  }
  stats_.bytes_written += data.size();
}

void NvmRegion::read(std::size_t off, std::span<std::byte> out) const {
  assert(off + out.size() <= working_.size() && "NVM read out of range");
  charge_if_timed(static_cast<sim::Nanos>(lines(out.size())) *
                  params_.read_per_line);
  std::memcpy(out.data(), working_.data() + off, out.size());
}

void NvmRegion::persist_barrier() {
  // The drain stalls the issuing core; it is not timeshared away under
  // CPU contention, so model it as a wait.
  if (sim::current_or_null() != nullptr) sim::current().wait(params_.barrier);
  for (const auto& [off, len] : dirty_) {
    std::memcpy(stable_.data() + off, working_.data() + off, len);
  }
  dirty_.clear();
  stats_.barriers += 1;
}

void NvmRegion::crash() {
  for (const auto& [off, len] : dirty_) {
    std::memcpy(working_.data() + off, stable_.data() + off, len);
  }
  dirty_.clear();
}

}  // namespace bsim::blk
