// NVMe-like simulated block device (the paper's Samsung PM981 SSD).
//
// Data is stored for real (sparse, 4 KiB blocks) so file systems above it
// are functionally exercised; service times are charged to the current
// simulated thread. The device has:
//   - bounded internal parallelism (channels),
//   - distinct sequential vs random read service times,
//   - a volatile write cache: writes complete once transferred; they become
//     durable only on FLUSH (or forced destage when the cache fills),
//   - an explicit FLUSH whose cost grows with the dirty-block count.
// All timed I/O enters through the bio/request layer (blockdev/bio.h):
// RequestQueue::submit merges adjacent bios and dispatches each merged
// request to the earliest-free channel, so a batch overlaps up to
// `channels` requests in virtual time. The scalar read()/write() calls are
// one-bio wrappers kept for convenience.
// Crash tracking (for journal crash-consistency tests) can revert all
// non-durable writes, optionally keeping a caller-chosen subset to model
// partially persisted write caches.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/bio.h"
#include "blockdev/trace.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace bsim::blk {

using BlockData = std::array<std::byte, kBlockSize>;

struct DeviceParams {
  std::uint64_t nblocks = 262'144;  // 1 GiB default
  int channels = 8;                 // internal parallelism
  sim::Nanos read_lat_rand = sim::usec(80);  // 4 KiB random read, QD1
  sim::Nanos read_lat_seq = sim::usec(12);   // 4 KiB sequential read
  sim::Nanos write_xfer = sim::usec(6);      // transfer into write cache
  sim::Nanos flush_base = sim::usec(800);    // FLUSH on consumer NVMe (no PLP)
  sim::Nanos destage_per_block = sim::usec(9);  // per dirty block on FLUSH
  std::uint64_t write_cache_blocks = 4096;   // 16 MiB volatile cache
};

/// dm-flakey-style programmable fault schedule: the device alternates an
/// `up_interval` (healthy) and a `down_interval` (faulting) in virtual
/// time, starting up at arming time; while down, each bio independently
/// fails with probability `fail_p` under a seeded RNG. With both
/// intervals zero the schedule degenerates to pure per-op probability.
/// Scheduled failures are TRANSIENT (Bio::retryable), so they compose
/// with the request queue's RetryPolicy. Evaluated at the bio's predicted
/// channel-start time, so a retry backing off past the down window heals.
struct FaultSchedule {
  sim::Nanos up_interval = 0;
  sim::Nanos down_interval = 0;
  double fail_p = 1.0;
  std::uint64_t seed = 1;
};

struct DeviceStats {
  std::uint64_t reads = 0;    // blocks read
  std::uint64_t writes = 0;   // blocks written (write commands = bios)
  std::uint64_t flushes = 0;
  std::uint64_t blocks_destaged = 0;
  sim::Nanos busy = 0;
  // ---- request-level accounting (bio layer) ----
  std::uint64_t read_requests = 0;   // merged read commands issued
  std::uint64_t write_requests = 0;  // merged write commands issued
  std::uint64_t merges = 0;          // bios folded into a preceding request
  std::uint64_t seq_read_blocks = 0; // blocks priced at read_lat_seq
  std::uint64_t max_request_blocks = 0;  // largest merged request seen
  std::uint64_t read_errors = 0;     // read bios failed by injected errors
  std::uint64_t write_errors = 0;    // write bios failed by injected errors
  std::uint64_t transient_errors = 0;   // failures from inject_transient_errors
  std::uint64_t faults_scheduled = 0;   // failures from the fault schedule
  // ---- latency attribution (per op class) ----
  // Queue wait is Q→D (bio queued until its merged request starts on a
  // channel); service is D→C (channel occupancy of the request, charged
  // once per bio sharing it). Sampled per bio so merged bios each count.
  sim::LatencyHistogram read_wait;
  sim::LatencyHistogram write_wait;
  sim::LatencyHistogram read_service;
  sim::LatencyHistogram write_service;
  sim::LatencyHistogram flush_lat;   // FLUSH submit→complete (incl. barrier)
};

/// Accounting for the blk_plug-style submission plug (see BlockDevice::plug).
struct PlugStats {
  std::uint64_t plugs = 0;          // plug() .. unplug() windows opened
  std::uint64_t plugged_batches = 0;  // submit_async calls absorbed by a plug
  std::uint64_t plugged_bios = 0;     // bios accumulated across those calls
  std::uint64_t forced_flushes = 0;   // plug flushed early by a sync op
};

class BlockDevice {
 public:
  explicit BlockDevice(DeviceParams params);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  [[nodiscard]] std::uint64_t nblocks() const { return params_.nblocks; }
  [[nodiscard]] std::uint32_t block_size() const { return kBlockSize; }
  [[nodiscard]] virtual const DeviceStats& stats() const { return stats_; }
  [[nodiscard]] const DeviceParams& params() const { return params_; }
  [[nodiscard]] virtual std::uint64_t dirty_blocks() const {
    return dirty_.size();
  }

  // ---- fan-out introspection (striped volumes; see blockdev/striped.h) --
  /// Number of physical member devices behind this one (1 for a plain
  /// device). Per-device subsystems (the background flusher) size
  /// themselves by this.
  [[nodiscard]] virtual std::size_t fan_out() const { return 1; }
  /// Member device `i` (this device itself for a plain device).
  [[nodiscard]] virtual BlockDevice& fan_child(std::size_t i) {
    (void)i;
    return *this;
  }
  /// Which member device owns logical block `blockno` (0 for plain).
  [[nodiscard]] virtual std::size_t child_of(std::uint64_t blockno) const {
    (void)blockno;
    return 0;
  }
  /// Geometry hint for writeback clustering: the number of logical blocks
  /// in one full stripe row (`fan_out() * chunk_blocks` for a RAID0
  /// volume), or 0 when the device has no striping geometry. Consumers
  /// (the flusher's buffer drain, journal group commit) size contiguous
  /// runs to a multiple of this so every member receives a merged request
  /// instead of fragment slivers — the s_stripe mount hint in Linux terms.
  [[nodiscard]] virtual std::uint64_t stripe_width_blocks() const {
    return 0;
  }

  /// The device's request queue — the submission path every cache,
  /// journal, and async-syscall layer batches through. Plain devices
  /// only: a striped volume routes through submit()/submit_async(), which
  /// fan out to one queue per member device.
  [[nodiscard]] RequestQueue& queue() { return queue_; }

  /// Batched submission (timed). An open plug is flushed first (a
  /// synchronous submission is a barrier, like a blocking op flushing a
  /// blk_plug), then the batch dispatches through the device-specific
  /// path (submit_impl).
  sim::Nanos submit(std::span<Bio> bios);

  /// One-bio convenience over the batched submission.
  sim::Nanos submit(Bio& bio) { return submit(std::span<Bio>(&bio, 1)); }

  /// Non-barrier batched submission (QD>1). While a plug is open the
  /// batch is only ACCUMULATED: dispatch — and with it media effects,
  /// crash-model write counting, done_at and applied — is deferred to
  /// unplug(), which hands everything to one elevator pass with
  /// cross-batch merging. The caller must keep the bios alive until the
  /// plug closes and must not read done_at/applied before then. The
  /// returned ticket is redeemable either way (wait() on a still-plugged
  /// ticket flushes the plug first).
  Ticket submit_async(std::span<Bio> bios);
  sim::Nanos wait(const Ticket& t);

  // ---- request plugging (blk_plug) ----
  /// Open a plug: subsequent submit_async batches accumulate instead of
  /// dispatching, so several small submissions from one task (a flusher
  /// wake, a journal checkpoint) merge into one elevator pass. Nestable;
  /// only the outermost unplug() dispatches. A synchronous operation
  /// (submit / flush) flushes the accumulated batch early, preserving
  /// ordering, and leaves the plug open.
  void plug();
  /// Close the plug: dispatch everything accumulated as ONE batch and
  /// return its ticket (empty when nothing accumulated or still nested).
  Ticket unplug();
  [[nodiscard]] bool plugged() const { return plug_depth_ > 0; }
  [[nodiscard]] const PlugStats& plug_stats() const { return plug_stats_; }

  // ---- blktrace-style tracing (see blockdev/trace.h) ----
  /// Arm tracing on this device tree: allocate a shared ring of `capacity`
  /// events and register this device (and, for a volume, every member as
  /// "<name>/<i>") in its device table. Armed once, at mount time, by the
  /// "-o trace=N" mount option; re-arming replaces the previous tracer.
  /// Tracing never touches the simulated clock.
  void arm_trace(std::size_t capacity, const std::string& name = "dev");
  [[nodiscard]] Tracer* tracer() const { return tracer_.get(); }
  /// Emit one event against this device's slot (no-op when not traced).
  /// Journal layers use this for their stage events; the bio path emits
  /// through the same helper internally.
  void trace_event(TraceEv ev, std::uint64_t id, std::uint64_t block,
                   std::uint32_t nblocks, TraceOp op);
  /// Attach a (shared) tracer and register this device under `name`.
  /// Aggregate volumes override to also register every member device as
  /// "<name>/<i>". Public so a volume can install into BlockDevice-typed
  /// members; arm_trace is the normal entry point.
  virtual void install_tracer(const std::shared_ptr<Tracer>& t,
                              const std::string& name);

  /// Read one block into `out` (timed). One-bio convenience wrapper.
  void read(std::uint64_t blockno, std::span<std::byte> out);

  /// Write one block from `in` into the volatile write cache (timed).
  /// One-bio convenience wrapper.
  void write(std::uint64_t blockno, std::span<const std::byte> in);

  /// FUA write: one block forced to media before completion, bypassing
  /// the volatile cache (priced as the transfer plus the block's
  /// destage). Used for md-style metadata — a parity volume's
  /// write-intent bitmap — that must be durable BEFORE dependent writes
  /// are issued, without flushing the whole cache. Does not participate
  /// in the kill_after write-command count (it is volume-internal
  /// metadata, not a logical write), but a dead device still swallows it.
  sim::Nanos write_fua(std::uint64_t blockno, std::span<const std::byte> in);

  /// FLUSH: destage the write cache and make everything durable (timed).
  void flush();

  /// FLUSH without advancing the calling thread: applies all media/state
  /// effects and returns the absolute completion time. flush() is
  /// wait_until(flush_nowait()); a striped volume flushes its members in
  /// parallel by taking the max of their completions. An open plug is
  /// flushed first — a FLUSH barrier must cover plugged writes.
  sim::Nanos flush_nowait();

  /// Untimed access for mkfs-style tooling and tests.
  virtual void read_untimed(std::uint64_t blockno, std::span<std::byte> out);
  virtual void write_untimed(std::uint64_t blockno,
                             std::span<const std::byte> in);

  // ---- Crash simulation ----
  /// Start recording pre-images of non-durable writes.
  virtual void enable_crash_tracking();
  /// Kill the device after `n` more write commands: later writes and
  /// flushes are accepted (and timed) but never change media state — the
  /// instant-power-death model used by the torn-commit crash sweep.
  /// A write command is one *bio*: a multi-block bio applies atomically,
  /// but distinct bios in one batch can straddle the kill point.
  virtual void kill_after(std::uint64_t n);
  /// Immediate power death, no countdown: from now on writes and flushes
  /// are accepted (and timed) but never change media state. kill_after's
  /// arming reaches this state lazily at the (n+1)'th write command; an
  /// aggregate volume calls power_off on every member at its own counting
  /// point so the whole volume dies at one instant.
  virtual void power_off() { dead_ = true; }
  [[nodiscard]] virtual bool dead() const { return dead_; }
  // ---- Fault injection (member-failure fault model) ----
  /// Mark `blockno` unreadable: any read bio touching it fails with
  /// Bio::io_error set (no data transferred, full latency still charged —
  /// a medium error, not power loss). The mark persists until the block
  /// is successfully rewritten, like a remapped-on-write bad sector.
  /// Distinct from kill_after/power_off, which silently swallow WRITES.
  virtual void inject_read_error(std::uint64_t blockno) {
    bad_reads_.insert(blockno);
  }
  [[nodiscard]] std::size_t injected_read_errors() const {
    return bad_reads_.size();
  }
  /// Mark `blockno` unwritable: any write bio touching it fails with
  /// Bio::io_error set (full latency charged, no media change, dirty
  /// state untouched — the write never happened). Sticky — a failed
  /// sector stays failed — until clear_write_error removes the mark
  /// (tests model repair/remap explicitly). Not retryable: the request
  /// queue's retry policy only reissues transient failures.
  virtual void inject_write_error(std::uint64_t blockno) {
    bad_writes_.insert(blockno);
  }
  virtual void clear_write_error(std::uint64_t blockno) {
    bad_writes_.erase(blockno);
  }
  [[nodiscard]] std::size_t injected_write_errors() const {
    return bad_writes_.size();
  }
  /// Fail the next `k` bios (either direction) with a TRANSIENT error
  /// (Bio::retryable set), then heal — a controller hiccup rather than a
  /// medium defect. Counts down per bio, in dispatch order; an aggregate
  /// volume arms every member independently.
  virtual void inject_transient_errors(std::uint64_t k) {
    transient_remaining_ += k;
  }
  /// Arm the programmable fault schedule (see FaultSchedule). The up
  /// window starts now; re-arming replaces the previous schedule and
  /// reseeds the RNG. An aggregate volume arms every member with a seed
  /// derived per member, so replicas do not fail in lockstep.
  virtual void set_fault_schedule(const FaultSchedule& s);
  virtual void clear_fault_schedule() { fault_sched_armed_ = false; }
  /// Arm the request queue's transient-error retry policy (see
  /// RetryPolicy). An aggregate volume fans the policy to every member
  /// queue — retries happen where the fault fired, under the volume's
  /// routing.
  virtual void set_retry_policy(const RetryPolicy& p) {
    queue_.set_retry_policy(p);
  }

  /// Simulate power loss: every write since the last flush() is reverted,
  /// except that each non-durable block independently survives with
  /// probability `survive_p` (0 = lose all volatile state). Deterministic
  /// under the given rng. Clears the dirty set; the device is then "clean".
  virtual void crash(double survive_p, sim::Rng& rng);

 protected:
  /// For aggregate devices that expose the logical geometry in `params`
  /// but keep no backing store of their own (StripedDevice).
  struct NoBacking {};
  BlockDevice(DeviceParams params, NoBacking);

  // ---- device-specific submission paths ----
  // The public submit/submit_async/wait/flush_nowait entry points are
  // non-virtual so the plug logic applies uniformly; subclasses (striped /
  // mirrored volumes) override these impl hooks instead. The pointer-batch
  // shape lets a closing plug hand its accumulated bios over without
  // copying them.
  virtual sim::Nanos submit_impl(std::span<Bio* const> bios) {
    return queue_.submit(bios);
  }
  virtual Ticket submit_async_impl(std::span<Bio* const> bios) {
    return queue_.submit_async(bios);
  }
  virtual sim::Nanos wait_impl(const Ticket& t) { return queue_.wait(t); }
  virtual sim::Nanos flush_nowait_impl();

  /// First contact of a bio with this device's submission path: stamp
  /// queued_at (once — a volume stamps before fan-out and members keep the
  /// original time) and, when traced, assign a trace id and emit Q (plus X
  /// linking a fragment to its logical parent).
  void note_bio_queued(Bio& b);

  // ---- trace state (shared ring across a volume tree; see arm_trace) ----
  std::shared_ptr<Tracer> tracer_;
  std::uint16_t trace_dev_ = 0;  // this device's slot in the tracer

 private:
  friend class RequestQueue;

  /// Dispatch whatever the plug accumulated (one batch, one elevator
  /// pass) and resolve the synthetic tickets handed out meanwhile. Safe
  /// to call with nothing accumulated; leaves the plug depth unchanged.
  void flush_plug();

  BlockData& slot(std::uint64_t blockno);
  sim::Nanos service(sim::Nanos latency, sim::Nanos not_before = 0);
  /// Execute one merged request (same-op bios covering consecutive
  /// blocks): price it, occupy a channel, apply data. Returns the absolute
  /// completion time; does NOT wait (the queue owns the batch barrier).
  /// `start_out`, when non-null, receives the time the request began
  /// occupying its channel (completion minus service latency) — the D
  /// timestamp and the Q→D/D→C histogram split point. `not_before` delays
  /// the channel start (the retry path's virtual-time backoff).
  sim::Nanos do_request(std::span<Bio* const> bios,
                        sim::Nanos* start_out = nullptr,
                        sim::Nanos not_before = 0);
  /// Evaluate the fault model for one bio whose request starts at `at`:
  /// sticky per-block errors (direction-specific), then the transient
  /// countdown, then the fault schedule. Sets io_error (and retryable for
  /// the transient classes) and returns true when the bio must fail.
  bool fault_check(Bio& b, sim::Nanos at);
  [[nodiscard]] bool scheduled_fault_at(sim::Nanos at);
  /// Whether any fault source is armed — gates fault_check so the
  /// zero-fault path takes no new branches and consumes no RNG.
  [[nodiscard]] bool faults_armed() const {
    return !bad_reads_.empty() || !bad_writes_.empty() ||
           transient_remaining_ > 0 || fault_sched_armed_;
  }

  DeviceParams params_;
  std::vector<std::unique_ptr<BlockData>> blocks_;
  std::vector<sim::Nanos> channel_free_;
  // Non-durable blocks -> pre-image (only populated when crash tracking is
  // on; otherwise the map holds nullptr values and acts as a dirty set).
  std::unordered_map<std::uint64_t, std::unique_ptr<BlockData>> dirty_;
  std::unordered_set<std::uint64_t> bad_reads_;  // injected medium errors
  std::unordered_set<std::uint64_t> bad_writes_;  // injected write errors
  std::uint64_t transient_remaining_ = 0;  // inject_transient_errors countdown
  bool fault_sched_armed_ = false;
  FaultSchedule fault_sched_;
  sim::Nanos fault_sched_t0_ = 0;  // up window starts here
  sim::Rng fault_rng_{1};
  bool crash_tracking_ = false;
  bool dead_ = false;
  std::uint64_t kill_countdown_ = 0;
  bool kill_armed_ = false;
  std::uint64_t last_block_read_ = ~0ULL;
  DeviceStats stats_;
  // ---- plug state (see plug()/unplug()) ----
  int plug_depth_ = 0;
  std::vector<Bio*> plug_list_;                // accumulated, not dispatched
  std::vector<std::uint64_t> plug_pending_;    // synthetic ticket ids out
  std::unordered_map<std::uint64_t, Ticket> plug_resolved_;
  std::uint64_t next_plug_id_ = 1;
  PlugStats plug_stats_;
  RequestQueue queue_{*this};
};

}  // namespace bsim::blk
