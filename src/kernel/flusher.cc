#include "kernel/flusher.h"

#include <algorithm>

#include "kernel/vfs.h"
#include "sim/thread.h"

namespace bsim::kern {

Flusher::Flusher(SuperBlock& sb, FlusherParams params)
    : sb_(&sb), params_(params), thread_(-2) {
  // First periodic wake is one period after attach (mounts happen at
  // arbitrary virtual times), not at absolute time `period`.
  const sim::SimThread* t = sim::current_or_null();
  next_timer_ = (t != nullptr ? t->now() : 0) + params_.period;
}

bool Flusher::wake_due(const Inode* hint,
                       std::size_t page_threshold) const {
  if (hint != nullptr && page_threshold != 0 &&
      hint->mapping.nr_dirty() >= page_threshold) {
    return true;
  }
  if (params_.drain_buffers) {
    const BufferCache& bc = sb_->bufcache();
    const std::size_t limit =
        bc.capacity() > 0
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         static_cast<double>(bc.capacity()) *
                         params_.dirty_ratio))
            : params_.dirty_buffers_min;
    if (bc.nr_dirty() >= limit) return true;
  }
  return false;
}

void Flusher::poke(Inode* hint, std::size_t page_threshold) {
  if (running_) return;  // poked from flusher context; already draining
  stats_.pokes += 1;
  const bool timer_due = sim::now() >= next_timer_;
  const bool threshold = wake_due(hint, page_threshold);
  if (timer_due || threshold) {
    stats_.wakeups += 1;
    if (threshold) stats_.threshold_wakeups += 1;
    if (timer_due) stats_.timer_wakeups += 1;
    run_cycle(timer_due);
  }
  // Backpressure: bound how far in-flight background writeback may run
  // ahead of the writer. The flusher's clock is where its drains
  // complete; if that is more than max_backlog past the writer, the
  // dirty limit is hit and the writer waits until the backlog shrinks to
  // the window (throttling it to the drain rate at steady state).
  const sim::Nanos limit = sim::now() + params_.max_backlog;
  if (thread_.now() > limit) {
    const sim::Nanos resume = thread_.now() - params_.max_backlog;
    stats_.throttle_waits += 1;
    stats_.throttled += resume - sim::now();
    sim::current().wait_until(resume);
  }
}

void Flusher::run_cycle(bool timer_due) {
  // A wake drains everything dirty (hint-first ordering would only
  // reorder within one already-off-writer-clock cycle).
  const sim::Nanos wake_at = sim::now();
  running_ = true;
  {
    // Everything below charges the flusher's clock, not the writer's: the
    // drain starts at the poke (or later, if a previous cycle is still
    // "running" in virtual time — its clock is already past the poke).
    sim::ScopedThread in(thread_);
    thread_.wait_until(wake_at);

    // Pages first: collect the dirty inodes, then push each through its
    // file system's normal writeback path (batched ->writepages where
    // supported). Collecting first keeps the walk stable if FS code
    // touches the inode cache mid-drain.
    std::vector<Inode*> dirty;
    sb_->for_each_inode([&dirty](Inode& inode) {
      if (inode.type == FileType::Regular && inode.aops != nullptr &&
          inode.mapping.nr_dirty() > 0) {
        dirty.push_back(&inode);
      }
    });
    for (Inode* inode : dirty) {
      const std::size_t before = inode->mapping.nr_dirty();
      if (generic_writeback(*inode) != Err::Ok) {
        // Background writeback has no caller to report to; the pages that
        // failed stay dirty and will be retried (or surface the error on
        // the foreground fsync path).
        stats_.errors += 1;
      }
      stats_.pages_flushed += before - inode->mapping.nr_dirty();
    }

    // Then buffers: one elevator-sorted pass through the async request
    // path, several batches in flight across the device channels.
    if (params_.drain_buffers && sb_->bufcache().nr_dirty() > 0) {
      stats_.buffers_flushed += sb_->bufcache().flush_dirty_async(
          params_.max_batch, params_.queue_depth);
    }
  }
  running_ = false;
  if (timer_due) next_timer_ = wake_at + params_.period;
}

void Flusher::wait_idle() { sim::current().wait_until(thread_.now()); }

void maybe_attach_flusher(SuperBlock& sb, std::string_view opts,
                          FlusherParams params) {
  if (opts.find("noflusher") != std::string_view::npos) return;
  sb.attach_flusher(std::make_unique<Flusher>(sb, params));
}

}  // namespace bsim::kern
