#include "kernel/flusher.h"

#include <algorithm>

#include "kernel/vfs.h"
#include "sim/thread.h"

namespace bsim::kern {

Flusher::Flusher(SuperBlock& sb, FlusherParams params, std::size_t shard,
                 std::size_t nshards)
    : sb_(&sb),
      params_(params),
      shard_(shard),
      nshards_(std::max<std::size_t>(nshards, 1)),
      thread_(-2 - static_cast<int>(shard)) {
  // First periodic wake is one period after attach (mounts happen at
  // arbitrary virtual times), not at absolute time `period`.
  const sim::SimThread* t = sim::current_or_null();
  next_timer_ = (t != nullptr ? t->now() : 0) + params_.period;
}

bool Flusher::owns(const Inode& inode) const {
  return nshards_ <= 1 || inode.ino() % nshards_ == shard_;
}

std::size_t Flusher::shard_buffer_limit() const {
  const BufferCache& bc = sb_->bufcache();
  const std::size_t whole =
      bc.capacity() > 0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       static_cast<double>(bc.capacity()) *
                       params_.dirty_ratio))
          : params_.dirty_buffers_min;
  // Per member device, the trigger is its proportional share of the
  // volume-wide limit, so an N-way volume wakes at the same aggregate
  // dirty population as one device would.
  return std::max<std::size_t>(1, whole / nshards_);
}

bool Flusher::wake_due(const Inode* hint,
                       std::size_t page_threshold) const {
  if (hint != nullptr && page_threshold != 0 && owns(*hint) &&
      hint->mapping.nr_dirty() >= page_threshold) {
    return true;
  }
  if (params_.drain_buffers) {
    const BufferCache& bc = sb_->bufcache();
    const std::size_t dirty =
        nshards_ > 1 ? bc.nr_dirty_shard(shard_) : bc.nr_dirty();
    if (dirty >= shard_buffer_limit()) return true;
  }
  return false;
}

void Flusher::poke(Inode* hint, std::size_t page_threshold) {
  if (running_) return;  // poked from flusher context; already draining
  stats_.pokes += 1;
  const bool timer_due = sim::now() >= next_timer_;
  const bool threshold = wake_due(hint, page_threshold);
  if (timer_due || threshold) {
    stats_.wakeups += 1;
    if (threshold) stats_.threshold_wakeups += 1;
    if (timer_due) stats_.timer_wakeups += 1;
    run_cycle(timer_due);
  }
  // Backpressure: bound how far in-flight background writeback may run
  // ahead of the writer. The flusher's clock is where its drains
  // complete; if that is more than max_backlog past the writer, the
  // dirty limit is hit and the writer waits until the backlog shrinks to
  // the window (throttling it to the drain rate at steady state).
  // On a striped volume only the flusher that OWNS the writer's inode
  // may throttle it: courtesy pokes (no hint, or another shard's inode)
  // wake drains but never charge this writer an unowned member's
  // backlog — backpressure stays per device.
  if (nshards_ > 1 && (hint == nullptr || !owns(*hint))) return;
  const sim::Nanos limit = sim::now() + params_.max_backlog;
  if (thread_.now() > limit) {
    const sim::Nanos resume = thread_.now() - params_.max_backlog;
    stats_.throttle_waits += 1;
    stats_.throttled += resume - sim::now();
    sim::current().wait_until(resume);
  }
}

void Flusher::run_cycle(bool timer_due) {
  // A wake drains everything dirty (hint-first ordering would only
  // reorder within one already-off-writer-clock cycle).
  const sim::Nanos wake_at = sim::now();
  running_ = true;
  {
    // Everything below charges the flusher's clock, not the writer's: the
    // drain starts at the poke (or later, if a previous cycle is still
    // "running" in virtual time — its clock is already past the poke).
    sim::ScopedThread in(thread_);
    thread_.wait_until(wake_at);

    // Pages first: collect THIS shard's dirty inodes off the superblock's
    // dirty-inode list (O(dirty), not a full inode-cache walk), then push
    // each through its file system's normal writeback path (batched
    // ->writepages where supported). Collecting first keeps the walk
    // stable if FS code touches the inode cache mid-drain.
    std::vector<Inode*> dirty;
    sb_->collect_dirty_inodes(shard_, nshards_, dirty,
                              stats_.inodes_scanned);
    for (Inode* inode : dirty) {
      const std::size_t before = inode->mapping.nr_dirty();
      if (generic_writeback(*inode) != Err::Ok) {
        // Background writeback has no caller to report to; the pages that
        // failed stay dirty and will be retried (or surface the error on
        // the foreground fsync path).
        stats_.errors += 1;
      }
      stats_.pages_flushed += before - inode->mapping.nr_dirty();
    }

    // Then buffers — this shard's share only: one elevator-sorted pass
    // through the async request path, several batches in flight across
    // the member device's channels.
    const std::size_t shard_dirty =
        nshards_ > 1 ? sb_->bufcache().nr_dirty_shard(shard_)
                     : sb_->bufcache().nr_dirty();
    if (params_.drain_buffers && shard_dirty > 0) {
      stats_.buffers_flushed += sb_->bufcache().flush_dirty_async(
          params_.max_batch, params_.queue_depth, shard_, nshards_,
          params_.use_plug);
    }
  }
  running_ = false;
  // thread_.now() is where this cycle's writeback completed (it never
  // moves backwards, so a no-work wake records the residual backlog of
  // the previous cycle — 0 once the device is idle).
  stats_.wake_to_drain.record(thread_.now() - wake_at);
  if (timer_due) next_timer_ = wake_at + params_.period;
}

void Flusher::wait_idle() { sim::current().wait_until(thread_.now()); }

void maybe_attach_flusher(SuperBlock& sb, std::string_view opts,
                          FlusherParams params) {
  if (opts.find("noflusher") != std::string_view::npos) return;
  if (opts.find("noplug") != std::string_view::npos) params.use_plug = false;
  // One flusher per member device: a plain device gets one; a striped
  // volume gets fan_out() of them, each owning one member's writeback
  // and backpressure.
  const std::size_t n = sb.bdev().fan_out();
  for (std::size_t i = 0; i < n; ++i) {
    sb.attach_flusher(std::make_unique<Flusher>(sb, params, i, n));
  }
}

}  // namespace bsim::kern
