// The kernel facade: registered file system types, block devices, the
// mount table, processes with file descriptor tables, and the syscall
// surface the workloads drive. Every syscall charges the user/kernel
// crossing and VFS dispatch costs from the cost model.
//
// Block devices are exposed as "/dev/<name>" files so a userspace file
// system daemon (the FUSE deployment, §6.2) can open its backing disk with
// O_DIRECT exactly like the paper's baseline does.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "blockdev/device.h"
#include "blockdev/mirrored.h"
#include "blockdev/parity.h"
#include "blockdev/striped.h"
#include "kernel/vfs.h"

namespace bsim::kern {

class Kernel;

/// One open file description.
struct OpenFile {
  SuperBlock* sb = nullptr;
  Inode* inode = nullptr;       // null for device files
  blk::BlockDevice* bdev = nullptr;  // set for /dev files
  FileHandle fh;
  std::uint64_t pos = 0;
  int flags = 0;
};

/// A process: a file-descriptor table.
class Process {
 public:
  explicit Process(Kernel& k) : kernel_(&k) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Kernel& kernel() { return *kernel_; }

 private:
  friend class Kernel;
  Kernel* kernel_;
  std::vector<std::unique_ptr<OpenFile>> fds_;
};

enum class Whence { Set, Cur, End };

class Kernel {
 public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- configuration (not syscalls; untimed) ----
  void register_fs(std::unique_ptr<FileSystemType> type);
  [[nodiscard]] FileSystemType* fs_type(std::string_view name);
  blk::BlockDevice& add_device(std::string name, blk::DeviceParams params);
  /// Register a prebuilt (possibly aggregate) device under `name`.
  blk::BlockDevice& add_device(std::string name,
                               std::unique_ptr<blk::BlockDevice> dev);
  /// Build a striped volume of `sp.ndevices` members (each shaped by
  /// `child_params`; nblocks is PER MEMBER) and expose it as one device —
  /// any registered file system mounts on it unchanged.
  blk::StripedDevice& add_striped_device(std::string name,
                                         blk::StripeParams sp,
                                         blk::DeviceParams child_params);
  /// Build an N-way RAID1 mirror (`member_params.nblocks` is both the
  /// member and the volume size) and expose it as one device.
  blk::MirroredDevice& add_mirrored_device(std::string name,
                                           blk::MirrorParams mp,
                                           blk::DeviceParams member_params);
  /// Build a RAID5 parity volume of pp.ndata + 1 members
  /// (`params.nblocks` is the LOGICAL size; member sizing — plus the
  /// intent-bitmap block — is derived) and expose it as one device.
  blk::ParityDevice& add_parity_device(std::string name, blk::ParityParams pp,
                                       blk::DeviceParams params);
  /// Build the volume a (stripe, mirror) selection describes: plain
  /// device, RAID0 stripe, RAID1 mirror, or RAID10 (a stripe of mirrors;
  /// `params.nblocks` is the LOGICAL volume size, split across stripes).
  blk::BlockDevice& add_volume(std::string name,
                               std::optional<blk::StripeParams> sp,
                               std::optional<blk::MirrorParams> mp,
                               blk::DeviceParams params);
  /// Same, with RAID5 in the selection: parity beats mirror; parity plus
  /// stripe builds RAID50 (a stripe of parity volumes).
  blk::BlockDevice& add_volume(std::string name,
                               std::optional<blk::StripeParams> sp,
                               std::optional<blk::MirrorParams> mp,
                               std::optional<blk::ParityParams> pp,
                               blk::DeviceParams params);
  [[nodiscard]] blk::BlockDevice* device(std::string_view name);
  /// Reverse lookup (used by drivers that need the /dev path of a device).
  [[nodiscard]] std::string device_name_of(const blk::BlockDevice* dev) const;
  [[nodiscard]] SuperBlock* sb_at(std::string_view mountpoint);
  [[nodiscard]] Process& proc() { return *default_proc_; }
  std::unique_ptr<Process> new_process();

  // ---- mount management ----
  Err mount(std::string_view fstype, std::string_view devname,
            std::string_view mountpoint, std::string_view opts = "");
  Err umount(std::string_view mountpoint);

  // ---- syscalls ----
  Result<int> open(Process& p, std::string_view path, int flags,
                   std::uint32_t mode = 0644);
  Err close(Process& p, int fd);
  Result<std::uint64_t> read(Process& p, int fd, std::span<std::byte> out);
  Result<std::uint64_t> write(Process& p, int fd,
                              std::span<const std::byte> in);
  Result<std::uint64_t> pread(Process& p, int fd, std::span<std::byte> out,
                              std::uint64_t off);
  Result<std::uint64_t> pwrite(Process& p, int fd,
                               std::span<const std::byte> in,
                               std::uint64_t off);
  Result<std::uint64_t> lseek(Process& p, int fd, std::int64_t off,
                              Whence whence);
  Err fsync(Process& p, int fd, bool datasync = false);
  Err mkdir(Process& p, std::string_view path, std::uint32_t mode = 0755);
  Err unlink(Process& p, std::string_view path);
  Err rmdir(Process& p, std::string_view path);
  Err rename(Process& p, std::string_view from, std::string_view to);
  Result<Stat> stat(Process& p, std::string_view path);
  Err truncate(Process& p, std::string_view path, std::uint64_t size);
  Result<std::vector<DirEnt>> readdir(Process& p, std::string_view path);
  Result<StatFs> statfs(Process& p, std::string_view path);
  Err sync(Process& p);

  /// Resolve a path to a referenced inode (internal + test use; timed).
  Result<Inode*> resolve(std::string_view path, SuperBlock** sb_out = nullptr);

  // ---- unified stats snapshot (untimed; see kernel/stats_snapshot.cc) ----
  /// One JSON document covering every device tree (DeviceStats with
  /// latency histograms, RequestQueueStats, PlugStats, volume stats) and
  /// every mount (buffer cache, page cache, flushers, plus whatever the
  /// file system registered via SuperBlock::register_stats).
  [[nodiscard]] std::string dump_stats();
  /// Same, written to `path` (bench exit hook).
  Err dump_stats_to(const std::string& path);

 private:
  // IoUring executes batched ops through the private file helpers so it
  // pays per-SQE dispatch instead of a full syscall per op (see uring.h).
  friend class IoUring;

  struct Mount {
    std::string mountpoint;
    SuperBlock* sb = nullptr;
    FileSystemType* type = nullptr;
    std::string devname;
  };

  struct PathTarget {
    SuperBlock* sb = nullptr;
    Inode* dir = nullptr;      // referenced parent inode
    std::string last;          // final component
  };

  void charge_syscall();
  Result<Mount*> mount_for(std::string_view path, std::string_view* rest);
  /// Walk to the parent of the final component. Caller iputs `dir`.
  Result<PathTarget> walk_parent(std::string_view path);
  /// Walk the full path to an inode (referenced).
  Result<Inode*> walk_full(std::string_view path, SuperBlock** sb_out);
  Result<OpenFile*> file_for(Process& p, int fd);
  /// fsync(2) body, minus the syscall charge (shared with IoUring).
  Err do_fsync(OpenFile& f, bool datasync);
  Result<std::uint64_t> file_read(OpenFile& f, std::span<std::byte> out,
                                  std::uint64_t off);
  Result<std::uint64_t> file_write(OpenFile& f, std::span<const std::byte> in,
                                   std::uint64_t off);
  Result<std::uint64_t> bdev_read(OpenFile& f, std::span<std::byte> out,
                                  std::uint64_t off);
  Result<std::uint64_t> bdev_write(OpenFile& f, std::span<const std::byte> in,
                                   std::uint64_t off);

  std::unordered_map<std::string, std::unique_ptr<FileSystemType>> fs_types_;
  std::unordered_map<std::string, std::unique_ptr<blk::BlockDevice>> devices_;
  std::vector<Mount> mounts_;  // kept sorted by mountpoint length, desc
  std::unique_ptr<Process> default_proc_;
};

}  // namespace bsim::kern
