#include "kernel/uring.h"

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

IoUring::IoUring(Kernel& kernel, Process& proc, unsigned sq_entries)
    : kernel_(&kernel), proc_(&proc), sq_entries_(sq_entries) {}

Err IoUring::push(Sqe sqe) {
  if (sq_.size() >= sq_entries_) return Err::Again;  // SQ full: submit first
  sq_.push_back(sqe);
  return Err::Ok;
}

Err IoUring::prep_read(int fd, std::span<std::byte> out, std::uint64_t off,
                       std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Read;
  sqe.fd = fd;
  sqe.off = off;
  sqe.read_buf = out;
  sqe.user_data = user_data;
  return push(sqe);
}

Err IoUring::prep_write(int fd, std::span<const std::byte> in,
                        std::uint64_t off, std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Write;
  sqe.fd = fd;
  sqe.off = off;
  sqe.write_buf = in;
  sqe.user_data = user_data;
  return push(sqe);
}

Err IoUring::prep_fsync(int fd, bool datasync, std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Fsync;
  sqe.fd = fd;
  sqe.datasync = datasync;
  sqe.user_data = user_data;
  return push(sqe);
}

Result<unsigned> IoUring::submit() {
  // One crossing for the whole batch — the io_uring_enter(2) trap.
  sim::charge(sim::costs().syscall);
  stats_.enters += 1;

  unsigned consumed = 0;
  while (!sq_.empty()) {
    const Sqe sqe = sq_.front();
    sq_.pop_front();
    consumed += 1;
    stats_.sqes += 1;

    // Kernel-side SQE fetch + dispatch: cheaper than a trap + full VFS
    // dispatch, but not free.
    sim::charge(sim::costs().uring_sqe_dispatch);

    Cqe cqe;
    cqe.user_data = sqe.user_data;
    auto f = kernel_->file_for(*proc_, sqe.fd);
    if (!f.ok()) {
      cqe.err = f.error();
      cq_.push_back(cqe);
      continue;
    }
    OpenFile& of = *f.value();
    switch (sqe.op) {
      case Sqe::Op::Read: {
        auto r = of.bdev != nullptr
                     ? kernel_->bdev_read(of, sqe.read_buf, sqe.off)
                     : kernel_->file_read(of, sqe.read_buf, sqe.off);
        if (r.ok()) {
          cqe.res = r.value();
        } else {
          cqe.err = r.error();
        }
        break;
      }
      case Sqe::Op::Write: {
        auto r = of.bdev != nullptr
                     ? kernel_->bdev_write(of, sqe.write_buf, sqe.off)
                     : kernel_->file_write(of, sqe.write_buf, sqe.off);
        if (r.ok()) {
          cqe.res = r.value();
        } else {
          cqe.err = r.error();
        }
        break;
      }
      case Sqe::Op::Fsync:
        cqe.err = kernel_->do_fsync(of, sqe.datasync);
        break;
    }
    cq_.push_back(cqe);
  }
  return consumed;
}

std::optional<Cqe> IoUring::pop_cqe() {
  if (cq_.empty()) return std::nullopt;
  sim::charge(sim::costs().uring_cqe_pop);
  stats_.cqes += 1;
  const Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

}  // namespace bsim::kern
