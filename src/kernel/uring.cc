#include "kernel/uring.h"

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

IoUring::IoUring(Kernel& kernel, Process& proc, unsigned sq_entries)
    : kernel_(&kernel), proc_(&proc), sq_entries_(sq_entries) {}

Err IoUring::push(Sqe sqe) {
  if (sq_.size() >= sq_entries_) return Err::Again;  // SQ full: submit first
  sq_.push_back(sqe);
  return Err::Ok;
}

Err IoUring::prep_read(int fd, std::span<std::byte> out, std::uint64_t off,
                       std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Read;
  sqe.fd = fd;
  sqe.off = off;
  sqe.read_buf = out;
  sqe.user_data = user_data;
  return push(sqe);
}

Err IoUring::prep_write(int fd, std::span<const std::byte> in,
                        std::uint64_t off, std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Write;
  sqe.fd = fd;
  sqe.off = off;
  sqe.write_buf = in;
  sqe.user_data = user_data;
  return push(sqe);
}

Err IoUring::prep_fsync(int fd, bool datasync, std::uint64_t user_data) {
  Sqe sqe;
  sqe.op = Sqe::Op::Fsync;
  sqe.fd = fd;
  sqe.datasync = datasync;
  sqe.user_data = user_data;
  return push(sqe);
}

void IoUring::wait_inflight(std::vector<InflightRun>& inflight) {
  for (const InflightRun& run : inflight) run.dev->wait(run.ticket);
  inflight.clear();
}

unsigned IoUring::drain_bdev_run(const Sqe& first, OpenFile& of,
                                 std::vector<InflightRun>& inflight) {
  // Gather the run of consecutive SQEs with the same op on the same
  // block-device fd and submit them as ONE batch: the request queue
  // merges adjacent blocks and spreads the rest across device channels,
  // so an SQ drain amortizes device submission as well as crossings.
  std::vector<Sqe> run{first};
  while (!sq_.empty() && sq_.front().op == first.op &&
         sq_.front().fd == first.fd) {
    run.push_back(sq_.front());
    sq_.pop_front();
  }

  auto& dev = *of.bdev;
  std::vector<blk::Bio> bios;
  std::vector<Cqe> cqes(run.size());
  bios.reserve(run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (i > 0) sim::charge(sim::costs().uring_sqe_dispatch);
    const Sqe& sqe = run[i];
    cqes[i].user_data = sqe.user_data;
    const std::span<const std::byte> wbuf = sqe.write_buf;
    const std::span<std::byte> rbuf = sqe.read_buf;
    const std::size_t len =
        sqe.op == Sqe::Op::Read ? rbuf.size() : wbuf.size();
    if (sqe.off % dev.block_size() != 0 || len % dev.block_size() != 0) {
      cqes[i].err = Err::Inval;  // O_DIRECT alignment, per SQE
      continue;
    }
    sim::charge(sim::costs().user_blockio_extra);
    blk::Bio bio(sqe.op == Sqe::Op::Read ? blk::BioOp::Read
                                         : blk::BioOp::Write);
    for (std::uint64_t done = 0; done < len; done += dev.block_size()) {
      const std::uint64_t blockno = (sqe.off + done) / dev.block_size();
      if (sqe.op == Sqe::Op::Read) {
        bio.add_read(blockno, rbuf.subspan(static_cast<std::size_t>(done),
                                           dev.block_size()));
      } else {
        bio.add_write(blockno, wbuf.subspan(static_cast<std::size_t>(done),
                                            dev.block_size()));
      }
    }
    if (bio.empty()) {
      cqes[i].res = 0;
      continue;
    }
    bios.push_back(std::move(bio));
    cqes[i].res = len;
  }
  stats_.bdev_batches += bios.size() > 1 ? 1 : 0;
  if (!bios.empty()) {
    // Async submission: this run's requests stay in flight while the SQ
    // drain continues, so consecutive runs (different ops or fds) overlap
    // across the device channels — QD>1 from one submitting thread. The
    // barrier is wait_inflight(), before any ordering-sensitive SQE and
    // before io_uring_enter returns. The bios move into the inflight
    // record: a plugged device may defer dispatch and keep pointers into
    // them until its plug closes.
    const blk::Ticket t = dev.submit_async(bios);
    inflight.push_back(InflightRun{&dev, t, std::move(bios)});
    stats_.async_runs += 1;
    stats_.max_inflight_runs =
        std::max<std::uint64_t>(stats_.max_inflight_runs, inflight.size());
  }
  for (const Cqe& cqe : cqes) cq_.push_back(cqe);
  stats_.sqes += run.size() - 1;  // caller counts the first
  return static_cast<unsigned>(run.size() - 1);
}

Result<unsigned> IoUring::submit() {
  // One crossing for the whole batch — the io_uring_enter(2) trap.
  sim::charge(sim::costs().syscall);
  stats_.enters += 1;

  unsigned consumed = 0;
  std::vector<InflightRun> inflight;
  while (!sq_.empty()) {
    const Sqe sqe = sq_.front();
    sq_.pop_front();
    consumed += 1;
    stats_.sqes += 1;

    // Kernel-side SQE fetch + dispatch: cheaper than a trap + full VFS
    // dispatch, but not free.
    sim::charge(sim::costs().uring_sqe_dispatch);

    Cqe cqe;
    cqe.user_data = sqe.user_data;
    auto f = kernel_->file_for(*proc_, sqe.fd);
    if (!f.ok()) {
      cqe.err = f.error();
      cq_.push_back(cqe);
      continue;
    }
    OpenFile& of = *f.value();
    if (of.bdev != nullptr &&
        (sqe.op == Sqe::Op::Read || sqe.op == Sqe::Op::Write)) {
      consumed += drain_bdev_run(sqe, of, inflight);
      continue;
    }
    // Ordering-sensitive SQE (fsync, or a file op that may touch the same
    // blocks through a file system): complete all in-flight bdev runs
    // before it executes.
    wait_inflight(inflight);
    switch (sqe.op) {
      case Sqe::Op::Read: {
        auto r = kernel_->file_read(of, sqe.read_buf, sqe.off);
        if (r.ok()) {
          cqe.res = r.value();
        } else {
          cqe.err = r.error();
        }
        break;
      }
      case Sqe::Op::Write: {
        auto r = kernel_->file_write(of, sqe.write_buf, sqe.off);
        if (r.ok()) {
          cqe.res = r.value();
        } else {
          cqe.err = r.error();
        }
        break;
      }
      case Sqe::Op::Fsync:
        cqe.err = kernel_->do_fsync(of, sqe.datasync);
        break;
    }
    cq_.push_back(cqe);
  }
  wait_inflight(inflight);
  return consumed;
}

std::optional<Cqe> IoUring::pop_cqe() {
  if (cq_.empty()) return std::nullopt;
  sim::charge(sim::costs().uring_cqe_pop);
  stats_.cqes += 1;
  const Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

}  // namespace bsim::kern
