// Background writeback: a per-device flusher thread (pdflush / the
// per-bdi flusher in Linux terms) that drains dirty pages and dirty
// buffers OFF the writer's clock.
//
// Before this existed, every sync ran in writer context at queue depth 1:
// generic_file_write did its own threshold writeback, and fsync paths
// paid sync_all inline. The flusher moves the steady-state draining to a
// dedicated simulated thread per device:
//
//   - Writers poke() it from the generic write path (the
//     balance_dirty_pages hook). The flusher decides whether to wake —
//     an inode crossed its dirty-page threshold, the buffer cache
//     crossed its dirty ratio, or the kupdated-style periodic timer
//     expired — and, if so, drains on ITS OWN virtual clock. The writer
//     is not charged; the device channels are occupied at flusher time,
//     so foreground I/O submitted meanwhile queues behind it exactly as
//     real background writeback competes for the device.
//   - Dirty pages drain through the file system's normal ->writepages
//     path (generic_writeback), so journaling semantics are unchanged —
//     the work just happens on the flusher thread.
//   - Dirty buffers drain in large elevator-sorted batches through the
//     request queue's ASYNC path (BufferCache::flush_dirty_async), with
//     several batches in flight across the device channels (QD>1).
//   - Durability barriers (fsync / sync(2)) call wait_idle() so the
//     foreground thread cannot observe "durable" at a clock earlier than
//     the background writeback it depends on. Device FLUSH additionally
//     barriers on all channels, covering flusher-issued transfers.
//
// Determinism: the simulation is sequential — poke() runs the drain
// inline (on a different clock), at program points that are a
// deterministic function of the workload. Crash-sweep tests therefore
// stay reproducible; media write order is program order, as before.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "sim/thread.h"
#include "sim/time.h"

namespace bsim::kern {

class Inode;
class SuperBlock;

struct FlusherParams {
  /// Drain when an inode accumulates this many dirty pages (the trigger
  /// that used to run writeback in writer context).
  std::size_t dirty_pages_threshold = 256;
  /// Drain when the buffer cache's dirty fraction exceeds this (of its
  /// capacity, for bounded caches).
  double dirty_ratio = 0.10;
  /// Absolute dirty-buffer trigger for unbounded caches (capacity 0).
  std::size_t dirty_buffers_min = 1024;
  /// kupdated-style periodic writeback: a poke after this much virtual
  /// time drains everything even below the thresholds.
  sim::Nanos period = 30 * sim::kMillisecond;
  /// Backpressure (the dirty-limit half of balance_dirty_pages): the
  /// writer may run at most this much virtual time ahead of the
  /// background writeback it triggered. Within the window, writes
  /// complete at memory speed and drains pipeline with foreground work;
  /// once the device falls further behind, the writer is throttled to
  /// the drain rate — so steady-state buffered-write throughput stays
  /// device-bound (with a bounded in-flight bonus) instead of becoming
  /// an unbounded-dirty-memory measurement.
  sim::Nanos max_backlog = 16 * sim::kMillisecond;
  /// Buffers per async submission when draining the buffer cache.
  std::size_t max_batch = 256;
  /// Async batches kept in flight while draining buffers (QD>1).
  std::size_t queue_depth = 4;
  /// Whether to drain the buffer cache at all. Journaling file systems
  /// that must order metadata behind their journal manage buffer
  /// writeback themselves and leave this off. (Journal-pinned buffers
  /// are skipped by the drain either way; see BufferHead::jdirty.)
  bool drain_buffers = false;
  /// Drain the buffer batches under one request plug (one cross-batch
  /// merged elevator pass per wake) instead of QD>1 ticket juggling.
  /// "-o noplug" turns this off (the ablation escape hatch).
  bool use_plug = true;
};

struct FlusherStats {
  std::uint64_t pokes = 0;              // writer-side hook invocations
  std::uint64_t wakeups = 0;            // pokes that drained something
  std::uint64_t threshold_wakeups = 0;  // woken by a dirty threshold
  std::uint64_t timer_wakeups = 0;      // woken by the periodic timer
  std::uint64_t pages_flushed = 0;
  std::uint64_t buffers_flushed = 0;
  std::uint64_t throttle_waits = 0;   // pokes that hit the backlog limit
  sim::Nanos throttled = 0;           // total writer time spent throttled
  std::uint64_t errors = 0;  // writeback errors swallowed in background
  /// Dirty-inode-list entries examined across all wakes. With the list a
  /// wake is O(dirty inodes); before it, every wake walked the whole
  /// inode cache (the ROADMAP full-walk item).
  std::uint64_t inodes_scanned = 0;
  /// Per wake: poke time -> the cycle's last writeback completion on the
  /// flusher clock (how long one background drain occupies the device).
  sim::LatencyHistogram wake_to_drain;
};

/// One background writeback thread for one *member device* of a mounted
/// superblock. A plain device gets exactly one (shard 0 of 1); a striped
/// volume gets one per member: inodes shard across them by inode number
/// (an inode belongs to one flusher, like one bdi), dirty buffers shard
/// by which member their block maps to, and the balance_dirty_pages
/// backpressure is therefore *per device* — a writer bound to a slow
/// member throttles against that member's flusher only.
/// Owned by the SuperBlock; file systems opt in at mount.
class Flusher {
 public:
  explicit Flusher(SuperBlock& sb, FlusherParams params = {},
                   std::size_t shard = 0, std::size_t nshards = 1);

  Flusher(const Flusher&) = delete;
  Flusher& operator=(const Flusher&) = delete;

  /// Writer-side hook (called with the writer's clock current). Decides
  /// whether to wake; any drain runs on the flusher's own clock, starting
  /// no earlier than the poke. `hint` is the inode the writer dirtied
  /// (may be null for metadata-only pokes).
  void poke(Inode* hint) { poke(hint, params_.dirty_pages_threshold); }

  /// Same, with the caller's per-write dirty-page threshold (the
  /// GenericWriteOptions knob): it overrides the flusher's default for
  /// the hint-inode trigger so the two knobs cannot drift. 0 disables the
  /// hint trigger for this poke (the timer and buffer ratio still apply).
  void poke(Inode* hint, std::size_t page_threshold);

  /// Foreground durability barrier: advance the calling thread past all
  /// writeback the flusher has completed.
  void wait_idle();

  /// Would a poke right now wake the flusher? (exposed for tests)
  [[nodiscard]] bool wake_due(const Inode* hint) const {
    return wake_due(hint, params_.dirty_pages_threshold);
  }
  [[nodiscard]] bool wake_due(const Inode* hint,
                              std::size_t page_threshold) const;

  [[nodiscard]] const FlusherStats& stats() const { return stats_; }
  [[nodiscard]] sim::Nanos last_completion() const { return thread_.now(); }
  [[nodiscard]] const FlusherParams& params() const { return params_; }
  /// Which member device this flusher serves (0 of 1 for plain devices).
  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] std::size_t nshards() const { return nshards_; }
  /// Does this flusher's shard own `inode`'s writeback?
  [[nodiscard]] bool owns(const Inode& inode) const;

 private:
  void run_cycle(bool timer_due);
  [[nodiscard]] std::size_t shard_buffer_limit() const;

  SuperBlock* sb_;
  FlusherParams params_;
  std::size_t shard_ = 0;
  std::size_t nshards_ = 1;
  sim::SimThread thread_;
  sim::Nanos next_timer_;
  bool running_ = false;  // reentrancy guard (poke from flusher context)
  FlusherStats stats_;
};

/// Mount-time helper shared by the deployments that opt in to background
/// writeback: attach one flusher per member device of `sb`'s volume
/// (`bdev().fan_out()`; exactly one for a plain device) unless the mount
/// options contain "noflusher" (the writer-context ablation escape hatch).
void maybe_attach_flusher(SuperBlock& sb, std::string_view opts,
                          FlusherParams params = {});

}  // namespace bsim::kern
