// Error codes (Linux-errno flavored) and a lightweight Result type.
//
// The VFS boundary and the file-operations API report failures by value,
// kernel style: exceptions are reserved for programming errors (violated
// invariants), matching both the Linux idiom the paper interposes on and
// the Core Guidelines' advice to encapsulate messy constructs.
#pragma once

#include <cassert>
#include <utility>

namespace bsim::kern {

enum class Err : int {
  Ok = 0,
  Perm,          // EPERM
  NoEnt,         // ENOENT
  Io,            // EIO
  BadF,          // EBADF
  Again,         // EAGAIN
  NoMem,         // ENOMEM
  Exist,         // EEXIST
  NotDir,        // ENOTDIR
  IsDir,         // EISDIR
  Inval,         // EINVAL
  FBig,          // EFBIG
  NoSpc,         // ENOSPC
  RoFs,          // EROFS
  NameTooLong,   // ENAMETOOLONG
  NotEmpty,      // ENOTEMPTY
  NoSys,         // ENOSYS
  Stale,         // ESTALE
  NoDev,         // ENODEV
  Busy,          // EBUSY
  MFile,         // EMFILE
};

const char* err_name(Err e);

/// Result<T>: either Err::Ok plus a value, or a failure code.
/// T must be default-constructible (values are pointers, integers, or small
/// structs throughout this codebase).
template <class T>
class [[nodiscard]] Result {
 public:
  Result(Err e) : err_(e) { assert(e != Err::Ok); }  // NOLINT(google-explicit-constructor)
  Result(T v) : err_(Err::Ok), val_(std::move(v)) {} // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return err_ == Err::Ok; }
  [[nodiscard]] Err error() const { return err_; }

  [[nodiscard]] T& value() {
    assert(ok());
    return val_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return val_;
  }
  /// Value or a default when failed (for optional lookups).
  [[nodiscard]] T value_or(T alt) const { return ok() ? val_ : std::move(alt); }

 private:
  Err err_;
  T val_{};
};

/// Early-return helper for Err-returning expressions.
#define BSIM_TRY(expr)                         \
  do {                                         \
    const ::bsim::kern::Err _e = (expr);       \
    if (_e != ::bsim::kern::Err::Ok) return _e; \
  } while (0)

}  // namespace bsim::kern
