#include "kernel/buffer_cache.h"

#include <algorithm>
#include <cassert>

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

BufferCache::BufferCache(blk::BlockDevice& dev, std::size_t capacity)
    : dev_(dev),
      capacity_(capacity),
      shard_dirty_(dev.fan_out(), 0),
      wb_err_(dev.fan_out()) {}

BufferCache::~BufferCache() = default;

Result<BufferHead*> BufferCache::bread(std::uint64_t blockno) {
  auto r = lookup_or_create(blockno);
  if (!r.ok()) return r;
  BufferHead* bh = r.value();
  if (!bh->uptodate) {
    blk::Bio bio = blk::Bio::single_read(blockno, bh->bytes());
    dev_.submit(bio);
    if (bio.io_error) {  // injected medium error (no mirror could serve it)
      brelse(bh);
      return Err::Io;
    }
    bh->uptodate = true;
  }
  return bh;
}

Result<std::vector<BufferHead*>> BufferCache::bread_batch(
    std::span<const std::uint64_t> blocknos) {
  std::vector<BufferHead*> out;
  out.reserve(blocknos.size());
  std::vector<blk::Bio> bios;
  std::vector<BufferHead*> missing;  // aligned with bios
  for (const std::uint64_t blockno : blocknos) {
    auto r = lookup_or_create(blockno);
    if (!r.ok()) {
      for (BufferHead* bh : out) brelse(bh);
      return r.error();
    }
    BufferHead* bh = r.value();
    out.push_back(bh);
    if (!bh->uptodate) {
      // One bio per missing buffer; the queue merges adjacent blocks.
      bios.push_back(blk::Bio::single_read(blockno, bh->bytes()));
      missing.push_back(bh);
    }
  }
  if (!bios.empty()) {
    dev_.submit(bios);
    bool failed = false;
    for (std::size_t i = 0; i < bios.size(); ++i) {
      // A bio that hit an injected medium error transferred nothing; its
      // buffer stays !uptodate so a later retry re-reads it.
      if (bios[i].io_error) failed = true;
      else missing[i]->uptodate = true;
    }
    if (failed) {
      for (BufferHead* bh : out) brelse(bh);
      return Err::Io;
    }
  }
  return out;
}

void BufferCache::readahead(std::uint64_t start, std::size_t n) {
  std::vector<std::uint64_t> blocknos;
  blocknos.reserve(n);
  for (std::size_t i = 0; i < n && start + i < dev_.nblocks(); ++i) {
    blocknos.push_back(start + i);
  }
  auto r = bread_batch(blocknos);
  if (!r.ok()) return;  // best-effort: readahead failures are silent
  // Readahead holds no references once the data is resident.
  for (BufferHead* bh : r.value()) brelse(bh);
}

Result<BufferHead*> BufferCache::getblk(std::uint64_t blockno) {
  auto r = lookup_or_create(blockno);
  if (!r.ok()) return r;
  r.value()->uptodate = true;  // caller fully overwrites; see header
  return r;
}

Result<BufferHead*> BufferCache::lookup_or_create(std::uint64_t blockno) {
  if (blockno >= dev_.nblocks()) return Err::Io;
  sim::ScopedLock guard(lock_);
  sim::charge(sim::costs().buffer_lookup);

  auto it = map_.find(blockno);
  if (it != map_.end()) {
    stats_.hits += 1;
    auto pos = lru_pos_.find(blockno);
    if (pos != lru_pos_.end()) lru_.erase(pos->second);
    lru_.push_front(blockno);
    lru_pos_[blockno] = lru_.begin();
    it->second->refcount += 1;
    outstanding_refs_ += 1;
    return it->second.get();
  }

  stats_.misses += 1;
  evict_if_needed();
  auto bh = std::make_unique<BufferHead>();
  bh->blockno = blockno;
  bh->cache = this;
  bh->refcount = 1;
  outstanding_refs_ += 1;
  BufferHead* raw = bh.get();
  map_.emplace(blockno, std::move(bh));
  lru_.push_front(blockno);
  lru_pos_[blockno] = lru_.begin();
  return raw;
}

void BufferCache::brelse(BufferHead* bh) {
  assert(bh != nullptr && bh->cache == this);
  assert(bh->refcount > 0 && "brelse without matching bread/getblk");
  bh->refcount -= 1;
  assert(outstanding_refs_ > 0);
  outstanding_refs_ -= 1;
}

void BufferCache::sync_dirty_buffer(BufferHead* bh) {
  assert(bh != nullptr && bh->cache == this);
  blk::Bio bio = blk::Bio::single_write(bh->blockno, bh->bytes());
  dev_.submit(bio);
  // A write command that never executed (crash-model kill point) did not
  // write the buffer back: it must stay dirty.
  if (bio.io_error) {
    wb_err_[dev_.child_of(bh->blockno)].record(Err::Io);
    wb_last_err_ = Err::Io;
  } else if (bio.applied) {
    set_clean(bh);
    stats_.writebacks += 1;
  }
}

void BufferCache::sync_dirty_buffers(std::span<BufferHead* const> bhs) {
  dev_.wait(sync_dirty_buffers_async(bhs));
}

blk::Ticket BufferCache::sync_dirty_buffers_async(
    std::span<BufferHead* const> bhs) {
  if (bhs.empty()) return blk::Ticket{};
  std::vector<blk::Bio> bios;
  bios.reserve(bhs.size());
  for (BufferHead* bh : bhs) {
    assert(bh != nullptr && bh->cache == this);
    bios.push_back(blk::Bio::single_write(bh->blockno, bh->bytes()));
  }
  if (dev_.plugged()) {
    // Deferred: the device only accumulates the batch, so media effects
    // (and with them `applied`) land at unplug. Keep the bios and the
    // buffer list alive until then; dirty state is retired when the plug
    // closes (BufferCache::unplug), with the same applied-aware rule.
    plug_held_.push_back(PluggedBatch{std::move(bios), {}});
    PluggedBatch& pb = plug_held_.back();
    pb.bhs.assign(bhs.begin(), bhs.end());
    for (BufferHead* bh : pb.bhs) bh->plug_held = true;
    return dev_.submit_async(pb.bios);
  }
  const blk::Ticket t = dev_.submit_async(bios);
  // Media effects land at submission; only the wait is deferred. Clear
  // dirty state for exactly the bios whose write command executed — an
  // early kill leaves the tail of the batch dirty for the next sync.
  retire_batch(bhs, bios);
  return t;
}

void BufferCache::retire_batch(std::span<BufferHead* const> bhs,
                               std::span<const blk::Bio> bios) {
  assert(bhs.size() == bios.size());
  for (std::size_t i = 0; i < bhs.size(); ++i) {
    if (bios[i].io_error) {
      // A device write error (io_error discriminates it from the crash
      // model's silent swallow, which leaves io_error clear): the buffer
      // stays dirty AND the failure is parked in the shard's error
      // sequence for the next fsync/sync to report.
      wb_err_[dev_.child_of(bios[i].vecs.front().blockno)].record(Err::Io);
      wb_last_err_ = Err::Io;
      continue;
    }
    if (!bios[i].applied) continue;
    set_clean(bhs[i]);
    stats_.writebacks += 1;
  }
}

blk::Ticket BufferCache::unplug() {
  const blk::Ticket t = dev_.unplug();
  if (dev_.plugged()) return t;  // nested: the outermost unplug retires
  for (PluggedBatch& pb : plug_held_) {
    retire_batch(pb.bhs, pb.bios);
    for (BufferHead* bh : pb.bhs) bh->plug_held = false;
  }
  plug_held_.clear();
  return t;
}

void BufferCache::pin_journal(std::uint64_t blockno, bool pin) {
  auto it = map_.find(blockno);
  if (it == map_.end()) return;
  it->second->jdirty = pin && it->second->dirty;
}

std::vector<BufferHead*> BufferCache::collect_dirty(std::size_t shard,
                                                    std::size_t nshards) {
  // The dirty-block index is already in ascending block order; the walk
  // is O(dirty), not O(cached) — a wake on a huge, mostly-clean cache
  // never touches the clean population. A shard-filtered walk still
  // scans the whole (volume-wide) index, so N per-member flushers pay
  // N x dirty per round; splitting the index per shard would shave that
  // host-time factor but complicate the ordered full-volume walk that
  // sync_all needs.
  std::vector<BufferHead*> dirty;
  dirty.reserve(dirty_index_.size());
  for (const std::uint64_t blockno : dirty_index_) {
    stats_.dirty_scanned += 1;
    if (nshards > 1 && dev_.child_of(blockno) % nshards != shard) continue;
    auto it = map_.find(blockno);
    assert(it != map_.end() && it->second->dirty);
    // A journal-pinned buffer belongs to an uncommitted transaction:
    // writing it here would put unjournaled state on media ahead of its
    // commit record (WAL violation). The commit path writes it.
    if (it->second->jdirty) {
      stats_.jdirty_skipped += 1;
      continue;
    }
    dirty.push_back(it->second.get());
  }
  return dirty;
}

void BufferCache::sync_all() {
  // Gather the dirty set and push it through the request queue as one
  // batch, in ascending block order so adjacent blocks merge.
  std::vector<BufferHead*> dirty = collect_dirty();
  sync_dirty_buffers(dirty);
}

blk::Ticket BufferCache::sync_all_nowait() {
  std::vector<BufferHead*> dirty = collect_dirty();
  return sync_dirty_buffers_async(dirty);
}

std::size_t BufferCache::batch_end(const std::vector<BufferHead*>& dirty,
                                   std::size_t i, std::size_t max_batch) {
  std::size_t n = std::min(max_batch, dirty.size() - i);
  const std::uint64_t width = dev_.stripe_width_blocks();
  // Stripe-aware clustering: trim the batch boundary back to a stripe-row
  // edge so no sub-batch splits a row between two submissions — each
  // member then sees its share of a row as one contiguous run instead of
  // a sliver now and the rest in the next batch. A row larger than
  // max_batch cannot be kept whole; keep the full batch then.
  if (width > 0 && i + n < dirty.size()) {
    const auto row = [&](std::size_t k) { return dirty[k]->blockno / width; };
    std::size_t j = n;
    while (j > 1 && row(i + j - 1) == row(i + j)) j -= 1;
    if (j > 1 || row(i) != row(i + 1)) {
      if (j != n) stats_.stripe_aligned_batches += 1;
      n = j;
    }
  }
  return i + n;
}

std::size_t BufferCache::flush_dirty_async(std::size_t max_batch,
                                           std::size_t queue_depth,
                                           std::size_t shard,
                                           std::size_t nshards,
                                           bool use_plug) {
  assert(max_batch > 0 && queue_depth > 0);
  const std::size_t before = nr_dirty_;
  std::vector<BufferHead*> dirty = collect_dirty(shard, nshards);

  if (use_plug && !dirty.empty()) {
    // blk_plug-style drain: every sub-batch accumulates under one plug
    // and dispatches at unplug as a single elevator pass, so batches that
    // are adjacent on disk (or on a member device) merge across batch
    // boundaries. QD management is moot — the one pass occupies all
    // channels at once.
    plug();
    std::size_t i = 0;
    while (i < dirty.size()) {
      const std::size_t end = batch_end(dirty, i, max_batch);
      (void)sync_dirty_buffers_async(
          std::span<BufferHead* const>(dirty.data() + i, end - i));
      i = end;
    }
    const blk::Ticket t = unplug();
    dev_.wait(t);
    return before - nr_dirty_;
  }

  std::vector<blk::Ticket> inflight;
  inflight.reserve(queue_depth);
  std::size_t i = 0;
  while (i < dirty.size()) {
    const std::size_t end = batch_end(dirty, i, max_batch);
    if (inflight.size() == queue_depth) {
      // Redeem the oldest ticket to keep at most `queue_depth` batches in
      // flight (wait order does not affect determinism; see bio.h).
      dev_.wait(inflight.front());
      inflight.erase(inflight.begin());
    }
    const blk::Ticket t = sync_dirty_buffers_async(
        std::span<BufferHead* const>(dirty.data() + i, end - i));
    if (t.valid()) inflight.push_back(t);
    i = end;
  }
  for (const blk::Ticket& t : inflight) dev_.wait(t);
  // Report what was actually cleaned: commands the crash model swallowed
  // leave their buffers dirty and are not writebacks.
  return before - nr_dirty_;
}

void BufferCache::issue_flush() { dev_.flush(); }

void BufferCache::invalidate() {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second->refcount == 0 && !it->second->dirty) {
      auto pos = lru_pos_.find(it->first);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::evict_if_needed() {
  if (capacity_ == 0 || map_.size() < capacity_) return;
  // Walk from the LRU end looking for an evictable (unreferenced) buffer.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const std::uint64_t blockno = *it;
    auto mit = map_.find(blockno);
    assert(mit != map_.end());
    BufferHead* bh = mit->second.get();
    if (bh->refcount > 0) continue;
    // Journal-pinned victims must not be written outside their commit
    // (WAL); plug-held victims back a deferred in-flight write. Both stay.
    if (bh->jdirty || bh->plug_held) continue;
    if (bh->dirty) {
      blk::Bio bio = blk::Bio::single_write(blockno, bh->bytes());
      dev_.submit(bio);
      set_clean(bh);
      // A write the crash model swallowed is not a writeback — but the
      // victim is still evicted: after power death the volatile copy is
      // doomed either way, and eviction must keep making progress.
      if (bio.applied) stats_.writebacks += 1;
    }
    stats_.evictions += 1;
    lru_.erase(std::next(it).base());
    lru_pos_.erase(blockno);
    map_.erase(mit);
    return;
  }
  // Everything referenced: allow temporary overshoot (kernel would block).
}

const char* err_name(Err e) {
  switch (e) {
    case Err::Ok: return "OK";
    case Err::Perm: return "EPERM";
    case Err::NoEnt: return "ENOENT";
    case Err::Io: return "EIO";
    case Err::BadF: return "EBADF";
    case Err::Again: return "EAGAIN";
    case Err::NoMem: return "ENOMEM";
    case Err::Exist: return "EEXIST";
    case Err::NotDir: return "ENOTDIR";
    case Err::IsDir: return "EISDIR";
    case Err::Inval: return "EINVAL";
    case Err::FBig: return "EFBIG";
    case Err::NoSpc: return "ENOSPC";
    case Err::RoFs: return "EROFS";
    case Err::NameTooLong: return "ENAMETOOLONG";
    case Err::NotEmpty: return "ENOTEMPTY";
    case Err::NoSys: return "ENOSYS";
    case Err::Stale: return "ESTALE";
    case Err::NoDev: return "ENODEV";
    case Err::Busy: return "EBUSY";
    case Err::MFile: return "EMFILE";
  }
  return "E?";
}

}  // namespace bsim::kern
