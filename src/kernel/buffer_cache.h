// The kernel buffer cache: the sb_bread / brelse / mark_buffer_dirty /
// sync_dirty_buffer interface the paper's §4.5 example is built around.
//
// Buffers hold their own copy of block data (distinct from the device's
// media state) so that a file system can modify a cached block without it
// becoming "written" — the property journaling depends on and that the
// crash-consistency property tests exercise.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "blockdev/device.h"
#include "kernel/errno.h"
#include "kernel/errseq.h"
#include "sim/sync.h"

namespace bsim::kern {

class BufferCache;

/// One cached block. Reference-counted by the cache; file systems access
/// buffers through pointers returned by bread/getblk and must brelse them
/// (in Bento, the BufferHeadHandle capability does this automatically).
struct BufferHead {
  std::uint64_t blockno = 0;
  bool uptodate = false;
  bool dirty = false;
  /// Journal-pinned (jbd2's "managed by the journal"): the block belongs
  /// to a running/uncommitted transaction. Background writeback
  /// (collect_dirty, sync_all, eviction) must NOT write it to media — the
  /// journal commit is the only path allowed to, or WAL ordering breaks.
  /// Cleared when the commit path writes the buffer (set_clean).
  bool jdirty = false;
  /// Held by an open request plug (a deferred async write references this
  /// buffer's bytes); eviction must keep it resident until the plug
  /// closes.
  bool plug_held = false;
  int refcount = 0;
  BufferCache* cache = nullptr;
  std::array<std::byte, blk::kBlockSize> data{};

  [[nodiscard]] std::span<std::byte> bytes() { return {data.data(), data.size()}; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data.data(), data.size()};
  }
};

struct BufferCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;
  /// Objects examined while gathering dirty buffers for writeback. With
  /// the dirty-block index a drain scans O(dirty) entries, not the whole
  /// cache — the flusher full-walk regression stat.
  std::uint64_t dirty_scanned = 0;
  /// Dirty buffers skipped by background writeback because a journal
  /// transaction owns them (BufferHead::jdirty).
  std::uint64_t jdirty_skipped = 0;
  /// flush_dirty_async batches whose boundary was trimmed to a stripe-row
  /// edge (the stripe-aware clustering regression stat).
  std::uint64_t stripe_aligned_batches = 0;
};

class BufferCache {
 public:
  /// `capacity` caps cached blocks; 0 means unbounded (tests).
  BufferCache(blk::BlockDevice& dev, std::size_t capacity);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Read a block through the cache (timed). Increments the refcount.
  Result<BufferHead*> bread(std::uint64_t blockno);

  /// Read many blocks through the cache as ONE batched device submission:
  /// misses become bios that the request queue merges and spreads across
  /// device channels. Returns the buffers in `blocknos` order, each with a
  /// reference the caller must brelse. On error no references are leaked.
  Result<std::vector<BufferHead*>> bread_batch(
      std::span<const std::uint64_t> blocknos);

  /// Populate the cache for [start, start+n) without taking references
  /// (the readahead path). Blocks beyond the device and blocks already
  /// cached are skipped; the rest arrive via one batched submission.
  void readahead(std::uint64_t start, std::size_t n);

  /// Get a buffer without reading the device. The buffer is marked
  /// uptodate: the caller is declaring it will fully overwrite the block,
  /// and a later bread() must return the in-cache contents, never re-read
  /// stale device state over them.
  Result<BufferHead*> getblk(std::uint64_t blockno);

  /// Drop one reference.
  void brelse(BufferHead* bh);

  void mark_dirty(BufferHead* bh) {
    if (!bh->dirty) {
      bh->dirty = true;
      nr_dirty_ += 1;
      dirty_index_.insert(bh->blockno);
      shard_dirty_[dev_.child_of(bh->blockno)] += 1;
    }
  }

  /// Synchronously write one buffer to the device (timed). Like Linux's
  /// sync_dirty_buffer this waits for the transfer, not for a cache FLUSH.
  void sync_dirty_buffer(BufferHead* bh);

  /// Batched writeback: one request-queue submission for all `bhs`
  /// (journal commit paths hand their whole log run here). Counts one
  /// writeback per buffer. A buffer's dirty bit is cleared only if its
  /// write command actually executed — under the crash model's
  /// kill_after, bios at or past the kill point never reach media and
  /// their buffers stay dirty (they were NOT written back).
  void sync_dirty_buffers(std::span<BufferHead* const> bhs);

  /// Non-barrier batched writeback: same submission (and the same
  /// applied-aware dirty clearing, which happens at submission time when
  /// media effects land), but the caller redeems the returned ticket
  /// later, so several batches can be in flight (QD>1). An empty span
  /// returns an empty ticket.
  /// Under an open plug (see plug()) the submission is DEFERRED: the
  /// cache keeps the bios alive, dispatch happens at unplug in one
  /// merged elevator pass, and dirty state is retired then, applied-aware
  /// as always.
  blk::Ticket sync_dirty_buffers_async(std::span<BufferHead* const> bhs);

  /// Redeem a ticket from sync_dirty_buffers_async (timed).
  void wait(const blk::Ticket& t) { dev_.wait(t); }

  // ---- request plugging (blk_plug over the buffer cache) ----
  /// Open a plug on the backing device: subsequent async writebacks
  /// accumulate and dispatch as ONE cross-batch-merged submission at
  /// unplug. The cache owns the deferred bios and retires dirty state
  /// when the plug closes (or when a sync operation flushes it early).
  void plug() { dev_.plug(); }
  /// Close the plug, dispatch, retire deferred dirty state; returns the
  /// combined batch's ticket (empty when nothing accumulated).
  blk::Ticket unplug();

  /// Journal pinning: while `pin` is set the buffer is owned by a running
  /// transaction — background drains and eviction skip it (see
  /// BufferHead::jdirty). No-op when the block is not cached.
  void pin_journal(std::uint64_t blockno, bool pin);

  // ---- writeback error sequence (errseq_t over metadata writeback) ----
  /// A buffer writeback that failed with a device write error (not a
  /// crash-model swallow) is recorded per member-device shard; fsync and
  /// sync consumers carry an ErrSeqCursor and see each failure exactly
  /// once. The aggregate sequence is the sum over shards.
  [[nodiscard]] std::uint64_t wb_err_seq() const {
    std::uint64_t s = 0;
    for (const ErrSeq& e : wb_err_) s += e.seq();
    return s;
  }
  [[nodiscard]] ErrSeqCursor wb_err_sample() const {
    return ErrSeqCursor{wb_err_seq()};
  }
  /// Report-once check across all shards (see ErrSeq::check).
  [[nodiscard]] Err wb_err_check(ErrSeqCursor& c) const {
    const std::uint64_t s = wb_err_seq();
    if (c.seen == s) return Err::Ok;
    c.seen = s;
    return wb_last_err_;
  }
  [[nodiscard]] const ErrSeq& wb_err_shard(std::size_t shard) const {
    return wb_err_[shard];
  }

  /// Write back every dirty buffer (timed) as one batched submission in
  /// ascending block order.
  void sync_all();

  /// sync_all without the batch barrier: submit the dirty set (media
  /// effects land now, dirty state retires applied-aware as always) and
  /// return the ticket unredeemed — the non-blocking flush barrier's
  /// writeback half.
  blk::Ticket sync_all_nowait();

  /// Background-writeback drain: every dirty buffer, ascending block
  /// order, split into batches of at most `max_batch` buffers submitted
  /// through the async path with up to `queue_depth` batches in flight;
  /// waits for all of them before returning. Returns the number of
  /// buffers actually written back (a dead device's swallowed commands
  /// leave their buffers dirty and are not counted). `shard`/`nshards`
  /// restrict the drain to buffers whose block maps to that member
  /// device (`device().child_of`) — the per-device flusher's share; the
  /// defaults drain everything.
  /// `use_plug` accumulates the batches under one request plug (one
  /// elevator pass with cross-batch merging) instead of redeeming QD>1
  /// tickets; batch boundaries are trimmed to stripe-row edges either way
  /// when the volume has striping geometry (stripe-aware clustering).
  std::size_t flush_dirty_async(std::size_t max_batch,
                                std::size_t queue_depth,
                                std::size_t shard = 0,
                                std::size_t nshards = 1,
                                bool use_plug = true);

  /// Issue a device cache FLUSH (timed) — blkdev_issue_flush.
  void issue_flush();

  /// Drop all clean, unreferenced buffers (tests / remount).
  void invalidate();

  [[nodiscard]] const BufferCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cached_blocks() const { return map_.size(); }
  /// Currently dirty buffers (the flusher's wake threshold input).
  [[nodiscard]] std::size_t nr_dirty() const { return nr_dirty_; }
  /// Dirty buffers bound to one member device of a striped volume
  /// (`shard` indexes device().fan_out(); per-device flusher threshold).
  [[nodiscard]] std::size_t nr_dirty_shard(std::size_t shard) const {
    return shard < shard_dirty_.size() ? shard_dirty_[shard] : 0;
  }
  /// Capacity in blocks (0 = unbounded); dirty ratio = nr_dirty/capacity.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] blk::BlockDevice& device() { return dev_; }
  [[nodiscard]] std::uint64_t outstanding_refs() const { return outstanding_refs_; }

 private:
  Result<BufferHead*> lookup_or_create(std::uint64_t blockno);
  void evict_if_needed();
  void set_clean(BufferHead* bh) {
    if (bh->dirty) {
      bh->dirty = false;
      bh->jdirty = false;  // the journal's write reached the device
      assert(nr_dirty_ > 0);
      nr_dirty_ -= 1;
      dirty_index_.erase(bh->blockno);
      auto& cnt = shard_dirty_[dev_.child_of(bh->blockno)];
      assert(cnt > 0);
      cnt -= 1;
    }
  }
  /// Clear dirty state for the applied bios of one (possibly deferred)
  /// writeback batch and count the writebacks.
  void retire_batch(std::span<BufferHead* const> bhs,
                    std::span<const blk::Bio> bios);
  /// Pick the end of the next flush batch: at most `max_batch` buffers,
  /// trimmed back to a stripe-row boundary when the device has striping
  /// geometry (so no sub-batch splits a row across two submissions).
  std::size_t batch_end(const std::vector<BufferHead*>& dirty, std::size_t i,
                        std::size_t max_batch);
  /// Gather (this shard's slice of) the dirty set in ascending block
  /// order — an O(dirty) walk of the dirty-block index.
  std::vector<BufferHead*> collect_dirty(std::size_t shard = 0,
                                         std::size_t nshards = 1);

  blk::BlockDevice& dev_;
  std::size_t capacity_;
  /// Batches deferred by an open plug: the cache must keep the bios (the
  /// device holds pointers into them) and the buffer list (to retire
  /// dirty state at unplug) alive until the plug closes.
  struct PluggedBatch {
    std::vector<blk::Bio> bios;
    std::vector<BufferHead*> bhs;
  };
  std::deque<PluggedBatch> plug_held_;
  /// Dirty blocknos, ordered (the tagged-radix analogue): writeback walks
  /// this, never the whole map.
  std::set<std::uint64_t> dirty_index_;
  /// Dirty count per member device of a striped volume (size fan_out()).
  std::vector<std::size_t> shard_dirty_;
  /// Per-member-device writeback error sequences (size fan_out()).
  std::vector<ErrSeq> wb_err_;
  Err wb_last_err_ = Err::Ok;
  std::unordered_map<std::uint64_t, std::unique_ptr<BufferHead>> map_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> lru_pos_;
  sim::SimMutex lock_;
  std::uint64_t outstanding_refs_ = 0;
  std::size_t nr_dirty_ = 0;
  BufferCacheStats stats_;
};

}  // namespace bsim::kern
