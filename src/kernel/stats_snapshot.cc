// The unified stats snapshot: one JSON document per Kernel covering every
// device tree and every mount. Untimed — reading counters never advances
// virtual time. Benches dump this at exit (STATS_*.json); tests parse it
// for the registry-exhaustiveness check.
#include <algorithm>
#include <fstream>

#include "blockdev/statsdump.h"
#include "kernel/kernel.h"

namespace bsim::kern {

namespace {

void dump_buffer_cache(sim::JsonWriter& w, const BufferCacheStats& s) {
  w.begin_object();
  w.field("struct", "BufferCacheStats");
  w.field("hits", s.hits);
  w.field("misses", s.misses);
  w.field("writebacks", s.writebacks);
  w.field("evictions", s.evictions);
  w.field("dirty_scanned", s.dirty_scanned);
  w.field("jdirty_skipped", s.jdirty_skipped);
  w.field("stripe_aligned_batches", s.stripe_aligned_batches);
  w.end_object();
}

/// Page-cache stats are per inode mapping; the snapshot reports the sum
/// over the mount's cached inodes (evicted inodes' history is gone, as
/// with real per-inode counters).
void dump_page_cache(sim::JsonWriter& w, SuperBlock& sb) {
  AddressSpaceStats sum;
  sb.for_each_inode([&](Inode& inode) {
    const AddressSpaceStats& s = inode.mapping.stats();
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.writeback_pages += s.writeback_pages;
    sum.writeback_calls += s.writeback_calls;
    sum.readahead_batches += s.readahead_batches;
    sum.readahead_pages += s.readahead_pages;
    sum.ra_sequential_hits += s.ra_sequential_hits;
    sum.ra_window_max = std::max(sum.ra_window_max, s.ra_window_max);
  });
  w.begin_object();
  w.field("struct", "AddressSpaceStats");
  w.field("hits", sum.hits);
  w.field("misses", sum.misses);
  w.field("writeback_pages", sum.writeback_pages);
  w.field("writeback_calls", sum.writeback_calls);
  w.field("readahead_batches", sum.readahead_batches);
  w.field("readahead_pages", sum.readahead_pages);
  w.field("ra_sequential_hits", sum.ra_sequential_hits);
  w.field("ra_window_max", sum.ra_window_max);
  w.end_object();
}

void dump_flusher(sim::JsonWriter& w, const Flusher& f) {
  const FlusherStats& s = f.stats();
  w.begin_object();
  w.field("struct", "FlusherStats");
  w.field("shard", static_cast<std::uint64_t>(f.shard()));
  w.field("pokes", s.pokes);
  w.field("wakeups", s.wakeups);
  w.field("threshold_wakeups", s.threshold_wakeups);
  w.field("timer_wakeups", s.timer_wakeups);
  w.field("pages_flushed", s.pages_flushed);
  w.field("buffers_flushed", s.buffers_flushed);
  w.field("throttle_waits", s.throttle_waits);
  w.field("throttled_ns", static_cast<std::int64_t>(s.throttled));
  w.field("errors", s.errors);
  w.field("inodes_scanned", s.inodes_scanned);
  sim::dump_histogram(w, "wake_to_drain", s.wake_to_drain);
  w.end_object();
}

}  // namespace

std::string Kernel::dump_stats() {
  sim::JsonWriter w;
  w.begin_object();
  w.field("type", "stats_snapshot");
  w.field("schema", static_cast<std::uint64_t>(1));

  // Devices, name-sorted so the snapshot is byte-stable across runs.
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, dev] : devices_) names.push_back(name);
  std::sort(names.begin(), names.end());
  w.key("devices");
  w.begin_array();
  for (const std::string& name : names) {
    blk::dump_device_tree_stats(w, name, *devices_.at(name));
  }
  w.end_array();

  w.key("mounts");
  w.begin_array();
  for (const Mount& m : mounts_) {
    if (m.sb == nullptr) continue;
    w.begin_object();
    w.field("mountpoint", m.mountpoint);
    w.field("fs", m.sb->fs_name.empty() ? std::string{m.type->name()}
                                        : m.sb->fs_name);
    w.field("device", m.devname);
    w.key("stats");
    w.begin_array();
    dump_buffer_cache(w, m.sb->bufcache().stats());
    dump_page_cache(w, *m.sb);
    for (std::size_t i = 0; i < m.sb->flusher_count(); ++i) {
      dump_flusher(w, *m.sb->flusher_at(i));
    }
    for (const auto& [name, fn] : m.sb->stats_dumpers()) fn(w);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

Err Kernel::dump_stats_to(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Err::Io;
  f << dump_stats();
  return f.good() ? Err::Ok : Err::Io;
}

}  // namespace bsim::kern
