// io_uring-style asynchronous syscall batching (paper §8.1).
//
// The paper's future work points at io_uring twice: as a way to cut the
// per-operation user/kernel crossings that dominate the FUSE baseline's
// block I/O ("Using this interface for the I/O accesses from the FUSE
// version of the xv6 file system ... could result in better performance
// numbers"), and as a VFS-bypass hook for Bento itself. This module
// provides the first: a submission/completion queue pair over the
// simulated kernel.
//
// Model: userspace prepares SQEs in shared memory (untimed bookkeeping),
// then calls submit() — ONE user/kernel crossing for the whole batch.
// The kernel consumes each SQE with a small per-entry dispatch cost (no
// per-op trap) and posts a CQE. Completions are harvested from shared
// memory with pop_cqe() at memory-access cost, with no crossing. Relative
// to N separate syscalls, a batch of N saves (N-1) crossings plus N VFS
// dispatches — exactly the arithmetic of §6.4's "each block operation
// from userspace must pass across the user/kernel boundary".
//
// Like the rest of the simulation, ops execute synchronously in virtual
// time at submit(); what io_uring buys in this model is crossing
// amortization, not I/O overlap (the device model already overlaps I/O
// through its queue).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>

#include "kernel/kernel.h"

namespace bsim::kern {

/// One submission-queue entry (subset of io_uring_sqe).
struct Sqe {
  enum class Op : std::uint8_t { Read, Write, Fsync };
  Op op = Op::Read;
  int fd = -1;
  std::uint64_t off = 0;
  std::span<std::byte> read_buf;
  std::span<const std::byte> write_buf;
  bool datasync = false;
  std::uint64_t user_data = 0;
};

/// One completion-queue entry (io_uring_cqe analogue).
struct Cqe {
  std::uint64_t user_data = 0;
  Err err = Err::Ok;
  std::uint64_t res = 0;  // bytes transferred (0 for fsync)
};

class IoUring {
 public:
  /// `sq_entries` bounds the batch size, like io_uring_setup's ring size.
  IoUring(Kernel& kernel, Process& proc, unsigned sq_entries = 128);

  IoUring(const IoUring&) = delete;
  IoUring& operator=(const IoUring&) = delete;

  // ---- SQE preparation: shared-memory writes, untimed ----
  Err prep_read(int fd, std::span<std::byte> out, std::uint64_t off,
                std::uint64_t user_data);
  Err prep_write(int fd, std::span<const std::byte> in, std::uint64_t off,
                 std::uint64_t user_data);
  Err prep_fsync(int fd, bool datasync, std::uint64_t user_data);

  /// io_uring_enter(2): one crossing, then the kernel drains the SQ.
  /// Returns the number of SQEs consumed.
  Result<unsigned> submit();

  /// Harvest one completion from the CQ (shared memory, no crossing).
  std::optional<Cqe> pop_cqe();

  [[nodiscard]] unsigned sq_pending() const {
    return static_cast<unsigned>(sq_.size());
  }
  [[nodiscard]] unsigned cq_ready() const {
    return static_cast<unsigned>(cq_.size());
  }

  struct Stats {
    std::uint64_t sqes = 0;     // ops submitted over the lifetime
    std::uint64_t enters = 0;   // crossings paid
    std::uint64_t cqes = 0;     // completions harvested
    std::uint64_t bdev_batches = 0;  // multi-bio device submissions
    std::uint64_t async_runs = 0;    // bdev runs left in flight (QD>1)
    std::uint64_t max_inflight_runs = 0;  // peak overlapped bdev runs
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct InflightRun {
    blk::BlockDevice* dev = nullptr;
    blk::Ticket ticket;
    /// The run's bios, kept alive until the ticket is redeemed: the
    /// device's submit_async contract allows a plugged device to defer
    /// dispatch and retain pointers into them until the plug closes.
    std::vector<blk::Bio> bios;
  };

  Err push(Sqe sqe);
  /// Consume the run of consecutive same-op SQEs on block device fd
  /// `of`, submitting them as one ASYNC bio batch whose ticket is pushed
  /// onto `inflight` (successive runs in one SQ drain overlap across the
  /// device channels). `first` has already been popped and counted;
  /// returns how many further SQEs were consumed.
  unsigned drain_bdev_run(const Sqe& first, OpenFile& of,
                          std::vector<InflightRun>& inflight);
  /// Redeem every in-flight bdev run (the completion barrier before an
  /// fsync / non-bdev SQE executes, and before submit() returns).
  void wait_inflight(std::vector<InflightRun>& inflight);

  Kernel* kernel_;
  Process* proc_;
  unsigned sq_entries_;
  std::deque<Sqe> sq_;
  std::deque<Cqe> cq_;
  Stats stats_;
};

}  // namespace bsim::kern
