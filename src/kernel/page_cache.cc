#include "kernel/page_cache.h"

#include <algorithm>
#include <cstring>

#include "kernel/vfs.h"
#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

Err AddressSpaceOps::readpages(Inode& inode, std::uint64_t first_pgoff,
                               std::span<const std::span<std::byte>> pages) {
  // Default: per-page behaviour for file systems that opt in to the
  // batched entry point but not to batched I/O.
  std::uint64_t pgoff = first_pgoff;
  for (const auto& page : pages) {
    BSIM_TRY(readpage(inode, pgoff, page));
    pgoff += 1;
  }
  return Err::Ok;
}

Err AddressSpaceOps::writepages(Inode& inode, std::span<const PageRun> runs,
                                std::size_t& completed_runs) {
  // Default implementation used by the generic writeback path when a file
  // system opts in to batching but wants per-page behaviour anyway.
  completed_runs = 0;
  for (const auto& run : runs) {
    std::uint64_t pgoff = run.first_pgoff;
    for (const Page* page : run.pages) {
      BSIM_TRY(writepage(inode, pgoff, page->bytes()));
      pgoff += 1;
    }
    completed_runs += 1;
  }
  return Err::Ok;
}

Page* AddressSpace::find(std::uint64_t pgoff) {
  sim::ScopedLock guard(tree_lock_);
  sim::charge(sim::costs().page_lookup);
  auto it = pages_.find(pgoff);
  if (it == pages_.end()) {
    stats_.misses += 1;
    return nullptr;
  }
  stats_.hits += 1;
  return &it->second;
}

bool AddressSpace::resident(std::uint64_t pgoff) const {
  auto it = pages_.find(pgoff);
  return it != pages_.end() && it->second.uptodate;
}

Page& AddressSpace::find_or_alloc(std::uint64_t pgoff) {
  sim::ScopedLock guard(tree_lock_);
  sim::charge(sim::costs().page_lookup);
  auto it = pages_.find(pgoff);
  if (it != pages_.end()) {
    stats_.hits += 1;
    return it->second;
  }
  stats_.misses += 1;
  sim::charge(sim::costs().page_alloc);
  Page page;
  page.data = std::make_unique<std::array<std::byte, kPageSize>>();
  page.data->fill(std::byte{0});
  auto [pos, inserted] = pages_.emplace(pgoff, std::move(page));
  (void)inserted;
  return pos->second;
}

Result<Page*> AddressSpace::read_page(Inode& inode, AddressSpaceOps& aops,
                                      std::uint64_t pgoff) {
  Page& page = find_or_alloc(pgoff);
  if (!page.uptodate) {
    BSIM_TRY(aops.readpage(inode, pgoff, page.bytes()));
    page.uptodate = true;
  }
  return &page;
}

Err AddressSpace::read_pages(Inode& inode, AddressSpaceOps& aops,
                             std::uint64_t pgoff, std::size_t n) {
  if (n == 0) return Err::Ok;
  if (!aops.has_readpages()) {
    for (std::size_t i = 0; i < n; ++i) {
      auto r = read_page(inode, aops, pgoff + i);
      if (!r.ok()) return r.error();
    }
    return Err::Ok;
  }
  // Allocate the whole window, then fill each contiguous run of
  // not-uptodate pages with one batched ->readpages call.
  std::vector<Page*> pages;
  pages.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pages.push_back(&find_or_alloc(pgoff + i));
  }
  std::size_t i = 0;
  while (i < n) {
    if (pages[i]->uptodate) {
      i += 1;
      continue;
    }
    std::size_t j = i + 1;
    while (j < n && !pages[j]->uptodate) j += 1;
    std::vector<std::span<std::byte>> spans;
    spans.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) spans.push_back(pages[k]->bytes());
    sim::charge(sim::costs().readpages_batch_overhead +
                static_cast<sim::Nanos>(j - i) *
                    sim::costs().readpages_per_page);
    BSIM_TRY(aops.readpages(inode, pgoff + i, spans));
    for (std::size_t k = i; k < j; ++k) pages[k]->uptodate = true;
    stats_.readahead_batches += 1;
    stats_.readahead_pages += j - i;
    i = j;
  }
  return Err::Ok;
}

std::size_t AddressSpace::update_readahead(std::uint64_t first_pg,
                                           std::uint64_t last_pg) {
  if (first_pg == ra_.next_pgoff) {
    // Sequential stream: grow the window, doubling up to the cap.
    ra_.window = std::min<std::size_t>(
        std::max<std::size_t>(ra_.window * 2, kReadaheadInitPages),
        kReadaheadMaxPages);
    stats_.ra_sequential_hits += 1;
  } else {
    ra_.window = 0;  // new stream position: no speculation yet
  }
  stats_.ra_window_max =
      std::max<std::uint64_t>(stats_.ra_window_max, ra_.window);
  ra_.next_pgoff = last_pg + 1;
  return ra_.window;
}

void AddressSpace::mark_dirty(std::uint64_t pgoff) {
  auto it = pages_.find(pgoff);
  if (it == pages_.end()) return;
  if (!it->second.dirty) {
    it->second.dirty = true;
    dirty_pages_.insert(pgoff);
    nr_dirty_ += 1;
    // The inode just became dirty: register it on the superblock's
    // dirty-inode list (pruned lazily once its pages drain).
    if (nr_dirty_ == 1 && owner_ != nullptr) {
      owner_->sb().mark_inode_dirty(*owner_);
    }
  }
}

Err AddressSpace::writeback(Inode& inode, AddressSpaceOps& aops) {
  if (nr_dirty_ == 0) return Err::Ok;
  stats_.writeback_calls += 1;
  // Record when this mapping's writeback completed on the clock that ran
  // it (the fsync dependency when the background flusher did the work).
  const auto stamp = [this] {
    writeback_done_at_ = std::max(writeback_done_at_, sim::now());
  };

  if (aops.has_writepages()) {
    // Coalesce dirty pages into contiguous runs (the ->writepages path);
    // the dirty-tag index makes this O(dirty), like a tagged radix walk.
    std::vector<PageRun> runs;
    for (const std::uint64_t pgoff : dirty_pages_) {
      Page& page = pages_.at(pgoff);
      if (runs.empty() ||
          runs.back().first_pgoff + runs.back().pages.size() != pgoff) {
        runs.push_back(PageRun{pgoff, {}});
      }
      runs.back().pages.push_back(&page);
    }
    const std::size_t npages = dirty_pages_.size();
    sim::charge(sim::costs().writepages_batch_overhead +
                static_cast<sim::Nanos>(npages) *
                    sim::costs().writepages_per_page);
    std::size_t completed = 0;
    Err e = aops.writepages(inode, runs, completed);
    wb_err_.record(e);  // park the failure for the next fsync's cursor
    assert(completed <= runs.size());
    assert((e != Err::Ok || completed == runs.size()) &&
           "writepages returned Ok without completing every run");
    // Clear dirty state for exactly the completed prefix; pages in runs
    // that never reached backing store stay dirty (and stay in the
    // dirty-tag index) so the next writeback retries only them.
    for (std::size_t r = 0; r < completed; ++r) {
      std::uint64_t pgoff = runs[r].first_pgoff;
      for (std::size_t p = 0; p < runs[r].pages.size(); ++p, ++pgoff) {
        pages_.at(pgoff).dirty = false;
        dirty_pages_.erase(pgoff);
        assert(nr_dirty_ > 0);
        nr_dirty_ -= 1;
        stats_.writeback_pages += 1;
      }
    }
    stamp();
    return e;
  }

  // Unbatched ->writepage path: one call (and one charge) per dirty page.
  // Dirty state is retired page-by-page so a mid-loop failure leaves the
  // index consistent: written pages are clean AND out of the index, the
  // rest stay dirty.
  for (auto it = dirty_pages_.begin(); it != dirty_pages_.end();) {
    const std::uint64_t pgoff = *it;
    Page& page = pages_.at(pgoff);
    sim::charge(sim::costs().writepage_overhead);
    const Err e = aops.writepage(inode, pgoff, page.bytes());
    if (e != Err::Ok) {
      wb_err_.record(e);
      stamp();
      return e;
    }
    page.dirty = false;
    assert(nr_dirty_ > 0);
    nr_dirty_ -= 1;
    stats_.writeback_pages += 1;
    it = dirty_pages_.erase(it);
  }
  stamp();
  return Err::Ok;
}

void AddressSpace::truncate_from(std::uint64_t from_pgoff) {
  auto it = pages_.lower_bound(from_pgoff);
  while (it != pages_.end()) {
    if (it->second.dirty) nr_dirty_ -= 1;
    it = pages_.erase(it);
  }
  dirty_pages_.erase(dirty_pages_.lower_bound(from_pgoff),
                     dirty_pages_.end());
}

void AddressSpace::zero_tail(std::uint64_t size) {
  const std::uint64_t pgoff = size / kPageSize;
  const std::size_t within = static_cast<std::size_t>(size % kPageSize);
  if (within == 0) return;
  auto it = pages_.find(pgoff);
  if (it == pages_.end()) return;
  std::memset(it->second.data->data() + within, 0, kPageSize - within);
}

void AddressSpace::drop_all() {
  pages_.clear();
  dirty_pages_.clear();
  nr_dirty_ = 0;
}

}  // namespace bsim::kern
