// Common kernel-facing value types: file kinds, attributes, directory
// entries, statfs, open flags.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.h"

namespace bsim::kern {

using Ino = std::uint64_t;

enum class FileType : std::uint8_t { None = 0, Regular, Directory, BlockDev };

struct Stat {
  Ino ino = 0;
  FileType type = FileType::None;
  std::uint32_t mode = 0;
  std::uint32_t nlink = 0;
  std::uint64_t size = 0;
  std::uint64_t blocks = 0;  // 512B sectors, stat(2) convention
  sim::Nanos atime = 0;
  sim::Nanos mtime = 0;
  sim::Nanos ctime = 0;
};

struct StatFs {
  std::uint64_t total_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::uint64_t total_inodes = 0;
  std::uint64_t free_inodes = 0;
  std::uint32_t block_size = 0;
  std::string fs_name;
};

struct DirEnt {
  Ino ino = 0;
  FileType type = FileType::None;
  std::string name;
};

/// Callback used by readdir to emit entries; return false to stop.
using DirFiller = std::function<bool(const DirEnt&)>;

/// Which attributes a setattr call changes.
struct SetAttr {
  bool set_size = false;
  std::uint64_t size = 0;
  bool set_mode = false;
  std::uint32_t mode = 0;
  bool set_mtime = false;
  sim::Nanos mtime = 0;
};

// open(2) flags (subset).
inline constexpr int kORdOnly = 0x0;
inline constexpr int kOWrOnly = 0x1;
inline constexpr int kORdWr = 0x2;
inline constexpr int kOAccMask = 0x3;
inline constexpr int kOCreat = 0x40;
inline constexpr int kOExcl = 0x80;
inline constexpr int kOTrunc = 0x200;
inline constexpr int kOAppend = 0x400;
inline constexpr int kODirect = 0x4000;

inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kNameMax = 255;

}  // namespace bsim::kern
