#include "kernel/kernel.h"

#include <algorithm>
#include <cassert>

#include "blockdev/opts.h"
#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

namespace {

/// Split a relative path into components (no leading '/').
std::vector<std::string_view> split_components(std::string_view rest) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < rest.size()) {
    while (i < rest.size() && rest[i] == '/') ++i;
    std::size_t j = i;
    while (j < rest.size() && rest[j] != '/') ++j;
    if (j > i) parts.push_back(rest.substr(i, j - i));
    i = j;
  }
  return parts;
}

/// Shape one RAID5 member for a volume of LOGICAL size `params.nblocks`:
/// a data column rounded up to whole chunks, plus the intent-bitmap head.
blk::DeviceParams parity_member_shape(const blk::ParityParams& pp,
                                      blk::DeviceParams params) {
  const std::uint64_t ck = std::max<std::uint64_t>(pp.chunk_blocks, 1);
  std::uint64_t usable = (params.nblocks + pp.ndata - 1) / pp.ndata;
  usable = (usable + ck - 1) / ck * ck;
  params.nblocks = usable + blk::ParityDevice::kBitmapBlocks;
  return params;
}

}  // namespace

Kernel::Kernel() { default_proc_ = std::make_unique<Process>(*this); }

Kernel::~Kernel() {
  // Unmount in reverse registration order; file systems flush themselves.
  for (auto& m : mounts_) {
    if (m.sb != nullptr && m.type != nullptr) m.type->kill_sb(m.sb);
    m.sb = nullptr;
  }
}

void Kernel::register_fs(std::unique_ptr<FileSystemType> type) {
  std::string key{type->name()};
  fs_types_[key] = std::move(type);
}

FileSystemType* Kernel::fs_type(std::string_view name) {
  auto it = fs_types_.find(std::string{name});
  return it == fs_types_.end() ? nullptr : it->second.get();
}

blk::BlockDevice& Kernel::add_device(std::string name,
                                     blk::DeviceParams params) {
  return add_device(std::move(name), std::make_unique<blk::BlockDevice>(params));
}

blk::BlockDevice& Kernel::add_device(std::string name,
                                     std::unique_ptr<blk::BlockDevice> dev) {
  auto* raw = dev.get();
  devices_[std::move(name)] = std::move(dev);
  return *raw;
}

blk::StripedDevice& Kernel::add_striped_device(std::string name,
                                               blk::StripeParams sp,
                                               blk::DeviceParams child_params) {
  auto dev = std::make_unique<blk::StripedDevice>(sp, child_params);
  auto* raw = dev.get();
  add_device(std::move(name), std::move(dev));
  return *raw;
}

blk::MirroredDevice& Kernel::add_mirrored_device(
    std::string name, blk::MirrorParams mp, blk::DeviceParams member_params) {
  auto dev = std::make_unique<blk::MirroredDevice>(mp, member_params);
  auto* raw = dev.get();
  add_device(std::move(name), std::move(dev));
  return *raw;
}

blk::ParityDevice& Kernel::add_parity_device(std::string name,
                                             blk::ParityParams pp,
                                             blk::DeviceParams params) {
  auto dev = std::make_unique<blk::ParityDevice>(
      pp, parity_member_shape(pp, params));
  auto* raw = dev.get();
  add_device(std::move(name), std::move(dev));
  return *raw;
}

blk::BlockDevice& Kernel::add_volume(std::string name,
                                     std::optional<blk::StripeParams> sp,
                                     std::optional<blk::MirrorParams> mp,
                                     blk::DeviceParams params) {
  const bool striped = sp.has_value() && sp->ndevices > 1;
  const bool mirrored = mp.has_value() && mp->nmirrors > 1;
  if (striped) {
    blk::DeviceParams child = params;
    child.nblocks = params.nblocks / sp->ndevices;
    if (!mirrored) return add_striped_device(std::move(name), *sp, child);
    // RAID10: a stripe whose members are mirrors.
    std::vector<std::unique_ptr<blk::BlockDevice>> children;
    children.reserve(sp->ndevices);
    for (std::size_t i = 0; i < sp->ndevices; ++i) {
      children.push_back(std::make_unique<blk::MirroredDevice>(*mp, child));
    }
    return add_device(std::move(name), std::make_unique<blk::StripedDevice>(
                                           *sp, std::move(children)));
  }
  if (mirrored) return add_mirrored_device(std::move(name), *mp, params);
  return add_device(std::move(name), params);
}

blk::BlockDevice& Kernel::add_volume(std::string name,
                                     std::optional<blk::StripeParams> sp,
                                     std::optional<blk::MirrorParams> mp,
                                     std::optional<blk::ParityParams> pp,
                                     blk::DeviceParams params) {
  const bool parity = pp.has_value() && pp->ndata >= 2;
  if (!parity) return add_volume(std::move(name), sp, mp, params);
  const bool striped = sp.has_value() && sp->ndevices > 1;
  // Parity beats mirror in a combined selection (one redundancy scheme
  // per leaf volume); parity plus stripe is RAID50.
  if (!striped) return add_parity_device(std::move(name), *pp, params);
  blk::DeviceParams child = params;
  child.nblocks = params.nblocks / sp->ndevices;
  std::vector<std::unique_ptr<blk::BlockDevice>> children;
  children.reserve(sp->ndevices);
  for (std::size_t i = 0; i < sp->ndevices; ++i) {
    children.push_back(std::make_unique<blk::ParityDevice>(
        *pp, parity_member_shape(*pp, child)));
  }
  return add_device(std::move(name), std::make_unique<blk::StripedDevice>(
                                         *sp, std::move(children)));
}

blk::BlockDevice* Kernel::device(std::string_view name) {
  auto it = devices_.find(std::string{name});
  return it == devices_.end() ? nullptr : it->second.get();
}

std::string Kernel::device_name_of(const blk::BlockDevice* dev) const {
  for (const auto& [name, d] : devices_) {
    if (d.get() == dev) return name;
  }
  return {};
}

SuperBlock* Kernel::sb_at(std::string_view mountpoint) {
  for (auto& m : mounts_) {
    if (m.mountpoint == mountpoint) return m.sb;
  }
  return nullptr;
}

std::unique_ptr<Process> Kernel::new_process() {
  return std::make_unique<Process>(*this);
}

Err Kernel::mount(std::string_view fstype, std::string_view devname,
                  std::string_view mountpoint, std::string_view opts) {
  FileSystemType* type = fs_type(fstype);
  if (type == nullptr) return Err::NoDev;
  blk::BlockDevice* dev = device(devname);
  if (dev == nullptr) return Err::NoDev;
  if (mountpoint.empty() || mountpoint.front() != '/') return Err::Inval;
  if (sb_at(mountpoint) != nullptr) return Err::Busy;
  // Strict option parsing: every token must be in the shared vocabulary
  // (blockdev/opts.h), or the mount fails — a typo'd "mirrro=2" must not
  // silently mount unmirrored. "lax_opts" opts a mount out (experiments
  // carrying options the vocabulary does not know yet).
  if (!blk::opts_lax(opts) && !blk::unknown_opt_tokens(opts).empty()) {
    return Err::Inval;
  }
  // "trace=N": arm blktrace-style tracing on the device tree (ring of N
  // events) BEFORE the file system mounts, so journal replay and the first
  // metadata reads are captured. Tracing never touches the simulated
  // clock, so results stay bit-identical with it on.
  blk::for_each_opt_token(opts, [&](std::string_view tok) {
    std::uint64_t n = 0;
    if (blk::opt_num_after(tok, "trace=", n) && n > 0) {
      dev->arm_trace(static_cast<std::size_t>(n), std::string{devname});
    }
  });
  // Transient-error retry knobs: arm the device tree's bounded-retry
  // policy before the file system touches it, so journal replay reads are
  // covered too. "retries=0" (the default) keeps retry fully disabled.
  {
    blk::RetryPolicy rp = dev->queue().retry_policy();
    bool armed = false;
    blk::for_each_opt_token(opts, [&](std::string_view tok) {
      std::uint64_t n = 0;
      if (blk::opt_num_after(tok, "retries=", n)) {
        rp.max_retries = static_cast<std::uint32_t>(n);
        armed = true;
      } else if (blk::opt_num_after(tok, "retry_backoff_us=", n)) {
        rp.backoff = sim::usec(static_cast<sim::Nanos>(n));
        armed = true;
      } else if (blk::opt_num_after(tok, "io_deadline_ms=", n)) {
        rp.deadline = sim::msec(static_cast<sim::Nanos>(n));
        armed = true;
      }
    });
    if (armed) dev->set_retry_policy(rp);
  }

  auto sb = type->mount(*dev, opts);
  if (!sb.ok()) return sb.error();
  // Error behaviour (ext4's errors= option, honored for every FS here):
  // what a journal abort / unrecoverable FS error does to the mount.
  blk::for_each_opt_token(opts, [&](std::string_view tok) {
    if (tok == "errors=remount-ro") {
      sb.value()->errors_mode = SuperBlock::ErrorsMode::RemountRo;
    } else if (tok == "errors=continue") {
      sb.value()->errors_mode = SuperBlock::ErrorsMode::Continue;
    } else if (tok == "errors=panic") {
      sb.value()->errors_mode = SuperBlock::ErrorsMode::Panic;
    }
  });
  mounts_.push_back(Mount{std::string{mountpoint}, sb.value(), type,
                          std::string{devname}});
  std::sort(mounts_.begin(), mounts_.end(), [](const Mount& a, const Mount& b) {
    return a.mountpoint.size() > b.mountpoint.size();
  });
  return Err::Ok;
}

Err Kernel::umount(std::string_view mountpoint) {
  for (auto it = mounts_.begin(); it != mounts_.end(); ++it) {
    if (it->mountpoint == mountpoint) {
      it->type->kill_sb(it->sb);
      mounts_.erase(it);
      return Err::Ok;
    }
  }
  return Err::NoEnt;
}

void Kernel::charge_syscall() {
  sim::charge(sim::costs().syscall + sim::costs().vfs_dispatch);
}

Result<Kernel::Mount*> Kernel::mount_for(std::string_view path,
                                         std::string_view* rest) {
  if (path.empty() || path.front() != '/') return Err::Inval;
  for (auto& m : mounts_) {  // sorted longest-first
    if (path == m.mountpoint) {
      *rest = "";
      return &m;
    }
    if (path.size() > m.mountpoint.size() && path.starts_with(m.mountpoint) &&
        path[m.mountpoint.size()] == '/') {
      *rest = path.substr(m.mountpoint.size() + 1);
      return &m;
    }
  }
  return Err::NoEnt;
}

Result<Kernel::PathTarget> Kernel::walk_parent(std::string_view path) {
  std::string_view rest;
  auto m = mount_for(path, &rest);
  if (!m.ok()) return m.error();
  SuperBlock* sb = m.value()->sb;

  auto parts = split_components(rest);
  if (parts.empty()) return Err::Inval;  // the mountpoint itself
  for (const auto& part : parts) {
    if (part.size() > kNameMax) return Err::NameTooLong;
  }

  Inode* dir = sb->root;
  SuperBlock::ihold(*dir);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (dir->type != FileType::Directory) {
      sb->iput(dir);
      return Err::NotDir;
    }
    Inode* next = sb->dcache_lookup(*dir, parts[i]);
    if (next != nullptr) {
      sim::charge(sim::costs().path_component);
    } else {
      sim::charge(sim::costs().path_component_miss);
      auto r = dir->iop->lookup(*dir, parts[i]);
      if (!r.ok()) {
        sb->iput(dir);
        return r.error();
      }
      next = r.value();
      sb->dcache_add(*dir, parts[i], next->ino());
    }
    sb->iput(dir);
    dir = next;
  }
  if (dir->type != FileType::Directory) {
    sb->iput(dir);
    return Err::NotDir;
  }
  return PathTarget{sb, dir, std::string{parts.back()}};
}

Result<Inode*> Kernel::walk_full(std::string_view path, SuperBlock** sb_out) {
  std::string_view rest;
  auto m = mount_for(path, &rest);
  if (!m.ok()) return m.error();
  SuperBlock* sb = m.value()->sb;
  if (sb_out != nullptr) *sb_out = sb;

  Inode* cur = sb->root;
  SuperBlock::ihold(*cur);
  for (const auto& part : split_components(rest)) {
    if (part.size() > kNameMax) {
      sb->iput(cur);
      return Err::NameTooLong;
    }
    if (cur->type != FileType::Directory) {
      sb->iput(cur);
      return Err::NotDir;
    }
    Inode* next = sb->dcache_lookup(*cur, part);
    if (next != nullptr) {
      sim::charge(sim::costs().path_component);
    } else {
      sim::charge(sim::costs().path_component_miss);
      auto r = cur->iop->lookup(*cur, part);
      if (!r.ok()) {
        sb->iput(cur);
        return r.error();
      }
      next = r.value();
      sb->dcache_add(*cur, part, next->ino());
    }
    sb->iput(cur);
    cur = next;
  }
  return cur;
}

Result<Inode*> Kernel::resolve(std::string_view path, SuperBlock** sb_out) {
  return walk_full(path, sb_out);
}

Result<OpenFile*> Kernel::file_for(Process& p, int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= p.fds_.size() ||
      p.fds_[static_cast<std::size_t>(fd)] == nullptr) {
    return Err::BadF;
  }
  return p.fds_[static_cast<std::size_t>(fd)].get();
}

Result<int> Kernel::open(Process& p, std::string_view path, int flags,
                         std::uint32_t mode) {
  charge_syscall();

  auto of = std::make_unique<OpenFile>();
  of->flags = flags;

  // Device special files.
  if (path.starts_with("/dev/")) {
    blk::BlockDevice* dev = device(path.substr(5));
    if (dev == nullptr) return Err::NoEnt;
    of->bdev = dev;
  } else {
    SuperBlock* sb = nullptr;
    auto inode = walk_full(path, &sb);
    if (!inode.ok() && inode.error() == Err::NoEnt && (flags & kOCreat) != 0) {
      auto target = walk_parent(path);
      if (!target.ok()) return target.error();
      auto& t = target.value();
      if (t.sb->read_only()) {
        t.sb->iput(t.dir);
        return Err::RoFs;
      }
      t.dir->rwsem.lock();
      auto created = t.dir->iop->create(*t.dir, t.last, mode);
      t.dir->rwsem.unlock();
      if (!created.ok()) {
        t.sb->iput(t.dir);
        return created.error();
      }
      t.sb->dcache_add(*t.dir, t.last, created.value()->ino());
      t.sb->iput(t.dir);
      of->sb = t.sb;
      of->inode = created.value();
    } else if (!inode.ok()) {
      return inode.error();
    } else {
      if ((flags & kOCreat) != 0 && (flags & kOExcl) != 0) {
        sb->iput(inode.value());
        return Err::Exist;
      }
      if (inode.value()->type == FileType::Directory &&
          (flags & kOAccMask) != kORdOnly) {
        sb->iput(inode.value());
        return Err::IsDir;
      }
      of->sb = sb;
      of->inode = inode.value();
    }

    Err e = of->inode->fop->open(*of->inode, of->fh);
    if (e != Err::Ok) {
      of->sb->iput(of->inode);
      return e;
    }
    // Sample the writeback error sequences (f_wb_err): errors recorded
    // before this open are not this fd's to report at fsync.
    of->fh.wb_err = of->inode->mapping.wb_err().sample();
    of->fh.bc_wb_err = of->sb->bufcache().wb_err_sample();
    if ((flags & kOTrunc) != 0 && of->inode->type == FileType::Regular) {
      if (of->sb->read_only()) {
        of->sb->iput(of->inode);
        return Err::RoFs;
      }
      SetAttr attr;
      attr.set_size = true;
      attr.size = 0;
      of->inode->rwsem.lock();
      e = of->inode->iop->setattr(*of->inode, attr);
      of->inode->rwsem.unlock();
      if (e != Err::Ok) {
        of->sb->iput(of->inode);
        return e;
      }
    }
  }

  for (std::size_t i = 0; i < p.fds_.size(); ++i) {
    if (p.fds_[i] == nullptr) {
      p.fds_[i] = std::move(of);
      return static_cast<int>(i);
    }
  }
  p.fds_.push_back(std::move(of));
  return static_cast<int>(p.fds_.size() - 1);
}

Err Kernel::close(Process& p, int fd) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  OpenFile& of = *f.value();
  if (of.inode != nullptr) {
    if ((of.flags & kOAccMask) != kORdOnly) {
      // ->flush on last writer close (this is where FUSE's writeback cache
      // and BentoFS push dirty pages to the FS).
      BSIM_TRY(of.inode->fop->flush(*of.inode, of.fh));
    }
    BSIM_TRY(of.inode->fop->release(*of.inode, of.fh));
    of.sb->iput(of.inode);
  }
  p.fds_[static_cast<std::size_t>(fd)] = nullptr;
  return Err::Ok;
}

Result<std::uint64_t> Kernel::file_read(OpenFile& f, std::span<std::byte> out,
                                        std::uint64_t off) {
  if ((f.flags & kOAccMask) == kOWrOnly) return Err::BadF;
  if (f.inode->type == FileType::Directory) return Err::IsDir;
  return f.inode->fop->read(*f.inode, f.fh, off, out);
}

Result<std::uint64_t> Kernel::file_write(OpenFile& f,
                                         std::span<const std::byte> in,
                                         std::uint64_t off) {
  if ((f.flags & kOAccMask) == kORdOnly) return Err::BadF;
  if (f.sb->read_only()) return Err::RoFs;  // errors=remount-ro degradation
  f.inode->rwsem.lock();
  auto r = f.inode->fop->write(*f.inode, f.fh, off, in);
  f.inode->rwsem.unlock();
  return r;
}

Result<std::uint64_t> Kernel::bdev_read(OpenFile& f, std::span<std::byte> out,
                                        std::uint64_t off) {
  auto& dev = *f.bdev;
  if (off % dev.block_size() != 0 || out.size() % dev.block_size() != 0) {
    return Err::Inval;  // O_DIRECT alignment
  }
  sim::charge(sim::costs().user_blockio_extra);
  // The whole span is one contiguous run: submit it as ONE multi-block
  // bio instead of block-at-a-time reads.
  blk::Bio bio(blk::BioOp::Read);
  for (std::uint64_t done = 0; done < out.size(); done += dev.block_size()) {
    bio.add_read((off + done) / dev.block_size(),
                 out.subspan(static_cast<std::size_t>(done), dev.block_size()));
  }
  if (!bio.empty()) dev.submit(bio);
  return static_cast<std::uint64_t>(out.size());
}

Result<std::uint64_t> Kernel::bdev_write(OpenFile& f,
                                         std::span<const std::byte> in,
                                         std::uint64_t off) {
  auto& dev = *f.bdev;
  if (off % dev.block_size() != 0 || in.size() % dev.block_size() != 0) {
    return Err::Inval;
  }
  sim::charge(sim::costs().user_blockio_extra);
  blk::Bio bio(blk::BioOp::Write);
  for (std::uint64_t done = 0; done < in.size(); done += dev.block_size()) {
    bio.add_write((off + done) / dev.block_size(),
                  in.subspan(static_cast<std::size_t>(done), dev.block_size()));
  }
  if (!bio.empty()) dev.submit(bio);
  return static_cast<std::uint64_t>(in.size());
}

Result<std::uint64_t> Kernel::read(Process& p, int fd,
                                   std::span<std::byte> out) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  auto r = f.value()->bdev != nullptr ? bdev_read(*f.value(), out, f.value()->pos)
                                      : file_read(*f.value(), out, f.value()->pos);
  if (r.ok()) f.value()->pos += r.value();
  return r;
}

Result<std::uint64_t> Kernel::write(Process& p, int fd,
                                    std::span<const std::byte> in) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  OpenFile& of = *f.value();
  std::uint64_t off = of.pos;
  if (of.inode != nullptr && (of.flags & kOAppend) != 0) off = of.inode->size;
  auto r = of.bdev != nullptr ? bdev_write(of, in, off)
                              : file_write(of, in, off);
  if (r.ok()) of.pos = off + r.value();
  return r;
}

Result<std::uint64_t> Kernel::pread(Process& p, int fd,
                                    std::span<std::byte> out,
                                    std::uint64_t off) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  return f.value()->bdev != nullptr ? bdev_read(*f.value(), out, off)
                                    : file_read(*f.value(), out, off);
}

Result<std::uint64_t> Kernel::pwrite(Process& p, int fd,
                                     std::span<const std::byte> in,
                                     std::uint64_t off) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  return f.value()->bdev != nullptr ? bdev_write(*f.value(), in, off)
                                    : file_write(*f.value(), in, off);
}

Result<std::uint64_t> Kernel::lseek(Process& p, int fd, std::int64_t off,
                                    Whence whence) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  OpenFile& of = *f.value();
  std::int64_t base = 0;
  switch (whence) {
    case Whence::Set: base = 0; break;
    case Whence::Cur: base = static_cast<std::int64_t>(of.pos); break;
    case Whence::End:
      base = of.inode != nullptr ? static_cast<std::int64_t>(of.inode->size)
                                 : 0;
      break;
  }
  const std::int64_t target = base + off;
  if (target < 0) return Err::Inval;
  of.pos = static_cast<std::uint64_t>(target);
  return of.pos;
}

Err Kernel::fsync(Process& p, int fd, bool datasync) {
  charge_syscall();
  auto f = file_for(p, fd);
  if (!f.ok()) return f.error();
  return do_fsync(*f.value(), datasync);
}

Err Kernel::do_fsync(OpenFile& of, bool datasync) {
  if (of.bdev != nullptr) {
    // fsync on the raw disk file from userspace: host file-interface
    // traversal plus a full device cache flush (§6.4 "the whole disk file
    // must be synced every time one block needs to be synced"). Mostly
    // device/journal wait, so it is not subject to CPU contention scaling.
    sim::current().wait(sim::costs().host_file_fsync);
    of.bdev->flush();
    return Err::Ok;
  }
  // Catch up with THIS inode's background writeback before the FS fsync
  // runs: pages the flusher already pushed through the file system must
  // be complete in virtual time before fsync can claim durability over
  // them. Per-inode (like waiting on PAGECACHE_TAG_WRITEBACK), so an
  // unrelated file's background writeback never charges this fsync; done
  // here (not per-FS) so every deployment that attaches a flusher gets
  // the ordering for free. A no-op when writeback ran on this thread.
  sim::current().wait_until(of.inode->mapping.writeback_done_at());
  Err e = of.inode->fop->fsync(*of.inode, of.fh, datasync);
  // Report-once writeback errors (file_check_and_advance_wb_err): a
  // failure recorded against this inode's mapping or the mount's buffer
  // cache since this fd last looked surfaces NOW — even when the fsync
  // call itself succeeded — and advances the fd's cursor so the next
  // fsync on this fd reports clean while other fds still see their own.
  const Err we = of.inode->mapping.wb_err().check(of.fh.wb_err);
  const Err be = of.sb->bufcache().wb_err_check(of.fh.bc_wb_err);
  if (e == Err::Ok) e = we != Err::Ok ? we : be;
  return e;
}

Err Kernel::mkdir(Process&, std::string_view path, std::uint32_t mode) {
  charge_syscall();
  auto target = walk_parent(path);
  if (!target.ok()) return target.error();
  auto& t = target.value();
  if (t.sb->read_only()) {
    t.sb->iput(t.dir);
    return Err::RoFs;
  }
  t.dir->rwsem.lock();
  auto r = t.dir->iop->mkdir(*t.dir, t.last, mode);
  t.dir->rwsem.unlock();
  if (r.ok()) {
    t.sb->dcache_add(*t.dir, t.last, r.value()->ino());
    t.sb->iput(r.value());
  }
  t.sb->iput(t.dir);
  return r.ok() ? Err::Ok : r.error();
}

Err Kernel::unlink(Process&, std::string_view path) {
  charge_syscall();
  auto target = walk_parent(path);
  if (!target.ok()) return target.error();
  auto& t = target.value();
  if (t.sb->read_only()) {
    t.sb->iput(t.dir);
    return Err::RoFs;
  }
  t.dir->rwsem.lock();
  Err e = t.dir->iop->unlink(*t.dir, t.last);
  t.dir->rwsem.unlock();
  if (e == Err::Ok) t.sb->dcache_remove(*t.dir, t.last);
  t.sb->iput(t.dir);
  return e;
}

Err Kernel::rmdir(Process&, std::string_view path) {
  charge_syscall();
  auto target = walk_parent(path);
  if (!target.ok()) return target.error();
  auto& t = target.value();
  if (t.sb->read_only()) {
    t.sb->iput(t.dir);
    return Err::RoFs;
  }
  t.dir->rwsem.lock();
  Err e = t.dir->iop->rmdir(*t.dir, t.last);
  t.dir->rwsem.unlock();
  if (e == Err::Ok) t.sb->dcache_remove(*t.dir, t.last);
  t.sb->iput(t.dir);
  return e;
}

Err Kernel::rename(Process&, std::string_view from, std::string_view to) {
  charge_syscall();
  auto src = walk_parent(from);
  if (!src.ok()) return src.error();
  auto dst = walk_parent(to);
  if (!dst.ok()) {
    src.value().sb->iput(src.value().dir);
    return dst.error();
  }
  auto& s = src.value();
  auto& d = dst.value();
  if (s.sb->read_only() || d.sb->read_only()) {
    s.sb->iput(s.dir);
    d.sb->iput(d.dir);
    return Err::RoFs;
  }
  Err e = Err::Inval;
  if (s.sb == d.sb) {
    s.dir->rwsem.lock();
    if (d.dir != s.dir) d.dir->rwsem.lock();
    e = s.dir->iop->rename(*s.dir, s.last, *d.dir, d.last);
    if (d.dir != s.dir) d.dir->rwsem.unlock();
    s.dir->rwsem.unlock();
    if (e == Err::Ok) {
      s.sb->dcache_remove(*s.dir, s.last);
      d.sb->dcache_remove(*d.dir, d.last);
    }
  }
  s.sb->iput(s.dir);
  d.sb->iput(d.dir);
  return e;
}

Result<Stat> Kernel::stat(Process&, std::string_view path) {
  charge_syscall();
  SuperBlock* sb = nullptr;
  auto inode = walk_full(path, &sb);
  if (!inode.ok()) return inode.error();
  Stat st;
  Err e = inode.value()->iop->getattr(*inode.value(), st);
  sb->iput(inode.value());
  if (e != Err::Ok) return e;
  return st;
}

Err Kernel::truncate(Process&, std::string_view path, std::uint64_t size) {
  charge_syscall();
  SuperBlock* sb = nullptr;
  auto inode = walk_full(path, &sb);
  if (!inode.ok()) return inode.error();
  if (sb->read_only()) {
    sb->iput(inode.value());
    return Err::RoFs;
  }
  SetAttr attr;
  attr.set_size = true;
  attr.size = size;
  inode.value()->rwsem.lock();
  Err e = inode.value()->iop->setattr(*inode.value(), attr);
  inode.value()->rwsem.unlock();
  sb->iput(inode.value());
  return e;
}

Result<std::vector<DirEnt>> Kernel::readdir(Process&, std::string_view path) {
  charge_syscall();
  SuperBlock* sb = nullptr;
  auto inode = walk_full(path, &sb);
  if (!inode.ok()) return inode.error();
  if (inode.value()->type != FileType::Directory) {
    sb->iput(inode.value());
    return Err::NotDir;
  }
  std::vector<DirEnt> out;
  std::uint64_t pos = 0;
  Err e = inode.value()->fop->readdir(*inode.value(), pos,
                                      [&out](const DirEnt& de) {
                                        out.push_back(de);
                                        return true;
                                      });
  sb->iput(inode.value());
  if (e != Err::Ok) return e;
  return out;
}

Result<StatFs> Kernel::statfs(Process&, std::string_view path) {
  charge_syscall();
  std::string_view rest;
  auto m = mount_for(path, &rest);
  if (!m.ok()) return m.error();
  StatFs out;
  Err e = m.value()->sb->s_op->statfs(*m.value()->sb, out);
  if (e != Err::Ok) return e;
  return out;
}

Err Kernel::sync(Process&) {
  charge_syscall();
  for (auto& m : mounts_) {
    if (m.sb != nullptr) BSIM_TRY(m.sb->sync_all());
  }
  return Err::Ok;
}

}  // namespace bsim::kern
