#include "kernel/vfs.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::kern {

// ---- default op implementations (ENOSYS/no-op, like NULL fn pointers) ----

Result<Inode*> InodeOps::create(Inode&, std::string_view, std::uint32_t) {
  return Err::NoSys;
}
Err InodeOps::unlink(Inode&, std::string_view) { return Err::NoSys; }
Result<Inode*> InodeOps::mkdir(Inode&, std::string_view, std::uint32_t) {
  return Err::NoSys;
}
Err InodeOps::rmdir(Inode&, std::string_view) { return Err::NoSys; }
Err InodeOps::rename(Inode&, std::string_view, Inode&, std::string_view) {
  return Err::NoSys;
}
Err InodeOps::setattr(Inode&, const SetAttr&) { return Err::NoSys; }
Err InodeOps::getattr(Inode& inode, Stat& out) {
  out.ino = inode.ino();
  out.type = inode.type;
  out.mode = inode.mode;
  out.nlink = inode.nlink;
  out.size = inode.size;
  out.blocks = (inode.size + 511) / 512;
  out.atime = inode.atime;
  out.mtime = inode.mtime;
  out.ctime = inode.ctime;
  return Err::Ok;
}

Err FileOps::open(Inode&, FileHandle&) { return Err::Ok; }
Err FileOps::release(Inode&, FileHandle&) { return Err::Ok; }
Err FileOps::flush(Inode&, FileHandle&) { return Err::Ok; }
Err FileOps::readdir(Inode&, std::uint64_t&, const DirFiller&) {
  return Err::NotDir;
}

void SuperBlock::attach_flusher(std::unique_ptr<Flusher> flusher) {
  flushers_.push_back(std::move(flusher));
}

Flusher* SuperBlock::flusher_for(const Inode* hint) {
  if (flushers_.empty()) return nullptr;
  if (hint == nullptr || flushers_.size() == 1) return flushers_.front().get();
  return flushers_[hint->ino() % flushers_.size()].get();
}

void SuperBlock::poke_flushers(Inode* hint, std::size_t page_threshold) {
  Flusher* owner = flusher_for(hint);
  for (auto& f : flushers_) {
    f->poke(f.get() == owner ? hint : nullptr, page_threshold);
  }
}

void SuperBlock::fs_error(Err e) {
  if (e == Err::Ok) return;
  s_wb_err_.record(e);
  if (fs_error_ == Err::Ok) fs_error_ = e;
  switch (errors_mode) {
    case ErrorsMode::RemountRo:
      read_only_ = true;
      break;
    case ErrorsMode::Continue:
      break;
    case ErrorsMode::Panic:
      std::fprintf(stderr, "bsim: fs error (%d) on %s with errors=panic\n",
                   static_cast<int>(e), fs_name.c_str());
      std::abort();
  }
}

void SuperBlock::mark_inode_dirty(Inode& inode) {
  if (inode.on_dirty_list_) return;
  inode.on_dirty_list_ = true;
  dirty_inodes_.push_back(&inode);
}

void SuperBlock::collect_dirty_inodes(std::size_t shard, std::size_t nshards,
                                      std::vector<Inode*>& out,
                                      std::uint64_t& scanned) {
  std::size_t keep = 0;
  for (Inode* inode : dirty_inodes_) {
    scanned += 1;
    if (inode->mapping.nr_dirty() == 0) {
      inode->on_dirty_list_ = false;  // drained: prune lazily
      continue;
    }
    dirty_inodes_[keep++] = inode;
    if (nshards > 1 && inode->ino() % nshards != shard) continue;
    if (inode->type == FileType::Regular && inode->aops != nullptr) {
      out.push_back(inode);
    }
  }
  dirty_inodes_.resize(keep);
}

// ---- SuperBlock: inode cache ----

Inode* SuperBlock::iget_cached(Ino ino) {
  auto it = icache_.find(ino);
  if (it == icache_.end()) return nullptr;
  it->second->refcount_ += 1;
  return it->second.get();
}

Inode& SuperBlock::inew(Ino ino) {
  assert(!icache_.contains(ino));
  auto inode = std::make_unique<Inode>(*this, ino);
  inode->refcount_ = 1;
  Inode* raw = inode.get();
  icache_.emplace(ino, std::move(inode));
  return *raw;
}

void SuperBlock::iput(Inode* inode) {
  if (inode == nullptr) return;
  assert(inode->refcount_ > 0);
  inode->refcount_ -= 1;
  if (inode->refcount_ == 0 && inode->nlink == 0) {
    if (s_op != nullptr) s_op->evict_inode(*inode);
    if (inode->on_dirty_list_) {
      std::erase(dirty_inodes_, inode);  // the inode is about to die
    }
    icache_.erase(inode->ino());
  }
  // Inodes with links stay cached until unmount (icache pruning is not
  // relevant to any measured behaviour).
}

// ---- SuperBlock: dentry cache ----

std::string SuperBlock::dkey(Inode& dir, std::string_view name) {
  std::string key = std::to_string(dir.ino());
  key.push_back('/');
  key.append(name);
  return key;
}

Inode* SuperBlock::dcache_lookup(Inode& dir, std::string_view name) {
  auto it = dcache_.find(dkey(dir, name));
  if (it == dcache_.end()) return nullptr;
  return iget_cached(it->second);
}

void SuperBlock::dcache_add(Inode& dir, std::string_view name, Ino child) {
  dcache_[dkey(dir, name)] = child;
}

void SuperBlock::dcache_remove(Inode& dir, std::string_view name) {
  dcache_.erase(dkey(dir, name));
}

void SuperBlock::dcache_drop_dir(Inode& dir) {
  const std::string prefix = std::to_string(dir.ino()) + "/";
  for (auto it = dcache_.begin(); it != dcache_.end();) {
    if (it->first.starts_with(prefix)) it = dcache_.erase(it);
    else ++it;
  }
}

Err SuperBlock::sync_all() {
  for (auto& f : flushers_) f->wait_idle();
  for (auto& [ino, inode] : icache_) {
    if (inode->type == FileType::Regular && inode->aops != nullptr) {
      BSIM_TRY(generic_writeback(*inode));
    }
  }
  if (s_op != nullptr) BSIM_TRY(s_op->sync_fs(*this, /*wait=*/true));
  return Err::Ok;
}

// ---- generic file read/write ----

Result<std::uint64_t> generic_file_read(Inode& inode, std::uint64_t off,
                                        std::span<std::byte> out) {
  assert(inode.aops != nullptr);
  if (off >= inode.size) return std::uint64_t{0};
  const std::uint64_t want =
      std::min<std::uint64_t>(out.size(), inode.size - off);

  const std::uint64_t last_pg = (off + want - 1) / kPageSize;
  const std::uint64_t eof_pg = (inode.size - 1) / kPageSize;

  // Sequential-stream detection (once per call, before the page walk): a
  // read starting where the previous one ended grows the speculative
  // window (doubling, capped at kReadaheadMaxPages); anything else
  // collapses it. The window extends the miss-triggered readahead below
  // BEYOND the request, so a 4 KiB-at-a-time sequential scan still issues
  // large batched ->readpages calls instead of one per page.
  const std::size_t ra_window =
      inode.mapping.update_readahead(off / kPageSize, last_pg);
  const std::uint64_t ra_last_pg =
      std::min<std::uint64_t>(eof_pg, last_pg + ra_window);

  std::uint64_t done = 0;
  while (done < want) {
    const std::uint64_t pos = off + done;
    const std::uint64_t pgoff = pos / kPageSize;
    const std::size_t within = static_cast<std::size_t>(pos % kPageSize);
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(kPageSize - within,
                                                         want - done));
    // Hold the per-file lock across lookup + copy (see io_mutex()).
    sim::ScopedLock io(inode.mapping.io_mutex());
    // Readahead: a miss with more of the read window (or a speculative
    // stream window) ahead populates the remaining pages through the
    // batched ->readpages path (multi-block bios, one device submission)
    // instead of faulting page-at-a-time. Cache hits skip this entirely —
    // the probe rides the lookup below.
    if (ra_last_pg > pgoff && !inode.mapping.resident(pgoff)) {
      BSIM_TRY(inode.mapping.read_pages(
          inode, *inode.aops, pgoff,
          static_cast<std::size_t>(ra_last_pg - pgoff + 1)));
    }
    auto page = inode.mapping.read_page(inode, *inode.aops, pgoff);
    if (!page.ok()) return page.error();
    sim::charge(sim::costs().page_copy * static_cast<sim::Nanos>(chunk) /
                static_cast<sim::Nanos>(kPageSize));
    std::memcpy(out.data() + done, page.value()->bytes().data() + within,
                chunk);
    done += chunk;
  }
  return done;
}

Result<std::uint64_t> generic_file_write(Inode& inode, std::uint64_t off,
                                         std::span<const std::byte> in,
                                         const GenericWriteOptions& opts) {
  assert(inode.aops != nullptr);
  std::uint64_t done = 0;
  while (done < in.size()) {
    const std::uint64_t pos = off + done;
    const std::uint64_t pgoff = pos / kPageSize;
    const std::size_t within = static_cast<std::size_t>(pos % kPageSize);
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - within, in.size() - done));

    // Partial overwrite of an existing page within the file must read it
    // first; full-page writes (or fresh extension) need not.
    const bool full_page = within == 0 && chunk == kPageSize;
    const bool beyond_eof = pos >= inode.size;
    Page* page = nullptr;
    if (full_page || beyond_eof) {
      page = &inode.mapping.find_or_alloc(pgoff);
      page->uptodate = true;  // fully (over)written or beyond old EOF
    } else {
      auto r = inode.mapping.read_page(inode, *inode.aops, pgoff);
      if (!r.ok()) return r.error();
      page = r.value();
    }
    sim::charge(sim::costs().page_copy * static_cast<sim::Nanos>(chunk) /
                static_cast<sim::Nanos>(kPageSize));
    std::memcpy(page->bytes().data() + within, in.data() + done, chunk);
    inode.mapping.mark_dirty(pgoff);
    done += chunk;
  }
  inode.size = std::max(inode.size, off + done);
  inode.mtime = sim::now();

  // balance_dirty_pages analogue. With a flusher attached, the drain runs
  // on the background thread's clock (the writer is only charged the
  // poke); without one, writers are throttled by doing the writeback
  // themselves once the inode accumulates enough dirty pages. The
  // caller's dirty_threshold governs the trigger in both cases.
  if (inode.sb().flusher() != nullptr) {
    inode.sb().poke_flushers(&inode, opts.dirty_threshold);
  } else if (opts.dirty_threshold != 0 &&
             inode.mapping.nr_dirty() >= opts.dirty_threshold) {
    BSIM_TRY(generic_writeback(inode));
  }
  return done;
}

Err generic_writeback(Inode& inode) {
  assert(inode.aops != nullptr);
  return inode.mapping.writeback(inode, *inode.aops);
}

void generic_truncate_pagecache(Inode& inode, std::uint64_t new_size) {
  const std::uint64_t first_gone = (new_size + kPageSize - 1) / kPageSize;
  inode.mapping.truncate_from(first_gone);
  inode.mapping.zero_tail(new_size);
  inode.size = new_size;
}

}  // namespace bsim::kern
