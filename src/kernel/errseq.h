// errseq_t-style writeback error tracking (Linux lib/errseq.c analogue).
//
// A writeback failure on the flusher's clock has no caller to return to:
// the error must be parked where the NEXT fsync(2)/sync(2) on the file
// will see it — and be seen exactly once per file description, so two fds
// on the same file each get their own EIO and a second fsync on the same
// fd reports clean. The kernel solves this with errseq_t: a sequence
// counter bumped per recorded error, sampled into a per-file cursor at
// open, and compared at fsync. This is that mechanism, without the
// bit-packed encoding (virtual time is single-threaded; a plain counter
// carries the same information).
#pragma once

#include <cstdint>

#include "kernel/errno.h"

namespace bsim::kern {

/// A consumer's position in an error sequence (struct file's f_wb_err).
/// Sampled at open; advanced to the current sequence each time the
/// consumer observes (and thereby consumes) the pending error.
struct ErrSeqCursor {
  std::uint64_t seen = 0;
};

/// One error stream: a sequence number that advances on every recorded
/// failure, plus the most recent error value. Consumers holding a cursor
/// see each advance exactly once.
class ErrSeq {
 public:
  /// Record a failure (Ok is a no-op, so callers can record
  /// unconditionally on the writeback result).
  void record(Err e) {
    if (e == Err::Ok) return;
    seq_ += 1;
    last_ = e;
  }

  /// Position for a fresh consumer: errors recorded before it opened are
  /// not its to report.
  [[nodiscard]] ErrSeqCursor sample() const { return ErrSeqCursor{seq_}; }

  /// Report-once check: if errors were recorded since `c` last looked,
  /// advance the cursor and return the latest one; otherwise Ok.
  [[nodiscard]] Err check(ErrSeqCursor& c) const {
    if (c.seen == seq_) return Err::Ok;
    c.seen = seq_;
    return last_;
  }

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] Err last() const { return last_; }

 private:
  std::uint64_t seq_ = 0;
  Err last_ = Err::Ok;
};

}  // namespace bsim::kern
