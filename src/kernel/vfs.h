// The simulated Linux VFS layer: superblocks, inodes, the operation tables
// file systems implement, the inode and dentry caches, and the generic
// page-cache-backed file read/write helpers.
//
// This is the interface the paper's §2.2 calls "complex and with few
// guardrails": shared data structures (Inode, BufferHead) pass freely
// across it. The C baseline (src/xv6fs_c) and the ext4 comparator implement
// it directly; BentoFS (src/bento) interposes on it and exposes the safe
// file-operations API instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/buffer_cache.h"
#include "kernel/errno.h"
#include "kernel/flusher.h"
#include "kernel/page_cache.h"
#include "kernel/types.h"
#include "sim/jsonw.h"
#include "sim/sync.h"

namespace bsim::kern {

class SuperBlock;
class Inode;
struct FileHandle;

/// Per-open-file state handed to FileOps (like struct file's private_data).
struct FileHandle {
  std::uint64_t fh = 0;  // FS-private cookie
  int flags = 0;
  /// Writeback-error cursors (struct file's f_wb_err / f_sb_err): sampled
  /// at open against the inode mapping's and the superblock buffer
  /// cache's error sequences, advanced when fsync reports a pending
  /// failure — so each fd sees a given writeback error exactly once.
  ErrSeqCursor wb_err;
  ErrSeqCursor bc_wb_err;
};

/// Inode operations (directory-level namespace ops live on the dir inode).
class InodeOps {
 public:
  virtual ~InodeOps() = default;
  virtual Result<Inode*> lookup(Inode& dir, std::string_view name) = 0;
  virtual Result<Inode*> create(Inode& dir, std::string_view name,
                                std::uint32_t mode);
  virtual Err unlink(Inode& dir, std::string_view name);
  virtual Result<Inode*> mkdir(Inode& dir, std::string_view name,
                               std::uint32_t mode);
  virtual Err rmdir(Inode& dir, std::string_view name);
  virtual Err rename(Inode& old_dir, std::string_view old_name,
                     Inode& new_dir, std::string_view new_name);
  virtual Err setattr(Inode& inode, const SetAttr& attr);
  virtual Err getattr(Inode& inode, Stat& out);
};

/// File operations.
class FileOps {
 public:
  virtual ~FileOps() = default;
  virtual Err open(Inode& inode, FileHandle& fh);
  virtual Err release(Inode& inode, FileHandle& fh);
  virtual Result<std::uint64_t> read(Inode& inode, FileHandle& fh,
                                     std::uint64_t off,
                                     std::span<std::byte> out) = 0;
  virtual Result<std::uint64_t> write(Inode& inode, FileHandle& fh,
                                      std::uint64_t off,
                                      std::span<const std::byte> in) = 0;
  virtual Err fsync(Inode& inode, FileHandle& fh, bool datasync) = 0;
  /// Called when the last writer closes (the ->flush path); default no-op.
  virtual Err flush(Inode& inode, FileHandle& fh);
  virtual Err readdir(Inode& inode, std::uint64_t& pos,
                      const DirFiller& fill);
};

/// Superblock operations.
class SuperOps {
 public:
  virtual ~SuperOps() = default;
  virtual Err sync_fs(SuperBlock& sb, bool wait) = 0;
  virtual Err statfs(SuperBlock& sb, StatFs& out) = 0;
  virtual void put_super(SuperBlock& sb) = 0;
  /// Called when an unlinked inode loses its last reference.
  virtual void evict_inode(Inode& inode) = 0;
};

/// An in-core inode. Owned by its superblock's inode cache.
class Inode {
 public:
  Inode(SuperBlock& sb, Ino ino) : sb_(&sb), ino_(ino) {
    mapping.set_owner(this);
  }

  Inode(const Inode&) = delete;
  Inode& operator=(const Inode&) = delete;

  [[nodiscard]] SuperBlock& sb() { return *sb_; }
  [[nodiscard]] Ino ino() const { return ino_; }

  FileType type = FileType::None;
  std::uint32_t mode = 0;
  std::uint32_t nlink = 0;
  std::uint64_t size = 0;
  sim::Nanos atime = 0, mtime = 0, ctime = 0;

  InodeOps* iop = nullptr;
  FileOps* fop = nullptr;
  AddressSpaceOps* aops = nullptr;
  AddressSpace mapping;
  sim::SimRwLock rwsem;  // i_rwsem: write path exclusion

  /// FS-private in-core state (e.g. the xv6 in-memory dinode copy).
  void* fs_priv = nullptr;

  [[nodiscard]] int refcount() const { return refcount_; }

 private:
  friend class SuperBlock;
  SuperBlock* sb_;
  Ino ino_;
  int refcount_ = 0;
  bool on_dirty_list_ = false;  // membership in sb's dirty-inode list
};

/// An in-core superblock: one mounted file system instance.
class SuperBlock {
 public:
  SuperBlock(blk::BlockDevice& dev, std::size_t buffer_cache_blocks)
      : bufcache_(dev, buffer_cache_blocks) {}

  SuperBlock(const SuperBlock&) = delete;
  SuperBlock& operator=(const SuperBlock&) = delete;

  SuperOps* s_op = nullptr;
  Inode* root = nullptr;
  void* fs_info = nullptr;  // FS-private superblock state
  std::string fs_name;

  // ---- error behaviour (the ext4 `errors=` mount option) ----
  /// What a detected file-system error (journal abort, failed metadata
  /// write the FS cannot recover) does to the mount.
  enum class ErrorsMode : std::uint8_t {
    RemountRo,  // flip read-only: reads keep serving, writes fail RoFs
    Continue,   // record and keep going (errors still report via errseq)
    Panic,      // abort the simulation (errors=panic)
  };
  ErrorsMode errors_mode = ErrorsMode::RemountRo;

  /// Whether the mount has degraded to read-only (fs_error under
  /// errors=remount-ro). Mutating syscalls check this at the VFS border.
  [[nodiscard]] bool read_only() const { return read_only_; }
  /// The first error that degraded the mount (Ok when healthy).
  [[nodiscard]] Err fs_error_seen() const { return fs_error_; }
  /// A file system detected an unrecoverable error (ext4_error /
  /// xv6 journal abort): apply the configured errors= policy. Idempotent;
  /// the first error wins.
  void fs_error(Err e);

  /// Errors recorded against the whole FS (journal aborts, fs_error
  /// calls): fsync on ANY fd of this mount must report them once.
  [[nodiscard]] const ErrSeq& s_wb_err() const { return s_wb_err_; }

  [[nodiscard]] BufferCache& bufcache() { return bufcache_; }
  [[nodiscard]] blk::BlockDevice& bdev() { return bufcache_.device(); }

  // ---- inode cache ----
  /// Look up an in-core inode; returns nullptr if not cached. Takes a ref.
  Inode* iget_cached(Ino ino);
  /// Create the in-core inode (must not exist). Takes a ref.
  Inode& inew(Ino ino);
  /// Take an additional reference.
  static void ihold(Inode& inode) { inode.refcount_ += 1; }
  /// Drop a reference; evicts (via s_op->evict_inode) when an unlinked
  /// inode loses its last reference.
  void iput(Inode* inode);
  [[nodiscard]] std::size_t cached_inodes() const { return icache_.size(); }
  /// Iterate all in-core inodes (unmount-time cleanup by file systems).
  template <class F>
  void for_each_inode(F&& f) {
    for (auto& [ino, inode] : icache_) f(*inode);
  }

  // ---- dentry cache ----
  /// Positive-entry dcache: (parent ino, name) -> child ino.
  Inode* dcache_lookup(Inode& dir, std::string_view name);
  void dcache_add(Inode& dir, std::string_view name, Ino child);
  void dcache_remove(Inode& dir, std::string_view name);
  void dcache_drop_dir(Inode& dir);

  /// Write back all cached file pages + fs metadata (sync(2) path).
  /// Waits for the background flusher first, so "synced" is never earlier
  /// in virtual time than writeback that already ran in the background.
  Err sync_all();

  // ---- background writeback ----
  /// Attach a per-device flusher thread (file systems opt in at mount;
  /// see kernel/flusher.h). Generic write paths then hand threshold
  /// writeback to it instead of running writer-context sync. A striped
  /// volume attaches one flusher per member device (see
  /// maybe_attach_flusher); each call appends one.
  void attach_flusher(std::unique_ptr<Flusher> flusher);
  /// The lead flusher (shard 0), or null when background writeback is
  /// off. Single-device mounts have exactly one.
  [[nodiscard]] Flusher* flusher() {
    return flushers_.empty() ? nullptr : flushers_.front().get();
  }
  [[nodiscard]] std::size_t flusher_count() const { return flushers_.size(); }
  [[nodiscard]] Flusher* flusher_at(std::size_t i) {
    return flushers_[i].get();
  }
  /// The flusher responsible for `hint`'s writeback (inodes shard across
  /// the per-device flushers by inode number), or null when none.
  [[nodiscard]] Flusher* flusher_for(const Inode* hint);
  /// Writer-side writeback hook: poke the hint-inode's own flusher (which
  /// may throttle the caller against its member's backlog) and give every
  /// OTHER member's flusher a courtesy wake check with no hint — their
  /// shard's buffer threshold and periodic timer still fire, so dirty
  /// state on members no writer's inode hashes to keeps draining, but an
  /// unowned member's backlog never throttles this writer.
  void poke_flushers(Inode* hint, std::size_t page_threshold);

  // ---- dirty-inode list (the per-bdi b_dirty list) ----
  /// Register an inode whose mapping just became dirty. Called by
  /// AddressSpace::mark_dirty on the 0 -> 1 transition; idempotent.
  void mark_inode_dirty(Inode& inode);
  /// Collect this shard's dirty regular inodes in dirtying order, lazily
  /// pruning entries whose pages have drained. `scanned` accumulates how
  /// many list entries were examined (the O(dirty) regression stat).
  void collect_dirty_inodes(std::size_t shard, std::size_t nshards,
                            std::vector<Inode*>& out,
                            std::uint64_t& scanned);
  [[nodiscard]] std::size_t dirty_inode_count() const {
    return dirty_inodes_.size();
  }

  // ---- stats registry ----
  /// A callback that appends one or more JSON objects (each with a
  /// "struct" key naming its stats type) to an open array.
  using StatsDumper = std::function<void(sim::JsonWriter&)>;
  /// Join the unified stats snapshot (Kernel::dump_stats). File systems
  /// register their *Stats owners at mount; `name` labels the source.
  void register_stats(std::string name, StatsDumper fn) {
    stats_dumpers_.emplace_back(std::move(name), std::move(fn));
  }
  [[nodiscard]] const std::vector<std::pair<std::string, StatsDumper>>&
  stats_dumpers() const {
    return stats_dumpers_;
  }

 private:
  static std::string dkey(Inode& dir, std::string_view name);

  bool read_only_ = false;
  Err fs_error_ = Err::Ok;
  ErrSeq s_wb_err_;

  std::vector<std::unique_ptr<Flusher>> flushers_;
  std::vector<Inode*> dirty_inodes_;  // insertion (dirtying) order
  std::vector<std::pair<std::string, StatsDumper>> stats_dumpers_;

  BufferCache bufcache_;
  std::unordered_map<Ino, std::unique_ptr<Inode>> icache_;
  std::unordered_map<std::string, Ino> dcache_;
};

/// A mountable file system type (registered with the Kernel).
class FileSystemType {
 public:
  virtual ~FileSystemType() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Build a SuperBlock over `dev`. `opts` is a free-form option string.
  virtual Result<SuperBlock*> mount(blk::BlockDevice& dev,
                                    std::string_view opts) = 0;
  /// Tear down a superblock produced by mount().
  virtual void kill_sb(SuperBlock* sb) = 0;
};

// ---- Generic page-cache-backed file helpers (generic_file_read_iter /
// generic_perform_write analogues). File systems whose FileOps use the page
// cache call these; they handle partial pages, extension, and the dirty-
// threshold writeback that models balance_dirty_pages. ----

Result<std::uint64_t> generic_file_read(Inode& inode, std::uint64_t off,
                                        std::span<std::byte> out);

struct GenericWriteOptions {
  /// Start synchronous writeback once this many pages are dirty.
  std::size_t dirty_threshold = 256;
};

Result<std::uint64_t> generic_file_write(Inode& inode, std::uint64_t off,
                                         std::span<const std::byte> in,
                                         const GenericWriteOptions& opts = {});

/// Flush the inode's dirty pages through its AddressSpaceOps.
Err generic_writeback(Inode& inode);

/// Truncate helper: drops/zeroes cached pages then updates inode size.
void generic_truncate_pagecache(Inode& inode, std::uint64_t new_size);

}  // namespace bsim::kern
