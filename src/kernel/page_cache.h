// Per-inode page cache (address space) with writepage / writepages
// writeback — the mechanism behind the paper's §6.5.2 observation that
// BentoFS (which inherits the FUSE driver's batched ->writepages path)
// outperforms the VFS C baseline (per-page ->writepage) on large writes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "kernel/errno.h"
#include "kernel/errseq.h"
#include "kernel/types.h"
#include "sim/sync.h"

namespace bsim::kern {

class Inode;

struct Page {
  std::unique_ptr<std::array<std::byte, kPageSize>> data;
  bool uptodate = false;
  bool dirty = false;

  [[nodiscard]] std::span<std::byte> bytes() { return {data->data(), kPageSize}; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data->data(), kPageSize};
  }
};

/// A contiguous run of dirty pages handed to ->writepages.
struct PageRun {
  std::uint64_t first_pgoff = 0;
  std::vector<const Page*> pages;
};

/// Address-space operations a file system provides for cached file data.
class AddressSpaceOps {
 public:
  virtual ~AddressSpaceOps() = default;

  /// Fill one page from backing store.
  virtual Err readpage(Inode& inode, std::uint64_t pgoff,
                       std::span<std::byte> out) = 0;

  /// Batched fill of a contiguous page run (the readahead path): file
  /// systems that opt in translate the run into multi-block bios and one
  /// request-queue submission. Only called when has_readpages() is true;
  /// the default loops ->readpage.
  virtual Err readpages(Inode& inode, std::uint64_t first_pgoff,
                        std::span<const std::span<std::byte>> pages);

  [[nodiscard]] virtual bool has_readpages() const { return false; }

  /// Write one page to backing store (the unbatched path).
  virtual Err writepage(Inode& inode, std::uint64_t pgoff,
                        std::span<const std::byte> in) = 0;

  /// Batched writeback of contiguous runs. Only called when
  /// has_writepages() is true; the default VFS path loops ->writepage.
  /// Implementations MUST set `completed_runs` to the number of leading
  /// runs that fully reached backing store (== runs.size() on success):
  /// on a mid-run failure the caller clears dirty state for exactly that
  /// prefix and keeps the remaining pages dirty for the next writeback,
  /// instead of either re-submitting runs that already reached media or
  /// dropping dirty data that never did.
  virtual Err writepages(Inode& inode, std::span<const PageRun> runs,
                         std::size_t& completed_runs);

  [[nodiscard]] virtual bool has_writepages() const { return false; }
};

struct AddressSpaceStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writeback_pages = 0;
  std::uint64_t writeback_calls = 0;
  std::uint64_t readahead_batches = 0;  // batched ->readpages calls
  std::uint64_t readahead_pages = 0;    // pages filled by those batches
  std::uint64_t ra_sequential_hits = 0;  // reads detected as stream-sequential
  std::uint64_t ra_window_max = 0;       // largest readahead window reached
};

/// Sequential-stream readahead (Linux `ra_pages`-style): the generic read
/// path detects a read that starts where the previous one ended and grows
/// a speculative window — doubling per sequential read, capped — that is
/// read beyond the request through the batched ->readpages path. Any
/// non-sequential read collapses the window to zero (readahead then only
/// covers the request itself, as before).
inline constexpr std::size_t kReadaheadInitPages = 4;   // first window: 16 KiB
inline constexpr std::size_t kReadaheadMaxPages = 32;   // cap: 128 KiB

struct ReadaheadState {
  std::uint64_t next_pgoff = ~0ULL;  // expected start of a sequential read
  std::size_t window = 0;            // current speculative window (pages)
};

/// The cached pages of one inode.
class AddressSpace {
 public:
  /// Back-pointer to the owning inode (set by the Inode constructor).
  /// Lets mark_dirty register the inode on its superblock's dirty-inode
  /// list (__mark_inode_dirty), so flusher wakes walk O(dirty) inodes
  /// instead of the whole inode cache.
  void set_owner(Inode* inode) { owner_ = inode; }

  /// Find a page, or null. Timed (radix lookup under the tree lock).
  Page* find(std::uint64_t pgoff);

  /// Untimed, stat-free presence probe: is the page resident and
  /// uptodate? The readahead trigger rides the lookup the caller is about
  /// to pay for anyway (like PG_readahead), so it charges nothing.
  [[nodiscard]] bool resident(std::uint64_t pgoff) const;

  /// Find or allocate (not yet uptodate if fresh). Timed.
  Page& find_or_alloc(std::uint64_t pgoff);

  /// Ensure the page is present and uptodate, reading through `aops`.
  Result<Page*> read_page(Inode& inode, AddressSpaceOps& aops,
                          std::uint64_t pgoff);

  /// Ensure [pgoff, pgoff+n) are present and uptodate. Missing runs go
  /// through aops.readpages when supported (one batched submission per
  /// contiguous run of misses), else through per-page ->readpage.
  Err read_pages(Inode& inode, AddressSpaceOps& aops, std::uint64_t pgoff,
                 std::size_t n);

  void mark_dirty(std::uint64_t pgoff);

  /// Write every dirty page back through `aops` (batched when supported),
  /// in pgoff order. Clears dirty bits for exactly the pages that reached
  /// backing store: a partial failure keeps the unwritten tail dirty so
  /// the next writeback retries only what is still pending.
  Err writeback(Inode& inode, AddressSpaceOps& aops);

  /// Drop pages at or beyond `from_pgoff` (truncate).
  void truncate_from(std::uint64_t from_pgoff);

  /// Zero the tail of the page containing `size` beyond it (truncate within
  /// a page keeps the page but must clear stale bytes).
  void zero_tail(std::uint64_t size);

  void drop_all();

  /// Per-file I/O serialization: the FUSE-derived read path (which BentoFS
  /// inherits) holds the per-file lock across the page copy, so concurrent
  /// readers of one file do not scale with thread count (Figure 2's flat
  /// 32-thread bars).
  [[nodiscard]] sim::SimMutex& io_mutex() { return tree_lock_; }

  [[nodiscard]] std::size_t nr_pages() const { return pages_.size(); }
  [[nodiscard]] std::size_t nr_dirty() const { return nr_dirty_; }
  /// Absolute virtual completion time of this mapping's latest writeback,
  /// on whichever thread ran it. fsync waits on THIS (per-inode, like
  /// waiting on PAGECACHE_TAG_WRITEBACK) rather than on everything the
  /// background flusher ever did — an unrelated file's writeback never
  /// charges this inode's fsync.
  [[nodiscard]] sim::Nanos writeback_done_at() const {
    return writeback_done_at_;
  }

  /// Writeback error sequence (mapping->wb_err): every failed writeback
  /// of this mapping — foreground, throttled, or on the flusher's clock —
  /// is recorded here; fsync reports it exactly once per open file via
  /// the FileHandle's cursor.
  [[nodiscard]] const ErrSeq& wb_err() const { return wb_err_; }

  [[nodiscard]] const AddressSpaceStats& stats() const { return stats_; }

  /// Per-file readahead state (one sequential stream per open pattern,
  /// like struct file_ra_state hanging off the mapping). Maintained by
  /// generic_file_read; update_readahead applies the stream detection and
  /// returns the speculative window to read beyond the request.
  std::size_t update_readahead(std::uint64_t first_pg, std::uint64_t last_pg);
  [[nodiscard]] const ReadaheadState& readahead_state() const { return ra_; }

 private:
  Inode* owner_ = nullptr;
  std::map<std::uint64_t, Page> pages_;  // ordered for run coalescing
  /// Dirty-tag index (the radix tree's PAGECACHE_TAG_DIRTY): writeback
  /// walks only dirty pages, not the whole mapping — an append-fsync
  /// workload on a large file is O(dirty) per fsync, not O(file).
  std::set<std::uint64_t> dirty_pages_;
  std::size_t nr_dirty_ = 0;
  ReadaheadState ra_;
  ErrSeq wb_err_;
  sim::Nanos writeback_done_at_ = 0;
  sim::SimMutex tree_lock_{sim::SimMutex::Kind::Spin};
  AddressSpaceStats stats_;
};

}  // namespace bsim::kern
