#include "ebpf/verifier.h"

#include <vector>

namespace bsim::ebpf {

namespace {

using RegMask = std::uint16_t;  // bit i = register i initialized

struct Checker {
  std::span<const Insn> prog;
  std::size_t ctx_size;
  VerifyResult fail(int pc, std::string msg) {
    VerifyResult r;
    r.ok = false;
    r.error = std::move(msg);
    r.error_pc = pc;
    return r;
  }
};

bool reads_dst(Op op) {
  switch (op) {
    case Op::AddImm: case Op::AddReg: case Op::SubImm: case Op::SubReg:
    case Op::MulImm: case Op::AndImm: case Op::OrImm: case Op::XorImm:
    case Op::XorReg: case Op::LshImm: case Op::RshImm:
    case Op::JeqImm: case Op::JneImm: case Op::JgtImm: case Op::JgeImm:
    case Op::JltImm: case Op::JeqReg: case Op::JneReg:
      return true;
    default:
      return false;
  }
}

bool reads_src(Op op) {
  switch (op) {
    case Op::MovReg: case Op::AddReg: case Op::SubReg: case Op::XorReg:
    case Op::StCtx8: case Op::JeqReg: case Op::JneReg:
      return true;
    default:
      return false;
  }
}

bool writes_dst(Op op) {
  switch (op) {
    case Op::MovImm: case Op::MovReg: case Op::AddImm: case Op::AddReg:
    case Op::SubImm: case Op::SubReg: case Op::MulImm: case Op::AndImm:
    case Op::OrImm: case Op::XorImm: case Op::XorReg: case Op::LshImm:
    case Op::RshImm: case Op::LdCtx8:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) {
  switch (op) {
    case Op::Ja: case Op::JeqImm: case Op::JneImm: case Op::JgtImm:
    case Op::JgeImm: case Op::JltImm: case Op::JeqReg: case Op::JneReg:
      return true;
    default:
      return false;
  }
}

}  // namespace

VerifyResult verify(std::span<const Insn> prog, std::size_t ctx_size) {
  Checker c{prog, ctx_size};
  const int n = static_cast<int>(prog.size());
  if (n == 0) return c.fail(-1, "empty program");
  if (n > kMaxInsns) return c.fail(-1, "program exceeds instruction limit");
  if (ctx_size > kMaxCtxSize) return c.fail(-1, "context too large");
  if (prog[static_cast<std::size_t>(n - 1)].op != Op::Exit) {
    return c.fail(n - 1, "program must end with Exit");
  }

  // Because jumps are forward-only, a single in-order pass computes the
  // initialized-register set at each pc: the state flowing into a jump
  // target is the intersection (conservative meet) of every inbound edge.
  constexpr RegMask kUnreached = 0xffff;  // top: everything "initialized"
  std::vector<RegMask> in(static_cast<std::size_t>(n), kUnreached);
  std::vector<bool> reached(static_cast<std::size_t>(n), false);
  in[0] = 0;  // entry: nothing initialized (the context is implicit)
  reached[0] = true;

  for (int pc = 0; pc < n; ++pc) {
    if (!reached[static_cast<std::size_t>(pc)]) continue;
    const Insn& insn = prog[static_cast<std::size_t>(pc)];
    RegMask regs = in[static_cast<std::size_t>(pc)];

    // ---- structural checks ----
    if (insn.dst >= kNumRegs) return c.fail(pc, "bad dst register");
    if (insn.src >= kNumRegs) return c.fail(pc, "bad src register");
    if (is_jump(insn.op)) {
      if (insn.off <= 0) return c.fail(pc, "backward or self jump (loop)");
      const int target = pc + 1 + insn.off;
      if (target >= n) return c.fail(pc, "jump out of range");
    }
    if (insn.op == Op::LdCtx8 || insn.op == Op::StCtx8 ||
        insn.op == Op::StCtxImm) {
      if (insn.off < 0 ||
          static_cast<std::size_t>(insn.off) + 8 > ctx_size) {
        return c.fail(pc, "context access out of bounds");
      }
      if (insn.off % 8 != 0) return c.fail(pc, "unaligned context access");
    }
    if (insn.op == Op::Call) {
      if (insn.imm < 1 || insn.imm > kHelperMax) {
        return c.fail(pc, "unknown helper");
      }
    }
    if ((insn.op == Op::LshImm || insn.op == Op::RshImm) &&
        (insn.imm < 0 || insn.imm > 63)) {
      return c.fail(pc, "shift amount out of range");
    }

    // ---- register initialization ----
    if (reads_dst(insn.op) && (regs & (1u << insn.dst)) == 0) {
      return c.fail(pc, "read of uninitialized register (dst)");
    }
    if (reads_src(insn.op) && (regs & (1u << insn.src)) == 0) {
      return c.fail(pc, "read of uninitialized register (src)");
    }
    if (insn.op == Op::Exit && (regs & 1u) == 0) {
      return c.fail(pc, "Exit with uninitialized r0");
    }
    if (insn.op == Op::Call) {
      // Helper ABI: r1..r3 must be set up (we require all used args
      // initialized; helpers take up to three).
      for (int r = 1; r <= 3; ++r) {
        if ((regs & (1u << r)) == 0) {
          return c.fail(pc, "helper call with uninitialized argument");
        }
      }
    }

    // ---- transfer ----
    RegMask out = regs;
    if (writes_dst(insn.op)) out |= static_cast<RegMask>(1u << insn.dst);
    if (insn.op == Op::Call) {
      out |= 1u;  // r0 = result
      for (int r = 1; r <= 5; ++r) {
        out &= static_cast<RegMask>(~(1u << r));  // caller-saved clobber
      }
    }

    auto flow = [&](int target, RegMask mask) {
      auto& slot = in[static_cast<std::size_t>(target)];
      slot = reached[static_cast<std::size_t>(target)]
                 ? static_cast<RegMask>(slot & mask)
                 : mask;
      reached[static_cast<std::size_t>(target)] = true;
    };
    if (insn.op == Op::Exit) continue;  // no fallthrough
    if (insn.op == Op::Ja) {
      flow(pc + 1 + insn.off, out);
      continue;
    }
    if (is_jump(insn.op)) flow(pc + 1 + insn.off, out);
    if (pc + 1 < n) flow(pc + 1, out);
  }

  VerifyResult ok;
  ok.ok = true;
  return ok;
}

}  // namespace bsim::ebpf
