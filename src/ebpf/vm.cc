#include "ebpf/vm.h"

#include <cstring>

#include "sim/cost_model.h"
#include "sim/thread.h"

namespace bsim::ebpf {

namespace {

std::string key_string(std::span<const std::byte> key) {
  return {reinterpret_cast<const char*>(key.data()), key.size()};
}

void charge(sim::Nanos cost) {
  if (sim::current_or_null() != nullptr) sim::charge(cost);
}

}  // namespace

// ---- BpfMap ----

std::span<const std::byte> BpfMap::lookup(
    std::span<const std::byte> key) const {
  if (key.size() != key_size_) return {};
  auto it = entries_.find(key_string(key));
  if (it == entries_.end()) return {};
  return it->second;
}

bool BpfMap::update(std::span<const std::byte> key,
                    std::span<const std::byte> val) {
  if (key.size() != key_size_ || val.size() != value_size_) return false;
  auto it = entries_.find(key_string(key));
  if (it != entries_.end()) {
    it->second.assign(val.begin(), val.end());
    return true;
  }
  if (entries_.size() >= max_entries_) return false;
  entries_.emplace(key_string(key),
                   std::vector<std::byte>(val.begin(), val.end()));
  return true;
}

bool BpfMap::erase(std::span<const std::byte> key) {
  if (key.size() != key_size_) return false;
  return entries_.erase(key_string(key)) > 0;
}

// ---- Vm ----

std::int64_t Vm::add_map(std::size_t key_size, std::size_t value_size,
                         std::size_t max_entries) {
  maps_.push_back(std::make_unique<BpfMap>(key_size, value_size, max_entries));
  return static_cast<std::int64_t>(maps_.size());  // ids start at 1
}

BpfMap* Vm::map(std::int64_t id) {
  if (id < 1 || static_cast<std::size_t>(id) > maps_.size()) return nullptr;
  return maps_[static_cast<std::size_t>(id - 1)].get();
}

Vm::LoadResult Vm::load(std::vector<Insn> prog, std::size_t ctx_size) {
  LoadResult r;
  const VerifyResult v = verify(prog, ctx_size);
  if (!v.ok) {
    r.error = v.error + " @pc=" + std::to_string(v.error_pc);
    return r;
  }
  prog_ = std::move(prog);
  ctx_size_ = ctx_size;
  r.ok = true;
  return r;
}

kern::Result<std::uint64_t> Vm::run(std::span<std::byte> ctx) {
  if (prog_.empty() || ctx.size() != ctx_size_) return kern::Err::Inval;
  stats_.runs += 1;

  std::uint64_t reg[kNumRegs] = {};
  std::size_t pc = 0;
  std::uint64_t executed = 0;

  for (;;) {
    const Insn& insn = prog_[pc];
    executed += 1;

    switch (insn.op) {
      case Op::MovImm: reg[insn.dst] = static_cast<std::uint64_t>(insn.imm); break;
      case Op::MovReg: reg[insn.dst] = reg[insn.src]; break;
      case Op::AddImm: reg[insn.dst] += static_cast<std::uint64_t>(insn.imm); break;
      case Op::AddReg: reg[insn.dst] += reg[insn.src]; break;
      case Op::SubImm: reg[insn.dst] -= static_cast<std::uint64_t>(insn.imm); break;
      case Op::SubReg: reg[insn.dst] -= reg[insn.src]; break;
      case Op::MulImm: reg[insn.dst] *= static_cast<std::uint64_t>(insn.imm); break;
      case Op::AndImm: reg[insn.dst] &= static_cast<std::uint64_t>(insn.imm); break;
      case Op::OrImm:  reg[insn.dst] |= static_cast<std::uint64_t>(insn.imm); break;
      case Op::XorImm: reg[insn.dst] ^= static_cast<std::uint64_t>(insn.imm); break;
      case Op::XorReg: reg[insn.dst] ^= reg[insn.src]; break;
      case Op::LshImm: reg[insn.dst] <<= insn.imm; break;
      case Op::RshImm: reg[insn.dst] >>= insn.imm; break;
      case Op::LdCtx8:
        std::memcpy(&reg[insn.dst], ctx.data() + insn.off, 8);
        break;
      case Op::StCtx8:
        std::memcpy(ctx.data() + insn.off, &reg[insn.src], 8);
        break;
      case Op::StCtxImm: {
        const auto v = static_cast<std::uint64_t>(insn.imm);
        std::memcpy(ctx.data() + insn.off, &v, 8);
        break;
      }
      case Op::Ja:
        pc += static_cast<std::size_t>(insn.off);
        break;
      case Op::JeqImm:
        if (reg[insn.dst] == static_cast<std::uint64_t>(insn.imm)) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JneImm:
        if (reg[insn.dst] != static_cast<std::uint64_t>(insn.imm)) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JgtImm:
        if (reg[insn.dst] > static_cast<std::uint64_t>(insn.imm)) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JgeImm:
        if (reg[insn.dst] >= static_cast<std::uint64_t>(insn.imm)) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JltImm:
        if (reg[insn.dst] < static_cast<std::uint64_t>(insn.imm)) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JeqReg:
        if (reg[insn.dst] == reg[insn.src]) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;
      case Op::JneReg:
        if (reg[insn.dst] != reg[insn.src]) {
          pc += static_cast<std::size_t>(insn.off);
        }
        break;

      case Op::Call: {
        stats_.map_ops += 1;
        charge(sim::costs().ebpf_map_op);
        BpfMap* m = map(static_cast<std::int64_t>(reg[1]));
        if (m == nullptr) {
          stats_.traps += 1;
          return kern::Err::Inval;
        }
        auto ctx_slice = [&](std::uint64_t off, std::size_t len)
            -> std::span<std::byte> {
          if (off > ctx.size() || len > ctx.size() - off) return {};
          return ctx.subspan(static_cast<std::size_t>(off), len);
        };
        switch (insn.imm) {
          case kHelperMapLookup: {
            auto key = ctx_slice(reg[2], m->key_size());
            auto dst = ctx_slice(reg[3], m->value_size());
            if (key.empty() || dst.empty()) {
              stats_.traps += 1;
              return kern::Err::Inval;
            }
            auto val = m->lookup(key);
            if (val.empty()) {
              reg[0] = 0;
            } else {
              std::memcpy(dst.data(), val.data(), val.size());
              reg[0] = 1;
            }
            break;
          }
          case kHelperMapUpdate: {
            auto key = ctx_slice(reg[2], m->key_size());
            auto val = ctx_slice(reg[3], m->value_size());
            if (key.empty() || val.empty()) {
              stats_.traps += 1;
              return kern::Err::Inval;
            }
            reg[0] = m->update(key, val) ? 0 : ~0ULL;
            break;
          }
          case kHelperMapDelete: {
            auto key = ctx_slice(reg[2], m->key_size());
            if (key.empty()) {
              stats_.traps += 1;
              return kern::Err::Inval;
            }
            reg[0] = m->erase(key) ? 1 : 0;
            break;
          }
          default:
            stats_.traps += 1;
            return kern::Err::Inval;
        }
        for (int r = 1; r <= 5; ++r) reg[r] = 0;  // caller-saved clobber
        break;
      }

      case Op::Exit:
        stats_.insns += executed;
        charge(static_cast<sim::Nanos>(executed) * sim::costs().ebpf_insn);
        return reg[0];
    }
    pc += 1;
  }
}

}  // namespace bsim::ebpf
