// The eBPF virtual machine: maps, helper dispatch, and the interpreter.
//
// Programs must pass the verifier before they can be attached; run() then
// executes without runtime checks for the properties the verifier proved
// (jump bounds, register initialization, ctx bounds) — the same
// trust-the-verifier structure as the kernel. Map helper arguments that
// the verifier cannot see (key/value offsets arriving in registers) are
// checked dynamically and trap the program.
//
// Costs: a verified program is assumed JIT-compiled, so each executed
// instruction charges ~1 ns of virtual time; map operations charge a hash
// probe. This is what makes the ExtFUSE design point fast (§2.2: "safe
// extensibility without significant performance overhead").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ebpf/insn.h"
#include "ebpf/verifier.h"
#include "kernel/errno.h"

namespace bsim::ebpf {

/// A BPF_MAP_TYPE_HASH analogue with fixed-size keys and values.
class BpfMap {
 public:
  BpfMap(std::size_t key_size, std::size_t value_size,
         std::size_t max_entries)
      : key_size_(key_size), value_size_(value_size),
        max_entries_(max_entries) {}

  [[nodiscard]] std::size_t key_size() const { return key_size_; }
  [[nodiscard]] std::size_t value_size() const { return value_size_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Returns the stored value bytes or empty span on miss.
  [[nodiscard]] std::span<const std::byte> lookup(
      std::span<const std::byte> key) const;
  /// Insert or overwrite. Fails (false) when full and the key is new.
  bool update(std::span<const std::byte> key, std::span<const std::byte> val);
  /// Returns true if an entry was removed.
  bool erase(std::span<const std::byte> key);
  void clear() { entries_.clear(); }

 private:
  std::size_t key_size_;
  std::size_t value_size_;
  std::size_t max_entries_;
  std::unordered_map<std::string, std::vector<std::byte>> entries_;
};

/// A loaded-and-verified program plus the maps it may use.
class Vm {
 public:
  /// Create a map; returns its id (for helper r1 arguments).
  std::int64_t add_map(std::size_t key_size, std::size_t value_size,
                       std::size_t max_entries);
  [[nodiscard]] BpfMap* map(std::int64_t id);

  /// Verify and install a program. Rejections carry the verifier message.
  struct LoadResult {
    bool ok = false;
    std::string error;
  };
  LoadResult load(std::vector<Insn> prog, std::size_t ctx_size);

  /// Execute the loaded program over `ctx`. The span size must equal the
  /// ctx_size the program was verified against. Returns r0, or Err::Inval
  /// if a helper trapped (bad dynamic offset) or no program is loaded.
  kern::Result<std::uint64_t> run(std::span<std::byte> ctx);

  struct Stats {
    std::uint64_t runs = 0;
    std::uint64_t insns = 0;
    std::uint64_t map_ops = 0;
    std::uint64_t traps = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::vector<Insn> prog_;
  std::size_t ctx_size_ = 0;
  std::vector<std::unique_ptr<BpfMap>> maps_;
  Stats stats_;
};

}  // namespace bsim::ebpf
