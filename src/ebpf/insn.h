// eBPF-flavoured instruction set (paper §2.2, §7.2).
//
// The paper positions eBPF as the third extensibility mechanism: safe and
// fast but limited to "short extensions with limited control flow and
// written in a restricted language". This module reproduces that design
// point so Table 2's comparison can be *run*, not just asserted: a
// register VM with a verifier that enforces the restrictions (bounded
// size, forward-only jumps, initialized registers, bounded context
// access) and a small helper surface (hash maps), which is exactly enough
// to build ExtFUSE-style caches (extfuse.h) and demonstrably not enough
// to build a file system.
//
// The encoding is a simplification of real eBPF (one struct per insn, no
// byte-level encoding), keeping the semantics that matter: 64-bit
// registers r0..r9, an implicit context buffer addressed by Ld/StCtx
// (standing in for verified pointer access), helpers called by id.
#pragma once

#include <cstdint>

namespace bsim::ebpf {

inline constexpr int kNumRegs = 10;       // r0..r9
inline constexpr int kMaxInsns = 4096;    // verifier program-size bound
inline constexpr int kMaxCtxSize = 4096;  // context buffer bound

enum class Op : std::uint8_t {
  MovImm,   // dst = imm
  MovReg,   // dst = src
  AddImm,   // dst += imm
  AddReg,   // dst += src
  SubImm,   // dst -= imm
  SubReg,   // dst -= src
  MulImm,   // dst *= imm
  AndImm,   // dst &= imm
  OrImm,    // dst |= imm
  XorImm,   // dst ^= imm
  XorReg,   // dst ^= src
  LshImm,   // dst <<= imm (imm masked to 0..63)
  RshImm,   // dst >>= imm (logical)
  LdCtx8,   // dst = *(u64*)(ctx + off)
  StCtx8,   // *(u64*)(ctx + off) = src
  StCtxImm, // *(u64*)(ctx + off) = imm
  Ja,       // pc += off (forward only)
  JeqImm,   // if (dst == imm) pc += off
  JneImm,   // if (dst != imm) pc += off
  JgtImm,   // if (dst >  imm) pc += off (unsigned)
  JgeImm,   // if (dst >= imm) pc += off (unsigned)
  JltImm,   // if (dst <  imm) pc += off (unsigned)
  JeqReg,   // if (dst == src) pc += off
  JneReg,   // if (dst != src) pc += off
  Call,     // call helper imm; args r1..r5, result r0, r1..r5 clobbered
  Exit,     // return r0
};

struct Insn {
  Op op = Op::Exit;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::int16_t off = 0;   // jump displacement or ctx offset
  std::int64_t imm = 0;
};

/// Helper ids (the bpf_helper surface).
enum : std::int64_t {
  /// r1=map id, r2=ctx offset of key, r3=ctx offset for the value copy.
  /// r0 = 1 on hit (value copied into ctx), 0 on miss.
  kHelperMapLookup = 1,
  /// r1=map id, r2=ctx offset of key, r3=ctx offset of value. r0 = 0, or
  /// (u64)-1 when the map is full.
  kHelperMapUpdate = 2,
  /// r1=map id, r2=ctx offset of key. r0 = 1 if an entry was removed.
  kHelperMapDelete = 3,
  kHelperMax = 3,
};

}  // namespace bsim::ebpf
