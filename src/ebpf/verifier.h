// The eBPF verifier: static admission control for extension programs.
//
// This is the mechanism that gives eBPF its safety column in Table 2 —
// and its ✗ in the generality column. A program is rejected unless it
// provably terminates (forward-only jumps: no loops at all, stricter than
// but in the spirit of the kernel's bounded-loop analysis), never reads
// an uninitialized register, never touches memory outside its context
// buffer, and calls only known helpers. The same properties Rust gives
// Bento file systems at compile time, but bought by restricting the
// language instead of typing it (§2.2: "the restrictions placed on eBPF
// extensions make it very difficult to implement whole file systems").
#pragma once

#include <span>
#include <string>

#include "ebpf/insn.h"

namespace bsim::ebpf {

struct VerifyResult {
  bool ok = false;
  std::string error;     // empty iff ok
  int error_pc = -1;     // instruction index of the violation
};

/// Statically verify `prog` against a context buffer of `ctx_size` bytes.
VerifyResult verify(std::span<const Insn> prog, std::size_t ctx_size);

}  // namespace bsim::ebpf
